/**
 * @file
 * Figure 18: stressing the NVSwitch.
 *
 * Four long-prompt (bandwidth-intensive) consumers and four
 * producers run simultaneously on the 8-GPU NVSwitch server. The
 * paper finds all four consumers reach the same high throughput as
 * on the directly-linked 2-GPU server — AQUA's benefits extend to a
 * switched fabric. We add the ablation the placer's one-producer-
 * per-consumer rule is about: pointing all four consumers at a
 * single shared producer serializes its ports and hurts.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

namespace {

exp::LongPromptResult
run(exp::OffloadMode mode, bool shared)
{
    exp::LongPromptConfig cfg;
    cfg.mode = mode;
    cfg.pairs = 4;
    cfg.producerModel = "StableDiffusion";
    cfg.sharedProducer = shared;
    return exp::runLongPrompt(cfg);
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 18", "4 long-prompt consumers + 4 "
                               "producers on the 8-GPU NVSwitch "
                               "server (10 min)");

    stats::Table table({"config", "c0_tokens", "c1_tokens",
                        "c2_tokens", "c3_tokens", "total"});
    auto row = [&](const char *name,
                   const exp::LongPromptResult &r) {
        auto tk = [&](std::size_t i) {
            return i < r.tokensPerConsumer.size()
                       ? r.tokensPerConsumer[i] : 0;
        };
        table.newRow()
            .cell(name)
            .cell(tk(0))
            .cell(tk(1))
            .cell(tk(2))
            .cell(tk(3))
            .cell(r.totalTokens);
    };
    row("flexgen (dram)", run(exp::OffloadMode::Dram, false));
    row("aqua paired", run(exp::OffloadMode::Aqua, false));
    row("aqua shared-producer", run(exp::OffloadMode::Aqua, true));
    bench::show(table);
    std::printf("paper: all four consumers keep the 2-GPU-server "
                "throughput over the switch (~10X the tokens of the "
                "DRAM baseline); sharing one producer across "
                "consumers splits its NVLink bandwidth, which is why "
                "AQUA-PLACER forbids it (§4).\n");
    return 0;
}
