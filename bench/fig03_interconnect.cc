/**
 * @file
 * Figure 3: (a) NVLink bandwidth vs buffer size between two A100s;
 * (b) the impact on a producer's inference throughput of sharing its
 * memory (S) vs running isolated (I).
 *
 * 3a is the observation that motivates AQUA's gather/scatter staging:
 * NVLink reaches only ~100 GB/s at 2 MB transfers and needs large
 * buffers for its 250 GB/s peak. 3b shows donating memory costs the
 * compute-bound producer < 5%.
 */

#include "aqua/staging.hh"
#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "exp/testbed.hh"
#include "serve/batch_engine.hh"
#include "serve/flexgen_engine.hh"
#include "workload/generator.hh"

using namespace aqua;

namespace {

/**
 * Move a scattered block workload GPU-to-GPU either block by block
 * (one NVLink copy per block) or through the staging engine
 * (gather into large contiguous DMAs), and report aggregate time.
 */
sim::Tick
scatteredWorkloadTime(bool staged, std::uint64_t blocks,
                      std::uint64_t blockBytes)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P);
    auto descs =
        core::StagingEngine::uniformChunks(blocks * blockBytes, blocks);
    if (staged) {
        core::StagingEngine engine(tb.server(), 0);
        hw::TransferTiming t = engine.transferOut(1, descs);
        return t.complete;
    }
    hw::TransferTiming t = tb.server().topology().copyChunked(
        0, 1, blockBytes, blocks, {});
    return t.complete;
}

double
producerThroughput(bool shared, const char *producerModel)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P);
    serve::BatchEngine producer(tb.server(), 1,
                                model::presetByName(producerModel));
    workload::TraceBuilder traces(tb.sim().makeRandom());
    // Saturating image/audio load.
    exp::driveTrace(tb.sim(), producer,
                    traces.interactive(20.0, 8000));

    std::unique_ptr<serve::FlexGenEngine> consumer;
    if (shared) {
        core::AquaLib &producerLib = tb.makeAquaLib(
            1, std::make_unique<core::BatchInformer>());
        core::AquaLib &consumerLib = tb.makeAquaLib(0);
        tb.assign(0, 1);
        producer.attachAquaLib(&producerLib);
        auto &backend = tb.makeAquaBackend(consumerLib);
        consumer = std::make_unique<serve::FlexGenEngine>(
            tb.server(), 0, model::opt30b(), backend);
        for (int i = 0; i < 40; ++i)
            consumer->submit(traces.longPrompt(8000, 2000));
    }
    // Time a fixed number of generations so batch quantization does
    // not masquerade as a throughput change.
    const std::uint64_t target = 600;
    while (producer.itemsGenerated() < target &&
           tb.sim().now() < sim::secToTicks(3600.0))
        tb.sim().runFor(sim::secToTicks(5.0));
    return static_cast<double>(producer.itemsGenerated()) /
           sim::ticksToSec(tb.sim().now());
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 3a", "NVLink effective bandwidth vs buffer "
                               "size (model calibrated to the "
                               "paper's measurement)");
    hw::GpuSpec spec = hw::a100_80g();
    hw::Link nvlink("nvlink", spec.nvlinkBandwidth,
                    spec.nvlinkRampBytes, spec.nvlinkLatency);
    hw::Link pcie("pcie", spec.pcieBandwidth, spec.pcieRampBytes,
                  spec.pcieLatency);
    stats::Table bw({"buffer", "nvlink_gb_per_s", "pcie_gb_per_s"});
    for (std::uint64_t size = 64 * sim::kib;
         size <= 1024 * sim::mib; size *= 4) {
        double n = static_cast<double>(size) /
                   sim::ticksToSec(nvlink.transferTime(size)) / 1e9;
        double p = static_cast<double>(size) /
                   sim::ticksToSec(pcie.transferTime(size)) / 1e9;
        bw.newRow()
            .cell(sim::formatBytes(size))
            .cell(n, 1)
            .cell(p, 1);
    }
    bench::show(bw);
    std::printf("paper: ~100 GB/s at 2 MB, 250 GB/s peak; small "
                "transfers are barely faster than PCIe.\n\n");

    bench::banner("Staging", "scattered KV blocks GPU-to-GPU: "
                             "per-block copies vs gather/scatter "
                             "staging (1024 blocks)");
    stats::Table st({"block", "total", "per_block_ms", "staged_ms",
                     "speedup"});
    for (std::uint64_t blockBytes :
         {256 * sim::kib, 1 * sim::mib, 2 * sim::mib}) {
        const std::uint64_t blocks = 1024;
        sim::Tick perBlock =
            scatteredWorkloadTime(false, blocks, blockBytes);
        sim::Tick staged =
            scatteredWorkloadTime(true, blocks, blockBytes);
        st.newRow()
            .cell(sim::formatBytes(blockBytes))
            .cell(sim::formatBytes(blocks * blockBytes))
            .cell(sim::ticksToSec(perBlock) * 1e3, 2)
            .cell(sim::ticksToSec(staged) * 1e3, 2)
            .cell(static_cast<double>(perBlock) /
                      static_cast<double>(staged),
                  2);
    }
    bench::show(st);
    std::printf("coalescing scattered blocks into large staged DMAs "
                "recovers the bandwidth the ramp takes from small "
                "transfers.\n\n");

    bench::banner("Figure 3b", "producer inference throughput: "
                               "shared (S) vs isolated (I)");
    stats::Table imp({"model", "isolated_items_per_s",
                      "shared_items_per_s", "impact_pct"});
    for (const char *m : {"StableDiffusion", "AudioGen"}) {
        double iso = producerThroughput(false, m);
        double sh = producerThroughput(true, m);
        imp.newRow()
            .cell(m)
            .cell(iso, 3)
            .cell(sh, 3)
            .cell(100.0 * (iso - sh) / iso, 2);
    }
    bench::show(imp);
    std::printf("paper: sharing memory has negligible impact "
                "(< 5%%) on compute-bound producers.\n");
    return 0;
}
