/**
 * @file
 * Figure 12: AQUA TENSOR benefit vs offloaded-tensor size.
 *
 * 200 synthesized adapters of 160 MB and of 320 MB; 10 GB reserved
 * for caching; 200 prompts at 10 req/s, each assigned a distinct
 * adapter (maximal miss rate). The larger adapters spend more time
 * in I/O, so AQUA's faster access helps them more (§7).
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

namespace {

exp::LoraExperimentResult
run(exp::OffloadMode mode, std::uint64_t adapterBytes)
{
    exp::LoraExperimentConfig cfg;
    cfg.mode = mode;
    cfg.producerModel = "StableDiffusion";
    cfg.numAdapters = 200;
    cfg.adapterBytes = adapterBytes;
    cfg.cacheBytes = std::uint64_t(10) << 30;
    cfg.ratePerSec = 10.0;
    cfg.numRequests = 200;
    return exp::runLoraExperiment(cfg);
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 12", "AQUA benefit vs adapter size "
                               "(200 adapters, 10 GB cache, "
                               "10 req/s)");

    stats::Table table({"adapter_mb", "system", "rct_p50_s",
                        "rct_p95_s", "median_gain_s"});
    for (std::uint64_t mb : {160, 320}) {
        exp::LoraExperimentResult base =
            run(exp::OffloadMode::Dram, mb << 20);
        exp::LoraExperimentResult aqua =
            run(exp::OffloadMode::Aqua, mb << 20);
        stats::Summary b = bench::rctSummary(base.metrics);
        stats::Summary a = bench::rctSummary(aqua.metrics);
        table.newRow()
            .cell(mb)
            .cell("baseline")
            .cell(b.median(), 2)
            .cell(b.p95(), 2)
            .cell("-");
        table.newRow()
            .cell(mb)
            .cell("aqua")
            .cell(a.median(), 2)
            .cell(a.p95(), 2)
            .cell(b.median() - a.median(), 2);
    }
    bench::show(table);
    std::printf("paper: the 320 MB adapters benefit more than the "
                "160 MB ones — AQUA helps workloads with larger I/O "
                "more.\n");
    return 0;
}
