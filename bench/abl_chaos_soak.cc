/**
 * @file
 * Chaos soak: randomized multi-fault schedules against the
 * crash-recovery stack, with continuously checked safety invariants.
 *
 * seed_robustness covers the donor-death story; this harness attacks
 * the pieces PR'd with src/recovery: the coordinator dies cold
 * (coordinator_crash) in the middle of a staged evacuation while the
 * link corrupts payloads (payload_corrupt), the SSD rots at rest
 * (ssd_bitrot), and the usual outage/drop/delay background noise
 * plays. Per seed the run is audited three ways:
 *
 *  - Global safety invariants, sampled every 10 ms of simulated time
 *    AND at the end: coordinator lease/refcount accounting consistent,
 *    no lease double-granted, every pinned registry chain homed on a
 *    live GPU (Coordinator::auditInvariants +
 *    PrefixRegistry::auditInvariants).
 *  - Conservation: every corruption the hardware drew was detected at
 *    read time and repaired or recomputed — zero silent corruptions —
 *    and no tensor byte differs from the fault-free twin without a
 *    recompute record.
 *  - Recovery completeness: the crash restarts exactly once, every
 *    survivor resyncs, the donated lease and the active prefix pin
 *    survive journal replay + resync, and the evacuation still drains.
 *
 * A violating seed triggers automatic fault-plan shrinking (greedy
 * one-at-a-time removal to a locally minimal repro) and the minimal
 * plan lands in the JSON report.
 *
 * The fault-free twin runs twice: once with the full recovery stack
 * attached and once bare (no journals, no RecoveryManager). Their
 * traces must be byte-identical — the recovery machinery is inert on
 * a healthy fabric ("fault_free_identical").
 *
 * Results land in BENCH_chaos_soak.json; `--smoke` bounds the seed
 * matrix for CI.
 */

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "exp/testbed.hh"
#include "fault/fault.hh"
#include "recovery/recovery_manager.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "stats/table.hh"
#include "trace/trace.hh"

using namespace aqua;
using namespace aqua::sim;
using aqua::fault::ChaosConfig;
using aqua::fault::FaultInjector;
using aqua::fault::FaultKind;
using aqua::fault::FaultPlan;
using aqua::fault::FaultSpec;

namespace {

constexpr std::uint64_t mb = std::uint64_t(1) << 20;
constexpr std::uint64_t gb = std::uint64_t(1) << 30;

constexpr Tick horizon = msToTicks(400.0);
constexpr Tick stepPeriod = msToTicks(1.0);
constexpr std::size_t steps = horizon / stepPeriod;
constexpr std::size_t respondEvery = 4;
constexpr Tick auditPeriod = msToTicks(10.0);
constexpr Tick reclaimAt = msToTicks(150.0);
constexpr Tick crashAt = msToTicks(160.0);

constexpr std::size_t nTensors = 4;
constexpr std::uint64_t tensorBytes = 64 * mb;
constexpr std::uint64_t leaseBytes = 10 * gb;

struct SoakResult
{
    /** Timestamped invariant violations; empty = safe run. */
    std::vector<std::string> violations;
    std::vector<std::uint64_t> signatures;
    std::string trace;
    std::uint64_t tokens = 0;
    std::uint64_t tokensLost = 0;
    /** Ground truth corruption draws (hardware counters). */
    std::uint64_t drawnPayload = 0;
    std::uint64_t drawnBitrot = 0;
    /** Read-path detections and outcomes. */
    std::uint64_t detected = 0;
    std::uint64_t repaired = 0;
    recovery::RecoveryStats rec;
    fault::FaultInjectorStats inj;
};

/**
 * One soak run. @p plan null = fault-free twin; @p bare additionally
 * drops the whole recovery stack (no journals, no RecoveryManager)
 * for the is-it-inert trace comparison.
 */
SoakResult
runSoak(std::uint64_t seed, const FaultPlan *plan, bool bare)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P, seed);
    core::AquaLibConfig prodCfg;
    prodCfg.heartbeatInterval = msToTicks(5.0);
    core::AquaLib &producer = tb.makeAquaLib(1, nullptr, prodCfg);
    core::AquaLibConfig consCfg;
    // Jittered backoff decorrelates the retry storm against the
    // restarting coordinator; the stream is never drawn fault-free.
    consCfg.retryJitter = 0.25;
    consCfg.jitterSeed = seed;
    core::AquaLib &consumer = tb.makeAquaLib(0, nullptr, consCfg);

    cluster::PrefixRegistry &registry = tb.makePrefixRegistry();
    if (!bare)
        tb.makeRecovery();
    tb.assign(0, 1);

    trace::TraceLog log;
    producer.setTraceLog(&log);
    consumer.setTraceLog(&log);
    registry.setTraceLog(&log);
    if (!bare)
        tb.makeRecovery().setTraceLog(&log);

    // Two prefix chains with a live pin: chain A homed on GPU 0 with
    // a replica on 1, chain B homed on 1; GPU 1 reads A over NVLink.
    cluster::RegistryAgent agent;
    agent.setPinned = [](std::uint64_t, bool) { return true; };
    agent.promote = [](std::uint64_t) { return true; };
    registry.setAgent(0, agent);
    registry.setAgent(1, agent);
    registry.publish(0, 0xa1, 0xb1, 8, 128, 8 * mb, 0xa1 ^ 0xb1, 0);
    registry.publish(1, 0xa1, 0xb1, 8, 128, 8 * mb, 0xa1 ^ 0xb1, 0);
    registry.publish(1, 0xc2, 0xd2, 4, 64, 4 * mb, 0xc2 ^ 0xd2, 0);
    cluster::PinResult pin = registry.pin(1, 0xa1, 0xb1, 0);
    if (!pin.ok)
        panic("chaos soak: setup pin failed");
    const std::size_t pinsBefore = registry.activePins();

    tb.coordinator().setGracefulEvacBatch(1);
    producer.confirmDonate(leaseBytes);
    if (!producer.hasDonated())
        panic("chaos soak: donation failed");

    std::vector<core::TensorId> ids;
    for (std::size_t i = 0; i < nTensors; ++i) {
        auto id = consumer.allocateTensor(tensorBytes);
        if (!id)
            panic("chaos soak: initial allocation failed");
        consumer.writeTensor(*id, 4 * mb, 16);
        ids.push_back(*id);
    }

    // Setup complete: checkpoint both journals, modelling a flushed
    // steady-state snapshot. Only runtime records ride in the
    // crash-vulnerable tail.
    if (!bare) {
        tb.coordinatorJournal()->compact();
        if (tb.prefixRegistryJournal())
            tb.prefixRegistryJournal()->compact();
    }

    std::unique_ptr<FaultInjector> inj;
    if (plan) {
        inj = std::make_unique<FaultInjector>(
            tb.sim(), tb.server().topology(), tb.rest().router());
        inj->registerLib(producer);
        inj->setTraceLog(&log);
        tb.makeRecovery().wire(*inj);
        inj->arm(*plan);
    }

    SoakResult res;
    auto audit = [&](const char *when) {
        for (const std::string &v :
             tb.coordinator().auditInvariants())
            res.violations.push_back(std::string(when) +
                                     " coordinator: " + v);
        for (const std::string &v : registry.auditInvariants())
            res.violations.push_back(std::string(when) +
                                     " registry: " + v);
    };

    // The decode loop: one write per ms, respond() at iteration
    // boundaries, a graceful reclaim kicking off the staged
    // evacuation the crash will interrupt.
    Tick freeAt = 0;
    for (std::size_t step = 0; step < steps; ++step) {
        tb.sim().queue().schedule(
            static_cast<Tick>(step) * stepPeriod, [&, step] {
                if (tb.sim().now() < freeAt)
                    ++res.tokensLost;
                else
                    ++res.tokens;
                consumer.writeTensor(ids[step % ids.size()], 1 * mb,
                                     8);
                if (step % respondEvery == 0) {
                    Tick blocked = consumer.respond();
                    if (blocked > freeAt)
                        freeAt = blocked;
                }
            });
    }
    tb.sim().queue().schedule(reclaimAt, [&] {
        tb.coordinator().requestReclaim(
            1, core::ReclaimUrgency::Graceful);
    });
    for (Tick t = auditPeriod; t < horizon; t += auditPeriod) {
        tb.sim().queue().schedule(t, [&, t] {
            audit(("t=" + std::to_string(t / nsPerMs) + "ms").c_str());
        });
    }
    producer.startHeartbeats(horizon);
    tb.sim().runUntil(horizon);
    audit("end");

    for (core::TensorId id : ids)
        res.signatures.push_back(consumer.tensorSignature(id));
    res.trace = log.toJsonl();
    res.drawnPayload = tb.server().topology().payloadCorruptions();
    if (const hw::Ssd *drive = tb.server().topology().ssd())
        res.drawnBitrot = drive->bitrotCorruptions();
    res.detected = consumer.stats().corruptionsDetected +
                   producer.stats().corruptionsDetected;
    res.repaired = consumer.stats().corruptionsRepaired +
                   producer.stats().corruptionsRepaired;

    if (plan) {
        res.inj = inj->stats();
        res.rec = tb.makeRecovery().stats();
        std::size_t crashesPlanned = 0;
        for (const FaultSpec &f : plan->faults())
            if (f.kind == FaultKind::CoordinatorCrash)
                ++crashesPlanned;
        if (res.rec.crashes != crashesPlanned ||
            res.rec.restarts != crashesPlanned)
            res.violations.push_back(
                "recovery: crash/restart count mismatch (planned " +
                std::to_string(crashesPlanned) + ", crashed " +
                std::to_string(res.rec.crashes) + ", restarted " +
                std::to_string(res.rec.restarts) + ")");
        if (crashesPlanned > 0 && res.rec.survivorsResynced !=
                                      crashesPlanned * 2)
            res.violations.push_back(
                "recovery: not every survivor resynced (" +
                std::to_string(res.rec.survivorsResynced) + "/" +
                std::to_string(crashesPlanned * 2) + ")");
        if (registry.activePins() != pinsBefore)
            res.violations.push_back(
                "registry: active pins not recovered (" +
                std::to_string(registry.activePins()) + "/" +
                std::to_string(pinsBefore) + ")");
        if (tb.coordinator().producerState(1).leasedBytes !=
            leaseBytes)
            res.violations.push_back(
                "coordinator: donated lease not recovered");
        if (!tb.coordinator().reclaimComplete(1))
            res.violations.push_back(
                "coordinator: staged evacuation never drained");
        std::size_t unmatched =
            log.unmatchedPairs("fault_inject", "fault_recover",
                               "fault_id")
                .size();
        if (unmatched != 0)
            res.violations.push_back(
                "fault: " + std::to_string(unmatched) +
                " unmatched inject/recover pairs");
    }
    // Every corruption the hardware drew must have been detected at
    // a read path and then repaired or recomputed.
    std::uint64_t drawn = res.drawnPayload + res.drawnBitrot;
    if (res.detected != drawn)
        res.violations.push_back(
            "integrity: " + std::to_string(drawn - res.detected) +
            " silent corruptions (drawn " + std::to_string(drawn) +
            ", detected " + std::to_string(res.detected) + ")");
    if (res.repaired != res.detected)
        res.violations.push_back(
            "integrity: " +
            std::to_string(res.detected - res.repaired) +
            " detections without repair or recompute");
    return res;
}

/** The per-seed chaos schedule: scripted crash-mid-evacuation and
 *  corruption windows plus seeded background noise. */
FaultPlan
soakPlan(std::uint64_t seed)
{
    ChaosConfig cfg;
    cfg.horizon = horizon;
    cfg.outages = 1;
    cfg.meanOutageTime = msToTicks(2.0);
    cfg.dropWindows = 1;
    cfg.dropProbability = 0.3;
    cfg.meanDropTime = msToTicks(2.0);
    cfg.delayWindows = 1;
    cfg.meanDelayTime = msToTicks(3.0);
    cfg.bitrotWindows = 1;
    cfg.bitrotProbability = 0.2;
    FaultPlan plan = FaultPlan::random(seed, cfg);

    FaultSpec crash;
    crash.kind = FaultKind::CoordinatorCrash;
    crash.at = crashAt; // 10 ms into the staged evacuation
    crash.duration = msToTicks(5.0);
    crash.loseTail = static_cast<std::uint32_t>(seed % 5);
    plan.add(crash);

    FaultSpec corrupt;
    corrupt.kind = FaultKind::PayloadCorrupt;
    corrupt.at = msToTicks(140.0);
    corrupt.duration = msToTicks(100.0);
    corrupt.probability = 0.5;
    plan.add(corrupt);
    return plan;
}

/** Violations of a (seed, plan) cell, including byte-identity drift
 *  against the fault-free twin signatures. */
std::vector<std::string>
violationsOf(std::uint64_t seed, const FaultPlan &plan,
             const std::vector<std::uint64_t> &twinSigs)
{
    SoakResult r = runSoak(seed, &plan, false);
    for (std::size_t i = 0; i < r.signatures.size(); ++i)
        if (r.signatures[i] != twinSigs[i])
            r.violations.push_back(
                "integrity: tensor " + std::to_string(i) +
                " bytes differ from fault-free twin with no "
                "recompute record");
    return r.violations;
}

/**
 * Greedy ddmin-lite: repeatedly drop any single fault whose removal
 * keeps the violation alive, until the plan is locally minimal.
 */
FaultPlan
shrinkPlan(std::uint64_t seed, FaultPlan plan,
           const std::vector<std::uint64_t> &twinSigs)
{
    bool improved = true;
    while (improved && plan.size() > 1) {
        improved = false;
        for (std::size_t skip = 0; skip < plan.size(); ++skip) {
            FaultPlan candidate;
            candidate.setSeed(plan.seed());
            for (std::size_t i = 0; i < plan.size(); ++i)
                if (i != skip)
                    candidate.add(plan.faults()[i]);
            if (!violationsOf(seed, candidate, twinSigs).empty()) {
                plan = candidate;
                improved = true;
                break;
            }
        }
    }
    return plan;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("Chaos soak",
                  "crash recovery + KV integrity under multi-fault "
                  "schedules");

    const std::uint64_t numSeeds = smoke ? 2 : 8;
    bench::JsonReporter report("chaos_soak");
    report.set("smoke", smoke);
    report.set("seeds", static_cast<std::int64_t>(numSeeds));

    stats::Table table({"seed", "faults", "inj", "crash", "resync",
                        "corrupt", "detected", "tokens", "lost",
                        "violations", "twin"});
    json::Object cells;
    bool crashRecoveryOk = true;
    bool corruptionOk = true;
    bool twinIdentical = true;
    std::uint64_t totalDrawn = 0, totalDetected = 0;
    json::Array repros;

    for (std::uint64_t seed = 1; seed <= numSeeds; ++seed) {
        FaultPlan plan = soakPlan(seed);
        SoakResult twin = runSoak(seed, nullptr, false);
        SoakResult bareTwin = runSoak(seed, nullptr, true);
        SoakResult chaos = runSoak(seed, &plan, false);

        // The recovery stack must be inert on a healthy fabric: the
        // full-stack twin and the bare twin are bit-identical.
        bool cellTwinOk = twin.trace == bareTwin.trace &&
                          twin.signatures == bareTwin.signatures &&
                          twin.violations.empty() &&
                          bareTwin.violations.empty();
        twinIdentical = twinIdentical && cellTwinOk;

        std::vector<std::string> violations = chaos.violations;
        std::size_t sigBad = 0;
        for (std::size_t i = 0; i < chaos.signatures.size(); ++i)
            if (chaos.signatures[i] != twin.signatures[i])
                ++sigBad;
        if (sigBad > 0)
            violations.push_back(
                "integrity: " + std::to_string(sigBad) +
                " tensors differ from the fault-free twin");

        crashRecoveryOk = crashRecoveryOk && violations.empty();
        totalDrawn += chaos.drawnPayload + chaos.drawnBitrot;
        totalDetected += chaos.detected;

        table.newRow()
            .cell(static_cast<double>(seed), 0)
            .cell(static_cast<double>(plan.size()), 0)
            .cell(static_cast<double>(chaos.inj.injected), 0)
            .cell(static_cast<double>(chaos.rec.crashes), 0)
            .cell(static_cast<double>(chaos.rec.survivorsResynced), 0)
            .cell(static_cast<double>(chaos.drawnPayload +
                                      chaos.drawnBitrot),
                  0)
            .cell(static_cast<double>(chaos.detected), 0)
            .cell(static_cast<double>(chaos.tokens), 0)
            .cell(static_cast<double>(chaos.tokensLost), 0)
            .cell(static_cast<double>(violations.size()), 0)
            .cell(cellTwinOk ? "identical" : "DRIFT");

        json::Object cell;
        cell["faults"] = static_cast<std::int64_t>(plan.size());
        cell["injected"] =
            static_cast<std::int64_t>(chaos.inj.injected);
        cell["crashes"] =
            static_cast<std::int64_t>(chaos.rec.crashes);
        cell["lost_tail_records"] =
            static_cast<std::int64_t>(chaos.rec.droppedRecords);
        cell["replayed_records"] =
            static_cast<std::int64_t>(chaos.rec.replayedRecords);
        cell["survivors_resynced"] =
            static_cast<std::int64_t>(chaos.rec.survivorsResynced);
        cell["corruptions_drawn"] = static_cast<std::int64_t>(
            chaos.drawnPayload + chaos.drawnBitrot);
        cell["corruptions_detected"] =
            static_cast<std::int64_t>(chaos.detected);
        cell["corruptions_repaired"] =
            static_cast<std::int64_t>(chaos.repaired);
        cell["tokens"] = static_cast<std::int64_t>(chaos.tokens);
        cell["tokens_lost"] =
            static_cast<std::int64_t>(chaos.tokensLost);
        cell["twin_identical"] = cellTwinOk;
        json::Array viol;
        for (const std::string &v : violations)
            viol.push_back(json::Value(v));
        cell["violations"] = json::Value(std::move(viol));
        cells["seed_" + std::to_string(seed)] = std::move(cell);

        if (!violations.empty()) {
            // Shrink to a locally minimal repro for the report.
            FaultPlan minimal =
                shrinkPlan(seed, plan, twin.signatures);
            std::printf("seed %llu VIOLATES; minimal repro (%zu of "
                        "%zu faults):\n%s\n",
                        static_cast<unsigned long long>(seed),
                        minimal.size(), plan.size(),
                        minimal.toJson().dump().c_str());
            json::Value repro;
            repro["seed"] = static_cast<std::int64_t>(seed);
            repro["plan"] = minimal.toJson();
            repros.push_back(std::move(repro));
        }
    }
    bench::show(table);

    // Detection is only meaningful if the matrix actually drew
    // corruptions; the scripted window makes that near-certain.
    corruptionOk =
        totalDrawn > 0 && totalDetected == totalDrawn;

    report.set("crash_recovery_ok", crashRecoveryOk);
    report.set("corruption_detection_ok", corruptionOk);
    report.set("fault_free_identical", twinIdentical);
    report.set("corruptions_drawn",
               static_cast<std::int64_t>(totalDrawn));
    report.set("corruptions_detected",
               static_cast<std::int64_t>(totalDetected));
    report.set("cells", std::move(cells));
    if (!repros.empty())
        report.set("minimal_repros", json::Value(std::move(repros)));
    report.write();

    if (!crashRecoveryOk || !corruptionOk || !twinIdentical) {
        std::printf("CHAOS SOAK VIOLATION: crash_recovery_ok=%d "
                    "corruption_detection_ok=%d "
                    "fault_free_identical=%d\n",
                    crashRecoveryOk, corruptionOk, twinIdentical);
        return 1;
    }
    std::printf("soak clean across %llu seeds: every crash recovered "
                "by journal replay + survivor resync,\nevery drawn "
                "corruption detected and repaired, fault-free twin "
                "bit-identical.\n",
                static_cast<unsigned long long>(numSeeds));
    return 0;
}
