/**
 * @file
 * Figure 8: RCTs of Mistral-7B inference with LoRA adapters.
 *
 * 30 adapters of 320 MB; the GPU caches only 10 at a time, so most
 * requests must load their adapter from the offload store. The
 * baseline (vLLM) loads from DRAM with many small per-layer copies;
 * AQUA keeps adapters on the co-located producer's HBM and loads
 * them as one gathered NVLink transfer. AQUA-0 pairs Mistral with
 * StableDiffusion, AQUA-1 with StableDiffusion-XL (Fig. 8a); Fig. 8b
 * pairs it with a Llama-2-13B LLM producer.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

namespace {

exp::LoraExperimentResult
run(exp::OffloadMode mode, const std::string &producer)
{
    exp::LoraExperimentConfig cfg;
    cfg.mode = mode;
    cfg.producerModel = producer;
    cfg.numAdapters = 30;
    cfg.adapterBytes = std::uint64_t(320) << 20;
    cfg.cacheBytes = std::uint64_t(10) * (std::uint64_t(320) << 20);
    cfg.ratePerSec = 2.0;
    cfg.numRequests = 200;
    return exp::runLoraExperiment(cfg);
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 8", "sorted RCTs, Mistral-7B with 30x320MB "
                              "LoRA adapters (10-adapter GPU cache)");

    exp::LoraExperimentResult base =
        run(exp::OffloadMode::Dram, "StableDiffusion");
    exp::LoraExperimentResult aqua0 =
        run(exp::OffloadMode::Aqua, "StableDiffusion");
    exp::LoraExperimentResult aqua1 =
        run(exp::OffloadMode::Aqua, "StableDiffusion-XL");
    exp::LoraExperimentResult aquaLlm =
        run(exp::OffloadMode::Aqua, "Llama-2-13B");

    std::vector<double> b = bench::sortedRcts(base.metrics);
    std::vector<double> a0 = bench::sortedRcts(aqua0.metrics);
    std::vector<double> a1 = bench::sortedRcts(aqua1.metrics);
    std::vector<double> al = bench::sortedRcts(aquaLlm.metrics);

    stats::Table table({"rank", "baseline_s", "aqua0_sd_s",
                        "aqua1_sdxl_s", "aqua_llm_s"});
    for (std::size_t i = 0; i < b.size(); i += 20) {
        table.newRow()
            .cell(i)
            .cell(b[i], 2)
            .cell(i < a0.size() ? a0[i] : 0.0, 2)
            .cell(i < a1.size() ? a1[i] : 0.0, 2)
            .cell(i < al.size() ? al[i] : 0.0, 2);
    }
    bench::show(table);

    stats::Summary sb;
    sb.add(b);
    stats::Summary sa;
    sa.add(a0);
    std::printf("median RCT: baseline %.2fs, AQUA %.2fs "
                "(improvement %.2fX; paper reports up to 1.8X)\n",
                sb.median(), sa.median(),
                sb.median() / sa.median());
    std::printf("adapter cache: baseline %llu hits / %llu misses; "
                "AQUA-0 %llu / %llu\n",
                static_cast<unsigned long long>(base.cacheHits),
                static_cast<unsigned long long>(base.cacheMisses),
                static_cast<unsigned long long>(aqua0.cacheHits),
                static_cast<unsigned long long>(aqua0.cacheMisses));
    return 0;
}
