/**
 * @file
 * Micro-benchmarks (google-benchmark) of the simulation substrate:
 * event queue, allocators, the link model, and the staging math.
 * These guard against performance regressions in the hot paths that
 * every figure harness exercises millions of times.
 */

#include <benchmark/benchmark.h>

#include "aqua/staging.hh"
#include "hw/link.hh"
#include "mem/block_allocator.hh"
#include "mem/region_allocator.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace aqua;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sink = 0;
        for (std::size_t i = 0; i < batch; ++i) {
            q.schedule(static_cast<sim::Tick>((i * 7919) % batch),
                       [&sink] { ++sink; });
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void
BM_EventQueueScheduleFireHot(benchmark::State &state)
{
    // Tight schedule/fire ping-pong over a warm, pre-reserved queue:
    // isolates the per-event push_heap/pop_heap cost (and whether the
    // callback is moved or copied on pop) from allocation noise.
    const std::size_t depth = 64;
    sim::EventQueue q;
    q.reserve(depth + 1);
    std::uint64_t sink = 0;
    sim::Tick when = 0;
    for (std::size_t i = 0; i < depth; ++i)
        q.schedule(++when, [&sink] { ++sink; });
    for (auto _ : state) {
        q.schedule(++when, [&sink] { ++sink; });
        q.step();
    }
    q.run();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleFireHot);

void
BM_EventQueueCancelChurn(benchmark::State &state)
{
    // Half the scheduled events are cancelled before firing: measures
    // the lazy-deletion sweep in skipCancelled().
    sim::EventQueue q;
    q.reserve(2048);
    std::uint64_t sink = 0;
    sim::Tick when = 0;
    for (auto _ : state) {
        sim::EventId keep = q.schedule(++when, [&sink] { ++sink; });
        sim::EventId drop = q.schedule(++when, [&sink] { ++sink; });
        benchmark::DoNotOptimize(keep);
        q.cancel(drop);
        q.step();
    }
    q.run();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueCancelChurn);

void
BM_RegionAllocatorChurn(benchmark::State &state)
{
    mem::RegionAllocator alloc(std::uint64_t(80) << 30);
    sim::Random rng(7);
    std::vector<mem::Region> live;
    for (auto _ : state) {
        if (live.size() < 256 && rng.bernoulli(0.6)) {
            auto r = alloc.allocate(
                static_cast<std::uint64_t>(
                    rng.uniformInt(4096, 64 << 20)));
            if (r)
                live.push_back(*r);
        } else if (!live.empty()) {
            std::size_t idx = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(
                                   live.size()) - 1));
            alloc.free(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (const mem::Region &r : live)
        alloc.free(r);
}
BENCHMARK(BM_RegionAllocatorChurn);

void
BM_BlockAllocatorSwapCycle(benchmark::State &state)
{
    mem::BlockAllocator alloc(std::uint64_t(6) << 30, 3 << 20);
    for (auto _ : state) {
        auto blocks = alloc.allocateMany(128);
        alloc.freeMany(*blocks);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_BlockAllocatorSwapCycle);

void
BM_LinkTransferTime(benchmark::State &state)
{
    hw::Link link("nvlink", 250e9, 3 << 20, sim::usToTicks(1.0));
    std::uint64_t bytes = 1;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        bytes = bytes * 2654435761u % (std::uint64_t(1) << 30) + 1;
        sink += link.transferTime(bytes);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_LinkTransferTime);

void
BM_StagingGatherTime(benchmark::State &state)
{
    core::StagingModel staging(hw::a100_80g());
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += staging.gatherTime(384 << 20);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_StagingGatherTime);

void
BM_Pcg32(benchmark::State &state)
{
    sim::Random rng(1);
    double sink = 0.0;
    for (auto _ : state)
        sink += rng.exponential(5.0);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Pcg32);

} // anonymous namespace

BENCHMARK_MAIN();
