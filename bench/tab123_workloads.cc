/**
 * @file
 * Tables 1-3: the evaluation's model zoo, workloads and serving
 * engines, annotated with the memory geometry our substrate derives
 * (weight bytes, KV bytes/token, and the R_m requirement
 * AQUA-PLACER consumes).
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "model/model_spec.hh"

using namespace aqua;

namespace {

struct RowSpec
{
    const char *model;
    const char *workload;
    const char *engine;
    bool producer;
};

void
printTable(const char *title, const std::vector<RowSpec> &rows)
{
    std::printf("--- %s ---\n", title);
    stats::Table table({"model", "workload", "serving engine",
                        "modality", "weights_gb", "kv_kb_per_tok",
                        "R_m_gb"});
    for (const RowSpec &r : rows) {
        model::ModelSpec spec = model::presetByName(r.model);
        table.newRow()
            .cell(r.model)
            .cell(r.workload)
            .cell(r.engine)
            .cell(model::modalityName(spec.modality))
            .cell(static_cast<double>(spec.weightBytes()) / 1e9, 1)
            .cell(static_cast<double>(spec.kvBytesPerToken()) /
                      1024.0, 1)
            .cell(static_cast<double>(exp::modelMemoryRequirement(
                      r.model, r.producer)) / 1e9, 1);
    }
    bench::show(table);
}

} // anonymous namespace

int
main()
{
    bench::banner("Tables 1-3", "evaluation workloads and roles");
    printTable("Table 1: LLM jobs with GPU memory deficit "
               "(consumers)",
               {{"OPT-30B", "Long-prompt inference", "FlexGen",
                 false},
                {"Mistral-7B", "LoRA adapters", "vLLM", false},
                {"Codellama-34B", "Code summary", "vLLM + CFS",
                 false}});
    printTable("Table 2: LLM jobs with excess memory (producers)",
               {{"Mistral-7B", "ShareGPT", "vLLM", true},
                {"Llama-2-13B", "ShareGPT", "vLLM", true}});
    printTable("Table 3: image and audio jobs (producers)",
               {{"StableDiffusion", "Parti prompts", "Diffusers",
                 true},
                {"StableDiffusion-XL", "Parti prompts", "Diffusers",
                 true},
                {"Kandinsky", "Parti prompts", "Diffusers", true},
                {"MusicGen", "Audio descriptions", "PyTorch", true},
                {"AudioGen", "Audio descriptions", "PyTorch",
                 true}});
    return 0;
}
