/**
 * @file
 * Ablation: offload-path comparison for the long-prompt workload.
 *
 * Pits AQUA's explicit, staged NVLink transfers against (a) the DRAM
 * baseline, (b) AQUA without gather/scatter staging (naive per-chunk
 * NVLink copies — the negative result of §2.3 that motivated the
 * custom kernels), and (c) a CUDA-UVM-style fault-driven pager (the
 * §9 related-work alternative).
 */

#include <memory>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "exp/testbed.hh"
#include "serve/flexgen_engine.hh"
#include "serve/uvm_backend.hh"
#include "workload/generator.hh"

using namespace aqua;

namespace {

std::uint64_t
runPath(const char *path)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P);
    serve::OffloadBackend *backend = nullptr;
    std::unique_ptr<serve::UvmBackend> uvm;
    std::string name = path;
    if (name == "dram") {
        backend = &tb.makeDramBackend(0);
    } else if (name == "uvm") {
        uvm = std::make_unique<serve::UvmBackend>(tb.server(), 0);
        backend = uvm.get();
    } else {
        core::AquaLibConfig cfg;
        cfg.useStaging = name != "aqua-unstaged";
        core::AquaLib &lib = tb.makeAquaLib(0, nullptr, cfg);
        tb.assign(0, 1);
        tb.coordinator().lease(1, std::uint64_t(40) << 30);
        backend = &tb.makeAquaBackend(lib);
    }
    serve::FlexGenEngine engine(tb.server(), 0, model::opt30b(),
                                *backend);
    workload::TraceBuilder traces(tb.sim().makeRandom());
    for (int i = 0; i < 20; ++i)
        engine.submit(traces.longPrompt(8000, 2000));
    tb.sim().runUntil(sim::secToTicks(600.0));
    return engine.totalTokens();
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablation: offload paths",
                  "OPT-30B long prompts, tokens in 10 min per "
                  "offload mechanism");
    stats::Table table({"path", "tokens/10min", "vs dram"});
    std::uint64_t base = 0;
    for (const char *path : {"dram", "uvm", "aqua-unstaged",
                             "aqua"}) {
        std::uint64_t tokens = runPath(path);
        if (std::string(path) == "dram")
            base = tokens;
        table.newRow()
            .cell(path)
            .cell(tokens)
            .cell(static_cast<double>(tokens) /
                      static_cast<double>(base),
                  2);
    }
    bench::show(table);
    std::printf("note: FlexGen moves its context as one large tensor "
                "per step, so staging is moot there (aqua == "
                "aqua-unstaged). Staging matters when the payload is "
                "scattered, as with per-layer LoRA tensors:\n\n");

    stats::Table lora({"path", "rct_p50_s", "rct_p95_s"});
    for (exp::OffloadMode mode : {exp::OffloadMode::Dram,
                                  exp::OffloadMode::AquaUnstaged,
                                  exp::OffloadMode::Aqua}) {
        exp::LoraExperimentConfig cfg;
        cfg.mode = mode;
        cfg.ratePerSec = 2.0;
        cfg.numRequests = 150;
        exp::LoraExperimentResult r = exp::runLoraExperiment(cfg);
        stats::Summary rct = bench::rctSummary(r.metrics);
        lora.newRow()
            .cell(exp::offloadModeName(mode))
            .cell(rct.median(), 2)
            .cell(rct.p95(), 2);
    }
    bench::show(lora);
    std::printf("takeaways: fault-driven UVM paging is no better "
                "than explicit DRAM offload (page-granular PCIe plus "
                "fault stalls); unstaged NVLink placement helps, but "
                "gathering the scattered per-layer tensors into one "
                "large transfer (AQUA's custom kernels, §5) is "
                "what realizes the full NVLink advantage.\n");
    return 0;
}
