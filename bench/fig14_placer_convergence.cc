/**
 * @file
 * Figure 14 + §A.1: AQUA-PLACER convergence time.
 *
 * Clusters of 8-GPU servers from 16 to 128 GPUs, filled either with
 * a mixed-modality split (1/3 image, 1/3 audio, 1/3 LLM consumers)
 * or a 50/50 LLM-producer/consumer split. The paper's Gurobi run
 * converges in < 1 s for the 50/50 split and up to ~45 s for the
 * mixed input, because more distinct producer types expand the
 * matching search space. Our branch-and-bound shows the same
 * ordering.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "placer/placer.hh"

using namespace aqua;

int
main()
{
    bench::banner("Figure 14", "AQUA-PLACER convergence time vs "
                               "cluster size (8-GPU servers)");

    stats::Table table({"gpus", "split", "solve_s", "nodes",
                        "optimal", "objective_gb", "greedy_gb"});
    for (std::size_t gpus : {16, 32, 64, 128}) {
        for (const char *split : {"llm-heavy", "balanced"}) {
            placer::PlacementInput input =
                exp::makeClusterInput(gpus / 8, 8, split);
            opt::MilpOptions milpOpt;
            milpOpt.maxNodes = 20000;
            milpOpt.maxSeconds = 4.0;
            placer::AquaPlacer placer(milpOpt);
            placer::Placement greedy = placer::greedyPlace(input);
            placer::Placement result = placer.place(input);
            table.newRow()
                .cell(std::uint64_t(gpus))
                .cell(split)
                .cell(result.solveSeconds, 3)
                .cell(result.nodesExplored)
                .cell(result.optimal ? "yes" : "limit")
                .cell(result.objective / 1e9, 1)
                .cell(greedy.objective / 1e9, 1);
        }
    }
    bench::show(table);
    std::printf("paper: < 1 s for the 50/50 LLM split; up to ~45 s "
                "for the mixed-modality input (more producer types "
                "=> more matchings to test).\n");
    return 0;
}
