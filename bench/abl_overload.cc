/**
 * @file
 * Ablation: overload control (deadline-aware admission + graceful
 * brownout + backpressure) under an offered-load sweep.
 *
 * Bursty deadline-stamped traffic is replayed at x1..x8 the nominal
 * rate against two configurations of the same AQUA-offloaded serving
 * stack: the uncontrolled baseline (every arrival eventually served,
 * however late) and the controlled stack (admission control sheds
 * requests whose deadline the queue already ate; the brownout ladder
 * degrades optional work before refusing admissions). Reported per
 * cell: goodput (deadline-met completions/s), deadline attainment,
 * queue-delay percentiles, sheds and brownout activity.
 *
 * The final cell replays the x4 overload with a chaos fault plan
 * injected against the donor (fault::FaultPlan): overload control and
 * failure recovery must compose — zero byte-identity violations and
 * no stuck sequences.
 *
 * `--smoke` shrinks the sweep for quick pipelines.
 */

#include <cstring>
#include <vector>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "fault/fault.hh"
#include "sim/ticks.hh"
#include "trace/trace.hh"

using namespace aqua;
using namespace aqua::sim;

namespace {

json::Object
cellJson(const exp::OverloadRunResult &r)
{
    json::Object o;
    o["requests"] = static_cast<std::int64_t>(r.metrics.size());
    o["shed"] = static_cast<std::int64_t>(r.shed);
    o["deadline_met"] = static_cast<std::int64_t>(r.deadlineMet);
    o["deadline_missed"] =
        static_cast<std::int64_t>(r.deadlineMissed);
    o["goodput_per_sec"] = r.goodputPerSec;
    o["attainment"] = r.attainment;
    o["queue_delay_p50_sec"] = r.queueDelayP50Sec;
    o["queue_delay_p99_sec"] = r.queueDelayP99Sec;
    o["fallback_swaps"] = static_cast<std::int64_t>(r.fallbackSwaps);
    o["brownout_transitions"] =
        static_cast<std::int64_t>(r.brownoutTransitions);
    o["seconds_degraded"] = r.secondsDegraded;
    o["sig_mismatches"] = static_cast<std::int64_t>(r.sigMismatches);
    o["unfinished"] = static_cast<std::int64_t>(r.unfinished);
    o["elapsed_sec"] = r.elapsedSec;
    return o;
}

/** Chaos plan for the fault+overload composition cell: transient
 *  donor loss plus link degradation mid-burst. */
fault::FaultPlan
overloadChaosPlan()
{
    fault::FaultPlan plan;
    fault::FaultSpec degrade;
    degrade.kind = fault::FaultKind::LinkDegrade;
    degrade.at = secToTicks(10.0);
    degrade.duration = secToTicks(15.0);
    degrade.factor = 0.3;
    plan.add(degrade);
    fault::FaultSpec kill;
    kill.kind = fault::FaultKind::GpuFail;
    kill.at = secToTicks(30.0);
    kill.duration = secToTicks(8.0);
    kill.gpu = 1;
    // Evacuation settles at engine iteration boundaries; under x4
    // overload iterations stretch, so the dark-memory grace must be
    // wider than the light-load 200ms seed_robustness gets away with.
    kill.grace = secToTicks(2.0);
    plan.add(kill);
    return plan;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("Overload-control ablation",
                  "bursty deadline traffic at x1..x8 load, "
                  "controlled vs uncontrolled");

    exp::OverloadRunConfig base;
    if (smoke) {
        base.numRequests = 80;
        base.maxSimSeconds = 1500.0;
    }

    std::vector<double> loads =
        smoke ? std::vector<double>{1.0, 4.0}
              : std::vector<double>{1.0, 2.0, 4.0, 8.0};

    stats::Table t({"load", "config", "served", "shed", "met",
                    "goodput/s", "attain", "qdelay p99 s",
                    "brownout", "fallback"});
    json::Object cells;
    exp::OverloadRunResult ctl1, ctl4, raw1, raw4;
    for (double load : loads) {
        for (int controlled = 0; controlled <= 1; ++controlled) {
            exp::OverloadRunConfig cfg = base;
            cfg.loadMultiplier = load;
            cfg.controlled = controlled != 0;
            exp::OverloadRunResult r = exp::runOverload(cfg);
            std::uint64_t served =
                r.deadlineMet + r.deadlineMissed;
            t.newRow()
                .cell("x" + std::to_string(static_cast<int>(load)))
                .cell(controlled ? "controlled" : "baseline")
                .cell(static_cast<double>(served), 0)
                .cell(static_cast<double>(r.shed), 0)
                .cell(static_cast<double>(r.deadlineMet), 0)
                .cell(r.goodputPerSec, 2)
                .cell(r.attainment, 2)
                .cell(r.queueDelayP99Sec, 2)
                .cell(static_cast<double>(r.brownoutTransitions), 0)
                .cell(static_cast<double>(r.fallbackSwaps), 0);
            std::string key =
                std::string(controlled ? "controlled" : "baseline") +
                "_x" + std::to_string(static_cast<int>(load));
            cells[key] = cellJson(r);
            if (load == 1.0 && controlled)
                ctl1 = r;
            if (load == 4.0 && controlled)
                ctl4 = r;
            if (load == 1.0 && !controlled)
                raw1 = r;
            if (load == 4.0 && !controlled)
                raw4 = r;
        }
    }
    bench::show(t);

    // Acceptance: at x4 offered load the controlled stack sustains
    // >= 80% of its x1 goodput with bounded p99 queue delay and no
    // stuck sequences, while the baseline's goodput collapses (under
    // half of its x1 value) behind an unbounded queue.
    bool okGoodput = ctl4.goodputPerSec >= 0.8 * ctl1.goodputPerSec;
    bool okBaselineCollapse =
        raw4.goodputPerSec < 0.5 * raw1.goodputPerSec ||
        raw4.goodputPerSec < ctl4.goodputPerSec;
    // "Bounded": under the absolute bound the SLO implies (a met
    // deadline caps queueing delay at (sloMultiple-1) x baseline) and
    // strictly below the baseline's runaway delay.
    bool okQueueDelay =
        ctl4.queueDelayP99Sec < raw4.queueDelayP99Sec &&
        ctl4.queueDelayP99Sec <= 60.0;
    bool okNoStuck = ctl1.unfinished == 0 && ctl4.unfinished == 0;
    bool okBrownout = ctl4.brownoutTransitions > 0 && ctl4.shed > 0;

    // Fault+overload composition: chaos at x4 with controls on.
    trace::TraceLog chaosLog;
    fault::FaultPlan plan = overloadChaosPlan();
    exp::OverloadRunConfig chaosCfg = base;
    chaosCfg.loadMultiplier = 4.0;
    chaosCfg.controlled = true;
    chaosCfg.faults = &plan;
    chaosCfg.traceLog = &chaosLog;
    exp::OverloadRunResult chaos = exp::runOverload(chaosCfg);
    cells["chaos_controlled_x4"] = cellJson(chaos);
    bool okChaos = chaos.sigMismatches == 0 && chaos.unfinished == 0;
    std::size_t shedEvents = chaosLog.countCategory("shed");
    std::size_t levelEvents = chaosLog.countCategory("brownout_level");

    std::printf("x4/x1 controlled goodput %.2f/%.2f (%.0f%%), "
                "baseline %.2f/%.2f\n",
                ctl4.goodputPerSec, ctl1.goodputPerSec,
                ctl1.goodputPerSec > 0.0
                    ? 100.0 * ctl4.goodputPerSec / ctl1.goodputPerSec
                    : 0.0,
                raw4.goodputPerSec, raw1.goodputPerSec);
    std::printf("chaos cell: %llu sheds traced, %llu brownout "
                "transitions traced, %llu sig mismatches, %llu "
                "unfinished\n",
                static_cast<unsigned long long>(shedEvents),
                static_cast<unsigned long long>(levelEvents),
                static_cast<unsigned long long>(chaos.sigMismatches),
                static_cast<unsigned long long>(chaos.unfinished));
    std::printf("acceptance: goodput>=80%% %s, baseline_collapses %s, "
                "bounded_p99 %s, no_stuck %s, brownout_active %s, "
                "chaos_intact %s\n",
                okGoodput ? "PASS" : "FAIL",
                okBaselineCollapse ? "PASS" : "FAIL",
                okQueueDelay ? "PASS" : "FAIL",
                okNoStuck ? "PASS" : "FAIL",
                okBrownout ? "PASS" : "FAIL",
                okChaos ? "PASS" : "FAIL");

    bench::JsonReporter report("overload");
    report.set("smoke", smoke)
        .set("num_requests",
             static_cast<std::int64_t>(base.numRequests))
        .set("slo_multiple", base.sloMultiple)
        .set("best_effort_fraction", base.bestEffortFraction);
    report.set("cells", std::move(cells));
    json::Object accept;
    accept["controlled_goodput_ge_80pct"] = okGoodput;
    accept["baseline_collapses"] = okBaselineCollapse;
    accept["bounded_queue_delay_p99"] = okQueueDelay;
    accept["no_stuck_sequences"] = okNoStuck;
    accept["brownout_active"] = okBrownout;
    accept["chaos_byte_identity"] = okChaos;
    report.set("acceptance", std::move(accept));
    report.write();

    bool ok = okGoodput && okBaselineCollapse && okQueueDelay &&
              okNoStuck && okBrownout && okChaos;
    return ok ? 0 : 1;
}
