/**
 * @file
 * Ablation: interconnect-generation sensitivity.
 *
 * §2.3: "NVlink bandwidth between a pair of Nvidia GPUs ranges
 * between 300-900 GB/s based on the GPU generation" while PCIe gen5
 * reaches 64 GB/s. This sweep varies both link speeds and measures
 * the long-prompt speedup, showing AQUA's advantage across hardware
 * generations and how far faster PCIe narrows (but does not close)
 * the gap.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "exp/testbed.hh"
#include "serve/flexgen_engine.hh"
#include "workload/generator.hh"

using namespace aqua;

namespace {

std::uint64_t
tokens(const hw::GpuSpec &spec, bool useAqua)
{
    sim::Simulation simctx(1);
    hw::Server server(simctx, 2, spec, hw::TopologyKind::DirectP2P);
    core::Coordinator coord;
    core::CoordinatorRestService rest(coord);
    std::unique_ptr<core::AquaLib> lib;
    std::unique_ptr<serve::OffloadBackend> backend;
    if (useAqua) {
        lib = std::make_unique<core::AquaLib>(server, 0, rest);
        coord.assignProducer(0, 1);
        coord.lease(1, std::uint64_t(40) << 30);
        backend = std::make_unique<serve::AquaBackend>(*lib);
    } else {
        backend = std::make_unique<serve::DramBackend>(server, 0);
    }
    serve::FlexGenEngine engine(server, 0, model::opt30b(),
                                *backend);
    workload::TraceBuilder traces{sim::Random(7)};
    for (int i = 0; i < 20; ++i)
        engine.submit(traces.longPrompt(8000, 2000));
    simctx.runUntil(sim::secToTicks(600.0));
    return engine.totalTokens();
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablation: interconnect generations",
                  "long-prompt tokens/10min as NVLink and PCIe "
                  "speeds scale");

    struct Gen
    {
        const char *name;
        double nvlink;
        double pcie;
    };
    const Gen gens[] = {
        {"A100 / PCIe4 (paper testbed)", 250e9, 25e9},
        {"H100 / PCIe5", 450e9, 50e9},
        {"B200-class / PCIe6", 900e9, 100e9},
        {"slow-NVLink sanity (PCIe-equal)", 25e9, 25e9},
    };
    stats::Table table({"generation", "dram_tokens", "aqua_tokens",
                        "speedup"});
    for (const Gen &gen : gens) {
        hw::GpuSpec spec = hw::a100_80g();
        spec.nvlinkBandwidth = gen.nvlink;
        spec.pcieBandwidth = gen.pcie;
        std::uint64_t dram = tokens(spec, false);
        std::uint64_t aqua = tokens(spec, true);
        table.newRow()
            .cell(gen.name)
            .cell(dram)
            .cell(aqua)
            .cell(static_cast<double>(aqua) /
                      static_cast<double>(dram),
                  2);
    }
    bench::show(table);
    std::printf("takeaway: the speedup tracks the NVLink:PCIe ratio "
                "until compute floors it; when NVLink is no faster "
                "than PCIe the benefit vanishes, confirming the "
                "mechanism.\n");
    return 0;
}
