/**
 * @file
 * Ablation: copy-on-write prefix caching on a shared-prefix serving
 * workload, sharing ON vs OFF.
 *
 * Requests arrive in groups that open with the same system prompt
 * (workload::Generator::sharedPrefix), so with caching enabled every
 * request after the first in a group prefills its preamble from
 * resident KV blocks. The run reports the block hit rate, the live-KV
 * high-water mark (HBM saved), bytes moved over the offload path
 * (NVLink traffic saved by shared-group dedup and resident reuse) and
 * decode throughput for both configurations, and writes the whole
 * comparison to BENCH_prefix_cache.json for CI artifact diffing.
 *
 * `--smoke` shrinks the request count for quick pipelines.
 */

#include <cstring>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

namespace {

json::Object
modeJson(const exp::PrefixAblationResult &r)
{
    stats::Summary rct;
    for (const auto &m : r.metrics) {
        if (m.finished())
            rct.add(m.rctSec());
    }
    json::Object o;
    o["finished"] = static_cast<std::int64_t>(rct.count());
    o["rct_p50_sec"] = rct.median();
    o["rct_p95_sec"] = rct.p95();
    o["tokens_per_sec"] = r.tokensPerSec;
    o["peak_live_kv_bytes"] =
        static_cast<std::int64_t>(r.peakLiveKvBytes);
    o["offload_write_bytes"] =
        static_cast<std::int64_t>(r.offloadWriteBytes);
    o["offload_read_bytes"] =
        static_cast<std::int64_t>(r.offloadReadBytes);
    o["swap_outs"] = static_cast<std::int64_t>(r.swapOuts);
    o["swap_ins"] = static_cast<std::int64_t>(r.swapIns);
    return o;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("Prefix-cache ablation",
                  "shared-prefix chatbot traffic, CoW KV sharing "
                  "on vs off");

    exp::PrefixAblationConfig cfg;
    if (smoke) {
        cfg.numRequests = 30;
        cfg.maxSimSeconds = 3000.0;
    }

    exp::PrefixAblationConfig off = cfg;
    off.prefixCache = false;
    exp::PrefixAblationResult offR = exp::runPrefixAblation(off);

    exp::PrefixAblationConfig on = cfg;
    on.prefixCache = true;
    exp::PrefixAblationResult onR = exp::runPrefixAblation(on);

    // Sharing on, but cache-only retention capped to a quarter of the
    // pool (KvCacheConfig::maxCacheShare) — the brownout-friendly
    // configuration that bounds how much HBM cache upkeep can occupy.
    exp::PrefixAblationConfig capped = cfg;
    capped.prefixCache = true;
    capped.maxCacheShare = 0.25;
    exp::PrefixAblationResult capR = exp::runPrefixAblation(capped);

    // Capped again, but victims picked cost-aware (chain depth x hit
    // count) instead of pure LRU: deep, hot preamble blocks survive
    // pressure that would rotate them out under recency alone.
    exp::PrefixAblationConfig costAware = capped;
    costAware.eviction = serve::EvictionPolicy::CostAware;
    exp::PrefixAblationResult costR = exp::runPrefixAblation(costAware);

    const exp::PrefixCacheReport &pc = onR.prefix;
    double hbmSaved =
        offR.peakLiveKvBytes > onR.peakLiveKvBytes
            ? double(offR.peakLiveKvBytes - onR.peakLiveKvBytes)
            : 0.0;
    std::uint64_t offloadOff =
        offR.offloadWriteBytes + offR.offloadReadBytes;
    std::uint64_t offloadOn =
        onR.offloadWriteBytes + onR.offloadReadBytes;

    stats::Table t({"metric", "sharing_off", "sharing_on",
                    "capped_25pct", "capped_cost_aware"});
    t.newRow()
        .cell("peak_live_kv_mib")
        .cell(double(offR.peakLiveKvBytes) / (1 << 20), 1)
        .cell(double(onR.peakLiveKvBytes) / (1 << 20), 1)
        .cell(double(capR.peakLiveKvBytes) / (1 << 20), 1)
        .cell(double(costR.peakLiveKvBytes) / (1 << 20), 1);
    t.newRow()
        .cell("offload_write_mib")
        .cell(double(offR.offloadWriteBytes) / (1 << 20), 1)
        .cell(double(onR.offloadWriteBytes) / (1 << 20), 1)
        .cell(double(capR.offloadWriteBytes) / (1 << 20), 1)
        .cell(double(costR.offloadWriteBytes) / (1 << 20), 1);
    t.newRow()
        .cell("offload_read_mib")
        .cell(double(offR.offloadReadBytes) / (1 << 20), 1)
        .cell(double(onR.offloadReadBytes) / (1 << 20), 1)
        .cell(double(capR.offloadReadBytes) / (1 << 20), 1)
        .cell(double(costR.offloadReadBytes) / (1 << 20), 1);
    t.newRow()
        .cell("tokens_per_sec")
        .cell(offR.tokensPerSec, 1)
        .cell(onR.tokensPerSec, 1)
        .cell(capR.tokensPerSec, 1)
        .cell(costR.tokensPerSec, 1);
    t.newRow()
        .cell("swap_outs")
        .cell(std::uint64_t(offR.swapOuts))
        .cell(std::uint64_t(onR.swapOuts))
        .cell(std::uint64_t(capR.swapOuts))
        .cell(std::uint64_t(costR.swapOuts));
    t.newRow()
        .cell("hit_rate_pct")
        .cell(0.0, 1)
        .cell(100.0 * pc.hitRate, 1)
        .cell(100.0 * capR.prefix.hitRate, 1)
        .cell(100.0 * costR.prefix.hitRate, 1);
    bench::show(t);

    std::printf("hit rate %.1f%% (%llu hits / %llu misses, %llu "
                "partial), %llu tokens prefilled from cache, %llu "
                "CoW forks\n",
                100.0 * pc.hitRate,
                static_cast<unsigned long long>(pc.hits),
                static_cast<unsigned long long>(pc.misses),
                static_cast<unsigned long long>(pc.partialHits),
                static_cast<unsigned long long>(pc.cachedTokens),
                static_cast<unsigned long long>(pc.cowForks));
    std::printf("HBM saved at peak: %.1f MiB; offload bytes: %.1f -> "
                "%.1f MiB (dedup saved %.1f MiB, resident reuse "
                "%.1f MiB)\n",
                hbmSaved / (1 << 20), double(offloadOff) / (1 << 20),
                double(offloadOn) / (1 << 20),
                double(pc.dedupSavedBytes) / (1 << 20),
                double(pc.residentReuseBytes) / (1 << 20));

    bool okHitRate = pc.hitRate > 0.5;
    bool okPeak = onR.peakLiveKvBytes < offR.peakLiveKvBytes;
    bool okOffload = onR.offloadWriteBytes <= offR.offloadWriteBytes;
    bool okIdentity = pc.sigMismatches == 0 &&
                      capR.prefix.sigMismatches == 0 &&
                      costR.prefix.sigMismatches == 0;
    // Under the same retention cap, cost-aware victim selection must
    // not lose hit rate to LRU on a depth-skewed workload.
    bool okCostAware =
        costR.prefix.hitRate >= capR.prefix.hitRate - 0.02;
    std::printf("acceptance: hit_rate>50%% %s, peak_live on<off %s, "
                "offload_write on<=off %s, byte_identity %s, "
                "cost_aware_no_regression %s\n",
                okHitRate ? "PASS" : "FAIL", okPeak ? "PASS" : "FAIL",
                okOffload ? "PASS" : "FAIL",
                okIdentity ? "PASS" : "FAIL",
                okCostAware ? "PASS" : "FAIL");

    bench::JsonReporter report("prefix_cache");
    report.set("smoke", smoke)
        .set("num_requests", static_cast<std::int64_t>(cfg.numRequests))
        .set("prefix_tokens", cfg.prefixTokens)
        .set("num_groups", cfg.numGroups);
    report.set("sharing_off", modeJson(offR));
    report.set("sharing_on", modeJson(onR));
    json::Object cappedJson = modeJson(capR);
    cappedJson["max_cache_share"] = capped.maxCacheShare;
    cappedJson["hit_rate"] = capR.prefix.hitRate;
    report.set("sharing_capped", std::move(cappedJson));
    json::Object costJson = modeJson(costR);
    costJson["max_cache_share"] = costAware.maxCacheShare;
    costJson["hit_rate"] = costR.prefix.hitRate;
    costJson["evictions"] =
        static_cast<std::int64_t>(costR.prefix.evictions);
    report.set("sharing_cost_aware", std::move(costJson));
    json::Object prefix;
    prefix["hit_rate"] = pc.hitRate;
    prefix["hits"] = static_cast<std::int64_t>(pc.hits);
    prefix["misses"] = static_cast<std::int64_t>(pc.misses);
    prefix["partial_hits"] = static_cast<std::int64_t>(pc.partialHits);
    prefix["collisions"] = static_cast<std::int64_t>(pc.collisions);
    prefix["evictions"] = static_cast<std::int64_t>(pc.evictions);
    prefix["cached_tokens"] = static_cast<std::int64_t>(pc.cachedTokens);
    prefix["cow_forks"] = static_cast<std::int64_t>(pc.cowForks);
    prefix["dedup_saved_bytes"] =
        static_cast<std::int64_t>(pc.dedupSavedBytes);
    prefix["resident_reuse_bytes"] =
        static_cast<std::int64_t>(pc.residentReuseBytes);
    prefix["sig_mismatches"] =
        static_cast<std::int64_t>(pc.sigMismatches);
    prefix["hit_tokens_local"] =
        static_cast<std::int64_t>(pc.hitTokensLocal);
    prefix["hit_tokens_remote_peer"] =
        static_cast<std::int64_t>(pc.hitTokensRemote);
    prefix["hit_tokens_dram"] =
        static_cast<std::int64_t>(pc.hitTokensDram);
    report.set("prefix_cache", std::move(prefix));
    json::Object accept;
    accept["hit_rate_gt_50pct"] = okHitRate;
    accept["peak_live_reduced"] = okPeak;
    accept["offload_write_not_worse"] = okOffload;
    accept["byte_identity"] = okIdentity;
    accept["cost_aware_no_regression"] = okCostAware;
    report.set("acceptance", std::move(accept));
    report.write();

    return (okHitRate && okPeak && okOffload && okIdentity &&
            okCostAware)
               ? 0
               : 1;
}
