/**
 * @file
 * Micro-benchmarks (google-benchmark) of the AQUA control plane and
 * the optimization substrate: coordinator REST round trips, simplex
 * solves, and small placements. The paper stresses that AQUA-LIB's
 * overheads stay low because coordinator calls are infrequent; this
 * pins down what one call costs in-process.
 */

#include <benchmark/benchmark.h>

#include "aqua/coordinator.hh"
#include "aqua/rest.hh"
#include "exp/experiments.hh"
#include "json/json.hh"
#include "opt/lp.hh"
#include "placer/placer.hh"

using namespace aqua;

namespace {

void
BM_CoordinatorAllocateFree(benchmark::State &state)
{
    core::Coordinator coord;
    core::CoordinatorRestService service(coord);
    coord.assignProducer(0, 1);
    coord.lease(1, std::uint64_t(60) << 30);
    for (auto _ : state) {
        json::Value req;
        req["gpu"] = 0;
        req["bytes"] = std::int64_t(1) << 30;
        core::RestResponse resp =
            service.router().dispatch("POST /allocate", req);
        json::Value freeReq;
        freeReq["tensor"] = resp.body.getInt("tensor", 0);
        service.router().dispatch("POST /free", freeReq);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoordinatorAllocateFree);

void
BM_RestJsonRoundTrip(benchmark::State &state)
{
    core::Coordinator coord;
    core::CoordinatorRestService service(coord);
    coord.lease(1, std::uint64_t(60) << 30);
    const std::string body = "{\"gpu\": 1, \"bytes\": 1073741824}";
    for (auto _ : state) {
        core::RestResponse resp =
            service.router().dispatchRaw("POST /lease", body);
        benchmark::DoNotOptimize(resp.ok());
    }
}
BENCHMARK(BM_RestJsonRoundTrip);

void
BM_SimplexSolve(benchmark::State &state)
{
    // A 20-var, 30-row transportation-style LP.
    for (auto _ : state) {
        opt::LinearProgram lp;
        std::vector<int> vars;
        for (int i = 0; i < 20; ++i)
            vars.push_back(lp.addVar(0.0, 10.0, (i % 7) - 3.0));
        for (int r = 0; r < 30; ++r) {
            std::vector<std::pair<int, double>> row;
            for (int i = 0; i < 20; ++i) {
                if ((i + r) % 3 == 0)
                    row.emplace_back(vars[i], 1.0 + (i % 5));
            }
            lp.addRow(std::move(row), opt::Relation::LessEq,
                      40.0 + r);
        }
        opt::LpResult res = opt::solveLp(lp);
        benchmark::DoNotOptimize(res.objective);
    }
}
BENCHMARK(BM_SimplexSolve);

void
BM_PlacerSmallCluster(benchmark::State &state)
{
    placer::PlacementInput input =
        exp::makeClusterInput(4, 2, "balanced");
    for (auto _ : state) {
        placer::AquaPlacer placer;
        placer::Placement p = placer.place(input);
        benchmark::DoNotOptimize(p.objective);
    }
}
BENCHMARK(BM_PlacerSmallCluster);

} // anonymous namespace

BENCHMARK_MAIN();
