/**
 * @file
 * Figures 15-17 (appendix): CFS responsiveness with alternative
 * producer colocations chosen by AQUA-PLACER.
 *
 *  - Fig. 15: the producer is itself an LLM (Mistral-7B under light
 *    ShareGPT traffic) — memory-bound jobs can still lend memory.
 *  - Fig. 16: StableDiffusion as the producer.
 *  - Fig. 17: StableDiffusion-XL and AudioGen colocations.
 *
 * All show the same story as Fig. 9: TTFT improves ~4X under CFS and
 * AQUA keeps RCT near the vLLM baseline.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("Figures 15-17", "CFS workload (5 req/s) with "
                                   "different producer colocations");

    stats::Table table({"producer", "system", "ttft_p50_s",
                        "ttft_p95_s", "rct_p50_s", "rct_p95_s"});
    for (const char *producer : {"Mistral-7B", "StableDiffusion",
                                 "StableDiffusion-XL", "AudioGen"}) {
        for (exp::ServeMode mode : {exp::ServeMode::VllmBaseline,
                                    exp::ServeMode::CfsAqua}) {
            exp::CfsExperimentConfig cfg;
            cfg.mode = mode;
            cfg.ratePerSec = 5.0;
            cfg.producerModel = producer;
            exp::CfsExperimentResult r = exp::runCfsExperiment(cfg);
            stats::Summary ttft = bench::ttftSummary(r.metrics);
            stats::Summary rct = bench::rctSummary(r.metrics);
            table.newRow()
                .cell(producer)
                .cell(exp::serveModeName(mode))
                .cell(ttft.median(), 2)
                .cell(ttft.p95(), 2)
                .cell(rct.median(), 2)
                .cell(rct.p95(), 2);
        }
    }
    bench::show(table);
    std::printf("paper: performance improvements are similar across "
                "producer choices (Figs. 9, 15, 16, 17) — even an "
                "all-LLM cluster benefits when some LLMs see low "
                "traffic.\n");
    return 0;
}
