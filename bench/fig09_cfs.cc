/**
 * @file
 * Figure 9 (and the Fig. 1 motivation): CFS responsiveness.
 *
 * Codellama-34B (memory consumer) shares a 2-GPU server with
 * Kandinsky (memory producer). Code-summarization requests arrive at
 * 2 and 5 req/s and are served by
 *   - vLLM (FCFS batching, DRAM offload),
 *   - vLLM + CFS (fair scheduling, still DRAM paging), and
 *   - AQUA (fair scheduling, context paged to the producer's HBM).
 *
 * The paper reports: CFS cuts TTFT ~4X; CFS without AQUA costs ~2X
 * in RCT; AQUA keeps the CFS TTFT while pulling RCT back down; vLLM's
 * TTFT jumps after ~20 requests when the GPU memory fills and
 * requests queue.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

namespace {

void
runRate(double rate)
{
    std::printf("--- request rate: %.0f req/s ---\n", rate);
    stats::Table summary({"system", "finished", "ttft_p50_s",
                          "ttft_p95_s", "rct_p50_s", "rct_p95_s",
                          "slo_2s", "swap_outs"});
    std::vector<exp::CfsExperimentResult> results;
    for (exp::ServeMode mode : {exp::ServeMode::VllmBaseline,
                                exp::ServeMode::CfsDram,
                                exp::ServeMode::CfsAqua}) {
        exp::CfsExperimentConfig cfg;
        cfg.mode = mode;
        cfg.ratePerSec = rate;
        exp::CfsExperimentResult r = exp::runCfsExperiment(cfg);
        stats::Summary ttft = bench::ttftSummary(r.metrics);
        stats::Summary rct = bench::rctSummary(r.metrics);
        summary.newRow()
            .cell(exp::serveModeName(mode))
            .cell(r.metrics.size())
            .cell(ttft.median(), 2)
            .cell(ttft.p95(), 2)
            .cell(rct.median(), 2)
            .cell(rct.p95(), 2)
            .cell(bench::sloAttainment(r.metrics, 2.0), 2)
            .cell(r.consumerSwapOuts);
        results.push_back(std::move(r));
    }
    bench::show(summary);

    // The per-request view (Fig. 9's x-axis): TTFT of every 10th
    // request in arrival order.
    stats::Table perReq({"request#", "vllm_ttft_s", "cfs_ttft_s",
                         "aqua_ttft_s"});
    std::size_t n = 0;
    for (const auto &r : results)
        n = std::max(n, r.metrics.size());
    auto at = [&](std::size_t sys, std::size_t idx) -> std::string {
        const auto &m = results[sys].metrics;
        for (const auto &metric : m) {
            if (metric.id == idx && metric.started()) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2f",
                              metric.ttftSec());
                return buf;
            }
        }
        return "-";
    };
    for (std::size_t i = 0; i < 100; i += 10) {
        perReq.newRow()
            .cell(i)
            .cell(at(0, i))
            .cell(at(1, i))
            .cell(at(2, i));
    }
    bench::show(perReq);
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 9", "responsiveness with completely fair "
                              "scheduling (Codellama-34B + Kandinsky)");
    runRate(2.0);
    runRate(5.0);
    std::printf("paper: CFS improves TTFT ~4X; without AQUA its RCT "
                "is ~2X worse; vLLM TTFT jumps after ~20 requests.\n");
    return 0;
}
