/**
 * @file
 * Ablation: quantized KV precision x sparse-attention reads, repricing
 * every offload decision.
 *
 * Three phases:
 *
 *  1. Precision sweep on the shared-prefix serving workload
 *     (runPrefixAblation): fp16/fp8/int4 x dense/0.5/0.25 sparse
 *     reads. Narrower KV shrinks every byte count derived from
 *     ModelSpec::kvBytesPerToken() — block sizes, swap payloads,
 *     offload traffic — so int4 should show ~4x smaller peak live KV
 *     than fp16 on the same trace, at the price of per-step dequant
 *     compute in the perf model.
 *
 *  2. Cluster borrow repricing (runClusterPrefix): sparse reads cut
 *     the per-step NVLink cost of serving a borrowed chain in place,
 *     so the borrow-vs-copy crossover admits longer chains as borrows.
 *
 *  3. Pressure-driven demotion (runOverload at x4 load): the KV
 *     precision governor quantizes cold KV leaving HBM as the pool
 *     drains, which must actually fire (reconfigurations + demoted
 *     payloads + saved bytes) without breaking byte identity.
 *
 * `--smoke` shrinks request counts for quick pipelines. Results land
 * in BENCH_kv_quant.json for CI artifact diffing.
 */

#include <cstring>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "model/kv_precision.hh"

using namespace aqua;

namespace {

constexpr model::KvPrecision kPrecisions[] = {
    model::KvPrecision::Fp16,
    model::KvPrecision::Fp8,
    model::KvPrecision::Int4,
};
constexpr double kSparsities[] = {1.0, 0.5, 0.25};

json::Object
cellJson(const exp::PrefixAblationResult &r)
{
    stats::Summary rct;
    for (const auto &m : r.metrics) {
        if (m.finished())
            rct.add(m.rctSec());
    }
    json::Object o;
    o["finished"] = static_cast<std::int64_t>(rct.count());
    o["rct_p50_sec"] = rct.median();
    o["tokens_per_sec"] = r.tokensPerSec;
    o["peak_live_kv_bytes"] =
        static_cast<std::int64_t>(r.peakLiveKvBytes);
    o["offload_write_bytes"] =
        static_cast<std::int64_t>(r.offloadWriteBytes);
    o["offload_read_bytes"] =
        static_cast<std::int64_t>(r.offloadReadBytes);
    o["hit_rate"] = r.prefix.hitRate;
    o["sig_mismatches"] =
        static_cast<std::int64_t>(r.prefix.sigMismatches);
    return o;
}

json::Object
overloadJson(const exp::OverloadRunResult &r)
{
    json::Object o;
    o["shed"] = static_cast<std::int64_t>(r.shed);
    o["goodput_per_sec"] = r.goodputPerSec;
    o["attainment"] = r.attainment;
    o["queue_delay_p99_sec"] = r.queueDelayP99Sec;
    o["brownout_transitions"] =
        static_cast<std::int64_t>(r.brownoutTransitions);
    o["brownout_escalations"] =
        static_cast<std::int64_t>(r.brownoutEscalations);
    o["seconds_degraded"] = r.secondsDegraded;
    o["precision_reconfigs"] =
        static_cast<std::int64_t>(r.precisionReconfigs);
    o["precision_demoted_payloads"] =
        static_cast<std::int64_t>(r.precisionDemotedPayloads);
    o["precision_saved_bytes"] =
        static_cast<std::int64_t>(r.precisionSavedBytes);
    o["sig_mismatches"] = static_cast<std::int64_t>(r.sigMismatches);
    o["unfinished"] = static_cast<std::int64_t>(r.unfinished);
    return o;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("KV quantization x sparse reads",
                  "precision/sparsity sweep, cluster borrow "
                  "repricing, pressure-driven demotion");

    //
    // Phase 1: precision x sparsity grid on the prefix-cache workload.
    //
    exp::PrefixAblationConfig base;
    base.prefixCache = true;
    if (smoke) {
        base.numRequests = 24;
        base.maxSimSeconds = 3000.0;
    }

    exp::PrefixAblationResult grid[3][3];
    for (int p = 0; p < 3; ++p) {
        for (int s = 0; s < 3; ++s) {
            exp::PrefixAblationConfig cfg = base;
            cfg.kvPrecision = kPrecisions[p];
            cfg.sparseReadFraction = kSparsities[s];
            grid[p][s] = exp::runPrefixAblation(cfg);
        }
    }

    stats::Table t({"precision", "sparse", "peak_live_kv_mib",
                    "offload_write_mib", "tokens_per_sec",
                    "hit_rate_pct"});
    for (int p = 0; p < 3; ++p) {
        for (int s = 0; s < 3; ++s) {
            const exp::PrefixAblationResult &r = grid[p][s];
            t.newRow()
                .cell(model::kvPrecisionName(kPrecisions[p]))
                .cell(kSparsities[s], 2)
                .cell(double(r.peakLiveKvBytes) / (1 << 20), 1)
                .cell(double(r.offloadWriteBytes) / (1 << 20), 1)
                .cell(r.tokensPerSec, 1)
                .cell(100.0 * r.prefix.hitRate, 1);
        }
    }
    bench::show(t);

    const exp::PrefixAblationResult &fp16d = grid[0][0];
    const exp::PrefixAblationResult &int4d = grid[2][0];
    double peakRatio =
        int4d.peakLiveKvBytes > 0
            ? double(fp16d.peakLiveKvBytes) /
                  double(int4d.peakLiveKvBytes)
            : 0.0;
    std::printf("peak live KV fp16 %.1f MiB -> int4 %.1f MiB "
                "(%.2fx reduction)\n",
                double(fp16d.peakLiveKvBytes) / (1 << 20),
                double(int4d.peakLiveKvBytes) / (1 << 20), peakRatio);

    bool okRatio = peakRatio >= 3.5;
    // Narrower KV must never enlarge the footprint or the offload
    // write volume, at any sparsity.
    bool okMonotone = true;
    bool okIdentity = true;
    for (int s = 0; s < 3; ++s) {
        for (int p = 1; p < 3; ++p) {
            if (grid[p][s].peakLiveKvBytes >
                    grid[p - 1][s].peakLiveKvBytes ||
                grid[p][s].offloadWriteBytes >
                    grid[p - 1][s].offloadWriteBytes)
                okMonotone = false;
        }
        for (int p = 0; p < 3; ++p) {
            if (grid[p][s].prefix.sigMismatches != 0)
                okIdentity = false;
        }
    }

    //
    // Phase 2: cluster borrow-vs-copy repricing under sparse reads.
    //
    exp::ClusterPrefixConfig cl;
    cl.registry = true;
    // 256-token preamble = 16 blocks: over the dense borrow cap (4
    // blocks -> copy), inside the sparse-repriced cap (4 / 0.25 = 16
    // -> borrow), so the crossover shift is visible.
    cl.prefixTokens = 256;
    if (smoke) {
        cl.numRequests = 48;
        cl.maxSimSeconds = 3000.0;
    }
    exp::ClusterPrefixConfig clSparse = cl;
    clSparse.sparseReadFraction = 0.25;
    exp::ClusterPrefixResult clDense = exp::runClusterPrefix(cl);
    exp::ClusterPrefixResult clSp = exp::runClusterPrefix(clSparse);

    std::printf("cluster borrows dense %llu (copies %llu) -> "
                "sparse 0.25 %llu (copies %llu), remote decode "
                "reads %.1f -> %.1f MiB\n",
                static_cast<unsigned long long>(
                    clDense.borrowAdmissions),
                static_cast<unsigned long long>(
                    clDense.copyAdmissions),
                static_cast<unsigned long long>(clSp.borrowAdmissions),
                static_cast<unsigned long long>(clSp.copyAdmissions),
                double(clDense.remoteDecodeReadBytes) / (1 << 20),
                double(clSp.remoteDecodeReadBytes) / (1 << 20));

    bool okBorrow = clSp.borrowAdmissions > clDense.borrowAdmissions;
    bool okCluster = clDense.clusterSigMismatches == 0 &&
                     clSp.clusterSigMismatches == 0 &&
                     clDense.sigMismatches == 0 &&
                     clSp.sigMismatches == 0 &&
                     clDense.unfinished == 0 && clSp.unfinished == 0;

    //
    // Phase 3: pressure-driven precision demotion at x4 load.
    //
    exp::OverloadRunConfig ov;
    ov.controlled = true;
    ov.loadMultiplier = 4.0;
    // Tight pool: x4 load must actually drain the free fraction
    // through the governor's thresholds, not just the batch cap.
    ov.kvPoolBytes = 1200ull * 1000 * 1000;
    if (smoke) {
        ov.numRequests = 60;
        ov.maxSimSeconds = 2000.0;
    }
    exp::OverloadRunConfig ovGov = ov;
    ovGov.precisionGovernor = true;
    exp::OverloadRunResult ovOff = exp::runOverload(ov);
    exp::OverloadRunResult ovOn = exp::runOverload(ovGov);

    std::printf("x4 load: governor off goodput %.2f/s, %llu "
                "escalations, %.1fs degraded; governor on goodput "
                "%.2f/s, %llu escalations, %.1fs degraded, %llu "
                "reconfigs, %llu payloads demoted, %.1f MiB saved\n",
                ovOff.goodputPerSec,
                static_cast<unsigned long long>(
                    ovOff.brownoutEscalations),
                ovOff.secondsDegraded, ovOn.goodputPerSec,
                static_cast<unsigned long long>(
                    ovOn.brownoutEscalations),
                ovOn.secondsDegraded,
                static_cast<unsigned long long>(
                    ovOn.precisionReconfigs),
                static_cast<unsigned long long>(
                    ovOn.precisionDemotedPayloads),
                double(ovOn.precisionSavedBytes) / (1 << 20));

    bool okGovernor = ovOn.precisionReconfigs > 0 &&
                      ovOn.precisionDemotedPayloads > 0 &&
                      ovOn.precisionSavedBytes > 0;
    bool okOverload = ovOff.sigMismatches == 0 &&
                      ovOn.sigMismatches == 0 &&
                      ovOff.unfinished == 0 && ovOn.unfinished == 0;

    std::printf("acceptance: int4_peak_live_ge_3.5x %s, "
                "sweep_monotone %s, byte_identity %s, "
                "sparse_borrows_not_fewer %s, cluster_clean %s, "
                "governor_active %s, overload_clean %s\n",
                okRatio ? "PASS" : "FAIL",
                okMonotone ? "PASS" : "FAIL",
                okIdentity ? "PASS" : "FAIL",
                okBorrow ? "PASS" : "FAIL",
                okCluster ? "PASS" : "FAIL",
                okGovernor ? "PASS" : "FAIL",
                okOverload ? "PASS" : "FAIL");

    bench::JsonReporter report("kv_quant");
    report.set("smoke", smoke)
        .set("num_requests",
             static_cast<std::int64_t>(base.numRequests))
        .set("load_multiplier", ov.loadMultiplier)
        .set("peak_live_reduction_int4", peakRatio);
    json::Object sweep;
    for (int p = 0; p < 3; ++p) {
        for (int s = 0; s < 3; ++s) {
            char key[32];
            std::snprintf(key, sizeof key, "%s_sparse_%02d",
                          model::kvPrecisionName(kPrecisions[p]),
                          int(kSparsities[s] * 100));
            sweep[key] = cellJson(grid[p][s]);
        }
    }
    report.set("sweep", std::move(sweep));
    json::Object cluster;
    json::Object cd;
    cd["borrow_admissions"] =
        static_cast<std::int64_t>(clDense.borrowAdmissions);
    cd["copy_admissions"] =
        static_cast<std::int64_t>(clDense.copyAdmissions);
    cd["remote_decode_read_bytes"] =
        static_cast<std::int64_t>(clDense.remoteDecodeReadBytes);
    cd["aggregate_hit_rate"] = clDense.aggregateHitRate;
    cluster["dense"] = std::move(cd);
    json::Object cs;
    cs["borrow_admissions"] =
        static_cast<std::int64_t>(clSp.borrowAdmissions);
    cs["copy_admissions"] =
        static_cast<std::int64_t>(clSp.copyAdmissions);
    cs["remote_decode_read_bytes"] =
        static_cast<std::int64_t>(clSp.remoteDecodeReadBytes);
    cs["aggregate_hit_rate"] = clSp.aggregateHitRate;
    cluster["sparse_25"] = std::move(cs);
    report.set("cluster", std::move(cluster));
    json::Object overload;
    overload["governor_off"] = overloadJson(ovOff);
    overload["governor_on"] = overloadJson(ovOn);
    report.set("overload", std::move(overload));
    json::Object accept;
    accept["int4_peak_live_ge_3_5x"] = okRatio;
    accept["sweep_monotone"] = okMonotone;
    accept["byte_identity"] = okIdentity;
    accept["sparse_borrows_not_fewer"] = okBorrow;
    accept["cluster_clean"] = okCluster;
    accept["governor_active"] = okGovernor;
    accept["overload_clean"] = okOverload;
    report.set("acceptance", std::move(accept));
    report.write();

    return (okRatio && okMonotone && okIdentity && okBorrow &&
            okCluster && okGovernor && okOverload)
               ? 0
               : 1;
}
