/**
 * @file
 * Figure 7: inference on long prompts.
 *
 * OPT-30B serves a single 8,000-token prompt workload with its
 * context offloaded — to host DRAM over PCIe under FlexGen, and to a
 * co-located compute-bound producer's HBM over NVLink under AQUA.
 * The paper measures tokens generated in ten minutes and reports a
 * 6X improvement; the two placements of the balanced split pair
 * OPT-30B with StableDiffusion and with AudioGen (§6.1).
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("Figure 7", "long-prompt tokens in 10 simulated "
                              "minutes: FlexGen (DRAM) vs AQUA");

    stats::Table table({"producer", "system", "tokens/10min",
                        "speedup"});
    for (const char *producer : {"StableDiffusion", "AudioGen"}) {
        std::uint64_t baseline = 0;
        for (exp::OffloadMode mode : {exp::OffloadMode::Dram,
                                      exp::OffloadMode::Aqua}) {
            exp::LongPromptConfig cfg;
            cfg.mode = mode;
            cfg.producerModel = producer;
            exp::LongPromptResult r = exp::runLongPrompt(cfg);
            if (mode == exp::OffloadMode::Dram)
                baseline = r.totalTokens;
            double speedup =
                baseline ? static_cast<double>(r.totalTokens) /
                               static_cast<double>(baseline)
                         : 0.0;
            table.newRow()
                .cell(producer)
                .cell(mode == exp::OffloadMode::Dram ? "FlexGen"
                                                     : "AQUA")
                .cell(r.totalTokens)
                .cell(speedup, 2);
        }
    }
    bench::show(table);
    std::printf("paper: AQUA generates 6X more tokens than FlexGen "
                "in the same ten minutes.\n");
    return 0;
}
