/**
 * @file
 * Ablation: preemption mechanism under the completely fair scheduler.
 *
 * vLLM can resolve preemption by recomputation (drop the KV and
 * re-prefill) instead of swapping. Recompute burns FLOPs
 * proportional to the context every slice; swapping burns link
 * bandwidth. This sweep shows where each loses and that AQUA's cheap
 * swaps dominate both — the quantitative case for paging context
 * over NVLink rather than regenerating it.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "exp/testbed.hh"
#include "serve/vllm_engine.hh"
#include "workload/generator.hh"

using namespace aqua;

namespace {

struct Outcome
{
    double rctP50 = 0.0;
    double ttftP95 = 0.0;
    std::uint64_t swaps = 0;
    std::uint64_t recomputes = 0;
};

Outcome
run(serve::PreemptionMode mode, bool useAqua)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P);
    serve::OffloadBackend *backend = nullptr;
    if (useAqua) {
        core::AquaLib &lib = tb.makeAquaLib(0);
        tb.assign(0, 1);
        tb.coordinator().lease(1, std::uint64_t(55) << 30);
        backend = &tb.makeAquaBackend(lib);
    } else {
        backend = &tb.makeDramBackend(0);
    }
    serve::VllmEngineConfig cfg;
    cfg.preemption = mode;
    serve::VllmEngine engine(tb.server(), 0, model::codellama34b(),
                             std::make_unique<serve::CfsPolicy>(),
                             *backend, cfg);
    workload::TraceBuilder traces(tb.sim().makeRandom());
    exp::driveTrace(tb.sim(), engine, traces.codeSummary(5.0, 100));
    tb.sim().runUntil(sim::secToTicks(4000.0));

    Outcome out;
    out.rctP50 = bench::rctSummary(engine.finished()).median();
    out.ttftP95 = bench::ttftSummary(engine.finished()).p95();
    out.swaps = engine.swapOutCount();
    out.recomputes = engine.recomputeCount();
    return out;
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablation: preemption mechanism",
                  "CFS on Codellama-34B at 5 req/s: recompute vs "
                  "swap-PCIe vs swap-NVLink");
    stats::Table table({"mechanism", "rct_p50_s", "ttft_p95_s",
                        "swaps", "recomputes"});
    struct Case
    {
        const char *name;
        serve::PreemptionMode mode;
        bool aqua;
    };
    const Case cases[] = {
        {"recompute", serve::PreemptionMode::Recompute, false},
        {"swap (PCIe/DRAM)", serve::PreemptionMode::Swap, false},
        {"swap (NVLink/AQUA)", serve::PreemptionMode::Swap, true},
    };
    for (const Case &c : cases) {
        Outcome out = run(c.mode, c.aqua);
        table.newRow()
            .cell(c.name)
            .cell(out.rctP50, 2)
            .cell(out.ttftP95, 2)
            .cell(out.swaps)
            .cell(out.recomputes);
    }
    bench::show(table);
    std::printf("takeaway: fair scheduling needs cheap context "
                "switches; regenerating context or paging it over "
                "PCIe both inflate RCT, while NVLink swaps keep the "
                "CFS overhead small (§5).\n");
    return 0;
}
