/**
 * @file
 * Figure 2: resource contention of generative models vs batch size.
 *
 * Audio (AudioGen) and image (StableDiffusion) generation plateau in
 * throughput with tens of GB of HBM to spare — they are compute-
 * bound. The LLM (Llama-2-13B) instead consumes nearly all memory at
 * peak throughput and degrades once the KV cache spills — it is
 * memory-bound. This asymmetry is AQUA's opportunity (§2.1).
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("Figure 2", "throughput and free HBM vs batch size "
                              "(A100-80G)");

    const std::vector<std::uint32_t> batches = {1, 2, 4, 8, 12, 16,
                                                24, 32, 48, 64, 96};
    for (const char *name : {"AudioGen", "StableDiffusion",
                             "Llama-2-13B"}) {
        std::printf("--- %s ---\n", name);
        stats::Table table({"batch", "throughput_items_per_s",
                            "free_memory_gb"});
        for (const exp::ContentionPoint &p :
             exp::contentionSweep(name, batches)) {
            table.newRow()
                .cell(std::uint64_t(p.batchSize))
                .cell(p.throughput, 2)
                .cell(p.freeMemoryGb, 1);
        }
        bench::show(table);
    }
    std::printf("paper: audio/image models plateau with 10s of GB "
                "free (compute-bound); the LLM's free memory goes to "
                "~0 at peak throughput and throughput declines "
                "beyond it (memory-bound).\n");
    return 0;
}
