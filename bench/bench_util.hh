/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses.
 *
 * Every bench binary regenerates one table or figure from the paper's
 * evaluation: it prints the same rows/series the paper reports, plus a
 * short "paper vs measured" note. Absolute numbers come from a
 * simulated substrate; the shapes are what must (and do) match.
 */

#ifndef AQUA_BENCH_BENCH_UTIL_HH
#define AQUA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "json/json.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/request.hh"

namespace aqua::bench {

/** Print a figure banner. */
inline void
banner(const std::string &figure, const std::string &caption)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s — %s\n", figure.c_str(), caption.c_str());
    std::printf("==============================================="
                "=================\n");
}

/** Print a table. */
inline void
show(const stats::Table &table)
{
    std::printf("%s\n", table.render().c_str());
}

/** TTFT summary over finished requests (seconds). */
inline stats::Summary
ttftSummary(const std::vector<workload::RequestMetrics> &metrics)
{
    stats::Summary s;
    for (const auto &m : metrics) {
        if (m.started())
            s.add(m.ttftSec());
    }
    return s;
}

/** RCT summary over finished requests (seconds). */
inline stats::Summary
rctSummary(const std::vector<workload::RequestMetrics> &metrics)
{
    stats::Summary s;
    for (const auto &m : metrics) {
        if (m.finished())
            s.add(m.rctSec());
    }
    return s;
}

/** Sorted RCTs in seconds (the paper's Fig. 8/11/12 x-axis). */
inline std::vector<double>
sortedRcts(const std::vector<workload::RequestMetrics> &metrics)
{
    stats::Summary s = rctSummary(metrics);
    return s.sorted();
}

/**
 * Responsiveness SLO attainment: the fraction of requests whose
 * first token arrived within @p ttftDeadlineSec (unstarted requests
 * count as misses).
 */
inline double
sloAttainment(const std::vector<workload::RequestMetrics> &metrics,
              double ttftDeadlineSec)
{
    if (metrics.empty())
        return 0.0;
    std::size_t hits = 0;
    for (const auto &m : metrics) {
        if (m.started() && m.ttftSec() <= ttftDeadlineSec)
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(metrics.size());
}

/**
 * Machine-readable benchmark reporter.
 *
 * Collects named metrics into a JSON document and writes it as
 * BENCH_<name>.json in the working directory, so CI can archive runs
 * as artifacts and diff them across commits. The text tables stay the
 * human-facing output; this is the scriptable twin.
 *
 * The written file is *byte-deterministic* for a deterministic bench:
 * keys are serialized in sorted order regardless of insertion order,
 * and the reporter never stamps wall-clock times or dates into the
 * document. Benches must follow the same policy — report simulated
 * time, seeds and counts, and keep host timings on stdout (or under
 * keys the consumer knows to ignore) so two runs of the same seed
 * diff clean. CI's determinism check relies on this.
 */
class JsonReporter
{
  public:
    explicit JsonReporter(std::string name) : benchName(std::move(name))
    {
        doc["bench"] = benchName;
        doc["schema_version"] = 1;
    }

    /** Set a top-level metric (chainable). */
    JsonReporter &
    set(const std::string &key, json::Value v)
    {
        doc[key] = std::move(v);
        return *this;
    }

    /** Add a percentile breakdown of @p s under @p key. */
    JsonReporter &
    setSummary(const std::string &key, const stats::Summary &s)
    {
        json::Object o;
        o["count"] = static_cast<std::int64_t>(s.count());
        if (!s.empty()) {
            o["mean"] = s.mean();
            o["min"] = s.min();
            o["p50"] = s.median();
            o["p95"] = s.p95();
            o["p99"] = s.p99();
            o["max"] = s.max();
        }
        doc[key] = std::move(o);
        return *this;
    }

    /** Mutable document root (for nested structures). */
    json::Object &root() { return doc; }

    /** Output path: BENCH_<name>.json in the working directory. */
    std::string
    path() const
    {
        return "BENCH_" + benchName + ".json";
    }

    /** The document exactly as write() serializes it. */
    std::string
    dumpCanonical() const
    {
        std::string out = json::canonicalized(json::Value(doc)).dump(2);
        out.push_back('\n');
        return out;
    }

    /**
     * Write the document. @return false (with a note on stderr) if
     * the file cannot be created; benches report but don't fail.
     */
    bool
    write() const
    {
        std::string out = dumpCanonical();
        std::string file = path();
        std::FILE *fp = std::fopen(file.c_str(), "w");
        if (!fp) {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         file.c_str());
            return false;
        }
        std::fwrite(out.data(), 1, out.size(), fp);
        std::fclose(fp);
        std::printf("[json] wrote %s\n", file.c_str());
        return true;
    }

  private:
    std::string benchName;
    json::Object doc;
};

} // namespace aqua::bench

#endif // AQUA_BENCH_BENCH_UTIL_HH
