/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses.
 *
 * Every bench binary regenerates one table or figure from the paper's
 * evaluation: it prints the same rows/series the paper reports, plus a
 * short "paper vs measured" note. Absolute numbers come from a
 * simulated substrate; the shapes are what must (and do) match.
 */

#ifndef AQUA_BENCH_BENCH_UTIL_HH
#define AQUA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/request.hh"

namespace aqua::bench {

/** Print a figure banner. */
inline void
banner(const std::string &figure, const std::string &caption)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s — %s\n", figure.c_str(), caption.c_str());
    std::printf("==============================================="
                "=================\n");
}

/** Print a table. */
inline void
show(const stats::Table &table)
{
    std::printf("%s\n", table.render().c_str());
}

/** TTFT summary over finished requests (seconds). */
inline stats::Summary
ttftSummary(const std::vector<workload::RequestMetrics> &metrics)
{
    stats::Summary s;
    for (const auto &m : metrics) {
        if (m.started())
            s.add(m.ttftSec());
    }
    return s;
}

/** RCT summary over finished requests (seconds). */
inline stats::Summary
rctSummary(const std::vector<workload::RequestMetrics> &metrics)
{
    stats::Summary s;
    for (const auto &m : metrics) {
        if (m.finished())
            s.add(m.rctSec());
    }
    return s;
}

/** Sorted RCTs in seconds (the paper's Fig. 8/11/12 x-axis). */
inline std::vector<double>
sortedRcts(const std::vector<workload::RequestMetrics> &metrics)
{
    stats::Summary s = rctSummary(metrics);
    return s.sorted();
}

/**
 * Responsiveness SLO attainment: the fraction of requests whose
 * first token arrived within @p ttftDeadlineSec (unstarted requests
 * count as misses).
 */
inline double
sloAttainment(const std::vector<workload::RequestMetrics> &metrics,
              double ttftDeadlineSec)
{
    if (metrics.empty())
        return 0.0;
    std::size_t hits = 0;
    for (const auto &m : metrics) {
        if (m.started() && m.ttftSec() <= ttftDeadlineSec)
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(metrics.size());
}

} // namespace aqua::bench

#endif // AQUA_BENCH_BENCH_UTIL_HH
