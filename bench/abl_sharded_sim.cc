/**
 * @file
 * Ablation: sharded cluster-scale simulation vs the sequential twin.
 *
 * The headline run is the issue's acceptance case: a 64-GPU cluster
 * (8 NVLink domains x 8 GPUs) serving one million requests with live
 * placement churn and cross-domain hot-prefix traffic, executed on
 * the sequential single-queue reference and on the sharded
 * conservative-lookahead executor. The differential harness then
 * asserts bit-identical per-domain event digests, end-state stats and
 * message counts. A seed matrix repeats the equivalence check on
 * smaller instances for >= 8 seeds, plus run-twice determinism and
 * worker-count invariance.
 *
 * Host wall-clock numbers (and the resulting speedup) are printed to
 * stdout only; BENCH_sharded_sim.json carries exclusively
 * deterministic values so two runs of the same seed are byte-equal
 * (CI diffs the file).
 *
 * Flags: `--smoke` shrinks the workload for quick pipelines,
 * `--seed N` rebases the seed matrix, `--threads N` pins the sharded
 * executor's worker count (0 = auto).
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "exp/cluster_sim.hh"
#include "stats/table.hh"

using namespace aqua;
using namespace aqua::exp;

namespace {

ClusterSimConfig
clusterConfig(std::uint64_t seed, std::uint64_t requests)
{
    ClusterSimConfig cfg;
    cfg.numDomains = 8;
    cfg.gpusPerDomain = 8;
    cfg.modelsPerDomain = 2;
    cfg.seed = seed;
    cfg.numRequests = requests;
    cfg.arrivalRatePerDomain = 4000.0;
    cfg.prefixProb = 0.3;
    cfg.prefixPool = 64;
    cfg.placementEvents = 12;
    cfg.churnIntervalSec = requests >= 500000 ? 2.0 : 0.05;
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::uint64_t baseSeed = 1;
    unsigned threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            baseSeed = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
    }

    std::uint64_t headlineRequests = smoke ? 50000 : 1000000;
    std::uint64_t seedRequests = smoke ? 5000 : 50000;

    bench::banner("Ablation: sharded simulation",
                  "conservative-lookahead shards vs the sequential "
                  "twin (64 GPUs, differential equivalence)");

    bench::JsonReporter json("sharded_sim");
    json::Object cfgJson;
    cfgJson["domains"] = 8;
    cfgJson["gpus_per_domain"] = 8;
    cfgJson["headline_requests"] = headlineRequests;
    cfgJson["seed_requests"] = seedRequests;
    cfgJson["base_seed"] = baseSeed;
    cfgJson["smoke"] = smoke;
    json.set("config", std::move(cfgJson));

    //
    // Headline: 1M requests through both executors, diffed.
    //
    ClusterSimConfig headline = clusterConfig(baseSeed,
                                              headlineRequests);
    std::printf("[headline] sequential executor (%llu requests)...\n",
                static_cast<unsigned long long>(headlineRequests));
    ClusterRunResult seq = runClusterSequential(headline);
    std::printf("[headline] sharded executor...\n");
    ClusterRunResult shard = runClusterSharded(headline, threads);

    std::string why;
    bool headlineEq = equivalentRuns(seq, shard, &why);

    stats::Table t({"executor", "events", "cross msgs", "windows",
                    "threads", "wall (s)"});
    t.addRow({"sequential", std::to_string(seq.eventsFired),
              std::to_string(seq.crossMessages), "-", "1",
              std::to_string(seq.wallSeconds)});
    t.addRow({"sharded", std::to_string(shard.eventsFired),
              std::to_string(shard.crossMessages),
              std::to_string(shard.windows),
              std::to_string(shard.threads),
              std::to_string(shard.wallSeconds)});
    bench::show(t);
    std::printf("headline equivalent: %s%s%s\n",
                headlineEq ? "yes" : "NO",
                headlineEq ? "" : " — ", why.c_str());
    if (shard.wallSeconds > 0.0)
        std::printf("wall speedup (host-dependent, stdout only): "
                    "%.2fx\n", seq.wallSeconds / shard.wallSeconds);

    json::Object head;
    head["requests"] = headlineRequests;
    head["events_fired"] = seq.eventsFired;
    head["cross_messages"] = seq.crossMessages;
    head["sharded_windows"] = shard.windows;
    head["equivalent"] = headlineEq;
    head["stats"] = seq.stats;
    json.set("headline", std::move(head));

    //
    // Seed matrix: >= 8 seeds, sequential vs sharded at a smaller
    // size (CI runs this under sanitizers too).
    //
    bool allSeeds = true;
    json::Array seedRows;
    for (std::uint64_t s = 0; s < 8; ++s) {
        std::uint64_t seed = baseSeed + s;
        ClusterSimConfig cfg = clusterConfig(seed, seedRequests);
        ClusterRunResult a = runClusterSequential(cfg);
        ClusterRunResult b = runClusterSharded(cfg, threads);
        std::string seedWhy;
        bool eq = equivalentRuns(a, b, &seedWhy);
        allSeeds = allSeeds && eq;
        std::printf("[seed %llu] %s%s%s\n",
                    static_cast<unsigned long long>(seed),
                    eq ? "equivalent" : "MISMATCH",
                    eq ? "" : ": ", seedWhy.c_str());
        json::Object row;
        row["seed"] = seed;
        row["equivalent"] = eq;
        row["digest0"] = a.digests.empty() ? 0 : a.digests[0];
        seedRows.push_back(std::move(row));
    }
    json.set("seeds", std::move(seedRows));

    //
    // Determinism and invariance booleans.
    //
    ClusterSimConfig detCfg = clusterConfig(baseSeed, seedRequests);
    ClusterRunResult d1 = runClusterSharded(detCfg, threads);
    ClusterRunResult d2 = runClusterSharded(detCfg, threads);
    bool runTwice = equivalentRuns(d1, d2);

    ClusterRunResult one = runClusterSharded(detCfg, 1);
    ClusterRunResult many = runClusterSharded(detCfg, 4);
    bool threadsInvariant = equivalentRuns(one, many);

    std::printf("run twice identical: %s\n", runTwice ? "yes" : "NO");
    std::printf("worker-count invariant: %s\n",
                threadsInvariant ? "yes" : "NO");

    json.set("equivalent_headline", headlineEq);
    json.set("equivalent_all_seeds", allSeeds);
    json.set("run_twice_identical", runTwice);
    json.set("threads_invariant", threadsInvariant);
    json.write();

    bool ok = headlineEq && allSeeds && runTwice && threadsInvariant;
    std::printf("%s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
