/**
 * @file
 * Figure 1 (motivation): responsiveness vs throughput of LLM
 * inference at 5 req/s.
 *
 * vLLM batch-processes prompts: once ~20 requests exhaust GPU memory
 * it queues new arrivals and TTFT spikes. Fair scheduling fixes TTFT
 * but paging context over PCIe inflates RCT ~50%+. AQUA pages over
 * NVLink and gets both: responsive inference with low RCT.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("Figure 1", "TTFT (responsiveness) and RCT "
                              "(throughput) per request at 5 req/s");

    std::vector<exp::CfsExperimentResult> results;
    for (exp::ServeMode mode : {exp::ServeMode::VllmBaseline,
                                exp::ServeMode::CfsDram,
                                exp::ServeMode::CfsAqua}) {
        exp::CfsExperimentConfig cfg;
        cfg.mode = mode;
        cfg.ratePerSec = 5.0;
        results.push_back(exp::runCfsExperiment(cfg));
    }

    auto metric = [&](std::size_t sys, std::size_t id, bool rct)
        -> std::string {
        for (const auto &m : results[sys].metrics) {
            if (m.id != id)
                continue;
            if ((rct && !m.finished()) || (!rct && !m.started()))
                break;
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2f",
                          rct ? m.rctSec() : m.ttftSec());
            return buf;
        }
        return "-";
    };

    stats::Table table({"request#", "vllm_ttft", "cfs_ttft",
                        "aqua_ttft", "vllm_rct", "cfs_rct",
                        "aqua_rct"});
    for (std::size_t i = 0; i < 100; i += 5) {
        table.newRow()
            .cell(i)
            .cell(metric(0, i, false))
            .cell(metric(1, i, false))
            .cell(metric(2, i, false))
            .cell(metric(0, i, true))
            .cell(metric(1, i, true))
            .cell(metric(2, i, true));
    }
    bench::show(table);

    stats::Summary vllmTtft = bench::ttftSummary(results[0].metrics);
    stats::Summary aquaTtft = bench::ttftSummary(results[2].metrics);
    stats::Summary cfsRct = bench::rctSummary(results[1].metrics);
    stats::Summary aquaRct = bench::rctSummary(results[2].metrics);
    std::printf("TTFT p95: vLLM %.2fs vs AQUA %.2fs (%.1fX better)\n",
                vllmTtft.p95(), aquaTtft.p95(),
                vllmTtft.p95() / aquaTtft.p95());
    std::printf("RCT p50: CFS-over-PCIe %.2fs vs AQUA %.2fs "
                "(paper: fair scheduling over PCIe costs ~50%% RCT; "
                "AQUA removes most of it)\n",
                cfsRct.median(), aquaRct.median());
    return 0;
}
