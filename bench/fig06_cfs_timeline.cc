/**
 * @file
 * Figure 6: the CFS schedule itself.
 *
 * The paper contrasts vLLM's batch processing with AQUA's CFS, where
 * "each slice generates 5 tokens" and prompts rotate through the GPU.
 * This harness serves six prompts on a memory-tight GPU and renders
 * which prompts generated tokens over time — batch scheduling runs
 * the first ones to completion while the rest starve; CFS rotates.
 */

#include <map>
#include <memory>

#include "bench/bench_util.hh"
#include "exp/testbed.hh"
#include "serve/vllm_engine.hh"

using namespace aqua;

namespace {

void
timeline(const char *label, bool fair)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P);
    core::AquaLib &lib = tb.makeAquaLib(0);
    tb.assign(0, 1);
    tb.coordinator().lease(1, std::uint64_t(55) << 30);
    auto &backend = tb.makeAquaBackend(lib);

    serve::VllmEngineConfig cfg;
    // A pool that fits only ~2 of the 6 prompts at a time.
    cfg.kvPoolBytesOverride = std::uint64_t(300) << 20;
    cfg.cfsSliceTokens = 5;
    cfg.slackTokens = 0;
    std::unique_ptr<serve::SchedulerPolicy> policy;
    if (fair)
        policy = std::make_unique<serve::CfsPolicy>();
    else
        policy = std::make_unique<serve::FcfsPolicy>();
    serve::VllmEngine engine(tb.server(), 0, model::codellama34b(),
                             std::move(policy), backend, cfg);

    // Bucketed activity: request -> tokens per 2 s window.
    std::map<std::uint64_t, std::map<std::uint64_t, int>> activity;
    engine.onIteration([&](sim::Tick when,
                           const std::vector<std::uint64_t> &ids) {
        std::uint64_t bucket = when / sim::secToTicks(2.0);
        for (std::uint64_t id : ids)
            ++activity[id][bucket];
    });

    for (std::uint64_t i = 0; i < 6; ++i) {
        workload::Request r;
        r.id = i;
        r.promptTokens = 300;
        r.maxNewTokens = 200;
        engine.submit(r);
    }
    tb.sim().runUntil(sim::secToTicks(120.0));

    std::printf("--- %s ---\n", label);
    std::printf("prompt | 2s windows (#tokens: .=0 o=1-4 O=5+)\n");
    std::uint64_t lastBucket = 0;
    for (const auto &[id, buckets] : activity) {
        if (!buckets.empty())
            lastBucket =
                std::max(lastBucket, buckets.rbegin()->first);
    }
    for (std::uint64_t id = 0; id < 6; ++id) {
        std::printf("   p%llu  | ",
                    static_cast<unsigned long long>(id));
        for (std::uint64_t b = 0; b <= lastBucket && b < 40; ++b) {
            int tokens = 0;
            auto it = activity.find(id);
            if (it != activity.end()) {
                auto bit = it->second.find(b);
                if (bit != it->second.end())
                    tokens = bit->second;
            }
            std::printf("%c", tokens == 0   ? '.'
                              : tokens < 5 ? 'o'
                                           : 'O');
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 6", "batch scheduling vs the completely "
                              "fair scheduler (5-token slices), six "
                              "prompts on a memory-tight GPU");
    timeline("vLLM batch scheduling", false);
    timeline("AQUA CFS (k = 5 tokens)", true);
    std::printf("paper: vLLM runs whatever fits and queues the rest; "
                "CFS gives every prompt a slice of every window by "
                "paging contexts through the producer GPU.\n");
    return 0;
}
