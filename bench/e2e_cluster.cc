/**
 * @file
 * §6.1 end-to-end evaluation: a 16-GPU cluster (8 servers x 2 GPUs)
 * hosting 16 models from the balanced or LLM-heavy split, placed by
 * AQUA-PLACER and evaluated server by server.
 *
 * The paper reports that with AQUA, OPT-30B long-prompt consumers
 * generate 6X the tokens, LoRA consumers improve RCT up to 1.8X, and
 * CFS consumers keep TTFT low — simultaneously, across the cluster.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("End-to-end cluster (§6.1)",
                  "16 models on 8x2-GPU servers, placed by "
                  "AQUA-PLACER, 5 simulated minutes per server");

    for (const char *split : {"balanced", "llm-heavy"}) {
        std::printf("--- split: %s ---\n", split);
        exp::EndToEndConfig cfg;
        cfg.split = split;
        cfg.withAqua = false;
        exp::EndToEndResult base = exp::runEndToEnd(cfg);
        cfg.withAqua = true;
        exp::EndToEndResult aqua = exp::runEndToEnd(cfg);

        stats::Table table({"metric", "baseline", "aqua", "ratio"});
        auto ratioRow = [&](const char *name, double b, double a,
                            bool higherBetter) {
            double ratio = higherBetter ? a / b : b / a;
            table.newRow()
                .cell(name)
                .cell(b, 2)
                .cell(a, 2)
                .cell(b > 0 && a > 0 ? ratio : 0.0, 2);
        };
        ratioRow("long-prompt tokens",
                 static_cast<double>(base.longPromptTokens),
                 static_cast<double>(aqua.longPromptTokens), true);
        if (!base.loraMetrics.empty() &&
            !aqua.loraMetrics.empty()) {
            ratioRow("LoRA RCT p50 (s)",
                     bench::rctSummary(base.loraMetrics).median(),
                     bench::rctSummary(aqua.loraMetrics).median(),
                     false);
        }
        if (!base.cfsMetrics.empty() && !aqua.cfsMetrics.empty()) {
            ratioRow("CFS TTFT p95 (s)",
                     bench::ttftSummary(base.cfsMetrics).p95(),
                     bench::ttftSummary(aqua.cfsMetrics).p95(),
                     false);
            ratioRow("CFS RCT p50 (s)",
                     bench::rctSummary(base.cfsMetrics).median(),
                     bench::rctSummary(aqua.cfsMetrics).median(),
                     false);
        }
        bench::show(table);
        std::printf("consumers paired with producers: %zu / %zu; "
                    "long-prompt consumers: %zu; producer items "
                    "(aqua): %llu\n\n",
                    aqua.pairedConsumers, aqua.totalConsumers,
                    aqua.longPromptConsumers,
                    static_cast<unsigned long long>(
                        aqua.producerItems));
    }
    std::printf("paper: across the cluster, AQUA simultaneously "
                "delivers the Fig. 7 long-prompt gain, the Fig. 8 "
                "LoRA gain and the Fig. 9 responsiveness gain.\n");
    return 0;
}
