/**
 * @file
 * Ablation: cross-server prefix federation over the inter-server
 * fabric.
 *
 * N servers (one consumer engine each) serve traffic opening with the
 * same hot preamble. Siloed per-server registries re-prefill the
 * preamble once per server *and* can never share chatbot history that
 * hops servers; federation advertises each server's home chains
 * through the directory layer so a consumer streams the KV over the
 * fabric instead — when the stream-vs-recompute cost model says the
 * wire beats the roofline. Three cells:
 *
 *  - on/off: single-shot shared-preamble trace plus a chatbot whose
 *    turns hop servers, federation off vs on;
 *  - cost model: wire degradation sweep; decisions must flip from
 *    stream to recompute as the fabric sickens, with nothing stuck
 *    either way;
 *  - chaos: the origin server's home GPU is killed and the fabric
 *    degraded mid-run; every request completes and the output digest
 *    matches the fault-free twin and the federation-disabled twin
 *    bit for bit.
 *
 * Results go to BENCH_federation.json. `--smoke` shrinks every cell.
 */

#include <cstring>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "trace/trace.hh"

using namespace aqua;

namespace {

json::Object
cellJson(const exp::FederationRunResult &r)
{
    stats::Summary rct;
    for (const auto &m : r.metrics) {
        if (m.finished())
            rct.add(m.rctSec());
    }
    json::Object o;
    o["finished"] = static_cast<std::int64_t>(rct.count());
    o["unfinished"] = static_cast<std::int64_t>(r.unfinished);
    o["rct_p50_sec"] = rct.median();
    o["rct_p95_sec"] = rct.p95();
    o["tokens_per_sec"] = r.tokensPerSec;
    o["aggregate_hit_rate"] = r.aggregateHitRate;
    o["prompt_tokens"] = static_cast<std::int64_t>(r.promptTokens);
    o["tail_tokens"] = static_cast<std::int64_t>(r.tailTokens);
    o["cached_tokens"] = static_cast<std::int64_t>(r.cachedTokens);
    o["hit_tokens_local"] =
        static_cast<std::int64_t>(r.hitTokensLocal);
    o["hit_tokens_remote_peer"] =
        static_cast<std::int64_t>(r.hitTokensRemote);
    o["hit_tokens_dram"] = static_cast<std::int64_t>(r.hitTokensDram);
    o["hit_tokens_remote_server"] =
        static_cast<std::int64_t>(r.hitTokensRemoteServer);
    o["sig_mismatches"] = static_cast<std::int64_t>(r.sigMismatches);
    o["cluster_sig_mismatches"] =
        static_cast<std::int64_t>(r.clusterSigMismatches);
    o["fed_hits"] = static_cast<std::int64_t>(r.fedHits);
    o["fed_misses"] = static_cast<std::int64_t>(r.fedMisses);
    o["fed_stream_decisions"] =
        static_cast<std::int64_t>(r.fedStreamDecisions);
    o["fed_recompute_decisions"] =
        static_cast<std::int64_t>(r.fedRecomputeDecisions);
    o["fed_fetch_refusals"] =
        static_cast<std::int64_t>(r.fedFetchRefusals);
    o["fed_streams_completed"] =
        static_cast<std::int64_t>(r.fedStreamsCompleted);
    o["fed_streams_invalidated"] =
        static_cast<std::int64_t>(r.fedStreamsInvalidated);
    o["fed_stream_bytes"] =
        static_cast<std::int64_t>(r.fedStreamBytes);
    o["dir_adverts_published"] =
        static_cast<std::int64_t>(r.dirAdvertsPublished);
    o["dir_tombstones"] = static_cast<std::int64_t>(r.dirTombstones);
    o["dir_adverts_applied"] =
        static_cast<std::int64_t>(r.dirAdvertsApplied);
    o["dir_adverts_dropped"] =
        static_cast<std::int64_t>(r.dirAdvertsDropped);
    o["dir_anti_entropy_rounds"] =
        static_cast<std::int64_t>(r.dirAntiEntropyRounds);
    o["dir_fetch_grants"] =
        static_cast<std::int64_t>(r.dirFetchGrants);
    o["dir_fetch_cap_rejects"] =
        static_cast<std::int64_t>(r.dirFetchCapRejects);
    o["dir_fetch_validated"] =
        static_cast<std::int64_t>(r.dirFetchValidated);
    o["dir_fetch_invalidated"] =
        static_cast<std::int64_t>(r.dirFetchInvalidated);
    o["fabric_transfers"] =
        static_cast<std::int64_t>(r.fabricTransfers);
    o["fabric_bytes_moved"] =
        static_cast<std::int64_t>(r.fabricBytesMoved);
    o["fabric_queue_ticks"] =
        static_cast<std::int64_t>(r.fabricQueueTicks);
    o["output_digest"] = static_cast<std::int64_t>(r.outputDigest);
    return o;
}

/** Preamble tokens re-prefilled from scratch across the cluster:
 *  prompt minus the unique per-request tails minus everything served
 *  from cache (local, remote-peer or streamed). */
std::uint64_t
preambleColdTokens(const exp::FederationRunResult &r)
{
    std::uint64_t preamble = r.promptTokens - r.tailTokens;
    return preamble > r.cachedTokens ? preamble - r.cachedTokens : 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("Cross-server prefix federation",
                  "stream a remote server's prefix KV over the "
                  "fabric, or re-prefill when the wire loses");

    exp::FederationRunConfig base;
    if (smoke) {
        base.numRequests = 24;
        base.maxSimSeconds = 3000.0;
    }

    // Cell 1: single-shot shared preamble, federation off vs on.
    exp::FederationRunConfig offCfg = base;
    offCfg.federation = false;
    exp::FederationRunResult off = exp::runFederation(offCfg);
    exp::FederationRunResult on = exp::runFederation(base);
    std::printf("single-shot: hit rate %.3f -> %.3f, preamble cold "
                "tokens %llu -> %llu (budget %llu), streamed tokens "
                "%llu\n",
                off.aggregateHitRate, on.aggregateHitRate,
                static_cast<unsigned long long>(preambleColdTokens(off)),
                static_cast<unsigned long long>(preambleColdTokens(on)),
                static_cast<unsigned long long>(
                    std::uint64_t(base.servers) * base.prefixTokens),
                static_cast<unsigned long long>(
                    on.hitTokensRemoteServer));

    // Cell 1b: chatbot whose turns hop servers — the re-sent history
    // is only reachable through federation.
    exp::FederationRunConfig chatCfg = base;
    chatCfg.chatbot = true;
    chatCfg.prefixTokens = 512;
    chatCfg.users = smoke ? 6 : 9;
    chatCfg.turns = smoke ? 2 : 3;
    exp::FederationRunConfig chatOffCfg = chatCfg;
    chatOffCfg.federation = false;
    exp::FederationRunResult chatOff = exp::runFederation(chatOffCfg);
    exp::FederationRunResult chatOn = exp::runFederation(chatCfg);
    std::printf("chatbot (turns hop servers): hit rate %.3f -> %.3f, "
                "remote-server hit tokens %llu, streams %llu\n",
                chatOff.aggregateHitRate, chatOn.aggregateHitRate,
                static_cast<unsigned long long>(
                    chatOn.hitTokensRemoteServer),
                static_cast<unsigned long long>(
                    chatOn.fedStreamsCompleted));

    // Cell 2: the stream-vs-recompute cost model against a sickening
    // wire. As degradation deepens the streamed-copy estimate crosses
    // the local re-prefill roofline and decisions must flip.
    std::vector<double> degr =
        smoke ? std::vector<double>{1.0, 0.01}
              : std::vector<double>{1.0, 0.25, 0.05, 0.01};
    stats::Table t({"degradation", "stream", "recompute", "streamed_tok",
                    "hit_rate", "unfinished"});
    json::Object sweepJson;
    exp::FederationRunResult healthiest, sickest;
    for (double d : degr) {
        exp::FederationRunConfig cfg = base;
        cfg.fabricDegradation = d;
        exp::FederationRunResult r = exp::runFederation(cfg);
        t.newRow()
            .cell(d, 2)
            .cell(r.fedStreamDecisions)
            .cell(r.fedRecomputeDecisions)
            .cell(r.hitTokensRemoteServer)
            .cell(r.aggregateHitRate, 3)
            .cell(r.unfinished);
        char key[32];
        std::snprintf(key, sizeof key, "degr_%.2f", d);
        sweepJson[key] = cellJson(r);
        if (d == degr.front())
            healthiest = std::move(r);
        else if (d == degr.back())
            sickest = std::move(r);
    }
    bench::show(t);

    // Cell 3: chaos — kill the origin server's home GPU and degrade
    // the fabric mid-run; then the fault-free twin, which must be
    // output-identical to the federation-disabled twin.
    trace::TraceLog chaosLog;
    exp::FederationRunConfig chaosCfg = base;
    chaosCfg.chaos = true;
    chaosCfg.ratePerSec = 2.0;
    chaosCfg.numRequests = smoke ? 40 : 80;
    chaosCfg.traceLog = &chaosLog;
    exp::FederationRunResult chaosR = exp::runFederation(chaosCfg);
    exp::FederationRunConfig twinCfg = chaosCfg;
    twinCfg.chaos = false;
    twinCfg.traceLog = nullptr;
    exp::FederationRunResult twin = exp::runFederation(twinCfg);
    exp::FederationRunConfig twinOffCfg = twinCfg;
    twinOffCfg.federation = false;
    exp::FederationRunResult twinOff = exp::runFederation(twinOffCfg);
    std::printf("chaos (home GPU killed, fabric degraded): unfinished "
                "%llu, streams %llu, invalidated %llu, tombstones "
                "%llu, digest %016llx (twin %016llx, fed-off "
                "%016llx)\n",
                static_cast<unsigned long long>(chaosR.unfinished),
                static_cast<unsigned long long>(
                    chaosR.fedStreamsCompleted),
                static_cast<unsigned long long>(
                    chaosR.fedStreamsInvalidated),
                static_cast<unsigned long long>(chaosR.dirTombstones),
                static_cast<unsigned long long>(chaosR.outputDigest),
                static_cast<unsigned long long>(twin.outputDigest),
                static_cast<unsigned long long>(twinOff.outputDigest));

    // Acceptance.
    //
    // (a) Federation makes the hot preamble prefill at most once per
    //     server (one partial tail block of slack each), streams the
    //     rest, and improves the cross-server chatbot hit rate.
    std::uint64_t preambleBudget =
        std::uint64_t(base.servers) * (base.prefixTokens + 16);
    bool okOnce = on.hitTokensRemoteServer > 0 &&
                  preambleColdTokens(on) <= preambleBudget &&
                  on.aggregateHitRate > off.aggregateHitRate;
    bool okChat = chatOn.aggregateHitRate > chatOff.aggregateHitRate &&
                  chatOn.hitTokensRemoteServer > 0;
    // (b) The cost model streams on a healthy wire, recomputes on a
    //     dead one, and nothing is left unfinished anywhere.
    bool okCost = healthiest.fedStreamDecisions > 0 &&
                  healthiest.fedRecomputeDecisions == 0 &&
                  sickest.fedRecomputeDecisions > 0 &&
                  sickest.fedStreamDecisions == 0;
    bool okNothingStuck =
        off.unfinished == 0 && on.unfinished == 0 &&
        chatOff.unfinished == 0 && chatOn.unfinished == 0 &&
        healthiest.unfinished == 0 && sickest.unfinished == 0 &&
        chaosR.unfinished == 0 && twin.unfinished == 0 &&
        twinOff.unfinished == 0;
    // (c) Chaos completes every request with clean byte identity, and
    //     the output digest is bit-identical across the chaos run, the
    //     fault-free twin and the federation-disabled twin.
    bool okIdentity = true;
    for (const exp::FederationRunResult *r :
         {&off, &on, &chatOff, &chatOn, &healthiest, &sickest, &chaosR,
          &twin, &twinOff}) {
        okIdentity = okIdentity && r->sigMismatches == 0 &&
                     r->clusterSigMismatches == 0;
    }
    bool okTwin = chaosR.outputDigest == twin.outputDigest &&
                  twin.outputDigest == twinOff.outputDigest;
    std::printf("acceptance: once_per_server %s, chatbot_gain %s, "
                "cost_flip %s, nothing_stuck %s, byte_identity %s, "
                "twin_identical %s\n",
                okOnce ? "PASS" : "FAIL", okChat ? "PASS" : "FAIL",
                okCost ? "PASS" : "FAIL",
                okNothingStuck ? "PASS" : "FAIL",
                okIdentity ? "PASS" : "FAIL",
                okTwin ? "PASS" : "FAIL");

    bench::JsonReporter report("federation");
    report.set("smoke", smoke)
        .set("servers", static_cast<std::int64_t>(base.servers))
        .set("num_requests",
             static_cast<std::int64_t>(base.numRequests))
        .set("prefix_tokens", base.prefixTokens);
    report.set("single_shot_baseline", cellJson(off));
    report.set("single_shot_federation", cellJson(on));
    report.set("chatbot_baseline", cellJson(chatOff));
    report.set("chatbot_federation", cellJson(chatOn));
    report.set("degradation_sweep", std::move(sweepJson));
    report.set("chaos", cellJson(chaosR));
    report.set("chaos_twin", cellJson(twin));
    report.set("chaos_twin_baseline", cellJson(twinOff));
    json::Object accept;
    accept["preamble_once_per_server"] = okOnce;
    accept["chatbot_hit_rate_gain"] = okChat;
    accept["cost_model_flips"] = okCost;
    accept["nothing_stuck"] = okNothingStuck;
    accept["byte_identity"] = okIdentity;
    accept["twin_identical"] = okTwin;
    report.set("acceptance", std::move(accept));
    report.write();

    return (okOnce && okChat && okCost && okNothingStuck &&
            okIdentity && okTwin)
               ? 0
               : 1;
}
