/**
 * @file
 * Figure 13: long-term responsiveness of a chatbot workload.
 *
 * 25 users converse with Codellama-34B (sharing a server with
 * Kandinsky) for 4 turns; each user re-issues a prompt after the
 * previous response returns, so the same burst repeats every turn
 * (the saw-tooth). CFS without AQUA inflates RCT ~1.5X; with AQUA
 * the worst-case overhead is ~20% and late-arriving requests match
 * vLLM — without AQUA the same users are starved every turn (§8).
 */

#include <algorithm>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("Figure 13", "25-user, 4-turn chatbot on "
                               "Codellama-34B + Kandinsky");

    std::vector<exp::ChatbotResult> results;
    for (exp::ServeMode mode : {exp::ServeMode::VllmBaseline,
                                exp::ServeMode::CfsDram,
                                exp::ServeMode::CfsAqua}) {
        exp::ChatbotConfig cfg;
        cfg.mode = mode;
        results.push_back(exp::runChatbot(cfg));
    }

    stats::Table perTurn({"turn", "vllm_rct_p50", "cfs_rct_p50",
                          "aqua_rct_p50", "vllm_rct_max",
                          "cfs_rct_max", "aqua_rct_max"});
    for (std::uint32_t turn = 0; turn < 4; ++turn) {
        std::vector<stats::Summary> s(3);
        for (std::size_t sys = 0; sys < 3; ++sys) {
            for (const auto &tm : results[sys].metrics) {
                if (tm.turn == turn && tm.metrics.finished())
                    s[sys].add(tm.metrics.rctSec());
            }
        }
        perTurn.newRow()
            .cell(std::uint64_t(turn))
            .cell(s[0].median(), 2)
            .cell(s[1].median(), 2)
            .cell(s[2].median(), 2)
            .cell(s[0].max(), 2)
            .cell(s[1].max(), 2)
            .cell(s[2].max(), 2);
    }
    bench::show(perTurn);

    stats::Summary all[3];
    for (std::size_t sys = 0; sys < 3; ++sys) {
        for (const auto &tm : results[sys].metrics) {
            if (tm.metrics.finished())
                all[sys].add(tm.metrics.rctSec());
        }
    }
    std::printf("overall RCT p95: vLLM %.2fs, CFS %.2fs (%.2fX), "
                "AQUA %.2fs (%.2fX)\n",
                all[0].p95(), all[1].p95(),
                all[1].p95() / all[0].p95(), all[2].p95(),
                all[2].p95() / all[0].p95());
    std::printf("paper: CFS w/o AQUA costs ~1.5X RCT; AQUA's worst "
                "case is ~20%% and it matches vLLM for late "
                "requests. TTFT p95: vLLM %.2fs vs AQUA %.2fs.\n",
                [&] {
                    stats::Summary t;
                    for (const auto &tm : results[0].metrics)
                        if (tm.metrics.started())
                            t.add(tm.metrics.ttftSec());
                    return t.p95();
                }(),
                [&] {
                    stats::Summary t;
                    for (const auto &tm : results[2].metrics)
                        if (tm.metrics.started())
                            t.add(tm.metrics.ttftSec());
                    return t.p95();
                }());
    return 0;
}
