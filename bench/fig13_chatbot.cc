/**
 * @file
 * Figure 13: long-term responsiveness of a chatbot workload.
 *
 * 25 users converse with Codellama-34B (sharing a server with
 * Kandinsky) for 4 turns; each user re-issues a prompt after the
 * previous response returns, so the same burst repeats every turn
 * (the saw-tooth). CFS without AQUA inflates RCT ~1.5X; with AQUA
 * the worst-case overhead is ~20% and late-arriving requests match
 * vLLM — without AQUA the same users are starved every turn (§8).
 *
 * A fourth system adds copy-on-write prefix caching to the AQUA
 * configuration: follow-up turns re-send the conversation, so their
 * history prefills from cache instead of being recomputed.
 *
 * Writes BENCH_chatbot.json (per-mode RCT/TTFT percentiles plus the
 * prefix-cache counters) for CI artifact diffing. `--smoke` shrinks
 * the run for quick pipelines.
 */

#include <algorithm>
#include <cstring>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

namespace {

constexpr const char *kSystems[] = {"vllm", "cfs", "aqua", "aqua+apc"};

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("Figure 13", "25-user, 4-turn chatbot on "
                               "Codellama-34B + Kandinsky");

    std::uint32_t users = smoke ? 8 : 25;
    std::uint32_t turns = smoke ? 2 : 4;

    std::vector<exp::ChatbotResult> results;
    for (exp::ServeMode mode : {exp::ServeMode::VllmBaseline,
                                exp::ServeMode::CfsDram,
                                exp::ServeMode::CfsAqua,
                                exp::ServeMode::CfsAqua}) {
        exp::ChatbotConfig cfg;
        cfg.mode = mode;
        cfg.users = users;
        cfg.turns = turns;
        if (results.size() == 3) {
            // The prefix-caching variant: a shared system prompt plus
            // cross-turn history reuse.
            cfg.prefixCache = true;
            cfg.systemPromptTokens = 256;
        }
        results.push_back(exp::runChatbot(cfg));
    }

    stats::Table perTurn({"turn", "vllm_rct_p50", "cfs_rct_p50",
                          "aqua_rct_p50", "apc_rct_p50",
                          "vllm_rct_max", "aqua_rct_max",
                          "apc_rct_max"});
    for (std::uint32_t turn = 0; turn < turns; ++turn) {
        std::vector<stats::Summary> s(4);
        for (std::size_t sys = 0; sys < 4; ++sys) {
            for (const auto &tm : results[sys].metrics) {
                if (tm.turn == turn && tm.metrics.finished())
                    s[sys].add(tm.metrics.rctSec());
            }
        }
        perTurn.newRow()
            .cell(std::uint64_t(turn))
            .cell(s[0].median(), 2)
            .cell(s[1].median(), 2)
            .cell(s[2].median(), 2)
            .cell(s[3].median(), 2)
            .cell(s[0].max(), 2)
            .cell(s[2].max(), 2)
            .cell(s[3].max(), 2);
    }
    bench::show(perTurn);

    stats::Summary all[4];
    for (std::size_t sys = 0; sys < 4; ++sys) {
        for (const auto &tm : results[sys].metrics) {
            if (tm.metrics.finished())
                all[sys].add(tm.metrics.rctSec());
        }
    }
    std::printf("overall RCT p95: vLLM %.2fs, CFS %.2fs (%.2fX), "
                "AQUA %.2fs (%.2fX), AQUA+APC %.2fs (%.2fX)\n",
                all[0].p95(), all[1].p95(),
                all[1].p95() / all[0].p95(), all[2].p95(),
                all[2].p95() / all[0].p95(), all[3].p95(),
                all[3].p95() / all[0].p95());
    std::printf("paper: CFS w/o AQUA costs ~1.5X RCT; AQUA's worst "
                "case is ~20%% and it matches vLLM for late "
                "requests.\n");

    const exp::PrefixCacheReport &pc = results[3].prefix;
    std::printf("prefix cache (AQUA+APC): hit rate %.1f%%, %llu "
                "tokens prefilled from cache, %llu CoW forks, %llu "
                "sig mismatches\n",
                100.0 * pc.hitRate,
                static_cast<unsigned long long>(pc.cachedTokens),
                static_cast<unsigned long long>(pc.cowForks),
                static_cast<unsigned long long>(pc.sigMismatches));
    std::printf("hit origin: %llu tokens local HBM, %llu remote "
                "peer, %llu host DRAM, %llu remote server\n",
                static_cast<unsigned long long>(pc.hitTokensLocal),
                static_cast<unsigned long long>(pc.hitTokensRemote),
                static_cast<unsigned long long>(pc.hitTokensDram),
                static_cast<unsigned long long>(
                    pc.hitTokensRemoteServer));

    bench::JsonReporter report("chatbot");
    report.set("users", users).set("turns", turns);
    json::Object systems;
    for (std::size_t sys = 0; sys < 4; ++sys) {
        json::Object o;
        o["rct_p50_sec"] = all[sys].median();
        o["rct_p95_sec"] = all[sys].p95();
        o["finished"] = static_cast<std::int64_t>(all[sys].count());
        o["tokens_per_sec"] = results[sys].tokensPerSec;
        o["peak_live_kv_bytes"] =
            static_cast<std::int64_t>(results[sys].peakLiveKvBytes);
        o["offload_write_bytes"] =
            static_cast<std::int64_t>(results[sys].offloadWriteBytes);
        systems[kSystems[sys]] = std::move(o);
    }
    report.set("systems", std::move(systems));
    json::Object prefix;
    prefix["hit_rate"] = pc.hitRate;
    prefix["hits"] = static_cast<std::int64_t>(pc.hits);
    prefix["misses"] = static_cast<std::int64_t>(pc.misses);
    prefix["partial_hits"] = static_cast<std::int64_t>(pc.partialHits);
    prefix["cached_tokens"] = static_cast<std::int64_t>(pc.cachedTokens);
    prefix["cow_forks"] = static_cast<std::int64_t>(pc.cowForks);
    prefix["dedup_saved_bytes"] =
        static_cast<std::int64_t>(pc.dedupSavedBytes);
    prefix["sig_mismatches"] =
        static_cast<std::int64_t>(pc.sigMismatches);
    prefix["hit_tokens_local"] =
        static_cast<std::int64_t>(pc.hitTokensLocal);
    prefix["hit_tokens_remote_peer"] =
        static_cast<std::int64_t>(pc.hitTokensRemote);
    prefix["hit_tokens_dram"] =
        static_cast<std::int64_t>(pc.hitTokensDram);
    prefix["hit_tokens_remote_server"] =
        static_cast<std::int64_t>(pc.hitTokensRemoteServer);
    report.set("prefix_cache", std::move(prefix));
    report.write();
    return 0;
}
