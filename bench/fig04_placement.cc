/**
 * @file
 * Figure 4 + Algorithm 1: why placement matters, and what
 * AQUA-PLACER computes.
 *
 * Two 2-GPU servers host two vision models and two LLMs. Placing
 * both LLMs on the same server (Fig. 4a) leaves their deficits
 * unserved while the other server wastes memory; AQUA-PLACER
 * co-locates each LLM with a vision model (Fig. 4b) so every
 * consumer has a producer on its NVLink domain, then pairs them by
 * stable matching.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "hw/gpu_spec.hh"
#include "placer/placer.hh"

using namespace aqua;

namespace {

void
describe(const char *title, const placer::PlacementInput &input,
         const std::vector<int> &assignment)
{
    std::printf("%s (objective %.1f GB):\n", title,
                placer::evaluateObjective(input, assignment) / 1e9);
    for (std::size_t s = 0; s < input.numServers; ++s) {
        std::printf("  server %zu:", s);
        for (std::size_t m = 0; m < input.models.size(); ++m) {
            if (assignment[m] == static_cast<int>(s)) {
                std::printf(" %s(%+.0fGB)",
                            input.models[m].name.c_str(),
                            static_cast<double>(
                                input.models[m].memBytes) / 1e9);
            }
        }
        std::printf("\n");
    }
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 4 / Algorithm 1",
                  "model placement with AQUA-PLACER");

    placer::PlacementInput input;
    input.numServers = 2;
    input.gpusPerServer = 2;
    input.gpuMemBytes = hw::a100_80g().hbmBytes;
    for (const char *name : {"StableDiffusion", "Kandinsky"}) {
        placer::ModelToPlace m;
        m.name = name;
        m.memBytes = exp::modelMemoryRequirement(name, true);
        input.models.push_back(m);
    }
    for (const char *name : {"OPT-30B", "Codellama-34B"}) {
        placer::ModelToPlace m;
        m.name = name;
        m.memBytes = exp::modelMemoryRequirement(name, false);
        input.models.push_back(m);
    }

    // Fig. 4a: the bad segregated placement.
    std::vector<int> segregated = {0, 0, 1, 1};
    describe("Fig. 4a segregated placement", input, segregated);

    // Fig. 4b: AQUA-PLACER's colocation.
    placer::AquaPlacer placer;
    placer::Placement placement = placer.place(input);
    describe("Fig. 4b AQUA-PLACER placement", input,
             placement.server);
    std::printf("  optimal: %s, nodes: %llu, solve: %.3fs\n",
                placement.optimal ? "yes" : "no",
                static_cast<unsigned long long>(
                    placement.nodesExplored),
                placement.solveSeconds);
    for (const placer::Pairing &p : placement.pairs) {
        std::printf("  pair on server %d: consumer %s <- producer "
                    "%s\n", p.server,
                    input.models[p.consumerModel].name.c_str(),
                    input.models[p.producerModel].name.c_str());
    }
    std::printf("paper: every memory-bound model ends up next to a "
                "memory-rich one; one producer per consumer.\n");
    return 0;
}
