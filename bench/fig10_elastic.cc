/**
 * @file
 * Figure 10 + Figure 11: elastic AQUA TENSORS under dynamic load.
 *
 * A Llama-2-13B producer and an OPT-30B long-prompt consumer share a
 * 2-GPU server. The producer starts idle and donates its KV pool
 * (keeping 5 GB); at ~150 s the consumer starts and the producer gets
 * 100 requests at 1 req/s; at ~400 s a burst of 250 requests at
 * 5 req/s makes AQUA-LIB reclaim the donation, dropping the consumer
 * to the DRAM path until the burst drains and the lease returns.
 *
 * Fig. 10a: free memory on the producer GPU over time.
 * Fig. 10b: consumer long-prompt throughput over time (6X when the
 *           lease is active).
 * Fig. 11:  sorted producer RCTs with and without AQUA (donating is
 *           nearly free at low load; the reclaim pause is visible).
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("Figure 10/11", "dynamic memory sharing: "
                                  "Llama-2-13B producer + OPT-30B "
                                  "long-prompt consumer");

    exp::ElasticExperimentConfig cfg;
    cfg.withAqua = true;
    exp::ElasticExperimentResult aqua = exp::runElasticExperiment(cfg);

    cfg.withAqua = false;
    exp::ElasticExperimentResult baseline =
        exp::runElasticExperiment(cfg);

    std::printf("--- Fig. 10a/10b: timeline (20 s buckets) ---\n");
    stats::Table timeline({"t_s", "producer_free_gb",
                           "consumer_tok_per_s"});
    for (std::size_t i = 0; i + 1 < aqua.producerFreeMemory.size();
         i += 2) {
        double freeGb =
            (aqua.producerFreeMemory[i].value +
             aqua.producerFreeMemory[i + 1].value) / 2.0 / 1e9;
        double tput = 0.0;
        if (i + 1 < aqua.consumerThroughput.size()) {
            tput = (aqua.consumerThroughput[i].value +
                    aqua.consumerThroughput[i + 1].value) / 20.0;
        }
        timeline.newRow()
            .cell(static_cast<std::uint64_t>(
                sim::ticksToSec(aqua.producerFreeMemory[i].when)))
            .cell(freeGb, 1)
            .cell(tput, 1);
    }
    bench::show(timeline);
    std::printf("consumer tokens total: %llu\n\n",
                static_cast<unsigned long long>(aqua.consumerTokens));

    std::printf("--- Fig. 11: producer RCTs, sorted (s) ---\n");
    std::vector<double> withAqua = bench::sortedRcts(
        aqua.producerMetrics);
    std::vector<double> withoutAqua = bench::sortedRcts(
        baseline.producerMetrics);
    stats::Table rcts({"percentile", "baseline_s", "aqua_s"});
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        stats::Summary a;
        a.add(withoutAqua);
        stats::Summary b;
        b.add(withAqua);
        rcts.newRow()
            .cell(p, 0)
            .cell(a.percentile(p), 2)
            .cell(b.percentile(p), 2);
    }
    bench::show(rcts);
    std::printf("paper: donating costs the producer little at 1 req/s;"
                " at 5 req/s AQUA pauses briefly to reclaim, then "
                "matches the baseline. Consumer throughput improves "
                "6X while the lease is active.\n");
    return 0;
}
