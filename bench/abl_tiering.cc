/**
 * @file
 * Ablation: SSD storage tier with predictive prefetch and
 * cold-session park/resume.
 *
 * A multi-turn chatbot population goes idle between turns; sessions
 * idling past the park threshold dump their KV to the SSD tier and,
 * when the user returns, either stream it back through the
 * double-buffered prefetch pipeline (overlapped with decode of warm
 * sequences) or re-prefill from scratch — whichever the roofline
 * cost check predicts is faster. Four cells:
 *
 *  1. tiering on vs off: cold-turn TTFT with SSD resume vs full
 *     re-prefill;
 *  2. parked-session sweep: goodput and resume latency as the parked
 *     population grows;
 *  3. media-degradation sweep: the stream-vs-recompute crossover —
 *     a throttled drive must flip the resume decision to recompute;
 *  4. chaos: ssd_degrade + ssd_fail injected mid-run — every session
 *     must still finish, falling back to recompute.
 *
 * `--smoke` shrinks the population for quick pipelines.
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "fault/fault.hh"
#include "sim/ticks.hh"
#include "trace/trace.hh"

using namespace aqua;
using namespace aqua::sim;

namespace {

json::Object
cellJson(const exp::TieringRunResult &r)
{
    json::Object o;
    o["requests"] = static_cast<std::int64_t>(r.metrics.size());
    o["parks"] = static_cast<std::int64_t>(r.parks);
    o["stream_resumes"] =
        static_cast<std::int64_t>(r.streamResumes);
    o["recompute_resumes"] =
        static_cast<std::int64_t>(r.recomputeResumes);
    o["tier_demotions"] =
        static_cast<std::int64_t>(r.tierDemotions);
    o["parked_at_end"] = static_cast<std::int64_t>(r.parkedAtEnd);
    o["cold_ttft_p50_sec"] = r.coldTtftP50Sec;
    o["cold_ttft_p99_sec"] = r.coldTtftP99Sec;
    o["warm_ttft_p50_sec"] = r.warmTtftP50Sec;
    o["streams_started"] =
        static_cast<std::int64_t>(r.streamsStarted);
    o["streams_completed"] =
        static_cast<std::int64_t>(r.streamsCompleted);
    o["streams_cancelled"] =
        static_cast<std::int64_t>(r.streamsCancelled);
    o["bytes_streamed"] = static_cast<std::int64_t>(r.bytesStreamed);
    o["bytes_wasted"] = static_cast<std::int64_t>(r.bytesWasted);
    o["overlap_efficiency_mean"] = r.overlapEfficiencyMean;
    o["ssd_bytes_read"] = static_cast<std::int64_t>(r.ssdBytesRead);
    o["ssd_bytes_written"] =
        static_cast<std::int64_t>(r.ssdBytesWritten);
    o["tokens_per_sec"] = r.tokensPerSec;
    o["unfinished"] = static_cast<std::int64_t>(r.unfinished);
    o["elapsed_sec"] = r.elapsedSec;
    return o;
}

/** Chaos plan: a GC storm throttles the drive across the first
 *  resume wave, then the drive drops off the bus entirely for a
 *  stretch of the second. */
fault::FaultPlan
tieringChaosPlan()
{
    fault::FaultPlan plan;
    fault::FaultSpec degrade;
    degrade.kind = fault::FaultKind::SsdDegrade;
    degrade.at = secToTicks(40.0);
    degrade.duration = secToTicks(40.0);
    degrade.factor = 0.02;
    plan.add(degrade);
    fault::FaultSpec fail;
    fail.kind = fault::FaultKind::SsdFail;
    fail.at = secToTicks(85.0);
    fail.duration = secToTicks(30.0);
    plan.add(fail);
    return plan;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("SSD-tiering ablation",
                  "cold-session park/resume via SSD prefetch vs "
                  "full re-prefill");

    exp::TieringRunConfig base;
    if (smoke) {
        base.users = 8;
        base.maxSimSeconds = 2000.0;
    }

    json::Object cells;
    stats::Table t({"cell", "served", "parks", "stream", "recomp",
                    "cold p50 s", "cold p99 s", "overlap",
                    "tok/s", "unfinished"});
    auto row = [&](const std::string &name,
                   const exp::TieringRunResult &r) {
        t.newRow()
            .cell(name)
            .cell(static_cast<double>(r.metrics.size()), 0)
            .cell(static_cast<double>(r.parks), 0)
            .cell(static_cast<double>(r.streamResumes), 0)
            .cell(static_cast<double>(r.recomputeResumes), 0)
            .cell(r.coldTtftP50Sec, 3)
            .cell(r.coldTtftP99Sec, 3)
            .cell(r.overlapEfficiencyMean, 2)
            .cell(r.tokensPerSec, 1)
            .cell(static_cast<double>(r.unfinished), 0);
        cells[name] = cellJson(r);
    };

    // Cell 1: resume-vs-reprefill. Same trace, tier detached in the
    // baseline so every cold turn pays the full prefill.
    exp::TieringRunConfig offCfg = base;
    offCfg.tiering = false;
    exp::TieringRunResult off = exp::runTiering(offCfg);
    row("reprefill_baseline", off);

    exp::TieringRunResult on = exp::runTiering(base);
    row("ssd_resume", on);

    // Cell 2: goodput vs parked-session count.
    std::vector<std::uint32_t> populations =
        smoke ? std::vector<std::uint32_t>{8, 16}
              : std::vector<std::uint32_t>{8, 24, 48};
    for (std::uint32_t users : populations) {
        exp::TieringRunConfig cfg = base;
        cfg.users = users;
        exp::TieringRunResult r = exp::runTiering(cfg);
        row("parked_" + std::to_string(users), r);
    }

    // Cell 3: the stream-vs-recompute crossover. Healthy media
    // streams KV far faster than the GPU re-prefills it; throttling
    // the drive inflates the stream estimate until the cost check
    // flips to recompute.
    std::vector<double> degrades =
        smoke ? std::vector<double>{1.0, 0.01}
              : std::vector<double>{1.0, 0.25, 0.05, 0.01};
    exp::TieringRunResult healthy, throttled;
    for (double factor : degrades) {
        exp::TieringRunConfig cfg = base;
        cfg.ssdDegradeFactor = factor;
        exp::TieringRunResult r = exp::runTiering(cfg);
        row("degrade_" + std::to_string(factor).substr(0, 4), r);
        if (factor == 1.0)
            healthy = r;
        if (factor == 0.01)
            throttled = r;
    }

    // Cell 4: chaos — drive throttled then offline across the resume
    // wave. Sessions whose stream dies mid-flight (or whose parked
    // copy is on a dead drive) must finish via recompute.
    trace::TraceLog chaosLog;
    fault::FaultPlan plan = tieringChaosPlan();
    exp::TieringRunConfig chaosCfg = base;
    chaosCfg.faults = &plan;
    chaosCfg.traceLog = &chaosLog;
    exp::TieringRunResult chaos = exp::runTiering(chaosCfg);
    row("chaos_degrade_fail", chaos);
    bench::show(t);

    // Acceptance.
    bool okParks = on.parks > 0 && on.streamResumes > 0;
    bool okResumeBeatsPrefill =
        on.coldTtftP50Sec < off.coldTtftP50Sec &&
        off.coldTtftP50Sec > 0.0;
    bool okOverlap = on.overlapEfficiencyMean >= 0.5;
    bool okCrossover = healthy.streamResumes > 0 &&
                       throttled.recomputeResumes > 0 &&
                       throttled.streamResumes == 0;
    bool okChaos =
        chaos.unfinished == 0 && chaos.recomputeResumes > 0;

    std::printf("cold TTFT p50: resume %.3fs vs re-prefill %.3fs "
                "(%.0f%% of baseline)\n",
                on.coldTtftP50Sec, off.coldTtftP50Sec,
                off.coldTtftP50Sec > 0.0
                    ? 100.0 * on.coldTtftP50Sec / off.coldTtftP50Sec
                    : 0.0);
    std::printf("prefetch overlap efficiency %.2f over %llu streams "
                "(%llu cancelled, %llu MiB wasted)\n",
                on.overlapEfficiencyMean,
                static_cast<unsigned long long>(on.streamsStarted),
                static_cast<unsigned long long>(on.streamsCancelled),
                static_cast<unsigned long long>(on.bytesWasted >>
                                                20));
    std::printf("chaos cell: %llu stream / %llu recompute resumes, "
                "%llu unfinished\n",
                static_cast<unsigned long long>(chaos.streamResumes),
                static_cast<unsigned long long>(
                    chaos.recomputeResumes),
                static_cast<unsigned long long>(chaos.unfinished));
    std::printf("acceptance: parks %s, resume_beats_reprefill %s, "
                "overlap>=0.5 %s, crossover_flips %s, "
                "chaos_recompute_fallback %s\n",
                okParks ? "PASS" : "FAIL",
                okResumeBeatsPrefill ? "PASS" : "FAIL",
                okOverlap ? "PASS" : "FAIL",
                okCrossover ? "PASS" : "FAIL",
                okChaos ? "PASS" : "FAIL");

    bench::JsonReporter report("tiering");
    report.set("smoke", smoke)
        .set("users", static_cast<std::int64_t>(base.users))
        .set("turns", static_cast<std::int64_t>(base.turns))
        .set("park_after_sec", base.parkAfterSec)
        .set("resume_safety_factor", base.resumeSafetyFactor);
    report.set("cells", std::move(cells));
    json::Object accept;
    accept["sessions_park_and_stream"] = okParks;
    accept["resume_beats_reprefill"] = okResumeBeatsPrefill;
    accept["prefetch_overlap_ge_50pct"] = okOverlap;
    accept["degrade_crossover_flips"] = okCrossover;
    accept["chaos_recompute_fallback"] = okChaos;
    report.set("acceptance", std::move(accept));
    report.write();

    bool ok = okParks && okResumeBeatsPrefill && okOverlap &&
              okCrossover && okChaos;
    return ok ? 0 : 1;
}
