/**
 * @file
 * Ablation: the cluster prefix registry on an NVSwitch server where
 * 2-8 consumer engines serve traffic opening with the same hot
 * preamble.
 *
 * Without the registry every engine prefills and *retains* its own
 * copy of the preamble's KV, so resident preamble bytes grow with the
 * consumer count. With the registry exactly one engine (the chain's
 * home) keeps the copy and the others borrow or stream it over
 * NVLink, so residency stays near a single copy while the aggregate
 * hit rate holds. Three cells:
 *
 *  - consumer sweep: shared-preamble trace over {2, 4, 8} engines,
 *    registry off vs on;
 *  - chatbot: every conversation turn lands on a different engine, so
 *    the re-sent history is only reachable through the registry;
 *  - chaos: the preamble's home GPU is permanently killed mid-run;
 *    survivors must invalidate or re-home the chain with no
 *    byte-identity violations and no stuck sequences.
 *
 * Results go to BENCH_cluster_prefix.json. `--smoke` shrinks every
 * cell for quick pipelines.
 */

#include <cstring>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "trace/trace.hh"

using namespace aqua;

namespace {

json::Object
cellJson(const exp::ClusterPrefixResult &r)
{
    stats::Summary rct;
    for (const auto &m : r.metrics) {
        if (m.finished())
            rct.add(m.rctSec());
    }
    json::Object o;
    o["finished"] = static_cast<std::int64_t>(rct.count());
    o["unfinished"] = static_cast<std::int64_t>(r.unfinished);
    o["rct_p50_sec"] = rct.median();
    o["rct_p95_sec"] = rct.p95();
    o["tokens_per_sec"] = r.tokensPerSec;
    o["aggregate_hit_rate"] = r.aggregateHitRate;
    o["cached_tokens"] = static_cast<std::int64_t>(r.cachedTokens);
    o["resident_prefix_bytes"] =
        static_cast<std::int64_t>(r.residentPrefixBytes);
    o["single_copy_bytes"] =
        static_cast<std::int64_t>(r.singleCopyBytes);
    o["residency_factor"] = r.residencyFactor;
    o["registry_hits"] = static_cast<std::int64_t>(r.registryHits);
    o["registry_misses"] = static_cast<std::int64_t>(r.registryMisses);
    o["borrow_admissions"] =
        static_cast<std::int64_t>(r.borrowAdmissions);
    o["copy_admissions"] = static_cast<std::int64_t>(r.copyAdmissions);
    o["remote_copy_bytes"] =
        static_cast<std::int64_t>(r.remoteCopyBytes);
    o["remote_decode_read_bytes"] =
        static_cast<std::int64_t>(r.remoteDecodeReadBytes);
    o["remote_broken_chains"] =
        static_cast<std::int64_t>(r.remoteBrokenChains);
    o["hit_tokens_local"] =
        static_cast<std::int64_t>(r.hitTokensLocal);
    o["hit_tokens_remote_peer"] =
        static_cast<std::int64_t>(r.hitTokensRemote);
    o["hit_tokens_dram"] = static_cast<std::int64_t>(r.hitTokensDram);
    o["hit_tokens_remote_server"] =
        static_cast<std::int64_t>(r.hitTokensRemoteServer);
    o["sig_mismatches"] = static_cast<std::int64_t>(r.sigMismatches);
    o["cluster_sig_mismatches"] =
        static_cast<std::int64_t>(r.clusterSigMismatches);
    o["reg_publishes"] = static_cast<std::int64_t>(r.regPublishes);
    o["reg_replica_publishes"] =
        static_cast<std::int64_t>(r.regReplicaPublishes);
    o["reg_promotions"] = static_cast<std::int64_t>(r.regPromotions);
    o["reg_invalidations"] =
        static_cast<std::int64_t>(r.regInvalidations);
    o["reg_broken_pins"] = static_cast<std::int64_t>(r.regBrokenPins);
    o["active_pins"] = static_cast<std::int64_t>(r.activePins);
    return o;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("Cluster prefix registry",
                  "one resident shared-prefix KV copy per server, "
                  "served over NVLink");

    exp::ClusterPrefixConfig base;
    if (smoke) {
        base.numRequests = 32;
        base.maxSimSeconds = 3000.0;
    }

    // Cell 1: consumer sweep, registry off vs on.
    std::vector<std::size_t> sweep =
        smoke ? std::vector<std::size_t>{2, 4}
              : std::vector<std::size_t>{2, 4, 8};
    stats::Table t({"consumers", "mode", "residency_x", "agg_hit_rate",
                    "remote_mib", "tokens_per_sec", "unfinished"});
    json::Object sweepJson;
    exp::ClusterPrefixResult off4, on4;
    for (std::size_t consumers : sweep) {
        for (bool registry : {false, true}) {
            exp::ClusterPrefixConfig cfg = base;
            cfg.consumers = consumers;
            cfg.registry = registry;
            exp::ClusterPrefixResult r = exp::runClusterPrefix(cfg);
            t.newRow()
                .cell(std::uint64_t(consumers))
                .cell(registry ? "registry" : "per-engine")
                .cell(r.residencyFactor, 2)
                .cell(r.aggregateHitRate, 3)
                .cell(double(r.remoteCopyBytes +
                             r.remoteDecodeReadBytes) / (1 << 20), 1)
                .cell(r.tokensPerSec, 1)
                .cell(r.unfinished);
            std::string key = std::to_string(consumers) +
                (registry ? "_registry" : "_baseline");
            sweepJson[key] = cellJson(r);
            if (consumers == 4 && registry)
                on4 = std::move(r);
            else if (consumers == 4)
                off4 = std::move(r);
        }
    }
    bench::show(t);

    // Cell 2: chatbot with cross-engine turn routing.
    exp::ClusterPrefixConfig chatCfg = base;
    chatCfg.chatbot = true;
    chatCfg.consumers = 4;
    chatCfg.prefixTokens = 512;
    chatCfg.users = smoke ? 6 : 12;
    chatCfg.turns = smoke ? 2 : 3;
    exp::ClusterPrefixConfig chatOffCfg = chatCfg;
    chatOffCfg.registry = false;
    exp::ClusterPrefixResult chatOff = exp::runClusterPrefix(chatOffCfg);
    exp::ClusterPrefixResult chatOn = exp::runClusterPrefix(chatCfg);
    std::printf("chatbot (turns hop engines): hit rate %.3f -> %.3f, "
                "remote hit tokens %llu, borrow/copy %llu/%llu\n",
                chatOff.aggregateHitRate, chatOn.aggregateHitRate,
                static_cast<unsigned long long>(chatOn.hitTokensRemote),
                static_cast<unsigned long long>(chatOn.borrowAdmissions),
                static_cast<unsigned long long>(chatOn.copyAdmissions));

    // Cell 3: donor-kill chaos against the home GPU.
    trace::TraceLog chaosLog;
    exp::ClusterPrefixConfig chaosCfg = base;
    chaosCfg.consumers = 4;
    chaosCfg.chaos = true;
    chaosCfg.ratePerSec = 2.0;
    chaosCfg.numRequests = smoke ? 60 : 120;
    // Let the whole preamble be borrowed in place: consumers decoding
    // against the home's copy when it dies exercise the lease-break
    // and recompute recovery paths, not just registry invalidation.
    chaosCfg.borrowMaxBlocks = 64;
    chaosCfg.traceLog = &chaosLog;
    exp::ClusterPrefixResult chaosR = exp::runClusterPrefix(chaosCfg);
    std::size_t unmatchedFaults =
        chaosLog.unmatchedPairs("fault_inject", "fault_recover",
                                "fault_id").size();
    std::printf("chaos (home GPU killed): unfinished %llu, broken "
                "chains %llu, broken pins %llu, promotions %llu, "
                "invalidations %llu, active pins %llu\n",
                static_cast<unsigned long long>(chaosR.unfinished),
                static_cast<unsigned long long>(
                    chaosR.remoteBrokenChains),
                static_cast<unsigned long long>(chaosR.regBrokenPins),
                static_cast<unsigned long long>(chaosR.regPromotions),
                static_cast<unsigned long long>(
                    chaosR.regInvalidations),
                static_cast<unsigned long long>(chaosR.activePins));

    // Acceptance: at 4 consumers the hot preamble stays near one
    // resident copy (baseline keeps ~one per engine), the aggregate
    // hit rate does not regress vs per-engine caching, every cell is
    // byte-identical end to end, the chaos run leaves nothing stuck
    // and every lease drains. The chaos plan's single permanent
    // gpu_fail is the one legitimately unmatched inject event.
    bool okResidency = on4.residencyFactor <= 1.3 &&
                       off4.residencyFactor > on4.residencyFactor;
    bool okHitRate =
        on4.aggregateHitRate >= off4.aggregateHitRate - 0.02;
    bool okIdentity = true;
    for (const exp::ClusterPrefixResult *r :
         {&off4, &on4, &chatOff, &chatOn, &chaosR}) {
        okIdentity = okIdentity && r->sigMismatches == 0 &&
                     r->clusterSigMismatches == 0;
    }
    bool okChaos = chaosR.unfinished == 0 && chaosR.activePins == 0 &&
                   unmatchedFaults == 1;
    bool okDrained = on4.activePins == 0 && chatOn.activePins == 0;
    std::printf("acceptance: residency<=1.3x %s (%.2fx vs %.2fx "
                "baseline), hit_rate_no_regression %s (%.3f vs "
                "%.3f), byte_identity %s, chaos_clean %s, "
                "pins_drained %s\n",
                okResidency ? "PASS" : "FAIL", on4.residencyFactor,
                off4.residencyFactor, okHitRate ? "PASS" : "FAIL",
                on4.aggregateHitRate, off4.aggregateHitRate,
                okIdentity ? "PASS" : "FAIL",
                okChaos ? "PASS" : "FAIL",
                okDrained ? "PASS" : "FAIL");

    bench::JsonReporter report("cluster_prefix");
    report.set("smoke", smoke)
        .set("num_requests",
             static_cast<std::int64_t>(base.numRequests))
        .set("prefix_tokens", base.prefixTokens)
        .set("borrow_max_blocks", base.borrowMaxBlocks);
    report.set("sweep", std::move(sweepJson));
    report.set("chatbot_baseline", cellJson(chatOff));
    report.set("chatbot_registry", cellJson(chatOn));
    json::Object chaosJson = cellJson(chaosR);
    chaosJson["unmatched_fault_pairs"] =
        static_cast<std::int64_t>(unmatchedFaults);
    report.set("chaos", std::move(chaosJson));
    json::Object accept;
    accept["residency_single_copy"] = okResidency;
    accept["hit_rate_no_regression"] = okHitRate;
    accept["byte_identity"] = okIdentity;
    accept["chaos_clean"] = okChaos;
    accept["pins_drained"] = okDrained;
    report.set("acceptance", std::move(accept));
    report.write();

    return (okResidency && okHitRate && okIdentity && okChaos &&
            okDrained)
               ? 0
               : 1;
}
