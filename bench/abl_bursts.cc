/**
 * @file
 * Ablation: burst tolerance.
 *
 * The paper's critique of batch scheduling is precisely its burst
 * behaviour: "this scheduler results in starvation during bursts and
 * [AQUA] uses new abstractions to build a fair scheduler to
 * gracefully handle bursts" (§9). We alternate quiet (1 req/s) and
 * burst phases of 30 s on Codellama-34B and measure, per burst
 * intensity, the fraction of requests whose first token arrives
 * within 2 s.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "exp/testbed.hh"
#include "serve/vllm_engine.hh"
#include "workload/generator.hh"

using namespace aqua;

namespace {

double
slo(exp::ServeMode mode, double burstRate)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P);
    serve::OffloadBackend *backend = nullptr;
    if (mode == exp::ServeMode::CfsAqua) {
        core::AquaLib &lib = tb.makeAquaLib(0);
        tb.assign(0, 1);
        tb.coordinator().lease(1, std::uint64_t(55) << 30);
        backend = &tb.makeAquaBackend(lib);
    } else {
        backend = &tb.makeDramBackend(0);
    }
    std::unique_ptr<serve::SchedulerPolicy> policy;
    if (mode == exp::ServeMode::VllmBaseline)
        policy = std::make_unique<serve::FcfsPolicy>();
    else
        policy = std::make_unique<serve::CfsPolicy>();
    serve::VllmEngine engine(tb.server(), 0,
                             model::codellama34b(),
                             std::move(policy), *backend);
    workload::TraceBuilder traces(tb.sim().makeRandom());
    exp::driveTrace(tb.sim(), engine,
                    traces.bursty(1.0, burstRate, 30.0, 150));
    tb.sim().runUntil(sim::secToTicks(4000.0));
    return bench::sloAttainment(engine.finished(), 2.0);
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablation: burst tolerance",
                  "fraction of requests with TTFT <= 2 s under "
                  "alternating quiet/burst arrival phases");
    stats::Table table({"burst_rate_rps", "vllm", "vllm+cfs",
                        "aqua"});
    for (double burst : {2.0, 5.0, 10.0, 20.0}) {
        table.newRow()
            .cell(burst, 0)
            .cell(slo(exp::ServeMode::VllmBaseline, burst), 2)
            .cell(slo(exp::ServeMode::CfsDram, burst), 2)
            .cell(slo(exp::ServeMode::CfsAqua, burst), 2);
    }
    bench::show(table);
    std::printf("paper: batch scheduling starves prompts during "
                "bursts; CFS keeps every prompt responsive and AQUA "
                "makes that affordable.\n");
    return 0;
}
