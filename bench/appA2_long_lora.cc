/**
 * @file
 * Appendix A.2: a one-hour LoRA workload.
 *
 * Mistral-7B with the 320 MB adapter pool at 2 req/s for one
 * simulated hour. The paper reports AQUA improves p50 RCT by 2X and
 * p95 by 1.7X, i.e. AQUA TENSORS sustain the benefit over time.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("Appendix A.2", "1-hour LoRA workload at 2 req/s "
                                  "(320 MB adapters)");

    stats::Table table({"system", "requests", "rct_p50_s",
                        "rct_p95_s"});
    stats::Summary base;
    stats::Summary aqua;
    for (exp::OffloadMode mode : {exp::OffloadMode::Dram,
                                  exp::OffloadMode::Aqua}) {
        exp::LoraExperimentConfig cfg;
        cfg.mode = mode;
        cfg.producerModel = "StableDiffusion";
        cfg.ratePerSec = 2.0;
        cfg.numRequests = 7200; // one hour at 2 req/s
        cfg.maxSimSeconds = 7200.0;
        exp::LoraExperimentResult r = exp::runLoraExperiment(cfg);
        stats::Summary s = bench::rctSummary(r.metrics);
        if (mode == exp::OffloadMode::Dram)
            base = s;
        else
            aqua = s;
        table.newRow()
            .cell(exp::offloadModeName(mode))
            .cell(r.metrics.size())
            .cell(s.median(), 2)
            .cell(s.p95(), 2);
    }
    bench::show(table);
    std::printf("improvement: p50 %.2fX, p95 %.2fX "
                "(paper: 2X and 1.7X)\n",
                base.median() / aqua.median(),
                base.p95() / aqua.p95());
    return 0;
}
