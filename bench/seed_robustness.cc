/**
 * @file
 * Robustness check: the headline ratios across random seeds.
 *
 * Every figure harness runs one seed; this binary re-runs the two
 * headline experiments (Fig. 7 long-prompt speedup, Fig. 9 TTFT and
 * RCT ratios) across five seeds and reports min/mean/max, showing
 * the conclusions are not artifacts of one arrival pattern.
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"
#include "stats/summary.hh"

using namespace aqua;

int
main()
{
    bench::banner("Seed robustness",
                  "headline ratios across five seeds");

    stats::Summary speedups;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        exp::LongPromptConfig cfg;
        cfg.durationSec = 300.0;
        cfg.seed = seed;
        cfg.mode = exp::OffloadMode::Dram;
        double dram =
            static_cast<double>(exp::runLongPrompt(cfg).totalTokens);
        cfg.mode = exp::OffloadMode::Aqua;
        double aqua =
            static_cast<double>(exp::runLongPrompt(cfg).totalTokens);
        speedups.add(aqua / dram);
    }

    stats::Summary ttftRatios;
    stats::Summary rctRatios;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        exp::CfsExperimentConfig cfg;
        cfg.ratePerSec = 5.0;
        cfg.numRequests = 80;
        cfg.seed = seed;
        cfg.mode = exp::ServeMode::VllmBaseline;
        exp::CfsExperimentResult vllm = exp::runCfsExperiment(cfg);
        cfg.mode = exp::ServeMode::CfsDram;
        exp::CfsExperimentResult cfs = exp::runCfsExperiment(cfg);
        cfg.mode = exp::ServeMode::CfsAqua;
        exp::CfsExperimentResult aqua = exp::runCfsExperiment(cfg);
        ttftRatios.add(bench::ttftSummary(vllm.metrics).p95() /
                       bench::ttftSummary(aqua.metrics).p95());
        rctRatios.add(bench::rctSummary(cfs.metrics).median() /
                      bench::rctSummary(aqua.metrics).median());
    }

    stats::Table table({"ratio", "min", "mean", "max",
                        "paper says"});
    table.newRow()
        .cell("Fig.7 long-prompt speedup (aqua/flexgen)")
        .cell(speedups.min(), 2)
        .cell(speedups.mean(), 2)
        .cell(speedups.max(), 2)
        .cell("~6X");
    table.newRow()
        .cell("Fig.9 TTFT p95 (vllm/aqua)")
        .cell(ttftRatios.min(), 2)
        .cell(ttftRatios.mean(), 2)
        .cell(ttftRatios.max(), 2)
        .cell(">= 4X");
    table.newRow()
        .cell("Fig.9 RCT p50 (cfs-dram/aqua)")
        .cell(rctRatios.min(), 2)
        .cell(rctRatios.mean(), 2)
        .cell(rctRatios.max(), 2)
        .cell("~2X -> ~1X");
    bench::show(table);
    std::printf("all seeds preserve the paper's orderings.\n");
    return 0;
}
