/**
 * @file
 * Chaos robustness: decode under injected faults, across seeds.
 *
 * The figure harnesses measure AQUA on a healthy fabric. This binary
 * measures what the paper's §8 reliability discussion only sketches:
 * a consumer decoding against leased donor memory while the fault
 * layer (src/fault) kills the donor GPU, degrades links, takes the
 * coordinator down, and drops or delays control messages.
 *
 * Every chaos cell is paired with a fault-free twin run driving the
 * identical write sequence. The twin provides two ground truths: the
 * per-tensor content signatures (byte identity must survive every
 * emergency migration) and the healthy token count (chaos may cost
 * tokens, never correctness). Reported per cell: faults injected and
 * recovered, disruption-latency percentiles over control-plane calls,
 * tokens generated and lost, and identity violations (always zero).
 *
 * Results also land in BENCH_robustness.json (bench::JsonReporter);
 * `--smoke` shrinks the sweep to one seed per cell for CI.
 */

#include <cstring>
#include <memory>

#include "bench/bench_util.hh"
#include "exp/testbed.hh"
#include "fault/fault.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "trace/trace.hh"

using namespace aqua;
using namespace aqua::sim;
using aqua::fault::ChaosConfig;
using aqua::fault::FaultInjector;
using aqua::fault::FaultKind;
using aqua::fault::FaultPlan;
using aqua::fault::FaultSpec;

namespace {

constexpr std::uint64_t mb = std::uint64_t(1) << 20;
constexpr std::uint64_t gb = std::uint64_t(1) << 30;

constexpr Tick horizon = secToTicks(2.0);
constexpr Tick stepPeriod = msToTicks(1.0); // one token per step
constexpr std::size_t steps = horizon / stepPeriod;
constexpr std::size_t respondEvery = 8;

/** A consumer's memory shape during the chaos run. */
struct Workload
{
    const char *name;
    std::size_t tensors;
    std::uint64_t tensorBytes;
    std::uint64_t writeBytes;
    std::uint64_t writeChunks;
};

const Workload kWorkloads[] = {
    // Long-prompt decode: few large KV tensors, streaming appends.
    {"kv-decode", 4, 256 * mb, 2 * mb, 32},
    // LoRA serving: many small adapters, whole-tensor rewrites.
    {"lora-swap", 16, 16 * mb, 16 * mb, 8},
};

struct CellResult
{
    std::vector<std::uint64_t> signatures;
    std::uint64_t tokens = 0;
    std::uint64_t tokensLost = 0;
    fault::FaultInjectorStats inj;
    stats::Summary disruptMs;
    std::size_t emergencies = 0;
    std::size_t unmatched = 0;
};

/**
 * One decode run: fixed write schedule, periodic respond(), optional
 * fault plan. The write schedule never depends on fault effects, so
 * two runs of the same (workload, seed) produce identical signatures
 * unless a migration corrupted bytes.
 */
CellResult
runCell(const Workload &w, const FaultPlan *plan, std::uint64_t seed)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P, seed);
    core::AquaLibConfig prodCfg;
    prodCfg.heartbeatInterval = msToTicks(5.0);
    core::AquaLib &producer = tb.makeAquaLib(1, nullptr, prodCfg);
    core::AquaLibConfig consCfg;
    core::AquaLib &consumer = tb.makeAquaLib(0, nullptr, consCfg);
    tb.assign(0, 1);

    trace::TraceLog log;
    consumer.setTraceLog(&log);
    tb.coordinator().setLeaseTtl(msToTicks(20.0));
    tb.coordinator().lease(1, 10 * gb, 0);
    producer.startHeartbeats(horizon);

    std::vector<core::TensorId> ids;
    for (std::size_t i = 0; i < w.tensors; ++i) {
        auto id = consumer.allocateTensor(w.tensorBytes);
        if (!id)
            panic("chaos bench: initial allocation failed");
        ids.push_back(*id);
    }

    std::unique_ptr<FaultInjector> inj;
    if (plan) {
        inj = std::make_unique<FaultInjector>(
            tb.sim(), tb.server().topology(), tb.rest().router());
        inj->registerLib(producer);
        inj->setTraceLog(&log);
        inj->arm(*plan);
    }

    CellResult res;
    Tick freeAt = 0;
    for (std::size_t step = 0; step < steps; ++step) {
        tb.sim().queue().schedule(
            static_cast<Tick>(step) * stepPeriod,
            [&, step] {
                Tick now = tb.sim().now();
                // A token only ships if the previous control-plane
                // stall has drained; the write always lands (data
                // queues, it does not vanish), keeping the byte
                // stream identical to the fault-free twin.
                if (now < freeAt)
                    ++res.tokensLost;
                else
                    ++res.tokens;
                consumer.writeTensor(ids[step % ids.size()],
                                     w.writeBytes, w.writeChunks);
                if (step % respondEvery == 0) {
                    Tick blocked = consumer.respond();
                    if (blocked > freeAt)
                        freeAt = blocked;
                    Tick healthy = now + consCfg.restLatency;
                    if (blocked > healthy)
                        res.disruptMs.add(
                            static_cast<double>(blocked - healthy) /
                            static_cast<double>(nsPerMs));
                }
            });
    }
    tb.sim().runUntil(horizon);

    for (core::TensorId id : ids)
        res.signatures.push_back(consumer.tensorSignature(id));
    res.emergencies = log.countCategory("emergency_migrate");
    if (inj) {
        res.inj = inj->stats();
        res.unmatched = log.unmatchedPairs("fault_inject",
                                           "fault_recover",
                                           "fault_id").size();
    }
    return res;
}

std::size_t
identityViolations(const CellResult &chaos, const CellResult &twin)
{
    std::size_t bad = 0;
    for (std::size_t i = 0; i < chaos.signatures.size(); ++i)
        if (chaos.signatures[i] != twin.signatures[i])
            ++bad;
    return bad;
}

/** Random background chaos at a given intensity. */
FaultPlan
chaosPlan(std::uint64_t seed, int level)
{
    ChaosConfig cfg;
    cfg.horizon = horizon;
    cfg.donorGpus = {1};
    if (level == 1) { // light: flaky control plane, no GPU loss
        cfg.gpuFailures = 0;
        cfg.linkDegrades = 2;
        cfg.outages = 1;
        cfg.dropWindows = 1;
        cfg.dropProbability = 0.3;
        cfg.delayWindows = 1;
    } else { // heavy: everything at once, donor crashes too
        cfg.gpuFailures = 1;
        cfg.meanGpuDowntime = msToTicks(60.0);
        cfg.gpuGrace = msToTicks(150.0);
        cfg.linkDegrades = 4;
        cfg.outages = 3;
        cfg.dropWindows = 2;
        cfg.dropProbability = 0.5;
        cfg.delayWindows = 2;
    }
    return FaultPlan::random(seed, cfg);
}

/** The acceptance scenario: donor dies for good, mid-decode. */
FaultPlan
donorKillPlan()
{
    FaultPlan plan;
    FaultSpec kill;
    kill.kind = FaultKind::GpuFail;
    kill.at = horizon / 2;
    kill.duration = 0; // permanent
    kill.gpu = 1;
    kill.grace = msToTicks(200.0);
    plan.add(kill);
    return plan;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner("Chaos robustness",
                  "decode under injected faults, across seeds");

    bench::JsonReporter report("robustness");
    report.set("smoke", smoke);
    json::Object cells;

    // Part 1: the donor-kill acceptance scenario. The donor GPU dies
    // permanently mid-decode; the run must complete with every byte
    // intact and degraded (not zero) throughput.
    stats::Table kill({"workload", "tokens", "healthy", "lost",
                       "evac", "disrupt p95 ms", "identity"});
    bool ok = true;
    for (const Workload &w : kWorkloads) {
        FaultPlan plan = donorKillPlan();
        CellResult twin = runCell(w, nullptr, 1);
        CellResult chaos = runCell(w, &plan, 1);
        std::size_t bad = identityViolations(chaos, twin);
        // The permanent fault is the only legal unmatched pair.
        bool cellOk = bad == 0 && chaos.unmatched == 1 &&
                      chaos.emergencies == w.tensors &&
                      chaos.tokens > 0;
        ok = ok && cellOk;
        kill.newRow()
            .cell(w.name)
            .cell(static_cast<double>(chaos.tokens), 0)
            .cell(static_cast<double>(twin.tokens), 0)
            .cell(static_cast<double>(chaos.tokensLost), 0)
            .cell(static_cast<double>(chaos.emergencies), 0)
            .cell(chaos.disruptMs.empty() ? 0.0
                                          : chaos.disruptMs.p95(), 2)
            .cell(bad == 0 ? "intact" : "CORRUPT");
        json::Object cell;
        cell["tokens"] = static_cast<std::int64_t>(chaos.tokens);
        cell["healthy_tokens"] =
            static_cast<std::int64_t>(twin.tokens);
        cell["tokens_lost"] =
            static_cast<std::int64_t>(chaos.tokensLost);
        cell["emergency_evacuations"] =
            static_cast<std::int64_t>(chaos.emergencies);
        cell["disrupt_p95_ms"] =
            chaos.disruptMs.empty() ? 0.0 : chaos.disruptMs.p95();
        cell["identity_violations"] = static_cast<std::int64_t>(bad);
        cell["ok"] = cellOk;
        cells[std::string("donor_kill_") + w.name] = std::move(cell);
    }
    bench::show(kill);

    // Part 2: fault-rate sweep, pooled over seeds (one seed per cell
    // in smoke mode, three otherwise).
    const std::uint64_t numSeeds = smoke ? 1 : 3;
    stats::Table sweep({"workload", "faults", "inj", "rec",
                        "disrupt p50 ms", "p95 ms", "tokens", "lost",
                        "identity"});
    const char *levels[] = {"light", "heavy"};
    for (const Workload &w : kWorkloads) {
        for (int level = 1; level <= 2; ++level) {
            std::uint64_t inj = 0, rec = 0, tokens = 0, lost = 0;
            std::size_t bad = 0;
            stats::Summary disrupt;
            for (std::uint64_t seed = 1; seed <= numSeeds; ++seed) {
                FaultPlan plan =
                    chaosPlan(seed * 31 + level, level);
                CellResult twin = runCell(w, nullptr, seed);
                CellResult chaos = runCell(w, &plan, seed);
                inj += chaos.inj.injected;
                rec += chaos.inj.recovered;
                tokens += chaos.tokens;
                lost += chaos.tokensLost;
                bad += identityViolations(chaos, twin);
                disrupt.add(chaos.disruptMs.values());
                ok = ok && chaos.unmatched == 0;
            }
            ok = ok && bad == 0;
            sweep.newRow()
                .cell(w.name)
                .cell(levels[level - 1])
                .cell(static_cast<double>(inj), 0)
                .cell(static_cast<double>(rec), 0)
                .cell(disrupt.empty() ? 0.0 : disrupt.median(), 2)
                .cell(disrupt.empty() ? 0.0 : disrupt.p95(), 2)
                .cell(static_cast<double>(tokens), 0)
                .cell(static_cast<double>(lost), 0)
                .cell(bad == 0 ? "intact" : "CORRUPT");
            json::Object cell;
            cell["injected"] = static_cast<std::int64_t>(inj);
            cell["recovered"] = static_cast<std::int64_t>(rec);
            cell["disrupt_p50_ms"] =
                disrupt.empty() ? 0.0 : disrupt.median();
            cell["disrupt_p95_ms"] =
                disrupt.empty() ? 0.0 : disrupt.p95();
            cell["tokens"] = static_cast<std::int64_t>(tokens);
            cell["tokens_lost"] = static_cast<std::int64_t>(lost);
            cell["identity_violations"] =
                static_cast<std::int64_t>(bad);
            cells[std::string(w.name) + "_" + levels[level - 1]] =
                std::move(cell);
        }
    }
    bench::show(sweep);

    report.set("seeds_per_cell",
               static_cast<std::int64_t>(numSeeds));
    report.set("cells", std::move(cells));
    report.set("ok", ok);
    report.write();

    if (!ok) {
        std::printf("CHAOS VIOLATION: see the tables above.\n");
        return 1;
    }
    std::printf("all chaos cells completed degraded-not-dead: every "
                "transient fault recovered,\nevery tensor byte-"
                "identical to its fault-free twin.\n");
    return 0;
}
