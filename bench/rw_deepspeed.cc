/**
 * @file
 * Related work (§9): FlexGen vs DeepSpeed-ZeRO-Inference offloading,
 * with and without AQUA.
 *
 * "Deepspeed-zero is another engine like FlexGen that can execute
 * models with offloading... FlexGen evaluated Deepspeed and showed
 * that they perform better because of their more efficient offloading
 * strategy. Since AQUA can improve FlexGen's performance, similar
 * benefits can extend to Deepspeed."
 *
 * ZeRO streams the whole weight set through the GPU each iteration
 * (so even >HBM models run); FlexGen keeps weights resident and
 * offloads only the KV context. Both are offload-bound, so both gain
 * from routing their traffic over NVLink.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "exp/testbed.hh"
#include "serve/flexgen_engine.hh"
#include "workload/generator.hh"

using namespace aqua;

namespace {

std::uint64_t
run(const model::ModelSpec &spec, bool zero, bool useAqua)
{
    exp::Testbed tb(2, hw::TopologyKind::DirectP2P);
    serve::OffloadBackend *backend = nullptr;
    if (useAqua) {
        core::AquaLib &lib = tb.makeAquaLib(0);
        tb.assign(0, 1);
        // ZeRO parks the full weight set plus KV on the producer.
        tb.coordinator().lease(1, std::uint64_t(76) << 30);
        backend = &tb.makeAquaBackend(lib);
    } else {
        backend = &tb.makeDramBackend(0);
    }
    serve::FlexGenConfig cfg;
    cfg.streamWeights = zero;
    serve::FlexGenEngine engine(tb.server(), 0, spec, *backend,
                                cfg);
    workload::TraceBuilder traces(tb.sim().makeRandom());
    for (int i = 0; i < 20; ++i)
        engine.submit(traces.longPrompt(8000, 2000));
    tb.sim().runUntil(sim::secToTicks(600.0));
    return engine.totalTokens();
}

} // anonymous namespace

int
main()
{
    bench::banner("Related work (§9)",
                  "FlexGen (KV offload) vs DeepSpeed-ZeRO (weights "
                  "stream too), OPT-30B long prompts, 10 min");
    stats::Table table({"model", "engine", "offload",
                        "tokens/10min"});
    model::ModelSpec opt = model::opt30b();
    table.newRow().cell("OPT-30B").cell("FlexGen").cell("dram")
        .cell(run(opt, false, false));
    table.newRow().cell("OPT-30B").cell("FlexGen").cell("aqua")
        .cell(run(opt, false, true));
    table.newRow().cell("OPT-30B").cell("DeepSpeed-ZeRO")
        .cell("dram").cell(run(opt, true, false));
    table.newRow().cell("OPT-30B").cell("DeepSpeed-ZeRO")
        .cell("aqua").cell(run(opt, true, true));
    // Mixtral-8x7B's 93 GB of fp16 weights do not fit an A100-80G:
    // only weight streaming can serve it at all.
    model::ModelSpec moe = model::mixtral8x7b();
    table.newRow().cell("Mixtral-8x7B").cell("DeepSpeed-ZeRO")
        .cell("dram").cell(run(moe, true, false));
    table.newRow().cell("Mixtral-8x7B").cell("DeepSpeed-ZeRO")
        .cell("aqua").cell(run(moe, true, true));
    bench::show(table);
    std::printf("paper: FlexGen's KV-only offloading beats ZeRO's "
                "weight streaming (as FlexGen reported), and AQUA "
                "lifts both — 'similar benefits can extend to "
                "Deepspeed'. Mixtral (93 GB fp16) exceeds the GPU's "
                "HBM entirely, so only weight streaming can serve "
                "it at all — but 93 GB also exceeds what any single "
                "producer can lease, so its weights stay on the "
                "DRAM path: a concrete limit of the paper's "
                "one-producer-per-consumer design.\n");
    return 0;
}
