/**
 * @file
 * Ablation: CFS slice length (the k of Fig. 6).
 *
 * Short slices context-switch often (responsive, high paging cost);
 * long slices amortize paging but approach batch scheduling. The
 * sweep shows the trade-off under both offload paths and why AQUA
 * makes short, responsive slices affordable (§5).
 */

#include "bench/bench_util.hh"
#include "exp/experiments.hh"

using namespace aqua;

int
main()
{
    bench::banner("Ablation: CFS slice length",
                  "Codellama-34B at 5 req/s, TTFT/RCT vs slice "
                  "tokens");
    stats::Table table({"slice_tokens", "system", "ttft_p95_s",
                        "rct_p50_s", "swap_outs"});
    for (std::uint32_t slice : {1, 5, 20, 80}) {
        for (exp::ServeMode mode : {exp::ServeMode::CfsDram,
                                    exp::ServeMode::CfsAqua}) {
            exp::CfsExperimentConfig cfg;
            cfg.mode = mode;
            cfg.ratePerSec = 5.0;
            cfg.sliceTokens = slice;
            exp::CfsExperimentResult r = exp::runCfsExperiment(cfg);
            stats::Summary ttft = bench::ttftSummary(r.metrics);
            stats::Summary rct = bench::rctSummary(r.metrics);
            table.newRow()
                .cell(std::uint64_t(slice))
                .cell(exp::serveModeName(mode))
                .cell(ttft.p95(), 2)
                .cell(rct.median(), 2)
                .cell(r.consumerSwapOuts);
        }
    }
    bench::show(table);
    std::printf("takeaway: over PCIe, shrinking the slice buys "
                "responsiveness at a steep RCT cost; over AQUA the "
                "same slice costs far less, so short slices (the "
                "paper uses 5 tokens) become practical.\n");
    return 0;
}
