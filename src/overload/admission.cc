#include "overload/admission.hh"

#include <algorithm>
#include <cmath>

namespace aqua::overload {

const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
    case ShedReason::None:
        return "none";
    case ShedReason::DeadlineUnmeetable:
        return "deadline_unmeetable";
    case ShedReason::BrownoutBestEffort:
        return "brownout_best_effort";
    case ShedReason::BrownoutReject:
        return "brownout_reject";
    }
    return "unknown";
}

AdmissionController::AdmissionController(ServiceRates rates,
                                         AdmissionConfig config)
    : svc(rates), cfg(config)
{
}

aqua::sim::Tick
AdmissionController::predictCompletion(const AdmissionQuery &q) const
{
    // Queued prompts ahead prefill first (prefill is prioritised over
    // decode), then our own prefill, then decode. Decode iterations
    // hand one token to each resident sequence, so with more live
    // sequences than batch slots a request only advances on a
    // maxBatch/live share of iterations.
    double live = double(q.runningCount) + 1.0;
    double share =
        std::max(1.0, live / double(std::max<std::size_t>(q.maxBatch, 1)));
    double service =
        double(q.queuedPrefillTokensAhead + q.promptTokens) *
            double(svc.prefillPerToken) +
        double(q.remainingNewTokens) * double(svc.decodePerToken) *
            share;
    service *= cfg.safetyFactor;
    return q.now + static_cast<aqua::sim::Tick>(service);
}

ShedReason
AdmissionController::assess(const AdmissionQuery &q,
                            BrownoutLevel level) const
{
    if (!cfg.enabled)
        return ShedReason::None;
    if (level >= BrownoutLevel::RejectNew)
        return ShedReason::BrownoutReject;
    if (q.bestEffort && level >= BrownoutLevel::ShedBestEffort)
        return ShedReason::BrownoutBestEffort;
    if (q.deadline != 0) {
        if (q.now >= q.deadline ||
            predictCompletion(q) > q.deadline)
            return ShedReason::DeadlineUnmeetable;
    }
    return ShedReason::None;
}

void
AdmissionController::recordShed(ShedReason reason)
{
    switch (reason) {
    case ShedReason::None:
        break;
    case ShedReason::DeadlineUnmeetable:
        ++counters.shedDeadline;
        break;
    case ShedReason::BrownoutBestEffort:
        ++counters.shedBestEffort;
        break;
    case ShedReason::BrownoutReject:
        ++counters.shedReject;
        break;
    }
}

void
AdmissionController::recordCompletion(aqua::sim::Tick finish,
                                      aqua::sim::Tick deadline)
{
    if (deadline != 0 && finish > deadline)
        ++counters.deadlineMissed;
    else
        ++counters.deadlineMet;
}

double
AdmissionController::attainment() const
{
    std::uint64_t done = counters.deadlineMet + counters.deadlineMissed;
    return done == 0 ? 1.0
                     : double(counters.deadlineMet) / double(done);
}

} // namespace aqua::overload
