/**
 * @file
 * Deadline-aware admission control: spend HBM and NVLink bandwidth
 * only on requests that can still meet their SLO.
 *
 * Under overload, admitting every arrival maximises throughput but
 * ruins goodput — a request admitted behind a deep queue finishes
 * long after its deadline, having consumed prefill compute, KV blocks
 * and offload bandwidth that a still-viable request needed. The
 * controller predicts a waiting request's completion time from
 * model::PerfModel-derived service rates plus the queue ahead of it
 * and sheds it up front when the prediction already misses the
 * deadline.
 *
 * The controller is serve-agnostic: the scheduler builds a plain
 * AdmissionQuery per waiting sequence and acts on the verdict. Sheds
 * and deadline attainment are counted per reason and traced, so the
 * brownout ladder and the benches can observe every decision.
 */

#ifndef AQUA_OVERLOAD_ADMISSION_HH
#define AQUA_OVERLOAD_ADMISSION_HH

#include <cstdint>

#include "overload/brownout.hh"
#include "sim/ticks.hh"

namespace aqua::overload {

/** Why a request was shed (None = admit). */
enum class ShedReason : std::uint8_t
{
    None = 0,
    /** Predicted completion already misses the deadline. */
    DeadlineUnmeetable,
    /** Best-effort request shed by brownout level >= ShedBestEffort. */
    BrownoutBestEffort,
    /** Brownout level RejectNew refuses all new admissions. */
    BrownoutReject,
};

/** Stable lowercase name, e.g. "deadline_unmeetable". */
const char *shedReasonName(ShedReason reason);

/** Service rates the engine derives from its model::PerfModel. */
struct ServiceRates
{
    /** Prefill cost per prompt token. */
    aqua::sim::Tick prefillPerToken = 0;
    /** Decode iteration time (one token per resident sequence). */
    aqua::sim::Tick decodePerToken = 0;
};

/** Tunables. */
struct AdmissionConfig
{
    bool enabled = true;
    /** Inflate the service prediction: > 1 sheds earlier (pessimistic
     *  about queueing effects the linear model ignores). */
    double safetyFactor = 1.0;
};

/** One admission question, posed by the scheduler. */
struct AdmissionQuery
{
    aqua::sim::Tick now = 0;
    std::uint64_t requestId = 0;
    /** Absolute completion deadline; 0 = no SLO. */
    aqua::sim::Tick deadline = 0;
    /** Deadline-less, sheddable-first work. */
    bool bestEffort = false;
    /** Prompt tokens still to prefill for this request. */
    std::uint32_t promptTokens = 0;
    /** Generation budget remaining. */
    std::uint32_t remainingNewTokens = 0;
    /** Prompt tokens of waiting sequences queued ahead. */
    std::uint64_t queuedPrefillTokensAhead = 0;
    /** Sequences currently resident and decoding. */
    std::size_t runningCount = 0;
    /** Engine batch capacity. */
    std::size_t maxBatch = 1;
};

/** Decision counters. */
struct AdmissionStats
{
    std::uint64_t admitted = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t shedBestEffort = 0;
    std::uint64_t shedReject = 0;
    /** Completions by deadline outcome (no-SLO finishes count met). */
    std::uint64_t deadlineMet = 0;
    std::uint64_t deadlineMissed = 0;

    std::uint64_t
    totalShed() const
    {
        return shedDeadline + shedBestEffort + shedReject;
    }
};

/**
 * The admission controller.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(ServiceRates rates,
                                 AdmissionConfig config = {});

    /**
     * Predicted completion tick of @p q if admitted now: queued
     * prefill work ahead, own prefill, then decode iterations shared
     * with the resident batch.
     */
    aqua::sim::Tick predictCompletion(const AdmissionQuery &q) const;

    /**
     * Admit-or-shed verdict for one waiting request at brownout level
     * @p level. Pure — the engine accounts the acted-on verdict via
     * recordShed()/recordAdmit() (and emits the "shed" trace event,
     * since it owns the request context).
     */
    ShedReason assess(const AdmissionQuery &q,
                      BrownoutLevel level) const;

    /** Account one shed the engine acted on. */
    void recordShed(ShedReason reason);

    /** Account one successful admission. */
    void recordAdmit() { ++counters.admitted; }

    /** Account a finished request against its deadline. */
    void recordCompletion(aqua::sim::Tick finish,
                          aqua::sim::Tick deadline);

    const AdmissionStats &stats() const { return counters; }
    const ServiceRates &rates() const { return svc; }

    /** Deadline attainment over finished requests, [0, 1]. */
    double attainment() const;

  private:
    ServiceRates svc;
    AdmissionConfig cfg;
    AdmissionStats counters;
};

} // namespace aqua::overload

#endif // AQUA_OVERLOAD_ADMISSION_HH
