/**
 * @file
 * Graceful brownout: a hysteresis ladder of service degradations an
 * engine climbs under overload instead of collapsing.
 *
 * Production serving systems treat overload as a first-class failure
 * mode: rather than queueing unboundedly (and missing every deadline)
 * or crashing (OOM), the engine sheds optional work first and only
 * refuses new requests as a last resort. The ladder here:
 *
 *   Normal -> ShedBestEffort -> NoCachePublish -> ForceDramOffload
 *          -> RejectNew
 *
 * Levels are driven by queue depth, queue delay, free-pool fraction
 * and offload-path pressure (a donor reclaiming its lease or a
 * degraded NVLink — the circuit-breaker input). Escalation is
 * immediate (overload demands fast reaction); de-escalation steps
 * down one level at a time and only after a dwell period with all
 * signals below their low-water marks, which is what prevents level
 * flapping around a threshold.
 *
 * The controller is engine-agnostic: it consumes a plain
 * BrownoutSignals snapshot and exposes level queries; the serving
 * engine maps levels to concrete degradations (skip prefix-cache
 * publishes, shrink the CFS slice, prefer the DRAM backend, refuse
 * admission). Every transition is traced and accounted per level.
 */

#ifndef AQUA_OVERLOAD_BROWNOUT_HH
#define AQUA_OVERLOAD_BROWNOUT_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/ticks.hh"
#include "trace/trace.hh"

namespace aqua::overload {

/** Degradation ladder, mildest first. Order is meaningful: level
 *  comparisons use >=, and every level implies the ones below it. */
enum class BrownoutLevel : std::uint8_t
{
    /** Full service. */
    Normal = 0,
    /** Shed best-effort (deadline-less, low-priority) requests. */
    ShedBestEffort = 1,
    /** Stop publishing prefix-cache blocks (cache upkeep is optional
     *  work; freeing eviction pressure beats future hit rate). */
    NoCachePublish = 2,
    /** Prefer the host-DRAM backend over the NVLink donor for swaps —
     *  the circuit breaker over a reclaiming or degraded offload
     *  path. */
    ForceDramOffload = 3,
    /** Refuse new admissions entirely. */
    RejectNew = 4,
};

/** Number of ladder rungs (for per-level accounting arrays). */
inline constexpr std::size_t numBrownoutLevels = 5;

/** Stable lowercase name, e.g. "shed_best_effort". */
const char *brownoutLevelName(BrownoutLevel level);

/** Signals sampled by the engine each evaluation. */
struct BrownoutSignals
{
    aqua::sim::Tick now = 0;
    /** Sequences queued for GPU service: the admission queue plus any
     *  swapped-out sequences time-sharing the batch (under a fair
     *  policy, overload pools in the latter, not the former). */
    std::size_t queueDepth = 0;
    /** Age of the oldest waiting request, seconds. */
    double queueDelaySec = 0.0;
    /** Free + evictable fraction of the KV pool (1.0 = empty pool). */
    double freePoolFraction = 1.0;
    /** Offload-path pressure: the lease donor is reclaiming, or the
     *  engine observed a reclaim-induced stall recently. */
    bool reclaimPressure = false;
    /** NVLink health from Link::degradation(): 1.0 = full bandwidth,
     *  lower = degraded (fault injection or hardware). */
    double linkHealth = 1.0;
};

/** Thresholds and hysteresis tunables. */
struct BrownoutConfig
{
    bool enabled = true;

    /** Queue depth entering / leaving pressure. */
    std::size_t queueHigh = 24;
    std::size_t queueLow = 8;

    /** Oldest-waiter age entering / leaving pressure (seconds). */
    double delayHighSec = 2.0;
    double delayLowSec = 0.5;

    /** Free-pool fraction at or below which memory pressure deepens
     *  an active (queue-driven) brownout. A low fraction alone is not
     *  overload — a busy offloaded engine runs its pool full. */
    double freeLow = 0.10;

    /** NVLink health at or below which the offload circuit opens. */
    double linkHealthLow = 0.9;

    /** Minimum time between level changes (hysteresis dwell). */
    aqua::sim::Tick minDwell = 200 * aqua::sim::nsPerMs;

    /** How long after a reclaim-driven evacuation the offload path
     *  still counts as pressured (circuit-breaker hold time; bridges
     *  the gaps between the staged rounds of one reclaim). */
    aqua::sim::Tick evacPressureWindow = 1000 * aqua::sim::nsPerMs;

    /** CFS slice multiplier applied per level above Normal; the
     *  effective slice is sliceTokens * sliceScale^level, floored at
     *  one token. Shorter slices cap how long a brownout victim can
     *  hold the GPU. */
    double sliceScale = 0.5;
};

/** Counters and per-level residency accounting. */
struct BrownoutStats
{
    /** Level transitions performed (either direction). */
    std::uint64_t transitions = 0;
    /** Escalations (level increased). */
    std::uint64_t escalations = 0;
    /** Ticks spent at each level (closed intervals only; call
     *  BrownoutController::timeAtLevel for an up-to-date view). */
    std::array<aqua::sim::Tick, numBrownoutLevels> ticksAtLevel{};
};

/**
 * The hysteresis ladder controller.
 */
class BrownoutController
{
  public:
    explicit BrownoutController(BrownoutConfig config = {});

    /** Emit a "brownout_level" trace event per transition. */
    void setTraceLog(trace::TraceLog *log) { tracer = log; }

    /**
     * Evaluate the latest signals; may transition the level.
     * @return the (possibly new) level.
     */
    BrownoutLevel update(const BrownoutSignals &signals);

    BrownoutLevel level() const { return current; }

    //
    // Level-effect queries for the engine's hot path.
    //

    bool shedBestEffort() const
    {
        return current >= BrownoutLevel::ShedBestEffort;
    }
    bool publishDisabled() const
    {
        return current >= BrownoutLevel::NoCachePublish;
    }
    bool forceDramOffload() const
    {
        return current >= BrownoutLevel::ForceDramOffload;
    }
    bool rejectingNew() const
    {
        return current >= BrownoutLevel::RejectNew;
    }

    /** Multiplier for the CFS slice at the current level. */
    double sliceFactor() const;

    /** Ticks spent at @p level, including the open interval up to
     *  @p now when it is the current level. */
    aqua::sim::Tick timeAtLevel(BrownoutLevel level,
                                aqua::sim::Tick now) const;

    const BrownoutStats &stats() const { return counters; }
    const BrownoutConfig &config() const { return cfg; }

  private:
    /** Severity the raw signals call for, ignoring hysteresis. */
    BrownoutLevel targetLevel(const BrownoutSignals &s) const;

    /** All signals below their low-water marks (step-down gate). */
    bool calm(const BrownoutSignals &s) const;

    void transitionTo(BrownoutLevel next, const BrownoutSignals &s,
                      const char *reason);

    BrownoutConfig cfg;
    BrownoutLevel current = BrownoutLevel::Normal;
    /** When the current level was entered. */
    aqua::sim::Tick enteredAt = 0;
    BrownoutStats counters;
    trace::TraceLog *tracer = nullptr;
};

} // namespace aqua::overload

#endif // AQUA_OVERLOAD_BROWNOUT_HH
