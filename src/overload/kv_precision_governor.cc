#include "overload/kv_precision_governor.hh"

#include <algorithm>

namespace aqua::overload {

using model::KvPrecision;
using model::kvPrecisionDivisor;
using model::kvPrecisionName;

KvPrecisionGovernor::KvPrecisionGovernor(
    KvPrecisionGovernorConfig config, KvPrecision serving)
    : cfg(config), serving(serving), current(serving)
{
}

KvPrecision
KvPrecisionGovernor::targetPrecision(double freePoolFraction,
                                     BrownoutLevel level) const
{
    // Two independent pressure reads: the pool's own free fraction
    // (leading indicator) and the brownout ladder (the engine is
    // already degrading service). Either suffices; take the deeper.
    KvPrecision target = serving;
    if (freePoolFraction <= cfg.freeFp8 ||
        level >= BrownoutLevel::NoCachePublish)
        target = KvPrecision::Fp8;
    if (freePoolFraction <= cfg.freeInt4 ||
        level >= BrownoutLevel::ForceDramOffload)
        target = KvPrecision::Int4;

    // Never widen past the serving precision (payloads are already
    // that narrow) and never narrow past the configured floor.
    if (kvPrecisionDivisor(target) < kvPrecisionDivisor(serving))
        target = serving;
    if (kvPrecisionDivisor(target) > kvPrecisionDivisor(cfg.floor))
        target = cfg.floor;
    return target;
}

void
KvPrecisionGovernor::reconfigure(KvPrecision next,
                                 double freePoolFraction,
                                 BrownoutLevel level,
                                 aqua::sim::Tick now,
                                 const char *reason)
{
    ++counters.reconfigurations;
    if (kvPrecisionDivisor(next) > kvPrecisionDivisor(current))
        ++counters.demotions;
    if (tracer) {
        json::Object o;
        o["from"] = std::string(kvPrecisionName(current));
        o["to"] = std::string(kvPrecisionName(next));
        o["reason"] = std::string(reason);
        o["free_pool_fraction"] = freePoolFraction;
        o["brownout_level"] = std::string(brownoutLevelName(level));
        tracer->emit(now, "kv_precision", json::Value(std::move(o)));
    }
    current = next;
    enteredAt = now;
}

KvPrecision
KvPrecisionGovernor::update(double freePoolFraction,
                            BrownoutLevel level, aqua::sim::Tick now)
{
    if (!cfg.enabled)
        return current;

    KvPrecision target = targetPrecision(freePoolFraction, level);
    bool dwelled = now - enteredAt >= cfg.minDwell;

    if (kvPrecisionDivisor(target) > kvPrecisionDivisor(current)) {
        // Demote immediately — quantizing cold KV late means the
        // eviction wave it was meant to shrink already happened.
        reconfigure(target, freePoolFraction, level, now, "demote");
    } else if (kvPrecisionDivisor(target) <
                   kvPrecisionDivisor(current) &&
               dwelled) {
        // Widen one step at a time after a full calm dwell; the gap
        // between freeFp8/freeInt4 and the dwell is the hysteresis
        // band that prevents flapping.
        auto next = static_cast<KvPrecision>(
            static_cast<std::uint8_t>(current) - 1);
        reconfigure(next, freePoolFraction, level, now, "promote");
    }
    return current;
}

void
KvPrecisionGovernor::notePayload(std::uint64_t servingBytes,
                                 std::uint64_t storedBytes)
{
    if (storedBytes >= servingBytes)
        return;
    ++counters.demotedPayloads;
    counters.savedBytes += servingBytes - storedBytes;
}

} // namespace aqua::overload
