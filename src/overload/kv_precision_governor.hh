/**
 * @file
 * Pressure-driven KV precision demotion: quantize-before-evict.
 *
 * The brownout ladder's answer to memory pressure is to move KV
 * *somewhere else* (stop cache publishes, force DRAM offload, reject
 * work). OrbitFlow-style reconfiguration adds an orthogonal knob: make
 * the KV leaving HBM *smaller*. This governor watches the same signals
 * the brownout controller consumes — free-pool fraction plus the
 * current brownout level — and picks the precision at which cold KV
 * (swap-out private tails, parked sessions) is quantized on its way
 * down the tier hierarchy. Resident, actively-decoded KV stays at the
 * serving precision: in-pool blocks are fixed-size, and quantizing hot
 * state would tax every decode step; only bytes already leaving HBM
 * are repriced.
 *
 * The escalation discipline mirrors BrownoutController: demote
 * (narrow) immediately when pressure appears, promote (widen) one step
 * at a time and only after a dwell with pressure gone — the hysteresis
 * band prevents precision flapping around a threshold. Every
 * reconfiguration is traced ("kv_precision") and counted.
 */

#ifndef AQUA_OVERLOAD_KV_PRECISION_GOVERNOR_HH
#define AQUA_OVERLOAD_KV_PRECISION_GOVERNOR_HH

#include <cstdint>

#include "model/kv_precision.hh"
#include "overload/brownout.hh"
#include "sim/ticks.hh"
#include "trace/trace.hh"

namespace aqua::overload {

/** Thresholds and hysteresis tunables. */
struct KvPrecisionGovernorConfig
{
    bool enabled = true;

    /** Narrowest precision cold KV may be demoted to. */
    model::KvPrecision floor = model::KvPrecision::Int4;

    /** Free-pool fraction at or below which cold KV demotes one step
     *  (to fp8 from an fp16 serving precision). */
    double freeFp8 = 0.25;

    /** Free-pool fraction at or below which cold KV demotes to the
     *  floor (int4). */
    double freeInt4 = 0.10;

    /** Minimum time between precision changes (hysteresis dwell);
     *  demotion under fresh pressure is always immediate. */
    aqua::sim::Tick minDwell = 200 * aqua::sim::nsPerMs;
};

/** Counters for the demotion path. */
struct KvPrecisionGovernorStats
{
    /** Precision changes performed (either direction). */
    std::uint64_t reconfigurations = 0;
    /** Demotions (precision narrowed). */
    std::uint64_t demotions = 0;
    /** Swap/park payloads written below the serving precision. */
    std::uint64_t demotedPayloads = 0;
    /** Offload bytes avoided by quantizing those payloads. */
    std::uint64_t savedBytes = 0;
};

/**
 * Chooses the precision for KV leaving HBM, given memory pressure.
 */
class KvPrecisionGovernor
{
  public:
    /**
     * @param config Tunables.
     * @param serving The precision KV is served (and resident) at;
     *        the governor never widens past it.
     */
    KvPrecisionGovernor(KvPrecisionGovernorConfig config,
                        model::KvPrecision serving);

    /** Emit a "kv_precision" trace event per reconfiguration. */
    void setTraceLog(trace::TraceLog *log) { tracer = log; }

    /**
     * Evaluate the latest pressure signals; may reconfigure.
     * @param freePoolFraction Free + evictable fraction of the KV pool.
     * @param level Current brownout ladder level (deepens demotion).
     * @return the (possibly new) cold-KV precision.
     */
    model::KvPrecision update(double freePoolFraction,
                              BrownoutLevel level, aqua::sim::Tick now);

    /** Precision KV leaving HBM is quantized to right now. */
    model::KvPrecision coldPrecision() const { return current; }

    /** Whether cold KV is currently demoted below serving precision. */
    bool demoting() const { return current != serving; }

    /**
     * Account one payload written at the current cold precision.
     * @param servingBytes The payload's size at serving precision.
     * @param storedBytes Its size as actually written.
     */
    void notePayload(std::uint64_t servingBytes,
                     std::uint64_t storedBytes);

    const KvPrecisionGovernorStats &stats() const { return counters; }
    const KvPrecisionGovernorConfig &config() const { return cfg; }

  private:
    /** Precision the raw signals call for, ignoring hysteresis. */
    model::KvPrecision targetPrecision(double freePoolFraction,
                                       BrownoutLevel level) const;

    void reconfigure(model::KvPrecision next, double freePoolFraction,
                     BrownoutLevel level, aqua::sim::Tick now,
                     const char *reason);

    KvPrecisionGovernorConfig cfg;
    model::KvPrecision serving;
    model::KvPrecision current;
    /** When the current precision was entered. */
    aqua::sim::Tick enteredAt = 0;
    KvPrecisionGovernorStats counters;
    trace::TraceLog *tracer = nullptr;
};

} // namespace aqua::overload

#endif // AQUA_OVERLOAD_KV_PRECISION_GOVERNOR_HH
