#include "overload/brownout.hh"

#include <algorithm>
#include <cmath>

namespace aqua::overload {

const char *
brownoutLevelName(BrownoutLevel level)
{
    switch (level) {
    case BrownoutLevel::Normal:
        return "normal";
    case BrownoutLevel::ShedBestEffort:
        return "shed_best_effort";
    case BrownoutLevel::NoCachePublish:
        return "no_cache_publish";
    case BrownoutLevel::ForceDramOffload:
        return "force_dram_offload";
    case BrownoutLevel::RejectNew:
        return "reject_new";
    }
    return "unknown";
}

BrownoutController::BrownoutController(BrownoutConfig config)
    : cfg(config)
{
}

BrownoutLevel
BrownoutController::targetLevel(const BrownoutSignals &s) const
{
    bool queuePressure = s.queueDepth >= cfg.queueHigh ||
                         s.queueDelaySec >= cfg.delayHighSec;
    bool memPressure = s.freePoolFraction <= cfg.freeLow;
    bool pathPressure =
        s.reclaimPressure || s.linkHealth <= cfg.linkHealthLow;

    // A full KV pool and a busy offload path are normal steady state
    // for an offloaded engine; neither alone is overload. Degradation
    // starts only once the admission queue itself hurts — memory and
    // path pressure then deepen the response.
    if (!queuePressure)
        return BrownoutLevel::Normal;

    auto lvl = BrownoutLevel::ShedBestEffort;
    if (memPressure)
        lvl = BrownoutLevel::NoCachePublish;
    if (pathPressure)
        lvl = BrownoutLevel::ForceDramOffload;

    // Last rung only under compound pressure: the queue is deep AND
    // either memory is exhausted or the oldest waiter is far past the
    // high-water delay. A single signal never refuses admissions.
    bool deepQueue = s.queueDepth >= 2 * cfg.queueHigh;
    bool staleQueue = s.queueDelaySec >= 2 * cfg.delayHighSec;
    if ((deepQueue && (memPressure || staleQueue)) ||
        (memPressure && pathPressure))
        lvl = BrownoutLevel::RejectNew;
    return lvl;
}

bool
BrownoutController::calm(const BrownoutSignals &s) const
{
    // The queue must be under its low-water marks; a pressured offload
    // path additionally holds the circuit breaker open (keep diverting
    // swaps while the donor reclaims or the link is degraded). The
    // free-pool fraction does not gate recovery: it legitimately stays
    // low for the lifetime of a busy engine.
    if (s.queueDepth > cfg.queueLow ||
        s.queueDelaySec > cfg.delayLowSec)
        return false;
    if (current >= BrownoutLevel::ForceDramOffload &&
        (s.reclaimPressure || s.linkHealth <= cfg.linkHealthLow))
        return false;
    return true;
}

void
BrownoutController::transitionTo(BrownoutLevel next,
                                 const BrownoutSignals &s,
                                 const char *reason)
{
    auto idx = static_cast<std::size_t>(current);
    counters.ticksAtLevel[idx] += s.now - enteredAt;
    ++counters.transitions;
    if (next > current)
        ++counters.escalations;
    if (tracer) {
        json::Object o;
        o["from"] = std::string(brownoutLevelName(current));
        o["to"] = std::string(brownoutLevelName(next));
        o["reason"] = std::string(reason);
        o["queue_depth"] = static_cast<std::int64_t>(s.queueDepth);
        o["queue_delay_sec"] = s.queueDelaySec;
        o["free_pool_fraction"] = s.freePoolFraction;
        o["reclaim_pressure"] = s.reclaimPressure;
        o["link_health"] = s.linkHealth;
        tracer->emit(s.now, "brownout_level", json::Value(std::move(o)));
    }
    current = next;
    enteredAt = s.now;
}

BrownoutLevel
BrownoutController::update(const BrownoutSignals &s)
{
    if (!cfg.enabled)
        return current;

    BrownoutLevel target = targetLevel(s);
    bool dwelled = s.now - enteredAt >= cfg.minDwell;

    if (target > current) {
        // Escalate immediately — reacting late to overload is how
        // queues (and deadline misses) compound.
        transitionTo(target, s, "escalate");
    } else if (current > BrownoutLevel::Normal && dwelled &&
               target < current && calm(s)) {
        // Step down one rung at a time, and only once every signal is
        // below its low-water mark for a full dwell: the gap between
        // the high and low marks is the hysteresis band.
        auto next = static_cast<BrownoutLevel>(
            static_cast<std::uint8_t>(current) - 1);
        transitionTo(next, s, "recover");
    }
    return current;
}

double
BrownoutController::sliceFactor() const
{
    return std::pow(cfg.sliceScale,
                    static_cast<double>(
                        static_cast<std::uint8_t>(current)));
}

aqua::sim::Tick
BrownoutController::timeAtLevel(BrownoutLevel level,
                                aqua::sim::Tick now) const
{
    auto idx = static_cast<std::size_t>(level);
    aqua::sim::Tick t = counters.ticksAtLevel[idx];
    if (level == current && now > enteredAt)
        t += now - enteredAt;
    return t;
}

} // namespace aqua::overload
