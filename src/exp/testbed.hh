/**
 * @file
 * Reusable experiment testbeds mirroring the paper's hardware (§6):
 * a 2-GPU A100 server with direct NVLinks and an 8-GPU A100 server
 * with NVSwitch connectivity, both with 1 TB of host DRAM, plus the
 * per-server AQUA control plane (coordinator + REST service) and
 * factories for AquaLib instances and offload backends.
 */

#ifndef AQUA_EXP_TESTBED_HH
#define AQUA_EXP_TESTBED_HH

#include <memory>
#include <vector>

#include "aqua/aqua_lib.hh"
#include "aqua/coordinator.hh"
#include "aqua/informer.hh"
#include "aqua/rest.hh"
#include "cluster/prefix_registry.hh"
#include "federation/directory.hh"
#include "hw/fabric.hh"
#include "hw/server.hh"
#include "recovery/recovery_manager.hh"
#include "recovery/state_journal.hh"
#include "serve/offload_backend.hh"
#include "sim/simulation.hh"
#include "tier/ssd_backend.hh"
#include "workload/request.hh"

namespace aqua::exp {

class MultiServerCluster;

/**
 * One simulated server with its AQUA control plane.
 */
class Testbed
{
  public:
    /**
     * @param numGpus GPU count (2 or 8 in the paper).
     * @param kind DirectP2P for the 2-GPU server, NvSwitch for 8.
     * @param seed Simulation seed.
     */
    Testbed(std::size_t numGpus, hw::TopologyKind kind,
            std::uint64_t seed = 1);

    /**
     * Join an externally owned simulation instead of creating one:
     * multiple servers on one clock, as MultiServerCluster builds.
     */
    Testbed(aqua::sim::Simulation &sharedSim, std::size_t numGpus,
            hw::TopologyKind kind);

    /**
     * Build a cluster of @p nServers identical servers on one shared
     * simulation, connected by an inter-server hw::Fabric. Call
     * makeFederation() on the result to stand up the prefix
     * federation control plane.
     */
    static std::unique_ptr<MultiServerCluster>
    makeMultiServerCluster(std::size_t nServers,
                           std::size_t gpusPerServer,
                           std::uint64_t seed = 1,
                           hw::FabricConfig fabricConfig = {});

    aqua::sim::Simulation &sim() { return *simRef; }
    hw::Server &server() { return *srv; }
    core::Coordinator &coordinator() { return coord; }
    core::CoordinatorRestService &rest() { return *restService; }

    /**
     * Create (and own) an AquaLib instance for a GPU.
     *
     * @param gpu The GPU.
     * @param informer Producer policy; nullptr for consumers.
     * @param config Library tunables.
     */
    core::AquaLib &
    makeAquaLib(hw::GpuId gpu,
                std::unique_ptr<core::Informer> informer = nullptr,
                core::AquaLibConfig config = {});

    /** Create (and own) a DRAM offload backend for a GPU. */
    serve::DramBackend &
    makeDramBackend(hw::GpuId gpu,
                    serve::DramBackendConfig config = {});

    /** Create (and own) an AQUA offload backend over a library. */
    serve::AquaBackend &makeAquaBackend(core::AquaLib &lib);

    /** Create (and own) an SSD offload backend for a GPU. */
    tier::SsdBackend &
    makeSsdBackend(hw::GpuId gpu, tier::SsdBackendConfig config = {});

    /** Statically pair a consumer GPU with a producer GPU. */
    void assign(hw::GpuId consumer, hw::GpuId producer);

    /**
     * Create (and own) the domain's cluster prefix registry, bind its
     * five prefix routes on the coordinator REST router and wire
     * its liveness oracle to the server topology. Idempotent: repeat
     * calls return the same instance.
     */
    cluster::PrefixRegistry &makePrefixRegistry();

    /**
     * Create (and own) the crash-recovery stack: one StateJournal for
     * the coordinator (and one for the prefix registry when
     * makePrefixRegistry() was called first) plus the RecoveryManager
     * that replays them after a coordinator_crash fault. Every
     * AquaLib created so far — and any created later this call is
     * repeated after — is registered as a resync survivor on the
     * first call. Idempotent: repeat calls return the same instance
     * (and register any libs created since).
     */
    recovery::RecoveryManager &makeRecovery();

    /** The coordinator's journal once makeRecovery() ran; else null.
     *  Benches compact it to model a flushed steady-state checkpoint. */
    recovery::StateJournal *coordinatorJournal()
    {
        return coordJournal.get();
    }

    /** The prefix registry's journal once makeRecovery() attached it
     *  (makePrefixRegistry() first); else null. */
    recovery::StateJournal *prefixRegistryJournal()
    {
        return registryJournal.get();
    }

  private:
    /** Owned when the single-server ctor ran; null on a shared sim. */
    std::unique_ptr<aqua::sim::Simulation> simulation;
    /** The clock in use, owned or shared. */
    aqua::sim::Simulation *simRef = nullptr;
    std::unique_ptr<hw::Server> srv;
    core::Coordinator coord;
    std::unique_ptr<core::CoordinatorRestService> restService;
    std::unique_ptr<cluster::PrefixRegistry> registry;
    std::vector<std::unique_ptr<core::AquaLib>> libs;
    std::vector<std::unique_ptr<serve::OffloadBackend>> backends;
    std::unique_ptr<recovery::StateJournal> coordJournal;
    std::unique_ptr<recovery::StateJournal> registryJournal;
    std::unique_ptr<recovery::RecoveryManager> recoveryMgr;
    /** Libs already registered as resync survivors. */
    std::size_t survivorsRegistered = 0;
};

/**
 * A cluster of Testbed servers on one shared simulation clock,
 * connected by an inter-server hw::Fabric. makeFederation() stands up
 * the cross-server prefix federation control plane: one directory per
 * server observing that server's prefix registry, gossip peering
 * between every pair, and the /federation routes bound on every
 * coordinator router so peer faults (outage, coordinator_crash)
 * apply to federation traffic too.
 */
class MultiServerCluster
{
  public:
    MultiServerCluster(std::size_t nServers, std::size_t gpusPerServer,
                       std::uint64_t seed = 1,
                       hw::FabricConfig fabricConfig = {});

    MultiServerCluster(const MultiServerCluster &) = delete;
    MultiServerCluster &operator=(const MultiServerCluster &) = delete;

    aqua::sim::Simulation &sim() { return *simulation; }
    std::size_t size() const { return servers.size(); }
    Testbed &server(std::size_t i) { return *servers.at(i); }
    hw::Fabric &fabric() { return *wire; }

    /**
     * Stand up per-server prefix registries (makePrefixRegistry) and
     * federation directories, peer every pair both ways and bind the
     * /federation routes on each coordinator router. @p base supplies
     * shared tunables; serverId is overwritten per server. Idempotent.
     */
    void makeFederation(federation::DirectoryConfig base = {});

    /** Server @p i's directory; panics before makeFederation(). */
    federation::FederationDirectory &directory(std::size_t i);

    /** Arm every directory's periodic anti-entropy until @p until. */
    void startAntiEntropy(aqua::sim::Tick until);

  private:
    std::unique_ptr<aqua::sim::Simulation> simulation;
    std::vector<std::unique_ptr<Testbed>> servers;
    std::unique_ptr<hw::Fabric> wire;
    std::vector<std::unique_ptr<federation::FederationDirectory>>
        directories;
};

/**
 * Schedule a trace of requests into any engine exposing submit().
 */
template <typename Engine>
void
driveTrace(aqua::sim::Simulation &sim, Engine &engine,
           const std::vector<workload::Request> &trace)
{
    for (const workload::Request &r : trace) {
        sim.queue().schedule(r.arrival, [&engine, r] {
            engine.submit(r);
        });
    }
}

} // namespace aqua::exp

#endif // AQUA_EXP_TESTBED_HH
