/**
 * @file
 * JSON-driven experiment configuration: parse an experiment spec,
 * dispatch to the matching runner, and return results as JSON.
 *
 * This is the programmatic surface behind the `aqua_sim` CLI tool:
 *
 *   { "experiment": "cfs", "mode": "aqua", "rate_per_sec": 5,
 *     "num_requests": 100, "consumer": "Codellama-34B",
 *     "producer": "Kandinsky", "seed": 1 }
 *
 * Supported experiments: "cfs", "long_prompt", "lora", "elastic",
 * "chatbot", "contention", "placement".
 */

#ifndef AQUA_EXP_CONFIG_HH
#define AQUA_EXP_CONFIG_HH

#include <string>

#include "json/json.hh"

namespace aqua::exp {

/** Outcome of running a JSON-described experiment. */
struct ConfigRunResult
{
    bool ok = false;
    /** Error description when !ok. */
    std::string error;
    /** Results payload when ok. */
    json::Value results;
};

/**
 * Run the experiment described by @p spec.
 *
 * Unknown experiment names and malformed fields yield ok=false with
 * a diagnostic instead of panicking, so the CLI can report cleanly.
 */
ConfigRunResult runFromJson(const json::Value &spec);

/** Convenience: parse then run; parse errors land in .error. */
ConfigRunResult runFromJsonText(const std::string &text);

} // namespace aqua::exp

#endif // AQUA_EXP_CONFIG_HH
