#include "exp/config.hh"

#include <algorithm>

#include "exp/experiments.hh"
#include "hw/gpu_spec.hh"
#include "model/model_spec.hh"
#include "placer/placer.hh"
#include "stats/summary.hh"

namespace aqua::exp {

using json::Array;
using json::Value;

namespace {

/** Parse a ServeMode name; empty optional on garbage. */
std::optional<ServeMode>
parseServeMode(const std::string &name)
{
    if (name == "vllm")
        return ServeMode::VllmBaseline;
    if (name == "vllm+cfs" || name == "cfs")
        return ServeMode::CfsDram;
    if (name == "aqua")
        return ServeMode::CfsAqua;
    return std::nullopt;
}

std::optional<OffloadMode>
parseOffloadMode(const std::string &name)
{
    if (name == "dram")
        return OffloadMode::Dram;
    if (name == "aqua")
        return OffloadMode::Aqua;
    if (name == "aqua-unstaged")
        return OffloadMode::AquaUnstaged;
    return std::nullopt;
}

bool
knownModel(const std::string &name)
{
    const auto &names = model::presetNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

Value
metricsToJson(const std::vector<workload::RequestMetrics> &metrics)
{
    stats::Summary ttft;
    stats::Summary rct;
    Array perRequest;
    for (const workload::RequestMetrics &m : metrics) {
        Value row;
        row["id"] = m.id;
        if (m.started()) {
            row["ttft_s"] = m.ttftSec();
            ttft.add(m.ttftSec());
        }
        if (m.finished()) {
            row["rct_s"] = m.rctSec();
            rct.add(m.rctSec());
        }
        row["tokens"] = m.tokensGenerated;
        perRequest.push_back(std::move(row));
    }
    Value out;
    out["finished"] = static_cast<std::int64_t>(metrics.size());
    if (!ttft.empty()) {
        out["ttft_p50_s"] = ttft.median();
        out["ttft_p95_s"] = ttft.p95();
    }
    if (!rct.empty()) {
        out["rct_p50_s"] = rct.median();
        out["rct_p95_s"] = rct.p95();
    }
    out["requests"] = Value(std::move(perRequest));
    return out;
}

ConfigRunResult
fail(const std::string &why)
{
    ConfigRunResult r;
    r.ok = false;
    r.error = why;
    return r;
}

ConfigRunResult
succeed(Value results)
{
    ConfigRunResult r;
    r.ok = true;
    r.results = std::move(results);
    return r;
}

ConfigRunResult
runCfs(const Value &spec)
{
    CfsExperimentConfig cfg;
    auto mode = parseServeMode(spec.getString("mode", "aqua"));
    if (!mode)
        return fail("cfs: unknown mode (vllm|vllm+cfs|aqua)");
    cfg.mode = *mode;
    cfg.ratePerSec = spec.getDouble("rate_per_sec", cfg.ratePerSec);
    cfg.numRequests = static_cast<std::size_t>(
        spec.getInt("num_requests",
                    static_cast<std::int64_t>(cfg.numRequests)));
    cfg.consumerModel =
        spec.getString("consumer", cfg.consumerModel);
    cfg.producerModel =
        spec.getString("producer", cfg.producerModel);
    cfg.seed = static_cast<std::uint64_t>(spec.getInt("seed", 1));
    cfg.sliceTokens = static_cast<std::uint32_t>(
        spec.getInt("slice_tokens", cfg.sliceTokens));
    if (!knownModel(cfg.consumerModel) ||
        !knownModel(cfg.producerModel))
        return fail("cfs: unknown model preset");

    CfsExperimentResult r = runCfsExperiment(cfg);
    Value out = metricsToJson(r.metrics);
    out["swap_outs"] = r.consumerSwapOuts;
    out["producer_throughput"] = r.producerThroughput;
    return succeed(std::move(out));
}

ConfigRunResult
runLongPromptSpec(const Value &spec)
{
    LongPromptConfig cfg;
    auto mode = parseOffloadMode(spec.getString("mode", "aqua"));
    if (!mode)
        return fail("long_prompt: unknown mode "
                    "(dram|aqua|aqua-unstaged)");
    cfg.mode = *mode;
    cfg.producerModel =
        spec.getString("producer", cfg.producerModel);
    cfg.promptTokens = static_cast<std::uint32_t>(
        spec.getInt("prompt_tokens", cfg.promptTokens));
    cfg.durationSec =
        spec.getDouble("duration_s", cfg.durationSec);
    cfg.pairs = static_cast<std::size_t>(spec.getInt("pairs", 1));
    cfg.sharedProducer = spec.getBool("shared_producer", false);
    cfg.seed = static_cast<std::uint64_t>(spec.getInt("seed", 1));
    if (!knownModel(cfg.producerModel))
        return fail("long_prompt: unknown producer preset");
    if (cfg.pairs < 1 || cfg.pairs > 8)
        return fail("long_prompt: pairs must be in [1, 8]");

    LongPromptResult r = runLongPrompt(cfg);
    Value out;
    Array per;
    for (std::uint64_t t : r.tokensPerConsumer)
        per.emplace_back(static_cast<std::int64_t>(t));
    out["tokens_per_consumer"] = Value(std::move(per));
    out["total_tokens"] = r.totalTokens;
    return succeed(std::move(out));
}

ConfigRunResult
runLoraSpec(const Value &spec)
{
    LoraExperimentConfig cfg;
    auto mode = parseOffloadMode(spec.getString("mode", "aqua"));
    if (!mode)
        return fail("lora: unknown mode (dram|aqua|aqua-unstaged)");
    cfg.mode = *mode;
    cfg.producerModel =
        spec.getString("producer", cfg.producerModel);
    cfg.numAdapters = static_cast<std::uint32_t>(
        spec.getInt("num_adapters", cfg.numAdapters));
    cfg.adapterBytes = static_cast<std::uint64_t>(
        spec.getInt("adapter_bytes",
                    static_cast<std::int64_t>(cfg.adapterBytes)));
    cfg.cacheBytes = static_cast<std::uint64_t>(
        spec.getInt("cache_bytes",
                    static_cast<std::int64_t>(cfg.cacheBytes)));
    cfg.ratePerSec = spec.getDouble("rate_per_sec", cfg.ratePerSec);
    cfg.numRequests = static_cast<std::size_t>(
        spec.getInt("num_requests",
                    static_cast<std::int64_t>(cfg.numRequests)));
    cfg.seed = static_cast<std::uint64_t>(spec.getInt("seed", 1));
    if (!knownModel(cfg.producerModel))
        return fail("lora: unknown producer preset");
    if (cfg.numAdapters == 0)
        return fail("lora: num_adapters must be positive");

    LoraExperimentResult r = runLoraExperiment(cfg);
    Value out = metricsToJson(r.metrics);
    out["cache_hits"] = r.cacheHits;
    out["cache_misses"] = r.cacheMisses;
    return succeed(std::move(out));
}

ConfigRunResult
runElasticSpec(const Value &spec)
{
    ElasticExperimentConfig cfg;
    cfg.withAqua = spec.getBool("with_aqua", true);
    cfg.durationSec = spec.getDouble("duration_s", cfg.durationSec);
    cfg.seed = static_cast<std::uint64_t>(spec.getInt("seed", 1));
    ElasticExperimentResult r = runElasticExperiment(cfg);

    Value out;
    Array freeMem;
    for (const stats::Point &p : r.producerFreeMemory) {
        Value row;
        row["t_s"] = sim::ticksToSec(p.when);
        row["bytes"] = p.value;
        freeMem.push_back(std::move(row));
    }
    out["producer_free_memory"] = Value(std::move(freeMem));
    Array tput;
    for (const stats::Point &p : r.consumerThroughput) {
        Value row;
        row["t_s"] = sim::ticksToSec(p.when);
        row["tokens"] = p.value;
        tput.push_back(std::move(row));
    }
    out["consumer_throughput"] = Value(std::move(tput));
    out["consumer_tokens"] = r.consumerTokens;
    out["producer"] = metricsToJson(r.producerMetrics);
    return succeed(std::move(out));
}

ConfigRunResult
runChatbotSpec(const Value &spec)
{
    ChatbotConfig cfg;
    auto mode = parseServeMode(spec.getString("mode", "aqua"));
    if (!mode)
        return fail("chatbot: unknown mode (vllm|vllm+cfs|aqua)");
    cfg.mode = *mode;
    cfg.users = static_cast<std::uint32_t>(
        spec.getInt("users", cfg.users));
    cfg.turns = static_cast<std::uint32_t>(
        spec.getInt("turns", cfg.turns));
    cfg.seed = static_cast<std::uint64_t>(spec.getInt("seed", 1));
    if (cfg.users == 0 || cfg.turns == 0)
        return fail("chatbot: users and turns must be positive");

    ChatbotResult r = runChatbot(cfg);
    Value out;
    Array rows;
    for (const auto &tm : r.metrics) {
        Value row;
        row["turn"] = tm.turn;
        row["id"] = tm.metrics.id;
        if (tm.metrics.finished())
            row["rct_s"] = tm.metrics.rctSec();
        rows.push_back(std::move(row));
    }
    out["requests"] = Value(std::move(rows));
    out["finished"] = static_cast<std::int64_t>(r.metrics.size());
    return succeed(std::move(out));
}

ConfigRunResult
runContentionSpec(const Value &spec)
{
    std::string modelName = spec.getString("model", "Llama-2-13B");
    if (!knownModel(modelName))
        return fail("contention: unknown model preset");
    std::vector<std::uint32_t> batches;
    if (const Value *arr = spec.find("batch_sizes");
        arr && arr->isArray()) {
        for (const Value &v : arr->asArray()) {
            if (!v.isNumber() || v.asInt() <= 0)
                return fail("contention: batch sizes must be "
                            "positive integers");
            batches.push_back(
                static_cast<std::uint32_t>(v.asInt()));
        }
    } else {
        batches = {1, 2, 4, 8, 16, 32, 64};
    }
    Value out;
    Array rows;
    for (const ContentionPoint &p :
         contentionSweep(modelName, batches)) {
        Value row;
        row["batch"] = p.batchSize;
        row["throughput"] = p.throughput;
        row["free_memory_gb"] = p.freeMemoryGb;
        rows.push_back(std::move(row));
    }
    out["points"] = Value(std::move(rows));
    return succeed(std::move(out));
}

ConfigRunResult
runPlacementSpec(const Value &spec)
{
    placer::PlacementInput input;
    input.numServers = static_cast<std::size_t>(
        spec.getInt("servers", 0));
    input.gpusPerServer = static_cast<std::size_t>(
        spec.getInt("gpus_per_server", 0));
    input.gpuMemBytes = hw::a100_80g().hbmBytes;
    std::string split = spec.getString("split", "");
    if (!split.empty()) {
        if (split != "balanced" && split != "llm-heavy")
            return fail("placement: split must be balanced or "
                        "llm-heavy");
        if (input.numServers == 0 || input.gpusPerServer == 0)
            return fail("placement: servers and gpus_per_server "
                        "required");
        input = makeClusterInput(
            input.numServers, input.gpusPerServer, split,
            static_cast<std::uint64_t>(spec.getInt("seed", 1)));
    } else if (const Value *models = spec.find("models");
               models && models->isArray()) {
        if (input.numServers == 0 || input.gpusPerServer == 0)
            return fail("placement: servers and gpus_per_server "
                        "required");
        for (const Value &m : models->asArray()) {
            placer::ModelToPlace entry;
            entry.name = m.getString("name", "?");
            entry.memBytes = m.getInt("mem_bytes", 0);
            input.models.push_back(entry);
        }
    } else {
        return fail("placement: need a split or a models array");
    }

    opt::MilpOptions milpOpt;
    milpOpt.maxSeconds = spec.getDouble("max_solve_s", 5.0);
    placer::Placement p = placer::AquaPlacer(milpOpt).place(input);
    if (!p.valid())
        return fail("placement: infeasible instance "
                    "(more models than GPUs?)");
    Value out;
    Array assignment;
    for (std::size_t m = 0; m < input.models.size(); ++m) {
        Value row;
        row["model"] = input.models[m].name;
        row["mem_bytes"] = input.models[m].memBytes;
        row["server"] = p.server[m];
        assignment.push_back(std::move(row));
    }
    out["assignment"] = Value(std::move(assignment));
    Array pairs;
    for (const placer::Pairing &pair : p.pairs) {
        Value row;
        row["server"] = pair.server;
        row["consumer"] = input.models[pair.consumerModel].name;
        row["producer"] = input.models[pair.producerModel].name;
        pairs.push_back(std::move(row));
    }
    out["pairs"] = Value(std::move(pairs));
    out["objective"] = p.objective;
    out["optimal"] = p.optimal;
    out["solve_s"] = p.solveSeconds;
    out["nodes"] = p.nodesExplored;
    return succeed(std::move(out));
}

} // anonymous namespace

namespace {

ConfigRunResult
runEndToEndSpec(const Value &spec)
{
    EndToEndConfig cfg;
    cfg.split = spec.getString("split", cfg.split);
    if (cfg.split != "balanced" && cfg.split != "llm-heavy")
        return fail("e2e: split must be balanced or llm-heavy");
    cfg.withAqua = spec.getBool("with_aqua", true);
    cfg.numServers = static_cast<std::size_t>(
        spec.getInt("servers",
                    static_cast<std::int64_t>(cfg.numServers)));
    cfg.durationSec = spec.getDouble("duration_s", cfg.durationSec);
    cfg.seed = static_cast<std::uint64_t>(spec.getInt("seed", 1));
    if (cfg.numServers == 0)
        return fail("e2e: servers must be positive");

    EndToEndResult r = runEndToEnd(cfg);
    Value out;
    out["long_prompt_tokens"] = r.longPromptTokens;
    out["long_prompt_consumers"] =
        static_cast<std::int64_t>(r.longPromptConsumers);
    out["paired_consumers"] =
        static_cast<std::int64_t>(r.pairedConsumers);
    out["total_consumers"] =
        static_cast<std::int64_t>(r.totalConsumers);
    out["producer_items"] = r.producerItems;
    out["lora"] = metricsToJson(r.loraMetrics);
    out["cfs"] = metricsToJson(r.cfsMetrics);
    return succeed(std::move(out));
}

} // anonymous namespace

ConfigRunResult
runFromJson(const Value &spec)
{
    if (!spec.isObject())
        return fail("spec must be a JSON object");
    std::string experiment = spec.getString("experiment", "");
    if (experiment == "cfs")
        return runCfs(spec);
    if (experiment == "e2e")
        return runEndToEndSpec(spec);
    if (experiment == "long_prompt")
        return runLongPromptSpec(spec);
    if (experiment == "lora")
        return runLoraSpec(spec);
    if (experiment == "elastic")
        return runElasticSpec(spec);
    if (experiment == "chatbot")
        return runChatbotSpec(spec);
    if (experiment == "contention")
        return runContentionSpec(spec);
    if (experiment == "placement")
        return runPlacementSpec(spec);
    return fail("unknown experiment '" + experiment +
                "' (cfs|long_prompt|lora|elastic|chatbot|"
                "contention|placement|e2e)");
}

ConfigRunResult
runFromJsonText(const std::string &text)
{
    json::ParseResult parsed = json::parse(text);
    if (!parsed.ok)
        return fail("json parse error at " +
                    std::to_string(parsed.line) + ":" +
                    std::to_string(parsed.column) + ": " +
                    parsed.error);
    return runFromJson(parsed.value);
}

} // namespace aqua::exp
