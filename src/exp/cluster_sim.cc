#include "exp/cluster_sim.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "exp/experiments.hh"
#include "sim/logging.hh"

namespace aqua::exp {

using aqua::sim::Tick;
using aqua::sim::usToTicks;

namespace {

/** Digest event codes (stable ABI of the equivalence check). */
enum : std::uint32_t
{
    evArrival = 1,
    evForward = 2,
    evServe = 3,
    evComplete = 4,
    evPrefixHit = 5,
    evPrefixMiss = 6,
    evViewApply = 7,
    evChurn = 8,
    evRemoteLookup = 9,
};

constexpr std::uint64_t fnvPrime = 1099511628211ULL;

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * fnvPrime;
}

/** Structural prefix identity: key/verify derived from the pool id. */
std::uint64_t
prefixKey(std::size_t id)
{
    return static_cast<std::uint64_t>(id) * 2654435761ULL + 1;
}

std::uint64_t
prefixVerify(std::size_t id)
{
    return static_cast<std::uint64_t>(id) * 31ULL + 7;
}

} // anonymous namespace

/** Versioned model -> domain assignment, broadcast by domain 0. */
struct ClusterSim::View
{
    std::uint64_t version = 0;
    /** domain[m], -1 when model m has departed. */
    std::vector<int> domain;
};

/** One in-flight request. */
struct ClusterSim::ClusterRequest
{
    std::uint64_t id = 0;
    std::uint32_t origin = 0;
    int model = -1;
    std::uint32_t promptTokens = 0;
    std::uint32_t decodeTokens = 0;
    /** Hot-prefix pool id, -1 for prefix-less requests. */
    int prefix = -1;
    std::uint32_t hops = 0;
    Tick arrival = 0;
};

/** One NVLink domain's private world. */
struct ClusterSim::Domain
{
    ClusterDomainStats stats;
    trace::TraceLog traceLog;
    /** Stream 0: arrival process. */
    sim::Random arrivalRng;
    /** Stream 1: service jitter. */
    sim::Random serviceRng;
    /** Stream 2: request shape (model, tokens, prefix). */
    sim::Random shapeRng;
    /** Next-free tick per local GPU. */
    std::vector<Tick> gpuFree;
    /** Latest applied placement view. */
    View view;
    /** Registry of hot prefixes homed in this domain. */
    cluster::PrefixRegistry registry;
    /** Arrivals still to generate here. */
    std::uint64_t arrivalsLeft = 0;
    std::uint64_t nextReq = 0;

    Domain(const sim::DomainNet &net, std::size_t d, std::size_t gpus)
        : arrivalRng(net.domainRandom(d, 0)),
          serviceRng(net.domainRandom(d, 1)),
          shapeRng(net.domainRandom(d, 2)),
          gpuFree(gpus, 0)
    {}
};

ClusterSim::ClusterSim(const ClusterSimConfig &config,
                       sim::DomainNet &net)
    : cfg(config), net(net),
      interLink("inter-server", config.interBandwidth, 3ull << 20,
                usToTicks(config.interLatencyUs))
{
    if (cfg.numDomains == 0 || cfg.numDomains != net.numDomains())
        sim::panic("ClusterSim: config/net domain mismatch (%zu vs "
                   "%zu)", cfg.numDomains, net.numDomains());
    for (std::size_t d = 0; d < cfg.numDomains; ++d)
        domains.push_back(std::make_unique<Domain>(net, d,
                                                   cfg.gpusPerDomain));
}

ClusterSim::~ClusterSim() = default;

const ClusterDomainStats &
ClusterSim::stats(std::size_t domain) const
{
    return domains.at(domain)->stats;
}

std::string
ClusterSim::traceJsonl(std::size_t domain) const
{
    return domains.at(domain)->traceLog.toJsonl();
}

std::vector<std::uint64_t>
ClusterSim::digests() const
{
    std::vector<std::uint64_t> out;
    out.reserve(domains.size());
    for (const auto &d : domains)
        out.push_back(d->stats.digest);
    return out;
}

void
ClusterSim::digestEvent(std::size_t d, Tick t, std::uint32_t code,
                        std::uint64_t a, std::uint64_t b)
{
    auto &h = domains[d]->stats.digest;
    h = fnvMix(h, t);
    h = fnvMix(h, code);
    h = fnvMix(h, a);
    h = fnvMix(h, b);
}

void
ClusterSim::trace(std::size_t d, Tick t, const char *category,
                  json::Object fields)
{
    if (cfg.captureTrace)
        domains[d]->traceLog.emit(t, category, std::move(fields));
}

void
ClusterSim::setup()
{
    // Initial placement: modelsPerDomain models per server sampled
    // from the balanced split, placed by one full MILP solve. Server
    // index s is served by domain s; the spare GPU slots absorb churn
    // arrivals.
    placer::PlacementInput in = makeClusterInput(
        cfg.numDomains, cfg.modelsPerDomain, "balanced", cfg.seed);
    in.gpusPerServer = cfg.gpusPerDomain;
    placer::RepairConfig rc;
    rc.solveMaxNodes = cfg.placerNodeBudget;
    placerState = std::make_unique<placer::IncrementalPlacer>(
        std::move(in), rc);

    ++viewVersion;
    View initial;
    initial.version = viewVersion;
    initial.domain = placerState->assignment();
    for (auto &d : domains)
        d->view = initial;

    // Per-domain arrival quota (remainder to the low domains).
    std::uint64_t per = cfg.numRequests / cfg.numDomains;
    std::uint64_t rem = cfg.numRequests % cfg.numDomains;
    for (std::size_t d = 0; d < cfg.numDomains; ++d) {
        domains[d]->arrivalsLeft = per + (d < rem ? 1 : 0);
        scheduleNextArrival(d);
    }

    // Churn runs on domain 0 (the coordinator's domain).
    for (std::size_t k = 0; k < cfg.placementEvents; ++k) {
        Tick when = static_cast<Tick>(
            aqua::sim::secToTicks((k + 1) * cfg.churnIntervalSec));
        net.queueOf(0).schedule(when, [this, k] { runChurn(k); });
    }
}

void
ClusterSim::scheduleNextArrival(std::size_t d)
{
    Domain &dom = *domains[d];
    if (dom.arrivalsLeft == 0)
        return;
    --dom.arrivalsLeft;
    aqua::sim::EventQueue &q = net.queueOf(d);
    double gap = dom.arrivalRng.exponential(cfg.arrivalRatePerDomain);
    Tick when = q.now() + std::max<Tick>(
        1, static_cast<Tick>(aqua::sim::secToTicks(gap)));

    ClusterRequest req;
    req.id = (static_cast<std::uint64_t>(d) << 40) | dom.nextReq++;
    req.origin = static_cast<std::uint32_t>(d);
    q.schedule(when, [this, d, req]() mutable { onArrival(d, req); });
}

void
ClusterSim::onArrival(std::size_t d, ClusterRequest req)
{
    Domain &dom = *domains[d];
    Tick now = net.queueOf(d).now();
    req.arrival = now;
    req.promptTokens = static_cast<std::uint32_t>(
        dom.shapeRng.uniformInt(64, 2048));
    req.decodeTokens = static_cast<std::uint32_t>(
        dom.shapeRng.uniformInt(32, 512));
    if (dom.shapeRng.bernoulli(cfg.prefixProb))
        req.prefix = static_cast<int>(dom.shapeRng.uniformInt(
            0, static_cast<std::int64_t>(cfg.prefixPool) - 1));

    // Pick a model uniformly among those the local view thinks are
    // live (the view may lag churn; routing tolerates that).
    std::vector<int> live;
    for (std::size_t m = 0; m < dom.view.domain.size(); ++m)
        if (dom.view.domain[m] >= 0)
            live.push_back(static_cast<int>(m));
    if (!live.empty())
        req.model = live[static_cast<std::size_t>(dom.shapeRng.uniformInt(
            0, static_cast<std::int64_t>(live.size()) - 1))];

    ++dom.stats.arrivals;
    digestEvent(d, now, evArrival, req.id,
                static_cast<std::uint64_t>(req.model + 1));
    trace(d, now, "arrival", [&] {
        json::Object o;
        o["req"] = req.id;
        o["model"] = req.model;
        o["prompt"] = req.promptTokens;
        o["decode"] = req.decodeTokens;
        o["prefix"] = req.prefix;
        return o;
    }());

    scheduleNextArrival(d);
    routeOrServe(d, req);
}

void
ClusterSim::routeOrServe(std::size_t d, ClusterRequest req)
{
    Domain &dom = *domains[d];
    Tick now = net.queueOf(d).now();
    int host = -1;
    if (req.model >= 0 &&
        static_cast<std::size_t>(req.model) < dom.view.domain.size())
        host = dom.view.domain[req.model];

    // Serve here when the model is local, the view lost it, or the
    // request already bounced twice between stale views.
    if (host < 0 || static_cast<std::size_t>(host) == d ||
        req.hops >= 2) {
        bool viaForward = req.hops > 0;
        if (req.hops >= 2 && host >= 0 &&
            static_cast<std::size_t>(host) != d)
            ++dom.stats.reforwards;
        if (viaForward)
            ++dom.stats.servedForwarded;
        else
            ++dom.stats.servedLocal;

        if (req.prefix >= 0) {
            std::size_t home =
                static_cast<std::size_t>(req.prefix) % cfg.numDomains;
            if (home != d) {
                // Remote-homed prefix: ask the home domain's registry
                // and begin service when the answer comes back.
                ++dom.stats.forwardsOut;
                digestEvent(d, now, evRemoteLookup, req.id, home);
                net.send(d, home, now + net.lookahead(),
                         [this, home, d, req] {
                             handleRemoteLookup(home, d, req);
                         });
                return;
            }
            // Locally-homed prefix.
            bool hit = handleLocalPrefix(d, req);
            beginService(d, req, 0, hit, viaForward);
            return;
        }
        beginService(d, req, 0, false, viaForward);
        return;
    }

    // Forward to the hosting domain.
    ++dom.stats.forwardsOut;
    ++req.hops;
    digestEvent(d, now, evForward, req.id,
                static_cast<std::uint64_t>(host));
    trace(d, now, "forward", [&] {
        json::Object o;
        o["req"] = req.id;
        o["to"] = host;
        return o;
    }());
    auto dst = static_cast<std::size_t>(host);
    net.send(d, dst, now + net.lookahead(),
             [this, dst, req] { routeOrServe(dst, req); });
}

bool
ClusterSim::handleLocalPrefix(std::size_t d, const ClusterRequest &req)
{
    Domain &dom = *domains[d];
    aqua::sim::EventQueue &q = net.queueOf(d);
    Tick now = q.now();
    std::uint64_t key = prefixKey(static_cast<std::size_t>(req.prefix));
    std::uint64_t verify =
        prefixVerify(static_cast<std::size_t>(req.prefix));
    hw::GpuId gpu =
        static_cast<hw::GpuId>(d * cfg.gpusPerDomain);
    std::uint32_t blocks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, cfg.prefixBytes >> 20));

    cluster::CandidateKey cand{key, verify, blocks};
    cluster::LookupResult r = dom.registry.lookup(gpu, {cand}, now);
    if (r.found) {
        ++dom.stats.prefixHitsLocal;
        digestEvent(d, now, evPrefixHit, req.id,
                    static_cast<std::uint64_t>(req.prefix));
        return true;
    }
    dom.registry.publish(gpu, key, verify, blocks, cfg.prefixTokens,
                         cfg.prefixBytes, key ^ verify, now);
    ++dom.stats.prefixMisses;
    digestEvent(d, now, evPrefixMiss, req.id,
                static_cast<std::uint64_t>(req.prefix));
    return false;
}

void
ClusterSim::handleRemoteLookup(std::size_t home, std::size_t asker,
                               ClusterRequest req)
{
    Domain &dom = *domains[home];
    aqua::sim::EventQueue &q = net.queueOf(home);
    Tick now = q.now();
    std::uint64_t key = prefixKey(static_cast<std::size_t>(req.prefix));
    std::uint64_t verify =
        prefixVerify(static_cast<std::size_t>(req.prefix));
    hw::GpuId consumerGpu =
        static_cast<hw::GpuId>(asker * cfg.gpusPerDomain);
    std::uint32_t blocks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, cfg.prefixBytes >> 20));

    cluster::CandidateKey cand{key, verify, blocks};
    cluster::LookupResult r =
        dom.registry.lookup(consumerGpu, {cand}, now);
    bool hit = r.found;
    Tick streamTicks = 0;
    if (hit) {
        // Lease the chain for the duration of the NVLink-fabric read.
        cluster::PinResult pin =
            dom.registry.pin(consumerGpu, key, verify, now);
        streamTicks = interLink.transferTime(cfg.prefixBytes);
        if (pin.ok) {
            std::uint64_t pinId = pin.pin;
            q.schedule(now + streamTicks, [this, home, pinId] {
                domains[home]->registry.unpin(
                    pinId, net.queueOf(home).now());
            });
        }
    } else {
        hw::GpuId homeGpu =
            static_cast<hw::GpuId>(home * cfg.gpusPerDomain);
        dom.registry.publish(homeGpu, key, verify, blocks,
                             cfg.prefixTokens, cfg.prefixBytes,
                             key ^ verify, now);
    }
    digestEvent(home, now, hit ? evPrefixHit : evPrefixMiss, req.id,
                static_cast<std::uint64_t>(req.prefix));

    net.send(home, asker, now + net.lookahead(),
             [this, asker, req, hit, streamTicks] {
                 Domain &a = *domains[asker];
                 if (hit) {
                     ++a.stats.prefixHitsRemote;
                     a.stats.prefixBytesStreamed += cfg.prefixBytes;
                 } else {
                     ++a.stats.prefixMisses;
                 }
                 beginService(asker, req, streamTicks, hit,
                              req.hops > 0);
             });
}

void
ClusterSim::beginService(std::size_t d, ClusterRequest req,
                         Tick extraDelay, bool prefixHit,
                         bool viaForward)
{
    (void)viaForward;
    Domain &dom = *domains[d];
    aqua::sim::EventQueue &q = net.queueOf(d);
    Tick now = q.now();

    // Least-loaded local GPU, lowest index on ties.
    std::size_t gpu = 0;
    for (std::size_t g = 1; g < dom.gpuFree.size(); ++g)
        if (dom.gpuFree[g] < dom.gpuFree[gpu])
            gpu = g;
    Tick start = std::max(now + extraDelay, dom.gpuFree[gpu]);

    std::uint32_t prompt = req.promptTokens;
    if (prefixHit)
        prompt -= std::min(prompt, cfg.prefixTokens);
    double us = cfg.prefillUsPerToken * prompt +
                cfg.decodeUsPerToken * req.decodeTokens;
    us *= dom.serviceRng.uniform(0.9, 1.1);
    Tick service = std::max<Tick>(1, usToTicks(us));
    Tick finish = start + service;
    dom.gpuFree[gpu] = finish;

    digestEvent(d, now, evServe, req.id,
                (static_cast<std::uint64_t>(gpu) << 32) | prompt);
    trace(d, now, "serve", [&] {
        json::Object o;
        o["req"] = req.id;
        o["gpu"] = static_cast<std::int64_t>(gpu);
        o["start"] = start;
        o["finish"] = finish;
        o["prefix_hit"] = prefixHit;
        return o;
    }());

    if (req.origin == d) {
        q.schedule(finish, [this, d, req, finish] {
            completeAtOrigin(d, req, finish);
        });
    } else {
        // The origin learns of completion one fabric hop later.
        std::size_t origin = req.origin;
        q.schedule(finish, [this, d, origin, req, finish] {
            Tick t = net.queueOf(d).now();
            net.send(d, origin, t + net.lookahead(),
                     [this, origin, req, finish] {
                         completeAtOrigin(origin, req, finish);
                     });
        });
    }
}

void
ClusterSim::completeAtOrigin(std::size_t d, const ClusterRequest &req,
                             Tick finish)
{
    Domain &dom = *domains[d];
    Tick now = net.queueOf(d).now();
    ++dom.stats.completed;
    dom.stats.sumRctTicks += now - req.arrival;
    digestEvent(d, now, evComplete, req.id, finish);
    trace(d, now, "complete", [&] {
        json::Object o;
        o["req"] = req.id;
        o["rct_ns"] = now - req.arrival;
        return o;
    }());
}

void
ClusterSim::runChurn(std::size_t index)
{
    Tick now = net.queueOf(0).now();
    ++pstats.churnEvents;
    placer::RepairOutcome out;
    std::uint64_t what = index % 3;

    // Stream 3 of domain 0: churn decisions. Recreate lazily so the
    // draw count is part of coordinator state.
    if (!churnRng)
        churnRng = std::make_unique<sim::Random>(net.domainRandom(0, 3));

    if (what == 0) {
        // A new model joins: clone a random initial model.
        const auto &models = placerState->models();
        auto pick = static_cast<std::size_t>(churnRng->uniformInt(
            0, static_cast<std::int64_t>(models.size()) - 1));
        placer::ModelToPlace m = models[pick];
        m.name += "#churn" + std::to_string(index);
        out = placerState->onArrival(m);
    } else if (what == 1) {
        // A random live model departs.
        std::vector<std::size_t> live;
        for (std::size_t m = 0; m < placerState->models().size(); ++m)
            if (placerState->live(m))
                live.push_back(m);
        if (live.empty())
            return;
        auto pick = static_cast<std::size_t>(churnRng->uniformInt(
            0, static_cast<std::int64_t>(live.size()) - 1));
        out = placerState->onDeparture(live[pick]);
    } else {
        // A GPU fails on a random server.
        auto server = static_cast<int>(churnRng->uniformInt(
            0, static_cast<std::int64_t>(cfg.numDomains) - 1));
        out = placerState->onGpuFailure(server);
    }

    if (out.kind == placer::RepairOutcome::Kind::Infeasible)
        ++pstats.infeasible;
    digestEvent(0, now, evChurn, what,
                static_cast<std::uint64_t>(out.kind));
    trace(0, now, "churn", [&] {
        json::Object o;
        o["index"] = static_cast<std::int64_t>(index);
        o["what"] = static_cast<std::int64_t>(what);
        o["kind"] = static_cast<std::int64_t>(out.kind);
        o["objective"] = out.objective;
        return o;
    }());
    broadcastView();
}

void
ClusterSim::broadcastView()
{
    Tick now = net.queueOf(0).now();
    ++viewVersion;
    View view;
    view.version = viewVersion;
    view.domain = placerState->assignment();

    applyView(0, view);
    for (std::size_t d = 1; d < cfg.numDomains; ++d)
        net.send(0, d, now + net.lookahead(),
                 [this, d, view] { applyView(d, view); });
}

void
ClusterSim::applyView(std::size_t d, const View &view)
{
    Domain &dom = *domains[d];
    if (view.version <= dom.view.version)
        return;
    dom.view = view;
    ++dom.stats.viewUpdates;
    dom.stats.viewVersion = view.version;
    Tick now = net.queueOf(d).now();
    digestEvent(d, now, evViewApply, view.version,
                view.domain.size());
}

json::Object
ClusterSim::statsJson() const
{
    json::Object doc;
    json::Array perDomain;
    std::uint64_t completed = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t sumRct = 0;
    for (std::size_t d = 0; d < domains.size(); ++d) {
        const ClusterDomainStats &s = domains[d]->stats;
        json::Object o;
        o["domain"] = static_cast<std::int64_t>(d);
        o["arrivals"] = s.arrivals;
        o["served_local"] = s.servedLocal;
        o["served_forwarded"] = s.servedForwarded;
        o["forwards_out"] = s.forwardsOut;
        o["reforwards"] = s.reforwards;
        o["completed"] = s.completed;
        o["sum_rct_ns"] = s.sumRctTicks;
        o["prefix_hits_local"] = s.prefixHitsLocal;
        o["prefix_hits_remote"] = s.prefixHitsRemote;
        o["prefix_misses"] = s.prefixMisses;
        o["prefix_bytes_streamed"] = s.prefixBytesStreamed;
        o["view_updates"] = s.viewUpdates;
        o["view_version"] = s.viewVersion;
        o["digest"] = s.digest;
        perDomain.push_back(std::move(o));
        completed += s.completed;
        arrivals += s.arrivals;
        sumRct += s.sumRctTicks;
    }
    doc["domains"] = std::move(perDomain);
    doc["total_arrivals"] = arrivals;
    doc["total_completed"] = completed;
    doc["mean_rct_us"] = completed == 0
        ? 0.0
        : static_cast<double>(sumRct) /
              static_cast<double>(completed) / 1e3;

    json::Object p;
    p["churn_events"] = pstats.churnEvents;
    p["repairs"] = placerState ? placerState->repairs() : 0;
    p["full_solves"] = placerState ? placerState->fullSolves() : 0;
    p["infeasible"] = pstats.infeasible;
    p["objective"] = placerState ? placerState->objective() : 0.0;
    p["live_models"] = placerState
        ? static_cast<std::uint64_t>(placerState->liveModels()) : 0;
    doc["placer"] = std::move(p);
    return doc;
}

ClusterRunResult
runClusterSequential(const ClusterSimConfig &cfg)
{
    ClusterRunResult res;
    aqua::sim::EventQueue q;
    aqua::sim::SequentialDomainNet net(q, cfg.numDomains, cfg.seed,
                                       cfg.lookahead());
    ClusterSim model(cfg, net);
    model.setup();
    auto t0 = std::chrono::steady_clock::now();
    res.eventsFired = q.runUntil(aqua::sim::maxTick);
    auto t1 = std::chrono::steady_clock::now();
    res.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    res.stats = model.statsJson();
    res.digests = model.digests();
    if (cfg.captureTrace)
        for (std::size_t d = 0; d < cfg.numDomains; ++d)
            res.traces.push_back(model.traceJsonl(d));
    res.crossMessages = net.crossMessages();
    res.windows = 0;
    res.threads = 1;
    return res;
}

ClusterRunResult
runClusterSharded(const ClusterSimConfig &cfg, unsigned threads)
{
    ClusterRunResult res;
    aqua::sim::ShardedSimulation::Config sc;
    sc.numDomains = cfg.numDomains;
    sc.seed = cfg.seed;
    sc.lookahead = cfg.lookahead();
    sc.threads = threads;
    aqua::sim::ShardedSimulation sim(sc);
    ClusterSim model(cfg, sim);
    model.setup();
    auto t0 = std::chrono::steady_clock::now();
    res.eventsFired = sim.run();
    auto t1 = std::chrono::steady_clock::now();
    res.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    res.stats = model.statsJson();
    res.digests = model.digests();
    if (cfg.captureTrace)
        for (std::size_t d = 0; d < cfg.numDomains; ++d)
            res.traces.push_back(model.traceJsonl(d));
    res.crossMessages = sim.crossMessages();
    res.windows = sim.windows();
    res.threads = sim.threadsUsed();
    return res;
}

bool
equivalentRuns(const ClusterRunResult &a, const ClusterRunResult &b,
               std::string *why)
{
    auto fail = [&](std::string reason) {
        if (why)
            *why = std::move(reason);
        return false;
    };
    if (a.digests != b.digests) {
        for (std::size_t d = 0;
             d < std::min(a.digests.size(), b.digests.size()); ++d)
            if (a.digests[d] != b.digests[d])
                return fail("digest mismatch in domain " +
                            std::to_string(d));
        return fail("digest vector length mismatch");
    }
    if (a.eventsFired != b.eventsFired)
        return fail("events fired differ: " +
                    std::to_string(a.eventsFired) + " vs " +
                    std::to_string(b.eventsFired));
    if (a.crossMessages != b.crossMessages)
        return fail("cross-domain message counts differ");
    // json::Object::operator== is order-insensitive; the canonical
    // stats doc must match byte for byte, so compare serializations.
    if (json::Value(a.stats).dump() != json::Value(b.stats).dump())
        return fail("canonical stats documents differ");
    if (a.traces.size() != b.traces.size())
        return fail("trace capture mismatch");
    for (std::size_t d = 0; d < a.traces.size(); ++d)
        if (a.traces[d] != b.traces[d])
            return fail("trace JSONL differs in domain " +
                        std::to_string(d));
    if (why)
        why->clear();
    return true;
}

} // namespace aqua::exp
