#include "exp/experiments.hh"

#include <algorithm>
#include <map>
#include <memory>

#include "exp/testbed.hh"
#include "fault/fault.hh"
#include "model/perf_model.hh"
#include "serve/batch_engine.hh"
#include "serve/flexgen_engine.hh"
#include "serve/vllm_engine.hh"
#include "sim/logging.hh"
#include "tier/park_agent.hh"
#include "workload/generator.hh"

namespace aqua::exp {

using namespace aqua::sim;
using model::ModelSpec;
using model::presetByName;

const char *
serveModeName(ServeMode mode)
{
    switch (mode) {
      case ServeMode::VllmBaseline: return "vllm";
      case ServeMode::CfsDram: return "vllm+cfs";
      case ServeMode::CfsAqua: return "aqua";
    }
    return "?";
}

const char *
offloadModeName(OffloadMode mode)
{
    switch (mode) {
      case OffloadMode::Dram: return "dram";
      case OffloadMode::Aqua: return "aqua";
      case OffloadMode::AquaUnstaged: return "aqua-unstaged";
    }
    return "?";
}

namespace {

/** Run the queue in slices until @p done or the cap is reached. */
template <typename DonePredicate>
void
runUntilDone(Simulation &sim, double maxSimSeconds, DonePredicate done)
{
    Tick cap = secToTicks(maxSimSeconds);
    Tick slice = secToTicks(5.0);
    while (sim.now() < cap && !done())
        sim.runUntil(std::min(cap, sim.now() + slice));
}

/**
 * A producer workload generator and engine bundle: either a
 * compute-bound image/audio engine fed Parti-style arrivals, or an
 * LLM producer serving a light ShareGPT load (Table 2).
 */
struct Producer
{
    std::unique_ptr<serve::BatchEngine> batch;
    std::unique_ptr<serve::VllmEngine> llm;
    std::vector<workload::Request> trace;

    double
    throughput() const
    {
        return batch ? batch->throughput() : 0.0;
    }
};

Producer
makeProducer(Testbed &tb, hw::GpuId gpu, const std::string &name,
             double ratePerSec, double horizonSec,
             core::AquaLib *lib)
{
    Producer p;
    ModelSpec spec = presetByName(name);
    workload::TraceBuilder traces(tb.sim().makeRandom());
    auto count = static_cast<std::size_t>(horizonSec * ratePerSec);
    if (spec.isText()) {
        serve::VllmEngineConfig cfg;
        cfg.informEveryIters = 4;
        auto &backend = tb.makeDramBackend(gpu);
        p.llm = std::make_unique<serve::VllmEngine>(
            tb.server(), gpu, spec,
            std::make_unique<serve::FcfsPolicy>(), backend, cfg);
        if (lib)
            p.llm->attachAquaLib(lib);
        p.trace = traces.interactive(ratePerSec, count);
        driveTrace(tb.sim(), *p.llm, p.trace);
    } else {
        p.batch = std::make_unique<serve::BatchEngine>(tb.server(),
                                                       gpu, spec);
        if (lib)
            p.batch->attachAquaLib(lib);
        p.trace = traces.interactive(ratePerSec, count);
        driveTrace(tb.sim(), *p.batch, p.trace);
    }
    return p;
}

std::unique_ptr<core::Informer>
makeInformerFor(const ModelSpec &spec)
{
    if (spec.isText())
        return std::make_unique<core::LlmInformer>();
    return std::make_unique<core::BatchInformer>();
}

/** Sort metrics by request id (arrival/issue order). */
void
sortById(std::vector<workload::RequestMetrics> &metrics)
{
    std::sort(metrics.begin(), metrics.end(),
              [](const auto &a, const auto &b) { return a.id < b.id; });
}

/** Collect the prefix-cache counters of a consumer engine. */
PrefixCacheReport
prefixReportFrom(const serve::VllmEngine &engine)
{
    PrefixCacheReport r;
    const serve::PrefixIndexStats &is = engine.kvCache().prefixStats();
    r.hitRate = is.hitRate();
    r.hits = is.hits;
    r.misses = is.misses;
    r.partialHits = is.partialHits;
    r.collisions = is.collisions;
    r.evictions = is.evictions;
    const serve::PrefixCacheEngineStats &es = engine.prefixEngineStats();
    r.cachedTokens = es.cachedTokens;
    r.cowForks = es.cowForks;
    r.dedupSavedBytes = es.dedupSavedBytes;
    r.residentReuseBytes = es.residentReuseBytes;
    r.sigMismatches = es.sigMismatches;
    r.hitTokensLocal = es.hitTokensLocal;
    r.hitTokensRemote = es.hitTokensRemote;
    r.hitTokensDram = es.hitTokensDram;
    r.hitTokensRemoteServer = es.hitTokensRemoteServer;
    return r;
}

} // anonymous namespace

CfsExperimentResult
runCfsExperiment(const CfsExperimentConfig &cfg)
{
    Testbed tb(2, hw::TopologyKind::DirectP2P, cfg.seed);
    constexpr hw::GpuId consumerGpu = 0;
    constexpr hw::GpuId producerGpu = 1;

    ModelSpec consumerSpec = presetByName(cfg.consumerModel);
    ModelSpec producerSpec = presetByName(cfg.producerModel);

    core::AquaLib *consumerLib = nullptr;
    core::AquaLib *producerLib = nullptr;
    serve::OffloadBackend *backend = nullptr;
    if (cfg.mode == ServeMode::CfsAqua) {
        producerLib = &tb.makeAquaLib(producerGpu,
                                      makeInformerFor(producerSpec));
        consumerLib = &tb.makeAquaLib(consumerGpu);
        tb.assign(consumerGpu, producerGpu);
        backend = &tb.makeAquaBackend(*consumerLib);
    } else {
        backend = &tb.makeDramBackend(consumerGpu);
    }

    std::unique_ptr<serve::SchedulerPolicy> policy;
    if (cfg.mode == ServeMode::VllmBaseline)
        policy = std::make_unique<serve::FcfsPolicy>();
    else
        policy = std::make_unique<serve::CfsPolicy>();

    serve::VllmEngineConfig engineCfg;
    engineCfg.cfsSliceTokens = cfg.sliceTokens;
    serve::VllmEngine consumer(tb.server(), consumerGpu, consumerSpec,
                               std::move(policy), *backend, engineCfg);

    Producer producer = makeProducer(tb, producerGpu,
                                     cfg.producerModel, 1.0,
                                     cfg.maxSimSeconds, producerLib);

    workload::TraceBuilder traces(tb.sim().makeRandom());
    std::vector<workload::Request> trace =
        traces.codeSummary(cfg.ratePerSec, cfg.numRequests);
    driveTrace(tb.sim(), consumer, trace);

    runUntilDone(tb.sim(), cfg.maxSimSeconds, [&] {
        return consumer.finished().size() == cfg.numRequests;
    });

    CfsExperimentResult result;
    result.metrics = consumer.finished();
    sortById(result.metrics);
    result.producerThroughput = producer.throughput();
    result.consumerSwapOuts = consumer.swapOutCount();
    result.consumerSwapIns = consumer.swapInCount();
    return result;
}

LongPromptResult
runLongPrompt(const LongPromptConfig &cfg)
{
    std::size_t gpus = 2 * cfg.pairs;
    hw::TopologyKind kind = cfg.pairs > 1
                                ? hw::TopologyKind::NvSwitch
                                : hw::TopologyKind::DirectP2P;
    Testbed tb(gpus, kind, cfg.seed);

    ModelSpec consumerSpec = presetByName(cfg.consumerModel);
    ModelSpec producerSpec = presetByName(cfg.producerModel);

    std::vector<std::unique_ptr<serve::FlexGenEngine>> consumers;
    std::vector<Producer> producers;
    workload::TraceBuilder traces(tb.sim().makeRandom());

    for (std::size_t i = 0; i < cfg.pairs; ++i) {
        auto consumerGpu = static_cast<hw::GpuId>(2 * i);
        auto producerGpu = static_cast<hw::GpuId>(2 * i + 1);

        serve::OffloadBackend *backend = nullptr;
        core::AquaLib *producerLib = nullptr;
        if (cfg.mode != OffloadMode::Dram) {
            core::AquaLibConfig libCfg;
            libCfg.useStaging = cfg.mode != OffloadMode::AquaUnstaged;
            producerLib = &tb.makeAquaLib(
                producerGpu, makeInformerFor(producerSpec), libCfg);
            core::AquaLib &consumerLib =
                tb.makeAquaLib(consumerGpu, nullptr, libCfg);
            hw::GpuId target = cfg.sharedProducer
                                   ? static_cast<hw::GpuId>(1)
                                   : producerGpu;
            tb.assign(consumerGpu, target);
            backend = &tb.makeAquaBackend(consumerLib);
        } else {
            backend = &tb.makeDramBackend(consumerGpu);
        }

        producers.push_back(makeProducer(tb, producerGpu,
                                         cfg.producerModel, 1.0,
                                         cfg.durationSec,
                                         producerLib));

        consumers.push_back(std::make_unique<serve::FlexGenEngine>(
            tb.server(), consumerGpu, consumerSpec, *backend));
        // Queue enough prompts to outlast the measurement window.
        for (int n = 0; n < 40; ++n) {
            workload::Request r =
                traces.longPrompt(cfg.promptTokens, 2000);
            tb.sim().queue().schedule(r.arrival, [&, r,
                                                  i] {
                consumers[i]->submit(r);
            });
        }
    }

    tb.sim().runUntil(secToTicks(cfg.durationSec));

    LongPromptResult result;
    for (auto &consumer : consumers) {
        result.tokensPerConsumer.push_back(consumer->totalTokens());
        result.totalTokens += consumer->totalTokens();
    }
    return result;
}

LoraExperimentResult
runLoraExperiment(const LoraExperimentConfig &cfg)
{
    Testbed tb(2, hw::TopologyKind::DirectP2P, cfg.seed);
    constexpr hw::GpuId consumerGpu = 0;
    constexpr hw::GpuId producerGpu = 1;

    ModelSpec consumerSpec = presetByName(cfg.baseModel);
    ModelSpec producerSpec = presetByName(cfg.producerModel);

    core::AquaLib *producerLib = nullptr;
    serve::OffloadBackend *backend = nullptr;
    if (cfg.mode != OffloadMode::Dram) {
        core::AquaLibConfig libCfg;
        libCfg.useStaging = cfg.mode != OffloadMode::AquaUnstaged;
        producerLib = &tb.makeAquaLib(producerGpu,
                                      makeInformerFor(producerSpec),
                                      libCfg);
        core::AquaLib &consumerLib =
            tb.makeAquaLib(consumerGpu, nullptr, libCfg);
        tb.assign(consumerGpu, producerGpu);
        backend = &tb.makeAquaBackend(consumerLib);
    } else {
        backend = &tb.makeDramBackend(consumerGpu);
    }

    // Give the producer a head start so its donation is in place
    // before the adapter store is populated.
    Producer producer = makeProducer(tb, producerGpu,
                                     cfg.producerModel, 1.0,
                                     cfg.maxSimSeconds, producerLib);
    tb.sim().runUntil(secToTicks(1.0));

    serve::VllmEngineConfig engineCfg;
    serve::LoraCacheConfig loraCfg;
    loraCfg.capacityBytes = cfg.cacheBytes;
    engineCfg.lora = loraCfg;
    serve::VllmEngine consumer(
        tb.server(), consumerGpu, consumerSpec,
        std::make_unique<serve::FcfsPolicy>(), *backend, engineCfg,
        model::synthesizeAdapters("lora", cfg.adapterBytes,
                                  cfg.numAdapters));

    workload::TraceBuilder traces(tb.sim().makeRandom());
    std::vector<workload::Request> trace =
        traces.lora(cfg.ratePerSec, cfg.numRequests, cfg.numAdapters,
                    tb.sim().now());
    driveTrace(tb.sim(), consumer, trace);

    runUntilDone(tb.sim(), cfg.maxSimSeconds, [&] {
        return consumer.finished().size() == cfg.numRequests;
    });

    LoraExperimentResult result;
    result.metrics = consumer.finished();
    sortById(result.metrics);
    if (consumer.loraCache()) {
        result.cacheHits = consumer.loraCache()->hits();
        result.cacheMisses = consumer.loraCache()->misses();
    }
    return result;
}

ElasticExperimentResult
runElasticExperiment(const ElasticExperimentConfig &cfg)
{
    Testbed tb(2, hw::TopologyKind::DirectP2P, cfg.seed);
    constexpr hw::GpuId consumerGpu = 0;
    constexpr hw::GpuId producerGpu = 1;

    ModelSpec producerSpec = presetByName(cfg.producerModel);
    ModelSpec consumerSpec = presetByName(cfg.consumerModel);

    core::AquaLib *producerLib = nullptr;
    if (cfg.withAqua) {
        producerLib =
            &tb.makeAquaLib(producerGpu,
                            std::make_unique<core::LlmInformer>());
    }

    // The producer LLM serves the interactive load.
    serve::VllmEngineConfig prodCfg;
    prodCfg.informEveryIters = 4;
    auto &prodBackend = tb.makeDramBackend(producerGpu);
    serve::VllmEngine producer(tb.server(), producerGpu, producerSpec,
                               std::make_unique<serve::FcfsPolicy>(),
                               prodBackend, prodCfg);
    if (producerLib)
        producer.attachAquaLib(producerLib);

    // Producer traffic: 100 requests at 1 req/s from the consumer
    // start; 250 requests at 5 req/s from phase 2.
    workload::TraceBuilder traces(tb.sim().makeRandom());
    std::vector<workload::Request> phase1 = traces.interactive(
        1.0, 100, secToTicks(cfg.consumerStartSec));
    std::vector<workload::Request> phase2 = traces.interactive(
        5.0, 250, secToTicks(cfg.phase2StartSec));
    driveTrace(tb.sim(), producer, phase1);
    driveTrace(tb.sim(), producer, phase2);

    // The consumer runs long-prompt inference with AQUA only.
    std::unique_ptr<serve::FlexGenEngine> consumer;
    if (cfg.withAqua) {
        core::AquaLib &consumerLib = tb.makeAquaLib(consumerGpu);
        tb.assign(consumerGpu, producerGpu);
        auto &backend = tb.makeAquaBackend(consumerLib);
        consumer = std::make_unique<serve::FlexGenEngine>(
            tb.server(), consumerGpu, consumerSpec, backend);
        for (int n = 0; n < 40; ++n) {
            workload::Request r = traces.longPrompt(
                8000, 2000, secToTicks(cfg.consumerStartSec));
            tb.sim().queue().schedule(r.arrival, [&, r] {
                consumer->submit(r);
            });
        }
    }

    tb.sim().runUntil(secToTicks(cfg.durationSec));

    ElasticExperimentResult result;
    Tick bucket = secToTicks(10.0);
    result.producerFreeMemory = producer.freeMemorySeries()
        .resampleMean(bucket, 0, secToTicks(cfg.durationSec));
    if (consumer) {
        result.consumerThroughput = consumer->tokenSeries()
            .resampleSum(bucket, 0, secToTicks(cfg.durationSec));
        result.consumerTokens = consumer->totalTokens();
    }
    result.producerMetrics = producer.finished();
    sortById(result.producerMetrics);
    return result;
}

std::vector<ContentionPoint>
contentionSweep(const std::string &modelName,
                const std::vector<std::uint32_t> &batchSizes)
{
    ModelSpec spec = presetByName(modelName);
    hw::GpuSpec gpu = hw::a100_80g();
    model::PerfModel pm(spec, gpu);

    std::vector<ContentionPoint> out;
    for (std::uint32_t batch : batchSizes) {
        ContentionPoint point;
        point.batchSize = batch;
        if (spec.isText()) {
            // Each sequence holds a mid-generation context (~1k
            // tokens, ShareGPT-scale prompt plus output).
            std::uint64_t kvPerSeq = spec.kvBytes(1024);
            std::uint64_t kvTotal = kvPerSeq * batch;
            std::uint64_t footprint = pm.memoryFootprint(batch, kvTotal);
            std::uint64_t resident = kvTotal;
            double penalty_sec = 0.0;
            if (footprint > gpu.hbmBytes) {
                // Overcommitted KV spills to DRAM and streams back
                // over PCIe every iteration: throughput collapses.
                std::uint64_t excess = footprint - gpu.hbmBytes;
                penalty_sec = static_cast<double>(excess) /
                              gpu.pcieBandwidth;
                resident = kvTotal > excess ? kvTotal - excess : 0;
                point.freeMemoryGb = 0.0;
            } else {
                point.freeMemoryGb =
                    static_cast<double>(gpu.hbmBytes - footprint) /
                    1e9;
            }
            Tick iter = pm.decodeStepTime(batch, resident) +
                        secToTicks(penalty_sec);
            point.throughput =
                static_cast<double>(batch) / ticksToSec(iter);
        } else {
            std::uint64_t footprint = pm.memoryFootprint(batch, 0);
            point.freeMemoryGb = footprint > gpu.hbmBytes
                ? 0.0
                : static_cast<double>(gpu.hbmBytes - footprint) / 1e9;
            point.throughput = pm.batchThroughput(batch);
        }
        out.push_back(point);
    }
    return out;
}

ChatbotResult
runChatbot(const ChatbotConfig &cfg)
{
    Testbed tb(2, hw::TopologyKind::DirectP2P, cfg.seed);
    constexpr hw::GpuId consumerGpu = 0;
    constexpr hw::GpuId producerGpu = 1;

    ModelSpec consumerSpec = presetByName(cfg.consumerModel);
    ModelSpec producerSpec = presetByName(cfg.producerModel);

    core::AquaLib *producerLib = nullptr;
    serve::OffloadBackend *backend = nullptr;
    if (cfg.mode == ServeMode::CfsAqua) {
        producerLib = &tb.makeAquaLib(producerGpu,
                                      makeInformerFor(producerSpec));
        core::AquaLib &consumerLib = tb.makeAquaLib(consumerGpu);
        tb.assign(consumerGpu, producerGpu);
        backend = &tb.makeAquaBackend(consumerLib);
    } else {
        backend = &tb.makeDramBackend(consumerGpu);
    }

    std::unique_ptr<serve::SchedulerPolicy> policy;
    if (cfg.mode == ServeMode::VllmBaseline)
        policy = std::make_unique<serve::FcfsPolicy>();
    else
        policy = std::make_unique<serve::CfsPolicy>();

    serve::VllmEngineConfig engineCfg;
    engineCfg.prefixCache = cfg.prefixCache;
    serve::VllmEngine consumer(tb.server(), consumerGpu, consumerSpec,
                               std::move(policy), *backend, engineCfg);
    Producer producer = makeProducer(tb, producerGpu,
                                     cfg.producerModel, 1.0,
                                     cfg.maxSimSeconds, producerLib);

    // The chatbot driver: each user re-issues a prompt after the
    // response to the previous one arrives (§8).
    auto traces = std::make_shared<workload::TraceBuilder>(
        tb.sim().makeRandom());
    auto turnOf = std::make_shared<std::map<std::uint64_t,
                                            std::uint32_t>>();
    auto userOf = std::make_shared<std::map<std::uint64_t,
                                            std::uint32_t>>();
    auto promptOf = std::make_shared<std::map<std::uint64_t,
                                              std::uint32_t>>();

    std::vector<workload::Request> first =
        traces->chatbotFirstTurn(cfg.users, 0, cfg.systemPromptTokens);
    for (const workload::Request &r : first) {
        (*turnOf)[r.id] = 0;
        (*userOf)[r.id] = r.userId;
        (*promptOf)[r.id] = r.promptTokens;
    }
    driveTrace(tb.sim(), consumer, first);

    std::uint32_t turns = cfg.turns;
    std::uint32_t sysTokens = cfg.systemPromptTokens;
    consumer.onComplete([&, traces, turnOf, userOf, promptOf,
                         sysTokens](const workload::RequestMetrics &m) {
        std::uint32_t turn = (*turnOf)[m.id];
        std::uint32_t user = (*userOf)[m.id];
        if (turn + 1 >= turns)
            return;
        // The next turn carries the whole conversation as history.
        std::uint32_t history = (*promptOf)[m.id] + m.tokensGenerated;
        workload::Request next = traces->chatbotFollowUp(
            user, turn + 1, tb.sim().now(), history, sysTokens);
        (*turnOf)[next.id] = turn + 1;
        (*userOf)[next.id] = user;
        (*promptOf)[next.id] = next.promptTokens;
        tb.sim().queue().schedule(next.arrival, [&consumer, next] {
            consumer.submit(next);
        });
    });

    std::size_t expected = std::size_t(cfg.users) * cfg.turns;
    runUntilDone(tb.sim(), cfg.maxSimSeconds, [&] {
        return consumer.finished().size() == expected;
    });

    ChatbotResult result;
    for (const workload::RequestMetrics &m : consumer.finished()) {
        ChatbotResult::TurnMetric tm;
        tm.turn = (*turnOf)[m.id];
        tm.metrics = m;
        result.metrics.push_back(tm);
    }
    std::sort(result.metrics.begin(), result.metrics.end(),
              [](const auto &a, const auto &b) {
                  return a.metrics.id < b.metrics.id;
              });
    result.prefix = prefixReportFrom(consumer);
    result.peakLiveKvBytes = consumer.kvCache().peakLiveKvBytes();
    result.offloadWriteBytes = consumer.offloadWriteBytes();
    result.offloadReadBytes = consumer.offloadReadBytes();
    double elapsed = ticksToSec(tb.sim().now());
    result.tokensPerSec =
        elapsed > 0.0
            ? static_cast<double>(consumer.totalTokens()) / elapsed
            : 0.0;
    return result;
}

PrefixAblationResult
runPrefixAblation(const PrefixAblationConfig &cfg)
{
    Testbed tb(2, hw::TopologyKind::DirectP2P, cfg.seed);
    constexpr hw::GpuId consumerGpu = 0;
    constexpr hw::GpuId producerGpu = 1;

    ModelSpec consumerSpec = presetByName(cfg.consumerModel);
    ModelSpec producerSpec = presetByName(cfg.producerModel);

    core::AquaLib *producerLib = nullptr;
    serve::OffloadBackend *backend = nullptr;
    if (cfg.mode == ServeMode::CfsAqua) {
        producerLib = &tb.makeAquaLib(producerGpu,
                                      makeInformerFor(producerSpec));
        core::AquaLib &consumerLib = tb.makeAquaLib(consumerGpu);
        tb.assign(consumerGpu, producerGpu);
        backend = &tb.makeAquaBackend(consumerLib);
    } else {
        backend = &tb.makeDramBackend(consumerGpu);
    }

    std::unique_ptr<serve::SchedulerPolicy> policy;
    if (cfg.mode == ServeMode::VllmBaseline)
        policy = std::make_unique<serve::FcfsPolicy>();
    else
        policy = std::make_unique<serve::CfsPolicy>();

    serve::VllmEngineConfig engineCfg;
    engineCfg.prefixCache = cfg.prefixCache;
    engineCfg.maxCacheShare = cfg.maxCacheShare;
    engineCfg.prefixEviction = cfg.eviction;
    engineCfg.kvPrecision = cfg.kvPrecision;
    engineCfg.sparseReadFraction = cfg.sparseReadFraction;
    serve::VllmEngine consumer(tb.server(), consumerGpu, consumerSpec,
                               std::move(policy), *backend, engineCfg);
    Producer producer = makeProducer(tb, producerGpu,
                                     cfg.producerModel, 1.0,
                                     cfg.maxSimSeconds, producerLib);

    workload::TraceBuilder traces(tb.sim().makeRandom());
    std::vector<workload::Request> trace = traces.sharedPrefix(
        cfg.ratePerSec, cfg.numRequests, cfg.prefixTokens,
        cfg.numGroups);
    driveTrace(tb.sim(), consumer, trace);

    runUntilDone(tb.sim(), cfg.maxSimSeconds, [&] {
        return consumer.finished().size() == trace.size();
    });

    PrefixAblationResult result;
    result.metrics = consumer.finished();
    sortById(result.metrics);
    result.prefix = prefixReportFrom(consumer);
    result.peakLiveKvBytes = consumer.kvCache().peakLiveKvBytes();
    result.offloadWriteBytes = consumer.offloadWriteBytes();
    result.offloadReadBytes = consumer.offloadReadBytes();
    result.swapOuts = consumer.swapOutCount();
    result.swapIns = consumer.swapInCount();
    double elapsed = ticksToSec(tb.sim().now());
    result.tokensPerSec =
        elapsed > 0.0
            ? static_cast<double>(consumer.totalTokens()) / elapsed
            : 0.0;
    return result;
}

ClusterPrefixResult
runClusterPrefix(const ClusterPrefixConfig &cfg)
{
    std::size_t n = std::max<std::size_t>(1, cfg.consumers);
    Testbed tb(std::max<std::size_t>(n, 2), hw::TopologyKind::NvSwitch,
               cfg.seed);
    ModelSpec spec = presetByName(cfg.consumerModel);

    cluster::PrefixRegistry *registry = nullptr;
    if (cfg.registry) {
        registry = &tb.makePrefixRegistry();
        if (cfg.traceLog)
            registry->setTraceLog(cfg.traceLog);
    }

    std::vector<std::unique_ptr<serve::VllmEngine>> engines;
    std::vector<core::AquaLib *> engineLibs;
    for (std::size_t i = 0; i < n; ++i) {
        auto gpu = static_cast<hw::GpuId>(i);
        serve::DramBackend &backend = tb.makeDramBackend(gpu);
        serve::VllmEngineConfig engineCfg;
        engineCfg.prefixCache = true;
        engineCfg.prefixEviction = cfg.eviction;
        engineCfg.clusterPrefix = cfg.registry;
        engineCfg.clusterBorrowMaxBlocks = cfg.borrowMaxBlocks;
        engineCfg.kvPrecision = cfg.kvPrecision;
        engineCfg.sparseReadFraction = cfg.sparseReadFraction;
        engines.push_back(std::make_unique<serve::VllmEngine>(
            tb.server(), gpu, spec,
            std::make_unique<serve::CfsPolicy>(), backend, engineCfg));
        if (registry) {
            core::AquaLib &lib = tb.makeAquaLib(gpu);
            engineLibs.push_back(&lib);
            engines.back()->attachClusterPrefix(registry, &lib);
        }
        if (cfg.traceLog)
            engines.back()->setTraceLog(cfg.traceLog);
    }

    // The chaos cell permanently kills gpu 0 — the preamble chain's
    // home, since the first request lands there — once the drain
    // margin has idled its engine, and audits recovery on survivors.
    Tick chaosAt = secToTicks(cfg.chaosAtSec);
    Tick avoidGpu0After =
        cfg.chaosAtSec > cfg.chaosDrainSec
            ? secToTicks(cfg.chaosAtSec - cfg.chaosDrainSec)
            : 0;
    bool chaos = cfg.chaos && n > 1;
    std::unique_ptr<fault::FaultInjector> inj;
    if (chaos) {
        inj = std::make_unique<fault::FaultInjector>(
            tb.sim(), tb.server().topology(), tb.rest().router());
        for (core::AquaLib *lib : engineLibs)
            inj->registerLib(*lib);
        if (cfg.traceLog)
            inj->setTraceLog(cfg.traceLog);
        if (registry) {
            inj->setGpuFailObserver([&tb, registry](hw::GpuId gpu) {
                registry->onGpuFailed(gpu, tb.sim().now());
            });
        }
        fault::FaultPlan plan;
        fault::FaultSpec f;
        f.kind = fault::FaultKind::GpuFail;
        f.at = chaosAt;
        f.duration = 0; // permanent
        f.gpu = 0;
        f.grace = msToTicks(200.0);
        plan.add(f);
        inj->arm(plan);
    }

    auto engineFor = [&](std::size_t idx, Tick arrival) {
        std::size_t e = idx % n;
        if (chaos && arrival >= avoidGpu0After)
            e = 1 + idx % (n - 1);
        return e;
    };

    std::size_t expected = 0;
    std::uint64_t promptTotal = 0;
    auto traces = std::make_shared<workload::TraceBuilder>(
        tb.sim().makeRandom());
    /** Group representatives for the residency probe. */
    std::vector<workload::Request> groupReps;
    auto noteGroup = [&](const workload::Request &r) {
        for (const workload::Request &g : groupReps)
            if (g.prefixStream == r.prefixStream)
                return;
        groupReps.push_back(r);
    };

    if (cfg.chatbot) {
        auto turnOf = std::make_shared<std::map<std::uint64_t,
                                                std::uint32_t>>();
        auto userOf = std::make_shared<std::map<std::uint64_t,
                                                std::uint32_t>>();
        auto promptOf = std::make_shared<std::map<std::uint64_t,
                                                  std::uint32_t>>();
        std::vector<workload::Request> first =
            traces->chatbotFirstTurn(cfg.users, 0, cfg.prefixTokens);
        for (std::size_t i = 0; i < first.size(); ++i) {
            const workload::Request &r = first[i];
            (*turnOf)[r.id] = 0;
            (*userOf)[r.id] = r.userId;
            (*promptOf)[r.id] = r.promptTokens;
            promptTotal += r.promptTokens;
            noteGroup(r);
            serve::VllmEngine &eng =
                *engines[engineFor(r.userId, r.arrival)];
            tb.sim().queue().schedule(r.arrival, [&eng, r] {
                eng.submit(r);
            });
        }
        std::uint32_t turns = cfg.turns;
        std::uint32_t sysTokens = cfg.prefixTokens;
        // Each completion issues the user's next turn on a *different*
        // engine, so the re-sent history is a cluster-remote prefix.
        auto followUp = [&, traces, turnOf, userOf, promptOf, sysTokens,
                         turns](const workload::RequestMetrics &m) {
            std::uint32_t turn = (*turnOf)[m.id];
            std::uint32_t user = (*userOf)[m.id];
            if (turn + 1 >= turns)
                return;
            std::uint32_t history =
                (*promptOf)[m.id] + m.tokensGenerated;
            workload::Request next = traces->chatbotFollowUp(
                user, turn + 1, tb.sim().now(), history, sysTokens);
            (*turnOf)[next.id] = turn + 1;
            (*userOf)[next.id] = user;
            (*promptOf)[next.id] = next.promptTokens;
            promptTotal += next.promptTokens;
            serve::VllmEngine &eng = *engines[engineFor(
                std::size_t(user) + turn + 1, next.arrival)];
            tb.sim().queue().schedule(next.arrival, [&eng, next] {
                eng.submit(next);
            });
        };
        for (auto &engine : engines)
            engine->onComplete(followUp);
        expected = std::size_t(cfg.users) * cfg.turns;
    } else {
        std::vector<workload::Request> trace = traces->sharedPrefix(
            cfg.ratePerSec, cfg.numRequests, cfg.prefixTokens,
            cfg.numGroups);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const workload::Request &r = trace[i];
            promptTotal += r.promptTokens;
            noteGroup(r);
            serve::VllmEngine &eng = *engines[engineFor(i, r.arrival)];
            tb.sim().queue().schedule(r.arrival, [&eng, r] {
                eng.submit(r);
            });
        }
        expected = trace.size();
    }

    runUntilDone(tb.sim(), cfg.maxSimSeconds, [&] {
        std::size_t done = 0;
        for (const auto &engine : engines)
            done += engine->finished().size();
        return done >= expected;
    });

    ClusterPrefixResult result;
    std::uint64_t tokens = 0;
    for (const auto &engine : engines) {
        for (const workload::RequestMetrics &m : engine->finished())
            result.metrics.push_back(m);
        const serve::PrefixCacheEngineStats &es =
            engine->prefixEngineStats();
        result.cachedTokens += es.cachedTokens;
        result.registryHits += es.registryHits;
        result.registryMisses += es.registryMisses;
        result.borrowAdmissions += es.borrowAdmissions;
        result.copyAdmissions += es.copyAdmissions;
        result.remoteCopyBytes += es.remoteCopyBytes;
        result.remoteDecodeReadBytes += es.remoteDecodeReadBytes;
        result.remoteBrokenChains += es.remoteBrokenChains;
        result.sigMismatches += es.sigMismatches;
        result.clusterSigMismatches += es.clusterSigMismatches;
        result.hitTokensLocal += es.hitTokensLocal;
        result.hitTokensRemote += es.hitTokensRemote;
        result.hitTokensDram += es.hitTokensDram;
        result.hitTokensRemoteServer += es.hitTokensRemoteServer;
        tokens += engine->totalTokens();
    }
    sortById(result.metrics);
    result.unfinished = expected > result.metrics.size()
                            ? expected - result.metrics.size()
                            : 0;
    result.promptTokens = promptTotal;
    result.aggregateHitRate =
        promptTotal > 0
            ? static_cast<double>(result.cachedTokens) / promptTotal
            : 0.0;

    // Residency: full preamble blocks each engine still has indexed.
    for (const workload::Request &rep : groupReps) {
        serve::TokenFn tok = serve::tokenFnFor(rep);
        std::uint32_t preamble = cfg.chatbot
                                     ? cfg.prefixTokens
                                     : rep.prefixTokens;
        for (std::size_t i = 0; i < n; ++i) {
            if (tb.server().topology().gpuFailed(
                    static_cast<hw::GpuId>(i)))
                continue;
            const serve::KvCache &kv = engines[i]->kvCache();
            std::uint64_t full = preamble -
                preamble % kv.tokensPerBlock();
            if (full == 0)
                continue;
            result.residentPrefixBytes +=
                kv.probePrefixBlocks(tok, full) * kv.blockBytes();
        }
        const serve::KvCache &kv0 = engines[0]->kvCache();
        std::uint64_t full = preamble - preamble % kv0.tokensPerBlock();
        result.singleCopyBytes +=
            kv0.blocksForTokens(full) * kv0.blockBytes();
    }
    result.residencyFactor =
        result.singleCopyBytes > 0
            ? static_cast<double>(result.residentPrefixBytes) /
                  static_cast<double>(result.singleCopyBytes)
            : 0.0;

    if (registry) {
        const cluster::PrefixRegistryStats &rs = registry->stats();
        result.regPublishes = rs.publishes;
        result.regReplicaPublishes = rs.replicaPublishes;
        result.regCollisions = rs.collisions;
        result.regPromotions = rs.promotions;
        result.regInvalidations = rs.invalidations;
        result.regBrokenPins = rs.brokenPins;
        result.activePins = registry->activePins();
    }

    double elapsed = ticksToSec(tb.sim().now());
    result.elapsedSec = elapsed;
    result.tokensPerSec =
        elapsed > 0.0 ? static_cast<double>(tokens) / elapsed : 0.0;
    return result;
}

FederationRunResult
runFederation(const FederationRunConfig &cfg)
{
    std::size_t n = std::max<std::size_t>(2, cfg.servers);
    MultiServerCluster cluster(n, std::max<std::size_t>(
                                      2, cfg.gpusPerServer),
                               cfg.seed, cfg.fabric);
    ModelSpec spec = presetByName(cfg.consumerModel);

    // Every server runs its own prefix registry (the per-domain silo)
    // regardless of federation: the baseline is siloed registries, the
    // treatment adds the cross-server directory layer on top.
    std::vector<cluster::PrefixRegistry *> registries;
    for (std::size_t i = 0; i < n; ++i) {
        registries.push_back(&cluster.server(i).makePrefixRegistry());
        if (cfg.traceLog)
            registries.back()->setTraceLog(cfg.traceLog);
    }
    if (cfg.federation) {
        federation::DirectoryConfig base;
        base.maxRemoteConsumers = cfg.maxRemoteConsumers;
        cluster.makeFederation(base);
        if (cfg.traceLog)
            for (std::size_t i = 0; i < n; ++i)
                cluster.directory(i).setTraceLog(cfg.traceLog);
        cluster.startAntiEntropy(secToTicks(cfg.maxSimSeconds));
    }
    if (cfg.fabricDegradation < 1.0)
        cluster.fabric().setDegradation(cfg.fabricDegradation);

    // One consumer engine per server, on its gpu 0.
    std::vector<std::unique_ptr<serve::VllmEngine>> engines;
    std::vector<core::AquaLib *> engineLibs;
    for (std::size_t i = 0; i < n; ++i) {
        Testbed &tb = cluster.server(i);
        serve::DramBackend &backend = tb.makeDramBackend(0);
        serve::VllmEngineConfig engineCfg;
        engineCfg.prefixCache = true;
        engineCfg.clusterPrefix = true;
        engineCfg.clusterBorrowMaxBlocks = cfg.borrowMaxBlocks;
        engineCfg.kvPrecision = cfg.kvPrecision;
        engineCfg.federation = cfg.federation;
        engineCfg.federationSafetyFactor = cfg.federationSafetyFactor;
        engines.push_back(std::make_unique<serve::VllmEngine>(
            tb.server(), 0, spec,
            std::make_unique<serve::CfsPolicy>(), backend, engineCfg));
        core::AquaLib &lib = tb.makeAquaLib(0);
        engineLibs.push_back(&lib);
        engines.back()->attachClusterPrefix(registries[i], &lib);
        if (cfg.federation)
            engines.back()->attachFederation(
                &cluster.fabric(), static_cast<std::uint32_t>(i),
                &lib);
        if (cfg.traceLog)
            engines.back()->setTraceLog(cfg.traceLog);
    }

    // The chaos cell kills the origin server's home GPU — server 0's
    // gpu 0, where the first request lands — once the drain margin has
    // idled its engine, and degrades the fabric for a window that
    // overlaps in-flight federation streams.
    Tick chaosAt = secToTicks(cfg.chaosAtSec);
    Tick avoidServer0After =
        cfg.chaosAtSec > cfg.chaosDrainSec
            ? secToTicks(cfg.chaosAtSec - cfg.chaosDrainSec)
            : 0;
    bool chaos = cfg.chaos;
    std::unique_ptr<fault::FaultInjector> inj;
    if (chaos) {
        Testbed &tb0 = cluster.server(0);
        inj = std::make_unique<fault::FaultInjector>(
            cluster.sim(), tb0.server().topology(),
            tb0.rest().router());
        inj->registerLib(*engineLibs[0]);
        inj->attachFabric(&cluster.fabric());
        if (cfg.traceLog)
            inj->setTraceLog(cfg.traceLog);
        cluster::PrefixRegistry *reg0 = registries[0];
        inj->setGpuFailObserver([&cluster, reg0](hw::GpuId gpu) {
            reg0->onGpuFailed(gpu, cluster.sim().now());
        });
        fault::FaultPlan plan;
        fault::FaultSpec kill;
        kill.kind = fault::FaultKind::GpuFail;
        kill.at = chaosAt;
        kill.duration = 0; // permanent
        kill.gpu = 0;
        kill.grace = msToTicks(200.0);
        plan.add(kill);
        fault::FaultSpec degrade;
        degrade.kind = fault::FaultKind::LinkDegrade;
        degrade.link = fault::FaultLink::Fabric;
        degrade.at = secToTicks(cfg.fabricDegradeAtSec);
        degrade.duration = secToTicks(cfg.fabricDegradeForSec);
        degrade.factor = cfg.fabricDegradeFactor;
        plan.add(degrade);
        inj->arm(plan);
    }

    auto engineFor = [&](std::size_t idx, Tick arrival) {
        std::size_t e = idx % n;
        if (chaos && arrival >= avoidServer0After && e == 0)
            e = 1 + idx % (n - 1);
        return e;
    };

    std::size_t expected = 0;
    std::uint64_t promptTotal = 0;
    std::uint64_t tailTotal = 0;
    auto traces = std::make_shared<workload::TraceBuilder>(
        cluster.sim().makeRandom());

    if (cfg.chatbot) {
        auto turnOf = std::make_shared<std::map<std::uint64_t,
                                                std::uint32_t>>();
        auto userOf = std::make_shared<std::map<std::uint64_t,
                                                std::uint32_t>>();
        auto promptOf = std::make_shared<std::map<std::uint64_t,
                                                  std::uint32_t>>();
        std::vector<workload::Request> first =
            traces->chatbotFirstTurn(cfg.users, 0, cfg.prefixTokens);
        for (const workload::Request &r : first) {
            (*turnOf)[r.id] = 0;
            (*userOf)[r.id] = r.userId;
            (*promptOf)[r.id] = r.promptTokens;
            promptTotal += r.promptTokens;
            tailTotal += r.promptTokens > cfg.prefixTokens
                             ? r.promptTokens - cfg.prefixTokens
                             : 0;
            serve::VllmEngine &eng =
                *engines[engineFor(r.userId, r.arrival)];
            cluster.sim().queue().schedule(r.arrival, [&eng, r] {
                eng.submit(r);
            });
        }
        std::uint32_t turns = cfg.turns;
        std::uint32_t sysTokens = cfg.prefixTokens;
        // Each completion issues the user's next turn on a different
        // *server*, so the re-sent history is only reachable through
        // the federation directory (the per-server registries have
        // never seen it).
        auto followUp = [&, traces, turnOf, userOf, promptOf, sysTokens,
                         turns](const workload::RequestMetrics &m) {
            std::uint32_t turn = (*turnOf)[m.id];
            std::uint32_t user = (*userOf)[m.id];
            if (turn + 1 >= turns)
                return;
            std::uint32_t history =
                (*promptOf)[m.id] + m.tokensGenerated;
            workload::Request next = traces->chatbotFollowUp(
                user, turn + 1, cluster.sim().now(), history,
                sysTokens);
            (*turnOf)[next.id] = turn + 1;
            (*userOf)[next.id] = user;
            (*promptOf)[next.id] = next.promptTokens;
            promptTotal += next.promptTokens;
            tailTotal += next.promptTokens > sysTokens
                             ? next.promptTokens - sysTokens
                             : 0;
            serve::VllmEngine &eng = *engines[engineFor(
                std::size_t(user) + turn + 1, next.arrival)];
            cluster.sim().queue().schedule(next.arrival, [&eng, next] {
                eng.submit(next);
            });
        };
        for (auto &engine : engines)
            engine->onComplete(followUp);
        expected = std::size_t(cfg.users) * cfg.turns;
    } else {
        std::vector<workload::Request> trace = traces->sharedPrefix(
            cfg.ratePerSec, cfg.numRequests, cfg.prefixTokens,
            cfg.numGroups);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const workload::Request &r = trace[i];
            promptTotal += r.promptTokens;
            tailTotal += r.promptTokens > r.prefixTokens
                             ? r.promptTokens - r.prefixTokens
                             : 0;
            serve::VllmEngine &eng = *engines[engineFor(i, r.arrival)];
            cluster.sim().queue().schedule(r.arrival, [&eng, r] {
                eng.submit(r);
            });
        }
        expected = trace.size();
    }

    runUntilDone(cluster.sim(), cfg.maxSimSeconds, [&] {
        std::size_t done = 0;
        for (const auto &engine : engines)
            done += engine->finished().size();
        return done >= expected;
    });

    FederationRunResult result;
    std::uint64_t tokens = 0;
    for (const auto &engine : engines) {
        for (const workload::RequestMetrics &m : engine->finished())
            result.metrics.push_back(m);
        const serve::PrefixCacheEngineStats &es =
            engine->prefixEngineStats();
        result.cachedTokens += es.cachedTokens;
        result.hitTokensLocal += es.hitTokensLocal;
        result.hitTokensRemote += es.hitTokensRemote;
        result.hitTokensDram += es.hitTokensDram;
        result.hitTokensRemoteServer += es.hitTokensRemoteServer;
        result.sigMismatches += es.sigMismatches;
        result.clusterSigMismatches += es.clusterSigMismatches;
        result.fedHits += es.fedHits;
        result.fedMisses += es.fedMisses;
        result.fedStreamDecisions += es.fedStreamDecisions;
        result.fedRecomputeDecisions += es.fedRecomputeDecisions;
        result.fedFetchRefusals += es.fedFetchRefusals;
        result.fedStreamsCompleted += es.fedStreamsCompleted;
        result.fedStreamsInvalidated += es.fedStreamsInvalidated;
        result.fedStreamBytes += es.fedStreamBytes;
        tokens += engine->totalTokens();
    }
    sortById(result.metrics);
    result.unfinished = expected > result.metrics.size()
                            ? expected - result.metrics.size()
                            : 0;
    result.promptTokens = promptTotal;
    result.tailTokens = tailTotal;
    result.aggregateHitRate =
        promptTotal > 0
            ? static_cast<double>(result.cachedTokens) / promptTotal
            : 0.0;

    if (cfg.federation) {
        for (std::size_t i = 0; i < n; ++i) {
            const federation::DirectoryStats &ds =
                cluster.directory(i).stats();
            result.dirAdvertsPublished += ds.advertsPublished;
            result.dirTombstones += ds.tombstones;
            result.dirAdvertsApplied += ds.advertsApplied;
            result.dirAdvertsDropped += ds.advertsDropped;
            result.dirAntiEntropyRounds += ds.antiEntropyRounds;
            result.dirFetchGrants += ds.fetchGrants;
            result.dirFetchCapRejects += ds.fetchCapRejects;
            result.dirFetchValidated += ds.fetchValidated;
            result.dirFetchInvalidated += ds.fetchInvalidated;
        }
    }
    const hw::FabricStats &fs = cluster.fabric().stats();
    result.fabricTransfers = fs.transfers;
    result.fabricBytesMoved = fs.bytesMoved;
    result.fabricQueueTicks = fs.queueTicks;

    // Timing-free output digest: federation (and its faults) may only
    // change where prefill KV comes from, never what gets generated.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const workload::RequestMetrics &m : result.metrics) {
        mix(m.id);
        mix(m.tokensGenerated);
    }
    result.outputDigest = h;

    double elapsed = ticksToSec(cluster.sim().now());
    result.elapsedSec = elapsed;
    result.tokensPerSec =
        elapsed > 0.0 ? static_cast<double>(tokens) / elapsed : 0.0;
    return result;
}

OverloadRunResult
runOverload(const OverloadRunConfig &cfg)
{
    Testbed tb(2, hw::TopologyKind::DirectP2P, cfg.seed);
    constexpr hw::GpuId consumerGpu = 0;
    constexpr hw::GpuId producerGpu = 1;

    ModelSpec consumerSpec = presetByName(cfg.consumerModel);
    ModelSpec producerSpec = presetByName(cfg.producerModel);

    core::AquaLib *producerLib = nullptr;
    serve::OffloadBackend *backend = nullptr;
    if (cfg.mode == ServeMode::CfsAqua) {
        producerLib = &tb.makeAquaLib(producerGpu,
                                      makeInformerFor(producerSpec));
        core::AquaLib &consumerLib = tb.makeAquaLib(consumerGpu);
        tb.assign(consumerGpu, producerGpu);
        backend = &tb.makeAquaBackend(consumerLib);
    } else {
        backend = &tb.makeDramBackend(consumerGpu);
    }

    std::unique_ptr<serve::SchedulerPolicy> policy;
    if (cfg.mode == ServeMode::VllmBaseline)
        policy = std::make_unique<serve::FcfsPolicy>();
    else
        policy = std::make_unique<serve::CfsPolicy>();

    serve::VllmEngineConfig engineCfg;
    // Prefix caching on: its byte-identity checks cover every swap
    // round trip, which is what the chaos acceptance criterion audits.
    engineCfg.prefixCache = true;
    if (cfg.maxBatch != 0)
        engineCfg.maxBatch = cfg.maxBatch;
    engineCfg.kvPoolBytesOverride = cfg.kvPoolBytes;
    if (cfg.controlled) {
        overload::AdmissionConfig ac;
        ac.safetyFactor = cfg.safetyFactor;
        engineCfg.admission = ac;
        engineCfg.brownout = overload::BrownoutConfig{};
    }
    if (cfg.precisionGovernor)
        engineCfg.precisionGovernor =
            overload::KvPrecisionGovernorConfig{};
    serve::VllmEngine consumer(tb.server(), consumerGpu, consumerSpec,
                               std::move(policy), *backend, engineCfg);
    if (cfg.traceLog)
        consumer.setTraceLog(cfg.traceLog);
    if (cfg.controlled && cfg.mode == ServeMode::CfsAqua) {
        // The circuit breaker needs somewhere to divert swaps.
        consumer.setFallbackBackend(&tb.makeDramBackend(consumerGpu));
    }

    Producer producer = makeProducer(tb, producerGpu,
                                     cfg.producerModel, 1.0,
                                     cfg.maxSimSeconds, producerLib);

    std::unique_ptr<fault::FaultInjector> inj;
    if (cfg.faults) {
        inj = std::make_unique<fault::FaultInjector>(
            tb.sim(), tb.server().topology(), tb.rest().router());
        if (producerLib) {
            inj->registerLib(*producerLib);
            // Dead-donor detection: a gpu_fail only turns into
            // emergency evacuation orders if the lease TTL machinery
            // is armed — heartbeats from the donor, expiry at the
            // coordinator.
            tb.coordinator().setLeaseTtl(msToTicks(20.0));
            producerLib->startHeartbeats(
                secToTicks(cfg.maxSimSeconds));
        }
        if (cfg.traceLog)
            inj->setTraceLog(cfg.traceLog);
        inj->arm(*cfg.faults);
    }

    workload::TraceBuilder traces(tb.sim().makeRandom());
    workload::SloSpec slo;
    slo.multiple = cfg.sloMultiple;
    slo.bestEffortFraction = cfg.bestEffortFraction;
    traces.setSlo(slo);
    std::vector<workload::Request> trace = traces.bursty(
        cfg.quietRate * cfg.loadMultiplier,
        cfg.burstRate * cfg.loadMultiplier, cfg.phaseSec,
        cfg.numRequests);
    driveTrace(tb.sim(), consumer, trace);

    runUntilDone(tb.sim(), cfg.maxSimSeconds, [&] {
        return consumer.finished().size() == trace.size();
    });

    OverloadRunResult res;
    res.metrics = consumer.finished();
    sortById(res.metrics);
    res.shed = consumer.shedCount();
    res.fallbackSwaps = consumer.fallbackSwapCount();
    res.sigMismatches = consumer.prefixEngineStats().sigMismatches;
    res.unfinished = trace.size() - consumer.finished().size();
    res.elapsedSec = ticksToSec(tb.sim().now());

    for (const auto &m : res.metrics) {
        if (m.shed || !m.finished())
            continue;
        if (m.metDeadline())
            ++res.deadlineMet;
        else
            ++res.deadlineMissed;
    }
    std::uint64_t served = res.deadlineMet + res.deadlineMissed;
    res.goodputPerSec =
        res.elapsedSec > 0.0
            ? static_cast<double>(res.deadlineMet) / res.elapsedSec
            : 0.0;
    res.attainment =
        served > 0
            ? static_cast<double>(res.deadlineMet) /
                  static_cast<double>(served)
            : 1.0;
    // Queueing delay in the queueing-theory sense: sojourn minus the
    // fault-free baseline latency (recovered from the stamped SLO,
    // deadline = arrival + sloMultiple x baseline). Under a fair
    // scheduler the admission queue stays empty and overload stretches
    // decode instead, so admit-minus-arrival would read zero.
    stats::Summary qd;
    if (cfg.sloMultiple > 0.0) {
        for (const auto &m : res.metrics) {
            if (m.shed || !m.finished() || m.deadline == 0)
                continue;
            double sojourn = ticksToSec(m.finish - m.arrival);
            double baseline =
                ticksToSec(m.deadline - m.arrival) / cfg.sloMultiple;
            qd.add(std::max(0.0, sojourn - baseline));
        }
    }
    if (!qd.empty()) {
        res.queueDelayP50Sec = qd.median();
        res.queueDelayP99Sec = qd.p99();
    }
    if (const auto *bc = consumer.brownoutController()) {
        res.brownoutTransitions = bc->stats().transitions;
        res.brownoutEscalations = bc->stats().escalations;
        Tick degraded =
            bc->timeAtLevel(overload::BrownoutLevel::ForceDramOffload,
                            tb.sim().now()) +
            bc->timeAtLevel(overload::BrownoutLevel::RejectNew,
                            tb.sim().now());
        res.secondsDegraded = ticksToSec(degraded);
    }
    if (const auto *pg = consumer.precisionGovernor()) {
        res.precisionReconfigs = pg->stats().reconfigurations;
        res.precisionDemotedPayloads = pg->stats().demotedPayloads;
        res.precisionSavedBytes = pg->stats().savedBytes;
    }
    return res;
}

TieringRunResult
runTiering(const TieringRunConfig &cfg)
{
    Testbed tb(2, hw::TopologyKind::DirectP2P, cfg.seed);
    constexpr hw::GpuId consumerGpu = 0;

    ModelSpec consumerSpec = presetByName(cfg.consumerModel);
    serve::DramBackend &backend = tb.makeDramBackend(consumerGpu);

    if (cfg.ssdDegradeFactor < 1.0)
        tb.server().topology().degradeSsd(cfg.ssdDegradeFactor);

    serve::VllmEngineConfig engineCfg;
    engineCfg.maxBatch = cfg.maxBatch;
    engineCfg.kvPoolBytesOverride = cfg.kvPoolBytes;
    engineCfg.prefixCache = cfg.prefixCache;
    serve::VllmEngine consumer(tb.server(), consumerGpu, consumerSpec,
                               std::make_unique<serve::CfsPolicy>(),
                               backend, engineCfg);
    if (cfg.traceLog)
        consumer.setTraceLog(cfg.traceLog);

    std::unique_ptr<tier::ParkAgent> agent;
    if (cfg.tiering) {
        tier::ParkAgentConfig ac;
        ac.tier.parkAfterSec = cfg.parkAfterSec;
        ac.tier.resumeSafetyFactor = cfg.resumeSafetyFactor;
        agent = std::make_unique<tier::ParkAgent>(tb.server(),
                                                  consumerGpu, ac);
        consumer.attachSessionTier(agent.get());
    }

    std::unique_ptr<fault::FaultInjector> inj;
    if (cfg.faults) {
        inj = std::make_unique<fault::FaultInjector>(
            tb.sim(), tb.server().topology(), tb.rest().router());
        if (cfg.traceLog)
            inj->setTraceLog(cfg.traceLog);
        inj->arm(*cfg.faults);
    }

    auto traces = std::make_shared<workload::TraceBuilder>(
        tb.sim().makeRandom());
    workload::IdleSpec idle;
    idle.coldFraction = cfg.coldFraction;
    idle.meanIdleSec = cfg.meanIdleSec;
    idle.minIdleSec = cfg.minIdleSec;
    traces->setIdle(idle);

    auto turnOf = std::make_shared<std::map<std::uint64_t,
                                            std::uint32_t>>();
    auto userOf = std::make_shared<std::map<std::uint64_t,
                                            std::uint32_t>>();
    auto promptOf = std::make_shared<std::map<std::uint64_t,
                                              std::uint32_t>>();
    auto gapOf = std::make_shared<std::map<std::uint64_t, double>>();
    auto coldIds = std::make_shared<std::set<std::uint64_t>>();

    std::vector<workload::Request> first =
        traces->chatbotFirstTurn(cfg.users);
    for (const workload::Request &r : first) {
        (*turnOf)[r.id] = 0;
        (*userOf)[r.id] = r.userId;
        (*promptOf)[r.id] = r.promptTokens;
        (*gapOf)[r.id] = r.idleGapSec;
    }
    driveTrace(tb.sim(), consumer, first);

    std::uint32_t turns = cfg.turns;
    consumer.onComplete([&, traces, turnOf, userOf, promptOf, gapOf,
                         coldIds](const workload::RequestMetrics &m) {
        std::uint32_t turn = (*turnOf)[m.id];
        std::uint32_t user = (*userOf)[m.id];
        if (turn + 1 >= turns)
            return;
        // A cold session's next turn arrives only after the idle gap;
        // warm sessions reply at chat pace.
        double gap = (*gapOf)[m.id];
        Tick comeBack = tb.sim().now() + secToTicks(gap);
        std::uint32_t history = (*promptOf)[m.id] + m.tokensGenerated;
        workload::Request next =
            traces->chatbotFollowUp(user, turn + 1, comeBack, history);
        if (gap > 0.0)
            next.coldResume = true;
        (*turnOf)[next.id] = turn + 1;
        (*userOf)[next.id] = user;
        (*promptOf)[next.id] = next.promptTokens;
        (*gapOf)[next.id] = next.idleGapSec;
        if (next.coldResume)
            coldIds->insert(next.id);
        tb.sim().queue().schedule(next.arrival, [&consumer, next] {
            consumer.submit(next);
        });
    });

    std::size_t expected = std::size_t(cfg.users) * cfg.turns;
    runUntilDone(tb.sim(), cfg.maxSimSeconds, [&] {
        return consumer.finished().size() == expected;
    });

    TieringRunResult res;
    res.metrics = consumer.finished();
    sortById(res.metrics);
    res.parks = consumer.parkCount();
    res.streamResumes = consumer.streamResumeCount();
    res.recomputeResumes = consumer.recomputeResumeCount();
    res.tierDemotions = consumer.tierDemotionCount();
    res.unfinished = expected > res.metrics.size()
                         ? expected - res.metrics.size()
                         : 0;
    res.elapsedSec = ticksToSec(tb.sim().now());

    stats::Summary coldTtft, warmTtft;
    for (const workload::RequestMetrics &m : res.metrics) {
        if (!m.started())
            continue;
        if (coldIds->count(m.id))
            coldTtft.add(m.ttftSec());
        else if ((*turnOf)[m.id] > 0)
            warmTtft.add(m.ttftSec());
    }
    if (!coldTtft.empty()) {
        res.coldTtftP50Sec = coldTtft.median();
        res.coldTtftP99Sec = coldTtft.p99();
    }
    if (!warmTtft.empty())
        res.warmTtftP50Sec = warmTtft.median();

    if (agent) {
        res.parkedAtEnd = agent->parkedCount();
        const tier::PrefetchStats &ps = agent->pipeline().stats();
        res.streamsStarted = ps.streamsStarted;
        res.streamsCompleted = ps.streamsCompleted;
        res.streamsCancelled = ps.streamsCancelled;
        res.bytesStreamed = ps.bytesStreamed;
        res.bytesWasted = ps.bytesWasted;
        if (!ps.overlapEfficiency.empty())
            res.overlapEfficiencyMean = ps.overlapEfficiency.mean();
    }
    res.ssdBytesRead = tb.server().ssd().bytesRead();
    res.ssdBytesWritten = tb.server().ssd().bytesWritten();
    res.tokensPerSec =
        res.elapsedSec > 0.0
            ? static_cast<double>(consumer.totalTokens()) /
                  res.elapsedSec
            : 0.0;
    return res;
}

std::int64_t
modelMemoryRequirement(const std::string &modelName, bool asProducer)
{
    ModelSpec spec = presetByName(modelName);
    hw::GpuSpec gpu = hw::a100_80g();
    model::PerfModel pm(spec, gpu);
    constexpr std::int64_t gb = 1000 * 1000 * 1000;

    if (!spec.isText()) {
        // Producers: spare HBM at the peak-throughput batch, minus
        // the batch-informer's safety margin.
        std::uint64_t footprint =
            pm.memoryFootprint(spec.maxUsefulBatch, 0);
        std::int64_t spare =
            static_cast<std::int64_t>(gpu.hbmBytes) -
            static_cast<std::int64_t>(footprint) - 2 * gb;
        return spare > 0 ? spare : 0;
    }
    if (asProducer) {
        // An LLM under light load keeps 5 GB of context and donates
        // the rest of its pool (§B llm-informer).
        std::int64_t pool =
            static_cast<std::int64_t>(gpu.hbmBytes) -
            static_cast<std::int64_t>(spec.weightBytes() +
                                      spec.runtimeOverheadBytes);
        std::int64_t spare = pool - 5 * gb;
        return spare > 0 ? spare : 0;
    }
    // Consumers: workload-derived deficits (§6.1 Table 1).
    if (spec.name == "OPT-30B") {
        // An 8k-token prompt's context minus the post-weights HBM.
        return -static_cast<std::int64_t>(spec.kvBytes(10000));
    }
    if (spec.name == "Codellama-34B") {
        // CFS keeps ~100 interactive contexts pageable.
        return -20 * gb;
    }
    // Mistral with LoRA adapters: 20 uncached 320 MB adapters plus
    // interactive context.
    return -8 * gb;
}

EndToEndResult
runEndToEnd(const EndToEndConfig &cfg)
{
    placer::PlacementInput input = makeClusterInput(
        cfg.numServers, cfg.gpusPerServer, cfg.split, cfg.seed);
    opt::MilpOptions milpOpt;
    milpOpt.maxSeconds = 3.0;
    placer::Placement placement =
        placer::AquaPlacer(milpOpt).place(input);
    if (!placement.valid())
        panic("runEndToEnd: placement infeasible");

    EndToEndResult result;
    for (const placer::ModelToPlace &m : input.models)
        result.totalConsumers += m.isConsumer();
    result.pairedConsumers = placement.pairs.size();

    // Evaluate each server independently and sequentially (§6,
    // "we use these servers as building blocks").
    for (std::size_t s = 0; s < cfg.numServers; ++s) {
        // Models on this server, in index order -> local GPU ids.
        std::vector<int> members;
        for (std::size_t m = 0; m < input.models.size(); ++m) {
            if (placement.server[m] == static_cast<int>(s))
                members.push_back(static_cast<int>(m));
        }
        if (members.empty())
            continue;
        auto localGpu = [&](int modelIdx) {
            for (std::size_t i = 0; i < members.size(); ++i) {
                if (members[i] == modelIdx)
                    return static_cast<hw::GpuId>(i);
            }
            panic("runEndToEnd: model not on server");
        };

        Testbed tb(std::max<std::size_t>(members.size(), 1),
                   hw::TopologyKind::DirectP2P, cfg.seed + s);
        workload::TraceBuilder traces(tb.sim().makeRandom());

        // Wire AQUA pairings for this server.
        std::map<int, core::AquaLib *> consumerLibs;
        if (cfg.withAqua) {
            for (const placer::Pairing &pair : placement.pairs) {
                if (pair.server != static_cast<int>(s))
                    continue;
                tb.assign(localGpu(pair.consumerModel),
                          localGpu(pair.producerModel));
            }
        }

        // Engines; keep them alive until the run completes.
        std::vector<std::unique_ptr<serve::BatchEngine>> batches;
        std::vector<std::unique_ptr<serve::VllmEngine>> llms;
        std::vector<std::unique_ptr<serve::FlexGenEngine>> flexes;
        std::vector<serve::FlexGenEngine *> longPrompts;
        std::vector<serve::VllmEngine *> loraEngines;
        std::vector<serve::VllmEngine *> cfsEngines;

        for (int modelIdx : members) {
            const placer::ModelToPlace &m = input.models[modelIdx];
            hw::GpuId gpu = localGpu(modelIdx);
            model::ModelSpec spec = presetByName(m.name);

            if (m.isProducer()) {
                core::AquaLib *lib = nullptr;
                if (cfg.withAqua) {
                    lib = &tb.makeAquaLib(gpu,
                                          makeInformerFor(spec));
                }
                if (spec.isText()) {
                    serve::VllmEngineConfig ecfg;
                    ecfg.informEveryIters = 4;
                    auto &backend = tb.makeDramBackend(gpu);
                    auto engine =
                        std::make_unique<serve::VllmEngine>(
                            tb.server(), gpu, spec,
                            std::make_unique<serve::FcfsPolicy>(),
                            backend, ecfg);
                    if (lib)
                        engine->attachAquaLib(lib);
                    driveTrace(tb.sim(), *engine,
                               traces.interactive(
                                   1.0,
                                   static_cast<std::size_t>(
                                       cfg.durationSec)));
                    llms.push_back(std::move(engine));
                } else {
                    auto engine =
                        std::make_unique<serve::BatchEngine>(
                            tb.server(), gpu, spec);
                    if (lib)
                        engine->attachAquaLib(lib);
                    driveTrace(tb.sim(), *engine,
                               traces.interactive(
                                   1.0,
                                   static_cast<std::size_t>(
                                       cfg.durationSec)));
                    batches.push_back(std::move(engine));
                }
                continue;
            }

            // Consumers: workload depends on the model (Table 1).
            serve::OffloadBackend *backend = nullptr;
            if (cfg.withAqua) {
                core::AquaLib &lib = tb.makeAquaLib(gpu);
                backend = &tb.makeAquaBackend(lib);
            } else {
                backend = &tb.makeDramBackend(gpu);
            }
            if (spec.name == "OPT-30B") {
                auto engine =
                    std::make_unique<serve::FlexGenEngine>(
                        tb.server(), gpu, spec, *backend);
                for (int n = 0; n < 20; ++n)
                    engine->submit(traces.longPrompt(8000, 2000));
                longPrompts.push_back(engine.get());
                flexes.push_back(std::move(engine));
            } else if (spec.name == "Codellama-34B") {
                serve::VllmEngineConfig ecfg;
                auto engine = std::make_unique<serve::VllmEngine>(
                    tb.server(), gpu, spec,
                    std::make_unique<serve::CfsPolicy>(), *backend,
                    ecfg);
                driveTrace(tb.sim(), *engine,
                           traces.codeSummary(2.0, 200));
                cfsEngines.push_back(engine.get());
                llms.push_back(std::move(engine));
            } else {
                // Mistral with LoRA adapters.
                serve::VllmEngineConfig ecfg;
                serve::LoraCacheConfig loraCfg;
                loraCfg.capacityBytes =
                    std::uint64_t(10) * (320 << 20);
                ecfg.lora = loraCfg;
                auto engine = std::make_unique<serve::VllmEngine>(
                    tb.server(), gpu, spec,
                    std::make_unique<serve::FcfsPolicy>(), *backend,
                    ecfg,
                    model::synthesizeAdapters(
                        "lora", std::uint64_t(320) << 20, 30));
                driveTrace(tb.sim(), *engine,
                           traces.lora(2.0, 200, 30));
                loraEngines.push_back(engine.get());
                llms.push_back(std::move(engine));
            }
        }

        tb.sim().runUntil(secToTicks(cfg.durationSec));

        for (serve::FlexGenEngine *engine : longPrompts) {
            result.longPromptTokens += engine->totalTokens();
            ++result.longPromptConsumers;
        }
        for (serve::VllmEngine *engine : loraEngines) {
            for (const auto &m : engine->finished())
                result.loraMetrics.push_back(m);
        }
        for (serve::VllmEngine *engine : cfsEngines) {
            for (const auto &m : engine->finished())
                result.cfsMetrics.push_back(m);
        }
        for (const auto &engine : batches)
            result.producerItems += engine->itemsGenerated();
    }
    return result;
}

placer::PlacementInput
makeClusterInput(std::size_t numServers, std::size_t gpusPerServer,
                 const std::string &split, std::uint64_t seed)
{
    placer::PlacementInput input;
    input.numServers = numServers;
    input.gpusPerServer = gpusPerServer;
    input.gpuMemBytes = hw::a100_80g().hbmBytes;

    Random rng(seed);
    std::size_t slots = numServers * gpusPerServer;

    struct Choice
    {
        const char *name;
        bool producer;
    };
    std::vector<Choice> palette;
    if (split == "balanced") {
        // Equal thirds image / audio / language (§6.1); the image and
        // audio models are producers, the LLM jobs are consumers.
        palette = {
            {"StableDiffusion", true}, {"StableDiffusion-XL", true},
            {"Kandinsky", true},       {"AudioGen", true},
            {"MusicGen", true},        {"OPT-30B", false},
            {"Codellama-34B", false},  {"Mistral-7B", false},
        };
        for (std::size_t i = 0; i < slots; ++i) {
            // Cycle modality: image, audio, text.
            std::size_t modality = i % 3;
            const Choice *pick = nullptr;
            switch (modality) {
              case 0: {
                static const std::size_t imgs[] = {0, 1, 2};
                pick = &palette[imgs[rng.uniformInt(0, 2)]];
                break;
              }
              case 1: {
                static const std::size_t auds[] = {3, 4};
                pick = &palette[auds[rng.uniformInt(0, 1)]];
                break;
              }
              default: {
                static const std::size_t txts[] = {5, 6, 7};
                pick = &palette[txts[rng.uniformInt(0, 2)]];
                break;
              }
            }
            placer::ModelToPlace m;
            m.name = pick->name;
            m.memBytes =
                modelMemoryRequirement(pick->name, pick->producer);
            input.models.push_back(m);
        }
    } else if (split == "llm-heavy") {
        // All LLMs: half light-load producers, half consumers.
        static const Choice producers[] = {
            {"Mistral-7B", true}, {"Llama-2-13B", true},
        };
        static const Choice consumers[] = {
            {"OPT-30B", false}, {"Codellama-34B", false},
            {"Mistral-7B", false},
        };
        for (std::size_t i = 0; i < slots; ++i) {
            const Choice *pick;
            if (i % 2 == 0)
                pick = &producers[rng.uniformInt(0, 1)];
            else
                pick = &consumers[rng.uniformInt(0, 2)];
            placer::ModelToPlace m;
            m.name = pick->name;
            m.memBytes =
                modelMemoryRequirement(pick->name, pick->producer);
            input.models.push_back(m);
        }
    } else {
        panic("makeClusterInput: unknown split '%s'", split.c_str());
    }
    return input;
}

} // namespace aqua::exp
