#include "exp/testbed.hh"

#include "cluster/registry_rest.hh"
#include "federation/federation_rest.hh"
#include "sim/logging.hh"

namespace aqua::exp {

using namespace aqua::sim;

Testbed::Testbed(std::size_t numGpus, hw::TopologyKind kind,
                 std::uint64_t seed)
    : simulation(std::make_unique<Simulation>(seed))
{
    simRef = simulation.get();
    srv = std::make_unique<hw::Server>(*simRef, numGpus,
                                       hw::a100_80g(), kind);
    restService = std::make_unique<core::CoordinatorRestService>(coord);
}

Testbed::Testbed(Simulation &sharedSim, std::size_t numGpus,
                 hw::TopologyKind kind)
    : simRef(&sharedSim)
{
    srv = std::make_unique<hw::Server>(*simRef, numGpus,
                                       hw::a100_80g(), kind);
    restService = std::make_unique<core::CoordinatorRestService>(coord);
}

std::unique_ptr<MultiServerCluster>
Testbed::makeMultiServerCluster(std::size_t nServers,
                                std::size_t gpusPerServer,
                                std::uint64_t seed,
                                hw::FabricConfig fabricConfig)
{
    return std::make_unique<MultiServerCluster>(
        nServers, gpusPerServer, seed, fabricConfig);
}

core::AquaLib &
Testbed::makeAquaLib(hw::GpuId gpu,
                     std::unique_ptr<core::Informer> informer,
                     core::AquaLibConfig config)
{
    libs.push_back(std::make_unique<core::AquaLib>(
        *srv, gpu, *restService, config, std::move(informer)));
    return *libs.back();
}

serve::DramBackend &
Testbed::makeDramBackend(hw::GpuId gpu, serve::DramBackendConfig config)
{
    auto backend =
        std::make_unique<serve::DramBackend>(*srv, gpu, config);
    serve::DramBackend &ref = *backend;
    backends.push_back(std::move(backend));
    return ref;
}

tier::SsdBackend &
Testbed::makeSsdBackend(hw::GpuId gpu, tier::SsdBackendConfig config)
{
    auto backend =
        std::make_unique<tier::SsdBackend>(*srv, gpu, config);
    tier::SsdBackend &ref = *backend;
    backends.push_back(std::move(backend));
    return ref;
}

serve::AquaBackend &
Testbed::makeAquaBackend(core::AquaLib &lib)
{
    auto backend = std::make_unique<serve::AquaBackend>(lib);
    serve::AquaBackend &ref = *backend;
    backends.push_back(std::move(backend));
    return ref;
}

void
Testbed::assign(hw::GpuId consumer, hw::GpuId producer)
{
    coord.assignProducer(consumer, producer);
}

cluster::PrefixRegistry &
Testbed::makePrefixRegistry()
{
    if (!registry) {
        registry = std::make_unique<cluster::PrefixRegistry>();
        registry->setAliveFn([this](hw::GpuId gpu) {
            return !srv->topology().gpuFailed(gpu);
        });
        cluster::bindClusterRoutes(restService->router(), *registry);
    }
    return *registry;
}

recovery::RecoveryManager &
Testbed::makeRecovery()
{
    if (!recoveryMgr) {
        coordJournal = std::make_unique<recovery::StateJournal>();
        recoveryMgr = std::make_unique<recovery::RecoveryManager>(
            *simulation, coord, *coordJournal);
        if (registry) {
            registryJournal =
                std::make_unique<recovery::StateJournal>();
            recoveryMgr->attachRegistry(*registry, *registryJournal);
        }
    }
    for (; survivorsRegistered < libs.size(); ++survivorsRegistered)
        recoveryMgr->registerSurvivor(*libs[survivorsRegistered]);
    return *recoveryMgr;
}

MultiServerCluster::MultiServerCluster(std::size_t nServers,
                                       std::size_t gpusPerServer,
                                       std::uint64_t seed,
                                       hw::FabricConfig fabricConfig)
    : simulation(std::make_unique<Simulation>(seed))
{
    if (nServers < 2)
        panic("MultiServerCluster needs at least 2 servers");
    hw::TopologyKind kind = gpusPerServer > 2
                                ? hw::TopologyKind::NvSwitch
                                : hw::TopologyKind::DirectP2P;
    for (std::size_t i = 0; i < nServers; ++i)
        servers.push_back(std::make_unique<Testbed>(
            *simulation, gpusPerServer, kind));
    wire = std::make_unique<hw::Fabric>(*simulation, nServers,
                                        fabricConfig);
    for (std::size_t i = 0; i < nServers; ++i)
        wire->attachServer(i, servers[i]->server().topology());
}

void
MultiServerCluster::makeFederation(federation::DirectoryConfig base)
{
    if (!directories.empty())
        return;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        federation::DirectoryConfig cfg = base;
        cfg.serverId = static_cast<std::uint32_t>(i);
        directories.push_back(
            std::make_unique<federation::FederationDirectory>(
                *simulation, servers[i]->makePrefixRegistry(), cfg));
        federation::bindFederationRoutes(
            servers[i]->rest().router(), *directories.back());
    }
    for (std::size_t i = 0; i < servers.size(); ++i)
        for (std::size_t j = 0; j < servers.size(); ++j)
            if (i != j)
                directories[i]->addPeer(
                    static_cast<std::uint32_t>(j),
                    servers[j]->rest().router());
}

federation::FederationDirectory &
MultiServerCluster::directory(std::size_t i)
{
    if (i >= directories.size())
        panic("directory(%zu): call makeFederation() first", i);
    return *directories[i];
}

void
MultiServerCluster::startAntiEntropy(Tick until)
{
    for (auto &d : directories)
        d->startAntiEntropy(until);
}

} // namespace aqua::exp
