#include "exp/testbed.hh"

#include "cluster/registry_rest.hh"

namespace aqua::exp {

using namespace aqua::sim;

Testbed::Testbed(std::size_t numGpus, hw::TopologyKind kind,
                 std::uint64_t seed)
    : simulation(std::make_unique<Simulation>(seed))
{
    srv = std::make_unique<hw::Server>(*simulation, numGpus,
                                       hw::a100_80g(), kind);
    restService = std::make_unique<core::CoordinatorRestService>(coord);
}

core::AquaLib &
Testbed::makeAquaLib(hw::GpuId gpu,
                     std::unique_ptr<core::Informer> informer,
                     core::AquaLibConfig config)
{
    libs.push_back(std::make_unique<core::AquaLib>(
        *srv, gpu, *restService, config, std::move(informer)));
    return *libs.back();
}

serve::DramBackend &
Testbed::makeDramBackend(hw::GpuId gpu, serve::DramBackendConfig config)
{
    auto backend =
        std::make_unique<serve::DramBackend>(*srv, gpu, config);
    serve::DramBackend &ref = *backend;
    backends.push_back(std::move(backend));
    return ref;
}

tier::SsdBackend &
Testbed::makeSsdBackend(hw::GpuId gpu, tier::SsdBackendConfig config)
{
    auto backend =
        std::make_unique<tier::SsdBackend>(*srv, gpu, config);
    tier::SsdBackend &ref = *backend;
    backends.push_back(std::move(backend));
    return ref;
}

serve::AquaBackend &
Testbed::makeAquaBackend(core::AquaLib &lib)
{
    auto backend = std::make_unique<serve::AquaBackend>(lib);
    serve::AquaBackend &ref = *backend;
    backends.push_back(std::move(backend));
    return ref;
}

void
Testbed::assign(hw::GpuId consumer, hw::GpuId producer)
{
    coord.assignProducer(consumer, producer);
}

cluster::PrefixRegistry &
Testbed::makePrefixRegistry()
{
    if (!registry) {
        registry = std::make_unique<cluster::PrefixRegistry>();
        registry->setAliveFn([this](hw::GpuId gpu) {
            return !srv->topology().gpuFailed(gpu);
        });
        cluster::bindClusterRoutes(restService->router(), *registry);
    }
    return *registry;
}

recovery::RecoveryManager &
Testbed::makeRecovery()
{
    if (!recoveryMgr) {
        coordJournal = std::make_unique<recovery::StateJournal>();
        recoveryMgr = std::make_unique<recovery::RecoveryManager>(
            *simulation, coord, *coordJournal);
        if (registry) {
            registryJournal =
                std::make_unique<recovery::StateJournal>();
            recoveryMgr->attachRegistry(*registry, *registryJournal);
        }
    }
    for (; survivorsRegistered < libs.size(); ++survivorsRegistered)
        recoveryMgr->registerSurvivor(*libs[survivorsRegistered]);
    return *recoveryMgr;
}

} // namespace aqua::exp
