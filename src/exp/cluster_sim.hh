/**
 * @file
 * Cluster-scale simulation model, executor-agnostic.
 *
 * ClusterSim models a scale-up cluster of NVLink domains serving an
 * open-loop LLM request stream: per-domain arrivals, GPU queueing
 * with analytic prefill/decode service times, a federated hot-prefix
 * layer (one cluster::PrefixRegistry per domain, consulted across
 * domains for remotely-homed chains), and live placement churn
 * (model arrival/departure/GPU failure handled by the domain-0
 * coordinator through placer::IncrementalPlacer and broadcast as
 * versioned assignment views).
 *
 * The model is written against sim::DomainNet only: domain state is
 * private to its domain's events, randomness comes from structurally
 * keyed domainRandom() streams, and every cross-domain interaction —
 * request forwarding to the hosting domain, remote prefix
 * lookup/reply, completion notifications, view broadcasts — is a
 * timestamped send. That is the contract that makes one ClusterSim
 * run bit-identically on the sequential twin and the sharded
 * executor; the differential equivalence harness
 * (tests/test_sharded_sim.cc, bench/abl_sharded_sim.cc) checks
 * exactly that, via per-domain event digests (always), full
 * per-domain trace logs (small runs) and canonical end-state stats.
 */

#ifndef AQUA_EXP_CLUSTER_SIM_HH
#define AQUA_EXP_CLUSTER_SIM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/prefix_registry.hh"
#include "hw/link.hh"
#include "json/json.hh"
#include "placer/incremental.hh"
#include "sim/sharded_sim.hh"
#include "trace/trace.hh"

namespace aqua::exp {

/** Tunables of the cluster model. */
struct ClusterSimConfig
{
    std::size_t numDomains = 8;
    std::size_t gpusPerDomain = 8;
    std::uint64_t seed = 1;

    /** Total requests across all domains. */
    std::uint64_t numRequests = 100000;
    /** Open-loop arrival rate per domain (requests/second). */
    double arrivalRatePerDomain = 2000.0;

    /** Initial models per domain ("balanced" split, placed by the
     *  full MILP before the clock starts). */
    std::size_t modelsPerDomain = 2;

    /** Probability a request opens with a hot shared prefix. */
    double prefixProb = 0.3;
    /** Distinct hot prefixes cluster-wide. */
    std::size_t prefixPool = 64;
    /** KV bytes of one hot prefix chain. */
    std::uint64_t prefixBytes = 64ull << 20;
    /** Prompt tokens a prefix hit skips. */
    std::uint32_t prefixTokens = 512;

    /** Placement churn events (arrival/departure/failure cycle). */
    std::size_t placementEvents = 12;
    /** Gap between churn events (simulated seconds). */
    double churnIntervalSec = 2.0;
    /**
     * Node budget of the placer's full solves. Cluster-scale
     * instances rarely prove optimality, so the budget is mostly
     * spent improving the greedy incumbent; keep it small — a full
     * solve runs inline in a simulation event, on both executors.
     */
    std::uint64_t placerNodeBudget = 500;

    /** Inter-server fabric: peak bandwidth (bytes/s) and latency. */
    double interBandwidth = 50e9;
    double interLatencyUs = 2.0;
    /** Software floor on any cross-domain message; the executor
     *  lookahead is interLatencyUs + rpcFloorUs. */
    double rpcFloorUs = 25.0;

    /** Service model: per-token costs (microseconds). */
    double prefillUsPerToken = 0.4;
    double decodeUsPerToken = 12.0;

    /** Capture full per-domain TraceLogs (small runs only). */
    bool captureTrace = false;

    /** Conservative lookahead implied by the fabric floor. */
    aqua::sim::Tick
    lookahead() const
    {
        return aqua::sim::usToTicks(interLatencyUs + rpcFloorUs);
    }
};

/** Deterministic end-state counters of one domain. */
struct ClusterDomainStats
{
    std::uint64_t arrivals = 0;
    std::uint64_t servedLocal = 0;
    std::uint64_t servedForwarded = 0;
    std::uint64_t forwardsOut = 0;
    std::uint64_t reforwards = 0;
    std::uint64_t completed = 0;
    std::uint64_t sumRctTicks = 0;
    std::uint64_t prefixHitsLocal = 0;
    std::uint64_t prefixHitsRemote = 0;
    std::uint64_t prefixMisses = 0;
    std::uint64_t prefixBytesStreamed = 0;
    std::uint64_t viewUpdates = 0;
    std::uint64_t viewVersion = 0;
    /** FNV-1a digest over the domain's ordered event tuples — the
     *  compact form of "identical per-domain trace sequences". */
    std::uint64_t digest = 14695981039346656037ULL;
};

/** Coordinator-side (domain 0) placement churn counters. */
struct ClusterPlacerStats
{
    std::uint64_t churnEvents = 0;
    std::uint64_t repairs = 0;
    std::uint64_t fullSolves = 0;
    std::uint64_t infeasible = 0;
    double finalObjective = 0.0;
    std::uint64_t liveModels = 0;
};

/**
 * The model proper. Construct over a DomainNet, setup(), run the
 * net's executor, then read stats.
 */
class ClusterSim
{
  public:
    ClusterSim(const ClusterSimConfig &config, sim::DomainNet &net);
    ~ClusterSim();

    ClusterSim(const ClusterSim &) = delete;
    ClusterSim &operator=(const ClusterSim &) = delete;

    /** Build initial placement, seed arrivals and churn events. */
    void setup();

    const ClusterDomainStats &stats(std::size_t domain) const;
    const ClusterPlacerStats &placerStats() const { return pstats; }

    /** Full trace of one domain as JSONL ("" unless captureTrace). */
    std::string traceJsonl(std::size_t domain) const;

    /** Per-domain digests, in domain order. */
    std::vector<std::uint64_t> digests() const;

    /**
     * Canonical end-state document: everything that must be
     * identical between executors (and nothing that may not be —
     * no wall-clock, no window counts).
     */
    json::Object statsJson() const;

  private:
    struct View;
    struct Domain;
    struct ClusterRequest;

    void scheduleNextArrival(std::size_t d);
    void onArrival(std::size_t d, ClusterRequest req);
    void routeOrServe(std::size_t d, ClusterRequest req);
    bool handleLocalPrefix(std::size_t d, const ClusterRequest &req);
    void beginService(std::size_t d, ClusterRequest req,
                      aqua::sim::Tick extraDelay, bool prefixHit,
                      bool viaForward);
    void handleRemoteLookup(std::size_t home, std::size_t asker,
                            ClusterRequest req);
    void completeAtOrigin(std::size_t d, const ClusterRequest &req,
                          aqua::sim::Tick finish);
    void runChurn(std::size_t index);
    void broadcastView();
    void applyView(std::size_t d, const View &view);
    void digestEvent(std::size_t d, aqua::sim::Tick t,
                     std::uint32_t code, std::uint64_t a,
                     std::uint64_t b);
    void trace(std::size_t d, aqua::sim::Tick t, const char *category,
               json::Object fields);

    ClusterSimConfig cfg;
    sim::DomainNet &net;
    hw::Link interLink;
    std::vector<std::unique_ptr<Domain>> domains;
    std::unique_ptr<placer::IncrementalPlacer> placerState;
    /** Coordinator churn stream (domain 0, stream 3), lazily built. */
    std::unique_ptr<sim::Random> churnRng;
    ClusterPlacerStats pstats;
    std::uint64_t viewVersion = 0;
};

/** One executor run of the model, reduced to comparable artifacts. */
struct ClusterRunResult
{
    json::Object stats;
    std::vector<std::uint64_t> digests;
    std::vector<std::string> traces;
    std::uint64_t eventsFired = 0;
    std::uint64_t crossMessages = 0;
    /** Sharded executor only (0 for sequential). */
    std::uint64_t windows = 0;
    unsigned threads = 1;
    /** Wall-clock; excluded from any equivalence comparison. */
    double wallSeconds = 0.0;
};

/** Run the model on the sequential single-queue twin. */
ClusterRunResult runClusterSequential(const ClusterSimConfig &cfg);

/** Run the model on the sharded executor (0 threads = auto). */
ClusterRunResult runClusterSharded(const ClusterSimConfig &cfg,
                                   unsigned threads = 0);

/**
 * Differential equivalence: identical per-domain digests, identical
 * traces (when captured) and identical canonical stats. @p why gets
 * a human-readable reason on mismatch.
 */
bool equivalentRuns(const ClusterRunResult &a,
                    const ClusterRunResult &b,
                    std::string *why = nullptr);

} // namespace aqua::exp

#endif // AQUA_EXP_CLUSTER_SIM_HH
