/**
 * @file
 * End-to-end experiment runners reproducing the paper's evaluation
 * (§6-§8, appendix A): each function assembles a testbed, places
 * models, drives the workload, and returns the series the
 * corresponding figure plots. Shared by bench/ binaries, examples and
 * the integration tests.
 */

#ifndef AQUA_EXP_EXPERIMENTS_HH
#define AQUA_EXP_EXPERIMENTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/fabric.hh"
#include "model/model_spec.hh"
#include "placer/placer.hh"
#include "serve/prefix_index.hh"
#include "stats/timeseries.hh"
#include "workload/request.hh"

namespace aqua::fault {
class FaultPlan;
}
namespace aqua::trace {
class TraceLog;
}

namespace aqua::exp {

/** How the consumer engine schedules and offloads. */
enum class ServeMode
{
    /** vLLM default: FCFS batching, DRAM offload. */
    VllmBaseline,
    /** CFS scheduling, still DRAM offload ("vLLM + CFS"). */
    CfsDram,
    /** CFS scheduling with AQUA TENSORS on a peer GPU. */
    CfsAqua,
};

/** Offload path for backends without a scheduling dimension. */
enum class OffloadMode
{
    Dram,
    Aqua,
    /** AQUA placement but naive per-chunk copies (no staging). */
    AquaUnstaged,
};

const char *serveModeName(ServeMode mode);
const char *offloadModeName(OffloadMode mode);

//
// CFS responsiveness (Fig. 1, Fig. 9, Fig. 15, Fig. 16).
//

struct CfsExperimentConfig
{
    ServeMode mode = ServeMode::VllmBaseline;
    double ratePerSec = 5.0;
    std::size_t numRequests = 100;
    /** Consumer LLM (Codellama-34B in §6.1). */
    std::string consumerModel = "Codellama-34B";
    /** Producer model sharing the server (Kandinsky in §6.1). */
    std::string producerModel = "Kandinsky";
    std::uint32_t sliceTokens = 5;
    std::uint64_t seed = 1;
    /** Hard stop (simulated); generous by default. */
    double maxSimSeconds = 4000.0;
};

struct CfsExperimentResult
{
    /** Per-request metrics, arrival order. */
    std::vector<workload::RequestMetrics> metrics;
    /** Producer items/s over the run (image/audio producers). */
    double producerThroughput = 0.0;
    std::uint64_t consumerSwapOuts = 0;
    std::uint64_t consumerSwapIns = 0;
};

CfsExperimentResult runCfsExperiment(const CfsExperimentConfig &cfg);

//
// Long-prompt throughput (Fig. 7, Fig. 18).
//

struct LongPromptConfig
{
    OffloadMode mode = OffloadMode::Dram;
    std::string consumerModel = "OPT-30B";
    std::string producerModel = "StableDiffusion";
    std::uint32_t promptTokens = 8000;
    double durationSec = 600.0; // "ten minutes"
    /** Consumer/producer pairs; >1 uses the 8-GPU NVSwitch server. */
    std::size_t pairs = 1;
    /** Ablation: share one producer across all consumers. */
    bool sharedProducer = false;
    std::uint64_t seed = 1;
};

struct LongPromptResult
{
    /** Tokens generated per consumer within the duration. */
    std::vector<std::uint64_t> tokensPerConsumer;
    std::uint64_t totalTokens = 0;
};

LongPromptResult runLongPrompt(const LongPromptConfig &cfg);

//
// LoRA adapter offloading (Fig. 8, Fig. 12, §A.2).
//

struct LoraExperimentConfig
{
    OffloadMode mode = OffloadMode::Dram;
    std::string baseModel = "Mistral-7B";
    /** Producer co-located on the server ("" = text producer). */
    std::string producerModel = "StableDiffusion";
    std::uint32_t numAdapters = 30;
    std::uint64_t adapterBytes = std::uint64_t(320) << 20;
    /** GPU bytes reserved for caching adapters. */
    std::uint64_t cacheBytes = std::uint64_t(10) * 320 << 20;
    double ratePerSec = 2.0;
    std::size_t numRequests = 200;
    std::uint64_t seed = 1;
    double maxSimSeconds = 7200.0;
};

struct LoraExperimentResult
{
    std::vector<workload::RequestMetrics> metrics;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
};

LoraExperimentResult runLoraExperiment(const LoraExperimentConfig &cfg);

//
// Elastic donate/reclaim (Fig. 10, Fig. 11).
//

struct ElasticExperimentConfig
{
    /** false runs the producer alone without AQUA (Fig. 11 baseline). */
    bool withAqua = true;
    std::string producerModel = "Llama-2-13B";
    std::string consumerModel = "OPT-30B";
    /** Consumer long-prompt start (the paper's ~150 s mark). */
    double consumerStartSec = 150.0;
    /** First load phase: 100 requests at 1 req/s. */
    double phase1RateGap = 150.0;
    /** Second phase start (the paper's 400 s mark): 250 @ 5 req/s. */
    double phase2StartSec = 400.0;
    double durationSec = 700.0;
    std::uint64_t seed = 1;
};

struct ElasticExperimentResult
{
    /** Producer-GPU free memory over time (donated counts as free). */
    std::vector<stats::Point> producerFreeMemory;
    /** Consumer tokens per 10 s bucket. */
    std::vector<stats::Point> consumerThroughput;
    /** Producer request metrics (for the Fig. 11 overhead view). */
    std::vector<workload::RequestMetrics> producerMetrics;
    std::uint64_t consumerTokens = 0;
};

ElasticExperimentResult
runElasticExperiment(const ElasticExperimentConfig &cfg);

//
// Resource-contention sweeps (Fig. 2) — analytic, via PerfModel.
//

struct ContentionPoint
{
    std::uint32_t batchSize = 0;
    double throughput = 0.0;
    double freeMemoryGb = 0.0;
};

std::vector<ContentionPoint>
contentionSweep(const std::string &modelName,
                const std::vector<std::uint32_t> &batchSizes);

//
// Chatbot (Fig. 13).
//

struct ChatbotConfig
{
    ServeMode mode = ServeMode::VllmBaseline;
    std::uint32_t users = 25;
    std::uint32_t turns = 4;
    std::string consumerModel = "Codellama-34B";
    std::string producerModel = "Kandinsky";
    std::uint64_t seed = 1;
    double maxSimSeconds = 20000.0;
    /** Copy-on-write prefix caching in the consumer engine. */
    bool prefixCache = false;
    /** Shared system prompt opening every conversation (tokens). */
    std::uint32_t systemPromptTokens = 0;
};

/** Prefix-cache effect counters (all zero when caching is off). */
struct PrefixCacheReport
{
    double hitRate = 0.0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t partialHits = 0;
    std::uint64_t collisions = 0;
    std::uint64_t evictions = 0;
    /** Prefill tokens skipped (served from cache). */
    std::uint64_t cachedTokens = 0;
    std::uint64_t cowForks = 0;
    /** Offload write bytes avoided by shared-group dedup. */
    std::uint64_t dedupSavedBytes = 0;
    /** Swap-in read bytes avoided by re-acquiring resident blocks. */
    std::uint64_t residentReuseBytes = 0;
    /** Byte-identity violations across offload round trips. */
    std::uint64_t sigMismatches = 0;
    /** Prefix-hit tokens by origin (satellite of the cluster
     *  registry: local HBM vs a peer GPU's copy vs host DRAM vs a
     *  chain streamed from another server over the fabric). */
    std::uint64_t hitTokensLocal = 0;
    std::uint64_t hitTokensRemote = 0;
    std::uint64_t hitTokensDram = 0;
    std::uint64_t hitTokensRemoteServer = 0;
};

struct ChatbotResult
{
    /** All request metrics with the issuing turn attached. */
    struct TurnMetric
    {
        std::uint32_t turn = 0;
        workload::RequestMetrics metrics;
    };
    std::vector<TurnMetric> metrics;

    PrefixCacheReport prefix;
    /** Live-KV high-water mark in the consumer's pool (bytes). */
    std::uint64_t peakLiveKvBytes = 0;
    /** Bytes moved to/from the offload backend. */
    std::uint64_t offloadWriteBytes = 0;
    std::uint64_t offloadReadBytes = 0;
    /** Consumer tokens per simulated second over the run. */
    double tokensPerSec = 0.0;
};

ChatbotResult runChatbot(const ChatbotConfig &cfg);

//
// Prefix-caching ablation: shared-prefix workload served with CoW
// block sharing on vs off (hit rate, HBM high-water mark, offload
// traffic, throughput).
//

struct PrefixAblationConfig
{
    bool prefixCache = true;
    /** Cap on cache-only blocks as a pool fraction (1.0 = uncapped). */
    double maxCacheShare = 1.0;
    /** Cache-only block victim selection (LRU vs cost-aware). */
    serve::EvictionPolicy eviction = serve::EvictionPolicy::Lru;
    ServeMode mode = ServeMode::CfsAqua;
    double ratePerSec = 6.0;
    std::size_t numRequests = 120;
    /** Shared preamble (system prompt) length per group. */
    std::uint32_t prefixTokens = 768;
    /** Distinct system prompts in play. */
    std::uint32_t numGroups = 2;
    std::string consumerModel = "Codellama-34B";
    std::string producerModel = "Kandinsky";
    /** KV storage precision (fp16 = exact legacy behaviour). */
    model::KvPrecision kvPrecision = model::KvPrecision::Fp16;
    /** Sparse-attention fraction of resident KV read per decode
     *  step (1.0 = dense, exact legacy behaviour). */
    double sparseReadFraction = 1.0;
    std::uint64_t seed = 1;
    double maxSimSeconds = 8000.0;
};

struct PrefixAblationResult
{
    std::vector<workload::RequestMetrics> metrics;
    PrefixCacheReport prefix;
    std::uint64_t peakLiveKvBytes = 0;
    std::uint64_t offloadWriteBytes = 0;
    std::uint64_t offloadReadBytes = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    double tokensPerSec = 0.0;
};

PrefixAblationResult runPrefixAblation(const PrefixAblationConfig &cfg);

//
// Cluster prefix registry: N consumer engines on one NVSwitch server
// share a hot prompt preamble. With the registry on, exactly one
// engine keeps the preamble's KV resident (the chain's *home*) and
// the others borrow or copy it over NVLink; with it off, every engine
// rematerialises and retains its own copy. The chaos variant kills
// the home GPU mid-run and audits recovery.
//

struct ClusterPrefixConfig
{
    /** Consumer engines (one per GPU, 2-8 on the NVSwitch server). */
    std::size_t consumers = 4;
    /** false = per-engine prefix caching only (the baseline). */
    bool registry = true;
    /** true = multi-turn chatbot with cross-engine turn routing;
     *  false = single-shot shared-preamble trace. */
    bool chatbot = false;
    double ratePerSec = 4.0;
    std::size_t numRequests = 96;
    /** Shared preamble (system prompt) length, tokens. */
    std::uint32_t prefixTokens = 768;
    /** Distinct preambles in play. */
    std::uint32_t numGroups = 1;
    /** Chatbot users and turns (chatbot = true). */
    std::uint32_t users = 16;
    std::uint32_t turns = 3;
    /** Max chain length served in place from the home GPU; longer
     *  chains are copied into local blocks. */
    std::uint32_t borrowMaxBlocks = 4;
    /** Cache-only block victim selection. */
    serve::EvictionPolicy eviction = serve::EvictionPolicy::Lru;
    /** Chaos: permanently kill the preamble's home GPU (gpu 0)
     *  mid-run and audit recovery on the survivors. */
    bool chaos = false;
    double chaosAtSec = 40.0;
    /** Arrivals later than chaosAtSec - chaosDrainSec avoid gpu 0,
     *  so the dying engine is idle when its memory goes dark. */
    double chaosDrainSec = 30.0;
    /** KV storage precision on every engine (fp16 = legacy). */
    model::KvPrecision kvPrecision = model::KvPrecision::Fp16;
    /** Sparse-attention read fraction; < 1.0 also raises the
     *  borrow-vs-copy crossover (borrowed chains cost less). */
    double sparseReadFraction = 1.0;
    std::string consumerModel = "Codellama-34B";
    std::uint64_t seed = 1;
    double maxSimSeconds = 8000.0;
    /** Optional external log capturing fault/registry events. */
    trace::TraceLog *traceLog = nullptr;
};

struct ClusterPrefixResult
{
    /** All finished metrics across engines, id order. */
    std::vector<workload::RequestMetrics> metrics;
    /** Requests submitted but never finished (must be 0). */
    std::uint64_t unfinished = 0;

    /** Prefill tokens served from cache (local + remote), summed. */
    std::uint64_t cachedTokens = 0;
    /** Prompt tokens across finished requests. */
    std::uint64_t promptTokens = 0;
    /** cachedTokens / promptTokens (the aggregate hit rate). */
    double aggregateHitRate = 0.0;

    /** Engine-side registry counters, summed over engines. */
    std::uint64_t registryHits = 0;
    std::uint64_t registryMisses = 0;
    std::uint64_t borrowAdmissions = 0;
    std::uint64_t copyAdmissions = 0;
    std::uint64_t remoteCopyBytes = 0;
    std::uint64_t remoteDecodeReadBytes = 0;
    std::uint64_t remoteBrokenChains = 0;
    /** Byte-identity violations (offload + cluster; must be 0). */
    std::uint64_t sigMismatches = 0;
    std::uint64_t clusterSigMismatches = 0;
    /** Prefix-hit tokens by origin, summed over engines. */
    std::uint64_t hitTokensLocal = 0;
    std::uint64_t hitTokensRemote = 0;
    std::uint64_t hitTokensDram = 0;
    std::uint64_t hitTokensRemoteServer = 0;

    /** Preamble KV bytes resident across all engines at the end. */
    std::uint64_t residentPrefixBytes = 0;
    /** Bytes of one resident copy of every preamble. */
    std::uint64_t singleCopyBytes = 0;
    /** residentPrefixBytes / singleCopyBytes (1.0 = one copy). */
    double residencyFactor = 0.0;

    /** Registry-side counters (zero when registry = false). */
    std::uint64_t regPublishes = 0;
    std::uint64_t regReplicaPublishes = 0;
    std::uint64_t regCollisions = 0;
    std::uint64_t regPromotions = 0;
    std::uint64_t regInvalidations = 0;
    std::uint64_t regBrokenPins = 0;
    /** Leases still outstanding after the drain (must be 0). */
    std::uint64_t activePins = 0;

    double tokensPerSec = 0.0;
    double elapsedSec = 0.0;
};

ClusterPrefixResult runClusterPrefix(const ClusterPrefixConfig &cfg);

//
// Cross-server prefix federation: N servers (one consumer engine
// each) on a shared fabric serve traffic opening with the same hot
// preamble. Without federation every server re-prefills the preamble
// from scratch; with it the first server's copy is advertised through
// the federation directories and each other server streams it over
// the fabric at most once (the stream-vs-recompute cost model may
// instead choose local re-prefill when the wire is degraded or
// congested). The chaos variant kills the origin server's home GPU
// and degrades the fabric mid-run.
//

struct FederationRunConfig
{
    /** Servers on the fabric (one consumer engine each, on gpu 0). */
    std::size_t servers = 3;
    std::size_t gpusPerServer = 2;
    /** false = siloed per-server registries (the baseline). */
    bool federation = true;
    /** true = multi-turn chatbot whose turns hop servers, so the
     *  re-sent history is only reachable through federation. */
    bool chatbot = false;
    double ratePerSec = 3.0;
    std::size_t numRequests = 36;
    /** Shared preamble (system prompt) length, tokens. */
    std::uint32_t prefixTokens = 768;
    /** Distinct preambles in play. */
    std::uint32_t numGroups = 1;
    /** Chatbot users and turns (chatbot = true). */
    std::uint32_t users = 9;
    std::uint32_t turns = 3;
    /** Cluster-registry borrow cap inside each server. */
    std::uint32_t borrowMaxBlocks = 4;
    /** Per-home admission cap on concurrent remote consumers. */
    std::uint32_t maxRemoteConsumers = 2;
    /** Cost-model margin: stream only when safetyFactor x estimate
     *  beats local re-prefill. */
    double federationSafetyFactor = 1.2;
    /** Static wire degradation applied before the run, in (0, 1];
     *  the cost-model sweep's knob. */
    double fabricDegradation = 1.0;
    hw::FabricConfig fabric;
    /** Chaos: kill the origin server's home GPU permanently and
     *  degrade the fabric for a window mid-run. */
    bool chaos = false;
    double chaosAtSec = 20.0;
    /** Arrivals later than chaosAtSec - chaosDrainSec avoid the dying
     *  server, so its engine is idle when the GPU goes dark. */
    double chaosDrainSec = 15.0;
    double fabricDegradeAtSec = 4.0;
    double fabricDegradeForSec = 30.0;
    double fabricDegradeFactor = 0.05;
    /** KV storage precision on every engine (fp16 = legacy). */
    model::KvPrecision kvPrecision = model::KvPrecision::Fp16;
    std::string consumerModel = "Codellama-34B";
    std::uint64_t seed = 1;
    double maxSimSeconds = 8000.0;
    /** Optional external log capturing fault/federation events. */
    trace::TraceLog *traceLog = nullptr;
};

struct FederationRunResult
{
    /** All finished metrics across servers, id order. */
    std::vector<workload::RequestMetrics> metrics;
    /** Requests submitted but never finished (must be 0). */
    std::uint64_t unfinished = 0;

    std::uint64_t promptTokens = 0;
    /** Prompt tokens outside the shared preamble (per-request tails;
     *  promptTokens - tailTokens - cachedTokens bounds the preamble
     *  tokens actually re-prefilled across the cluster). */
    std::uint64_t tailTokens = 0;
    std::uint64_t cachedTokens = 0;
    double aggregateHitRate = 0.0;
    /** Prefix-hit tokens by origin, summed over servers. */
    std::uint64_t hitTokensLocal = 0;
    std::uint64_t hitTokensRemote = 0;
    std::uint64_t hitTokensDram = 0;
    std::uint64_t hitTokensRemoteServer = 0;
    /** Byte-identity violations (must be 0). */
    std::uint64_t sigMismatches = 0;
    std::uint64_t clusterSigMismatches = 0;

    /** Engine-side federation counters, summed over servers. */
    std::uint64_t fedHits = 0;
    std::uint64_t fedMisses = 0;
    std::uint64_t fedStreamDecisions = 0;
    std::uint64_t fedRecomputeDecisions = 0;
    std::uint64_t fedFetchRefusals = 0;
    std::uint64_t fedStreamsCompleted = 0;
    std::uint64_t fedStreamsInvalidated = 0;
    std::uint64_t fedStreamBytes = 0;

    /** Directory counters, summed over servers. */
    std::uint64_t dirAdvertsPublished = 0;
    std::uint64_t dirTombstones = 0;
    std::uint64_t dirAdvertsApplied = 0;
    std::uint64_t dirAdvertsDropped = 0;
    std::uint64_t dirAntiEntropyRounds = 0;
    std::uint64_t dirFetchGrants = 0;
    std::uint64_t dirFetchCapRejects = 0;
    std::uint64_t dirFetchValidated = 0;
    std::uint64_t dirFetchInvalidated = 0;

    /** Fabric counters. */
    std::uint64_t fabricTransfers = 0;
    std::uint64_t fabricBytesMoved = 0;
    std::uint64_t fabricQueueTicks = 0;

    /**
     * FNV digest over the finished requests' (id, tokensGenerated),
     * id order. Output equivalence is timing-free: a fault-free
     * federated run must digest identically to the same run with
     * federation disabled, and to its chaos twin.
     */
    std::uint64_t outputDigest = 0;

    double tokensPerSec = 0.0;
    double elapsedSec = 0.0;
};

FederationRunResult runFederation(const FederationRunConfig &cfg);

//
// Overload control: deadline-stamped bursty traffic at a load
// multiple, served with the overload controllers (deadline-aware
// admission + graceful brownout + backpressure) on vs off. The
// controlled configuration should hold goodput and bounded queue
// delay where the uncontrolled baseline collapses.
//

struct OverloadRunConfig
{
    ServeMode mode = ServeMode::CfsAqua;
    /** Admission control + brownout ladder + DRAM circuit breaker. */
    bool controlled = false;
    /** Scales both burst-phase arrival rates (x1 = nominal load). */
    double loadMultiplier = 1.0;
    double quietRate = 0.5;
    double burstRate = 1.5;
    double phaseSec = 15.0;
    std::size_t numRequests = 150;
    /** Engine capacity, deliberately small so the sweep saturates
     *  within a short trace: decode batch cap (0 = engine default)
     *  and explicit KV pool bytes (0 = derived from spare HBM). */
    std::uint32_t maxBatch = 16;
    std::uint64_t kvPoolBytes = 4ull * 1000 * 1000 * 1000;
    /** Deadline = arrival + sloMultiple x fault-free baseline. */
    double sloMultiple = 3.0;
    /** Fraction of requests submitted best-effort (no deadline). */
    double bestEffortFraction = 0.2;
    /** Admission safety factor (prediction pessimism). */
    double safetyFactor = 1.2;
    /** Pressure-driven KV precision governor (quantize-before-evict):
     *  demotes cold KV leaving HBM to narrower precision as the pool
     *  drains / the brownout ladder escalates. */
    bool precisionGovernor = false;
    std::string consumerModel = "Codellama-34B";
    std::string producerModel = "Kandinsky";
    std::uint64_t seed = 1;
    double maxSimSeconds = 4000.0;
    /** Optional chaos: injected against the donor while overloaded. */
    const fault::FaultPlan *faults = nullptr;
    /** Optional external log capturing shed/brownout/fault events. */
    trace::TraceLog *traceLog = nullptr;
};

struct OverloadRunResult
{
    /** Per-request metrics, id order (shed requests included). */
    std::vector<workload::RequestMetrics> metrics;
    /** Requests dropped by admission control / brownout. */
    std::uint64_t shed = 0;
    /** Swaps diverted to the DRAM fallback by the circuit breaker. */
    std::uint64_t fallbackSwaps = 0;
    /** Requests that finished serving and met their deadline. */
    std::uint64_t deadlineMet = 0;
    /** Served completions that missed their deadline. */
    std::uint64_t deadlineMissed = 0;
    /** Deadline-met completions per simulated second. */
    double goodputPerSec = 0.0;
    /** Deadline attainment over served completions, [0, 1]. */
    double attainment = 0.0;
    /** Queueing-delay percentiles over served deadline-bearing
     *  requests: sojourn minus the fault-free baseline latency the
     *  stamped SLO implies (captures fair-scheduler overload, which
     *  stretches decode rather than pooling an admission queue). */
    double queueDelayP50Sec = 0.0;
    double queueDelayP99Sec = 0.0;
    /** Brownout ladder activity (zero when uncontrolled). */
    std::uint64_t brownoutTransitions = 0;
    std::uint64_t brownoutEscalations = 0;
    /** KV precision governor activity (zero when disabled). */
    std::uint64_t precisionReconfigs = 0;
    std::uint64_t precisionDemotedPayloads = 0;
    std::uint64_t precisionSavedBytes = 0;
    /** Seconds spent at or above ForceDramOffload. */
    double secondsDegraded = 0.0;
    /** Byte-identity violations on the offload path (must be 0). */
    std::uint64_t sigMismatches = 0;
    /** Requests neither finished nor shed at the horizon (a nonzero
     *  value means stuck/deadlocked sequences). */
    std::uint64_t unfinished = 0;
    /** Wall (simulated) seconds the run took to drain. */
    double elapsedSec = 0.0;
};

OverloadRunResult runOverload(const OverloadRunConfig &cfg);

//
// Storage tiering: a chatbot population whose sessions go cold
// mid-conversation. With the SSD tier attached, cold sessions park
// their KV on the drive and the follow-up turn streams it back
// through the prefetch pipeline when that beats re-prefilling; the
// baseline re-prefills every cold context from scratch.
//

struct TieringRunConfig
{
    /** Chat sessions. */
    std::uint32_t users = 24;
    /** Turns per session (turn boundaries are where sessions cool). */
    std::uint32_t turns = 2;
    /** Fraction of turns after which the user goes idle. */
    double coldFraction = 1.0;
    /** Idle gap distribution (exponential mean + floor), seconds. */
    double meanIdleSec = 60.0;
    double minIdleSec = 40.0;
    /** Attach the SSD tier (false = cold turns always re-prefill). */
    bool tiering = true;
    /** Sessions idling past this park their KV on the SSD. */
    double parkAfterSec = 30.0;
    /** Streaming must beat recompute by this factor to be chosen. */
    double resumeSafetyFactor = 1.1;
    /** Static media degradation applied before the run (1 = healthy);
     *  shifts the stream-vs-recompute crossover. */
    double ssdDegradeFactor = 1.0;
    std::uint32_t maxBatch = 16;
    std::uint64_t kvPoolBytes = 6ull * 1000 * 1000 * 1000;
    /** Prefix caching (off by default so the resume comparison is
     *  purely stream-vs-recompute, not cache-hit luck). */
    bool prefixCache = false;
    std::string consumerModel = "Codellama-34B";
    std::uint64_t seed = 1;
    double maxSimSeconds = 4000.0;
    /** Optional chaos (ssd_degrade / ssd_fail mid-run). */
    const fault::FaultPlan *faults = nullptr;
    trace::TraceLog *traceLog = nullptr;
};

struct TieringRunResult
{
    /** Per-request metrics, id order. */
    std::vector<workload::RequestMetrics> metrics;

    /** Engine-side tier activity. */
    std::uint64_t parks = 0;
    std::uint64_t streamResumes = 0;
    std::uint64_t recomputeResumes = 0;
    std::uint64_t tierDemotions = 0;
    /** Sessions still parked when the run drained. */
    std::uint64_t parkedAtEnd = 0;

    /** TTFT of cold-resume turns vs. turns that stayed warm. */
    double coldTtftP50Sec = 0.0;
    double coldTtftP99Sec = 0.0;
    double warmTtftP50Sec = 0.0;

    /** Prefetch pipeline accounting (zero without tiering). */
    std::uint64_t streamsStarted = 0;
    std::uint64_t streamsCompleted = 0;
    std::uint64_t streamsCancelled = 0;
    std::uint64_t bytesStreamed = 0;
    std::uint64_t bytesWasted = 0;
    double overlapEfficiencyMean = 0.0;

    /** Media traffic. */
    std::uint64_t ssdBytesRead = 0;
    std::uint64_t ssdBytesWritten = 0;

    double tokensPerSec = 0.0;
    /** Requests unfinished at the horizon (must be 0). */
    std::uint64_t unfinished = 0;
    double elapsedSec = 0.0;
};

TieringRunResult runTiering(const TieringRunConfig &cfg);

//
// Placement inputs (§6.1, Fig. 4, Fig. 14).
//

/**
 * Build the §6.1 cluster: @p numServers servers of @p gpusPerServer
 * GPUs filled with models sampled (with replacement) from the given
 * split.
 *
 * @param split "balanced" = equal thirds image/audio/text;
 *              "llm-heavy" = all LLMs with varying workloads
 *              (half producers, half consumers).
 */
placer::PlacementInput
makeClusterInput(std::size_t numServers, std::size_t gpusPerServer,
                 const std::string &split, std::uint64_t seed = 1);

/**
 * Memory requirement R_m of a model preset under its evaluation
 * workload: positive surplus for producers, negative deficit for
 * consumers (§4 "these inputs should be derived experimentally").
 */
std::int64_t modelMemoryRequirement(const std::string &modelName,
                                    bool asProducer);

//
// End-to-end cluster evaluation (§6.1): place 16 models over 8x2-GPU
// servers with AQUA-PLACER, then run every server's workload. As in
// the paper, servers are evaluated "independently and sequentially"
// using the 2-GPU testbed as the building block.
//

struct EndToEndConfig
{
    /** "balanced" or "llm-heavy" (§6.1). */
    std::string split = "balanced";
    /** false = all consumers offload to DRAM (the baseline). */
    bool withAqua = true;
    std::size_t numServers = 8;
    std::size_t gpusPerServer = 2;
    double durationSec = 300.0;
    std::uint64_t seed = 1;
};

struct EndToEndResult
{
    /** Tokens generated by OPT-30B long-prompt consumers. */
    std::uint64_t longPromptTokens = 0;
    std::size_t longPromptConsumers = 0;
    /** Finished metrics from Mistral LoRA consumers. */
    std::vector<workload::RequestMetrics> loraMetrics;
    /** Finished metrics from Codellama CFS consumers. */
    std::vector<workload::RequestMetrics> cfsMetrics;
    /** Items generated by image/audio producers. */
    std::uint64_t producerItems = 0;
    /** Consumers that got a producer pairing from the placer. */
    std::size_t pairedConsumers = 0;
    std::size_t totalConsumers = 0;
};

EndToEndResult runEndToEnd(const EndToEndConfig &cfg);

} // namespace aqua::exp

#endif // AQUA_EXP_EXPERIMENTS_HH
