#include "stats/timeseries.hh"

#include "sim/logging.hh"

namespace aqua::stats {

using aqua::sim::Tick;
using aqua::sim::panic;

void
TimeSeries::record(Tick when, double value)
{
    if (!data.empty() && when < data.back().when)
        panic("TimeSeries::record: time went backwards");
    data.push_back(Point{when, value});
}

double
TimeSeries::last() const
{
    if (data.empty())
        panic("TimeSeries::last on empty series");
    return data.back().value;
}

std::vector<Point>
TimeSeries::resampleMean(Tick bucket, Tick from, Tick to) const
{
    if (bucket == 0)
        panic("TimeSeries::resampleMean: zero bucket width");
    std::vector<Point> out;
    std::size_t idx = 0;
    // Skip observations before the range but remember the latest one so
    // the first empty bucket can hold its value.
    double held = 0.0;
    bool haveHeld = false;
    while (idx < data.size() && data[idx].when < from) {
        held = data[idx].value;
        haveHeld = true;
        ++idx;
    }
    for (Tick start = from; start < to; start += bucket) {
        Tick end = start + bucket;
        double sum = 0.0;
        std::size_t n = 0;
        while (idx < data.size() && data[idx].when < end) {
            sum += data[idx].value;
            ++n;
            ++idx;
        }
        if (n > 0) {
            held = sum / static_cast<double>(n);
            haveHeld = true;
        }
        out.push_back(Point{start, haveHeld ? held : 0.0});
    }
    return out;
}

std::vector<Point>
TimeSeries::resampleSum(Tick bucket, Tick from, Tick to) const
{
    if (bucket == 0)
        panic("TimeSeries::resampleSum: zero bucket width");
    std::vector<Point> out;
    std::size_t idx = 0;
    while (idx < data.size() && data[idx].when < from)
        ++idx;
    for (Tick start = from; start < to; start += bucket) {
        Tick end = start + bucket;
        double sum = 0.0;
        while (idx < data.size() && data[idx].when < end) {
            sum += data[idx].value;
            ++idx;
        }
        out.push_back(Point{start, sum});
    }
    return out;
}

} // namespace aqua::stats
