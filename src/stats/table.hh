/**
 * @file
 * Aligned console table printer used by the benchmark harnesses to
 * emit the rows/series corresponding to the paper's tables and figures.
 */

#ifndef AQUA_STATS_TABLE_HH
#define AQUA_STATS_TABLE_HH

#include <string>
#include <vector>

namespace aqua::stats {

/**
 * Simple column-aligned text table.
 *
 * Cells are strings; numeric convenience overloads format with a fixed
 * precision. Rendering pads every column to its widest cell.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; its width must match the header. */
    void addRow(std::vector<std::string> cells);

    /** Start a new row built cell-by-cell via cell(). */
    Table &newRow();
    Table &cell(const std::string &s);
    Table &cell(const char *s);
    Table &cell(double v, int precision = 3);
    Table &cell(std::int64_t v);
    Table &cell(std::uint64_t v);
    Table &cell(int v);

    std::size_t rows() const { return body.size(); }

    /** Render with a separator under the header. */
    std::string render() const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    std::string renderCsv() const;

  private:
    void finishRow();

    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
    std::vector<std::string> current;
    bool building = false;
};

} // namespace aqua::stats

#endif // AQUA_STATS_TABLE_HH
