/**
 * @file
 * Timestamped series for the figure harnesses (free-memory timelines,
 * throughput-over-time plots, saw-tooth RCT traces).
 */

#ifndef AQUA_STATS_TIMESERIES_HH
#define AQUA_STATS_TIMESERIES_HH

#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace aqua::stats {

/** One (time, value) observation. */
struct Point
{
    aqua::sim::Tick when;
    double value;
};

/**
 * Append-only timestamped series.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string name = "") : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /** Record a value at a simulated time. */
    void record(aqua::sim::Tick when, double value);

    const std::vector<Point> &points() const { return data; }
    std::size_t size() const { return data.size(); }
    bool empty() const { return data.empty(); }

    /** Last recorded value; panics when empty. */
    double last() const;

    /**
     * Resample into fixed-width buckets by averaging the values that
     * fall into each bucket. Buckets with no observations repeat the
     * previous bucket's value (step-hold), which matches how the
     * paper's timeline plots are drawn.
     *
     * @param bucket Bucket width in ticks.
     * @param from Start of the first bucket.
     * @param to End of the resampled range.
     */
    std::vector<Point> resampleMean(aqua::sim::Tick bucket,
                                    aqua::sim::Tick from,
                                    aqua::sim::Tick to) const;

    /**
     * Resample into fixed-width buckets by summing the values in each
     * bucket (e.g. tokens generated per interval). Empty buckets are 0.
     */
    std::vector<Point> resampleSum(aqua::sim::Tick bucket,
                                   aqua::sim::Tick from,
                                   aqua::sim::Tick to) const;

  private:
    std::string _name;
    std::vector<Point> data;
};

} // namespace aqua::stats

#endif // AQUA_STATS_TIMESERIES_HH
