#include "stats/histogram.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace aqua::stats {

using aqua::sim::panic;

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo(lo), hi(hi), counts(bins, 0)
{
    if (bins == 0)
        panic("Histogram: need at least one bin");
    if (!(lo < hi))
        panic("Histogram: lo must be < hi");
}

void
Histogram::add(double v)
{
    ++total;
    if (v < lo) {
        ++below;
        return;
    }
    if (v >= hi) {
        ++above;
        return;
    }
    double width = (hi - lo) / static_cast<double>(counts.size());
    auto idx = static_cast<std::size_t>((v - lo) / width);
    if (idx >= counts.size())
        idx = counts.size() - 1; // guards fp rounding at the edge
    ++counts[idx];
}

double
Histogram::binLow(std::size_t i) const
{
    double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + width * static_cast<double>(i);
}

double
Histogram::cumulativeFraction(std::size_t i) const
{
    std::uint64_t inRange = total - below - above;
    if (inRange == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t b = 0; b <= i && b < counts.size(); ++b)
        acc += counts[b];
    return static_cast<double>(acc) / static_cast<double>(inRange);
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 1;
    for (std::uint64_t c : counts)
        peak = std::max(peak, c);
    std::string out;
    char buf[96];
    for (std::size_t i = 0; i < counts.size(); ++i) {
        auto bar = static_cast<std::size_t>(
            static_cast<double>(counts[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        std::snprintf(buf, sizeof(buf), "%12.4g | ", binLow(i));
        out += buf;
        out.append(bar, '#');
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(counts[i]));
        out += buf;
    }
    return out;
}

} // namespace aqua::stats
