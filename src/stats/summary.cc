#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace aqua::stats {

using aqua::sim::panic;

void
Summary::add(double v)
{
    samples.push_back(v);
    sortedValid = false;
}

void
Summary::add(const std::vector<double> &vs)
{
    samples.insert(samples.end(), vs.begin(), vs.end());
    sortedValid = false;
}

const std::vector<double> &
Summary::sorted() const
{
    if (!sortedValid) {
        sortedCache = samples;
        std::sort(sortedCache.begin(), sortedCache.end());
        sortedValid = true;
    }
    return sortedCache;
}

double
Summary::min() const
{
    if (empty())
        panic("Summary::min on empty summary");
    return sorted().front();
}

double
Summary::max() const
{
    if (empty())
        panic("Summary::max on empty summary");
    return sorted().back();
}

double
Summary::sum() const
{
    double total = 0.0;
    for (double v : samples)
        total += v;
    return total;
}

double
Summary::mean() const
{
    if (empty())
        panic("Summary::mean on empty summary");
    return sum() / static_cast<double>(samples.size());
}

double
Summary::stddev() const
{
    if (empty())
        panic("Summary::stddev on empty summary");
    double m = mean();
    double acc = 0.0;
    for (double v : samples)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(samples.size()));
}

double
Summary::percentile(double p) const
{
    if (empty())
        panic("Summary::percentile on empty summary");
    if (p < 0.0 || p > 100.0)
        panic("Summary::percentile: p out of range");
    const std::vector<double> &s = sorted();
    if (s.size() == 1)
        return s.front();
    double rank = p / 100.0 * static_cast<double>(s.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return s[lo] + (s[hi] - s[lo]) * frac;
}

void
Summary::clear()
{
    samples.clear();
    sortedCache.clear();
    sortedValid = false;
}

} // namespace aqua::stats
