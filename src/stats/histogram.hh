/**
 * @file
 * Fixed-bin histogram for distribution summaries in benches and tests.
 */

#ifndef AQUA_STATS_HISTOGRAM_HH
#define AQUA_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace aqua::stats {

/**
 * Linear-bin histogram over [lo, hi); out-of-range samples land in
 * saturating underflow/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the first bin.
     * @param hi Exclusive upper bound of the last bin.
     * @param bins Number of equal-width bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double v);

    std::uint64_t count() const { return total; }
    std::uint64_t underflow() const { return below; }
    std::uint64_t overflow() const { return above; }
    std::size_t bins() const { return counts.size(); }

    /** Count in bin @p i. */
    std::uint64_t binCount(std::size_t i) const { return counts.at(i); }

    /** Inclusive lower edge of bin @p i. */
    double binLow(std::size_t i) const;

    /** Fraction of in-range samples at or below the end of bin i. */
    double cumulativeFraction(std::size_t i) const;

    /** Render a small ASCII sketch, one bin per line. */
    std::string render(std::size_t width = 40) const;

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> counts;
    std::uint64_t below = 0;
    std::uint64_t above = 0;
    std::uint64_t total = 0;
};

} // namespace aqua::stats

#endif // AQUA_STATS_HISTOGRAM_HH
