#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace aqua::stats {

using aqua::sim::panic;

Table::Table(std::vector<std::string> header) : header(std::move(header))
{
    if (this->header.empty())
        panic("Table: header must be non-empty");
}

void
Table::addRow(std::vector<std::string> cells)
{
    finishRow();
    if (cells.size() != header.size())
        panic("Table: row width %zu != header width %zu",
              cells.size(), header.size());
    body.push_back(std::move(cells));
}

void
Table::finishRow()
{
    if (!building)
        return;
    building = false;
    std::vector<std::string> row = std::move(current);
    current.clear();
    addRow(std::move(row));
}

Table &
Table::newRow()
{
    finishRow();
    building = true;
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    if (!building)
        panic("Table::cell without newRow");
    current.push_back(s);
    return *this;
}

Table &
Table::cell(const char *s)
{
    return cell(std::string(s));
}

Table &
Table::cell(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return cell(std::string(buf));
}

Table &
Table::cell(std::int64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(int v)
{
    return cell(std::to_string(v));
}

std::string
Table::render() const
{
    // A const render must still flush a row under construction; copy.
    Table copy = *this;
    copy.finishRow();

    std::vector<std::size_t> widths(copy.header.size(), 0);
    for (std::size_t c = 0; c < copy.header.size(); ++c)
        widths[c] = copy.header[c].size();
    for (const auto &row : copy.body)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                line += "  ";
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(copy.header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
    out.append(total, '-');
    out += "\n";
    for (const auto &row : copy.body)
        out += renderRow(row);
    return out;
}

std::string
Table::renderCsv() const
{
    Table copy = *this;
    copy.finishRow();

    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char ch : s) {
            if (ch == '"')
                q += "\"\"";
            else
                q += ch;
        }
        q += "\"";
        return q;
    };

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                line += ",";
            line += quote(row[c]);
        }
        return line + "\n";
    };

    std::string out = renderRow(copy.header);
    for (const auto &row : copy.body)
        out += renderRow(row);
    return out;
}

} // namespace aqua::stats
