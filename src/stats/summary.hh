/**
 * @file
 * Sample accumulation with percentile and moment queries.
 */

#ifndef AQUA_STATS_SUMMARY_HH
#define AQUA_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace aqua::stats {

/**
 * Collects double-valued samples and answers summary queries.
 *
 * Percentiles use linear interpolation between closest ranks, matching
 * numpy's default, so values printed by benches are comparable with the
 * paper's plotting pipeline.
 */
class Summary
{
  public:
    /** Record one sample. */
    void add(double v);

    /** Record many samples. */
    void add(const std::vector<double> &vs);

    std::size_t count() const { return samples.size(); }
    bool empty() const { return samples.empty(); }

    double min() const;
    double max() const;
    double mean() const;
    double sum() const;
    /** Population standard deviation. */
    double stddev() const;

    /**
     * Interpolated percentile.
     *
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** All samples in insertion order. */
    const std::vector<double> &values() const { return samples; }

    /** Samples sorted ascending (cached; invalidated by add()). */
    const std::vector<double> &sorted() const;

    /** Drop all samples. */
    void clear();

  private:
    std::vector<double> samples;
    mutable std::vector<double> sortedCache;
    mutable bool sortedValid = false;
};

} // namespace aqua::stats

#endif // AQUA_STATS_SUMMARY_HH
