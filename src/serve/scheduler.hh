/**
 * @file
 * Iteration-level scheduling policies for LLM serving engines.
 *
 *  - FcfsPolicy reproduces vLLM's default continuous batching: admit
 *    new sequences only when their context fits in GPU memory; later
 *    arrivals queue (and starve under bursts — Fig. 1, Fig. 9).
 *  - CfsPolicy is the paper's completely fair scheduler (§5): the
 *    vruntime is tokens generated; every slice of k tokens the least-
 *    served sequences get the GPU, and context switches page KV
 *    caches through the offload backend.
 */

#ifndef AQUA_SERVE_SCHEDULER_HH
#define AQUA_SERVE_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "overload/admission.hh"
#include "serve/kv_cache.hh"
#include "serve/sequence.hh"

namespace aqua::serve {

/** What the engine shows the policy. */
struct SchedulerInput
{
    /** Arrival order. */
    std::vector<Sequence *> waiting;
    std::vector<Sequence *> running;
    /** Preemption order (oldest first). */
    std::vector<Sequence *> swapped;
    const KvCache *kv = nullptr;
    std::uint32_t maxBatch = 0;
    /** CFS slice length in tokens. */
    std::uint32_t sliceTokens = 0;
    /** Admission slack in tokens beyond the prompt. */
    std::uint32_t slackTokens = 0;
    /**
     * Prefix caching enabled: a waiting sequence's incremental cost
     * is its unshared blocks only (cached prefix blocks are probed
     * and discounted), and index-held blocks count as free since
     * they evict on demand.
     */
    bool prefixCache = false;
    /**
     * Deadline-aware admission control (null = every arrival is
     * eventually admitted). Policies assess each waiting sequence
     * before considering it and report hopeless ones in
     * SchedulerDecision::shed.
     */
    overload::AdmissionController *admission = nullptr;
    /** Brownout level the admission verdicts honour. */
    overload::BrownoutLevel brownoutLevel =
        overload::BrownoutLevel::Normal;
    /** Decision time (needed for completion prediction). */
    aqua::sim::Tick now = 0;
};

/** State transitions the engine should perform this iteration. */
struct SchedulerDecision
{
    /** Waiting -> Running (prefill needed). */
    std::vector<Sequence *> admit;
    /** Swapped -> Running (KV paged back in). */
    std::vector<Sequence *> swapIn;
    /** Running -> Swapped (KV paged out). */
    std::vector<Sequence *> swapOut;
    /** Waiting -> shed: requests admission control gave up on (the
     *  engine records metrics and drops them without serving). */
    std::vector<std::pair<Sequence *, overload::ShedReason>> shed;

    bool
    empty() const
    {
        return admit.empty() && swapIn.empty() && swapOut.empty() &&
               shed.empty();
    }
};

/**
 * Scheduling policy interface.
 */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    virtual SchedulerDecision schedule(const SchedulerInput &in) = 0;

    /** Fair policies are re-evaluated at slice boundaries only. */
    virtual bool isFair() const = 0;

    virtual std::string name() const = 0;
};

/**
 * vLLM's default scheduler: FIFO admission gated on free KV blocks;
 * preempted sequences resume before new ones are admitted.
 */
class FcfsPolicy : public SchedulerPolicy
{
  public:
    SchedulerDecision schedule(const SchedulerInput &in) override;
    bool isFair() const override { return false; }
    std::string name() const override { return "fcfs"; }
};

/**
 * Completely fair scheduler over prompts (§5): every slice, run the
 * sequences with the fewest generated tokens that fit in memory;
 * page the rest out.
 */
class CfsPolicy : public SchedulerPolicy
{
  public:
    SchedulerDecision schedule(const SchedulerInput &in) override;
    bool isFair() const override { return true; }
    std::string name() const override { return "cfs"; }
};

} // namespace aqua::serve

#endif // AQUA_SERVE_SCHEDULER_HH
