#include "serve/kv_cache.hh"

#include "sim/logging.hh"

namespace aqua::serve {

using aqua::sim::panic;

namespace {

std::uint64_t
blockBytesFor(const model::ModelSpec &model, std::uint32_t blockTokens)
{
    if (!model.isText())
        panic("KvCache: %s is not a text model", model.name.c_str());
    return static_cast<std::uint64_t>(blockTokens) *
           model.kvBytesPerToken();
}

} // anonymous namespace

KvCache::KvCache(hw::Gpu &gpu, const model::ModelSpec &model,
                 std::uint64_t poolBytes, std::uint32_t blockTokens)
    : gpu(gpu), blockTokens(blockTokens), reservedBytes(poolBytes),
      blocks(poolBytes, blockBytesFor(model, blockTokens))
{
    region = gpu.hbm().allocate(poolBytes);
    if (!region) {
        panic("KvCache: cannot reserve %llu bytes of HBM on %s",
              static_cast<unsigned long long>(poolBytes),
              gpu.name().c_str());
    }
}

KvCache::~KvCache()
{
    if (region)
        gpu.hbm().free(*region);
}

std::size_t
KvCache::blocksForTokens(std::uint64_t tokens) const
{
    return (tokens + blockTokens - 1) / blockTokens;
}

std::uint64_t
KvCache::kvBytes(std::uint64_t tokens) const
{
    return tokens * (blocks.blockSize() / blockTokens);
}

std::optional<std::vector<aqua::mem::BlockId>>
KvCache::allocateBlocks(std::size_t count)
{
    return blocks.allocateMany(count);
}

void
KvCache::freeBlocks(const std::vector<aqua::mem::BlockId> &ids)
{
    blocks.freeMany(ids);
}

void
KvCache::reacquireRegion(std::uint64_t newBytes)
{
    // Addresses are simulated, so "moving" the pool is free; what
    // matters is that the HBM allocator sees the right reservation.
    if (region)
        gpu.hbm().free(*region);
    region.reset();
    if (newBytes > 0) {
        region = gpu.hbm().allocate(newBytes);
        if (!region) {
            panic("KvCache: failed to re-reserve %llu bytes on %s",
                  static_cast<unsigned long long>(newBytes),
                  gpu.name().c_str());
        }
    }
    reservedBytes = newBytes;
}

std::uint64_t
KvCache::shrink(std::uint64_t bytes)
{
    std::size_t want = static_cast<std::size_t>(bytes / blockBytes());
    std::size_t got = blocks.retire(want);
    if (got == 0)
        return 0;
    std::uint64_t released = got * blockBytes();
    reacquireRegion(reservedBytes - released);
    return released;
}

void
KvCache::grow(std::uint64_t bytes)
{
    std::size_t count = static_cast<std::size_t>(bytes / blockBytes());
    if (count == 0)
        return;
    std::size_t restored = blocks.restore(count);
    if (restored < count) {
        panic("KvCache::grow: asked for %zu blocks but only %zu were "
              "donated away", count, restored);
    }
    reacquireRegion(reservedBytes + count * blockBytes());
}

} // namespace aqua::serve
