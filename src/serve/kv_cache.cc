#include "serve/kv_cache.hh"

#include "sim/logging.hh"

namespace aqua::serve {

using aqua::mem::BlockId;
using aqua::sim::panic;

namespace {

/**
 * The one precision-aware sizing helper: bytes per token at the
 * model's serving precision. Block sizing and transfer sizing both
 * derive from this so they can never drift apart.
 */
std::uint64_t
tokenBytesFor(const model::ModelSpec &model)
{
    if (!model.isText())
        panic("KvCache: %s is not a text model", model.name.c_str());
    return model.kvBytesPerToken();
}

} // anonymous namespace

KvCache::KvCache(hw::Gpu &gpu, const model::ModelSpec &model,
                 std::uint64_t poolBytes, std::uint32_t blockTokens)
    : gpu(gpu), blockTokens(blockTokens),
      tokenBytes(tokenBytesFor(model)), reservedBytes(poolBytes),
      blocks(poolBytes,
             static_cast<std::uint64_t>(blockTokens) * tokenBytes),
      index(blockTokens)
{
    region = gpu.hbm().allocate(poolBytes);
    if (!region) {
        panic("KvCache: cannot reserve %llu bytes of HBM on %s",
              static_cast<unsigned long long>(poolBytes),
              gpu.name().c_str());
    }
}

KvCache::~KvCache()
{
    if (region)
        gpu.hbm().free(*region);
}

std::size_t
KvCache::blocksForTokens(std::uint64_t tokens) const
{
    return (tokens + blockTokens - 1) / blockTokens;
}

std::uint64_t
KvCache::kvBytes(std::uint64_t tokens) const
{
    return tokens * tokenBytes;
}

bool
KvCache::cacheOnly(BlockId id) const
{
    std::uint32_t h = index.refsHeld(id);
    return h > 0 && blocks.refCount(id) == h;
}

void
KvCache::updateEvictable(BlockId id)
{
    if (evictableFlag.size() <= id)
        evictableFlag.resize(id + 1, false);
    // Pinned blocks are lease-held by a remote reader: not headroom,
    // not eviction victims.
    bool now = cacheOnly(id) && !blockPinned(id);
    if (now == static_cast<bool>(evictableFlag[id]))
        return;
    evictableFlag[id] = now;
    if (now)
        ++numEvictable;
    else
        --numEvictable;
}

void
KvCache::notePeak()
{
    std::uint64_t live = liveKvBytes();
    if (live > peakLive)
        peakLive = live;
}

std::optional<std::vector<BlockId>>
KvCache::allocateBlocks(std::size_t count)
{
    if (blocks.freeBlocks() < count)
        evictCached(count - blocks.freeBlocks());
    auto out = blocks.allocateMany(count);
    if (out) {
        // A reused block starts a fresh life as locally computed KV.
        for (BlockId id : *out)
            setBlockOrigin(id, BlockOrigin::Local);
        notePeak();
    }
    return out;
}

void
KvCache::pinBlock(BlockId id)
{
    if (pinCounts.size() <= id)
        pinCounts.resize(id + 1, 0);
    if (pinCounts[id]++ == 0)
        ++numPinned;
    updateEvictable(id);
}

void
KvCache::unpinBlock(BlockId id)
{
    if (id >= pinCounts.size() || pinCounts[id] == 0)
        return;
    if (--pinCounts[id] == 0)
        --numPinned;
    updateEvictable(id);
}

void
KvCache::setBlockOrigin(BlockId id, BlockOrigin origin)
{
    if (origins.size() <= id)
        origins.resize(id + 1,
                       static_cast<std::uint8_t>(BlockOrigin::Local));
    origins[id] = static_cast<std::uint8_t>(origin);
}

BlockOrigin
KvCache::blockOrigin(BlockId id) const
{
    return id < origins.size() ? static_cast<BlockOrigin>(origins[id])
                               : BlockOrigin::Local;
}

void
KvCache::freeBlocks(const std::vector<BlockId> &ids)
{
    blocks.freeMany(ids);
    for (BlockId id : ids)
        updateEvictable(id);
    // A release can turn index-shared blocks cache-only; keep the
    // cache's pool share within its configured cap.
    enforceCacheCap();
}

void
KvCache::enforceCacheCap()
{
    if (cacheShare >= 1.0)
        return;
    std::size_t cap = cacheBlockCap();
    while (numEvictable > cap) {
        if (evictCached(numEvictable - cap) == 0)
            break;
    }
}

void
KvCache::reacquireRegion(std::uint64_t newBytes)
{
    // Addresses are simulated, so "moving" the pool is free; what
    // matters is that the HBM allocator sees the right reservation.
    if (region)
        gpu.hbm().free(*region);
    region.reset();
    if (newBytes > 0) {
        region = gpu.hbm().allocate(newBytes);
        if (!region) {
            panic("KvCache: failed to re-reserve %llu bytes on %s",
                  static_cast<unsigned long long>(newBytes),
                  gpu.name().c_str());
        }
    }
    reservedBytes = newBytes;
}

std::uint64_t
KvCache::shrink(std::uint64_t bytes)
{
    std::size_t want = static_cast<std::size_t>(bytes / blockBytes());
    // Cached (index-only) blocks count as donatable: evict them first
    // so a donation is never refused because of cache retention.
    if (blocks.freeBlocks() < want)
        evictCached(want - blocks.freeBlocks());
    std::size_t got = blocks.retire(want);
    if (got == 0)
        return 0;
    std::uint64_t released = got * blockBytes();
    reacquireRegion(reservedBytes - released);
    return released;
}

void
KvCache::grow(std::uint64_t bytes)
{
    std::size_t count = static_cast<std::size_t>(bytes / blockBytes());
    if (count == 0)
        return;
    std::size_t restored = blocks.restore(count);
    if (restored < count) {
        panic("KvCache::grow: asked for %zu blocks but only %zu were "
              "donated away", count, restored);
    }
    reacquireRegion(reservedBytes + count * blockBytes());
}

KvCache::PrefixAcquire
KvCache::acquirePrefix(const TokenFn &tok, std::uint64_t maxTokens,
                       aqua::sim::Tick now)
{
    PrefixIndex::Match m = index.lookup(tok, maxTokens, now);
    for (BlockId id : m.blocks) {
        blocks.ref(id);
        updateEvictable(id);
    }
    // Borrowing cache-only blocks turns them live again.
    notePeak();
    return {std::move(m.blocks), m.tokens, m.partialTokens};
}

std::size_t
KvCache::probePrefixBlocks(const TokenFn &tok,
                           std::uint64_t maxTokens) const
{
    PrefixIndex::Match m =
        index.lookup(tok, maxTokens, 0, /*touch=*/false);
    // Only full blocks count toward admission savings: a partial tail
    // still forces the borrower to fork a private copy.
    return m.blocks.size() - (m.partialTokens > 0 ? 1 : 0);
}

void
KvCache::publishPrefix(const TokenFn &tok, std::uint64_t tokens,
                       const std::vector<BlockId> &blockIds,
                       aqua::sim::Tick now, bool insert,
                       std::uint64_t insertTokens)
{
    // Refresh content signatures for every covered block so offload
    // round trips can be checked for byte identity.
    std::uint64_t covered = std::min<std::uint64_t>(
        tokens, blockIds.size() * std::uint64_t(blockTokens));
    for (std::size_t i = 0; i * blockTokens < covered; ++i) {
        std::uint64_t first = i * std::uint64_t(blockTokens);
        auto count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(blockTokens, covered - first));
        setBlockSig(blockIds[i], contentSig(tok, first, count));
    }
    std::uint64_t indexed = std::min(covered, insertTokens);
    if (!insert || indexed == 0)
        return;
    std::vector<BlockId> newly = index.insert(tok, indexed, blockIds, now);
    for (BlockId id : newly) {
        blocks.ref(id);
        updateEvictable(id);
    }
    enforceCacheCap();
}

std::optional<BlockId>
KvCache::forkBlock(BlockId shared)
{
    if (blocks.freeBlocks() < 1)
        evictCached(1);
    std::optional<BlockId> fresh = blocks.allocate();
    if (!fresh)
        return std::nullopt;
    // The copy starts with the same content as the original.
    setBlockSig(*fresh, blockSig(shared));
    blocks.free(shared); // drop the caller's reference on the original
    updateEvictable(shared);
    updateEvictable(*fresh);
    enforceCacheCap();
    notePeak();
    return fresh;
}

std::uint64_t
KvCache::prefixChainKey(const TokenFn &tok, std::size_t fullBlocks) const
{
    return index.chainKey(tok, fullBlocks);
}

std::size_t
KvCache::evictCached(std::size_t want)
{
    std::size_t freed = 0;
    while (freed < want) {
        std::vector<BlockId> evicted = index.evictLru(
            want - freed, [this](BlockId id) {
                return cacheOnly(id) && !blockPinned(id);
            });
        if (evicted.empty())
            break;
        for (BlockId id : evicted) {
            blocks.free(id);
            updateEvictable(id);
            if (blocks.refCount(id) == 0)
                ++freed;
            if (evictionObserver)
                evictionObserver(id);
        }
    }
    return freed;
}

std::size_t
KvCache::dropCache()
{
    std::vector<BlockId> dropped = index.clear();
    std::size_t freed = 0;
    for (BlockId id : dropped) {
        blocks.free(id);
        updateEvictable(id);
        if (blocks.refCount(id) == 0)
            ++freed;
        if (evictionObserver)
            evictionObserver(id);
    }
    return freed;
}

void
KvCache::setBlockSig(BlockId id, std::uint64_t sig)
{
    if (sigs.size() <= id)
        sigs.resize(id + 1, 0);
    sigs[id] = sig;
}

std::uint64_t
KvCache::blockSig(BlockId id) const
{
    return id < sigs.size() ? sigs[id] : 0;
}

std::uint64_t
KvCache::contentSig(const TokenFn &tok, std::uint64_t firstToken,
                    std::uint32_t count)
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t c = tok(firstToken + i);
        for (int b = 0; b < 8; ++b) {
            h ^= (c >> (8 * b)) & 0xff;
            h *= 0x100000001b3ull; // FNV prime
        }
    }
    return h;
}

} // namespace aqua::serve
