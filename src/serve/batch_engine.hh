/**
 * @file
 * Compute-bound batched inference engine for image/audio generative
 * models (Table 3), served "as they arrive ... with a maximum batch
 * size" chosen at peak throughput (§B).
 *
 * These engines are AQUA's natural memory producers: at their
 * throughput plateau tens of GB of HBM stay free (Fig. 2a/2b), and
 * donating it costs them almost nothing (Fig. 3b) because peer copies
 * only tax the SMs by a few percent.
 */

#ifndef AQUA_SERVE_BATCH_ENGINE_HH
#define AQUA_SERVE_BATCH_ENGINE_HH

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "aqua/aqua_lib.hh"
#include "model/perf_model.hh"
#include "serve/offload_backend.hh"
#include "stats/timeseries.hh"
#include "workload/request.hh"

namespace aqua::serve {

/** Batch engine tunables. */
struct BatchEngineConfig
{
    /** Items per iteration; 0 = the model's peak-throughput batch. */
    std::uint32_t batchSize = 0;
    /** Call AQUA-LIB informStats() every this many iterations. */
    std::uint32_t informEveryIters = 1;
    /** Housekeeping cadence while idle. */
    aqua::sim::Tick idleTickPeriod = 100 * aqua::sim::nsPerMs;
};

/**
 * The image/audio serving engine.
 */
class BatchEngine
{
  public:
    using CompletionCallback =
        std::function<void(const workload::RequestMetrics &)>;

    BatchEngine(hw::Server &server, hw::GpuId gpu,
                const model::ModelSpec &modelSpec,
                BatchEngineConfig config = {});

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;
    ~BatchEngine();

    /** Attach AQUA-LIB for the producer role (batch-informer). */
    void attachAquaLib(core::AquaLib *lib);

    /** Submit a generation request. */
    void submit(const workload::Request &request);

    void onComplete(CompletionCallback cb) { completionCb = std::move(cb); }

    hw::GpuId gpuId() const { return myGpu; }
    std::uint64_t itemsGenerated() const { return itemsTotal; }
    std::size_t queuedCount() const { return queue.size(); }

    /** (time, items) series: generations completed per iteration. */
    const stats::TimeSeries &itemSeries() const { return items; }

    const std::vector<workload::RequestMetrics> &
    finished() const
    {
        return finishedMetrics;
    }

    /** Mean items/second over the engine's lifetime so far. */
    double throughput() const;

  private:
    void scheduleStep(aqua::sim::Tick when);
    void step();
    void doInform();

    hw::Server &server;
    hw::GpuId myGpu;
    model::ModelSpec spec;
    model::PerfModel perf;
    BatchEngineConfig cfg;
    core::AquaLib *aquaLib = nullptr;

    /** Weights + runtime overhead + peak-batch activations. */
    std::optional<aqua::mem::Region> workingSet;
    std::deque<workload::Request> queue;

    CompletionCallback completionCb;
    std::vector<workload::RequestMetrics> finishedMetrics;

    bool stepPending = false;
    std::uint32_t itersSinceInform = 0;
    std::uint64_t arrivalsSinceInform = 0;
    std::uint64_t itemsTotal = 0;
    std::uint32_t effectiveBatch;
    stats::TimeSeries items;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_BATCH_ENGINE_HH
