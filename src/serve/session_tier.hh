/**
 * @file
 * SessionTier: the serving engine's window onto a storage tier below
 * host DRAM.
 *
 * The engine stays tier-agnostic: it reports lifecycle events (a
 * session went cold, a swapped sequence's KV landed in DRAM, a handle
 * came back up) and asks policy questions (what should demote, can
 * this resume be streamed instead of recomputed); the tier
 * implementation owns the device, the demotion policy and the
 * prefetch pipeline. tier::ParkAgent is the production implementation;
 * tests can substitute fakes.
 */

#ifndef AQUA_SERVE_SESSION_TIER_HH
#define AQUA_SERVE_SESSION_TIER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "serve/offload_backend.hh"
#include "sim/ticks.hh"

namespace aqua::serve {

/**
 * Abstract storage-tier hooks for cold-session park/resume and
 * DRAM→SSD demotion of swapped-out KV.
 */
class SessionTier
{
  public:
    /** Resume outcome: streamed = the KV landed in HBM via the
     *  prefetch pipeline; false = the stream was cancelled or the
     *  device failed and the engine must re-prefill. */
    using ResumeCallback = std::function<void(bool streamed)>;

    virtual ~SessionTier() = default;

    //
    // Cold-session park/resume.
    //

    /**
     * A session just finished a turn and its user goes idle for
     * @p idleGapSec. Park the KV on the tier if the gap warrants it.
     *
     * @param sessionKey Stable session identity (the chat user id).
     * @param bytes KV footprint of the conversation so far.
     * @param tokens Tokens that KV covers (prompt + generated).
     * @retval true Parked (the tier copied the bytes down).
     * @retval false Gap below the park threshold or store full.
     */
    virtual bool park(std::uint64_t sessionKey, std::uint64_t bytes,
                      std::uint32_t tokens, double idleGapSec,
                      aqua::sim::Tick now) = 0;

    /** Tokens parked for a session; 0 = nothing parked. */
    virtual std::uint32_t
    parkedTokens(std::uint64_t sessionKey) const = 0;

    /**
     * A cold session's next turn arrived: decide stream-vs-recompute
     * against @p prefillTime (the roofline cost of re-prefilling the
     * parked context) and start the prefetch stream if it wins.
     *
     * @param streamOverhead Extra compute the streamed copy costs
     *        before it is usable (e.g. dequantizing a parked copy
     *        stored below the serving precision); counts against
     *        streaming in the crossover.
     * @retval true Streaming; @p done fires when the stream lands (or
     *         winds down cancelled). The parked entry is consumed.
     * @retval false Recompute: nothing parked, the device is down, or
     *         the stream estimate loses the crossover. Any parked
     *         entry is dropped; @p done never fires.
     */
    virtual bool beginResume(std::uint64_t sessionKey,
                             aqua::sim::Tick now,
                             aqua::sim::Tick prefillTime,
                             ResumeCallback done,
                             aqua::sim::Tick streamOverhead = 0) = 0;

    /**
     * Predictor miss: the resuming request was shed (or the session
     * ended). Cancels any in-flight resume stream and drops the
     * parked entry.
     */
    virtual void cancelResume(std::uint64_t sessionKey) = 0;

    //
    // DRAM→SSD demotion of swapped-out KV.
    //

    /** Backend holding demoted payloads (sequences swap back in from
     *  it through the normal OffloadBackend read path). */
    virtual OffloadBackend &demotionStore() = 0;

    /** A swapped sequence's private KV tail landed in host DRAM. */
    virtual void noteOffloaded(std::uint64_t key, std::uint64_t bytes,
                               aqua::sim::Tick now) = 0;

    /** The payload left the tier's purview (swap-in, shed, engine
     *  teardown). @p promoted when the bytes came back up. */
    virtual void forgetOffloaded(std::uint64_t key, bool promoted,
                                 aqua::sim::Tick now) = 0;

    /** Keys the demotion policy wants moved down one tier, coldest
     *  first. @p pressure = the brownout ladder's ForceDramOffload
     *  rung is active (aggressive threshold). */
    virtual std::vector<std::uint64_t>
    selectDemotions(aqua::sim::Tick now, bool pressure) = 0;

    /**
     * Move @p handle's bytes (resident in @p from, a DRAM-class
     * backend) down to the tier. On success the old handle is freed
     * and the replacement — owned by demotionStore() — returned; the
     * engine repoints the sequence at it. nullopt = store full, the
     * payload stays in DRAM.
     */
    virtual std::optional<OffloadBackend::Handle>
    demote(std::uint64_t key, OffloadBackend &from,
           const OffloadBackend::Handle &handle, std::uint64_t nChunks,
           aqua::sim::Tick now) = 0;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_SESSION_TIER_HH
