#include "serve/flexgen_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aqua::serve {

using namespace aqua::sim;

namespace {

model::ModelSpec
applyKvConfig(model::ModelSpec spec, const FlexGenConfig &cfg)
{
    spec.kvPrecision = cfg.kvPrecision;
    return spec;
}

} // anonymous namespace

FlexGenEngine::FlexGenEngine(hw::Server &server, hw::GpuId gpu,
                             const model::ModelSpec &modelSpec,
                             OffloadBackend &backend,
                             FlexGenConfig config)
    : server(server), myGpu(gpu),
      spec(applyKvConfig(modelSpec, config)),
      perf(spec, server.gpu(gpu).spec()), cfg(config),
      backend(backend), tokens("tokens")
{
    if (!spec.isText())
        panic("FlexGenEngine: %s is not a text model",
              spec.name.c_str());
    if (cfg.admission) {
        // Single-stream engine: prompts are served sequentially, so
        // the representative rates are per-token prefill and a batch-1
        // decode step (KV streaming dominates, but the perf-model
        // decode time bounds it from below; the safety factor covers
        // the link-bound remainder).
        overload::ServiceRates rates;
        rates.prefillPerToken = perf.prefillTime(1024) / 1024;
        rates.decodePerToken = perf.decodeStepTime(1, 0);
        admission = std::make_unique<overload::AdmissionController>(
            rates, *cfg.admission);
    }
    if (cfg.streamWeights) {
        // ZeRO mode: only runtime buffers plus a per-layer working
        // set live on the GPU; the weights sit in the offload store.
        std::uint64_t base = spec.runtimeOverheadBytes +
                             spec.weightBytes() / spec.nLayers;
        weightsRegion = server.gpu(gpu).hbm().allocate(base);
        if (!weightsRegion) {
            panic("FlexGenEngine: working set of %s does not fit "
                  "on %s", spec.name.c_str(),
                  server.gpu(gpu).name().c_str());
        }
        auto handle = backend.alloc(spec.weightBytes());
        if (!handle) {
            panic("FlexGenEngine: offload store cannot hold %s "
                  "weights", spec.name.c_str());
        }
        weightsHandle = *handle;
        return;
    }
    std::uint64_t base = spec.weightBytes() + spec.runtimeOverheadBytes;
    weightsRegion = server.gpu(gpu).hbm().allocate(base);
    if (!weightsRegion) {
        panic("FlexGenEngine: %s does not fit on %s",
              spec.name.c_str(), server.gpu(gpu).name().c_str());
    }
}

FlexGenEngine::~FlexGenEngine()
{
    for (auto &active : actives) {
        if (active->handle.valid())
            backend.free(active->handle);
    }
    if (weightsHandle.valid())
        backend.free(weightsHandle);
    if (weightsRegion)
        server.gpu(myGpu).hbm().free(*weightsRegion);
}

void
FlexGenEngine::submit(const workload::Request &request)
{
    if (request.arrival > server.simulation().now()) {
        workload::Request r = request;
        server.simulation().queue().schedule(r.arrival, [this, r] {
            submit(r);
        });
        return;
    }
    pending.push_back(request);
    scheduleStep(server.simulation().now());
}

void
FlexGenEngine::scheduleStep(Tick when)
{
    if (stepPending)
        return;
    EventQueue &q = server.simulation().queue();
    if (when < q.now())
        when = q.now();
    stepPending = true;
    q.schedule(when, [this] {
        stepPending = false;
        step();
    });
}

overload::ShedReason
FlexGenEngine::assessPending(const workload::Request &request,
                             Tick now) const
{
    if (!admission)
        return overload::ShedReason::None;
    overload::AdmissionQuery q;
    q.now = now;
    q.requestId = request.id;
    q.deadline = request.deadline;
    q.bestEffort = request.bestEffort;
    q.promptTokens = request.promptTokens;
    q.remainingNewTokens = request.maxNewTokens;
    // Streams already admitted run (or rotate) ahead of this one.
    for (const auto &a : actives) {
        q.queuedPrefillTokensAhead +=
            a->request.promptTokens - a->processedPrompt;
    }
    q.runningCount = actives.size();
    q.maxBatch = 1;
    return admission->assess(q, overload::BrownoutLevel::Normal);
}

void
FlexGenEngine::shedPending(const workload::Request &request,
                           overload::ShedReason reason, Tick when)
{
    workload::RequestMetrics m;
    m.id = request.id;
    m.arrival = request.arrival;
    m.deadline = request.deadline;
    m.finish = when;
    m.shed = true;
    finishedMetrics.push_back(m);
    ++nSheds;
    if (admission)
        admission->recordShed(reason);
    if (completionCb) {
        server.simulation().queue().schedule(when, [this, m] {
            completionCb(m);
        });
    }
}

FlexGenEngine::Active *
FlexGenEngine::admit(const workload::Request &request)
{
    auto a = std::make_unique<Active>();
    a->request = request;
    a->metrics.id = request.id;
    a->metrics.arrival = request.arrival;
    a->metrics.deadline = request.deadline;
    a->metrics.admitted = server.simulation().now();
    if (admission)
        admission->recordAdmit();
    // The whole inference context is one offloaded tensor sized for
    // prompt plus generation budget; AQUA decides where it lives.
    std::uint64_t bytes = spec.kvBytes(
        std::uint64_t(request.promptTokens) + request.maxNewTokens);
    auto handle = backend.alloc(bytes);
    if (!handle) {
        panic("FlexGenEngine: backend cannot hold %llu context bytes",
              static_cast<unsigned long long>(bytes));
    }
    a->handle = *handle;
    actives.push_back(std::move(a));
    return actives.back().get();
}

FlexGenEngine::Active *
FlexGenEngine::select()
{
    Tick now = server.simulation().now();
    if (cfg.fairSliceTokens == 0) {
        // FIFO run-to-completion: one stream at a time. Shed queued
        // prompts whose deadline the queue has already eaten.
        while (actives.empty() && !pending.empty()) {
            workload::Request r = pending.front();
            pending.pop_front();
            overload::ShedReason verdict = assessPending(r, now);
            if (verdict != overload::ShedReason::None) {
                shedPending(r, verdict, now);
                continue;
            }
            admit(r);
        }
        return actives.empty() ? nullptr : actives.front().get();
    }
    // CFS: every queued prompt competes; contexts live offloaded, so
    // admitting all of them costs no GPU memory.
    while (!pending.empty()) {
        workload::Request r = pending.front();
        pending.pop_front();
        overload::ShedReason verdict = assessPending(r, now);
        if (verdict != overload::ShedReason::None) {
            shedPending(r, verdict, now);
            continue;
        }
        admit(r);
    }
    Active *least = nullptr;
    for (auto &a : actives) {
        if (!least || a->generated < least->generated ||
            (a->generated == least->generated &&
             a->request.arrival < least->request.arrival))
            least = a.get();
    }
    return least;
}

void
FlexGenEngine::finishActive(Active *active, Tick when)
{
    active->metrics.finish = when;
    active->metrics.tokensGenerated = active->generated;
    finishedMetrics.push_back(active->metrics);
    if (admission)
        admission->recordCompletion(when, active->request.deadline);
    if (completionCb) {
        workload::RequestMetrics m = active->metrics;
        server.simulation().queue().schedule(when, [this, m] {
            completionCb(m);
        });
    }
    backend.free(active->handle);
    auto it = std::find_if(actives.begin(), actives.end(),
                           [&](const std::unique_ptr<Active> &a) {
                               return a.get() == active;
                           });
    actives.erase(it);
    if (current == active)
        current = nullptr;
}

void
FlexGenEngine::step()
{
    if (!current) {
        current = select();
        tokensIntoSlice = 0;
        if (!current)
            return; // idle; next submit() wakes us
    }

    Tick now = server.simulation().now();
    Tick transfersDone = now;
    if (++itersSinceRespond >= cfg.respondEveryIters) {
        itersSinceRespond = 0;
        Tick blocked = backend.respond();
        if (blocked > transfersDone)
            transfersDone = blocked;
    }

    Active &a = *current;
    // ZeRO mode streams the whole weight set through the GPU each
    // iteration, layer by layer.
    if (cfg.streamWeights) {
        hw::TransferTiming w = backend.read(
            weightsHandle, spec.weightBytes(), spec.nLayers,
            transfersDone);
        transfersDone = w.complete;
    }
    Tick iterDone;
    if (!a.prefillDone) {
        std::uint32_t chunk =
            std::min(cfg.chunkTokens,
                     a.request.promptTokens - a.processedPrompt);
        // Attention over the earlier tokens needs their KV streamed
        // back in.
        if (a.processedPrompt > 0) {
            hw::TransferTiming in = backend.read(
                a.handle, spec.kvBytes(a.processedPrompt), 1,
                transfersDone);
            transfersDone = in.complete;
        }
        Tick computed = server.gpu(myGpu).submitComputeAfter(
            transfersDone, perf.prefillTime(chunk));
        hw::TransferTiming out = backend.write(
            a.handle, spec.kvBytes(chunk), 1, computed);
        a.processedPrompt += chunk;
        iterDone = std::max(computed, out.complete);
        if (a.processedPrompt >= a.request.promptTokens) {
            a.prefillDone = true;
            // Prefill emits the first token.
            a.generated = 1;
            a.metrics.firstToken = iterDone;
            ++tokensTotal;
            ++tokensIntoSlice;
            tokens.record(iterDone, 1.0);
        }
    } else {
        // One decode step: stream the sequence KV in, append one
        // token's KV.
        std::uint64_t seqTokens =
            std::uint64_t(a.request.promptTokens) + a.generated;
        hw::TransferTiming in = backend.read(
            a.handle, spec.kvBytes(seqTokens), 1, transfersDone);
        Tick computed = server.gpu(myGpu).submitComputeAfter(
            in.complete, perf.decodeStepTime(1, 0));
        hw::TransferTiming out =
            backend.write(a.handle, spec.kvBytes(1), 1, computed);
        iterDone = std::max(computed, out.complete);
        ++a.generated;
        ++tokensTotal;
        ++tokensIntoSlice;
        tokens.record(iterDone, 1.0);
    }

    if (a.prefillDone && a.generated >= a.request.maxNewTokens) {
        finishActive(&a, iterDone);
    } else if (cfg.fairSliceTokens != 0 &&
               tokensIntoSlice >= cfg.fairSliceTokens) {
        // Slice expired: re-select the least-served stream next step.
        current = nullptr;
    }

    if (current || !actives.empty() || !pending.empty())
        scheduleStep(iterDone);
    else if (backend.name() == "aqua")
        // Keep answering /respond while idle so producers can reclaim.
        scheduleStep(iterDone + 100 * nsPerMs);
}

} // namespace aqua::serve
