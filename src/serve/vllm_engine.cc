#include "serve/vllm_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aqua::serve {

using namespace aqua::sim;

VllmEngine::VllmEngine(hw::Server &server, hw::GpuId gpu,
                       const model::ModelSpec &modelSpec,
                       std::unique_ptr<SchedulerPolicy> schedPolicy,
                       OffloadBackend &backend, VllmEngineConfig config,
                       std::vector<model::LoraAdapter> adapters)
    : server(server), myGpu(gpu),
      spec(applyKvConfig(modelSpec, config)),
      perf(spec, server.gpu(gpu).spec()), cfg(config),
      policy(std::move(schedPolicy)), backend(backend),
      tokens("tokens"), freeMem("free_memory")
{
    if (!spec.isText())
        panic("VllmEngine: %s is not a text model", spec.name.c_str());
    // Validates the range; 1.0 (dense) leaves the model untouched.
    perf.setSparseReadFraction(cfg.sparseReadFraction);
    hw::Gpu &dev = server.gpu(gpu);

    std::uint64_t base = spec.weightBytes() + spec.runtimeOverheadBytes;
    weightsRegion = dev.hbm().allocate(base);
    if (!weightsRegion) {
        panic("VllmEngine: %s does not fit on %s (%llu bytes needed)",
              spec.name.c_str(), dev.name().c_str(),
              static_cast<unsigned long long>(base));
    }

    if (cfg.lora) {
        if (adapters.empty())
            panic("VllmEngine: LoRA cache enabled with no adapters");
        lora = std::make_unique<LoraCache>(dev, backend,
                                           std::move(adapters),
                                           *cfg.lora);
    }

    std::uint64_t pool = cfg.kvPoolBytesOverride;
    if (pool == 0) {
        pool = static_cast<std::uint64_t>(
            static_cast<double>(dev.hbm().freeBytes()) *
            cfg.kvPoolFraction);
    }
    kv = std::make_unique<KvCache>(dev, spec, pool, cfg.blockTokens);
    if (cfg.maxCacheShare < 1.0)
        kv->setMaxCacheShare(cfg.maxCacheShare);
    kv->setEvictionPolicy(cfg.prefixEviction);

    if (cfg.admission) {
        // Service rates from the perf model: amortized prefill cost
        // per token, and a decode iteration at full batch with a
        // half-full pool as the representative per-token-per-seat
        // decode time.
        overload::ServiceRates rates;
        rates.prefillPerToken = perf.prefillTime(1024) / 1024;
        rates.decodePerToken =
            perf.decodeStepTime(cfg.maxBatch, kv->poolBytes() / 2);
        admission = std::make_unique<overload::AdmissionController>(
            rates, *cfg.admission);
    }
    if (cfg.brownout) {
        brownout = std::make_unique<overload::BrownoutController>(
            *cfg.brownout);
    }
    if (cfg.precisionGovernor) {
        precisionGov =
            std::make_unique<overload::KvPrecisionGovernor>(
                *cfg.precisionGovernor, spec.kvPrecision);
    }
}

model::ModelSpec
VllmEngine::applyKvConfig(model::ModelSpec spec,
                          const VllmEngineConfig &cfg)
{
    spec.kvPrecision = cfg.kvPrecision;
    return spec;
}

VllmEngine::~VllmEngine()
{
    // Unwind cluster-registry state first: outstanding read leases,
    // then every chain this engine advertised (the registry promotes
    // a surviving replica or invalidates). The agent is cleared last
    // so the registry can still call back while unwinding.
    if (clusterReg && clusterLib) {
        for (auto &seq : all) {
            if (seq->remotePin != 0)
                clusterLib->prefixUnpin(seq->remotePin);
        }
        for (auto &[key, c] : homeChains)
            clusterLib->prefixEvictNotify(key, c.verify);
        homeChains.clear();
        for (auto &[key, c] : replicaChains)
            clusterLib->prefixEvictNotify(key, c.verify);
        replicaChains.clear();
        clusterReg->clearAgent(myGpu);
    }
    // Release swapped sequences' backend storage (from whichever
    // backend holds it — the circuit breaker may have diverted some
    // swaps to the fallback).
    for (auto &seq : all) {
        if (seq->state == Sequence::State::Swapped &&
            seq->swapHandle.valid()) {
            OffloadBackend &holder =
                seq->swapBackend ? *seq->swapBackend : backend;
            holder.free(seq->swapHandle);
        }
    }
    // Release shared-prefix group copies still in the backend.
    for (auto &[key, group] : sharedGroups) {
        if (group.handle.valid())
            backend.free(group.handle);
    }
    // kv and lora free their reservations before weightsRegion.
    kv.reset();
    lora.reset();
    if (weightsRegion)
        server.gpu(myGpu).hbm().free(*weightsRegion);
}

void
VllmEngine::attachAquaLib(core::AquaLib *lib)
{
    aquaLib = lib;
    // Kick the housekeeping loop so an idle producer still informs.
    scheduleStep(server.simulation().now());
}

void
VllmEngine::attachClusterPrefix(cluster::PrefixRegistry *registry,
                                core::AquaLib *lib)
{
    clusterReg = registry;
    clusterLib = lib;
    if (!clusterReg || !clusterLib)
        return;
    cluster::RegistryAgent agent;
    agent.setPinned = [this](std::uint64_t key, bool pinned) {
        return clusterSetPinned(key, pinned);
    };
    agent.promote = [this](std::uint64_t key) {
        return clusterPromote(key);
    };
    clusterReg->setAgent(myGpu, std::move(agent));
    kv->setEvictionObserver(
        [this](aqua::mem::BlockId id) { onCacheBlockEvicted(id); });
}

void
VllmEngine::attachFederation(hw::Fabric *fabric,
                             std::uint32_t serverIndex,
                             core::AquaLib *lib)
{
    fedFabric = fabric;
    fedServer = serverIndex;
    fedLib = lib;
    if (!fedFabric || !fedLib) {
        fedCost.reset();
        return;
    }
    federation::FederationCostConfig fc;
    fc.safetyFactor = cfg.federationSafetyFactor;
    fedCost = std::make_unique<federation::FederationCostModel>(
        *fedFabric, perf, fc);
}

void
VllmEngine::setTraceLog(trace::TraceLog *log)
{
    tracer = log;
    if (brownout)
        brownout->setTraceLog(log);
    if (precisionGov)
        precisionGov->setTraceLog(log);
}

void
VllmEngine::setFallbackBackend(OffloadBackend *fallbackBackend)
{
    fallback = fallbackBackend;
}

void
VllmEngine::attachSessionTier(SessionTier *tier)
{
    sessionTier = tier;
}

void
VllmEngine::submit(const workload::Request &request)
{
    // Accept early submissions: the request only becomes visible to
    // the scheduler at its arrival time.
    if (request.arrival > server.simulation().now()) {
        workload::Request r = request;
        server.simulation().queue().schedule(r.arrival, [this, r] {
            submit(r);
        });
        return;
    }
    auto seq = std::make_unique<Sequence>();
    seq->request = request;
    seq->metrics.id = request.id;
    seq->metrics.arrival = request.arrival;
    seq->metrics.deadline = request.deadline;
    Sequence *raw = seq.get();
    all.push_back(std::move(seq));
    waiting.push_back(raw);
    ++arrivalsSinceInform;

    // Brownout fast-fail at the door: refusing now is cheaper (for
    // both sides) than queueing a request the ladder will shed at its
    // first scheduling pass anyway.
    if (brownout) {
        Tick now = server.simulation().now();
        updateBrownout(now);
        if (brownout->rejectingNew()) {
            shedSeq(raw, overload::ShedReason::BrownoutReject, now);
            return;
        }
        if (request.bestEffort && brownout->shedBestEffort()) {
            shedSeq(raw, overload::ShedReason::BrownoutBestEffort,
                    now);
            return;
        }
    }
    maybeBeginResume(raw);
    maybeBeginFederationFetch(raw);
    needResched = true;
    scheduleStep(server.simulation().now());
}

void
VllmEngine::maybeBeginResume(Sequence *s)
{
    if (!sessionTier || s->request.turn == 0)
        return;
    std::uint64_t key = s->request.userId;
    std::uint32_t parked = sessionTier->parkedTokens(key);
    if (parked == 0)
        return;
    // The follow-up's prompt re-sends the conversation history the
    // parked KV covers; cap one short of the prompt so at least one
    // token is always computed.
    std::uint32_t cap =
        s->request.promptTokens > 0 ? s->request.promptTokens - 1 : 0;
    std::uint32_t usable = std::min(parked, cap);
    if (usable == 0) {
        sessionTier->cancelResume(key);
        return;
    }
    Tick now = server.simulation().now();
    // A quantized parked copy streams fewer bytes but pays a dequant
    // pass on arrival; fold that into the crossover so recompute wins
    // when dequant erodes the streaming advantage.
    Tick streamOverhead = 0;
    auto pp = parkPrecisions.find(key);
    if (pp != parkPrecisions.end() &&
        pp->second != spec.kvPrecision) {
        streamOverhead =
            perf.dequantTimeAt(kv->kvBytes(usable), pp->second);
    }
    // Stream-vs-recompute crossover: the tier compares the prefetch
    // makespan against what re-prefilling the parked context costs at
    // the roofline rate. Streaming starts immediately so the windows
    // overlap whatever the GPU is already decoding.
    bool streaming = sessionTier->beginResume(
        key, now, perf.prefillTime(usable),
        [this, s, key, usable](bool streamed) {
            s->resumePending = false;
            if (s->state != Sequence::State::Waiting)
                return; // shed while the stream was in flight
            if (streamed) {
                // Signature-verify the streamed KV on arrival. A hit
                // means the *stored* copy rotted on media
                // (ssd_bitrot): re-reading returns the same damaged
                // bytes, so the stream is discarded and this turn
                // re-prefills from the prompt.
                hw::Ssd *drive = server.topology().ssd();
                if (drive && drive->drawBitrot()) {
                    ++integrity.detected;
                    ++integrity.recomputeFallbacks;
                    if (tracer) {
                        json::Value f;
                        f["request"] = static_cast<std::int64_t>(
                            s->request.id);
                        f["path"] = "ssd_resume";
                        tracer->emit(server.simulation().now(),
                                     "corruption_recompute",
                                     std::move(f));
                    }
                    ++nRecomputeResumes;
                } else {
                    s->resumedTokens = usable;
                    ++nStreamResumes;
                }
            } else {
                // Cancelled mid-stream (device degradation/failure):
                // fall back to a full re-prefill.
                ++nRecomputeResumes;
            }
            needResched = true;
            scheduleStep(server.simulation().now());
        },
        streamOverhead);
    if (streaming)
        s->resumePending = true;
    else
        ++nRecomputeResumes;
}

void
VllmEngine::maybeBeginFederationFetch(Sequence *s)
{
    if (!fedEnabled() || !cfg.prefixCache || s->resumePending ||
        s->fedPending || s->prefilledTokens > 0)
        return;
    std::vector<core::AquaLib::PrefixCandidate> cands =
        prefixCandidates(s, 0);
    if (cands.empty())
        return;
    // Escalation order: the scale-up domain first — a chain homed on
    // any GPU here streams over NVLink at admission — and only a
    // domain-wide miss consults the federation directory.
    if (clusterLib->prefixLookup(cands).found)
        return;
    core::AquaLib::FederationLookupOutcome fl =
        fedLib->federationLookup(cands);
    if (!fl.found) {
        ++prefixStats.fedMisses;
        return;
    }
    ++prefixStats.fedHits;
    // Trust nothing across the fabric: the advertised chain's content
    // signature must match this request's own tokens.
    TokenFn tok = tokenFnFor(s->request);
    std::uint64_t wantSig = KvCache::contentSig(
        tok, 0, fl.chain.blocks * cfg.blockTokens);
    if (wantSig != fl.chain.chainSig) {
        ++prefixStats.clusterSigMismatches;
        return;
    }
    // Stream-vs-recompute, priced at the fabric's current state
    // (degradation, queue backlog) and the chain's wire bytes.
    federation::FederationDecision verdict = fedCost->decide(
        fl.chain.homeServer, fedServer, fl.chain.bytes,
        fl.chain.tokens, spec.kvPrecision);
    if (!verdict.stream) {
        ++prefixStats.fedRecomputeDecisions;
        if (tracer) {
            json::Value f;
            f["request"] = static_cast<std::int64_t>(s->request.id);
            f["stream_estimate"] =
                static_cast<std::int64_t>(verdict.streamEstimate);
            f["prefill_estimate"] =
                static_cast<std::int64_t>(verdict.prefillEstimate);
            tracer->emit(server.simulation().now(), "fed_recompute",
                         std::move(f));
        }
        return;
    }
    ++prefixStats.fedStreamDecisions;
    // Home-side admission: the Harvest-style cap bounds concurrent
    // remote consumers per home, and staleness is re-checked there.
    core::AquaLib::FederationFetchOutcome grant =
        fedLib->federationFetch(fl.chain);
    if (!grant.ok) {
        ++prefixStats.fedFetchRefusals;
        return;
    }
    Tick now = server.simulation().now();
    s->fedPending = true;
    s->fedTicket = grant.ticket;
    s->fedHomeServer = grant.homeServer;
    std::uint32_t tokens = static_cast<std::uint32_t>(grant.tokens);
    std::uint64_t bytes = grant.bytes;
    if (tracer) {
        json::Value f;
        f["request"] = static_cast<std::int64_t>(s->request.id);
        f["home_server"] =
            static_cast<std::int64_t>(grant.homeServer);
        f["tokens"] = static_cast<std::int64_t>(tokens);
        f["bytes"] = static_cast<std::int64_t>(bytes);
        tracer->emit(now, "fed_stream_begin", std::move(f));
    }
    fedFabric->streamKv(
        grant.homeServer, grant.homeGpu, fedServer, myGpu, bytes,
        [this, s, tokens, bytes] {
            s->fedPending = false;
            // Close the ticket whatever happens next: it frees the
            // home's admission slot and reports payload validity (the
            // chain may have been evicted or its home lost while the
            // stream was on the wire).
            bool valid = fedLib && fedLib->federationFetchDone(
                                       s->fedHomeServer, s->fedTicket);
            s->fedTicket = 0;
            if (s->state == Sequence::State::Waiting) {
                if (valid) {
                    s->fedTokens = tokens;
                    ++prefixStats.fedStreamsCompleted;
                    prefixStats.fedStreamBytes += bytes;
                } else {
                    // Cancel to recompute: the payload is worthless,
                    // the request simply re-prefills from its prompt.
                    ++prefixStats.fedStreamsInvalidated;
                }
            }
            if (tracer) {
                json::Value f;
                f["request"] =
                    static_cast<std::int64_t>(s->request.id);
                f["valid"] = valid;
                tracer->emit(server.simulation().now(),
                             "fed_stream_end", std::move(f));
            }
            needResched = true;
            scheduleStep(server.simulation().now());
        },
        now);
}

void
VllmEngine::scheduleStep(Tick when)
{
    EventQueue &q = server.simulation().queue();
    if (when < q.now())
        when = q.now();
    if (stepPending)
        return;
    stepPending = true;
    q.schedule(when, [this] {
        stepPending = false;
        step();
    });
}

void
VllmEngine::removeFrom(std::vector<Sequence *> &list, Sequence *s)
{
    auto it = std::find(list.begin(), list.end(), s);
    if (it != list.end())
        list.erase(it);
}

void
VllmEngine::recordFreeMemory()
{
    Tick now = server.simulation().now();
    std::uint64_t visible = server.gpu(myGpu).hbm().freeBytes();
    if (aquaLib)
        visible += aquaLib->leasedBytes();
    freeMem.record(now, static_cast<double>(visible));
}

void
VllmEngine::doInform()
{
    if (!aquaLib)
        return;
    core::EngineStats st;
    st.now = server.simulation().now();
    st.pendingRequests = waiting.size();
    st.runningRequests = running.size() + swapped.size();
    st.arrivalsSinceLast = arrivalsSinceInform;
    st.freePoolBytes = kv->freeBytes();
    st.reservedPoolBytes = kv->poolBytes();
    // Backpressure signals: queue delay and sheds tell the informer
    // the engine is hurting, so it reclaims leased memory before the
    // queue (and the shed rate) grows further.
    st.queueDelaySec = oldestWaitingSec(st.now);
    st.shedsSinceLast = shedsSinceInform;
    st.registryHits = prefixStats.registryHits;
    st.registryMisses = prefixStats.registryMisses;
    st.remotePrefixBytes =
        prefixStats.remoteCopyBytes + prefixStats.remoteDecodeReadBytes;
    shedsSinceInform = 0;
    arrivalsSinceInform = 0;

    std::int64_t delta = aquaLib->informStats(st);
    if (delta < 0) {
        std::uint64_t released =
            kv->shrink(static_cast<std::uint64_t>(-delta));
        aquaLib->confirmDonate(released);
    } else if (delta > 0) {
        kv->grow(static_cast<std::uint64_t>(delta));
    }
}

void
VllmEngine::publishSeq(Sequence *s, bool atFinish)
{
    if (!cfg.prefixCache || s->blocks.empty())
        return;
    // Brownout: cache upkeep is optional work. Above NoCachePublish
    // the engine stops growing the index so freed blocks return to
    // the pool instead of lingering as evictable cache.
    if (brownout && brownout->publishDisabled())
        return;
    Tick now = server.simulation().now();
    if (!clusterEnabled()) {
        // Simulated token contents are deterministic per request
        // stream, so every computed position is publishable;
        // publishPrefix caps coverage at what the blocks hold.
        kv->publishPrefix(tokenFnFor(s->request), s->kvTokens(),
                          s->blocks, now);
        return;
    }
    // Borrowed sequences hold only their tail blocks; there is no
    // locally resident chain rooted at token zero to advertise.
    if (s->remoteLeadBlocks > 0)
        return;

    TokenFn tok = tokenFnFor(s->request);
    std::uint64_t kvTok = s->kvTokens();
    std::size_t fullBlocks = std::min<std::size_t>(
        s->blocks.size(),
        static_cast<std::size_t>(kvTok / cfg.blockTokens));

    // Register the shareable boundaries and derive how much of the
    // chain to retain locally: a boundary homed elsewhere (Replica)
    // is not duplicated past the previous boundary — unless a longer
    // chain is homed here, since homing carries the duty to keep the
    // whole chain resident.
    using Role = core::AquaLib::PrefixPublishOutcome::Role;
    std::uint64_t insertCap = kvTok;
    bool replicaSeen = false;
    std::uint64_t prevTokens = 0;
    for (std::size_t b : chainBoundaries(s, fullBlocks, atFinish)) {
        PrefixIndex::ChainKeys ck = kv->prefixChainKeysAt(tok, b);
        std::uint64_t tokens = std::uint64_t(b) * cfg.blockTokens;
        Role role;
        if (homeChains.count(ck.key) != 0) {
            role = Role::Home;
        } else if (replicaChains.count(ck.key) != 0) {
            role = Role::Replica;
        } else if (collisionChains.count(ck.key) != 0) {
            role = Role::Collision;
        } else {
            auto out = clusterLib->prefixPublish(
                ck.key, ck.verify, static_cast<std::uint32_t>(b),
                tokens, kv->kvBytes(tokens),
                KvCache::contentSig(
                    tok, 0, static_cast<std::uint32_t>(tokens)));
            role = out.role;
            if (role == Role::Collision)
                collisionChains.insert(ck.key);
        }
        if (role == Role::Home || role == Role::Replica) {
            ClusterChain rec;
            rec.blocks.assign(s->blocks.begin(),
                              s->blocks.begin() + b);
            rec.tokens = tokens;
            rec.verify = ck.verify;
            rec.req = s->request;
            rec.owner = role == Role::Replica ? s : nullptr;
            auto &chains =
                role == Role::Home ? homeChains : replicaChains;
            chains[ck.key] = std::move(rec);
        }
        if (role == Role::Replica && !replicaSeen) {
            insertCap = prevTokens;
            replicaSeen = true;
        } else if (role == Role::Home && replicaSeen) {
            insertCap = tokens;
        }
        prevTokens = tokens;
    }
    kv->publishPrefix(tok, kvTok, s->blocks, now, true, insertCap);
}

std::vector<std::size_t>
VllmEngine::chainBoundaries(const Sequence *s, std::size_t maxBlocks,
                            bool atFinish) const
{
    std::vector<std::size_t> out;
    const workload::Request &r = s->request;
    std::size_t preamble =
        r.prefixTokens >= cfg.blockTokens
            ? std::min<std::size_t>(r.prefixTokens / cfg.blockTokens,
                                    maxBlocks)
            : 0;
    if (preamble > 0)
        out.push_back(preamble);
    // Only *final* contexts of conversation streams recur (as the
    // next turn's history prefix); intermediate contexts of a
    // request-private stream never match anything.
    if (atFinish && r.contentStream != 0 && maxBlocks > preamble)
        out.push_back(maxBlocks);
    return out;
}

std::vector<core::AquaLib::PrefixCandidate>
VllmEngine::prefixCandidates(const Sequence *s,
                             std::size_t localFull) const
{
    std::vector<core::AquaLib::PrefixCandidate> cands;
    std::uint64_t match = s->kvTokens() > 0 ? s->kvTokens() - 1 : 0;
    std::size_t wantFull =
        static_cast<std::size_t>(match / cfg.blockTokens);
    if (wantFull <= localFull)
        return cands;

    TokenFn tok = tokenFnFor(s->request);
    // Candidate boundaries, longest first. Conversation streams scan
    // densely — the previous turn's finish boundary is not knowable
    // here — while for declared-preamble requests only the preamble
    // boundary can match anything cluster-wide.
    std::vector<PrefixIndex::ChainKeys> keys =
        kv->prefixChainKeysUpTo(tok, wantFull);
    if (s->request.contentStream != 0) {
        constexpr std::size_t kMaxCandidates = 64;
        for (std::size_t b = wantFull;
             b > localFull && cands.size() < kMaxCandidates; --b) {
            cands.push_back({keys[b - 1].key, keys[b - 1].verify,
                             static_cast<std::uint32_t>(b)});
        }
    }
    std::size_t preamble =
        s->request.prefixTokens >= cfg.blockTokens
            ? s->request.prefixTokens / cfg.blockTokens
            : 0;
    if (preamble > localFull && preamble <= wantFull) {
        bool present = false;
        for (const auto &c : cands)
            present |= c.blocks == preamble;
        if (!present) {
            cands.push_back({keys[preamble - 1].key,
                             keys[preamble - 1].verify,
                             static_cast<std::uint32_t>(preamble)});
        }
    }
    return cands;
}

void
VllmEngine::tryRemotePrefix(Sequence *s, KvCache::PrefixAcquire &acq,
                            Tick &transfersDone)
{
    std::size_t localFull =
        acq.blocks.size() - (acq.partialTokens > 0 ? 1 : 0);
    std::vector<core::AquaLib::PrefixCandidate> cands =
        prefixCandidates(s, localFull);
    if (cands.empty())
        return;
    TokenFn tok = tokenFnFor(s->request);

    core::AquaLib::PrefixLookupOutcome rl =
        clusterLib->prefixLookup(cands);
    if (!rl.found || rl.home == myGpu || rl.blocks <= localFull) {
        ++prefixStats.registryMisses;
        return;
    }
    // Trust nothing across the wire: the registered chain's content
    // signature must match this request's own tokens.
    std::uint64_t wantSig = KvCache::contentSig(
        tok, 0, rl.blocks * cfg.blockTokens);
    if (wantSig != rl.chainSig) {
        ++prefixStats.clusterSigMismatches;
        ++prefixStats.registryMisses;
        return;
    }
    if (server.topology().gpuFailed(rl.home)) {
        ++prefixStats.registryMisses;
        return;
    }
    core::AquaLib::PrefixPinOutcome pinr =
        clusterLib->prefixPin(rl.key, rl.verify);
    if (!pinr.ok) {
        ++prefixStats.registryMisses;
        return;
    }

    Tick now = server.simulation().now();
    // Sparse attention reprices borrow-vs-copy: each decode step reads
    // only a fraction of the borrowed lead over the peer link, so
    // proportionally longer chains are worth serving in place.
    std::uint64_t borrowCap = cfg.clusterBorrowMaxBlocks;
    if (cfg.sparseReadFraction < 1.0) {
        borrowCap = static_cast<std::uint64_t>(
            static_cast<double>(borrowCap) / cfg.sparseReadFraction);
    }
    if (localFull == 0 && rl.blocks <= borrowCap) {
        // Short chain: serve the lead in place from the home GPU.
        // The lease holds until the sequence releases it.
        if (!acq.blocks.empty()) {
            kv->freeBlocks(acq.blocks);
            acq.blocks.clear();
        }
        acq.tokens = rl.tokens;
        acq.partialTokens = 0;
        s->remoteLeadBlocks = rl.blocks;
        s->remoteLeadTokens = rl.tokens;
        s->remoteHome = pinr.home;
        s->remotePin = pinr.pin;
        prefixStats.remoteHitBlocks += rl.blocks;
        ++prefixStats.borrowAdmissions;
        ++prefixStats.registryHits;
        // Integrity draw on the admission probe read. A link hit is
        // always repairable here: the pinned home copy is intact, so
        // one retransmission over NVLink clears it.
        if (server.topology().drawPayloadCorruption()) {
            ++integrity.detected;
            if (tracer) {
                json::Value f;
                f["request"] =
                    static_cast<std::int64_t>(s->request.id);
                f["path"] = "prefix_borrow";
                tracer->emit(now, "corruption_detected",
                             std::move(f));
            }
            hw::TransferTiming redo = clusterLib->readPeerPrefix(
                pinr.home, kv->kvBytes(rl.tokens), rl.blocks, now);
            if (redo.complete > transfersDone)
                transfersDone = redo.complete;
            ++integrity.repairedRetransmit;
            if (tracer) {
                json::Value f;
                f["request"] =
                    static_cast<std::int64_t>(s->request.id);
                f["path"] = "prefix_borrow";
                tracer->emit(now, "corruption_repaired",
                             std::move(f));
            }
        }
        return;
    }

    // Stream a local copy of the missing lead blocks over NVLink; the
    // lease holds the home copy resident until the transfer lands.
    if (acq.partialTokens > 0) {
        kv->freeBlocks({acq.blocks.back()});
        acq.blocks.pop_back();
        acq.tokens -= acq.partialTokens;
        acq.partialTokens = 0;
    }
    std::size_t missing = rl.blocks - localFull;
    auto fresh = kv->allocateBlocks(missing);
    if (!fresh) {
        clusterLib->prefixUnpin(pinr.pin);
        ++prefixStats.registryMisses;
        return;
    }
    std::uint64_t bytes =
        kv->kvBytes(std::uint64_t(missing) * cfg.blockTokens);
    hw::TransferTiming t =
        clusterLib->readPeerPrefix(pinr.home, bytes, missing, now);
    // Verify the streamed copy's signatures before admitting it. A
    // hit is in-flight link corruption (the pinned home copy is still
    // good), so one retransmission repairs it; the lease simply holds
    // a little longer.
    if (server.topology().drawPayloadCorruption()) {
        ++integrity.detected;
        if (tracer) {
            json::Value f;
            f["request"] = static_cast<std::int64_t>(s->request.id);
            f["path"] = "prefix_copy";
            tracer->emit(now, "corruption_detected", std::move(f));
        }
        t = clusterLib->readPeerPrefix(pinr.home, bytes, missing,
                                       t.complete);
        ++integrity.repairedRetransmit;
        if (tracer) {
            json::Value f;
            f["request"] = static_cast<std::int64_t>(s->request.id);
            f["path"] = "prefix_copy";
            tracer->emit(now, "corruption_repaired", std::move(f));
        }
    }
    if (t.complete > transfersDone)
        transfersDone = t.complete;
    for (std::size_t i = 0; i < fresh->size(); ++i) {
        std::uint64_t first =
            std::uint64_t(localFull + i) * cfg.blockTokens;
        kv->setBlockSig((*fresh)[i], KvCache::contentSig(
                                         tok, first, cfg.blockTokens));
        kv->setBlockOrigin((*fresh)[i], BlockOrigin::RemotePeer);
    }
    acq.blocks.insert(acq.blocks.end(), fresh->begin(), fresh->end());
    acq.tokens = std::uint64_t(rl.blocks) * cfg.blockTokens;
    prefixStats.remoteHitBlocks += missing;
    prefixStats.remoteCopyBytes += bytes;
    ++prefixStats.copyAdmissions;
    ++prefixStats.registryHits;
    // Release the lease once the stream has landed on this GPU.
    std::uint64_t pin = pinr.pin;
    server.simulation().queue().schedule(t.complete, [this, pin] {
        if (clusterLib)
            clusterLib->prefixUnpin(pin);
    });
}

void
VllmEngine::releaseRemoteLead(Sequence *s)
{
    if (s->remotePin != 0 && clusterLib)
        clusterLib->prefixUnpin(s->remotePin);
    s->remotePin = 0;
    s->remoteLeadBlocks = 0;
    s->remoteLeadTokens = 0;
    s->remoteHome = hw::hostDramId;
}

void
VllmEngine::dropChainsOwnedBy(const Sequence *s)
{
    if (replicaChains.empty() || !clusterLib)
        return;
    for (auto it = replicaChains.begin();
         it != replicaChains.end();) {
        if (it->second.owner == s) {
            std::uint64_t key = it->first;
            std::uint64_t verify = it->second.verify;
            it = replicaChains.erase(it);
            clusterLib->prefixEvictNotify(key, verify);
        } else {
            ++it;
        }
    }
}

bool
VllmEngine::clusterSetPinned(std::uint64_t key, bool pinned)
{
    auto it = homeChains.find(key);
    if (it == homeChains.end())
        return false;
    for (aqua::mem::BlockId id : it->second.blocks) {
        if (pinned)
            kv->pinBlock(id);
        else
            kv->unpinBlock(id);
    }
    return true;
}

bool
VllmEngine::clusterPromote(std::uint64_t key)
{
    auto it = replicaChains.find(key);
    if (it == replicaChains.end())
        return false;
    ClusterChain c = std::move(it->second);
    replicaChains.erase(it);
    c.owner = nullptr;
    // Adopt the chain: index it locally so it stays resident (and
    // pinnable) after the owning sequence releases its blocks.
    kv->publishPrefix(tokenFnFor(c.req), c.tokens, c.blocks,
                      server.simulation().now());
    homeChains.emplace(key, std::move(c));
    return true;
}

void
VllmEngine::onCacheBlockEvicted(aqua::mem::BlockId id)
{
    if (!clusterLib || homeChains.empty())
        return;
    for (auto it = homeChains.begin(); it != homeChains.end();) {
        ClusterChain &c = it->second;
        if (std::find(c.blocks.begin(), c.blocks.end(), id) !=
            c.blocks.end()) {
            std::uint64_t key = it->first;
            std::uint64_t verify = c.verify;
            it = homeChains.erase(it);
            clusterLib->prefixEvictNotify(key, verify);
        } else {
            ++it;
        }
    }
}

void
VllmEngine::countPrefixHit(const Sequence *s,
                           const KvCache::PrefixAcquire &acq)
{
    std::uint64_t local = 0;
    std::uint64_t remote = 0;
    std::uint64_t dram = 0;
    std::uint64_t remoteServer = 0;
    std::uint64_t covered = 0;
    for (std::size_t i = 0;
         i < acq.blocks.size() && covered < acq.tokens; ++i) {
        std::uint64_t tk = std::min<std::uint64_t>(
            cfg.blockTokens, acq.tokens - covered);
        switch (kv->blockOrigin(acq.blocks[i])) {
          case BlockOrigin::Local:
            local += tk;
            break;
          case BlockOrigin::RemotePeer:
            remote += tk;
            break;
          case BlockOrigin::Dram:
            dram += tk;
            break;
          case BlockOrigin::RemoteServer:
            remoteServer += tk;
            break;
        }
        covered += tk;
    }
    // A borrowed lead serves from the peer with no local blocks.
    remote += s->remoteLeadTokens;
    prefixStats.hitTokensLocal += local;
    prefixStats.hitTokensRemote += remote;
    prefixStats.hitTokensDram += dram;
    prefixStats.hitTokensRemoteServer += remoteServer;
    if (tracer) {
        json::Value f;
        f["request"] = static_cast<std::int64_t>(s->request.id);
        f["tokens"] = static_cast<std::int64_t>(acq.tokens);
        f["local"] = static_cast<std::int64_t>(local);
        f["remote_peer"] = static_cast<std::int64_t>(remote);
        f["dram"] = static_cast<std::int64_t>(dram);
        f["remote_server"] =
            static_cast<std::int64_t>(remoteServer);
        tracer->emit(server.simulation().now(), "prefix_hit",
                     std::move(f));
    }
}

std::size_t
VllmEngine::sharedLeadBlocks(const Sequence *s) const
{
    // A borrowed lead lives on the home GPU, not in s->blocks.
    if (s->remoteLeadBlocks > 0)
        return 0;
    // Leading run of full blocks some other holder (the index or a
    // peer sequence) also references: exactly the blocks whose
    // contents are recoverable from a shared-group backend copy.
    std::size_t maxFull =
        static_cast<std::size_t>(s->kvTokens() / cfg.blockTokens);
    std::size_t lead = 0;
    while (lead < s->blocks.size() && lead < maxFull &&
           kv->blockRefCount(s->blocks[lead]) > 1)
        ++lead;
    return lead;
}

void
VllmEngine::releaseSwapGroup(Sequence *s)
{
    if (s->swapGroupKey != 0) {
        auto it = sharedGroups.find(s->swapGroupKey);
        if (it != sharedGroups.end() && --it->second.refs == 0) {
            backend.free(it->second.handle);
            sharedGroups.erase(it);
        }
    }
    s->swapGroupKey = 0;
    s->swapSharedBlocks = 0;
    s->swapSigs.clear();
}

void
VllmEngine::swapOutSeq(Sequence *s, Tick &transfersDone)
{
    if (cfg.preemption == PreemptionMode::Recompute ||
        !s->prefilled || s->remoteLeadBlocks > 0) {
        // vLLM's recompute policy: drop the KV; the sequence will
        // re-prefill its whole context (prompt + generated) when it
        // is scheduled again. No transfer, but FLOPs later. Also
        // used for sequences caught mid-prefill: vLLM never swaps
        // an unprefilled sequence. With prefix caching the computed
        // context is published first, so the re-prefill resumes from
        // whatever the cache still holds at readmission. A borrowed
        // remote lead can never swap — the lease is released and the
        // context recomputed (or re-fetched) on readmission.
        if (s->prefilled)
            publishSeq(s);
        releaseRemoteLead(s);
        dropChainsOwnedBy(s);
        kv->freeBlocks(s->blocks);
        s->blocks.clear();
        s->prefilled = false;
        s->prefilledTokens = 0;
        s->state = Sequence::State::Waiting;
        removeFrom(running, s);
        waiting.push_back(s);
        ++nRecomputes;
        needResched = true;
        return;
    }
    // The circuit breaker diverts swaps to the fallback (host DRAM)
    // backend while the primary offload path is under reclaim or link
    // degradation. Shared-group dedup only applies on the primary
    // backend — group copies live there, so fallback swaps are always
    // private.
    OffloadBackend &target = swapTarget();
    bool usingFallback = &target != &backend;
    std::uint64_t bytes = kv->kvBytes(s->kvTokens());
    std::uint64_t groupBytes = 0;
    std::size_t lead = 0;
    if (cfg.prefixCache) {
        // Keep the prefix resident (index references survive the
        // borrower's frees below) and snapshot per-block signatures
        // for the byte-identity check on swap-in.
        publishSeq(s);
        s->swapSigs.clear();
        s->swapSigs.reserve(s->blocks.size());
        for (aqua::mem::BlockId b : s->blocks)
            s->swapSigs.push_back(kv->blockSig(b));
        // Deduplicated offload: a shared prefix is materialized in
        // the backend once per group; later borrowers just take a
        // reference instead of re-staging the same bytes.
        if (!usingFallback)
            lead = sharedLeadBlocks(s);
        if (lead > 0) {
            std::uint64_t key = kv->prefixChainKey(
                tokenFnFor(s->request), lead);
            groupBytes =
                kv->kvBytes(std::uint64_t(lead) * cfg.blockTokens);
            auto [it, fresh] = sharedGroups.try_emplace(key);
            if (fresh) {
                auto gh = backend.alloc(groupBytes);
                if (!gh) {
                    // Backend full: fall back to a private swap.
                    sharedGroups.erase(it);
                    lead = 0;
                    groupBytes = 0;
                } else {
                    it->second.handle = *gh;
                    it->second.blocks =
                        static_cast<std::uint32_t>(lead);
                    hw::TransferTiming t =
                        backend.write(*gh, groupBytes, lead);
                    if (t.complete > transfersDone)
                        transfersDone = t.complete;
                    nWriteBytes += groupBytes;
                    ++prefixStats.groupWrites;
                }
            } else {
                prefixStats.dedupSavedBytes += groupBytes;
                ++prefixStats.sharedSwapOuts;
            }
            if (lead > 0) {
                ++it->second.refs;
                s->swapGroupKey = key;
                s->swapSharedBlocks = static_cast<std::uint32_t>(lead);
            }
        }
    }
    std::uint64_t tailBytes = bytes - groupBytes;
    // Quantize-before-evict: under memory pressure the governor
    // demotes the *private* tail below the serving precision before
    // it leaves HBM. Shared-group copies stay at serving precision —
    // other borrowers restore from them without a dequant pass.
    model::KvPrecision cold = coldPrecision();
    std::uint64_t storedTail = tailBytes;
    Tick quantReady = 0;
    if (cold != spec.kvPrecision && tailBytes > 0) {
        storedTail =
            model::rescaleKvBytes(tailBytes, spec.kvPrecision, cold);
        // The quantization kernel runs before the bytes can stage out.
        quantReady = server.simulation().now() +
                     perf.dequantTimeAt(tailBytes, cold);
        if (precisionGov)
            precisionGov->notePayload(tailBytes, storedTail);
    }
    s->swapPrecision = cold;
    s->swapHandle = OffloadBackend::Handle{};
    s->swapBackend = nullptr;
    if (storedTail > 0) {
        auto handle = target.alloc(storedTail);
        if (!handle && usingFallback) {
            // Fallback full: fail back to the primary path rather
            // than dropping the sequence.
            handle = backend.alloc(storedTail);
            usingFallback = false;
        }
        if (!handle) {
            panic("VllmEngine: offload backend exhausted swapping out "
                  "sequence %llu",
                  static_cast<unsigned long long>(s->request.id));
        }
        OffloadBackend &dest = usingFallback ? target : backend;
        hw::TransferTiming t = dest.write(
            *handle, storedTail, s->blocks.size() - lead, quantReady);
        if (t.complete > transfersDone)
            transfersDone = t.complete;
        nWriteBytes += storedTail;
        s->swapHandle = *handle;
        if (usingFallback) {
            s->swapBackend = &target;
            ++nFallbackSwaps;
        }
        // Register the private tail with the tier's demotion policy
        // when it landed in a DRAM-class backend: a long-swapped
        // sequence's KV ages out of DRAM onto the SSD. Shared-group
        // copies are never registered — other borrowers may need them
        // at DRAM speed (they are pinned to DRAM by omission).
        if (sessionTier) {
            OffloadBackend &holder =
                s->swapBackend ? *s->swapBackend : backend;
            if (holder.name() == "dram")
                sessionTier->noteOffloaded(s->request.id, storedTail,
                                           server.simulation().now());
        }
    }
    dropChainsOwnedBy(s);
    kv->freeBlocks(s->blocks);
    s->blocks.clear();
    s->state = Sequence::State::Swapped;
    removeFrom(running, s);
    swapped.push_back(s);
    ++nSwapOuts;
}

bool
VllmEngine::swapInSeq(Sequence *s, Tick &transfersDone)
{
    std::size_t need = kv->blocksForTokens(s->kvTokens());

    // Re-acquire whatever of the shared prefix is still resident:
    // those blocks need no transfer at all. The cap is a multiple of
    // the block size, so only full blocks can match.
    std::vector<aqua::mem::BlockId> resident;
    if (cfg.prefixCache && s->swapSharedBlocks > 0) {
        KvCache::PrefixAcquire acq = kv->acquirePrefix(
            tokenFnFor(s->request),
            std::uint64_t(s->swapSharedBlocks) * cfg.blockTokens,
            server.simulation().now());
        resident = std::move(acq.blocks);
    }

    auto blocks = kv->allocateBlocks(need - resident.size());
    if (!blocks) {
        if (!resident.empty())
            kv->freeBlocks(resident);
        return false;
    }

    // Shared blocks evicted since swap-out come from the group's
    // single backend copy; the private tail from the swap handle.
    std::size_t missingShared = s->swapSharedBlocks - resident.size();
    if (missingShared > 0) {
        auto it = sharedGroups.find(s->swapGroupKey);
        if (it == sharedGroups.end()) {
            panic("VllmEngine: shared group %llx vanished under "
                  "swapped sequence %llu",
                  static_cast<unsigned long long>(s->swapGroupKey),
                  static_cast<unsigned long long>(s->request.id));
        }
        std::uint64_t sharedBytes =
            kv->kvBytes(std::uint64_t(missingShared) * cfg.blockTokens);
        hw::TransferTiming t = backend.read(it->second.handle,
                                            sharedBytes, missingShared);
        if (t.complete > transfersDone)
            transfersDone = t.complete;
        nReadBytes += sharedBytes;
    }
    prefixStats.residentReuseBytes +=
        kv->kvBytes(std::uint64_t(resident.size()) * cfg.blockTokens);
    if (s->swapHandle.valid()) {
        // The private tail comes back from whichever backend the
        // swap-out targeted (the fallback when the circuit breaker
        // was open).
        OffloadBackend &holder =
            s->swapBackend ? *s->swapBackend : backend;
        hw::TransferTiming t =
            holder.read(s->swapHandle, s->swapHandle.bytes,
                        need - s->swapSharedBlocks);
        Tick restored = t.complete;
        // A demoted tail streamed fewer bytes but must be dequantized
        // back to the serving precision before decode can touch it.
        if (s->swapPrecision != spec.kvPrecision) {
            std::uint64_t servingBytes = model::rescaleKvBytes(
                s->swapHandle.bytes, s->swapPrecision,
                spec.kvPrecision);
            restored +=
                perf.dequantTimeAt(servingBytes, s->swapPrecision);
        }
        if (restored > transfersDone)
            transfersDone = restored;
        nReadBytes += s->swapHandle.bytes;
        // Signature-verify the restored tail before decode touches
        // it. Which fault applies depends on where the bytes lived: a
        // DRAM/peer payload corrupted in flight (payload_corrupt)
        // re-reads cleanly from the intact backend copy, while a tail
        // demoted to the SSD can have rotted at rest (ssd_bitrot) —
        // the stored copy itself is damaged, so re-reading returns
        // the same bad bytes and the sequence must drop its KV and
        // recompute.
        bool onSsd = holder.name() == "ssd";
        hw::Ssd *drive = server.topology().ssd();
        if (onSsd && drive && drive->drawBitrot()) {
            ++integrity.detected;
            ++integrity.recomputeFallbacks;
            if (tracer) {
                json::Value f;
                f["request"] =
                    static_cast<std::int64_t>(s->request.id);
                f["path"] = "swap_in";
                tracer->emit(server.simulation().now(),
                             "corruption_recompute", std::move(f));
            }
            if (sessionTier)
                sessionTier->forgetOffloaded(
                    s->request.id,
                    &holder == &sessionTier->demotionStore(),
                    server.simulation().now());
            holder.free(s->swapHandle);
            s->swapHandle = OffloadBackend::Handle{};
            s->swapBackend = nullptr;
            s->swapPrecision = spec.kvPrecision;
            if (!resident.empty())
                kv->freeBlocks(resident);
            kv->freeBlocks(*blocks);
            releaseSwapGroup(s);
            s->prefilled = false;
            s->prefilledTokens = 0;
            s->state = Sequence::State::Waiting;
            removeFrom(swapped, s);
            waiting.push_back(s);
            ++nRecomputes;
            needResched = true;
            // The abort consumed backend work (the read happened);
            // report progress so the scheduler's transfer window
            // stays honest.
            return true;
        }
        if (!onSsd && server.topology().drawPayloadCorruption()) {
            ++integrity.detected;
            if (tracer) {
                json::Value f;
                f["request"] =
                    static_cast<std::int64_t>(s->request.id);
                f["path"] = "swap_in";
                tracer->emit(server.simulation().now(),
                             "corruption_detected", std::move(f));
            }
            hw::TransferTiming rt =
                holder.read(s->swapHandle, s->swapHandle.bytes,
                            need - s->swapSharedBlocks);
            if (rt.complete > transfersDone)
                transfersDone = rt.complete;
            nReadBytes += s->swapHandle.bytes;
            ++integrity.repairedRetransmit;
            if (tracer) {
                json::Value f;
                f["request"] =
                    static_cast<std::int64_t>(s->request.id);
                f["path"] = "swap_in";
                tracer->emit(server.simulation().now(),
                             "corruption_repaired", std::move(f));
            }
        }
        if (sessionTier)
            sessionTier->forgetOffloaded(
                s->request.id,
                &holder == &sessionTier->demotionStore(),
                server.simulation().now());
        holder.free(s->swapHandle);
        s->swapHandle = OffloadBackend::Handle{};
        s->swapBackend = nullptr;
        s->swapPrecision = spec.kvPrecision;
    }

    s->blocks = std::move(resident);
    s->blocks.insert(s->blocks.end(), blocks->begin(), blocks->end());

    // Restored blocks came back through the offload/DRAM path; keep
    // the origin tag honest for the prefix-hit breakdown.
    for (aqua::mem::BlockId b : *blocks)
        kv->setBlockOrigin(b, BlockOrigin::Dram);

    // Byte-identity check: every block must carry the signature it
    // had at swap-out, whether it stayed resident or round-tripped
    // through the backend (restored blocks take their snapshot).
    if (cfg.prefixCache && !s->swapSigs.empty()) {
        std::size_t residentCount =
            s->blocks.size() - blocks->size();
        for (std::size_t i = 0; i < s->blocks.size() &&
                                i < s->swapSigs.size(); ++i) {
            if (i < residentCount) {
                if (kv->blockSig(s->blocks[i]) != s->swapSigs[i])
                    ++prefixStats.sigMismatches;
            } else {
                kv->setBlockSig(s->blocks[i], s->swapSigs[i]);
            }
        }
    }
    releaseSwapGroup(s);

    s->state = Sequence::State::Running;
    removeFrom(swapped, s);
    running.push_back(s);
    ++nSwapIns;
    return true;
}

bool
VllmEngine::admitSeq(Sequence *s, Tick &transfersDone)
{
    // A parked-session resume stream is still landing: hold the
    // sequence in waiting rather than gate the whole iteration's
    // compute on the media. The stream's completion callback
    // reschedules.
    if (s->resumePending)
        return false;
    // A cross-server federation stream is still on the fabric: hold
    // the sequence in waiting; its completion callback reschedules.
    if (s->fedPending)
        return false;
    // Completed resume stream: the restored context counts as already
    // prefilled (its KV arrives in the blocks allocated below), so
    // only the new turn's tail is computed.
    if (s->resumedTokens > 0 && s->prefilledTokens == 0) {
        s->prefilledTokens = s->resumedTokens;
        s->cachedTokens = s->resumedTokens;
        s->resumedTokens = 0;
    }
    // Completed (and validated) federation stream: the fetched chain
    // counts as already prefilled; its blocks are tagged below so hit
    // accounting attributes the tokens to the remote server.
    std::uint32_t fedApplied = 0;
    if (s->fedTokens > 0 && s->prefilledTokens == 0) {
        fedApplied = s->fedTokens;
        s->prefilledTokens = s->fedTokens;
        s->cachedTokens = s->fedTokens;
        s->fedTokens = 0;
    }
    // Adapter residency comes first: a missing adapter stalls the
    // iteration for its load (vLLM loads adapters synchronously).
    // Recompute-preempted sequences keep their pin across preemption.
    if (s->request.adapter != model::noLora && !s->adapterHeld) {
        if (!lora)
            panic("VllmEngine: request %llu wants an adapter but the "
                  "LoRA cache is disabled",
                  static_cast<unsigned long long>(s->request.id));
        Tick loaded = 0;
        if (!lora->acquire(s->request.adapter, loaded))
            return false;
        s->adapterHeld = true;
        if (loaded > transfersDone)
            transfersDone = loaded;
    }
    // kvTokens() so a recompute-preempted sequence gets room for its
    // whole regenerated context.
    std::size_t need = kv->blocksForTokens(s->kvTokens());

    // Prefix-cache admission: borrow every resident block matching
    // the context (capped one short of the full context so at least
    // one token is always computed) and skip their prefill.
    KvCache::PrefixAcquire acq;
    if (cfg.prefixCache && s->prefilledTokens == 0) {
        std::uint64_t match = s->kvTokens() > 0 ? s->kvTokens() - 1 : 0;
        acq = kv->acquirePrefix(tokenFnFor(s->request), match,
                                server.simulation().now());
        // Local miss (or partial coverage): ask the cluster registry
        // whether a peer GPU homes a longer chain.
        if (clusterEnabled())
            tryRemotePrefix(s, acq, transfersDone);
        if (acq.partialTokens > 0) {
            // The shared tail will be appended to during prefill:
            // copy-on-write it now (the cached original stays valid
            // for future matches).
            auto forked = kv->forkBlock(acq.blocks.back());
            if (forked) {
                acq.blocks.back() = *forked;
                ++prefixStats.cowForks;
            } else {
                // Pool exhausted: drop the partial part of the match.
                kv->freeBlocks({acq.blocks.back()});
                acq.blocks.pop_back();
                acq.tokens -= acq.partialTokens;
                acq.partialTokens = 0;
            }
        }
    }

    // A borrowed lead lives on the home GPU; it needs no local blocks.
    need -= s->remoteLeadBlocks;

    auto blocks = kv->allocateBlocks(need - acq.blocks.size());
    if (!blocks) {
        if (!acq.blocks.empty())
            kv->freeBlocks(acq.blocks);
        releaseRemoteLead(s);
        if (s->adapterHeld) {
            lora->release(s->request.adapter);
            s->adapterHeld = false;
        }
        return false;
    }
    if (acq.tokens > 0) {
        s->prefilledTokens = static_cast<std::uint32_t>(acq.tokens);
        s->cachedTokens = static_cast<std::uint32_t>(acq.tokens);
        prefixStats.cachedTokens += acq.tokens;
        countPrefixHit(s, acq);
    }
    s->blocks = std::move(acq.blocks);
    s->blocks.insert(s->blocks.end(), blocks->begin(), blocks->end());
    if (fedApplied > 0) {
        // The fetched chain's KV landed in the leading blocks; tag
        // them so hit accounting (and any later local reuse after
        // publishSeq) knows the content crossed the fabric.
        std::uint64_t covered = 0;
        for (aqua::mem::BlockId id : s->blocks) {
            if (covered >= fedApplied)
                break;
            kv->setBlockOrigin(id, BlockOrigin::RemoteServer);
            covered += cfg.blockTokens;
        }
        prefixStats.cachedTokens += fedApplied;
        prefixStats.hitTokensRemoteServer += fedApplied;
        if (tracer) {
            json::Value f;
            f["request"] = static_cast<std::int64_t>(s->request.id);
            f["tokens"] = static_cast<std::int64_t>(fedApplied);
            f["local"] = 0;
            f["remote_peer"] = 0;
            f["dram"] = 0;
            f["remote_server"] =
                static_cast<std::int64_t>(fedApplied);
            tracer->emit(server.simulation().now(), "prefix_hit",
                         std::move(f));
        }
    }
    s->state = Sequence::State::Running;
    removeFrom(waiting, s);
    running.push_back(s);
    if (s->metrics.admitted == 0) {
        // First admission only: readmissions after recompute
        // preemption keep the original queue-delay measurement.
        s->metrics.admitted = server.simulation().now();
        queueDelays.add(s->metrics.queueDelaySec());
        if (admission)
            admission->recordAdmit();
    }
    return true;
}

void
VllmEngine::finishSeq(Sequence *s, Tick when)
{
    s->state = Sequence::State::Finished;
    // A cold session parks its KV on the storage tier before the
    // blocks go back to the pool: the trace's idle gap is the park
    // predictor (the user is gone long enough that the prefix cache
    // will have evicted this context by the time they return).
    if (sessionTier && s->request.idleGapSec > 0.0) {
        // Parked KV is cold by definition: quantize it to the
        // governor's cold precision on the way down the tiers.
        model::KvPrecision cold = coldPrecision();
        std::uint64_t servingBytes = kv->kvBytes(s->kvTokens());
        std::uint64_t storedBytes = model::rescaleKvBytes(
            servingBytes, spec.kvPrecision, cold);
        if (sessionTier->park(s->request.userId, storedBytes,
                              static_cast<std::uint32_t>(s->kvTokens()),
                              s->request.idleGapSec, when)) {
            ++nParks;
            parkPrecisions[s->request.userId] = cold;
            if (cold != spec.kvPrecision && precisionGov)
                precisionGov->notePayload(servingBytes, storedBytes);
        }
    }
    // Leave the conversation's KV behind as cache: a follow-up turn
    // that re-sends this context will match it block for block.
    publishSeq(s, /*atFinish=*/true);
    releaseRemoteLead(s);
    dropChainsOwnedBy(s);
    kv->freeBlocks(s->blocks);
    s->blocks.clear();
    if (s->adapterHeld) {
        lora->release(s->request.adapter);
        s->adapterHeld = false;
    }
    removeFrom(running, s);
    s->metrics.finish = when;
    s->metrics.tokensGenerated = s->generated;
    finishedMetrics.push_back(s->metrics);
    if (admission)
        admission->recordCompletion(when, s->request.deadline);
    needResched = true;
    if (completionCb) {
        workload::RequestMetrics m = s->metrics;
        server.simulation().queue().schedule(when, [this, m] {
            completionCb(m);
        });
    }
}

void
VllmEngine::shedSeq(Sequence *s, overload::ShedReason reason,
                    Tick when)
{
    s->state = Sequence::State::Finished;
    removeFrom(waiting, s);
    // Predictor miss: shedding a resuming request cancels its
    // in-flight prefetch stream (windows already issued are wasted).
    if (sessionTier && s->resumePending)
        sessionTier->cancelResume(s->request.userId);
    if (s->adapterHeld) {
        lora->release(s->request.adapter);
        s->adapterHeld = false;
    }
    s->metrics.finish = when;
    s->metrics.shed = true;
    // Recompute-preempted victims may already have emitted tokens.
    s->metrics.tokensGenerated = s->generated;
    finishedMetrics.push_back(s->metrics);
    ++nSheds;
    ++shedsSinceInform;
    if (admission)
        admission->recordShed(reason);
    if (tracer) {
        json::Value f;
        f["request"] = static_cast<std::int64_t>(s->request.id);
        f["reason"] = std::string(overload::shedReasonName(reason));
        f["deadline_ns"] = static_cast<std::int64_t>(s->request.deadline);
        f["waited_sec"] = ticksToSec(when - s->request.arrival);
        f["best_effort"] = s->request.bestEffort;
        tracer->emit(when, "shed", std::move(f));
    }
    needResched = true;
    if (completionCb) {
        workload::RequestMetrics m = s->metrics;
        server.simulation().queue().schedule(when, [this, m] {
            completionCb(m);
        });
    }
}

void
VllmEngine::updateBrownout(Tick now)
{
    if (!brownout && !precisionGov)
        return;
    double freeFrac =
        kv->totalBlocks() > 0
            ? static_cast<double>(kv->availableBlocks()) /
                  static_cast<double>(kv->totalBlocks())
            : 1.0;
    if (brownout) {
        overload::BrownoutSignals sig;
        sig.now = now;
        // Under CFS, overload does not pool in `waiting` (fresh
        // arrivals carry the lowest vruntime and admit immediately);
        // it shows up as a growing swapped set time-sharing the
        // batch. Both are queued work awaiting GPU service.
        sig.queueDepth = waiting.size() + swapped.size();
        sig.queueDelaySec = oldestWaitingSec(now);
        sig.freePoolFraction = freeFrac;
        // Offload-path pressure: this GPU is reclaiming its own lease
        // (producer role), or the backend recently executed a
        // reclaim-driven evacuation off the donor (consumer role).
        bool reclaiming = aquaLib && aquaLib->reclaimInProgress();
        Tick lastEvac = backend.lastEvacuationAt();
        bool recentEvac =
            lastEvac != 0 &&
            now < lastEvac + brownout->config().evacPressureWindow;
        sig.reclaimPressure = reclaiming || recentEvac;
        sig.linkHealth = server.topology().peerLink().degradation();
        brownout->update(sig);
    }
    // The precision governor reads the same pressure view: quantize
    // cold KV harder as the pool empties or the ladder climbs.
    if (precisionGov) {
        precisionGov->update(freeFrac,
                             brownout
                                 ? brownout->level()
                                 : overload::BrownoutLevel::Normal,
                             now);
    }
}

void
VllmEngine::settleTier(Tick now)
{
    // Under the brownout ladder's ForceDramOffload rung the tier
    // drains DRAM aggressively: the rung reroutes new swaps to DRAM,
    // and the settle pass gives that DRAM somewhere real to spill.
    bool pressure = brownout && brownout->forceDramOffload();
    for (std::uint64_t key : sessionTier->selectDemotions(now, pressure)) {
        Sequence *victim = nullptr;
        for (Sequence *s : swapped) {
            if (s->request.id == key) {
                victim = s;
                break;
            }
        }
        if (!victim || !victim->swapHandle.valid()) {
            // The sequence moved on since registration; drop the
            // stale policy entry.
            sessionTier->forgetOffloaded(key, false, now);
            continue;
        }
        OffloadBackend &from =
            victim->swapBackend ? *victim->swapBackend : backend;
        std::uint64_t nChunks = std::max<std::uint64_t>(
            1, victim->swapHandle.bytes / kv->blockBytes());
        auto moved = sessionTier->demote(key, from, victim->swapHandle,
                                         nChunks, now);
        if (!moved)
            continue; // store full: the payload stays in DRAM
        victim->swapHandle = *moved;
        victim->swapBackend = &sessionTier->demotionStore();
        ++nTierDemotions;
    }
}

std::uint32_t
VllmEngine::effectiveSliceTokens() const
{
    if (!brownout)
        return cfg.cfsSliceTokens;
    double scaled = static_cast<double>(cfg.cfsSliceTokens) *
                    brownout->sliceFactor();
    auto t = static_cast<std::uint32_t>(scaled);
    return t > 0 ? t : 1;
}

OffloadBackend &
VllmEngine::swapTarget()
{
    if (fallback && brownout && brownout->forceDramOffload())
        return *fallback;
    return backend;
}

model::KvPrecision
VllmEngine::coldPrecision() const
{
    return precisionGov ? precisionGov->coldPrecision()
                        : spec.kvPrecision;
}

double
VllmEngine::oldestWaitingSec(Tick now) const
{
    Tick oldest = now;
    for (const Sequence *s : waiting)
        oldest = std::min(oldest, s->request.arrival);
    return ticksToSec(now - oldest);
}

void
VllmEngine::step()
{
    Tick now = server.simulation().now();
    Tick transfersDone = now;

    // Northbound housekeeping.
    if (aquaLib && ++itersSinceInform >= cfg.informEveryIters) {
        itersSinceInform = 0;
        doInform();
    }
    if (++itersSinceRespond >= cfg.respondEveryIters) {
        itersSinceRespond = 0;
        Tick blocked = backend.respond();
        if (blocked > transfersDone)
            transfersDone = blocked;
    }
    if (sessionTier && ++itersSinceSettle >= cfg.tierSettleEveryIters) {
        itersSinceSettle = 0;
        settleTier(now);
    }

    // Sample overload signals before scheduling so this iteration's
    // decisions honour the current brownout level.
    updateBrownout(now);

    // Scheduling decision. Fair policies re-evaluate at slice
    // boundaries (or when the run set changed); FCFS every iteration.
    std::uint32_t slice = effectiveSliceTokens();
    SchedulerInput in;
    in.waiting = waiting;
    in.running = running;
    in.swapped = swapped;
    in.kv = kv.get();
    in.maxBatch = cfg.maxBatch;
    in.sliceTokens = slice;
    in.slackTokens = cfg.slackTokens;
    in.prefixCache = cfg.prefixCache;
    in.admission = admission.get();
    in.brownoutLevel = brownout ? brownout->level()
                                : overload::BrownoutLevel::Normal;
    in.now = now;

    SchedulerDecision d;
    bool evaluate = true;
    if (policy->isFair()) {
        evaluate = needResched || running.empty() ||
                   tokensIntoSlice >= slice;
    }
    if (evaluate) {
        d = policy->schedule(in);
        tokensIntoSlice = 0;
        needResched = false;
    }

    // Hopeless arrivals first: shedding frees nothing on the GPU but
    // shortens the queue every admission prediction includes.
    for (auto &[s, reason] : d.shed)
        shedSeq(s, reason, now);

    bool didTransfers = false;
    for (Sequence *s : d.swapOut) {
        swapOutSeq(s, transfersDone);
        didTransfers = true;
    }
    for (Sequence *s : d.swapIn)
        didTransfers |= swapInSeq(s, transfersDone);
    for (Sequence *s : d.admit)
        didTransfers |= admitSeq(s, transfersDone);

    // Pick this iteration's work: prefill first, then decode.
    std::vector<Sequence *> prefillBatch;
    for (Sequence *s : running) {
        if (!s->prefilled)
            prefillBatch.push_back(s);
    }

    Tick completion = transfersDone;
    std::uint64_t produced = 0;
    if (!prefillBatch.empty()) {
        // Recompute-preempted sequences re-prefill their whole
        // context (prompt + generated); for fresh ones kvTokens()
        // is just the prompt. With chunked prefill, at most
        // maxPrefillTokensPerIter tokens are processed and long
        // prompts continue next iteration.
        std::uint64_t budget =
            cfg.maxPrefillTokensPerIter == 0
                ? ~std::uint64_t(0)
                : cfg.maxPrefillTokensPerIter;
        std::vector<std::pair<Sequence *, std::uint64_t>> work;
        std::uint64_t total = 0;
        for (Sequence *s : prefillBatch) {
            if (budget == 0)
                break;
            std::uint64_t remaining =
                s->kvTokens() - s->prefilledTokens;
            std::uint64_t chunk = std::min(remaining, budget);
            work.emplace_back(s, chunk);
            total += chunk;
            budget -= chunk;
        }
        Tick t = perf.prefillTime(total);
        completion = server.gpu(myGpu).submitComputeAfter(
            transfersDone, t);
        for (auto &[s, chunk] : work) {
            s->prefilledTokens += chunk;
            if (s->prefilledTokens < s->kvTokens())
                continue; // more chunks next iteration
            s->prefilled = true;
            // Publish the freshly computed context so concurrent
            // arrivals with the same prefix share it immediately.
            publishSeq(s);
            if (s->generated == 0) {
                // Prefill emits the first output token.
                s->generated = 1;
                s->metrics.firstToken = completion;
                ++produced;
                if (s->done())
                    finishSeq(s, completion);
            }
        }
    } else if (!running.empty()) {
        // Decode one token for every resident, prefilled sequence.
        std::vector<Sequence *> batch = running;
        // Grow each sequence's KV by one token, preempting the most-
        // served sequences if the pool runs dry.
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Sequence *s = batch[i];
            if (s->state != Sequence::State::Running)
                continue;
            if (s->remoteLeadBlocks > 0 &&
                server.topology().gpuFailed(s->remoteHome)) {
                // The home GPU died under the borrowed lead: release
                // the (already broken) lease and re-prefill locally.
                ++prefixStats.remoteBrokenChains;
                swapOutSeq(s, transfersDone);
                didTransfers = true;
                continue;
            }
            std::size_t need =
                kv->blocksForTokens(s->kvTokens() + 1) -
                s->remoteLeadBlocks;
            while (s->blocks.size() < need) {
                auto block = kv->allocateBlocks(1);
                if (block) {
                    s->blocks.push_back((*block)[0]);
                    continue;
                }
                // OOM: evict the running sequence with the most
                // generated tokens (it is closest to done and cheapest
                // to stall under CFS; under FCFS it is the newest).
                Sequence *victim = nullptr;
                for (Sequence *r : running) {
                    if (r == s)
                        continue;
                    if (!victim || r->generated > victim->generated)
                        victim = r;
                }
                if (!victim)
                    victim = s;
                swapOutSeq(victim, transfersDone);
                didTransfers = true;
                needResched = true;
                if (victim == s)
                    break;
            }
        }
        batch.clear();
        std::uint64_t residentKv = 0;
        std::uint64_t remoteKv = 0;
        for (Sequence *s : running) {
            batch.push_back(s);
            residentKv += kv->kvBytes(s->kvTokens());
            remoteKv += kv->kvBytes(s->remoteLeadTokens);
        }
        if (!batch.empty()) {
            Tick t = perf.decodeStepTime(batch.size(), residentKv);
            // Borrowed leads are attended out of their home GPUs'
            // HBM: charge the peer-link read on top of the compute.
            // Sparse attention touches only a fraction of the lead.
            if (remoteKv > 0) {
                std::uint64_t readKv = remoteKv;
                if (cfg.sparseReadFraction < 1.0) {
                    readKv = static_cast<std::uint64_t>(
                        static_cast<double>(remoteKv) *
                        cfg.sparseReadFraction);
                }
                t += server.topology().peerTransferDuration(readKv);
                prefixStats.remoteDecodeReadBytes += readKv;
            }
            completion = server.gpu(myGpu).submitComputeAfter(
                transfersDone, t);
            if (iterationCb) {
                std::vector<std::uint64_t> ids;
                ids.reserve(batch.size());
                for (Sequence *s : batch)
                    ids.push_back(s->request.id);
                iterationCb(completion, ids);
            }
            // finishSeq mutates `running`; iterate over the copy.
            for (Sequence *s : batch) {
                ++s->generated;
                ++produced;
                if (s->metrics.firstToken == 0)
                    s->metrics.firstToken = completion;
                if (s->done())
                    finishSeq(s, completion);
            }
            ++tokensIntoSlice;
        }
    }

    if (produced > 0) {
        tokensTotal += produced;
        tokens.record(completion, static_cast<double>(produced));
    }
    recordFreeMemory();
    ++iterCount;

    bool have_work = !running.empty() || !waiting.empty() ||
                     !swapped.empty();
    bool progressed = produced > 0 || didTransfers || !d.shed.empty();
    // Engines with AQUA duties keep a housekeeping heartbeat even when
    // idle: producers must keep informing (to donate/settle reclaims)
    // and consumers must answer /respond while they hold remote
    // tensors. NOTE: such engines never drain the event queue — drive
    // simulations with runUntil(), not run().
    bool aqua_duties =
        aquaLib != nullptr ||
        (backend.name() == "aqua" && (lora || !swapped.empty()));
    if (have_work && progressed) {
        scheduleStep(std::max(completion, transfersDone));
    } else if (have_work || aqua_duties) {
        // Stalled (e.g. reclaim in progress) or idle with
        // housekeeping duties: poll at the idle cadence.
        scheduleStep(now + cfg.idleTickPeriod);
    }
    // Otherwise: fully idle; the next submit() wakes the engine.
}

} // namespace aqua::serve
