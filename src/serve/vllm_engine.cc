#include "serve/vllm_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aqua::serve {

using namespace aqua::sim;

VllmEngine::VllmEngine(hw::Server &server, hw::GpuId gpu,
                       const model::ModelSpec &modelSpec,
                       std::unique_ptr<SchedulerPolicy> schedPolicy,
                       OffloadBackend &backend, VllmEngineConfig config,
                       std::vector<model::LoraAdapter> adapters)
    : server(server), myGpu(gpu), spec(modelSpec),
      perf(modelSpec, server.gpu(gpu).spec()), cfg(config),
      policy(std::move(schedPolicy)), backend(backend),
      tokens("tokens"), freeMem("free_memory")
{
    if (!spec.isText())
        panic("VllmEngine: %s is not a text model", spec.name.c_str());
    hw::Gpu &dev = server.gpu(gpu);

    std::uint64_t base = spec.weightBytes() + spec.runtimeOverheadBytes;
    weightsRegion = dev.hbm().allocate(base);
    if (!weightsRegion) {
        panic("VllmEngine: %s does not fit on %s (%llu bytes needed)",
              spec.name.c_str(), dev.name().c_str(),
              static_cast<unsigned long long>(base));
    }

    if (cfg.lora) {
        if (adapters.empty())
            panic("VllmEngine: LoRA cache enabled with no adapters");
        lora = std::make_unique<LoraCache>(dev, backend,
                                           std::move(adapters),
                                           *cfg.lora);
    }

    std::uint64_t pool = cfg.kvPoolBytesOverride;
    if (pool == 0) {
        pool = static_cast<std::uint64_t>(
            static_cast<double>(dev.hbm().freeBytes()) *
            cfg.kvPoolFraction);
    }
    kv = std::make_unique<KvCache>(dev, spec, pool, cfg.blockTokens);
}

VllmEngine::~VllmEngine()
{
    // Release swapped sequences' backend storage.
    for (auto &seq : all) {
        if (seq->state == Sequence::State::Swapped &&
            seq->swapHandle.valid())
            backend.free(seq->swapHandle);
    }
    // kv and lora free their reservations before weightsRegion.
    kv.reset();
    lora.reset();
    if (weightsRegion)
        server.gpu(myGpu).hbm().free(*weightsRegion);
}

void
VllmEngine::attachAquaLib(core::AquaLib *lib)
{
    aquaLib = lib;
    // Kick the housekeeping loop so an idle producer still informs.
    scheduleStep(server.simulation().now());
}

void
VllmEngine::submit(const workload::Request &request)
{
    // Accept early submissions: the request only becomes visible to
    // the scheduler at its arrival time.
    if (request.arrival > server.simulation().now()) {
        workload::Request r = request;
        server.simulation().queue().schedule(r.arrival, [this, r] {
            submit(r);
        });
        return;
    }
    auto seq = std::make_unique<Sequence>();
    seq->request = request;
    seq->metrics.id = request.id;
    seq->metrics.arrival = request.arrival;
    Sequence *raw = seq.get();
    all.push_back(std::move(seq));
    waiting.push_back(raw);
    ++arrivalsSinceInform;
    needResched = true;
    scheduleStep(server.simulation().now());
}

void
VllmEngine::scheduleStep(Tick when)
{
    EventQueue &q = server.simulation().queue();
    if (when < q.now())
        when = q.now();
    if (stepPending)
        return;
    stepPending = true;
    q.schedule(when, [this] {
        stepPending = false;
        step();
    });
}

void
VllmEngine::removeFrom(std::vector<Sequence *> &list, Sequence *s)
{
    auto it = std::find(list.begin(), list.end(), s);
    if (it != list.end())
        list.erase(it);
}

void
VllmEngine::recordFreeMemory()
{
    Tick now = server.simulation().now();
    std::uint64_t visible = server.gpu(myGpu).hbm().freeBytes();
    if (aquaLib)
        visible += aquaLib->leasedBytes();
    freeMem.record(now, static_cast<double>(visible));
}

void
VllmEngine::doInform()
{
    if (!aquaLib)
        return;
    core::EngineStats st;
    st.now = server.simulation().now();
    st.pendingRequests = waiting.size();
    st.runningRequests = running.size() + swapped.size();
    st.arrivalsSinceLast = arrivalsSinceInform;
    st.freePoolBytes = kv->freeBytes();
    st.reservedPoolBytes = kv->poolBytes();
    arrivalsSinceInform = 0;

    std::int64_t delta = aquaLib->informStats(st);
    if (delta < 0) {
        std::uint64_t released =
            kv->shrink(static_cast<std::uint64_t>(-delta));
        aquaLib->confirmDonate(released);
    } else if (delta > 0) {
        kv->grow(static_cast<std::uint64_t>(delta));
    }
}

void
VllmEngine::swapOutSeq(Sequence *s, Tick &transfersDone)
{
    if (cfg.preemption == PreemptionMode::Recompute ||
        !s->prefilled) {
        // vLLM's recompute policy: drop the KV; the sequence will
        // re-prefill its whole context (prompt + generated) when it
        // is scheduled again. No transfer, but FLOPs later. Also
        // used for sequences caught mid-prefill: vLLM never swaps
        // an unprefilled sequence.
        kv->freeBlocks(s->blocks);
        s->blocks.clear();
        s->prefilled = false;
        s->prefilledTokens = 0;
        s->state = Sequence::State::Waiting;
        removeFrom(running, s);
        waiting.push_back(s);
        ++nRecomputes;
        needResched = true;
        return;
    }
    std::uint64_t bytes = kv->kvBytes(s->kvTokens());
    auto handle = backend.alloc(bytes);
    if (!handle) {
        panic("VllmEngine: offload backend exhausted swapping out "
              "sequence %llu",
              static_cast<unsigned long long>(s->request.id));
    }
    hw::TransferTiming t =
        backend.write(*handle, bytes, s->blocks.size());
    if (t.complete > transfersDone)
        transfersDone = t.complete;
    kv->freeBlocks(s->blocks);
    s->blocks.clear();
    s->swapHandle = *handle;
    s->state = Sequence::State::Swapped;
    removeFrom(running, s);
    swapped.push_back(s);
    ++nSwapOuts;
}

bool
VllmEngine::swapInSeq(Sequence *s, Tick &transfersDone)
{
    std::size_t need = kv->blocksForTokens(s->kvTokens());
    auto blocks = kv->allocateBlocks(need);
    if (!blocks)
        return false;
    hw::TransferTiming t =
        backend.read(s->swapHandle, s->swapHandle.bytes, need);
    if (t.complete > transfersDone)
        transfersDone = t.complete;
    backend.free(s->swapHandle);
    s->swapHandle = OffloadBackend::Handle{};
    s->blocks = std::move(*blocks);
    s->state = Sequence::State::Running;
    removeFrom(swapped, s);
    running.push_back(s);
    ++nSwapIns;
    return true;
}

bool
VllmEngine::admitSeq(Sequence *s, Tick &transfersDone)
{
    // Adapter residency comes first: a missing adapter stalls the
    // iteration for its load (vLLM loads adapters synchronously).
    // Recompute-preempted sequences keep their pin across preemption.
    if (s->request.adapter != model::noLora && !s->adapterHeld) {
        if (!lora)
            panic("VllmEngine: request %llu wants an adapter but the "
                  "LoRA cache is disabled",
                  static_cast<unsigned long long>(s->request.id));
        Tick loaded = 0;
        if (!lora->acquire(s->request.adapter, loaded))
            return false;
        s->adapterHeld = true;
        if (loaded > transfersDone)
            transfersDone = loaded;
    }
    // kvTokens() so a recompute-preempted sequence gets room for its
    // whole regenerated context.
    std::size_t need = kv->blocksForTokens(s->kvTokens());
    auto blocks = kv->allocateBlocks(need);
    if (!blocks) {
        if (s->adapterHeld) {
            lora->release(s->request.adapter);
            s->adapterHeld = false;
        }
        return false;
    }
    s->blocks = std::move(*blocks);
    s->state = Sequence::State::Running;
    removeFrom(waiting, s);
    running.push_back(s);
    return true;
}

void
VllmEngine::finishSeq(Sequence *s, Tick when)
{
    s->state = Sequence::State::Finished;
    kv->freeBlocks(s->blocks);
    s->blocks.clear();
    if (s->adapterHeld) {
        lora->release(s->request.adapter);
        s->adapterHeld = false;
    }
    removeFrom(running, s);
    s->metrics.finish = when;
    s->metrics.tokensGenerated = s->generated;
    finishedMetrics.push_back(s->metrics);
    needResched = true;
    if (completionCb) {
        workload::RequestMetrics m = s->metrics;
        server.simulation().queue().schedule(when, [this, m] {
            completionCb(m);
        });
    }
}

void
VllmEngine::step()
{
    Tick now = server.simulation().now();
    Tick transfersDone = now;

    // Northbound housekeeping.
    if (aquaLib && ++itersSinceInform >= cfg.informEveryIters) {
        itersSinceInform = 0;
        doInform();
    }
    if (++itersSinceRespond >= cfg.respondEveryIters) {
        itersSinceRespond = 0;
        Tick blocked = backend.respond();
        if (blocked > transfersDone)
            transfersDone = blocked;
    }

    // Scheduling decision. Fair policies re-evaluate at slice
    // boundaries (or when the run set changed); FCFS every iteration.
    SchedulerInput in;
    in.waiting = waiting;
    in.running = running;
    in.swapped = swapped;
    in.kv = kv.get();
    in.maxBatch = cfg.maxBatch;
    in.sliceTokens = cfg.cfsSliceTokens;
    in.slackTokens = cfg.slackTokens;

    SchedulerDecision d;
    bool evaluate = true;
    if (policy->isFair()) {
        evaluate = needResched || running.empty() ||
                   tokensIntoSlice >= cfg.cfsSliceTokens;
    }
    if (evaluate) {
        d = policy->schedule(in);
        tokensIntoSlice = 0;
        needResched = false;
    }

    bool didTransfers = false;
    for (Sequence *s : d.swapOut) {
        swapOutSeq(s, transfersDone);
        didTransfers = true;
    }
    for (Sequence *s : d.swapIn)
        didTransfers |= swapInSeq(s, transfersDone);
    for (Sequence *s : d.admit)
        didTransfers |= admitSeq(s, transfersDone);

    // Pick this iteration's work: prefill first, then decode.
    std::vector<Sequence *> prefillBatch;
    for (Sequence *s : running) {
        if (!s->prefilled)
            prefillBatch.push_back(s);
    }

    Tick completion = transfersDone;
    std::uint64_t produced = 0;
    if (!prefillBatch.empty()) {
        // Recompute-preempted sequences re-prefill their whole
        // context (prompt + generated); for fresh ones kvTokens()
        // is just the prompt. With chunked prefill, at most
        // maxPrefillTokensPerIter tokens are processed and long
        // prompts continue next iteration.
        std::uint64_t budget =
            cfg.maxPrefillTokensPerIter == 0
                ? ~std::uint64_t(0)
                : cfg.maxPrefillTokensPerIter;
        std::vector<std::pair<Sequence *, std::uint64_t>> work;
        std::uint64_t total = 0;
        for (Sequence *s : prefillBatch) {
            if (budget == 0)
                break;
            std::uint64_t remaining =
                s->kvTokens() - s->prefilledTokens;
            std::uint64_t chunk = std::min(remaining, budget);
            work.emplace_back(s, chunk);
            total += chunk;
            budget -= chunk;
        }
        Tick t = perf.prefillTime(total);
        completion = server.gpu(myGpu).submitComputeAfter(
            transfersDone, t);
        for (auto &[s, chunk] : work) {
            s->prefilledTokens += chunk;
            if (s->prefilledTokens < s->kvTokens())
                continue; // more chunks next iteration
            s->prefilled = true;
            if (s->generated == 0) {
                // Prefill emits the first output token.
                s->generated = 1;
                s->metrics.firstToken = completion;
                ++produced;
                if (s->done())
                    finishSeq(s, completion);
            }
        }
    } else if (!running.empty()) {
        // Decode one token for every resident, prefilled sequence.
        std::vector<Sequence *> batch = running;
        // Grow each sequence's KV by one token, preempting the most-
        // served sequences if the pool runs dry.
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Sequence *s = batch[i];
            if (s->state != Sequence::State::Running)
                continue;
            std::size_t need = kv->blocksForTokens(s->kvTokens() + 1);
            while (s->blocks.size() < need) {
                auto block = kv->allocateBlocks(1);
                if (block) {
                    s->blocks.push_back((*block)[0]);
                    continue;
                }
                // OOM: evict the running sequence with the most
                // generated tokens (it is closest to done and cheapest
                // to stall under CFS; under FCFS it is the newest).
                Sequence *victim = nullptr;
                for (Sequence *r : running) {
                    if (r == s)
                        continue;
                    if (!victim || r->generated > victim->generated)
                        victim = r;
                }
                if (!victim)
                    victim = s;
                swapOutSeq(victim, transfersDone);
                didTransfers = true;
                needResched = true;
                if (victim == s)
                    break;
            }
        }
        batch.clear();
        std::uint64_t residentKv = 0;
        for (Sequence *s : running) {
            batch.push_back(s);
            residentKv += kv->kvBytes(s->kvTokens());
        }
        if (!batch.empty()) {
            Tick t = perf.decodeStepTime(batch.size(), residentKv);
            completion = server.gpu(myGpu).submitComputeAfter(
                transfersDone, t);
            if (iterationCb) {
                std::vector<std::uint64_t> ids;
                ids.reserve(batch.size());
                for (Sequence *s : batch)
                    ids.push_back(s->request.id);
                iterationCb(completion, ids);
            }
            // finishSeq mutates `running`; iterate over the copy.
            for (Sequence *s : batch) {
                ++s->generated;
                ++produced;
                if (s->metrics.firstToken == 0)
                    s->metrics.firstToken = completion;
                if (s->done())
                    finishSeq(s, completion);
            }
            ++tokensIntoSlice;
        }
    }

    if (produced > 0) {
        tokensTotal += produced;
        tokens.record(completion, static_cast<double>(produced));
    }
    recordFreeMemory();
    ++iterCount;

    bool have_work = !running.empty() || !waiting.empty() ||
                     !swapped.empty();
    bool progressed = produced > 0 || didTransfers;
    // Engines with AQUA duties keep a housekeeping heartbeat even when
    // idle: producers must keep informing (to donate/settle reclaims)
    // and consumers must answer /respond while they hold remote
    // tensors. NOTE: such engines never drain the event queue — drive
    // simulations with runUntil(), not run().
    bool aqua_duties =
        aquaLib != nullptr ||
        (backend.name() == "aqua" && (lora || !swapped.empty()));
    if (have_work && progressed) {
        scheduleStep(std::max(completion, transfersDone));
    } else if (have_work || aqua_duties) {
        // Stalled (e.g. reclaim in progress) or idle with
        // housekeeping duties: poll at the idle cadence.
        scheduleStep(now + cfg.idleTickPeriod);
    }
    // Otherwise: fully idle; the next submit() wakes the engine.
}

} // namespace aqua::serve
