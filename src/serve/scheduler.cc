#include "serve/scheduler.hh"

#include <algorithm>

#include "serve/prefix_index.hh"

namespace aqua::serve {

namespace {

/**
 * Blocks a sequence needs on top of what the prefix cache already
 * holds: with caching on, probe the index and discount the matched
 * full blocks (shared blocks cost nothing extra to admit).
 */
std::size_t
incrementalNeed(const SchedulerInput &in, const Sequence *s,
                std::uint64_t extraTokens)
{
    std::size_t need =
        in.kv->blocksForTokens(s->kvTokens() + extraTokens);
    if (!in.prefixCache)
        return need;
    std::uint64_t match = s->kvTokens() > 0 ? s->kvTokens() - 1 : 0;
    std::size_t cached =
        in.kv->probePrefixBlocks(tokenFnFor(s->request), match);
    return need - std::min(need, cached);
}

/**
 * Admission pre-pass shared by all policies: assess every waiting
 * sequence in queue order, move the hopeless ones to d.shed and
 * return the viable remainder. Requests queued ahead count toward a
 * later request's predicted start, so a deep queue sheds from the
 * tail first — exactly the arrivals whose deadlines the queue has
 * already eaten.
 */
std::vector<Sequence *>
assessWaiting(const SchedulerInput &in, SchedulerDecision &d)
{
    if (!in.admission)
        return in.waiting;
    std::vector<Sequence *> viable;
    viable.reserve(in.waiting.size());
    std::uint64_t aheadPrefill = 0;
    for (Sequence *s : in.waiting) {
        overload::AdmissionQuery q;
        q.now = in.now;
        q.requestId = s->request.id;
        q.deadline = s->request.deadline;
        q.bestEffort = s->request.bestEffort;
        // kvTokens() - prefilledTokens so recompute-preempted
        // sequences count their whole regenerated context.
        q.promptTokens = static_cast<std::uint32_t>(
            s->kvTokens() - s->prefilledTokens);
        q.remainingNewTokens =
            s->request.maxNewTokens > s->generated
                ? s->request.maxNewTokens - s->generated
                : 0;
        q.queuedPrefillTokensAhead = aheadPrefill;
        q.runningCount = in.running.size() + in.swapped.size();
        q.maxBatch = in.maxBatch;
        overload::ShedReason verdict =
            in.admission->assess(q, in.brownoutLevel);
        if (verdict != overload::ShedReason::None) {
            d.shed.emplace_back(s, verdict);
            continue;
        }
        aheadPrefill += q.promptTokens;
        viable.push_back(s);
    }
    return viable;
}

} // anonymous namespace

SchedulerDecision
FcfsPolicy::schedule(const SchedulerInput &in)
{
    SchedulerDecision d;
    std::vector<Sequence *> viable = assessWaiting(in, d);
    std::size_t batch_room =
        in.running.size() < in.maxBatch ? in.maxBatch - in.running.size()
                                        : 0;
    // availableBlocks() folds in cache-evictable blocks; identical to
    // freeBlocks() when prefix caching is off.
    std::size_t free_blocks = in.kv->availableBlocks();

    // Resume preempted sequences first (they hold admission priority
    // in vLLM); do not admit new work while any remain swapped.
    for (Sequence *s : in.swapped) {
        if (batch_room == 0)
            break;
        std::size_t need =
            in.kv->blocksForTokens(s->kvTokens() + in.slackTokens);
        if (need > free_blocks)
            break;
        d.swapIn.push_back(s);
        free_blocks -= need;
        --batch_room;
    }
    if (!in.swapped.empty() && d.swapIn.size() < in.swapped.size())
        return d;

    for (Sequence *s : viable) {
        if (batch_room == 0)
            break;
        // kvTokens() covers recompute-preempted sequences, whose
        // regenerated context spans prompt plus generated tokens.
        std::size_t need = incrementalNeed(in, s, in.slackTokens);
        if (need > free_blocks)
            break; // FIFO: later arrivals wait behind the blocked head
        d.admit.push_back(s);
        free_blocks -= need;
        --batch_room;
    }
    return d;
}

SchedulerDecision
CfsPolicy::schedule(const SchedulerInput &in)
{
    SchedulerDecision d;
    std::vector<Sequence *> viable = assessWaiting(in, d);

    // All live sequences compete; vruntime is tokens generated, ties
    // broken by arrival so earlier prompts keep their edge.
    std::vector<Sequence *> candidates;
    candidates.reserve(viable.size() + in.running.size() +
                       in.swapped.size());
    for (Sequence *s : in.running)
        candidates.push_back(s);
    for (Sequence *s : in.swapped)
        candidates.push_back(s);
    for (Sequence *s : viable)
        candidates.push_back(s);
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Sequence *a, const Sequence *b) {
                         if (a->generated != b->generated)
                             return a->generated < b->generated;
                         return a->request.arrival < b->request.arrival;
                     });

    // Fill the slice: least-served first while blocks last. Every
    // selected sequence needs room for its KV plus slice growth;
    // waiting sequences get their cached prefix discounted.
    std::size_t budget = in.kv->totalBlocks();
    std::vector<Sequence *> selected;
    for (Sequence *s : candidates) {
        if (selected.size() >= in.maxBatch)
            break;
        std::size_t need =
            s->state == Sequence::State::Waiting
                ? incrementalNeed(in, s, in.sliceTokens)
                : in.kv->blocksForTokens(s->kvTokens() + in.sliceTokens);
        if (need > budget)
            continue; // try a smaller sequence; fairness over packing
        budget -= need;
        selected.push_back(s);
    }

    auto contains = [&](const Sequence *s) {
        return std::find(selected.begin(), selected.end(), s) !=
               selected.end();
    };
    for (Sequence *s : in.running) {
        if (!contains(s))
            d.swapOut.push_back(s);
    }
    for (Sequence *s : selected) {
        if (s->state == Sequence::State::Swapped)
            d.swapIn.push_back(s);
        else if (s->state == Sequence::State::Waiting)
            d.admit.push_back(s);
    }
    return d;
}

} // namespace aqua::serve
