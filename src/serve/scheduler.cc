#include "serve/scheduler.hh"

#include <algorithm>

namespace aqua::serve {

SchedulerDecision
FcfsPolicy::schedule(const SchedulerInput &in)
{
    SchedulerDecision d;
    std::size_t batch_room =
        in.running.size() < in.maxBatch ? in.maxBatch - in.running.size()
                                        : 0;
    std::size_t free_blocks = in.kv->freeBlocks();

    // Resume preempted sequences first (they hold admission priority
    // in vLLM); do not admit new work while any remain swapped.
    for (Sequence *s : in.swapped) {
        if (batch_room == 0)
            break;
        std::size_t need =
            in.kv->blocksForTokens(s->kvTokens() + in.slackTokens);
        if (need > free_blocks)
            break;
        d.swapIn.push_back(s);
        free_blocks -= need;
        --batch_room;
    }
    if (!in.swapped.empty() && d.swapIn.size() < in.swapped.size())
        return d;

    for (Sequence *s : in.waiting) {
        if (batch_room == 0)
            break;
        // kvTokens() covers recompute-preempted sequences, whose
        // regenerated context spans prompt plus generated tokens.
        std::size_t need = in.kv->blocksForTokens(
            s->kvTokens() + in.slackTokens);
        if (need > free_blocks)
            break; // FIFO: later arrivals wait behind the blocked head
        d.admit.push_back(s);
        free_blocks -= need;
        --batch_room;
    }
    return d;
}

SchedulerDecision
CfsPolicy::schedule(const SchedulerInput &in)
{
    SchedulerDecision d;

    // All live sequences compete; vruntime is tokens generated, ties
    // broken by arrival so earlier prompts keep their edge.
    std::vector<Sequence *> candidates;
    candidates.reserve(in.waiting.size() + in.running.size() +
                       in.swapped.size());
    for (Sequence *s : in.running)
        candidates.push_back(s);
    for (Sequence *s : in.swapped)
        candidates.push_back(s);
    for (Sequence *s : in.waiting)
        candidates.push_back(s);
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Sequence *a, const Sequence *b) {
                         if (a->generated != b->generated)
                             return a->generated < b->generated;
                         return a->request.arrival < b->request.arrival;
                     });

    // Fill the slice: least-served first while blocks last. Every
    // selected sequence needs room for its KV plus slice growth.
    std::size_t budget = in.kv->totalBlocks();
    std::vector<Sequence *> selected;
    for (Sequence *s : candidates) {
        if (selected.size() >= in.maxBatch)
            break;
        std::size_t need =
            in.kv->blocksForTokens(s->kvTokens() + in.sliceTokens);
        if (need > budget)
            continue; // try a smaller sequence; fairness over packing
        budget -= need;
        selected.push_back(s);
    }

    auto contains = [&](const Sequence *s) {
        return std::find(selected.begin(), selected.end(), s) !=
               selected.end();
    };
    for (Sequence *s : in.running) {
        if (!contains(s))
            d.swapOut.push_back(s);
    }
    for (Sequence *s : selected) {
        if (s->state == Sequence::State::Swapped)
            d.swapIn.push_back(s);
        else if (s->state == Sequence::State::Waiting)
            d.admit.push_back(s);
    }
    return d;
}

} // namespace aqua::serve
