#include "serve/batch_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aqua::serve {

using namespace aqua::sim;

BatchEngine::BatchEngine(hw::Server &server, hw::GpuId gpu,
                         const model::ModelSpec &modelSpec,
                         BatchEngineConfig config)
    : server(server), myGpu(gpu), spec(modelSpec),
      perf(modelSpec, server.gpu(gpu).spec()), cfg(config),
      items("items")
{
    if (spec.isText())
        panic("BatchEngine: %s is a text model; use VllmEngine",
              spec.name.c_str());
    effectiveBatch =
        cfg.batchSize != 0 ? cfg.batchSize : spec.maxUsefulBatch;
    std::uint64_t footprint =
        perf.memoryFootprint(effectiveBatch, 0);
    workingSet = server.gpu(gpu).hbm().allocate(footprint);
    if (!workingSet) {
        panic("BatchEngine: %s working set does not fit on %s",
              spec.name.c_str(), server.gpu(gpu).name().c_str());
    }
}

BatchEngine::~BatchEngine()
{
    if (workingSet)
        server.gpu(myGpu).hbm().free(*workingSet);
}

void
BatchEngine::attachAquaLib(core::AquaLib *lib)
{
    aquaLib = lib;
    scheduleStep(server.simulation().now());
}

void
BatchEngine::submit(const workload::Request &request)
{
    if (request.arrival > server.simulation().now()) {
        workload::Request r = request;
        server.simulation().queue().schedule(r.arrival, [this, r] {
            submit(r);
        });
        return;
    }
    queue.push_back(request);
    ++arrivalsSinceInform;
    scheduleStep(server.simulation().now());
}

void
BatchEngine::scheduleStep(Tick when)
{
    if (stepPending)
        return;
    EventQueue &q = server.simulation().queue();
    if (when < q.now())
        when = q.now();
    stepPending = true;
    q.schedule(when, [this] {
        stepPending = false;
        step();
    });
}

void
BatchEngine::doInform()
{
    if (!aquaLib)
        return;
    core::EngineStats st;
    st.now = server.simulation().now();
    st.pendingRequests = queue.size();
    st.runningRequests = 0;
    st.arrivalsSinceLast = arrivalsSinceInform;
    // The batch engine has no reserved pool; it reports raw free HBM
    // (accurate right after a batch completes, §B).
    st.freePoolBytes = server.gpu(myGpu).hbm().freeBytes();
    st.reservedPoolBytes = st.freePoolBytes;
    arrivalsSinceInform = 0;

    std::int64_t delta = aquaLib->informStats(st);
    if (delta < 0) {
        // Free HBM is directly donatable; no pool to shrink.
        aquaLib->confirmDonate(static_cast<std::uint64_t>(-delta));
    }
    // Positive deltas (a completed reclaim) just mean the HBM is free
    // again; nothing to grow.
}

double
BatchEngine::throughput() const
{
    Tick now = server.simulation().now();
    if (now == 0)
        return 0.0;
    return static_cast<double>(itemsTotal) / ticksToSec(now);
}

void
BatchEngine::step()
{
    Tick now = server.simulation().now();
    if (++itersSinceInform >= cfg.informEveryIters) {
        itersSinceInform = 0;
        doInform();
    }

    if (queue.empty()) {
        if (aquaLib)
            scheduleStep(now + cfg.idleTickPeriod);
        return;
    }

    std::size_t batch =
        std::min<std::size_t>(queue.size(), effectiveBatch);
    Tick t = perf.batchIterTime(batch);
    Tick completion = server.gpu(myGpu).submitCompute(t);

    for (std::size_t i = 0; i < batch; ++i) {
        workload::Request request = queue.front();
        queue.pop_front();
        workload::RequestMetrics m;
        m.id = request.id;
        m.arrival = request.arrival;
        m.firstToken = completion;
        m.finish = completion;
        m.tokensGenerated = 1;
        finishedMetrics.push_back(m);
        if (completionCb) {
            server.simulation().queue().schedule(completion,
                                                 [this, m] {
                completionCb(m);
            });
        }
    }
    itemsTotal += batch;
    items.record(completion, static_cast<double>(batch));
    scheduleStep(completion);
}

} // namespace aqua::serve
