#include "serve/prefix_index.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aqua::serve {

namespace {

/** splitmix64 finalizer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Primary rolling combine. */
std::uint64_t
combineKey(std::uint64_t h, std::uint64_t v)
{
    return mix64(h ^ (v * 0x9ddfea08eb382d69ull));
}

/** Verification combine: independent constants so the two chains do
 *  not collide together. */
std::uint64_t
combineVerify(std::uint64_t h, std::uint64_t v)
{
    return mix64((h + v) * 0xc2b2ae3d27d4eb4full + 0x165667b19e3779f9ull);
}

constexpr std::uint64_t kSeedKey = 0x243f6a8885a308d3ull;
constexpr std::uint64_t kSeedVerify = 0x452821e638d01377ull;
constexpr std::uint64_t kPartialSalt = 0xb5297a4d3c2c1b3full;

} // anonymous namespace

TokenFn
tokenFnFor(const workload::Request &request)
{
    return [request](std::uint64_t pos) {
        return workload::tokenContent(request, pos);
    };
}

PrefixIndex::PrefixIndex(std::uint32_t blockTokens)
    : blockTokens(blockTokens)
{
    if (blockTokens == 0)
        aqua::sim::panic("PrefixIndex: zero block tokens");
}

PrefixIndex::ChainState
PrefixIndex::extendChain(ChainState chain, const TokenFn &tok,
                         std::uint64_t firstToken,
                         std::uint32_t count) const
{
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t content = tok(firstToken + i);
        chain.key = combineKey(chain.key, content);
        chain.verify = combineVerify(chain.verify, content);
    }
    return chain;
}

std::uint64_t
PrefixIndex::partialKey(const ChainState &chain,
                        std::uint64_t /*partialVerify*/,
                        std::uint32_t tokens) const
{
    return mix64(chain.key ^ (std::uint64_t(tokens) * kPartialSalt));
}

PrefixIndex::Match
PrefixIndex::lookup(const TokenFn &tok, std::uint64_t maxTokens,
                    aqua::sim::Tick now, bool touch)
{
    Match m;
    ChainState chain{kSeedKey, kSeedVerify};
    std::uint64_t fullWanted = maxTokens / blockTokens;
    std::uint64_t i = 0;
    for (; i < fullWanted; ++i) {
        ChainState next = extendChain(chain, tok,
                                      i * blockTokens, blockTokens);
        auto it = map.find(next.key & primaryMask);
        if (it == map.end())
            break;
        Entry &e = it->second;
        if (e.tokens != blockTokens || e.verify != next.verify) {
            // Primary-key collision (or a partial entry aliased under
            // a narrow mask): fall back to a miss, never share.
            if (touch)
                ++counters.collisions;
            break;
        }
        chain = next;
        m.blocks.push_back(e.block);
        m.tokens += blockTokens;
        if (touch) {
            e.lastUse = now;
            ++e.uses;
            ++counters.hits;
        }
    }
    if (touch)
        counters.misses += fullWanted - i;

    // A partially filled tail is shareable (copy-on-write) only when
    // every full block before it matched.
    std::uint32_t rem = static_cast<std::uint32_t>(
        maxTokens - i * blockTokens);
    if (i == fullWanted && rem > 0 && rem < blockTokens) {
        ChainState pc = extendChain(chain, tok, i * blockTokens, rem);
        auto it = map.find(partialKey(chain, pc.verify, rem) &
                           primaryMask);
        if (it != map.end()) {
            Entry &e = it->second;
            if (e.tokens == rem && e.verify == pc.verify) {
                m.blocks.push_back(e.block);
                m.tokens += rem;
                m.partialTokens = rem;
                if (touch) {
                    e.lastUse = now;
                    ++e.uses;
                    ++counters.partialHits;
                }
            } else if (touch) {
                ++counters.collisions;
            }
        }
    }
    return m;
}

std::vector<aqua::mem::BlockId>
PrefixIndex::insert(const TokenFn &tok, std::uint64_t tokens,
                    const std::vector<aqua::mem::BlockId> &blocks,
                    aqua::sim::Tick now)
{
    std::vector<aqua::mem::BlockId> newly;
    std::uint64_t full = tokens / blockTokens;
    if (blocks.size() * blockTokens < tokens) {
        aqua::sim::panic("PrefixIndex::insert: %zu blocks cannot hold "
                         "%llu tokens", blocks.size(),
                         static_cast<unsigned long long>(tokens));
    }
    std::uint32_t depth = 0;
    auto place = [&](std::uint64_t key, std::uint64_t verify,
                     aqua::mem::BlockId block, std::uint32_t count) {
        ++depth;
        auto it = map.find(key);
        if (it == map.end()) {
            map.emplace(key, Entry{block, verify, count, now, depth, 0});
            ++held[block];
            ++counters.insertions;
            newly.push_back(block);
            return;
        }
        // Same content already cached (or a primary collision): keep
        // the existing entry; refresh its LRU stamp on a content match.
        if (it->second.verify == verify && it->second.tokens == count)
            it->second.lastUse = now;
        else
            ++counters.collisions;
    };

    ChainState chain{kSeedKey, kSeedVerify};
    for (std::uint64_t i = 0; i < full; ++i) {
        chain = extendChain(chain, tok, i * blockTokens, blockTokens);
        place(chain.key & primaryMask, chain.verify,
              blocks[static_cast<std::size_t>(i)], blockTokens);
    }
    std::uint32_t rem = static_cast<std::uint32_t>(
        tokens - full * blockTokens);
    if (rem > 0) {
        ChainState pc = extendChain(chain, tok, full * blockTokens, rem);
        place(partialKey(chain, pc.verify, rem) & primaryMask, pc.verify,
              blocks[static_cast<std::size_t>(full)], rem);
    }
    return newly;
}

std::vector<aqua::mem::BlockId>
PrefixIndex::evictLru(
    std::size_t maxEntries,
    const std::function<bool(aqua::mem::BlockId)> &evictable)
{
    std::vector<aqua::mem::BlockId> out;
    if (maxEntries == 0 || map.empty())
        return out;
    // Candidates oldest first; re-check evictability as refs change
    // while earlier evictions release sibling entries' blocks.
    std::vector<std::uint64_t> keys;
    keys.reserve(map.size());
    for (const auto &[key, e] : map)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                  const Entry &ea = map.find(a)->second;
                  const Entry &eb = map.find(b)->second;
                  if (eviction == EvictionPolicy::CostAware) {
                      // Cheapest loss first: chain depth x hit count
                      // approximates the recompute bill of evicting.
                      std::uint64_t ca = ea.depth * ea.uses;
                      std::uint64_t cb = eb.depth * eb.uses;
                      if (ca != cb)
                          return ca < cb;
                  }
                  if (ea.lastUse != eb.lastUse)
                      return ea.lastUse < eb.lastUse;
                  return ea.block < eb.block;
              });
    for (std::uint64_t key : keys) {
        if (out.size() >= maxEntries)
            break;
        auto it = map.find(key);
        aqua::mem::BlockId block = it->second.block;
        if (!evictable(block))
            continue;
        map.erase(it);
        auto h = held.find(block);
        if (h != held.end() && --h->second == 0)
            held.erase(h);
        ++counters.evictions;
        out.push_back(block);
    }
    return out;
}

std::vector<aqua::mem::BlockId>
PrefixIndex::clear()
{
    std::vector<aqua::mem::BlockId> out;
    out.reserve(map.size());
    for (const auto &[key, e] : map)
        out.push_back(e.block);
    counters.evictions += map.size();
    map.clear();
    held.clear();
    return out;
}

std::uint32_t
PrefixIndex::refsHeld(aqua::mem::BlockId id) const
{
    auto it = held.find(id);
    return it == held.end() ? 0 : it->second;
}

std::uint64_t
PrefixIndex::chainKey(const TokenFn &tok, std::size_t fullBlocks) const
{
    ChainState chain{kSeedKey, kSeedVerify};
    chain = extendChain(chain, tok, 0,
                        static_cast<std::uint32_t>(fullBlocks) *
                            blockTokens);
    return chain.key;
}

PrefixIndex::ChainKeys
PrefixIndex::chainKeysAt(const TokenFn &tok,
                         std::size_t fullBlocks) const
{
    ChainState chain{kSeedKey, kSeedVerify};
    chain = extendChain(chain, tok, 0,
                        static_cast<std::uint32_t>(fullBlocks) *
                            blockTokens);
    return {chain.key, chain.verify};
}

std::vector<PrefixIndex::ChainKeys>
PrefixIndex::chainKeysUpTo(const TokenFn &tok,
                           std::size_t fullBlocks) const
{
    std::vector<ChainKeys> out;
    out.reserve(fullBlocks);
    ChainState chain{kSeedKey, kSeedVerify};
    for (std::size_t i = 0; i < fullBlocks; ++i) {
        chain = extendChain(chain, tok, i * blockTokens, blockTokens);
        out.push_back({chain.key, chain.verify});
    }
    return out;
}

} // namespace aqua::serve
