#include "serve/offload_backend.hh"

#include "sim/logging.hh"

namespace aqua::serve {

using namespace aqua::sim;

DramBackend::DramBackend(hw::Server &server, hw::GpuId gpu,
                         DramBackendConfig config)
    : server(server), gpu(gpu), cfg(config),
      engine(server, gpu, config.staging)
{
}

DramBackend::~DramBackend()
{
    for (auto &[id, region] : regions)
        server.dram().allocator().free(region);
}

std::optional<OffloadBackend::Handle>
DramBackend::alloc(std::uint64_t bytes)
{
    auto region = server.dram().allocator().allocate(bytes);
    if (!region)
        return std::nullopt;
    Handle h;
    h.id = nextId++;
    h.bytes = bytes;
    regions[h.id] = *region;
    return h;
}

void
DramBackend::free(const Handle &handle)
{
    auto it = regions.find(handle.id);
    if (it == regions.end())
        panic("DramBackend::free: unknown handle %llu",
              static_cast<unsigned long long>(handle.id));
    server.dram().allocator().free(it->second);
    regions.erase(it);
}

hw::TransferTiming
DramBackend::write(const Handle &handle, std::uint64_t bytes,
                   std::uint64_t nChunks, Tick earliest)
{
    if (bytes > handle.bytes)
        panic("DramBackend::write beyond handle size");
    if (nChunks <= 1)
        return server.topology().copy(gpu, hw::hostDramId, bytes, {},
                                      earliest);
    if (cfg.useStaging) {
        // Coalesce the scattered chunks through the pinned staging
        // buffer instead of paying the per-chunk PCIe cost.
        return engine.transferOut(
            hw::hostDramId,
            core::StagingEngine::uniformChunks(bytes, nChunks),
            earliest);
    }
    std::uint64_t chunk = bytes / nChunks;
    if (chunk == 0)
        chunk = 1;
    return server.topology().copyChunked(gpu, hw::hostDramId, chunk,
                                         nChunks, {}, earliest);
}

hw::TransferTiming
DramBackend::read(const Handle &handle, std::uint64_t bytes,
                  std::uint64_t nChunks, Tick earliest)
{
    if (bytes > handle.bytes)
        panic("DramBackend::read beyond handle size");
    if (nChunks <= 1)
        return server.topology().copy(hw::hostDramId, gpu, bytes, {},
                                      earliest);
    if (cfg.useStaging) {
        return engine.transferIn(
            hw::hostDramId,
            core::StagingEngine::uniformChunks(bytes, nChunks),
            earliest);
    }
    std::uint64_t chunk = bytes / nChunks;
    if (chunk == 0)
        chunk = 1;
    return server.topology().copyChunked(hw::hostDramId, gpu, chunk,
                                         nChunks, {}, earliest);
}

Tick
DramBackend::respond()
{
    // Nothing migrates in the DRAM baseline.
    return server.simulation().now();
}

std::optional<OffloadBackend::Handle>
AquaBackend::alloc(std::uint64_t bytes)
{
    auto id = lib.allocateTensor(bytes);
    if (!id)
        return std::nullopt;
    Handle h;
    h.id = *id;
    h.bytes = bytes;
    return h;
}

void
AquaBackend::free(const Handle &handle)
{
    lib.freeTensor(handle.id);
}

hw::TransferTiming
AquaBackend::write(const Handle &handle, std::uint64_t bytes,
                   std::uint64_t nChunks, Tick earliest)
{
    if (bytes > handle.bytes)
        panic("AquaBackend::write beyond handle size");
    return lib.writeTensor(handle.id, bytes, nChunks, earliest);
}

hw::TransferTiming
AquaBackend::read(const Handle &handle, std::uint64_t bytes,
                  std::uint64_t nChunks, Tick earliest)
{
    if (bytes > handle.bytes)
        panic("AquaBackend::read beyond handle size");
    return lib.readTensor(handle.id, bytes, nChunks, earliest);
}

Tick
AquaBackend::respond()
{
    return lib.respond();
}

} // namespace aqua::serve
