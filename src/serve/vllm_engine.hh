/**
 * @file
 * Continuous-batching LLM serving engine (vLLM-style), with pluggable
 * scheduling policy and offload backend, plus the AQUA northbound
 * integration to act as a memory producer (Table 2) or a memory
 * consumer (Table 1).
 *
 * The engine is iteration-driven: each step() performs at most one
 * inference iteration (a batched prefill or a batched decode) plus the
 * context-switch transfers the policy decided on. Prompt (prefill)
 * computation is prioritised over token generation, as the paper notes
 * of production engines (§6.1). Per §B, AQUA-related migrations only
 * settle at iteration boundaries via backend->respond().
 */

#ifndef AQUA_SERVE_VLLM_ENGINE_HH
#define AQUA_SERVE_VLLM_ENGINE_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "aqua/aqua_lib.hh"
#include "model/perf_model.hh"
#include "overload/admission.hh"
#include "overload/brownout.hh"
#include "serve/kv_cache.hh"
#include "serve/lora_cache.hh"
#include "serve/offload_backend.hh"
#include "serve/scheduler.hh"
#include "serve/sequence.hh"
#include "stats/summary.hh"
#include "stats/timeseries.hh"
#include "trace/trace.hh"
#include "workload/request.hh"

namespace aqua::serve {

/** How preempted sequences give up their KV cache. */
enum class PreemptionMode
{
    /** Page the KV out to the offload backend and back (the paper's
     *  CFS context switch; cost = transfer time). */
    Swap,
    /** Drop the KV and re-prefill prompt + generated tokens on
     *  resume (vLLM's other policy; cost = recompute FLOPs). */
    Recompute,
};

/** Engine tunables. */
struct VllmEngineConfig
{
    /** Max sequences decoded per iteration. */
    std::uint32_t maxBatch = 48;
    /** Tokens per KV block (vLLM default). */
    std::uint32_t blockTokens = 16;
    /** Admission slack beyond the prompt, in tokens. */
    std::uint32_t slackTokens = 32;
    /**
     * Chunked prefill: cap on prompt tokens processed per prefill
     * iteration (0 = unlimited). Long prompts then prefill across
     * several iterations instead of monopolizing one, which bounds
     * the decode stall a giant admission causes.
     */
    std::uint32_t maxPrefillTokensPerIter = 0;
    /** CFS slice length in generated tokens (Fig. 6 uses 5). */
    std::uint32_t cfsSliceTokens = 5;
    /** Call backend->respond() every this many iterations. */
    std::uint32_t respondEveryIters = 4;
    /** Call AQUA-LIB informStats() every this many iterations. */
    std::uint32_t informEveryIters = 8;
    /** Housekeeping cadence while idle. */
    aqua::sim::Tick idleTickPeriod = 100 * aqua::sim::nsPerMs;
    /** Fraction of post-weights free HBM reserved as the KV pool. */
    double kvPoolFraction = 0.95;
    /** Explicit KV pool size; overrides the fraction when nonzero. */
    std::uint64_t kvPoolBytesOverride = 0;
    /** LoRA cache configuration; nullopt disables adapter support. */
    std::optional<LoraCacheConfig> lora;
    /** What preemption costs: transfers (Swap) or FLOPs (Recompute). */
    PreemptionMode preemption = PreemptionMode::Swap;
    /**
     * Automatic prefix caching with copy-on-write block sharing: new
     * sequences reuse resident KV blocks matching their prompt prefix
     * (skipping that prefill compute), shared prefixes are offloaded
     * through the backend once per group instead of once per
     * borrower, and index-held blocks evict LRU-first under memory
     * pressure. Off by default (the vLLM baseline the paper measures
     * against does not share KV).
     */
    bool prefixCache = false;
    /**
     * Cap on the prefix cache's share of the KV pool (fraction of
     * total blocks that may be held by cache-only entries). 1.0 = no
     * cap; see KvCacheConfig::maxCacheShare.
     */
    double maxCacheShare = 1.0;
    /**
     * Deadline-aware admission control: shed waiting requests whose
     * predicted completion already misses their deadline instead of
     * serving them late (goodput over throughput). nullopt = off.
     */
    std::optional<overload::AdmissionConfig> admission;
    /**
     * Graceful brownout ladder mapping overload signals to service
     * degradations (shed best-effort, stop cache publishes, shrink
     * the CFS slice, prefer the DRAM backend, reject new). nullopt =
     * off.
     */
    std::optional<overload::BrownoutConfig> brownout;
};

/** Sharing-path counters kept by the engine (all zero when off). */
struct PrefixCacheEngineStats
{
    /** Prefill tokens served from cache (compute + KV writes skipped). */
    std::uint64_t cachedTokens = 0;
    /** Copy-on-write forks of shared partial-tail blocks. */
    std::uint64_t cowForks = 0;
    /** Swap-outs whose shared prefix joined an existing group. */
    std::uint64_t sharedSwapOuts = 0;
    /** Shared-group materializations (one backend write per group). */
    std::uint64_t groupWrites = 0;
    /** Offload write bytes avoided by group dedup. */
    std::uint64_t dedupSavedBytes = 0;
    /** Swap-in read bytes avoided by re-acquiring resident blocks. */
    std::uint64_t residentReuseBytes = 0;
    /** Byte-identity violations across offload round trips (must
     *  stay zero; checked via block content signatures). */
    std::uint64_t sigMismatches = 0;
};

/**
 * The serving engine.
 */
class VllmEngine
{
  public:
    using CompletionCallback =
        std::function<void(const workload::RequestMetrics &)>;

    /**
     * @param server Owning server.
     * @param gpu GPU hosting the model.
     * @param modelSpec Served model (must be text).
     * @param policy Scheduling policy (owned).
     * @param backend Offload backend for swaps and adapters.
     * @param config Tunables.
     * @param adapters LoRA pool; requires config.lora.
     */
    VllmEngine(hw::Server &server, hw::GpuId gpu,
               const model::ModelSpec &modelSpec,
               std::unique_ptr<SchedulerPolicy> policy,
               OffloadBackend &backend, VllmEngineConfig config = {},
               std::vector<model::LoraAdapter> adapters = {});

    VllmEngine(const VllmEngine &) = delete;
    VllmEngine &operator=(const VllmEngine &) = delete;
    ~VllmEngine();

    /**
     * Attach an AQUA-LIB instance for the producer role: the engine
     * will feed informStats() and honour donate/reclaim deltas.
     */
    void attachAquaLib(core::AquaLib *lib);

    /**
     * Trace overload-control events ("shed", "brownout_level") into
     * @p log (non-owning; null disables).
     */
    void setTraceLog(trace::TraceLog *log);

    /**
     * Fallback offload backend (typically host DRAM) the brownout
     * circuit breaker diverts swaps to at ForceDramOffload while the
     * primary (NVLink donor) path is reclaiming or degraded.
     * Non-owning; must outlive the engine.
     */
    void setFallbackBackend(OffloadBackend *fallbackBackend);

    /** Submit a request (call at its arrival time). */
    void submit(const workload::Request &request);

    /** Register a completion hook (fires at the finish tick). */
    void onComplete(CompletionCallback cb) { completionCb = std::move(cb); }

    /**
     * Observe every decode iteration: called with the iteration's
     * completion tick and the request ids that generated a token.
     * Used by the Fig. 6 timeline reproduction and by tests.
     */
    using IterationCallback = std::function<void(
        aqua::sim::Tick, const std::vector<std::uint64_t> &)>;
    void onIteration(IterationCallback cb)
    {
        iterationCb = std::move(cb);
    }

    //
    // Introspection.
    //

    const model::ModelSpec &modelSpec() const { return spec; }
    const KvCache &kvCache() const { return *kv; }
    LoraCache *loraCache() { return lora.get(); }
    hw::GpuId gpuId() const { return myGpu; }

    std::size_t waitingCount() const { return waiting.size(); }
    std::size_t runningCount() const { return running.size(); }
    std::size_t swappedCount() const { return swapped.size(); }
    std::uint64_t totalTokens() const { return tokensTotal; }
    std::uint64_t iterations() const { return iterCount; }
    std::uint64_t swapOutCount() const { return nSwapOuts; }
    std::uint64_t swapInCount() const { return nSwapIns; }
    /** Preemptions resolved by dropping KV (Recompute mode). */
    std::uint64_t recomputeCount() const { return nRecomputes; }

    //
    // Overload control (null / zero unless configured).
    //

    /** Requests shed by admission control or brownout. */
    std::uint64_t shedCount() const { return nSheds; }
    /** Swaps diverted to the fallback backend by the circuit breaker. */
    std::uint64_t fallbackSwapCount() const { return nFallbackSwaps; }
    const overload::AdmissionController *
    admissionController() const
    {
        return admission.get();
    }
    const overload::BrownoutController *
    brownoutController() const
    {
        return brownout.get();
    }
    /** Admission queue delay (admit - arrival, seconds) of every
     *  admitted request. */
    const stats::Summary &queueDelay() const { return queueDelays; }

    /** Sharing-path counters (all zero unless cfg.prefixCache). */
    const PrefixCacheEngineStats &
    prefixEngineStats() const
    {
        return prefixStats;
    }

    /** Bytes written to / read from the offload backend (swaps). */
    std::uint64_t offloadWriteBytes() const { return nWriteBytes; }
    std::uint64_t offloadReadBytes() const { return nReadBytes; }

    /** Metrics of finished requests, completion order. */
    const std::vector<workload::RequestMetrics> &
    finished() const
    {
        return finishedMetrics;
    }

    /** (time, tokens) series: tokens produced per iteration. */
    const stats::TimeSeries &tokenSeries() const { return tokens; }

    /** (time, bytes) series: HBM not used by this engine. */
    const stats::TimeSeries &freeMemorySeries() const { return freeMem; }

  private:
    void scheduleStep(aqua::sim::Tick when);
    void step();

    /** Feed AQUA-LIB's northbound interface; apply pool deltas. */
    void doInform();

    /** Record the engine-external free-memory view. */
    void recordFreeMemory();

    /** Page a running sequence's KV out to the backend. */
    void swapOutSeq(Sequence *s, aqua::sim::Tick &transfersDone);

    /** Page a swapped sequence back in. @return success. */
    bool swapInSeq(Sequence *s, aqua::sim::Tick &transfersDone);

    /** Move a waiting sequence to Running. @return success. */
    bool admitSeq(Sequence *s, aqua::sim::Tick &transfersDone);

    /** Finish bookkeeping for a sequence at @p when. */
    void finishSeq(Sequence *s, aqua::sim::Tick when);

    /** Drop a waiting sequence unserved (admission/brownout shed). */
    void shedSeq(Sequence *s, overload::ShedReason reason,
                 aqua::sim::Tick when);

    /** Sample overload signals and advance the brownout ladder. */
    void updateBrownout(aqua::sim::Tick now);

    /** CFS slice length after brownout shrinking. */
    std::uint32_t effectiveSliceTokens() const;

    /** Backend a swap-out should target right now (the fallback when
     *  the circuit breaker is open). */
    OffloadBackend &swapTarget();

    /** Age of the oldest waiting request, seconds. */
    double oldestWaitingSec(aqua::sim::Tick now) const;

    /** Remove a sequence pointer from a list. */
    static void removeFrom(std::vector<Sequence *> &list, Sequence *s);

    //
    // Prefix-cache sharing (active only with cfg.prefixCache).
    //

    /** One backend copy of a shared prefix, reused by all borrowers. */
    struct SharedGroup
    {
        OffloadBackend::Handle handle;
        /** Swapped borrowers pointing at the copy. */
        std::uint32_t refs = 0;
        /** Full blocks the copy covers. */
        std::uint32_t blocks = 0;
    };

    /** Publish a sequence's computed KV into the prefix index. */
    void publishSeq(Sequence *s);

    /** Leading run of s->blocks shared with the index or peers. */
    std::size_t sharedLeadBlocks(const Sequence *s) const;

    /** Drop a swapped borrower's reference on its shared group. */
    void releaseSwapGroup(Sequence *s);

    hw::Server &server;
    hw::GpuId myGpu;
    model::ModelSpec spec;
    model::PerfModel perf;
    VllmEngineConfig cfg;
    std::unique_ptr<SchedulerPolicy> policy;
    OffloadBackend &backend;
    core::AquaLib *aquaLib = nullptr;
    OffloadBackend *fallback = nullptr;
    trace::TraceLog *tracer = nullptr;

    std::unique_ptr<overload::AdmissionController> admission;
    std::unique_ptr<overload::BrownoutController> brownout;

    /** Weights + runtime overhead reservation. */
    std::optional<aqua::mem::Region> weightsRegion;
    std::unique_ptr<LoraCache> lora;
    std::unique_ptr<KvCache> kv;

    std::vector<std::unique_ptr<Sequence>> all;
    std::vector<Sequence *> waiting;
    std::vector<Sequence *> running;
    std::vector<Sequence *> swapped;

    CompletionCallback completionCb;
    IterationCallback iterationCb;
    std::vector<workload::RequestMetrics> finishedMetrics;

    bool stepPending = false;
    std::uint64_t iterCount = 0;
    std::uint32_t itersSinceInform = 0;
    std::uint32_t itersSinceRespond = 0;
    std::uint32_t tokensIntoSlice = 0;
    bool needResched = true;
    std::uint64_t arrivalsSinceInform = 0;
    std::uint64_t tokensTotal = 0;
    std::uint64_t nSwapOuts = 0;
    std::uint64_t nSwapIns = 0;
    std::uint64_t nRecomputes = 0;
    std::uint64_t nSheds = 0;
    std::uint64_t shedsSinceInform = 0;
    std::uint64_t nFallbackSwaps = 0;
    stats::Summary queueDelays;

    /** Shared-prefix offload copies, by chain key. */
    std::map<std::uint64_t, SharedGroup> sharedGroups;
    PrefixCacheEngineStats prefixStats;
    std::uint64_t nWriteBytes = 0;
    std::uint64_t nReadBytes = 0;

    stats::TimeSeries tokens;
    stats::TimeSeries freeMem;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_VLLM_ENGINE_HH
