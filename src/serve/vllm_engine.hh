/**
 * @file
 * Continuous-batching LLM serving engine (vLLM-style), with pluggable
 * scheduling policy and offload backend, plus the AQUA northbound
 * integration to act as a memory producer (Table 2) or a memory
 * consumer (Table 1).
 *
 * The engine is iteration-driven: each step() performs at most one
 * inference iteration (a batched prefill or a batched decode) plus the
 * context-switch transfers the policy decided on. Prompt (prefill)
 * computation is prioritised over token generation, as the paper notes
 * of production engines (§6.1). Per §B, AQUA-related migrations only
 * settle at iteration boundaries via backend->respond().
 */

#ifndef AQUA_SERVE_VLLM_ENGINE_HH
#define AQUA_SERVE_VLLM_ENGINE_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "aqua/aqua_lib.hh"
#include "cluster/prefix_registry.hh"
#include "federation/cost_model.hh"
#include "hw/fabric.hh"
#include "model/perf_model.hh"
#include "overload/admission.hh"
#include "overload/brownout.hh"
#include "overload/kv_precision_governor.hh"
#include "serve/kv_cache.hh"
#include "serve/lora_cache.hh"
#include "serve/offload_backend.hh"
#include "serve/scheduler.hh"
#include "serve/sequence.hh"
#include "serve/session_tier.hh"
#include "stats/summary.hh"
#include "stats/timeseries.hh"
#include "trace/trace.hh"
#include "workload/request.hh"

namespace aqua::serve {

/** How preempted sequences give up their KV cache. */
enum class PreemptionMode
{
    /** Page the KV out to the offload backend and back (the paper's
     *  CFS context switch; cost = transfer time). */
    Swap,
    /** Drop the KV and re-prefill prompt + generated tokens on
     *  resume (vLLM's other policy; cost = recompute FLOPs). */
    Recompute,
};

/** Engine tunables. */
struct VllmEngineConfig
{
    /** Max sequences decoded per iteration. */
    std::uint32_t maxBatch = 48;
    /** Tokens per KV block (vLLM default). */
    std::uint32_t blockTokens = 16;
    /** Admission slack beyond the prompt, in tokens. */
    std::uint32_t slackTokens = 32;
    /**
     * Chunked prefill: cap on prompt tokens processed per prefill
     * iteration (0 = unlimited). Long prompts then prefill across
     * several iterations instead of monopolizing one, which bounds
     * the decode stall a giant admission causes.
     */
    std::uint32_t maxPrefillTokensPerIter = 0;
    /** CFS slice length in generated tokens (Fig. 6 uses 5). */
    std::uint32_t cfsSliceTokens = 5;
    /** Call backend->respond() every this many iterations. */
    std::uint32_t respondEveryIters = 4;
    /** Run the storage tier's demotion settle pass every this many
     *  iterations (no-op unless a SessionTier is attached). */
    std::uint32_t tierSettleEveryIters = 8;
    /** Call AQUA-LIB informStats() every this many iterations. */
    std::uint32_t informEveryIters = 8;
    /** Housekeeping cadence while idle. */
    aqua::sim::Tick idleTickPeriod = 100 * aqua::sim::nsPerMs;
    /** Fraction of post-weights free HBM reserved as the KV pool. */
    double kvPoolFraction = 0.95;
    /** Explicit KV pool size; overrides the fraction when nonzero. */
    std::uint64_t kvPoolBytesOverride = 0;
    /** LoRA cache configuration; nullopt disables adapter support. */
    std::optional<LoraCacheConfig> lora;
    /** What preemption costs: transfers (Swap) or FLOPs (Recompute). */
    PreemptionMode preemption = PreemptionMode::Swap;
    /**
     * Automatic prefix caching with copy-on-write block sharing: new
     * sequences reuse resident KV blocks matching their prompt prefix
     * (skipping that prefill compute), shared prefixes are offloaded
     * through the backend once per group instead of once per
     * borrower, and index-held blocks evict LRU-first under memory
     * pressure. Off by default (the vLLM baseline the paper measures
     * against does not share KV).
     */
    bool prefixCache = false;
    /**
     * Cap on the prefix cache's share of the KV pool (fraction of
     * total blocks that may be held by cache-only entries). 1.0 = no
     * cap; see KvCacheConfig::maxCacheShare.
     */
    double maxCacheShare = 1.0;
    /** Prefix-cache eviction victim ordering (Lru or CostAware). */
    EvictionPolicy prefixEviction = EvictionPolicy::Lru;
    /**
     * Cluster prefix registry: publish resident shared-prefix chains
     * to the coordinator, and on a local miss look up a remote home
     * copy and stream (or borrow) it over NVLink instead of
     * re-prefilling. Requires attachClusterPrefix() and
     * cfg.prefixCache. Off by default.
     */
    bool clusterPrefix = false;
    /**
     * Longest remote chain (in blocks) a consumer serves in place
     * from the home GPU instead of streaming a local copy. Borrowed
     * leads charge every decode step a peer read of the lead's KV,
     * so only short chains are worth borrowing.
     */
    std::uint32_t clusterBorrowMaxBlocks = 4;
    /**
     * Cross-server prefix federation: on a scale-up-domain miss,
     * consult the coordinator's federation directory for a chain
     * homed on another server and stream it over the inter-server
     * fabric when the cost model says that beats re-prefilling
     * locally. The lookup order is local registry, then federation
     * directory, then recompute. Requires attachFederation() and the
     * cluster prefix path (cfg.clusterPrefix). Off by default.
     */
    bool federation = false;
    /**
     * Safety factor the federation cost model applies to the streamed
     * side of the crossover; > 1 biases toward recompute when the
     * estimates are close.
     */
    double federationSafetyFactor = 1.2;
    /**
     * Deadline-aware admission control: shed waiting requests whose
     * predicted completion already misses their deadline instead of
     * serving them late (goodput over throughput). nullopt = off.
     */
    std::optional<overload::AdmissionConfig> admission;
    /**
     * Graceful brownout ladder mapping overload signals to service
     * degradations (shed best-effort, stop cache publishes, shrink
     * the CFS slice, prefer the DRAM backend, reject new). nullopt =
     * off.
     */
    std::optional<overload::BrownoutConfig> brownout;
    /**
     * Precision the KV cache is served at (QServe-style quantized KV).
     * Scales block sizes, swap/park payloads, staging transfers and
     * registry streams — smaller transfers land lower on the link
     * bandwidth ramp — at the cost of a per-step dequant pass in the
     * perf model. Fp16 (the default) is the exact pre-quantization
     * behaviour.
     */
    model::KvPrecision kvPrecision = model::KvPrecision::Fp16;
    /**
     * Fraction of resident KV each decode step reads (sparse
     * attention). Scales decode's KV memory traffic and the per-step
     * peer-read charge of borrowed remote leads — which also raises
     * the borrow-vs-copy crossover (clusterBorrowMaxBlocks is divided
     * by this). 1.0 (default) = dense reads, exact legacy behaviour.
     */
    double sparseReadFraction = 1.0;
    /**
     * Pressure-driven cold-KV precision demotion
     * (quantize-before-evict): under memory pressure, swap-out tails
     * and parked sessions are quantized below the serving precision
     * before leaving HBM. nullopt = off.
     */
    std::optional<overload::KvPrecisionGovernorConfig> precisionGovernor;
};

/** Sharing-path counters kept by the engine (all zero when off). */
struct PrefixCacheEngineStats
{
    /** Prefill tokens served from cache (compute + KV writes skipped). */
    std::uint64_t cachedTokens = 0;
    /** Copy-on-write forks of shared partial-tail blocks. */
    std::uint64_t cowForks = 0;
    /** Swap-outs whose shared prefix joined an existing group. */
    std::uint64_t sharedSwapOuts = 0;
    /** Shared-group materializations (one backend write per group). */
    std::uint64_t groupWrites = 0;
    /** Offload write bytes avoided by group dedup. */
    std::uint64_t dedupSavedBytes = 0;
    /** Swap-in read bytes avoided by re-acquiring resident blocks. */
    std::uint64_t residentReuseBytes = 0;
    /** Byte-identity violations across offload round trips (must
     *  stay zero; checked via block content signatures). */
    std::uint64_t sigMismatches = 0;

    //
    // Cluster registry path (zero unless cfg.clusterPrefix).
    //

    /** Registry lookups that yielded a usable remote home chain. */
    std::uint64_t registryHits = 0;
    /** Registry lookups that missed or were unusable (dead home,
     *  signature mismatch, pin refused, self-home). */
    std::uint64_t registryMisses = 0;
    /** Full blocks admitted from remote home chains. */
    std::uint64_t remoteHitBlocks = 0;
    /** Bytes streamed from peer homes into local blocks at admission. */
    std::uint64_t remoteCopyBytes = 0;
    /** Bytes read from peer homes by decode steps of borrowed leads. */
    std::uint64_t remoteDecodeReadBytes = 0;
    /** Admissions serving the lead in place from the home GPU. */
    std::uint64_t borrowAdmissions = 0;
    /** Admissions that streamed a local copy of the remote chain. */
    std::uint64_t copyAdmissions = 0;
    /** Remote matches rejected by the consumer-side chain-signature
     *  check (must stay zero outside collision-injection tests). */
    std::uint64_t clusterSigMismatches = 0;
    /** Borrowed leads lost to a home-GPU failure mid-sequence. */
    std::uint64_t remoteBrokenChains = 0;
    /** Prefix-hit tokens by origin of the blocks that served them. */
    std::uint64_t hitTokensLocal = 0;
    std::uint64_t hitTokensRemote = 0;
    std::uint64_t hitTokensDram = 0;
    std::uint64_t hitTokensRemoteServer = 0;

    //
    // Cross-server federation path (zero unless cfg.federation).
    //

    /** Directory lookups that found a live remote-server advert. */
    std::uint64_t fedHits = 0;
    std::uint64_t fedMisses = 0;
    /** Cost-model verdicts: stream the copy / re-prefill locally. */
    std::uint64_t fedStreamDecisions = 0;
    std::uint64_t fedRecomputeDecisions = 0;
    /** Fetches the home refused (admission cap, stale, outage). */
    std::uint64_t fedFetchRefusals = 0;
    /** Completed streams by validation outcome: an invalidated
     *  stream's payload is discarded and the request re-prefills. */
    std::uint64_t fedStreamsCompleted = 0;
    std::uint64_t fedStreamsInvalidated = 0;
    /** Bytes streamed in over the inter-server fabric. */
    std::uint64_t fedStreamBytes = 0;
};

/**
 * Read-path integrity counters (payload_corrupt / ssd_bitrot faults).
 * Every KV payload entering HBM — swap-in, peer prefix stream, SSD
 * resume — is signature-verified on arrival; these count the
 * detections and which recovery path cleared them. All zero in
 * fault-free runs.
 */
struct IntegrityEngineStats
{
    /** Signature mismatches caught at read time. */
    std::uint64_t detected = 0;
    /** Repaired by re-reading (link corruption: source still good). */
    std::uint64_t repairedRetransmit = 0;
    /** Unrepairable (at-rest bitrot): KV dropped and recomputed. */
    std::uint64_t recomputeFallbacks = 0;
};

/**
 * The serving engine.
 */
class VllmEngine
{
  public:
    using CompletionCallback =
        std::function<void(const workload::RequestMetrics &)>;

    /**
     * @param server Owning server.
     * @param gpu GPU hosting the model.
     * @param modelSpec Served model (must be text).
     * @param policy Scheduling policy (owned).
     * @param backend Offload backend for swaps and adapters.
     * @param config Tunables.
     * @param adapters LoRA pool; requires config.lora.
     */
    VllmEngine(hw::Server &server, hw::GpuId gpu,
               const model::ModelSpec &modelSpec,
               std::unique_ptr<SchedulerPolicy> policy,
               OffloadBackend &backend, VllmEngineConfig config = {},
               std::vector<model::LoraAdapter> adapters = {});

    VllmEngine(const VllmEngine &) = delete;
    VllmEngine &operator=(const VllmEngine &) = delete;
    ~VllmEngine();

    /**
     * Attach an AQUA-LIB instance for the producer role: the engine
     * will feed informStats() and honour donate/reclaim deltas.
     */
    void attachAquaLib(core::AquaLib *lib);

    /**
     * Attach the cluster prefix registry plus the AquaLib carrying
     * this engine's southbound REST access. Registers this GPU's
     * RegistryAgent (pin/promote callbacks) and enables the remote
     * prefix-read admission path when cfg.clusterPrefix is set. Both
     * non-owning; must outlive the engine.
     */
    void attachClusterPrefix(cluster::PrefixRegistry *registry,
                             core::AquaLib *lib);

    /**
     * Attach the inter-server fabric for cross-server prefix
     * federation: @p fabric carries the KV streams, @p serverIndex is
     * this engine's server on it, and @p lib carries the southbound
     * /federation REST access (normally the same AquaLib as the
     * cluster path). Enables the federation admission path when
     * cfg.federation is set; requires attachClusterPrefix(). All
     * non-owning; must outlive the engine.
     */
    void attachFederation(hw::Fabric *fabric,
                          std::uint32_t serverIndex,
                          core::AquaLib *lib);

    /**
     * Trace overload-control events ("shed", "brownout_level") into
     * @p log (non-owning; null disables).
     */
    void setTraceLog(trace::TraceLog *log);

    /**
     * Fallback offload backend (typically host DRAM) the brownout
     * circuit breaker diverts swaps to at ForceDramOffload while the
     * primary (NVLink donor) path is reclaiming or degraded.
     * Non-owning; must outlive the engine.
     */
    void setFallbackBackend(OffloadBackend *fallbackBackend);

    /**
     * Attach a storage tier (SSD) below the offload backends. Enables
     * cold-session park/resume — sessions whose user idles past the
     * tier's park threshold move their KV down instead of holding it,
     * and a follow-up turn streams it back when that beats
     * re-prefilling — plus the periodic demotion settle pass over
     * swapped-out KV sitting in host DRAM. Non-owning; must outlive
     * the engine.
     */
    void attachSessionTier(SessionTier *tier);

    /** Submit a request (call at its arrival time). */
    void submit(const workload::Request &request);

    /** Register a completion hook (fires at the finish tick). */
    void onComplete(CompletionCallback cb) { completionCb = std::move(cb); }

    /**
     * Observe every decode iteration: called with the iteration's
     * completion tick and the request ids that generated a token.
     * Used by the Fig. 6 timeline reproduction and by tests.
     */
    using IterationCallback = std::function<void(
        aqua::sim::Tick, const std::vector<std::uint64_t> &)>;
    void onIteration(IterationCallback cb)
    {
        iterationCb = std::move(cb);
    }

    //
    // Introspection.
    //

    const model::ModelSpec &modelSpec() const { return spec; }
    const KvCache &kvCache() const { return *kv; }
    LoraCache *loraCache() { return lora.get(); }
    hw::GpuId gpuId() const { return myGpu; }

    std::size_t waitingCount() const { return waiting.size(); }
    std::size_t runningCount() const { return running.size(); }
    std::size_t swappedCount() const { return swapped.size(); }
    std::uint64_t totalTokens() const { return tokensTotal; }
    std::uint64_t iterations() const { return iterCount; }
    std::uint64_t swapOutCount() const { return nSwapOuts; }
    std::uint64_t swapInCount() const { return nSwapIns; }
    /** Preemptions resolved by dropping KV (Recompute mode). */
    std::uint64_t recomputeCount() const { return nRecomputes; }

    //
    // Overload control (null / zero unless configured).
    //

    /** Requests shed by admission control or brownout. */
    std::uint64_t shedCount() const { return nSheds; }

    //
    // Storage tier (all zero unless attachSessionTier()).
    //

    /** Cold sessions whose KV was parked on the tier. */
    std::uint64_t parkCount() const { return nParks; }
    /** Cold-session resumes served by streaming parked KV back. */
    std::uint64_t streamResumeCount() const { return nStreamResumes; }
    /** Cold-session resumes that fell back to re-prefill. */
    std::uint64_t recomputeResumeCount() const
    {
        return nRecomputeResumes;
    }
    /** Swapped-out payloads the settle pass demoted DRAM→SSD. */
    std::uint64_t tierDemotionCount() const { return nTierDemotions; }

    /** Swaps diverted to the fallback backend by the circuit breaker. */
    std::uint64_t fallbackSwapCount() const { return nFallbackSwaps; }
    const overload::AdmissionController *
    admissionController() const
    {
        return admission.get();
    }
    const overload::BrownoutController *
    brownoutController() const
    {
        return brownout.get();
    }
    /** Cold-KV precision governor (null unless configured). */
    const overload::KvPrecisionGovernor *
    precisionGovernor() const
    {
        return precisionGov.get();
    }
    /** Admission queue delay (admit - arrival, seconds) of every
     *  admitted request. */
    const stats::Summary &queueDelay() const { return queueDelays; }

    /** Sharing-path counters (all zero unless cfg.prefixCache). */
    const PrefixCacheEngineStats &
    prefixEngineStats() const
    {
        return prefixStats;
    }

    /** Read-path integrity counters (zero in fault-free runs). */
    const IntegrityEngineStats &
    integrityStats() const
    {
        return integrity;
    }

    /** Bytes written to / read from the offload backend (swaps). */
    std::uint64_t offloadWriteBytes() const { return nWriteBytes; }
    std::uint64_t offloadReadBytes() const { return nReadBytes; }

    /** Metrics of finished requests, completion order. */
    const std::vector<workload::RequestMetrics> &
    finished() const
    {
        return finishedMetrics;
    }

    /** (time, tokens) series: tokens produced per iteration. */
    const stats::TimeSeries &tokenSeries() const { return tokens; }

    /** (time, bytes) series: HBM not used by this engine. */
    const stats::TimeSeries &freeMemorySeries() const { return freeMem; }

  private:
    void scheduleStep(aqua::sim::Tick when);
    void step();

    /** Feed AQUA-LIB's northbound interface; apply pool deltas. */
    void doInform();

    /** Record the engine-external free-memory view. */
    void recordFreeMemory();

    /** Page a running sequence's KV out to the backend. */
    void swapOutSeq(Sequence *s, aqua::sim::Tick &transfersDone);

    /** Page a swapped sequence back in. @return success. */
    bool swapInSeq(Sequence *s, aqua::sim::Tick &transfersDone);

    /** Move a waiting sequence to Running. @return success. */
    bool admitSeq(Sequence *s, aqua::sim::Tick &transfersDone);

    /** Finish bookkeeping for a sequence at @p when. */
    void finishSeq(Sequence *s, aqua::sim::Tick when);

    /** Drop a waiting sequence unserved (admission/brownout shed). */
    void shedSeq(Sequence *s, overload::ShedReason reason,
                 aqua::sim::Tick when);

    /** Sample overload signals and advance the brownout ladder. */
    void updateBrownout(aqua::sim::Tick now);

    /** Try to start a parked-session resume stream for a fresh
     *  follow-up arrival (no-op without a tier or a parked entry). */
    void maybeBeginResume(Sequence *s);

    /** Demotion settle pass: age out swapped KV from DRAM to SSD. */
    void settleTier(aqua::sim::Tick now);

    /** CFS slice length after brownout shrinking. */
    std::uint32_t effectiveSliceTokens() const;

    /** Backend a swap-out should target right now (the fallback when
     *  the circuit breaker is open). */
    OffloadBackend &swapTarget();

    /** Precision KV leaving HBM is quantized to right now (the
     *  serving precision unless the governor is demoting). */
    model::KvPrecision coldPrecision() const;

    /** The served ModelSpec with the config's KV precision applied
     *  (run before perf/kv are constructed from it). */
    static model::ModelSpec applyKvConfig(model::ModelSpec spec,
                                          const VllmEngineConfig &cfg);

    /** Age of the oldest waiting request, seconds. */
    double oldestWaitingSec(aqua::sim::Tick now) const;

    /** Remove a sequence pointer from a list. */
    static void removeFrom(std::vector<Sequence *> &list, Sequence *s);

    //
    // Prefix-cache sharing (active only with cfg.prefixCache).
    //

    /** One backend copy of a shared prefix, reused by all borrowers. */
    struct SharedGroup
    {
        OffloadBackend::Handle handle;
        /** Swapped borrowers pointing at the copy. */
        std::uint32_t refs = 0;
        /** Full blocks the copy covers. */
        std::uint32_t blocks = 0;
    };

    /**
     * Publish a sequence's computed KV into the prefix index, and —
     * on the cluster path — register its shareable chain boundaries
     * with the registry. @p atFinish additionally publishes the full
     * conversation-history boundary (only final contexts recur as a
     * follow-up turn's prefix).
     */
    void publishSeq(Sequence *s, bool atFinish = false);

    /** Leading run of s->blocks shared with the index or peers. */
    std::size_t sharedLeadBlocks(const Sequence *s) const;

    /** Drop a swapped borrower's reference on its shared group. */
    void releaseSwapGroup(Sequence *s);

    //
    // Cluster prefix registry (active only with cfg.clusterPrefix
    // and attachClusterPrefix()).
    //

    /** A chain this engine published to the registry. */
    struct ClusterChain
    {
        /** Resident blocks backing the chain, chain order. */
        std::vector<aqua::mem::BlockId> blocks;
        std::uint64_t tokens = 0;
        std::uint64_t verify = 0;
        /** Request whose token stream names the chain contents. */
        workload::Request req;
        /** Replica chains only: the live sequence whose blocks back
         *  the (un-indexed) copy; home chains are index-owned. */
        const Sequence *owner = nullptr;
    };

    bool
    clusterEnabled() const
    {
        return cfg.clusterPrefix && clusterReg && clusterLib;
    }

    /** Shareable chain boundaries (in full blocks, ascending) of a
     *  sequence's context: the declared preamble, plus the full
     *  context for conversation streams when @p atFinish. */
    std::vector<std::size_t> chainBoundaries(const Sequence *s,
                                             std::size_t maxBlocks,
                                             bool atFinish) const;

    /** Candidate chain boundaries of @p s's context covering more
     *  than @p localFull blocks, longest first (dense scan for
     *  conversation streams, plus the declared preamble). */
    std::vector<core::AquaLib::PrefixCandidate>
    prefixCandidates(const Sequence *s, std::size_t localFull) const;

    /** Registry remote-read path for an admission whose local prefix
     *  match fell short: lookup, signature check, pin, then stream a
     *  local copy or borrow the home's blocks in place. */
    void tryRemotePrefix(Sequence *s, KvCache::PrefixAcquire &acq,
                         aqua::sim::Tick &transfersDone);

    //
    // Cross-server federation (active only with cfg.federation and
    // attachFederation()).
    //

    bool
    fedEnabled() const
    {
        return cfg.federation && fedFabric && fedLib &&
               clusterEnabled();
    }

    /** Try to start a cross-server prefix stream for a fresh arrival
     *  whose chain no GPU in this scale-up domain holds: directory
     *  lookup, signature check, cost-model verdict, home admission,
     *  then the fabric stream (validated on completion). */
    void maybeBeginFederationFetch(Sequence *s);

    /** Release a borrowed remote lead (unpin the registry lease). */
    void releaseRemoteLead(Sequence *s);

    /** Drop replica-chain records backed by @p s's blocks (called
     *  before the sequence frees them). */
    void dropChainsOwnedBy(const Sequence *s);

    /** Registry callback: pin/unpin a home chain's blocks. */
    bool clusterSetPinned(std::uint64_t key, bool pinned);

    /** Registry callback: adopt a replica chain as the new home. */
    bool clusterPromote(std::uint64_t key);

    /** KvCache eviction observer: a cached block left the index; any
     *  home chain containing it is gone from this GPU. */
    void onCacheBlockEvicted(aqua::mem::BlockId id);

    /** Tally a prefix hit's tokens by serving-block origin and emit a
     *  "prefix_hit" trace event. */
    void countPrefixHit(const Sequence *s,
                        const KvCache::PrefixAcquire &acq);

    hw::Server &server;
    hw::GpuId myGpu;
    model::ModelSpec spec;
    model::PerfModel perf;
    VllmEngineConfig cfg;
    std::unique_ptr<SchedulerPolicy> policy;
    OffloadBackend &backend;
    core::AquaLib *aquaLib = nullptr;
    OffloadBackend *fallback = nullptr;
    SessionTier *sessionTier = nullptr;
    trace::TraceLog *tracer = nullptr;

    std::unique_ptr<overload::AdmissionController> admission;
    std::unique_ptr<overload::BrownoutController> brownout;
    std::unique_ptr<overload::KvPrecisionGovernor> precisionGov;
    /** Precision each user's parked KV was stored at (tier path). */
    std::map<std::uint64_t, model::KvPrecision> parkPrecisions;

    /** Weights + runtime overhead reservation. */
    std::optional<aqua::mem::Region> weightsRegion;
    std::unique_ptr<LoraCache> lora;
    std::unique_ptr<KvCache> kv;

    std::vector<std::unique_ptr<Sequence>> all;
    std::vector<Sequence *> waiting;
    std::vector<Sequence *> running;
    std::vector<Sequence *> swapped;

    CompletionCallback completionCb;
    IterationCallback iterationCb;
    std::vector<workload::RequestMetrics> finishedMetrics;

    bool stepPending = false;
    std::uint64_t iterCount = 0;
    std::uint32_t itersSinceInform = 0;
    std::uint32_t itersSinceRespond = 0;
    std::uint32_t itersSinceSettle = 0;
    std::uint32_t tokensIntoSlice = 0;
    bool needResched = true;
    std::uint64_t arrivalsSinceInform = 0;
    std::uint64_t tokensTotal = 0;
    std::uint64_t nSwapOuts = 0;
    std::uint64_t nSwapIns = 0;
    std::uint64_t nRecomputes = 0;
    std::uint64_t nSheds = 0;
    std::uint64_t shedsSinceInform = 0;
    std::uint64_t nFallbackSwaps = 0;
    std::uint64_t nParks = 0;
    std::uint64_t nStreamResumes = 0;
    std::uint64_t nRecomputeResumes = 0;
    std::uint64_t nTierDemotions = 0;
    stats::Summary queueDelays;

    /** Shared-prefix offload copies, by chain key. */
    std::map<std::uint64_t, SharedGroup> sharedGroups;

    cluster::PrefixRegistry *clusterReg = nullptr;
    core::AquaLib *clusterLib = nullptr;
    hw::Fabric *fedFabric = nullptr;
    core::AquaLib *fedLib = nullptr;
    /** This engine's server index on the fabric. */
    std::uint32_t fedServer = 0;
    std::unique_ptr<federation::FederationCostModel> fedCost;
    /** Chains this engine homes (pinned on registry demand). */
    std::map<std::uint64_t, ClusterChain> homeChains;
    /** Chains homed elsewhere that this engine could adopt. */
    std::map<std::uint64_t, ClusterChain> replicaChains;
    /** Chain keys the registry rejected as cluster-wide collisions
     *  (stay engine-local; never re-published). */
    std::set<std::uint64_t> collisionChains;

    PrefixCacheEngineStats prefixStats;
    IntegrityEngineStats integrity;
    std::uint64_t nWriteBytes = 0;
    std::uint64_t nReadBytes = 0;

    stats::TimeSeries tokens;
    stats::TimeSeries freeMem;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_VLLM_ENGINE_HH
