#include "serve/lora_cache.hh"

#include "sim/logging.hh"

namespace aqua::serve {

using namespace aqua::sim;

LoraCache::LoraCache(hw::Gpu &gpu, OffloadBackend &backend,
                     std::vector<model::LoraAdapter> adapters,
                     LoraCacheConfig config)
    : gpu(gpu), backend(backend), cfg(config), pool(std::move(adapters))
{
    reservation = gpu.hbm().allocate(cfg.capacityBytes);
    if (!reservation) {
        panic("LoraCache: cannot reserve %llu bytes on %s",
              static_cast<unsigned long long>(cfg.capacityBytes),
              gpu.name().c_str());
    }
    entries.resize(pool.size());
    // All adapters start in the offload store (DRAM for the baseline;
    // a peer lease or DRAM for AQUA).
    for (std::size_t i = 0; i < pool.size(); ++i) {
        auto handle = backend.alloc(pool[i].bytes);
        if (!handle) {
            panic("LoraCache: backend cannot hold adapter %s",
                  pool[i].name.c_str());
        }
        entries[i].handle = *handle;
    }
}

LoraCache::~LoraCache()
{
    for (Entry &e : entries)
        backend.free(e.handle);
    if (reservation)
        gpu.hbm().free(*reservation);
}

const model::LoraAdapter &
LoraCache::adapter(model::LoraId id) const
{
    if (id >= pool.size())
        panic("LoraCache: bad adapter id %u", id);
    return pool[id];
}

bool
LoraCache::resident(model::LoraId id) const
{
    if (id >= entries.size())
        panic("LoraCache: bad adapter id %u", id);
    return entries[id].isResident;
}

bool
LoraCache::makeRoom(std::uint64_t bytes)
{
    while (bytesResident + bytes > cfg.capacityBytes) {
        if (lru.empty())
            return false;
        model::LoraId victim = lru.front();
        lru.pop_front();
        Entry &e = entries[victim];
        // Adapters are read-only: eviction is free (no write-back).
        e.isResident = false;
        bytesResident -= pool[victim].bytes;
    }
    return true;
}

bool
LoraCache::acquire(model::LoraId id, Tick &loadedUntil)
{
    if (id >= entries.size())
        panic("LoraCache: bad adapter id %u", id);
    Entry &e = entries[id];
    const model::LoraAdapter &a = pool[id];

    if (e.isResident) {
        ++nHits;
        if (e.pins == 0)
            lru.erase(e.lruPos);
        ++e.pins;
        loadedUntil = 0; // hit: available immediately
        return true;
    }

    if (!makeRoom(a.bytes))
        return false;
    ++nMisses;

    std::uint64_t chunks =
        (a.bytes + cfg.chunkBytes - 1) / cfg.chunkBytes;
    if (chunks == 0)
        chunks = 1;
    hw::TransferTiming timing =
        backend.read(e.handle, a.bytes, chunks);
    Tick done = timing.complete;
    if (!backend.staged()) {
        // The unstaged path pays framework overhead per small copy
        // (§B.1's "multiple small data transfers").
        done += cfg.chunkSetupOverhead * chunks;
    }
    e.isResident = true;
    e.pins = 1;
    bytesResident += a.bytes;
    loadedUntil = done;
    return true;
}

void
LoraCache::release(model::LoraId id)
{
    if (id >= entries.size())
        panic("LoraCache: bad adapter id %u", id);
    Entry &e = entries[id];
    if (!e.isResident || e.pins == 0)
        panic("LoraCache::release: adapter %u not acquired", id);
    if (--e.pins == 0) {
        lru.push_back(id);
        e.lruPos = std::prev(lru.end());
    }
}

} // namespace aqua::serve
