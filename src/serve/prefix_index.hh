/**
 * @file
 * Hash-based prefix index for copy-on-write KV block sharing.
 *
 * vLLM-style automatic prefix caching: the KV blocks of a sequence are
 * keyed by a rolling hash over the token-content chain they hold, so a
 * new sequence whose prompt shares a prefix with cached state reuses
 * the resident blocks instead of recomputing (and re-writing) their KV.
 * Full blocks are keyed by the chain hash up to and including the
 * block; a partially filled tail block gets its own entry keyed by the
 * chain plus the partial content and length, and is shared
 * copy-on-write (a borrower forks the block before appending).
 *
 * Every entry carries a second, independently seeded verification hash;
 * a primary-key hit whose verification hash mismatches is treated as a
 * miss (hash-collision fallback), never as a false share.
 */

#ifndef AQUA_SERVE_PREFIX_INDEX_HH
#define AQUA_SERVE_PREFIX_INDEX_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/block_allocator.hh"
#include "sim/ticks.hh"
#include "workload/request.hh"

namespace aqua::serve {

/** Content id of the token at a position of a sequence's stream. */
using TokenFn = std::function<std::uint64_t(std::uint64_t)>;

/** Token function for a request (simulated token contents). */
TokenFn tokenFnFor(const workload::Request &request);

/**
 * How the index picks eviction victims.
 */
enum class EvictionPolicy
{
    /** Strict least-recently-used (default). */
    Lru,
    /** Cheapest-to-lose first: score = chain depth x hit count, so a
     *  deep, frequently reused chain (an expensive recompute) outlives
     *  a shallow or cold one even when recently touched. */
    CostAware,
};

/** Counters kept by the index (block granularity). */
struct PrefixIndexStats
{
    /** Full blocks served from cache by lookups. */
    std::uint64_t hits = 0;
    /** Full blocks a lookup wanted but the index could not serve. */
    std::uint64_t misses = 0;
    /** Partial tail blocks served (copy-on-write shares). */
    std::uint64_t partialHits = 0;
    /** Primary-key hits rejected by the verification hash. */
    std::uint64_t collisions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * Maps token-chain hashes to resident KV blocks.
 *
 * The index stores block ids only; reference counting lives in the
 * owning KvCache, which takes one reference per entry it publishes and
 * drops it when the entry is evicted.
 */
class PrefixIndex
{
  public:
    explicit PrefixIndex(std::uint32_t blockTokens);

    /** Result of a lookup. */
    struct Match
    {
        /** Matched blocks, chain order (full blocks, then at most one
         *  partial tail). No references are taken. */
        std::vector<aqua::mem::BlockId> blocks;
        /** Tokens covered by the match. */
        std::uint64_t tokens = 0;
        /** Tokens in the trailing partial block (0 = all full). */
        std::uint32_t partialTokens = 0;
    };

    /**
     * Longest cached chain matching @p tok, capped at @p maxTokens.
     *
     * @param touch Update LRU stamps and hit/miss counters; pass false
     *              for read-only probes (admission accounting).
     */
    Match lookup(const TokenFn &tok, std::uint64_t maxTokens,
                 aqua::sim::Tick now, bool touch = true);

    /**
     * Register @p blocks as holding tokens [0, tokens) of @p tok's
     * stream. Existing entries are refreshed, not replaced.
     *
     * @return Blocks newly referenced by the index, one per new entry
     *         (the caller should take a reference on each).
     */
    std::vector<aqua::mem::BlockId>
    insert(const TokenFn &tok, std::uint64_t tokens,
           const std::vector<aqua::mem::BlockId> &blocks,
           aqua::sim::Tick now);

    /**
     * Evict up to @p maxEntries least-recently-used entries whose block
     * satisfies @p evictable (typically: no borrower besides the index).
     *
     * @return The evicted entries' blocks (the caller drops one
     *         reference per returned element).
     */
    std::vector<aqua::mem::BlockId>
    evictLru(std::size_t maxEntries,
             const std::function<bool(aqua::mem::BlockId)> &evictable);

    /** Drop every entry. @return blocks to unref, one per entry. */
    std::vector<aqua::mem::BlockId> clear();

    /** References the index holds on @p id (entries pointing at it). */
    std::uint32_t refsHeld(aqua::mem::BlockId id) const;

    /**
     * Chain key over the first @p fullBlocks blocks of @p tok's
     * stream; identifies a shared block group (offload dedup).
     */
    std::uint64_t chainKey(const TokenFn &tok,
                           std::size_t fullBlocks) const;

    /** Primary + verification hash of one chain boundary. */
    struct ChainKeys
    {
        std::uint64_t key = 0;
        std::uint64_t verify = 0;
    };

    /** Both chain hashes over the first @p fullBlocks blocks. */
    ChainKeys chainKeysAt(const TokenFn &tok,
                          std::size_t fullBlocks) const;

    /**
     * Both chain hashes at every full-block boundary up to
     * @p fullBlocks: element i covers blocks [0, i]. One rolling pass;
     * feeds the cluster registry's candidate-key lookups.
     */
    std::vector<ChainKeys> chainKeysUpTo(const TokenFn &tok,
                                         std::size_t fullBlocks) const;

    /** Select the eviction victim ordering (default Lru). */
    void setEvictionPolicy(EvictionPolicy policy) { eviction = policy; }
    EvictionPolicy evictionPolicy() const { return eviction; }

    std::size_t entries() const { return map.size(); }
    const PrefixIndexStats &stats() const { return counters; }

    /**
     * Test hook: mask applied to primary keys. A narrow mask forces
     * primary collisions so the verification-hash fallback can be
     * exercised deterministically.
     */
    void setPrimaryMask(std::uint64_t mask) { primaryMask = mask; }

  private:
    struct Entry
    {
        aqua::mem::BlockId block = 0;
        /** Independent verification hash (collision fallback). */
        std::uint64_t verify = 0;
        /** Tokens the entry covers in its block (== blockTokens for
         *  full blocks, fewer for a partial tail). */
        std::uint32_t tokens = 0;
        aqua::sim::Tick lastUse = 0;
        /** Blocks from the chain root to this entry (1-based): the
         *  recompute depth a loss would cost (CostAware scoring). */
        std::uint32_t depth = 1;
        /** Lookup hits served (CostAware scoring). */
        std::uint64_t uses = 0;
    };

    /** Dual rolling hash state over one block's tokens. */
    struct ChainState
    {
        std::uint64_t key;
        std::uint64_t verify;
    };

    ChainState extendChain(ChainState chain, const TokenFn &tok,
                           std::uint64_t firstToken,
                           std::uint32_t count) const;
    std::uint64_t partialKey(const ChainState &chain,
                             std::uint64_t partialVerify,
                             std::uint32_t tokens) const;

    std::uint32_t blockTokens;
    EvictionPolicy eviction = EvictionPolicy::Lru;
    std::uint64_t primaryMask = ~std::uint64_t(0);
    std::unordered_map<std::uint64_t, Entry> map;
    /** Entries per block (a block can back a full and a stale partial
     *  entry at once); one index reference is held per entry. */
    std::unordered_map<aqua::mem::BlockId, std::uint32_t> held;
    PrefixIndexStats counters;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_PREFIX_INDEX_HH
