/**
 * @file
 * FlexGen-style long-prompt inference engine (§6 "Long prompts").
 *
 * FlexGen targets high-throughput, non-interactive inference where the
 * prompt's KV cache does not fit beside the weights (e.g. an
 * 8,000-token prompt on OPT-30B). The inference context lives in the
 * offload backend and streams through the GPU:
 *
 *  - prefill runs in chunks; each chunk's attention reads the KV of
 *    all earlier tokens from the backend and writes the chunk's KV
 *    back out;
 *  - each decode step streams the whole sequence KV in for attention
 *    and appends one token's KV.
 *
 * Throughput is therefore bound by the backend's link — PCIe for the
 * DRAM baseline, NVLink when AQUA places the tensor on a peer GPU —
 * which is exactly the 6X of Fig. 7/10.
 */

#ifndef AQUA_SERVE_FLEXGEN_ENGINE_HH
#define AQUA_SERVE_FLEXGEN_ENGINE_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "model/perf_model.hh"
#include "overload/admission.hh"
#include "serve/offload_backend.hh"
#include "stats/timeseries.hh"
#include "workload/request.hh"

namespace aqua::serve {

/** FlexGen engine tunables. */
struct FlexGenConfig
{
    /** Prompt tokens processed per prefill iteration. */
    std::uint32_t chunkTokens = 512;
    /** Call backend->respond() every this many iterations. */
    std::uint32_t respondEveryIters = 2;
    /**
     * Completely fair scheduling across queued prompts (§5 applies
     * CFS to FlexGen too): after this many generated tokens the
     * engine rotates to the least-served queued prompt. 0 = FIFO
     * (FlexGen's default run-to-completion). Context switching is
     * nearly free here — every prompt's context already lives in
     * the offload backend.
     */
    std::uint32_t fairSliceTokens = 0;
    /**
     * DeepSpeed-ZeRO-Inference mode (§9 related work): the weights
     * also live in the offload store and stream through the GPU
     * layer by layer every iteration. Serves models larger than
     * HBM, at the cost of moving the full weight set per step —
     * which is why FlexGen's KV-only offloading beats it, and why
     * AQUA helps it even more ("similar benefits can extend to
     * Deepspeed").
     */
    bool streamWeights = false;
    /**
     * Deadline-aware admission: shed queued prompts whose predicted
     * completion (sequential prefill + decode at this engine's
     * streaming rates) already misses their deadline. nullopt = every
     * prompt is eventually served.
     */
    std::optional<overload::AdmissionConfig> admission;
    /**
     * Precision the streamed KV is stored at (QServe-style quantized
     * KV). FlexGen's whole cost is KV bytes over the offload link, so
     * narrower KV directly scales every streaming window — at the
     * price of per-step dequant compute in the perf model. Fp16 is
     * the exact legacy behaviour.
     */
    model::KvPrecision kvPrecision = model::KvPrecision::Fp16;
};

/**
 * Single-stream offloaded inference engine.
 */
class FlexGenEngine
{
  public:
    using CompletionCallback =
        std::function<void(const workload::RequestMetrics &)>;

    FlexGenEngine(hw::Server &server, hw::GpuId gpu,
                  const model::ModelSpec &modelSpec,
                  OffloadBackend &backend, FlexGenConfig config = {});

    FlexGenEngine(const FlexGenEngine &) = delete;
    FlexGenEngine &operator=(const FlexGenEngine &) = delete;
    ~FlexGenEngine();

    /** Queue a (typically long) prompt. */
    void submit(const workload::Request &request);

    void onComplete(CompletionCallback cb) { completionCb = std::move(cb); }

    hw::GpuId gpuId() const { return myGpu; }
    std::uint64_t totalTokens() const { return tokensTotal; }
    /** Queued prompts dropped by admission control. */
    std::uint64_t shedCount() const { return nSheds; }
    const overload::AdmissionController *
    admissionController() const
    {
        return admission.get();
    }
    const stats::TimeSeries &tokenSeries() const { return tokens; }
    const std::vector<workload::RequestMetrics> &
    finished() const
    {
        return finishedMetrics;
    }

  private:
    struct Active
    {
        workload::Request request;
        workload::RequestMetrics metrics;
        OffloadBackend::Handle handle;
        std::uint32_t processedPrompt = 0;
        std::uint32_t generated = 0;
        bool prefillDone = false;
    };

    void scheduleStep(aqua::sim::Tick when);
    void step();
    /** Start a queued request: allocate its offloaded context. */
    Active *admit(const workload::Request &request);
    /** Pick the stream to run (FIFO or least-served under CFS). */
    Active *select();
    void finishActive(Active *active, aqua::sim::Tick when);
    /** Drop a hopeless queued request unserved. */
    void shedPending(const workload::Request &request,
                     overload::ShedReason reason, aqua::sim::Tick when);
    /** Whether @p request can still meet its deadline if started now. */
    overload::ShedReason assessPending(const workload::Request &request,
                                       aqua::sim::Tick now) const;

    hw::Server &server;
    hw::GpuId myGpu;
    model::ModelSpec spec;
    model::PerfModel perf;
    FlexGenConfig cfg;
    OffloadBackend &backend;

    std::optional<aqua::mem::Region> weightsRegion;
    /** Offloaded weights when cfg.streamWeights is set. */
    OffloadBackend::Handle weightsHandle;
    std::deque<workload::Request> pending;
    std::vector<std::unique_ptr<Active>> actives;
    Active *current = nullptr;
    std::uint32_t tokensIntoSlice = 0;

    CompletionCallback completionCb;
    std::vector<workload::RequestMetrics> finishedMetrics;

    bool stepPending = false;
    std::uint32_t itersSinceRespond = 0;
    std::uint64_t tokensTotal = 0;
    std::uint64_t nSheds = 0;
    std::unique_ptr<overload::AdmissionController> admission;
    stats::TimeSeries tokens;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_FLEXGEN_ENGINE_HH
