/**
 * @file
 * Offload backends: where a serving engine parks inference context
 * that does not fit in local HBM.
 *
 * DramBackend is the state of the art the paper starts from (vLLM /
 * FlexGen offloading to host DRAM over PCIe); AquaBackend routes the
 * same operations through AQUA-LIB, which places tensors on a peer
 * GPU's leased HBM when possible and falls back to DRAM otherwise.
 */

#ifndef AQUA_SERVE_OFFLOAD_BACKEND_HH
#define AQUA_SERVE_OFFLOAD_BACKEND_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "aqua/aqua_lib.hh"
#include "hw/server.hh"
#include "sim/ticks.hh"

namespace aqua::serve {

/**
 * Abstract backing store for offloaded context.
 *
 * All data movement is between the engine's GPU and the store; the
 * timings returned tell the engine when the bytes have landed.
 */
class OffloadBackend
{
  public:
    /** Opaque reference to stored bytes. */
    struct Handle
    {
        std::uint64_t id = 0;
        std::uint64_t bytes = 0;

        bool valid() const { return id != 0; }
    };

    virtual ~OffloadBackend() = default;

    /** Reserve @p bytes in the store. nullopt when exhausted. */
    virtual std::optional<Handle> alloc(std::uint64_t bytes) = 0;

    /** Release a reservation. */
    virtual void free(const Handle &handle) = 0;

    /**
     * Move @p bytes (scattered over @p nChunks pieces on the GPU)
     * into the store.
     *
     * @param earliest Data is available no sooner than this tick (a
     *                 compute producing it is still running); 0 = now.
     */
    virtual hw::TransferTiming write(const Handle &handle,
                                     std::uint64_t bytes,
                                     std::uint64_t nChunks,
                                     aqua::sim::Tick earliest = 0) = 0;

    /** Move @p bytes from the store back onto the GPU. */
    virtual hw::TransferTiming read(const Handle &handle,
                                    std::uint64_t bytes,
                                    std::uint64_t nChunks,
                                    aqua::sim::Tick earliest = 0) = 0;

    /**
     * Iteration-boundary hook (aqua.respond()); lets migrations
     * settle. @return Tick until which the engine is blocked.
     */
    virtual aqua::sim::Tick respond() = 0;

    /**
     * Whether loads/stores internally coalesce scattered chunks into
     * large transfers (AQUA's gather/scatter kernels). Engines use
     * this to decide if per-chunk software overheads apply.
     */
    virtual bool staged() const = 0;

    /**
     * When the store last executed a reclaim-driven evacuation
     * (tensors pushed off a donor lease toward DRAM); 0 = never.
     * Engines treat a recent evacuation as offload-path pressure
     * (brownout circuit breaker). DRAM stores never evacuate.
     */
    virtual aqua::sim::Tick lastEvacuationAt() const { return 0; }

    /** Diagnostic backend name. */
    virtual std::string name() const = 0;
};

/** DRAM-backend tunables. */
struct DramBackendConfig
{
    /**
     * Route scattered (nChunks > 1) accesses through the staging
     * engine: chunks coalesce into pinned-staging-buffer transfers
     * instead of per-chunk PCIe copies. Off by default — the paper's
     * baseline pays the per-chunk cost.
     */
    bool useStaging = false;
    /** Staging engine tunables when useStaging is set. */
    core::StagingEngineConfig staging;
};

/**
 * Host-DRAM offloading over PCIe — the baseline (§2.2).
 */
class DramBackend : public OffloadBackend
{
  public:
    /**
     * @param server Owning server (DRAM + topology).
     * @param gpu The engine's GPU.
     * @param config Tunables.
     */
    DramBackend(hw::Server &server, hw::GpuId gpu,
                DramBackendConfig config = {});
    ~DramBackend() override;

    std::optional<Handle> alloc(std::uint64_t bytes) override;
    void free(const Handle &handle) override;
    hw::TransferTiming write(const Handle &handle, std::uint64_t bytes,
                             std::uint64_t nChunks,
                             aqua::sim::Tick earliest = 0) override;
    hw::TransferTiming read(const Handle &handle, std::uint64_t bytes,
                            std::uint64_t nChunks,
                            aqua::sim::Tick earliest = 0) override;
    aqua::sim::Tick respond() override;
    bool staged() const override { return cfg.useStaging; }
    std::string name() const override { return "dram"; }

    /** Staging-engine accounting (all zero when staging is off). */
    const core::StagingTransferStats &stagingStats() const
    {
        return engine.stats();
    }

  private:
    hw::Server &server;
    hw::GpuId gpu;
    DramBackendConfig cfg;
    core::StagingEngine engine;
    std::uint64_t nextId = 1;
    std::map<std::uint64_t, aqua::mem::Region> regions;
};

/**
 * AQUA TENSOR offloading through AQUA-LIB (§3).
 */
class AquaBackend : public OffloadBackend
{
  public:
    explicit AquaBackend(core::AquaLib &lib) : lib(lib) {}

    std::optional<Handle> alloc(std::uint64_t bytes) override;
    void free(const Handle &handle) override;
    hw::TransferTiming write(const Handle &handle, std::uint64_t bytes,
                             std::uint64_t nChunks,
                             aqua::sim::Tick earliest = 0) override;
    hw::TransferTiming read(const Handle &handle, std::uint64_t bytes,
                            std::uint64_t nChunks,
                            aqua::sim::Tick earliest = 0) override;
    aqua::sim::Tick respond() override;
    bool staged() const override { return lib.config().useStaging; }
    aqua::sim::Tick lastEvacuationAt() const override
    {
        return lib.lastEvacuationAt();
    }
    std::string name() const override { return "aqua"; }

    core::AquaLib &aquaLib() { return lib; }

  private:
    core::AquaLib &lib;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_OFFLOAD_BACKEND_HH
