#include "serve/uvm_backend.hh"

#include "sim/logging.hh"

namespace aqua::serve {

using namespace aqua::sim;

UvmBackend::UvmBackend(hw::Server &server, hw::GpuId gpu,
                       UvmBackendConfig config)
    : server(server), gpu(gpu), cfg(config),
      engine(server, gpu, config.staging)
{
    if (cfg.pageBytes == 0 || cfg.prefetchDegree == 0)
        panic("UvmBackend: page size and prefetch degree must be "
              "positive");
}

UvmBackend::~UvmBackend()
{
    for (auto &[id, region] : regions)
        server.dram().allocator().free(region);
}

std::optional<OffloadBackend::Handle>
UvmBackend::alloc(std::uint64_t bytes)
{
    auto region = server.dram().allocator().allocate(bytes);
    if (!region)
        return std::nullopt;
    Handle h;
    h.id = nextId++;
    h.bytes = bytes;
    regions[h.id] = *region;
    return h;
}

void
UvmBackend::free(const Handle &handle)
{
    auto it = regions.find(handle.id);
    if (it == regions.end())
        panic("UvmBackend::free: unknown handle %llu",
              static_cast<unsigned long long>(handle.id));
    server.dram().allocator().free(it->second);
    regions.erase(it);
}

hw::TransferTiming
UvmBackend::paged(const Handle &handle, std::uint64_t bytes,
                  bool toGpu, Tick earliest)
{
    if (bytes > handle.bytes)
        panic("UvmBackend: access beyond handle size");
    std::uint64_t pages =
        (bytes + cfg.pageBytes - 1) / cfg.pageBytes;
    if (pages == 0)
        pages = 1;
    std::uint64_t wavefronts =
        (pages + cfg.prefetchDegree - 1) / cfg.prefetchDegree;
    faults += wavefronts;

    // Pages cross PCIe individually (or coalesced through the staging
    // engine); fault handling stalls the accessing kernel once per
    // wavefront on top of the transfer.
    hw::TransferTiming t;
    if (cfg.coalescePrefetch) {
        auto descs = core::StagingEngine::uniformChunks(
            pages * cfg.pageBytes, pages);
        t = toGpu ? engine.transferIn(hw::hostDramId, descs, earliest)
                  : engine.transferOut(hw::hostDramId, descs,
                                       earliest);
    } else if (toGpu) {
        t = server.topology().copyChunked(hw::hostDramId, gpu,
                                          cfg.pageBytes, pages, {},
                                          earliest);
    } else {
        t = server.topology().copyChunked(gpu, hw::hostDramId,
                                          cfg.pageBytes, pages, {},
                                          earliest);
    }
    t.complete += wavefronts * cfg.faultLatency;
    return t;
}

hw::TransferTiming
UvmBackend::write(const Handle &handle, std::uint64_t bytes,
                  std::uint64_t nChunks, Tick earliest)
{
    (void)nChunks; // UVM pages regardless of the logical layout
    return paged(handle, bytes, /*toGpu=*/false, earliest);
}

hw::TransferTiming
UvmBackend::read(const Handle &handle, std::uint64_t bytes,
                 std::uint64_t nChunks, Tick earliest)
{
    (void)nChunks;
    return paged(handle, bytes, /*toGpu=*/true, earliest);
}

Tick
UvmBackend::respond()
{
    return server.simulation().now();
}

} // namespace aqua::serve
