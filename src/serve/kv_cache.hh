/**
 * @file
 * Paged KV-cache pool, vLLM style.
 *
 * The engine reserves (most of) the HBM left after weights as a pool
 * of fixed-size blocks; sequences borrow blocks as their KV grows.
 * AQUA producers donate by shrinking this pool — the engine copies
 * scattered live blocks aside so a contiguous region can be handed to
 * AQUA-LIB, mirroring §B.1's defragmentation trick — and grow it back
 * after a reclaim.
 */

#ifndef AQUA_SERVE_KV_CACHE_HH
#define AQUA_SERVE_KV_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/gpu.hh"
#include "mem/block_allocator.hh"
#include "model/model_spec.hh"

namespace aqua::serve {

/**
 * Block-granular KV-cache pool bound to a GPU's HBM.
 */
class KvCache
{
  public:
    /**
     * @param gpu Owning GPU; the pool region is carved from its HBM.
     * @param model The served model (defines KV bytes per token).
     * @param poolBytes Bytes reserved for the pool.
     * @param blockTokens Tokens per block (vLLM default 16).
     */
    KvCache(hw::Gpu &gpu, const model::ModelSpec &model,
            std::uint64_t poolBytes, std::uint32_t blockTokens = 16);

    KvCache(const KvCache &) = delete;
    KvCache &operator=(const KvCache &) = delete;
    ~KvCache();

    std::uint64_t blockBytes() const { return blocks.blockSize(); }
    std::uint32_t tokensPerBlock() const { return blockTokens; }

    /** Current pool reservation in bytes. */
    std::uint64_t poolBytes() const { return reservedBytes; }

    std::uint64_t freeBytes() const { return blocks.freeBytes(); }
    std::uint64_t usedBytes() const { return blocks.usedBytes(); }
    std::size_t freeBlocks() const { return blocks.freeBlocks(); }
    std::size_t totalBlocks() const { return blocks.totalBlocks(); }

    /** Blocks needed to hold a sequence of @p tokens tokens. */
    std::size_t blocksForTokens(std::uint64_t tokens) const;

    /** KV bytes of a sequence of @p tokens tokens (exact, unpadded). */
    std::uint64_t kvBytes(std::uint64_t tokens) const;

    bool canAllocateBlocks(std::size_t count) const
    {
        return blocks.canAllocate(count);
    }

    /** Allocate @p count blocks; nullopt when the pool is exhausted. */
    std::optional<std::vector<aqua::mem::BlockId>>
    allocateBlocks(std::size_t count);

    /** Return blocks to the pool. */
    void freeBlocks(const std::vector<aqua::mem::BlockId> &ids);

    /**
     * Donate pool memory: shrink the reservation by up to @p bytes
     * (rounded down to whole free blocks) and release the HBM.
     *
     * @return Bytes actually released.
     */
    std::uint64_t shrink(std::uint64_t bytes);

    /**
     * Grow the pool by @p bytes (e.g. after AQUA returns a lease).
     * Panics if the HBM region cannot be re-acquired — the caller
     * must release the lease region first.
     */
    void grow(std::uint64_t bytes);

  private:
    /** Re-acquire the backing HBM region for the current size. */
    void reacquireRegion(std::uint64_t newBytes);

    hw::Gpu &gpu;
    std::uint32_t blockTokens;
    std::uint64_t reservedBytes;
    std::optional<aqua::mem::Region> region;
    aqua::mem::BlockAllocator blocks;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_KV_CACHE_HH
