/**
 * @file
 * Paged KV-cache pool, vLLM style, with copy-on-write prefix sharing.
 *
 * The engine reserves (most of) the HBM left after weights as a pool
 * of fixed-size blocks; sequences borrow blocks as their KV grows.
 * AQUA producers donate by shrinking this pool — the engine copies
 * scattered live blocks aside so a contiguous region can be handed to
 * AQUA-LIB, mirroring §B.1's defragmentation trick — and grow it back
 * after a reclaim.
 *
 * A PrefixIndex keyed by rolling hashes over token-block chains lets a
 * new sequence whose prompt prefix is already resident reuse those
 * blocks (reference counted, copy-on-write). Cached blocks whose only
 * holder is the index are "evictable": the pool reclaims them LRU-first
 * when allocation, donation (shrink) or forking runs out of free
 * blocks, so caching never blocks admission or an AQUA donation.
 */

#ifndef AQUA_SERVE_KV_CACHE_HH
#define AQUA_SERVE_KV_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/gpu.hh"
#include "mem/block_allocator.hh"
#include "model/model_spec.hh"
#include "serve/prefix_index.hh"

namespace aqua::serve {

/** Where a cached block's KV content was materialised from. */
enum class BlockOrigin : std::uint8_t
{
    /** Prefilled locally (default). */
    Local,
    /** Streamed from a peer GPU's home replica over NVLink. */
    RemotePeer,
    /** Restored from a DRAM/offload backend on swap-in. */
    Dram,
    /** Streamed from another server's home copy over the
     *  inter-server fabric (prefix federation). */
    RemoteServer,
};

/**
 * Block-granular KV-cache pool bound to a GPU's HBM.
 */
class KvCache
{
  public:
    /**
     * @param gpu Owning GPU; the pool region is carved from its HBM.
     * @param model The served model (defines KV bytes per token).
     * @param poolBytes Bytes reserved for the pool.
     * @param blockTokens Tokens per block (vLLM default 16).
     */
    KvCache(hw::Gpu &gpu, const model::ModelSpec &model,
            std::uint64_t poolBytes, std::uint32_t blockTokens = 16);

    KvCache(const KvCache &) = delete;
    KvCache &operator=(const KvCache &) = delete;
    ~KvCache();

    std::uint64_t blockBytes() const { return blocks.blockSize(); }
    std::uint32_t tokensPerBlock() const { return blockTokens; }

    /** KV bytes per token at the model's serving precision — the one
     *  sizing helper both block math and transfer math derive from. */
    std::uint64_t bytesPerToken() const { return tokenBytes; }

    /** Current pool reservation in bytes. */
    std::uint64_t poolBytes() const { return reservedBytes; }

    std::uint64_t freeBytes() const { return blocks.freeBytes(); }
    std::uint64_t usedBytes() const { return blocks.usedBytes(); }
    std::size_t freeBlocks() const { return blocks.freeBlocks(); }
    std::size_t totalBlocks() const { return blocks.totalBlocks(); }

    /** Blocks needed to hold a sequence of @p tokens tokens. */
    std::size_t blocksForTokens(std::uint64_t tokens) const;

    /** KV bytes of a sequence of @p tokens tokens (exact, unpadded). */
    std::uint64_t kvBytes(std::uint64_t tokens) const;

    /** Free plus cache-evictable blocks (admission headroom). Pinned
     *  blocks are excluded: a block pinned by a remote read lease
     *  cannot be reclaimed yet. */
    std::size_t
    availableBlocks() const
    {
        return blocks.freeBlocks() + numEvictable;
    }

    bool canAllocateBlocks(std::size_t count) const
    {
        return availableBlocks() >= count;
    }

    /**
     * Allocate @p count blocks, evicting LRU cached prefixes if the
     * free list alone cannot satisfy the request; nullopt when even
     * eviction cannot make room.
     */
    std::optional<std::vector<aqua::mem::BlockId>>
    allocateBlocks(std::size_t count);

    /** Drop one reference per block (pool reclaims at refcount 0). */
    void freeBlocks(const std::vector<aqua::mem::BlockId> &ids);

    /**
     * Donate pool memory: shrink the reservation by up to @p bytes
     * (rounded down to whole free blocks) and release the HBM. Cached
     * prefix blocks are evicted as needed; blocks shared with live
     * borrowers are never donated.
     *
     * @return Bytes actually released.
     */
    std::uint64_t shrink(std::uint64_t bytes);

    /**
     * Grow the pool by @p bytes (e.g. after AQUA returns a lease).
     * Panics if the HBM region cannot be re-acquired — the caller
     * must release the lease region first.
     */
    void grow(std::uint64_t bytes);

    //
    // Prefix caching and copy-on-write sharing.
    //

    /** Result of acquirePrefix: matched blocks with references taken. */
    struct PrefixAcquire
    {
        std::vector<aqua::mem::BlockId> blocks;
        std::uint64_t tokens = 0;
        /** Tokens valid in a trailing partial block (0 = all full). */
        std::uint32_t partialTokens = 0;
    };

    /**
     * Borrow the longest cached chain matching @p tok (capped at
     * @p maxTokens). One reference per matched block is taken for the
     * caller; release with freeBlocks().
     */
    PrefixAcquire acquirePrefix(const TokenFn &tok,
                                std::uint64_t maxTokens,
                                aqua::sim::Tick now);

    /**
     * Read-only probe: full blocks a matching sequence could reuse
     * right now. Does not touch LRU state or hit/miss counters; used
     * by scheduler admission accounting.
     */
    std::size_t probePrefixBlocks(const TokenFn &tok,
                                  std::uint64_t maxTokens) const;

    /**
     * Publish a sequence's blocks (holding tokens [0, tokens) of
     * @p tok) into the prefix index and refresh their content
     * signatures. The index takes its own reference on each newly
     * indexed block, which keeps the chain resident (and shareable)
     * after the owning sequence releases its blocks.
     *
     * @param insert false recomputes signatures only (no indexing).
     * @param insertTokens Cap on tokens actually indexed (signatures
     *        still cover all of @p tokens). Lets an engine that is a
     *        cluster *replica* for the chain's tail refresh signatures
     *        without retaining a duplicate resident copy.
     */
    void publishPrefix(const TokenFn &tok, std::uint64_t tokens,
                       const std::vector<aqua::mem::BlockId> &blockIds,
                       aqua::sim::Tick now, bool insert = true,
                       std::uint64_t insertTokens = ~std::uint64_t(0));

    /**
     * Copy-on-write fork: allocate a private copy of @p shared (same
     * content signature), dropping the caller's reference on the
     * original. nullopt when the pool is exhausted even after cache
     * eviction — the caller still holds its original reference then.
     */
    std::optional<aqua::mem::BlockId> forkBlock(aqua::mem::BlockId shared);

    /** References held on a block (sequences + index). */
    std::uint32_t
    blockRefCount(aqua::mem::BlockId id) const
    {
        return blocks.refCount(id);
    }

    /** Chain key identifying the first @p fullBlocks blocks of @p tok
     *  (names a shared block group on the offload path). */
    std::uint64_t prefixChainKey(const TokenFn &tok,
                                 std::size_t fullBlocks) const;

    /** Dual chain hashes at one full-block boundary. */
    PrefixIndex::ChainKeys
    prefixChainKeysAt(const TokenFn &tok, std::size_t fullBlocks) const
    {
        return index.chainKeysAt(tok, fullBlocks);
    }

    /** Dual chain hashes at every boundary up to @p fullBlocks. */
    std::vector<PrefixIndex::ChainKeys>
    prefixChainKeysUpTo(const TokenFn &tok,
                        std::size_t fullBlocks) const
    {
        return index.chainKeysUpTo(tok, fullBlocks);
    }

    /** Select the prefix-cache eviction policy (default Lru). */
    void
    setEvictionPolicy(EvictionPolicy policy)
    {
        index.setEvictionPolicy(policy);
    }

    //
    // Pins (lease-held blocks) and block origins.
    //

    /**
     * Pin a block: it stays resident even when cache-only, is never
     * counted as admission headroom and is never evicted or donated.
     * Pins nest (counted); used by cluster registry read leases on
     * home chains.
     */
    void pinBlock(aqua::mem::BlockId id);
    void unpinBlock(aqua::mem::BlockId id);
    bool
    blockPinned(aqua::mem::BlockId id) const
    {
        return id < pinCounts.size() && pinCounts[id] > 0;
    }
    /** Blocks with at least one pin. */
    std::size_t pinnedBlocks() const { return numPinned; }

    /** Record where a block's content came from (default Local). */
    void setBlockOrigin(aqua::mem::BlockId id, BlockOrigin origin);
    BlockOrigin blockOrigin(aqua::mem::BlockId id) const;

    /**
     * Observer invoked whenever a cache-held block leaves the prefix
     * index (eviction, cap enforcement, dropCache). Engines use it to
     * notify the cluster registry that a home chain lost a block.
     */
    void
    setEvictionObserver(std::function<void(aqua::mem::BlockId)> fn)
    {
        evictionObserver = std::move(fn);
    }

    /** Evict up to @p want cache-only blocks (LRU). @return evicted. */
    std::size_t evictCached(std::size_t want);

    /** Drop the whole prefix cache. @return blocks released. */
    std::size_t dropCache();

    /** Blocks held only by the index (reclaimable on demand). */
    std::size_t evictableBlocks() const { return numEvictable; }

    /**
     * Cap the prefix cache's share of the pool: at most
     * share * totalBlocks() blocks may be cache-only (held by the
     * index alone). Publishing or releasing past the cap evicts LRU
     * cached chains immediately, bounding how much of the pool cache
     * retention can occupy. 1.0 (default) disables the cap.
     */
    void
    setMaxCacheShare(double share)
    {
        cacheShare = share < 0.0 ? 0.0 : (share > 1.0 ? 1.0 : share);
        enforceCacheCap();
    }
    double maxCacheShare() const { return cacheShare; }

    /** Current cache-only block cap under maxCacheShare. */
    std::size_t
    cacheBlockCap() const
    {
        if (cacheShare >= 1.0)
            return totalBlocks();
        return static_cast<std::size_t>(
            cacheShare * static_cast<double>(totalBlocks()));
    }

    /** Bytes backing live sequences (used minus cache-only blocks). */
    std::uint64_t
    liveKvBytes() const
    {
        return usedBytes() - numEvictable * blockBytes();
    }

    /** High-water mark of liveKvBytes() over the cache's lifetime. */
    std::uint64_t peakLiveKvBytes() const { return peakLive; }

    //
    // Content signatures (byte-identity checks across offload paths).
    //

    void setBlockSig(aqua::mem::BlockId id, std::uint64_t sig);
    std::uint64_t blockSig(aqua::mem::BlockId id) const;

    /** FNV-1a over the content ids of tokens
     *  [firstToken, firstToken + count). */
    static std::uint64_t contentSig(const TokenFn &tok,
                                    std::uint64_t firstToken,
                                    std::uint32_t count);

    const PrefixIndexStats &prefixStats() const { return index.stats(); }

    /** Test hook: the underlying index (e.g. to force collisions). */
    PrefixIndex &prefixIndex() { return index; }

  private:
    /** Re-acquire the backing HBM region for the current size. */
    void reacquireRegion(std::uint64_t newBytes);

    /** Recompute a block's cache-only status after a ref change. */
    void updateEvictable(aqua::mem::BlockId id);

    /** Evict LRU cached chains until numEvictable <= cacheBlockCap(). */
    void enforceCacheCap();

    /** Whether only the index holds @p id. */
    bool cacheOnly(aqua::mem::BlockId id) const;

    /** Track the live-bytes high-water mark. */
    void notePeak();

    hw::Gpu &gpu;
    std::uint32_t blockTokens;
    /** Bytes per token at the serving precision (see bytesPerToken). */
    std::uint64_t tokenBytes;
    std::uint64_t reservedBytes;
    std::optional<aqua::mem::Region> region;
    aqua::mem::BlockAllocator blocks;
    /** mutable: read-only probes share the lookup path. */
    mutable PrefixIndex index;
    std::vector<bool> evictableFlag;
    std::size_t numEvictable = 0;
    std::vector<std::uint32_t> pinCounts;
    std::size_t numPinned = 0;
    std::vector<std::uint8_t> origins;
    std::function<void(aqua::mem::BlockId)> evictionObserver;
    /** Cache-only share cap (fraction of totalBlocks; 1.0 = off). */
    double cacheShare = 1.0;
    std::uint64_t peakLive = 0;
    std::vector<std::uint64_t> sigs;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_KV_CACHE_HH
