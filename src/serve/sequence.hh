/**
 * @file
 * Sequence state tracked by LLM serving engines.
 */

#ifndef AQUA_SERVE_SEQUENCE_HH
#define AQUA_SERVE_SEQUENCE_HH

#include <cstdint>
#include <vector>

#include "hw/gpu.hh"
#include "mem/block_allocator.hh"
#include "model/kv_precision.hh"
#include "serve/offload_backend.hh"
#include "workload/request.hh"

namespace aqua::serve {

/**
 * One in-flight request plus its KV-cache residency state.
 */
struct Sequence
{
    enum class State
    {
        /** Arrived, not yet scheduled onto the GPU. */
        Waiting,
        /** Resident; participates in iterations. */
        Running,
        /** Preempted; KV lives in the offload backend. */
        Swapped,
        /** Done; metrics are final. */
        Finished,
    };

    workload::Request request;
    State state = State::Waiting;

    /** Whether the prompt's KV has been computed. */
    bool prefilled = false;

    /** Prompt tokens already prefilled (chunked prefill progress). */
    std::uint32_t prefilledTokens = 0;

    /** Tokens generated so far (the CFS vruntime, §5). */
    std::uint32_t generated = 0;

    /** Resident KV blocks (empty while swapped/waiting). */
    std::vector<aqua::mem::BlockId> blocks;

    /** Backing store handle while swapped. */
    OffloadBackend::Handle swapHandle;

    /** Backend holding swapHandle (null = the engine's primary
     *  backend). Set when brownout's offload circuit breaker diverted
     *  the swap to the fallback DRAM backend. */
    OffloadBackend *swapBackend = nullptr;

    /** Precision the swapped private tail was quantized to on its way
     *  out (quantize-before-evict). Serving precision = no demotion;
     *  narrower payloads pay a dequant pass on swap-in. */
    model::KvPrecision swapPrecision = model::KvPrecision::Fp16;

    /** Whether the sequence holds a pin on its LoRA adapter. */
    bool adapterHeld = false;

    //
    // Cold-session resume state (zero without a SessionTier).
    //

    /** A parked-session resume stream is in flight; admission waits
     *  for it to land (or wind down cancelled). */
    bool resumePending = false;

    /** Context tokens the completed resume stream restored; applied
     *  as pre-prefilled tokens at the next admission. */
    std::uint32_t resumedTokens = 0;

    //
    // Prefix-cache sharing state (zero when caching is off).
    //

    /** Tokens served from the prefix cache at admission (their
     *  prefill compute and KV writes were skipped). */
    std::uint32_t cachedTokens = 0;

    /** Shared-group key the last swap-out deduplicated under
     *  (0 = swap carried no shared prefix). */
    std::uint64_t swapGroupKey = 0;

    /** Leading full blocks covered by swapGroupKey at swap-out. */
    std::uint32_t swapSharedBlocks = 0;

    /** Per-block content signatures captured at swap-out, block
     *  order; checked for byte identity on swap-in. */
    std::vector<std::uint64_t> swapSigs;

    //
    // Cluster prefix-registry state (zero when the cluster path is
    // off). A *borrowed* sequence serves its leading prefix blocks
    // directly from the home GPU's resident copy over NVLink: those
    // blocks never appear in `blocks`, and a registry lease (pin)
    // keeps them resident on the home until released.
    //

    /** Leading full blocks served remotely (0 = none borrowed). */
    std::uint32_t remoteLeadBlocks = 0;

    /** Tokens covered by the borrowed lead. */
    std::uint64_t remoteLeadTokens = 0;

    /** Home GPU serving the borrowed lead. */
    hw::GpuId remoteHome = hw::hostDramId;

    /** Registry lease id held on the home chain (0 = none). */
    std::uint64_t remotePin = 0;

    //
    // Cross-server federation state (zero when federation is off).
    // A fetched chain streams over the inter-server fabric while the
    // sequence waits; the validated tokens are applied as
    // pre-prefilled context at the next admission.
    //

    /** A cross-server KV stream is in flight; admission waits for
     *  its completion (validated or cancelled to recompute). */
    bool fedPending = false;

    /** Context tokens a validated stream delivered; applied as
     *  pre-prefilled tokens at the next admission. */
    std::uint32_t fedTokens = 0;

    /** Open fetch ticket on the home server (0 = none). */
    std::uint64_t fedTicket = 0;

    /** Home server of the in-flight fetch on the fabric. */
    std::uint32_t fedHomeServer = 0;

    workload::RequestMetrics metrics;

    /** Tokens whose KV the sequence holds (prompt + generated). */
    std::uint64_t
    kvTokens() const
    {
        return std::uint64_t(request.promptTokens) + generated;
    }

    /** Whether generation is complete. */
    bool
    done() const
    {
        return generated >= request.maxNewTokens;
    }
};

} // namespace aqua::serve

#endif // AQUA_SERVE_SEQUENCE_HH
