/**
 * @file
 * LRU cache of LoRA adapters resident on the GPU.
 *
 * Adapters not resident must be loaded from the offload backend before
 * a request using them can run. The baseline (vLLM) load path issues
 * one small copy per adapted layer matrix plus per-copy software
 * overhead — the pattern §B.1 identifies as "multiple small data
 * transfers ... sub-optimal for NVLINKS". AQUA's modified path copies
 * the entire adapter as one transfer and scatters on-GPU, which the
 * staged backend models.
 */

#ifndef AQUA_SERVE_LORA_CACHE_HH
#define AQUA_SERVE_LORA_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "hw/gpu.hh"
#include "model/lora.hh"
#include "serve/offload_backend.hh"
#include "sim/ticks.hh"

namespace aqua::serve {

/** Tunables of the adapter cache. */
struct LoraCacheConfig
{
    /** HBM reserved for resident adapters. */
    std::uint64_t capacityBytes = std::uint64_t(10) << 30;
    /**
     * Size of the small per-layer-matrix copies the unstaged load
     * path issues (vLLM's default splits an adapter into per-layer
     * q/k/v/o A/B tensors; ~1.25 MiB each for a 320 MB adapter).
     */
    std::uint64_t chunkBytes = (std::uint64_t(5) << 20) / 4;
    /**
     * Per-copy software overhead (framework tensor handling, paging)
     * on the unstaged path; zero on staged (AQUA) loads, which copy
     * "the entire adapter as is to the GPU and then copy the weights
     * to individual layers" on-device (§B.1).
     */
    aqua::sim::Tick chunkSetupOverhead = 1 * aqua::sim::nsPerMs;
};

/**
 * GPU-resident adapter cache with LRU eviction and refcounting.
 */
class LoraCache
{
  public:
    /**
     * @param gpu GPU whose HBM backs the cache.
     * @param backend Store adapters are loaded from.
     * @param adapters The adapter pool requests draw from.
     * @param config Tunables.
     */
    LoraCache(hw::Gpu &gpu, OffloadBackend &backend,
              std::vector<model::LoraAdapter> adapters,
              LoraCacheConfig config = {});

    LoraCache(const LoraCache &) = delete;
    LoraCache &operator=(const LoraCache &) = delete;
    ~LoraCache();

    /** Whether an adapter is currently resident. */
    bool resident(model::LoraId id) const;

    /**
     * Ensure @p id is resident, loading it if needed (evicting idle
     * adapters LRU-first to make room).
     *
     * @param[out] loadedUntil Completion tick of the load; sim "now"
     *             on a cache hit.
     * @retval true Adapter resident (now or at loadedUntil).
     * @retval false No capacity (all resident adapters are pinned).
     */
    bool acquire(model::LoraId id, aqua::sim::Tick &loadedUntil);

    /** Drop a pin taken by acquire(). */
    void release(model::LoraId id);

    std::uint64_t capacityBytes() const { return cfg.capacityBytes; }
    std::uint64_t residentBytes() const { return bytesResident; }
    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::size_t adapterCount() const { return pool.size(); }

    const model::LoraAdapter &adapter(model::LoraId id) const;

  private:
    struct Entry
    {
        bool isResident = false;
        std::uint32_t pins = 0;
        /** Position in the LRU list while resident and unpinned. */
        std::list<model::LoraId>::iterator lruPos;
        OffloadBackend::Handle handle;
    };

    /** Evict idle adapters until @p bytes fit. @return success. */
    bool makeRoom(std::uint64_t bytes);

    hw::Gpu &gpu;
    OffloadBackend &backend;
    LoraCacheConfig cfg;
    std::vector<model::LoraAdapter> pool;
    std::vector<Entry> entries;
    /** LRU order of resident, unpinned adapters (front = coldest). */
    std::list<model::LoraId> lru;
    std::optional<aqua::mem::Region> reservation;
    std::uint64_t bytesResident = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_LORA_CACHE_HH
