/**
 * @file
 * UVM-style offload backend: CUDA unified virtual memory as the
 * paper's related work discusses (§9) — oversubscribed memory lives
 * in host DRAM and migrates on GPU page faults.
 *
 * Modelled costs: data still crosses PCIe, but in page-granular
 * chunks, and every fault wavefront pays the GPU fault-handling
 * latency. Prefetching amortizes faults over @p prefetchDegree pages
 * for the sequential accesses inference makes. This gives the
 * quantitative backdrop for why AQUA uses explicit large transfers
 * rather than fault-driven paging.
 */

#ifndef AQUA_SERVE_UVM_BACKEND_HH
#define AQUA_SERVE_UVM_BACKEND_HH

#include <cstdint>
#include <map>

#include "serve/offload_backend.hh"

namespace aqua::serve {

/** UVM model parameters. */
struct UvmBackendConfig
{
    /** Migration granularity (UVM uses up to 2 MiB "big pages"). */
    std::uint64_t pageBytes = std::uint64_t(2) << 20;
    /** GPU-side fault handling latency per fault wavefront. */
    aqua::sim::Tick faultLatency = 25 * aqua::sim::nsPerUs;
    /** Pages migrated per fault wavefront (driver prefetching). */
    std::uint32_t prefetchDegree = 8;
    /**
     * Batch the prefetched pages of each wavefront into coalesced
     * staging-engine DMAs instead of per-page PCIe copies (models a
     * driver that merges contiguous migrations). Fault latency per
     * wavefront still applies.
     */
    bool coalescePrefetch = false;
    /** Staging engine tunables when coalescePrefetch is set. */
    core::StagingEngineConfig staging;
};

/**
 * Fault-driven host-DRAM offloading.
 */
class UvmBackend : public OffloadBackend
{
  public:
    UvmBackend(hw::Server &server, hw::GpuId gpu,
               UvmBackendConfig config = {});
    ~UvmBackend() override;

    std::optional<Handle> alloc(std::uint64_t bytes) override;
    void free(const Handle &handle) override;
    hw::TransferTiming write(const Handle &handle, std::uint64_t bytes,
                             std::uint64_t nChunks,
                             aqua::sim::Tick earliest = 0) override;
    hw::TransferTiming read(const Handle &handle, std::uint64_t bytes,
                            std::uint64_t nChunks,
                            aqua::sim::Tick earliest = 0) override;
    aqua::sim::Tick respond() override;
    bool staged() const override { return cfg.coalescePrefetch; }
    std::string name() const override { return "uvm"; }

    /** Total page faults taken so far. */
    std::uint64_t faultCount() const { return faults; }

    /** Staging-engine accounting (all zero when coalescing is off). */
    const core::StagingTransferStats &stagingStats() const
    {
        return engine.stats();
    }

  private:
    hw::TransferTiming paged(const Handle &handle, std::uint64_t bytes,
                             bool toGpu, aqua::sim::Tick earliest);

    hw::Server &server;
    hw::GpuId gpu;
    UvmBackendConfig cfg;
    core::StagingEngine engine;
    std::uint64_t nextId = 1;
    std::map<std::uint64_t, aqua::mem::Region> regions;
    std::uint64_t faults = 0;
};

} // namespace aqua::serve

#endif // AQUA_SERVE_UVM_BACKEND_HH
