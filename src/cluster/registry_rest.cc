#include "cluster/registry_rest.hh"

namespace aqua::cluster {

using aqua::sim::Tick;
using core::RestResponse;
using core::RestStatus;

namespace {

std::uint64_t
asU64(const json::Value &v, const char *field)
{
    return static_cast<std::uint64_t>(v.getInt(field, 0));
}

Tick
bodyNow(const json::Value &v)
{
    return static_cast<Tick>(v.getInt("now", 0));
}

RestResponse
okBody(json::Object body)
{
    RestResponse r;
    r.body = json::Value(std::move(body));
    return r;
}

/**
 * While the registry resyncs after a coordinator crash its chain maps
 * are half-restored; mutating them (an evictNotify racing teardown
 * used to trip internal asserts) must fail *retryably* so AquaLib's
 * backoff re-delivers once recovery completes.
 */
RestResponse
resyncing()
{
    RestResponse r;
    r.status = RestStatus::ServiceUnavailable;
    json::Object out;
    out["error"] = "registry resyncing after coordinator restart";
    r.body = json::Value(std::move(out));
    return r;
}

} // anonymous namespace

const char *
publishRoleName(PublishRole role)
{
    switch (role) {
      case PublishRole::Home: return "home";
      case PublishRole::Replica: return "replica";
      case PublishRole::Collision: return "collision";
    }
    return "?";
}

const char *
evictActionName(EvictAction action)
{
    switch (action) {
      case EvictAction::Ignored: return "ignored";
      case EvictAction::Promoted: return "promoted";
      case EvictAction::Invalidated: return "invalidated";
    }
    return "?";
}

void
bindClusterRoutes(core::RestRouter &router, PrefixRegistry &registry)
{
    router.route(
        "POST /prefix/publish",
        [&registry](const json::Value &body) {
            if (registry.frozen())
                return resyncing();
            PublishResult res = registry.publish(
                static_cast<hw::GpuId>(body.getInt("gpu", -1)),
                asU64(body, "key"), asU64(body, "verify"),
                static_cast<std::uint32_t>(body.getInt("blocks", 0)),
                asU64(body, "tokens"), asU64(body, "bytes"),
                asU64(body, "chain_sig"), bodyNow(body));
            json::Object out;
            out["role"] = publishRoleName(res.role);
            out["home"] = res.home;
            return okBody(std::move(out));
        });

    router.route(
        "POST /prefix/lookup",
        [&registry](const json::Value &body) {
            std::vector<CandidateKey> candidates;
            if (const json::Value *list = body.find("candidates")) {
                for (const json::Value &c : list->asArray()) {
                    CandidateKey k;
                    k.key = asU64(c, "key");
                    k.verify = asU64(c, "verify");
                    k.blocks = static_cast<std::uint32_t>(
                        c.getInt("blocks", 0));
                    candidates.push_back(k);
                }
            }
            LookupResult res = registry.lookup(
                static_cast<hw::GpuId>(body.getInt("gpu", -1)),
                candidates, bodyNow(body));
            json::Object out;
            out["found"] = res.found;
            if (res.found) {
                out["key"] = static_cast<std::int64_t>(res.key);
                out["verify"] = static_cast<std::int64_t>(res.verify);
                out["home"] = res.home;
                out["blocks"] =
                    static_cast<std::int64_t>(res.blocks);
                out["tokens"] =
                    static_cast<std::int64_t>(res.tokens);
                out["bytes"] = static_cast<std::int64_t>(res.bytes);
                out["chain_sig"] =
                    static_cast<std::int64_t>(res.chainSig);
            }
            return okBody(std::move(out));
        });

    router.route(
        "POST /prefix/pin",
        [&registry](const json::Value &body) {
            if (registry.frozen())
                return resyncing();
            PinResult res = registry.pin(
                static_cast<hw::GpuId>(body.getInt("gpu", -1)),
                asU64(body, "key"), asU64(body, "verify"),
                bodyNow(body));
            if (!res.ok) {
                RestResponse r;
                r.status = RestStatus::Conflict;
                json::Object out;
                out["error"] = "chain not pinnable";
                r.body = json::Value(std::move(out));
                return r;
            }
            json::Object out;
            out["pin"] = static_cast<std::int64_t>(res.pin);
            out["home"] = res.home;
            return okBody(std::move(out));
        });

    router.route("POST /prefix/unpin",
                 [&registry](const json::Value &body) {
                     if (registry.frozen())
                         return resyncing();
                     registry.unpin(asU64(body, "pin"),
                                    bodyNow(body));
                     return okBody({});
                 });

    router.route(
        "POST /prefix/evict_notify",
        [&registry](const json::Value &body) {
            if (registry.frozen())
                return resyncing();
            EvictAction action = registry.evictNotify(
                static_cast<hw::GpuId>(body.getInt("gpu", -1)),
                asU64(body, "key"), asU64(body, "verify"),
                bodyNow(body));
            json::Object out;
            out["action"] = evictActionName(action);
            return okBody(std::move(out));
        });
}

} // namespace aqua::cluster
