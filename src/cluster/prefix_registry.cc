#include "cluster/prefix_registry.hh"

#include <algorithm>

namespace aqua::cluster {

using aqua::sim::Tick;

bool
PrefixRegistry::gpuAlive(hw::GpuId gpu) const
{
    return !alive || alive(gpu);
}

void
PrefixRegistry::traceChain(Tick now, const char *category,
                           const Chain &chain)
{
    if (!tracer)
        return;
    json::Object fields;
    fields["chain"] = static_cast<std::int64_t>(chain.key);
    fields["home"] = chain.home;
    fields["blocks"] = static_cast<std::int64_t>(chain.blocks);
    fields["replicas"] =
        static_cast<std::int64_t>(chain.replicas.size());
    tracer->emit(now, category, json::Value(std::move(fields)));
}

PublishResult
PrefixRegistry::publish(hw::GpuId gpu, std::uint64_t key,
                        std::uint64_t verify, std::uint32_t blocks,
                        std::uint64_t tokens, std::uint64_t bytes,
                        std::uint64_t chainSig, Tick now)
{
    key &= keyMask;
    ++counters.publishes;
    auto it = chains.find(key);
    if (it != chains.end() && it->second.verify == verify &&
        !gpuAlive(it->second.home) &&
        !promoteOrInvalidate(it->second, now)) {
        // The dead home's chain was invalidated: a fresh publisher of
        // the same content takes over below.
        it = chains.end();
    }
    if (it == chains.end()) {
        Chain chain;
        chain.key = key;
        chain.verify = verify;
        chain.blocks = blocks;
        chain.tokens = tokens;
        chain.bytes = bytes;
        chain.chainSig = chainSig;
        chain.home = gpu;
        chain.publishers = 1;
        traceChain(now, "registry_home", chain);
        chains.emplace(key, std::move(chain));
        return {PublishRole::Home, gpu};
    }
    Chain &chain = it->second;
    if (chain.verify != verify) {
        ++counters.collisions;
        return {PublishRole::Collision, chain.home};
    }
    if (gpu == chain.home)
        return {PublishRole::Home, gpu};
    if (std::find(chain.replicas.begin(), chain.replicas.end(), gpu) ==
        chain.replicas.end()) {
        chain.replicas.push_back(gpu);
        ++chain.publishers;
        ++counters.replicaPublishes;
    }
    return {PublishRole::Replica, chain.home};
}

LookupResult
PrefixRegistry::lookup(hw::GpuId gpu,
                       const std::vector<CandidateKey> &candidates,
                       Tick now)
{
    (void)gpu;
    ++counters.lookups;
    for (const CandidateKey &cand : candidates) {
        auto it = chains.find(cand.key & keyMask);
        if (it == chains.end())
            continue;
        Chain &chain = it->second;
        if (chain.verify != cand.verify) {
            // Cluster-wide primary-hash collision: fall through to
            // the next (shorter) candidate boundary.
            ++counters.collisions;
            continue;
        }
        if (!gpuAlive(chain.home) &&
            !promoteOrInvalidate(chain, now))
            continue; // invalidated; `chain` is gone
        ++counters.hits;
        LookupResult r;
        r.found = true;
        r.key = chain.key;
        r.verify = chain.verify;
        r.home = chain.home;
        r.blocks = chain.blocks;
        r.tokens = chain.tokens;
        r.bytes = chain.bytes;
        r.chainSig = chain.chainSig;
        return r;
    }
    ++counters.misses;
    return {};
}

PinResult
PrefixRegistry::pin(hw::GpuId consumer, std::uint64_t key,
                    std::uint64_t verify, Tick now)
{
    auto it = chains.find(key & keyMask);
    if (it == chains.end() || it->second.verify != verify) {
        ++counters.pinRejects;
        return {};
    }
    Chain &chain = it->second;
    if (!gpuAlive(chain.home) && !promoteOrInvalidate(chain, now)) {
        ++counters.pinRejects;
        return {};
    }
    if (chain.pins.empty()) {
        // First lease: ask the home engine to pin the blocks. A
        // refusal means the chain is no longer resident there.
        auto agent = agents.find(chain.home);
        if (agent == agents.end() ||
            !agent->second.setPinned(chain.key, true)) {
            ++counters.pinRejects;
            hw::GpuId home = chain.home;
            evictNotify(home, chain.key, verify, now);
            return {};
        }
    }
    std::uint64_t id = nextPin++;
    chain.pins.emplace(id, consumer);
    pinChain.emplace(id, chain.key);
    ++counters.pins;
    return {true, id, chain.home};
}

void
PrefixRegistry::unpin(std::uint64_t pin, Tick now)
{
    (void)now;
    auto ref = pinChain.find(pin);
    if (ref == pinChain.end())
        return;
    std::uint64_t key = ref->second;
    pinChain.erase(ref);
    ++counters.unpins;
    auto it = chains.find(key);
    if (it == chains.end())
        return;
    Chain &chain = it->second;
    chain.pins.erase(pin);
    if (chain.pins.empty() && gpuAlive(chain.home)) {
        auto agent = agents.find(chain.home);
        if (agent != agents.end())
            agent->second.setPinned(chain.key, false);
    }
}

void
PrefixRegistry::breakPins(Chain &chain)
{
    counters.brokenPins += chain.pins.size();
    for (const auto &[id, consumer] : chain.pins)
        pinChain.erase(id);
    chain.pins.clear();
}

bool
PrefixRegistry::promoteOrInvalidate(Chain &chain, Tick now)
{
    breakPins(chain);
    while (!chain.replicas.empty()) {
        hw::GpuId next = chain.replicas.front();
        chain.replicas.erase(chain.replicas.begin());
        --chain.publishers;
        if (!gpuAlive(next))
            continue;
        auto agent = agents.find(next);
        if (agent == agents.end() ||
            !agent->second.promote(chain.key))
            continue;
        traceChain(now, "registry_unhome", chain);
        chain.home = next;
        ++counters.promotions;
        traceChain(now, "registry_promote", chain);
        traceChain(now, "registry_home", chain);
        return true;
    }
    ++counters.invalidations;
    traceChain(now, "registry_unhome", chain);
    traceChain(now, "registry_invalidate", chain);
    std::uint64_t key = chain.key;
    chains.erase(key);
    return false;
}

EvictAction
PrefixRegistry::evictNotify(hw::GpuId gpu, std::uint64_t key,
                            std::uint64_t verify, Tick now)
{
    ++counters.evictNotices;
    auto it = chains.find(key & keyMask);
    if (it == chains.end() || it->second.verify != verify)
        return EvictAction::Ignored;
    Chain &chain = it->second;
    if (gpu != chain.home) {
        auto pos = std::find(chain.replicas.begin(),
                             chain.replicas.end(), gpu);
        if (pos != chain.replicas.end()) {
            chain.replicas.erase(pos);
            --chain.publishers;
        }
        return EvictAction::Ignored;
    }
    return promoteOrInvalidate(chain, now) ? EvictAction::Promoted
                                           : EvictAction::Invalidated;
}

void
PrefixRegistry::onGpuFailed(hw::GpuId gpu, Tick now)
{
    // Leases held *by* the failed GPU evaporate; releasing the last
    // one unpins the home engine's blocks.
    std::vector<std::uint64_t> stale;
    for (const auto &[id, key] : pinChain) {
        auto it = chains.find(key);
        if (it == chains.end())
            continue;
        auto pin = it->second.pins.find(id);
        if (pin != it->second.pins.end() && pin->second == gpu)
            stale.push_back(id);
    }
    for (std::uint64_t id : stale) {
        auto ref = pinChain.find(id);
        if (ref == pinChain.end())
            continue;
        std::uint64_t key = ref->second;
        pinChain.erase(ref);
        ++counters.brokenPins;
        auto it = chains.find(key);
        if (it == chains.end())
            continue;
        Chain &chain = it->second;
        chain.pins.erase(id);
        if (chain.pins.empty() && gpuAlive(chain.home)) {
            auto agent = agents.find(chain.home);
            if (agent != agents.end())
                agent->second.setPinned(chain.key, false);
        }
    }

    std::vector<std::uint64_t> homed;
    for (auto &[key, chain] : chains) {
        auto pos = std::find(chain.replicas.begin(),
                             chain.replicas.end(), gpu);
        if (pos != chain.replicas.end()) {
            chain.replicas.erase(pos);
            --chain.publishers;
        }
        if (chain.home == gpu)
            homed.push_back(key);
    }
    for (std::uint64_t key : homed) {
        auto it = chains.find(key);
        if (it != chains.end())
            promoteOrInvalidate(it->second, now);
    }
    agents.erase(gpu);
}

void
PrefixRegistry::setAgent(hw::GpuId gpu, RegistryAgent agent)
{
    agents[gpu] = std::move(agent);
}

void
PrefixRegistry::clearAgent(hw::GpuId gpu)
{
    agents.erase(gpu);
}

std::size_t
PrefixRegistry::activePins() const
{
    return pinChain.size();
}

std::size_t
PrefixRegistry::pinsHeldBy(hw::GpuId consumer) const
{
    std::size_t n = 0;
    for (const auto &[key, chain] : chains)
        for (const auto &[id, gpu] : chain.pins)
            if (gpu == consumer)
                ++n;
    return n;
}

hw::GpuId
PrefixRegistry::homeOf(std::uint64_t key) const
{
    auto it = chains.find(key & keyMask);
    return it == chains.end() ? hw::hostDramId : it->second.home;
}

std::uint32_t
PrefixRegistry::chainRefs(std::uint64_t key) const
{
    auto it = chains.find(key & keyMask);
    if (it == chains.end())
        return 0;
    return it->second.publishers +
           static_cast<std::uint32_t>(it->second.pins.size());
}

} // namespace aqua::cluster
