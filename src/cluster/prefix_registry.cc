#include "cluster/prefix_registry.hh"

#include <algorithm>

#include "recovery/state_journal.hh"
#include "sim/logging.hh"

namespace aqua::cluster {

using aqua::sim::Tick;

bool
PrefixRegistry::gpuAlive(hw::GpuId gpu) const
{
    return !alive || alive(gpu);
}

void
PrefixRegistry::jlog(const char *op, json::Value fields)
{
    if (journal)
        journal->append(op, std::move(fields));
}

void
PrefixRegistry::traceChain(Tick now, const char *category,
                           const Chain &chain)
{
    if (!tracer)
        return;
    json::Object fields;
    fields["chain"] = static_cast<std::int64_t>(chain.key);
    fields["home"] = chain.home;
    fields["blocks"] = static_cast<std::int64_t>(chain.blocks);
    fields["replicas"] =
        static_cast<std::int64_t>(chain.replicas.size());
    tracer->emit(now, category, json::Value(std::move(fields)));
}

PublishResult
PrefixRegistry::publish(hw::GpuId gpu, std::uint64_t key,
                        std::uint64_t verify, std::uint32_t blocks,
                        std::uint64_t tokens, std::uint64_t bytes,
                        std::uint64_t chainSig, Tick now)
{
    key &= keyMask;
    ++counters.publishes;
    auto it = chains.find(key);
    if (it != chains.end() && it->second.verify == verify &&
        !gpuAlive(it->second.home) &&
        !promoteOrInvalidate(it->second, now)) {
        // The dead home's chain was invalidated: a fresh publisher of
        // the same content takes over below.
        it = chains.end();
    }
    if (it == chains.end()) {
        Chain chain;
        chain.key = key;
        chain.verify = verify;
        chain.blocks = blocks;
        chain.tokens = tokens;
        chain.bytes = bytes;
        chain.chainSig = chainSig;
        chain.home = gpu;
        chain.publishers = 1;
        traceChain(now, "registry_home", chain);
        json::Value f;
        f["key"] = key;
        f["verify"] = verify;
        f["blocks"] = blocks;
        f["tokens"] = tokens;
        f["bytes"] = bytes;
        f["chain_sig"] = chainSig;
        f["home"] = gpu;
        jlog("home", std::move(f));
        chains.emplace(key, std::move(chain));
        if (observer.published)
            observer.published(key, verify, blocks, tokens, bytes,
                               chainSig);
        return {PublishRole::Home, gpu};
    }
    Chain &chain = it->second;
    if (chain.verify != verify) {
        ++counters.collisions;
        return {PublishRole::Collision, chain.home};
    }
    if (gpu == chain.home)
        return {PublishRole::Home, gpu};
    if (std::find(chain.replicas.begin(), chain.replicas.end(), gpu) ==
        chain.replicas.end()) {
        chain.replicas.push_back(gpu);
        ++chain.publishers;
        ++counters.replicaPublishes;
        json::Value f;
        f["key"] = key;
        f["gpu"] = gpu;
        jlog("replica", std::move(f));
    }
    return {PublishRole::Replica, chain.home};
}

LookupResult
PrefixRegistry::lookup(hw::GpuId gpu,
                       const std::vector<CandidateKey> &candidates,
                       Tick now)
{
    (void)gpu;
    ++counters.lookups;
    for (const CandidateKey &cand : candidates) {
        auto it = chains.find(cand.key & keyMask);
        if (it == chains.end())
            continue;
        Chain &chain = it->second;
        if (chain.verify != cand.verify) {
            // Cluster-wide primary-hash collision: fall through to
            // the next (shorter) candidate boundary.
            ++counters.collisions;
            continue;
        }
        if (!gpuAlive(chain.home) &&
            !promoteOrInvalidate(chain, now))
            continue; // invalidated; `chain` is gone
        ++counters.hits;
        LookupResult r;
        r.found = true;
        r.key = chain.key;
        r.verify = chain.verify;
        r.home = chain.home;
        r.blocks = chain.blocks;
        r.tokens = chain.tokens;
        r.bytes = chain.bytes;
        r.chainSig = chain.chainSig;
        return r;
    }
    ++counters.misses;
    return {};
}

LookupResult
PrefixRegistry::peek(std::uint64_t key, std::uint64_t verify) const
{
    auto it = chains.find(key & keyMask);
    if (it == chains.end() || it->second.verify != verify)
        return {};
    const Chain &chain = it->second;
    if (!gpuAlive(chain.home))
        return {};
    LookupResult r;
    r.found = true;
    r.key = chain.key;
    r.verify = chain.verify;
    r.home = chain.home;
    r.blocks = chain.blocks;
    r.tokens = chain.tokens;
    r.bytes = chain.bytes;
    r.chainSig = chain.chainSig;
    return r;
}

PinResult
PrefixRegistry::pin(hw::GpuId consumer, std::uint64_t key,
                    std::uint64_t verify, Tick now)
{
    auto it = chains.find(key & keyMask);
    if (it == chains.end() || it->second.verify != verify) {
        ++counters.pinRejects;
        return {};
    }
    Chain &chain = it->second;
    if (!gpuAlive(chain.home) && !promoteOrInvalidate(chain, now)) {
        ++counters.pinRejects;
        return {};
    }
    if (chain.pins.empty()) {
        // First lease: ask the home engine to pin the blocks. A
        // refusal means the chain is no longer resident there.
        auto agent = agents.find(chain.home);
        if (agent == agents.end() ||
            !agent->second.setPinned(chain.key, true)) {
            ++counters.pinRejects;
            hw::GpuId home = chain.home;
            evictNotify(home, chain.key, verify, now);
            return {};
        }
    }
    std::uint64_t id = nextPin++;
    chain.pins.emplace(id, consumer);
    pinChain.emplace(id, chain.key);
    ++counters.pins;
    json::Value f;
    f["pin"] = id;
    f["key"] = chain.key;
    f["gpu"] = consumer;
    jlog("pin", std::move(f));
    return {true, id, chain.home};
}

void
PrefixRegistry::unpin(std::uint64_t pin, Tick now)
{
    (void)now;
    auto ref = pinChain.find(pin);
    if (ref == pinChain.end())
        return;
    std::uint64_t key = ref->second;
    pinChain.erase(ref);
    ++counters.unpins;
    json::Value f;
    f["pin"] = pin;
    jlog("unpin", std::move(f));
    auto it = chains.find(key);
    if (it == chains.end())
        return;
    Chain &chain = it->second;
    chain.pins.erase(pin);
    if (chain.pins.empty() && gpuAlive(chain.home)) {
        auto agent = agents.find(chain.home);
        if (agent != agents.end())
            agent->second.setPinned(chain.key, false);
    }
}

void
PrefixRegistry::breakPins(Chain &chain)
{
    counters.brokenPins += chain.pins.size();
    for (const auto &[id, consumer] : chain.pins)
        pinChain.erase(id);
    chain.pins.clear();
}

bool
PrefixRegistry::promoteOrInvalidate(Chain &chain, Tick now)
{
    breakPins(chain);
    while (!chain.replicas.empty()) {
        hw::GpuId next = chain.replicas.front();
        chain.replicas.erase(chain.replicas.begin());
        --chain.publishers;
        if (!gpuAlive(next))
            continue;
        auto agent = agents.find(next);
        if (agent == agents.end() ||
            !agent->second.promote(chain.key))
            continue;
        traceChain(now, "registry_unhome", chain);
        chain.home = next;
        ++counters.promotions;
        traceChain(now, "registry_promote", chain);
        traceChain(now, "registry_home", chain);
        json::Value f;
        f["key"] = chain.key;
        f["home"] = next;
        jlog("promote", std::move(f));
        return true;
    }
    ++counters.invalidations;
    traceChain(now, "registry_unhome", chain);
    traceChain(now, "registry_invalidate", chain);
    std::uint64_t key = chain.key;
    json::Value f;
    f["key"] = key;
    jlog("invalidate", std::move(f));
    chains.erase(key);
    if (observer.invalidated)
        observer.invalidated(key);
    return false;
}

EvictAction
PrefixRegistry::evictNotify(hw::GpuId gpu, std::uint64_t key,
                            std::uint64_t verify, Tick now)
{
    ++counters.evictNotices;
    auto it = chains.find(key & keyMask);
    if (it == chains.end() || it->second.verify != verify)
        return EvictAction::Ignored;
    Chain &chain = it->second;
    if (gpu != chain.home) {
        auto pos = std::find(chain.replicas.begin(),
                             chain.replicas.end(), gpu);
        if (pos != chain.replicas.end()) {
            chain.replicas.erase(pos);
            --chain.publishers;
            json::Value f;
            f["key"] = chain.key;
            f["gpu"] = gpu;
            jlog("replica_drop", std::move(f));
        }
        return EvictAction::Ignored;
    }
    return promoteOrInvalidate(chain, now) ? EvictAction::Promoted
                                           : EvictAction::Invalidated;
}

void
PrefixRegistry::onGpuFailed(hw::GpuId gpu, Tick now)
{
    // Leases held *by* the failed GPU evaporate; releasing the last
    // one unpins the home engine's blocks.
    std::vector<std::uint64_t> stale;
    for (const auto &[id, key] : pinChain) {
        auto it = chains.find(key);
        if (it == chains.end())
            continue;
        auto pin = it->second.pins.find(id);
        if (pin != it->second.pins.end() && pin->second == gpu)
            stale.push_back(id);
    }
    for (std::uint64_t id : stale) {
        auto ref = pinChain.find(id);
        if (ref == pinChain.end())
            continue;
        std::uint64_t key = ref->second;
        pinChain.erase(ref);
        ++counters.brokenPins;
        json::Value jf;
        jf["pin"] = id;
        jlog("unpin", std::move(jf));
        auto it = chains.find(key);
        if (it == chains.end())
            continue;
        Chain &chain = it->second;
        chain.pins.erase(id);
        if (chain.pins.empty() && gpuAlive(chain.home)) {
            auto agent = agents.find(chain.home);
            if (agent != agents.end())
                agent->second.setPinned(chain.key, false);
        }
    }

    std::vector<std::uint64_t> homed;
    for (auto &[key, chain] : chains) {
        auto pos = std::find(chain.replicas.begin(),
                             chain.replicas.end(), gpu);
        if (pos != chain.replicas.end()) {
            chain.replicas.erase(pos);
            --chain.publishers;
            json::Value f;
            f["key"] = key;
            f["gpu"] = gpu;
            jlog("replica_drop", std::move(f));
        }
        if (chain.home == gpu)
            homed.push_back(key);
    }
    for (std::uint64_t key : homed) {
        auto it = chains.find(key);
        if (it != chains.end())
            promoteOrInvalidate(it->second, now);
    }
    agents.erase(gpu);
}

void
PrefixRegistry::setAgent(hw::GpuId gpu, RegistryAgent agent)
{
    agents[gpu] = std::move(agent);
}

void
PrefixRegistry::clearAgent(hw::GpuId gpu)
{
    agents.erase(gpu);
}

std::size_t
PrefixRegistry::activePins() const
{
    return pinChain.size();
}

std::size_t
PrefixRegistry::pinsHeldBy(hw::GpuId consumer) const
{
    std::size_t n = 0;
    for (const auto &[key, chain] : chains)
        for (const auto &[id, gpu] : chain.pins)
            if (gpu == consumer)
                ++n;
    return n;
}

hw::GpuId
PrefixRegistry::homeOf(std::uint64_t key) const
{
    auto it = chains.find(key & keyMask);
    return it == chains.end() ? hw::hostDramId : it->second.home;
}

std::uint32_t
PrefixRegistry::chainRefs(std::uint64_t key) const
{
    auto it = chains.find(key & keyMask);
    if (it == chains.end())
        return 0;
    return it->second.publishers +
           static_cast<std::uint32_t>(it->second.pins.size());
}

//
// Crash recovery.
//

void
PrefixRegistry::attachJournal(aqua::recovery::StateJournal *j)
{
    journal = j;
    if (journal)
        journal->setSnapshotProvider([this] { return exportState(); });
}

json::Value
PrefixRegistry::exportState() const
{
    json::Value v;
    v["next_pin"] = nextPin;
    json::Array arr;
    // Deterministic snapshot order despite the unordered map: sort by
    // key so twin runs produce byte-identical journals.
    std::vector<std::uint64_t> keys;
    keys.reserve(chains.size());
    for (const auto &[key, chain] : chains)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t key : keys) {
        const Chain &c = chains.at(key);
        json::Value e;
        e["key"] = c.key;
        e["verify"] = c.verify;
        e["blocks"] = c.blocks;
        e["tokens"] = c.tokens;
        e["bytes"] = c.bytes;
        e["chain_sig"] = c.chainSig;
        e["home"] = c.home;
        e["publishers"] = c.publishers;
        json::Array reps;
        for (hw::GpuId r : c.replicas)
            reps.push_back(json::Value(r));
        e["replicas"] = json::Value(std::move(reps));
        json::Array pins;
        for (const auto &[id, consumer] : c.pins) {
            json::Value p;
            p["id"] = id;
            p["gpu"] = consumer;
            pins.push_back(std::move(p));
        }
        e["pins"] = json::Value(std::move(pins));
        arr.push_back(std::move(e));
    }
    v["chains"] = json::Value(std::move(arr));
    return v;
}

void
PrefixRegistry::reset()
{
    chains.clear();
    pinChain.clear();
    nextPin = 1;
}

void
PrefixRegistry::restoreState(const json::Value &snapshot)
{
    nextPin = static_cast<std::uint64_t>(
        snapshot.getInt("next_pin", 1));
    if (const json::Value *arr = snapshot.find("chains")) {
        for (const json::Value &e : arr->asArray()) {
            Chain c;
            c.key = static_cast<std::uint64_t>(e.getInt("key", 0));
            c.verify =
                static_cast<std::uint64_t>(e.getInt("verify", 0));
            c.blocks =
                static_cast<std::uint32_t>(e.getInt("blocks", 0));
            c.tokens =
                static_cast<std::uint64_t>(e.getInt("tokens", 0));
            c.bytes = static_cast<std::uint64_t>(e.getInt("bytes", 0));
            c.chainSig =
                static_cast<std::uint64_t>(e.getInt("chain_sig", 0));
            c.home = static_cast<hw::GpuId>(e.getInt("home", 0));
            c.publishers =
                static_cast<std::uint32_t>(e.getInt("publishers", 1));
            if (const json::Value *reps = e.find("replicas"))
                for (const json::Value &r : reps->asArray())
                    c.replicas.push_back(
                        static_cast<hw::GpuId>(r.asInt()));
            if (const json::Value *pins = e.find("pins")) {
                for (const json::Value &p : pins->asArray()) {
                    std::uint64_t id = static_cast<std::uint64_t>(
                        p.getInt("id", 0));
                    c.pins.emplace(id, static_cast<hw::GpuId>(
                                           p.getInt("gpu", 0)));
                    pinChain.emplace(id, c.key);
                }
            }
            chains.emplace(c.key, std::move(c));
        }
    }
}

void
PrefixRegistry::applyJournalRecord(const std::string &op,
                                   const json::Value &f)
{
    std::uint64_t key = static_cast<std::uint64_t>(f.getInt("key", 0));
    if (op == "home") {
        Chain c;
        c.key = key;
        c.verify = static_cast<std::uint64_t>(f.getInt("verify", 0));
        c.blocks = static_cast<std::uint32_t>(f.getInt("blocks", 0));
        c.tokens = static_cast<std::uint64_t>(f.getInt("tokens", 0));
        c.bytes = static_cast<std::uint64_t>(f.getInt("bytes", 0));
        c.chainSig =
            static_cast<std::uint64_t>(f.getInt("chain_sig", 0));
        c.home = static_cast<hw::GpuId>(f.getInt("home", 0));
        c.publishers = 1;
        chains[key] = std::move(c);
    } else if (op == "replica") {
        auto it = chains.find(key);
        if (it != chains.end()) {
            it->second.replicas.push_back(
                static_cast<hw::GpuId>(f.getInt("gpu", 0)));
            ++it->second.publishers;
        }
    } else if (op == "replica_drop") {
        auto it = chains.find(key);
        if (it != chains.end()) {
            Chain &c = it->second;
            auto pos = std::find(
                c.replicas.begin(), c.replicas.end(),
                static_cast<hw::GpuId>(f.getInt("gpu", 0)));
            if (pos != c.replicas.end()) {
                c.replicas.erase(pos);
                --c.publishers;
            }
        }
    } else if (op == "promote") {
        auto it = chains.find(key);
        if (it != chains.end()) {
            Chain &c = it->second;
            breakPins(c);
            // Live promotion pops (and discards) replicas from the
            // front until one accepts; replay replicates that walk.
            hw::GpuId home =
                static_cast<hw::GpuId>(f.getInt("home", 0));
            while (!c.replicas.empty()) {
                hw::GpuId next = c.replicas.front();
                c.replicas.erase(c.replicas.begin());
                --c.publishers;
                if (next == home)
                    break;
            }
            c.home = home;
        }
    } else if (op == "invalidate") {
        auto it = chains.find(key);
        if (it != chains.end()) {
            breakPins(it->second);
            chains.erase(it);
        }
    } else if (op == "pin") {
        auto it = chains.find(key);
        std::uint64_t id =
            static_cast<std::uint64_t>(f.getInt("pin", 0));
        if (it != chains.end()) {
            it->second.pins.emplace(
                id, static_cast<hw::GpuId>(f.getInt("gpu", 0)));
            pinChain.emplace(id, key);
        }
        nextPin = std::max(nextPin, id + 1);
    } else if (op == "unpin") {
        std::uint64_t id =
            static_cast<std::uint64_t>(f.getInt("pin", 0));
        auto ref = pinChain.find(id);
        if (ref != pinChain.end()) {
            auto it = chains.find(ref->second);
            if (it != chains.end())
                it->second.pins.erase(id);
            pinChain.erase(ref);
        }
    } else {
        aqua::sim::panic(
            "PrefixRegistry::applyJournalRecord: unknown op '%s'",
            op.c_str());
    }
}

PrefixRegistry::ResyncSummary
PrefixRegistry::resyncSurvivors(Tick now)
{
    ResyncSummary out;
    std::vector<std::uint64_t> keys;
    keys.reserve(chains.size());
    for (const auto &[key, chain] : chains)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t key : keys) {
        auto it = chains.find(key);
        if (it == chains.end())
            continue; // erased by an earlier invalidation
        Chain &chain = it->second;
        bool confirmed = false;
        if (gpuAlive(chain.home)) {
            auto agent = agents.find(chain.home);
            if (agent != agents.end()) {
                // Residency probe: releasing a pin the engine does not
                // hold is a no-op, so the (false) call answers "is the
                // chain still resident" without perturbing engine pin
                // counts — and reconciles away any engine-side pin
                // whose journal record was lost with the crash. The
                // journaled pin state is then re-asserted exactly
                // once. A refusal means the chain was evicted inside
                // the crash window.
                confirmed = agent->second.setPinned(chain.key, false);
                if (confirmed && !chain.pins.empty())
                    confirmed =
                        agent->second.setPinned(chain.key, true);
            }
        }
        if (confirmed) {
            ++out.verified;
            continue;
        }
        if (promoteOrInvalidate(chain, now))
            ++out.rehomed;
        else
            ++out.invalidated;
    }
    return out;
}

std::vector<std::string>
PrefixRegistry::auditInvariants() const
{
    std::vector<std::string> violations;
    for (const auto &[key, chain] : chains) {
        if (chain.pins.empty())
            continue;
        if (!gpuAlive(chain.home))
            violations.push_back(
                "chain " + std::to_string(key) + " has " +
                std::to_string(chain.pins.size()) +
                " active pins but its home gpu" +
                std::to_string(chain.home) + " is dead");
        else if (agents.find(chain.home) == agents.end())
            violations.push_back(
                "chain " + std::to_string(key) +
                " has active pins but no agent for home gpu" +
                std::to_string(chain.home));
    }
    for (const auto &[id, key] : pinChain) {
        auto it = chains.find(key);
        if (it == chains.end() ||
            it->second.pins.find(id) == it->second.pins.end())
            violations.push_back("pin " + std::to_string(id) +
                                 " dangles: chain " +
                                 std::to_string(key) +
                                 " no longer tracks it");
    }
    return violations;
}

} // namespace aqua::cluster
