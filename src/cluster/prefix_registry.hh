/**
 * @file
 * Coordinator-hosted cluster prefix registry.
 *
 * The CoW prefix cache (serve/PrefixIndex) dedups a hot shared prefix
 * *within* one engine; across a scale-up domain every consumer GPU
 * still rematerialises its own copy. The registry tracks which prefix
 * chains (by the engines' dual-rolling-hash keys) are resident on
 * which GPU, designates a single *home replica* per chain per domain,
 * and hands out lease-style pins so the home GPU cannot donate or
 * evict blocks a remote consumer is actively reading over NVLink.
 *
 * The registry is pure control-plane state: engines talk to it over
 * the coordinator REST surface (see registry_rest.hh), and it calls
 * back into registered per-GPU agents (RegistryAgent) to pin blocks
 * on the home engine or to promote a replica to home after a failure
 * or eviction.
 */

#ifndef AQUA_CLUSTER_PREFIX_REGISTRY_HH
#define AQUA_CLUSTER_PREFIX_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "hw/gpu.hh"
#include "json/json.hh"
#include "sim/simulation.hh"
#include "trace/trace.hh"

namespace aqua::recovery {
class StateJournal;
} // namespace aqua::recovery

namespace aqua::cluster {

/**
 * Callbacks into the engine that owns a GPU's prefix blocks. The
 * registry invokes them synchronously while handling REST calls;
 * both return false when the chain is no longer resident there.
 */
struct RegistryAgent
{
    /** Pin (or release) the chain's blocks on this GPU. */
    std::function<bool(std::uint64_t key, bool pinned)> setPinned;
    /** Become home for a chain this GPU holds as a replica. */
    std::function<bool(std::uint64_t key)> promote;
};

/** Outcome role of a publish. */
enum class PublishRole
{
    /** First publisher (or re-publish by the current home): this GPU
     *  is the chain's designated resident copy. */
    Home,
    /** The chain is already homed elsewhere; the publisher should not
     *  retain its own cache-only copy. */
    Replica,
    /** Primary keys matched but verification hashes differ: a
     *  cluster-wide hash collision. The publisher falls back to
     *  engine-local caching and the registry ignores the chain. */
    Collision,
};

struct PublishResult
{
    PublishRole role = PublishRole::Home;
    hw::GpuId home = hw::hostDramId;
};

/** One candidate (key, verify) pair at a full-block chain boundary. */
struct CandidateKey
{
    std::uint64_t key = 0;
    std::uint64_t verify = 0;
    std::uint32_t blocks = 0;
};

struct LookupResult
{
    bool found = false;
    std::uint64_t key = 0;
    std::uint64_t verify = 0;
    hw::GpuId home = hw::hostDramId;
    std::uint32_t blocks = 0;
    std::uint64_t tokens = 0;
    std::uint64_t bytes = 0;
    /** FNV-1a content signature over the whole chain; consumers check
     *  it against their own prompt before trusting the match. */
    std::uint64_t chainSig = 0;
};

struct PinResult
{
    bool ok = false;
    /** Lease id to pass to unpin(). */
    std::uint64_t pin = 0;
    hw::GpuId home = hw::hostDramId;
};

/**
 * Observer of the registry's chain lifecycle, for services layered on
 * top of it (the cross-server federation directory advertises local
 * home chains to peers and must tombstone them the instant they stop
 * being servable). Fired on live mutations only — journal replay and
 * snapshot restore stay silent, since a recovering observer replays
 * its own journal.
 */
struct ChainObserver
{
    /** A chain gained a home on this server (first publish, or a
     *  fresh publisher taking over from a dead home). */
    std::function<void(std::uint64_t key, std::uint64_t verify,
                       std::uint32_t blocks, std::uint64_t tokens,
                       std::uint64_t bytes, std::uint64_t chainSig)>
        published;
    /** The chain lost its last local copy (evict/failure with no
     *  replica left): it is no longer servable from this server. */
    std::function<void(std::uint64_t key)> invalidated;
};

/** What evictNotify() did about the chain. */
enum class EvictAction
{
    /** Not the home copy (or unknown chain): registry state pruned. */
    Ignored,
    /** A replica took over as home. */
    Promoted,
    /** No replica left: the chain is gone from the registry. */
    Invalidated,
};

struct PrefixRegistryStats
{
    std::uint64_t publishes = 0;
    std::uint64_t replicaPublishes = 0;
    std::uint64_t collisions = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t pins = 0;
    std::uint64_t unpins = 0;
    std::uint64_t pinRejects = 0;
    std::uint64_t evictNotices = 0;
    std::uint64_t promotions = 0;
    std::uint64_t invalidations = 0;
    /** Pins force-released by a home failure or eviction. */
    std::uint64_t brokenPins = 0;
};

/**
 * The registry proper. One instance per scale-up domain, colocated
 * with the coordinator.
 */
class PrefixRegistry
{
  public:
    /**
     * Record a chain resident on @p gpu.
     *
     * The first publisher becomes the chain's home; later publishers
     * of the same (key, verify) are replicas; a verify mismatch is a
     * cluster-wide collision and the chain stays engine-local.
     */
    PublishResult publish(hw::GpuId gpu, std::uint64_t key,
                          std::uint64_t verify, std::uint32_t blocks,
                          std::uint64_t tokens, std::uint64_t bytes,
                          std::uint64_t chainSig, aqua::sim::Tick now);

    /**
     * Find the longest registered chain matching one of
     * @p candidates (ordered longest-first). Dead homes are promoted
     * or invalidated on the way; verify mismatches fall through to
     * the next (shorter) candidate.
     */
    LookupResult lookup(hw::GpuId gpu,
                        const std::vector<CandidateKey> &candidates,
                        aqua::sim::Tick now);

    /**
     * Take a read lease on a chain for @p consumer. While any pin is
     * active the home engine keeps the chain's blocks pinned
     * (non-evictable, non-donatable).
     */
    PinResult pin(hw::GpuId consumer, std::uint64_t key,
                  std::uint64_t verify, aqua::sim::Tick now);

    /** Release a lease; idempotent (stale ids are ignored). */
    void unpin(std::uint64_t pin, aqua::sim::Tick now);

    /**
     * A GPU dropped its copy of a chain (cache eviction, shrink,
     * engine teardown). Home copies promote a replica or invalidate;
     * replica copies are pruned.
     */
    EvictAction evictNotify(hw::GpuId gpu, std::uint64_t key,
                            std::uint64_t verify, aqua::sim::Tick now);

    /**
     * A GPU went dark: break its consumers' pins, prune its replicas
     * and promote or invalidate every chain it homed. Wired to
     * fault::FaultInjector::setGpuFailObserver by the benches.
     */
    void onGpuFailed(hw::GpuId gpu, aqua::sim::Tick now);

    /** Register the engine-side callbacks for a GPU. */
    void setAgent(hw::GpuId gpu, RegistryAgent agent);
    void clearAgent(hw::GpuId gpu);

    /** Liveness oracle for home GPUs (e.g. !Topology::gpuFailed). */
    void
    setAliveFn(std::function<bool(hw::GpuId)> fn)
    {
        alive = std::move(fn);
    }

    /** Optional event log (registry_home/unhome, promote, ...). */
    void setTraceLog(trace::TraceLog *log) { tracer = log; }

    /** Install (or clear, with {}) the chain lifecycle observer. */
    void setChainObserver(ChainObserver obs)
    {
        observer = std::move(obs);
    }

    /**
     * Side-effect-free probe of one chain: no stats, no promotion of
     * a dead home. Used by the federation's home-side fetch
     * validation, which must not mutate registry state while merely
     * checking that an in-flight stream's source is still intact.
     */
    LookupResult peek(std::uint64_t key, std::uint64_t verify) const;

    /**
     * Test hook: AND every primary key with @p mask to force
     * cluster-wide collisions (verification hashes still differ).
     */
    void setKeyMask(std::uint64_t mask) { keyMask = mask; }

    const PrefixRegistryStats &stats() const { return counters; }

    /** Outstanding read leases across all chains. */
    std::size_t activePins() const;
    /** Leases held by one consumer GPU. */
    std::size_t pinsHeldBy(hw::GpuId consumer) const;
    /** Registered chains (homes only; collisions are not entered). */
    std::size_t size() const { return chains.size(); }
    /** Home GPU of a chain, or hw::hostDramId when unknown. */
    hw::GpuId homeOf(std::uint64_t key) const;
    /** Cluster-wide publish refcount of a chain (0 = unknown). */
    std::uint32_t chainRefs(std::uint64_t key) const;

    //
    // Crash recovery (src/recovery).
    //

    /** Attach (or detach, with nullptr) the write-ahead journal. */
    void attachJournal(aqua::recovery::StateJournal *j);

    /** Full-state export, suitable as a journal snapshot. */
    json::Value exportState() const;

    /** Drop all chain/pin state; agents, liveness oracle, tracer and
     *  stats counters survive (they are process-local wiring). */
    void reset();

    /** Restore a full-state export taken by exportState(). */
    void restoreState(const json::Value &snapshot);

    /** Re-apply one journaled mutation (replay; never re-journaled). */
    void applyJournalRecord(const std::string &op,
                            const json::Value &fields);

    /**
     * Freeze mutating REST traffic while a resync is in flight:
     * registry_rest maps a frozen registry to a retryable 503, so
     * engine evictNotify/publish calls racing the coordinator restart
     * back off instead of mutating half-restored state.
     */
    void setFrozen(bool f) { frozenFlag = f; }
    bool frozen() const { return frozenFlag; }

    struct ResyncSummary
    {
        /** Chains whose home re-confirmed residency. */
        std::size_t verified = 0;
        /** Orphaned homes promoted from a replica (Harvest-style). */
        std::size_t rehomed = 0;
        /** Chains with no surviving copy; consumers recompute. */
        std::size_t invalidated = 0;
    };

    /**
     * After journal replay, re-verify every chain against the engines
     * that survived: each home must re-confirm residency (re-asserting
     * its pin state); homes that vanished with the crash window are
     * promoted from a replica or invalidated to recompute.
     */
    ResyncSummary resyncSurvivors(aqua::sim::Tick now);

    /**
     * Pin-residency audit for the chaos harness: every chain with
     * active pins must have a live, registered home. Returns
     * human-readable violations; empty = consistent.
     */
    std::vector<std::string> auditInvariants() const;

  private:
    struct Chain
    {
        std::uint64_t key = 0;
        std::uint64_t verify = 0;
        std::uint32_t blocks = 0;
        std::uint64_t tokens = 0;
        std::uint64_t bytes = 0;
        std::uint64_t chainSig = 0;
        hw::GpuId home = hw::hostDramId;
        /** Non-home GPUs that also published the chain. */
        std::vector<hw::GpuId> replicas;
        /** Cluster-wide publish refcount (home + replicas). */
        std::uint32_t publishers = 0;
        /** Active read leases: pin id -> consumer GPU. */
        std::map<std::uint64_t, hw::GpuId> pins;
    };

    bool gpuAlive(hw::GpuId gpu) const;
    /** Home of @p chain died or evicted: promote or invalidate.
     *  @return false when the chain was erased. */
    bool promoteOrInvalidate(Chain &chain, aqua::sim::Tick now);
    void breakPins(Chain &chain);
    void traceChain(aqua::sim::Tick now, const char *category,
                    const Chain &chain);
    /** Journal one mutation (no-op without an attached journal). */
    void jlog(const char *op, json::Value fields);

    std::unordered_map<std::uint64_t, Chain> chains;
    std::unordered_map<std::uint64_t, std::uint64_t> pinChain;
    std::map<hw::GpuId, RegistryAgent> agents;
    ChainObserver observer;
    std::function<bool(hw::GpuId)> alive;
    trace::TraceLog *tracer = nullptr;
    std::uint64_t keyMask = ~0ull;
    std::uint64_t nextPin = 1;
    PrefixRegistryStats counters;
    aqua::recovery::StateJournal *journal = nullptr;
    bool frozenFlag = false;
};

} // namespace aqua::cluster

#endif // AQUA_CLUSTER_PREFIX_REGISTRY_HH
