/**
 * @file
 * REST surface of the cluster prefix registry.
 *
 * Five endpoints extend the coordinator's router (docs/PROTOCOL.md,
 * docs/cluster_registry.md):
 *
 *   POST /prefix/publish       chain resident on a GPU
 *   POST /prefix/lookup        longest registered match of candidates
 *   POST /prefix/pin           take a read lease on the home copy
 *   POST /prefix/unpin         release a lease
 *   POST /prefix/evict_notify  a GPU dropped its copy
 *
 * uint64 hash keys ride through JSON as bit-cast int64 (the json
 * layer stores signed 64-bit integers); both sides cast back.
 */

#ifndef AQUA_CLUSTER_REGISTRY_REST_HH
#define AQUA_CLUSTER_REGISTRY_REST_HH

#include "aqua/rest.hh"
#include "cluster/prefix_registry.hh"

namespace aqua::cluster {

/** Register the five prefix-registry routes on @p router. */
void bindClusterRoutes(core::RestRouter &router,
                       PrefixRegistry &registry);

/** Name of a publish role as carried on the wire. */
const char *publishRoleName(PublishRole role);

/** Name of an evict action as carried on the wire. */
const char *evictActionName(EvictAction action);

} // namespace aqua::cluster

#endif // AQUA_CLUSTER_REGISTRY_REST_HH
