/**
 * @file
 * Gale-Shapley stable matching.
 *
 * Within one server, AQUA-PLACER pairs producer GPUs with consumer
 * GPUs "using simple stable matching" (§4). The classic deferred-
 * acceptance algorithm runs proposer-optimal in O(n^2).
 */

#ifndef AQUA_PLACER_STABLE_MATCHING_HH
#define AQUA_PLACER_STABLE_MATCHING_HH

#include <cstdint>
#include <vector>

namespace aqua::placer {

/**
 * Compute a stable matching.
 *
 * @param proposerPrefs proposerPrefs[p] lists acceptor indices in
 *        p's preference order (most preferred first). Proposers may
 *        rank a subset; unranked acceptors are unacceptable to them.
 * @param acceptorPrefs acceptorPrefs[a] likewise ranks proposers.
 * @param numAcceptors Total acceptor count.
 * @return match[p] = acceptor matched to proposer p, or -1.
 */
std::vector<int>
stableMatch(const std::vector<std::vector<int>> &proposerPrefs,
            const std::vector<std::vector<int>> &acceptorPrefs,
            std::size_t numAcceptors);

/**
 * Verify stability: no proposer/acceptor pair prefers each other to
 * their assigned partners. Exposed for property tests.
 */
bool
isStableMatching(const std::vector<std::vector<int>> &proposerPrefs,
                 const std::vector<std::vector<int>> &acceptorPrefs,
                 const std::vector<int> &match,
                 std::size_t numAcceptors);

} // namespace aqua::placer

#endif // AQUA_PLACER_STABLE_MATCHING_HH
