#include "placer/incremental.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace aqua::placer {

using aqua::sim::panic;

namespace {

/** Sort key keeping the pairs vector canonical across repairs. */
bool
pairingLess(const Pairing &a, const Pairing &b)
{
    if (a.server != b.server)
        return a.server < b.server;
    return a.consumerModel < b.consumerModel;
}

opt::MilpOptions
deterministicMilp(const RepairConfig &cfg)
{
    opt::MilpOptions milp;
    milp.maxNodes = cfg.solveMaxNodes;
    // Effectively unlimited: AquaPlacer would replace 0 with a
    // wall-clock default, and wall-clock cutoffs make time-limited
    // searches replay differently run to run.
    milp.maxSeconds = 1e9;
    return milp;
}

} // anonymous namespace

IncrementalPlacer::IncrementalPlacer(PlacementInput initial,
                                     RepairConfig config)
    : base(std::move(initial)), cfg(config),
      alive(base.models.size(), true),
      serverOf(base.models.size(), -1),
      load(base.numServers, 0),
      cap(base.numServers, base.gpusPerServer),
      numLive(base.models.size())
{
    if (base.numServers == 0 || base.gpusPerServer == 0)
        panic("IncrementalPlacer: empty cluster");
    fullSolve();
}

double
IncrementalPlacer::objective() const
{
    std::vector<std::size_t> liveIndex;
    PlacementInput in = liveInput(&liveIndex);
    if (in.models.empty())
        return 0.0;
    std::vector<int> assign(in.models.size());
    for (std::size_t i = 0; i < liveIndex.size(); ++i)
        assign[i] = serverOf[liveIndex[i]];
    return evaluateObjective(in, assign);
}

std::size_t
IncrementalPlacer::capacity(int server) const
{
    if (server < 0 || static_cast<std::size_t>(server) >= cap.size())
        panic("capacity: bad server %d", server);
    return cap[server];
}

PlacementInput
IncrementalPlacer::liveInput(std::vector<std::size_t> *liveIndex) const
{
    PlacementInput in;
    in.numServers = base.numServers;
    // From-scratch comparisons see the shrunken cluster: the smallest
    // per-server capacity bounds every server in the compact
    // instance. (PlacementInput has one global G; per-server caps
    // only exist incrementally.)
    in.gpusPerServer = *std::min_element(cap.begin(), cap.end());
    in.gpuMemBytes = base.gpuMemBytes;
    if (liveIndex)
        liveIndex->clear();
    for (std::size_t m = 0; m < base.models.size(); ++m) {
        if (!alive[m])
            continue;
        in.models.push_back(base.models[m]);
        if (liveIndex)
            liveIndex->push_back(m);
    }
    return in;
}

void
IncrementalPlacer::rebuildPairs(const std::vector<int> &servers)
{
    for (int s : servers) {
        _pairs.erase(std::remove_if(_pairs.begin(), _pairs.end(),
                                    [s](const Pairing &p) {
                                        return p.server == s;
                                    }),
                     _pairs.end());
        std::vector<Pairing> fresh = matchWithinServer(
            base, serverOf, static_cast<std::size_t>(s));
        _pairs.insert(_pairs.end(), fresh.begin(), fresh.end());
    }
    std::sort(_pairs.begin(), _pairs.end(), pairingLess);
}

double
IncrementalPlacer::objectiveWith(const ModelToPlace &m, int s) const
{
    std::vector<double> mem(base.numServers, 0.0);
    std::vector<double> eq(base.numServers, 0.0);
    for (std::size_t i = 0; i < base.models.size(); ++i) {
        if (!alive[i] || serverOf[i] < 0)
            continue;
        mem[serverOf[i]] +=
            static_cast<double>(base.models[i].memBytes);
        eq[serverOf[i]] += base.models[i].isProducer() ? 1.0 : -1.0;
    }
    mem[s] += static_cast<double>(m.memBytes);
    eq[s] += m.isProducer() ? 1.0 : -1.0;
    double maxMem = mem[0];
    double maxEq = eq[0];
    for (std::size_t i = 1; i < base.numServers; ++i) {
        maxMem = std::max(maxMem, mem[i]);
        maxEq = std::max(maxEq, eq[i]);
    }
    return maxMem + static_cast<double>(base.gpuMemBytes) * maxEq;
}

int
IncrementalPlacer::bestServerFor(const ModelToPlace &m) const
{
    int best = -1;
    double bestObj = 0.0;
    for (std::size_t s = 0; s < base.numServers; ++s) {
        if (load[s] >= cap[s])
            continue;
        double obj = objectiveWith(m, static_cast<int>(s));
        if (best < 0 || obj < bestObj) {
            best = static_cast<int>(s);
            bestObj = obj;
        }
    }
    return best;
}

double
IncrementalPlacer::lowerBound() const
{
    double totalMem = 0.0;
    double totalEq = 0.0;
    for (std::size_t m = 0; m < base.models.size(); ++m) {
        if (!alive[m])
            continue;
        totalMem += static_cast<double>(base.models[m].memBytes);
        totalEq += base.models[m].isProducer() ? 1.0 : -1.0;
    }
    auto servers = static_cast<double>(base.numServers);
    // Both maxima are at least their per-server average; eq_s is
    // integral, so its average rounds up. No assignment — optimal or
    // not — can beat this, which is what makes it a sound quality
    // reference: a greedy placement can be exactly as drifted as the
    // repaired one and would hide the degradation.
    return totalMem / servers +
           static_cast<double>(base.gpuMemBytes) *
               std::ceil(totalEq / servers);
}

bool
IncrementalPlacer::maybeResolve()
{
    ++numRepairs;
    ++repairsSinceSolve;
    if (repairsSinceSolve >= cfg.maxRepairsBeforeSolve) {
        fullSolve();
        return true;
    }
    if (numLive == 0)
        return false;
    double bound = lowerBound();
    double slack = cfg.qualitySlack *
                   (std::abs(bound) +
                    static_cast<double>(base.gpuMemBytes));
    if (objective() > bound + slack) {
        fullSolve();
        return true;
    }
    return false;
}

void
IncrementalPlacer::fullSolve()
{
    std::vector<std::size_t> liveIndex;
    PlacementInput in = liveInput(&liveIndex);
    ++numSolves;
    repairsSinceSolve = 0;
    if (in.models.empty()) {
        _pairs.clear();
        std::fill(load.begin(), load.end(), 0);
        return;
    }
    AquaPlacer solver(deterministicMilp(cfg));
    Placement p = solver.place(in);
    if (!p.valid()) {
        // Live models exceed the shrunken uniform capacity. Keep the
        // incrementally repaired placement — it may still be feasible
        // against the true per-server caps — rather than wiping state.
        return;
    }
    std::fill(load.begin(), load.end(), 0);
    for (std::size_t i = 0; i < liveIndex.size(); ++i) {
        serverOf[liveIndex[i]] = p.server[i];
        ++load[p.server[i]];
    }
    // Pairs come back in compact indices; remap to stable ones.
    _pairs.clear();
    for (const Pairing &pair : p.pairs) {
        Pairing remapped = pair;
        remapped.consumerModel =
            static_cast<int>(liveIndex[pair.consumerModel]);
        remapped.producerModel =
            static_cast<int>(liveIndex[pair.producerModel]);
        _pairs.push_back(remapped);
    }
    std::sort(_pairs.begin(), _pairs.end(), pairingLess);
}

RepairOutcome
IncrementalPlacer::onArrival(const ModelToPlace &model)
{
    RepairOutcome out;
    int s = bestServerFor(model);
    if (s < 0) {
        out.kind = RepairOutcome::Kind::Infeasible;
        out.objective = objective();
        return out;
    }
    base.models.push_back(model);
    alive.push_back(true);
    serverOf.push_back(s);
    ++load[s];
    ++numLive;
    rebuildPairs({s});
    out.kind = maybeResolve() ? RepairOutcome::Kind::FullSolve
                              : RepairOutcome::Kind::Repair;
    out.server = out.kind == RepairOutcome::Kind::Repair ? s : -1;
    out.objective = objective();
    return out;
}

RepairOutcome
IncrementalPlacer::onDeparture(std::size_t model)
{
    RepairOutcome out;
    if (model >= base.models.size() || !alive[model])
        panic("onDeparture: model %zu not live", model);
    int s = serverOf[model];
    alive[model] = false;
    serverOf[model] = -1;
    --load[s];
    --numLive;
    rebuildPairs({s});
    // Departures go through the quality gate too: removing a
    // *consumer* raises the host's eq_s (and removes its negative
    // memBytes), so freeing a slot can degrade the max-objective.
    out.kind = maybeResolve() ? RepairOutcome::Kind::FullSolve
                              : RepairOutcome::Kind::Repair;
    out.server = out.kind == RepairOutcome::Kind::Repair ? s : -1;
    out.objective = objective();
    return out;
}

RepairOutcome
IncrementalPlacer::onGpuFailure(int server)
{
    RepairOutcome out;
    if (server < 0 ||
        static_cast<std::size_t>(server) >= base.numServers)
        panic("onGpuFailure: bad server %d", server);
    auto s = static_cast<std::size_t>(server);
    if (cap[s] == 0) {
        out.kind = RepairOutcome::Kind::Infeasible;
        out.objective = objective();
        return out;
    }
    --cap[s];
    if (load[s] <= cap[s]) {
        // Slack absorbed the failure; nothing moves.
        ++numRepairs;
        ++repairsSinceSolve;
        out.kind = RepairOutcome::Kind::Repair;
        out.server = server;
        out.objective = objective();
        return out;
    }
    // Over-subscribed: displace the cheapest (model, destination)
    // move, ties broken by lowest model then lowest destination.
    int bestModel = -1;
    int bestDst = -1;
    double bestObj = 0.0;
    for (std::size_t m = 0; m < base.models.size(); ++m) {
        if (!alive[m] || serverOf[m] != server)
            continue;
        for (std::size_t d = 0; d < base.numServers; ++d) {
            if (d == s || load[d] >= cap[d])
                continue;
            // Objective with m scanned as if it lived on d instead.
            const ModelToPlace &ghost = base.models[m];
            double obj;
            {
                std::vector<double> mem(base.numServers, 0.0);
                std::vector<double> eq(base.numServers, 0.0);
                for (std::size_t i = 0; i < base.models.size(); ++i) {
                    if (!alive[i] || serverOf[i] < 0 || i == m)
                        continue;
                    mem[serverOf[i]] += static_cast<double>(
                        base.models[i].memBytes);
                    eq[serverOf[i]] +=
                        base.models[i].isProducer() ? 1.0 : -1.0;
                }
                mem[d] += static_cast<double>(ghost.memBytes);
                eq[d] += ghost.isProducer() ? 1.0 : -1.0;
                double maxMem = mem[0];
                double maxEq = eq[0];
                for (std::size_t i = 1; i < base.numServers; ++i) {
                    maxMem = std::max(maxMem, mem[i]);
                    maxEq = std::max(maxEq, eq[i]);
                }
                obj = maxMem +
                      static_cast<double>(base.gpuMemBytes) * maxEq;
            }
            if (bestModel < 0 || obj < bestObj) {
                bestModel = static_cast<int>(m);
                bestDst = static_cast<int>(d);
                bestObj = obj;
            }
        }
    }
    if (bestModel < 0) {
        // Nowhere to displace to: undo the capacity loss is wrong
        // (the GPU is really gone); report infeasible and leave the
        // over-subscription for the caller to resolve (e.g. by
        // departing a model).
        out.kind = RepairOutcome::Kind::Infeasible;
        out.objective = objective();
        return out;
    }
    serverOf[bestModel] = bestDst;
    --load[s];
    ++load[bestDst];
    rebuildPairs({server, bestDst});
    out.kind = maybeResolve() ? RepairOutcome::Kind::FullSolve
                              : RepairOutcome::Kind::Repair;
    out.server = out.kind == RepairOutcome::Kind::Repair ? server : -1;
    out.objective = objective();
    return out;
}

} // namespace aqua::placer
