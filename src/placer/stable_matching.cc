#include "placer/stable_matching.hh"

#include <deque>

namespace aqua::placer {

namespace {

/** rank[a][p] = position of p in a's list, or -1 if unranked. */
std::vector<std::vector<int>>
buildRanks(const std::vector<std::vector<int>> &prefs,
           std::size_t numOthers)
{
    std::vector<std::vector<int>> rank(
        prefs.size(), std::vector<int>(numOthers, -1));
    for (std::size_t i = 0; i < prefs.size(); ++i) {
        for (std::size_t pos = 0; pos < prefs[i].size(); ++pos)
            rank[i][prefs[i][pos]] = static_cast<int>(pos);
    }
    return rank;
}

} // anonymous namespace

std::vector<int>
stableMatch(const std::vector<std::vector<int>> &proposerPrefs,
            const std::vector<std::vector<int>> &acceptorPrefs,
            std::size_t numAcceptors)
{
    std::size_t numProposers = proposerPrefs.size();
    std::vector<std::vector<int>> acceptorRank =
        buildRanks(acceptorPrefs, numProposers);

    std::vector<int> match(numProposers, -1);
    std::vector<int> acceptorMatch(numAcceptors, -1);
    std::vector<std::size_t> nextChoice(numProposers, 0);

    std::deque<int> freeProposers;
    for (std::size_t p = 0; p < numProposers; ++p)
        freeProposers.push_back(static_cast<int>(p));

    while (!freeProposers.empty()) {
        int p = freeProposers.front();
        freeProposers.pop_front();
        bool matched = false;
        while (nextChoice[p] < proposerPrefs[p].size()) {
            int a = proposerPrefs[p][nextChoice[p]++];
            if (acceptorRank[a][p] < 0)
                continue; // a finds p unacceptable
            int current = acceptorMatch[a];
            if (current < 0) {
                acceptorMatch[a] = p;
                match[p] = a;
                matched = true;
                break;
            }
            if (acceptorRank[a][p] < acceptorRank[a][current]) {
                // a trades up; current becomes free again.
                match[current] = -1;
                freeProposers.push_back(current);
                acceptorMatch[a] = p;
                match[p] = a;
                matched = true;
                break;
            }
        }
        (void)matched;
    }
    return match;
}

bool
isStableMatching(const std::vector<std::vector<int>> &proposerPrefs,
                 const std::vector<std::vector<int>> &acceptorPrefs,
                 const std::vector<int> &match,
                 std::size_t numAcceptors)
{
    std::size_t numProposers = proposerPrefs.size();
    std::vector<std::vector<int>> acceptorRank =
        buildRanks(acceptorPrefs, numProposers);
    std::vector<std::vector<int>> proposerRank =
        buildRanks(proposerPrefs, numAcceptors);

    std::vector<int> acceptorMatch(numAcceptors, -1);
    for (std::size_t p = 0; p < numProposers; ++p) {
        if (match[p] >= 0)
            acceptorMatch[match[p]] = static_cast<int>(p);
    }

    for (std::size_t p = 0; p < numProposers; ++p) {
        for (int a : proposerPrefs[p]) {
            if (acceptorRank[a][p] < 0)
                continue;
            bool p_prefers_a =
                match[p] < 0 ||
                proposerRank[p][a] < proposerRank[p][match[p]];
            int current = acceptorMatch[a];
            bool a_prefers_p =
                current < 0 ||
                acceptorRank[a][p] < acceptorRank[a][current];
            if (p_prefers_a && a_prefers_p)
                return false; // blocking pair
        }
    }
    return true;
}

} // namespace aqua::placer
