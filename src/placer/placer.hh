/**
 * @file
 * AQUA-PLACER (§4, Algorithm 1): optimal placement of ML models onto
 * the GPUs of a cluster so memory-bound (consumer) models sit on the
 * same fast inter-GPU network as memory-rich (producer) models.
 *
 * Two steps, as in the paper:
 *  1. assign models to servers by solving Algorithm 1's MILP —
 *     minimize max_s(mem_s) + G_mem * max_s(eq_s) subject to one GPU
 *     per model and at most G models per server — with our own
 *     branch-and-bound solver (the paper used Gurobi);
 *  2. within each server, pair producers with consumers via stable
 *     matching, one producer per consumer by design (sharing a
 *     producer would split its NVLink bandwidth).
 *
 * Identical models are grouped into types before encoding, which
 * collapses the permutation symmetry that would otherwise blow up the
 * search (the paper's clusters sample models with replacement, §6.1).
 * A greedy first-fit placement provides the incumbent bound and a
 * fallback when node limits bite.
 */

#ifndef AQUA_PLACER_PLACER_HH
#define AQUA_PLACER_PLACER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "opt/milp.hh"

namespace aqua::placer {

/** One model instance to place. */
struct ModelToPlace
{
    std::string name;
    /**
     * R_m: experimentally determined memory requirement in bytes —
     * positive for producers (memory to spare), negative for
     * consumers (deficit), as in Algorithm 1.
     */
    std::int64_t memBytes = 0;

    bool isProducer() const { return memBytes > 0; }
    bool isConsumer() const { return memBytes < 0; }
};

/** Placement problem instance. */
struct PlacementInput
{
    std::size_t numServers = 0;
    /** G: GPUs per server. */
    std::size_t gpusPerServer = 0;
    /** G_mem: HBM per GPU, used to weigh the eq_s term. */
    std::uint64_t gpuMemBytes = 0;
    std::vector<ModelToPlace> models;
};

/** A producer-consumer pairing within a server. */
struct Pairing
{
    int consumerModel = -1;
    int producerModel = -1;
    int server = -1;
};

/** Placement solution. */
struct Placement
{
    /** server[m] = server index hosting model m. */
    std::vector<int> server;
    /** Stable producer-consumer pairs per server. */
    std::vector<Pairing> pairs;
    /** Algorithm 1 objective value of this placement. */
    double objective = 0.0;
    /** Whether the MILP proved optimality. */
    bool optimal = false;
    std::uint64_t nodesExplored = 0;
    double solveSeconds = 0.0;

    bool
    valid() const
    {
        return !server.empty();
    }
};

/** Evaluate Algorithm 1's objective for a given assignment. */
double evaluateObjective(const PlacementInput &input,
                         const std::vector<int> &assignment);

/**
 * Greedy first-fit placement: pair the largest-deficit consumer with
 * the largest-surplus producer and co-locate each pair on a server;
 * spill the rest first-fit. Used as the MILP's incumbent seed and as
 * a baseline in the placement-quality ablation.
 */
Placement greedyPlace(const PlacementInput &input);

/**
 * AQUA-PLACER: the Algorithm 1 MILP plus per-server stable matching.
 */
class AquaPlacer
{
  public:
    explicit AquaPlacer(opt::MilpOptions milpOptions = {});

    /** Solve a placement instance. */
    Placement place(const PlacementInput &input) const;

  private:
    opt::MilpOptions milpOpt;
};

/**
 * Pair producers and consumers within each server via stable
 * matching (exposed for reuse and tests).
 */
std::vector<Pairing> matchWithinServers(const PlacementInput &input,
                                        const std::vector<int> &server);

/**
 * Stable matching for one server only — the delta unit the
 * incremental placer re-runs when a repair touches a server.
 * Entries with server[m] != s (including -1 tombstones) are ignored.
 */
std::vector<Pairing> matchWithinServer(const PlacementInput &input,
                                       const std::vector<int> &server,
                                       std::size_t s);

} // namespace aqua::placer

#endif // AQUA_PLACER_PLACER_HH
