#include "placer/placer.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "placer/stable_matching.hh"
#include "sim/logging.hh"

namespace aqua::placer {

using aqua::sim::panic;

double
evaluateObjective(const PlacementInput &input,
                  const std::vector<int> &assignment)
{
    if (assignment.size() != input.models.size())
        panic("evaluateObjective: assignment size mismatch");
    std::vector<double> mem(input.numServers, 0.0);
    std::vector<double> eq(input.numServers, 0.0);
    for (std::size_t m = 0; m < assignment.size(); ++m) {
        int s = assignment[m];
        if (s < 0 || static_cast<std::size_t>(s) >= input.numServers)
            panic("evaluateObjective: model %zu unassigned", m);
        mem[s] += static_cast<double>(input.models[m].memBytes);
        eq[s] += input.models[m].isProducer() ? 1.0 : -1.0;
    }
    double maxMem = mem.empty() ? 0.0 : mem[0];
    double maxEq = eq.empty() ? 0.0 : eq[0];
    for (std::size_t s = 1; s < input.numServers; ++s) {
        maxMem = std::max(maxMem, mem[s]);
        maxEq = std::max(maxEq, eq[s]);
    }
    return maxMem + static_cast<double>(input.gpuMemBytes) * maxEq;
}

std::vector<Pairing>
matchWithinServer(const PlacementInput &input,
                  const std::vector<int> &server, std::size_t s)
{
    std::vector<Pairing> out;
    std::vector<int> consumers;
    std::vector<int> producers;
    for (std::size_t m = 0; m < input.models.size(); ++m) {
        if (server[m] != static_cast<int>(s))
            continue;
        if (input.models[m].isConsumer())
            consumers.push_back(static_cast<int>(m));
        else if (input.models[m].isProducer())
            producers.push_back(static_cast<int>(m));
    }
    if (consumers.empty() || producers.empty())
        return out;

    // Preferences: consumers want the largest surplus; producers
    // want the deepest deficit (the neediest consumer).
    auto surplusDesc = [&](int a, int b) {
        return input.models[a].memBytes > input.models[b].memBytes;
    };
    auto deficitDesc = [&](int a, int b) {
        return input.models[a].memBytes < input.models[b].memBytes;
    };
    std::vector<int> producersRanked = producers;
    std::sort(producersRanked.begin(), producersRanked.end(),
              surplusDesc);
    std::vector<int> consumersRanked = consumers;
    std::sort(consumersRanked.begin(), consumersRanked.end(),
              deficitDesc);

    // Local index spaces for the matcher.
    std::map<int, int> consumerIdx;
    for (std::size_t i = 0; i < consumers.size(); ++i)
        consumerIdx[consumers[i]] = static_cast<int>(i);
    std::map<int, int> producerIdx;
    for (std::size_t i = 0; i < producers.size(); ++i)
        producerIdx[producers[i]] = static_cast<int>(i);

    std::vector<std::vector<int>> consumerPrefs(consumers.size());
    for (std::size_t c = 0; c < consumers.size(); ++c) {
        for (int p : producersRanked)
            consumerPrefs[c].push_back(producerIdx[p]);
    }
    std::vector<std::vector<int>> producerPrefs(producers.size());
    for (std::size_t p = 0; p < producers.size(); ++p) {
        for (int c : consumersRanked)
            producerPrefs[p].push_back(consumerIdx[c]);
    }

    std::vector<int> match =
        stableMatch(consumerPrefs, producerPrefs, producers.size());
    for (std::size_t c = 0; c < consumers.size(); ++c) {
        if (match[c] < 0)
            continue;
        Pairing pairing;
        pairing.consumerModel = consumers[c];
        pairing.producerModel = producers[match[c]];
        pairing.server = static_cast<int>(s);
        out.push_back(pairing);
    }
    return out;
}

std::vector<Pairing>
matchWithinServers(const PlacementInput &input,
                   const std::vector<int> &server)
{
    std::vector<Pairing> out;
    for (std::size_t s = 0; s < input.numServers; ++s) {
        std::vector<Pairing> one = matchWithinServer(input, server, s);
        out.insert(out.end(), one.begin(), one.end());
    }
    return out;
}

Placement
greedyPlace(const PlacementInput &input)
{
    Placement result;
    std::size_t slots = input.numServers * input.gpusPerServer;
    if (input.models.size() > slots)
        return result; // infeasible

    std::vector<int> consumers;
    std::vector<int> producers;
    std::vector<int> neutral;
    for (std::size_t m = 0; m < input.models.size(); ++m) {
        if (input.models[m].isConsumer())
            consumers.push_back(static_cast<int>(m));
        else if (input.models[m].isProducer())
            producers.push_back(static_cast<int>(m));
        else
            neutral.push_back(static_cast<int>(m));
    }
    // Deepest deficits first; largest surpluses first.
    std::sort(consumers.begin(), consumers.end(), [&](int a, int b) {
        return input.models[a].memBytes < input.models[b].memBytes;
    });
    std::sort(producers.begin(), producers.end(), [&](int a, int b) {
        return input.models[a].memBytes > input.models[b].memBytes;
    });

    std::vector<int> assignment(input.models.size(), -1);
    std::vector<std::size_t> load(input.numServers, 0);
    std::size_t nextServer = 0;

    auto placeOn = [&](int m, std::size_t s) {
        assignment[m] = static_cast<int>(s);
        ++load[s];
    };
    auto firstFit = [&](int m) {
        for (std::size_t s = 0; s < input.numServers; ++s) {
            if (load[s] < input.gpusPerServer) {
                placeOn(m, s);
                return;
            }
        }
        panic("greedyPlace: ran out of GPU slots");
    };

    // Pair i-th neediest consumer with i-th richest producer and give
    // each pair its own server while room lasts.
    std::size_t pairs = std::min(consumers.size(), producers.size());
    for (std::size_t i = 0; i < pairs; ++i) {
        // Find a server with two free slots, scanning round-robin.
        std::size_t tries = 0;
        std::size_t s = nextServer;
        bool placed = false;
        while (tries < input.numServers) {
            if (load[s] + 2 <= input.gpusPerServer) {
                placeOn(consumers[i], s);
                placeOn(producers[i], s);
                nextServer = (s + 1) % input.numServers;
                placed = true;
                break;
            }
            s = (s + 1) % input.numServers;
            ++tries;
        }
        if (!placed) {
            firstFit(consumers[i]);
            firstFit(producers[i]);
        }
    }
    for (std::size_t i = pairs; i < consumers.size(); ++i)
        firstFit(consumers[i]);
    for (std::size_t i = pairs; i < producers.size(); ++i)
        firstFit(producers[i]);
    for (int m : neutral)
        firstFit(m);

    result.server = std::move(assignment);
    result.objective = evaluateObjective(input, result.server);
    result.optimal = false;
    result.pairs = matchWithinServers(input, result.server);
    return result;
}

AquaPlacer::AquaPlacer(opt::MilpOptions milpOptions)
    : milpOpt(milpOptions)
{
    // Placement is a pre-launch planning step, but hard instances
    // exist; guard an "unlimited" budget with a sane default so the
    // greedy fallback kicks in rather than hanging the caller. Pass
    // an explicit large maxSeconds for a truly exhaustive search.
    if (milpOpt.maxSeconds == 0.0)
        milpOpt.maxSeconds = 30.0;
}

Placement
AquaPlacer::place(const PlacementInput &input) const
{
    auto t0 = std::chrono::steady_clock::now();
    Placement greedy = greedyPlace(input);
    if (!greedy.valid())
        return greedy; // infeasible instance

    // Group identical models into types: y[t][s] counts instances of
    // type t on server s. This collapses instance-permutation
    // symmetry (clusters sample models with replacement, §6.1).
    std::map<std::int64_t, std::vector<int>> byMem;
    for (std::size_t m = 0; m < input.models.size(); ++m)
        byMem[input.models[m].memBytes].push_back(
            static_cast<int>(m));
    std::vector<std::int64_t> typeMem;
    std::vector<std::vector<int>> typeMembers;
    for (auto &[mem, members] : byMem) {
        typeMem.push_back(mem);
        typeMembers.push_back(members);
    }
    std::size_t T = typeMem.size();
    std::size_t S = input.numServers;

    // Scale bytes to GB so the LP works in O(1)-magnitude numbers.
    const double scale = 1e-9;

    opt::LinearProgram lp;
    // y variables.
    std::vector<std::vector<int>> y(T, std::vector<int>(S));
    std::vector<int> integers;
    for (std::size_t t = 0; t < T; ++t) {
        for (std::size_t s = 0; s < S; ++s) {
            double hi = std::min<double>(
                static_cast<double>(typeMembers[t].size()),
                static_cast<double>(input.gpusPerServer));
            y[t][s] = lp.addVar(0.0, hi, 0.0);
            integers.push_back(y[t][s]);
        }
    }
    // Min-max linearization variables (Eq. 5).
    double memMagnitude = 0.0;
    for (std::int64_t mem : typeMem)
        memMagnitude += std::abs(static_cast<double>(mem)) * scale *
                        static_cast<double>(input.models.size());
    double countMagnitude =
        static_cast<double>(input.models.size()) + 1.0;
    int zMem = lp.addVar(-memMagnitude, opt::inf, 1.0);
    int zEq = lp.addVar(-countMagnitude, opt::inf,
                        static_cast<double>(input.gpuMemBytes) * scale);

    // Eq. 1: every instance of a type lands somewhere.
    for (std::size_t t = 0; t < T; ++t) {
        std::vector<std::pair<int, double>> row;
        for (std::size_t s = 0; s < S; ++s)
            row.emplace_back(y[t][s], 1.0);
        lp.addRow(std::move(row), opt::Relation::Equal,
                  static_cast<double>(typeMembers[t].size()));
    }
    // Eq. 2: at most G models per server.
    for (std::size_t s = 0; s < S; ++s) {
        std::vector<std::pair<int, double>> row;
        for (std::size_t t = 0; t < T; ++t)
            row.emplace_back(y[t][s], 1.0);
        lp.addRow(std::move(row), opt::Relation::LessEq,
                  static_cast<double>(input.gpusPerServer));
    }
    // Eq. 3 + minimax: mem_s <= zMem.
    for (std::size_t s = 0; s < S; ++s) {
        std::vector<std::pair<int, double>> row;
        for (std::size_t t = 0; t < T; ++t) {
            row.emplace_back(
                y[t][s], static_cast<double>(typeMem[t]) * scale);
        }
        row.emplace_back(zMem, -1.0);
        lp.addRow(std::move(row), opt::Relation::LessEq, 0.0);
    }
    // Eq. 4 + minimax: eq_s <= zEq.
    for (std::size_t s = 0; s < S; ++s) {
        std::vector<std::pair<int, double>> row;
        for (std::size_t t = 0; t < T; ++t) {
            double tm = typeMem[t] > 0 ? 1.0
                      : typeMem[t] < 0 ? -1.0 : 0.0;
            if (tm != 0.0)
                row.emplace_back(y[t][s], tm);
        }
        row.emplace_back(zEq, -1.0);
        lp.addRow(std::move(row), opt::Relation::LessEq, 0.0);
    }

    opt::MilpSolver solver(std::move(lp), std::move(integers),
                           milpOpt);
    solver.setIncumbentBound(greedy.objective * scale);
    opt::MilpResult milp = solver.solve();

    Placement result;
    if (!milp.hasSolution()) {
        // The greedy seed was already (near-)optimal or limits bit;
        // fall back to it.
        result = greedy;
        // An exhausted search with only the seed bound proves the
        // greedy placement optimal.
        result.optimal = !milp.limitHit &&
                         milp.status != opt::MilpStatus::Infeasible;
    } else {
        // Decode y counts back into per-instance assignments.
        result.server.assign(input.models.size(), -1);
        for (std::size_t t = 0; t < T; ++t) {
            std::size_t member = 0;
            for (std::size_t s = 0; s < S; ++s) {
                auto count = static_cast<std::size_t>(
                    std::llround(milp.x[y[t][s]]));
                for (std::size_t k = 0; k < count; ++k) {
                    if (member >= typeMembers[t].size())
                        panic("AquaPlacer: MILP decoded more "
                              "instances than exist");
                    result.server[typeMembers[t][member++]] =
                        static_cast<int>(s);
                }
            }
            if (member != typeMembers[t].size())
                panic("AquaPlacer: MILP lost model instances");
        }
        result.objective = evaluateObjective(input, result.server);
        result.optimal = milp.status == opt::MilpStatus::Optimal;
        result.pairs = matchWithinServers(input, result.server);
    }
    result.nodesExplored = milp.nodesExplored;
    auto t1 = std::chrono::steady_clock::now();
    result.solveSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return result;
}

} // namespace aqua::placer
