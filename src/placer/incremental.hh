/**
 * @file
 * Incremental placement repair.
 *
 * AQUA-PLACER's MILP is a pre-launch planning step; re-running it on
 * every model arrival, departure or GPU failure is what kept the
 * cluster simulation from scaling. IncrementalPlacer keeps a live
 * placement and applies *stable-matching deltas* instead: a mutation
 * moves at most one model, and only the touched servers re-run their
 * producer/consumer matching (matchWithinServer). An analytic lower
 * bound on the optimal objective (per-server averages of the mem and
 * eq terms; never above what any solver could reach) is recomputed
 * after every repair; when the repaired objective degrades past a
 * configurable slack of that bound — or after a budgeted number of
 * repairs — the placer falls back to one full (deterministically
 * budgeted) MILP solve and re-bases.
 *
 * Determinism: repairs are pure functions of the placement state
 * with index-order tie-breaks, and the fallback MILP runs under a
 * node limit with an effectively-infinite wall budget, so a given
 * mutation sequence always replays to the identical placement. That
 * is what lets the cluster simulation run placement events inside
 * the differential equivalence harness (see docs/simulation.md).
 */

#ifndef AQUA_PLACER_INCREMENTAL_HH
#define AQUA_PLACER_INCREMENTAL_HH

#include <cstdint>
#include <vector>

#include "placer/placer.hh"

namespace aqua::placer {

/** Tunables for the repair/re-solve tradeoff. */
struct RepairConfig
{
    /**
     * Allowed degradation before a full re-solve, as a fraction of
     * (|lower bound| + one GPU's HBM). The additive HBM term keeps
     * the test meaningful when objectives sit near (or below) zero.
     */
    double qualitySlack = 0.10;
    /** Full re-solve at the latest after this many repairs. */
    std::size_t maxRepairsBeforeSolve = 128;
    /**
     * Node budget of the fallback MILP. The wall-clock budget is set
     * effectively unlimited so only this (deterministic) limit can
     * cut the search short.
     */
    std::uint64_t solveMaxNodes = 20000;
};

/** What one mutation did to the placement. */
struct RepairOutcome
{
    enum class Kind
    {
        /** Handled by a local delta. */
        Repair,
        /** Delta degraded quality past the slack: full MILP re-base. */
        FullSolve,
        /** No capacity left for the mutation; placement unchanged. */
        Infeasible,
    };

    Kind kind = Kind::Repair;
    /** Objective over live models after the mutation. */
    double objective = 0.0;
    /** Server the delta touched (destination for arrivals, host for
     *  departures/failures), -1 for full solves and infeasibles. */
    int server = -1;
};

/**
 * A placement kept consistent under arrivals, departures and GPU
 * failures. Model indices are stable for the placer's lifetime;
 * departed models keep their index with assignment() == -1.
 */
class IncrementalPlacer
{
  public:
    /**
     * @param initial Instance to place from scratch (one full solve).
     * @param config Repair tunables.
     */
    explicit IncrementalPlacer(PlacementInput initial,
                               RepairConfig config = {});

    /** A new model joins; placed on the cheapest feasible server. */
    RepairOutcome onArrival(const ModelToPlace &model);

    /** Model @p model leaves; its slot frees up. */
    RepairOutcome onDeparture(std::size_t model);

    /**
     * A GPU on @p server dies: capacity shrinks by one slot; if the
     * server is now over-subscribed the cheapest-to-move model is
     * displaced to another server.
     */
    RepairOutcome onGpuFailure(int server);

    /** server[m], or -1 when model m has departed. */
    const std::vector<int> &assignment() const { return serverOf; }

    /** Producer/consumer pairs, sorted by (server, consumer). */
    const std::vector<Pairing> &pairs() const { return _pairs; }

    /** Algorithm 1 objective over the live models. */
    double objective() const;

    /** All models ever seen (arrivals append; departures tombstone). */
    const std::vector<ModelToPlace> &models() const
    {
        return base.models;
    }

    /** Whether model m is live. */
    bool live(std::size_t m) const { return alive[m]; }

    /** Live model count. */
    std::size_t liveModels() const { return numLive; }

    /** Remaining GPU slots on a server (after failures). */
    std::size_t capacity(int server) const;

    /** Live instance compacted for from-scratch comparisons.
     *  @param liveIndex Optional out: compact index -> model index. */
    PlacementInput
    liveInput(std::vector<std::size_t> *liveIndex = nullptr) const;

    /** Local deltas applied since construction. */
    std::uint64_t repairs() const { return numRepairs; }

    /** Full MILP solves, including the initial one. */
    std::uint64_t fullSolves() const { return numSolves; }

  private:
    /** Re-run stable matching for the touched servers only. */
    void rebuildPairs(const std::vector<int> &servers);

    /** Cheapest feasible server for @p m, or -1. Index-order ties. */
    int bestServerFor(const ModelToPlace &m) const;

    /** Objective if model @p m (live or hypothetical) sat on @p s. */
    double objectiveWith(const ModelToPlace &m, int s) const;

    /**
     * Analytic lower bound on the optimal objective of the live
     * instance: max_s(mem_s) >= totalMem/S and
     * max_s(eq_s) >= ceil(totalEq/S) for any assignment.
     */
    double lowerBound() const;

    /** Degradation check; re-bases through a full solve if needed.
     *  @return true when a full solve replaced the placement. */
    bool maybeResolve();

    /** Full MILP solve over the live instance; re-bases state. */
    void fullSolve();

    PlacementInput base;
    RepairConfig cfg;
    std::vector<bool> alive;
    std::vector<int> serverOf;
    std::vector<std::size_t> load;
    std::vector<std::size_t> cap;
    std::vector<Pairing> _pairs;
    std::size_t numLive = 0;
    std::uint64_t numRepairs = 0;
    std::uint64_t numSolves = 0;
    std::size_t repairsSinceSolve = 0;
};

} // namespace aqua::placer

#endif // AQUA_PLACER_INCREMENTAL_HH
