/**
 * @file
 * Dense linear-programming solver (two-phase primal simplex).
 *
 * The substrate beneath AQUA-PLACER: the paper encodes Algorithm 1 in
 * Gurobi; we solve the same MILP with our own simplex + branch and
 * bound (opt/milp.hh). Problems are small (placement LPs have a few
 * hundred variables), so a dense tableau with Bland's anti-cycling
 * rule is simple, exact enough, and fast.
 */

#ifndef AQUA_OPT_LP_HH
#define AQUA_OPT_LP_HH

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace aqua::opt {

/** Positive infinity for bounds. */
constexpr double inf = std::numeric_limits<double>::infinity();

/** Constraint relation. */
enum class Relation { LessEq, Equal, GreaterEq };

/**
 * A linear program in minimization form:
 *   minimize c^T x  subject to  rows,  lower <= x <= upper.
 *
 * Lower bounds must be finite (they are shifted out before solving);
 * upper bounds may be +inf.
 */
class LinearProgram
{
  public:
    /** One constraint row: sparse coefficients, relation, rhs. */
    struct Row
    {
        std::vector<std::pair<int, double>> coeffs;
        Relation rel = Relation::LessEq;
        double rhs = 0.0;
    };

    /**
     * Add a variable.
     *
     * @param lo Finite lower bound.
     * @param hi Upper bound (may be opt::inf).
     * @param cost Objective coefficient.
     * @return Variable index.
     */
    int addVar(double lo = 0.0, double hi = inf, double cost = 0.0);

    /** Add a constraint. */
    void addRow(std::vector<std::pair<int, double>> coeffs,
                Relation rel, double rhs);

    /** Overwrite a variable's objective coefficient. */
    void setCost(int var, double cost);

    /** Tighten a variable's bounds (used by branch and bound). */
    void setBounds(int var, double lo, double hi);

    int numVars() const { return static_cast<int>(lower.size()); }
    int numRows() const { return static_cast<int>(rows.size()); }

    const std::vector<Row> &constraints() const { return rows; }
    double lowerBound(int var) const { return lower.at(var); }
    double upperBound(int var) const { return upper.at(var); }
    double cost(int var) const { return costs.at(var); }

  private:
    std::vector<Row> rows;
    std::vector<double> lower;
    std::vector<double> upper;
    std::vector<double> costs;
};

/** LP solve outcome. */
enum class LpStatus { Optimal, Infeasible, Unbounded, IterLimit };

/** LP solution. */
struct LpResult
{
    LpStatus status = LpStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> x;
    std::uint64_t iterations = 0;

    bool optimal() const { return status == LpStatus::Optimal; }
};

/** Solver tunables. */
struct SimplexOptions
{
    std::uint64_t maxIterations = 200000;
    double eps = 1e-9;
};

/** Solve with two-phase primal simplex. */
LpResult solveLp(const LinearProgram &lp, SimplexOptions options = {});

} // namespace aqua::opt

#endif // AQUA_OPT_LP_HH
