#include "opt/milp.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <tuple>

#include "sim/logging.hh"

namespace aqua::opt {

MilpSolver::MilpSolver(LinearProgram lp, std::vector<int> integers,
                       MilpOptions options)
    : base(std::move(lp)), integerVars(std::move(integers)),
      opt(options)
{
}

void
MilpSolver::setIncumbentBound(double objective)
{
    // Nudge the bound up a hair so an equal-quality integer solution
    // is still discovered (we want the solution, not just its value).
    incumbentObjective = objective + 1e-7;
    haveSeedBound = true;
}

MilpResult
MilpSolver::solve()
{
    MilpResult result;
    std::vector<double> incumbent;
    double incObj = incumbentObjective;
    bool haveIncumbent = false;

    // Best-bound search: nodes ordered by their parent's LP bound.
    auto cmp = [](const Node &a, const Node &b) {
        return a.bound > b.bound;
    };
    std::priority_queue<Node, std::vector<Node>, decltype(cmp)> open(
        cmp);
    open.push(Node{});

    bool hitLimit = false;
    auto deadline = std::chrono::steady_clock::now();
    if (opt.maxSeconds > 0.0) {
        deadline += std::chrono::microseconds(
            static_cast<std::int64_t>(opt.maxSeconds * 1e6));
    }
    while (!open.empty()) {
        if (result.nodesExplored >= opt.maxNodes) {
            hitLimit = true;
            break;
        }
        if (opt.maxSeconds > 0.0 &&
            std::chrono::steady_clock::now() >= deadline) {
            hitLimit = true;
            break;
        }
        Node node = open.top();
        open.pop();
        if (node.bound >= incObj - opt.objectiveGap)
            continue; // pruned by a newer incumbent / seed bound
        ++result.nodesExplored;

        // Apply this node's branch bounds on a copy of the base LP.
        LinearProgram lp = base;
        bool consistent = true;
        for (const auto &[var, lo, hi] : node.bounds) {
            double newLo = std::max(lo, lp.lowerBound(var));
            double newHi = std::min(hi, lp.upperBound(var));
            if (newLo > newHi) {
                consistent = false;
                break;
            }
            lp.setBounds(var, newLo, newHi);
        }
        if (!consistent)
            continue;

        LpResult relaxed = solveLp(lp, opt.lp);
        result.lpIterations += relaxed.iterations;
        if (relaxed.status == LpStatus::Infeasible)
            continue;
        if (relaxed.status == LpStatus::Unbounded) {
            // Integer restrictions cannot save an unbounded
            // relaxation in our (bounded-variable) encodings.
            aqua::sim::panic("MilpSolver: unbounded relaxation");
        }
        if (relaxed.status == LpStatus::IterLimit) {
            hitLimit = true;
            continue;
        }
        if (relaxed.objective >= incObj - opt.objectiveGap)
            continue;

        // Find the most fractional integer variable.
        int branchVar = -1;
        double worstFrac = opt.integerTolerance;
        for (int var : integerVars) {
            double v = relaxed.x[var];
            double frac = std::abs(v - std::round(v));
            if (frac > worstFrac) {
                worstFrac = frac;
                branchVar = var;
            }
        }
        if (branchVar < 0) {
            // Integral: new incumbent.
            if (!haveIncumbent || relaxed.objective < incObj) {
                incObj = relaxed.objective;
                incumbent = relaxed.x;
                haveIncumbent = true;
            }
            continue;
        }

        double v = relaxed.x[branchVar];
        Node down = node;
        down.bound = relaxed.objective;
        down.bounds.emplace_back(branchVar, -0.0, std::floor(v));
        // Preserve the variable's own lower bound via the max() above;
        // use a very low explicit lo so only the hi tightens.
        std::get<1>(down.bounds.back()) = base.lowerBound(branchVar);
        open.push(down);

        Node up = node;
        up.bound = relaxed.objective;
        up.bounds.emplace_back(branchVar, std::ceil(v),
                               base.upperBound(branchVar));
        open.push(up);
    }

    result.limitHit = hitLimit;
    if (haveIncumbent) {
        result.status = hitLimit ? MilpStatus::Feasible
                                 : MilpStatus::Optimal;
        result.objective = incObj;
        result.x = std::move(incumbent);
    } else if (hitLimit || haveSeedBound) {
        // With a seed bound and no incumbent of our own, the seed
        // solution is (within tolerance) optimal but lives with the
        // caller; report Unknown so the caller keeps its own.
        result.status = MilpStatus::Unknown;
    } else {
        result.status = MilpStatus::Infeasible;
    }
    return result;
}

} // namespace aqua::opt
