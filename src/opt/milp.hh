/**
 * @file
 * Mixed-integer linear programming via LP-based branch and bound —
 * the solver behind AQUA-PLACER (the paper used Gurobi, §4).
 *
 * Best-bound search on the simplex relaxation, branching on the most
 * fractional integer variable. Node and time limits make it usable
 * inside the Fig. 14 convergence-time benchmark.
 */

#ifndef AQUA_OPT_MILP_HH
#define AQUA_OPT_MILP_HH

#include <cstdint>
#include <vector>

#include "opt/lp.hh"

namespace aqua::opt {

/** MILP solve outcome. */
enum class MilpStatus
{
    /** Proven optimal integer solution. */
    Optimal,
    /** A feasible incumbent exists but limits cut the proof short. */
    Feasible,
    Infeasible,
    /** Limits hit with no incumbent found. */
    Unknown,
};

/** MILP solution and search statistics. */
struct MilpResult
{
    MilpStatus status = MilpStatus::Unknown;
    double objective = 0.0;
    std::vector<double> x;
    std::uint64_t nodesExplored = 0;
    std::uint64_t lpIterations = 0;
    /** Whether node/iteration limits cut the search short. */
    bool limitHit = false;

    bool hasSolution() const
    {
        return status == MilpStatus::Optimal ||
               status == MilpStatus::Feasible;
    }
};

/** Solver tunables. */
struct MilpOptions
{
    std::uint64_t maxNodes = 200000;
    /** Wall-clock budget in seconds; 0 = unlimited. */
    double maxSeconds = 0.0;
    double integerTolerance = 1e-6;
    /** Prune children whose bound is within this of the incumbent. */
    double objectiveGap = 1e-9;
    SimplexOptions lp;
};

/**
 * Branch-and-bound MILP solver.
 */
class MilpSolver
{
  public:
    /**
     * @param lp The problem (minimization).
     * @param integers Indices of variables that must be integral.
     */
    MilpSolver(LinearProgram lp, std::vector<int> integers,
               MilpOptions options = {});

    /**
     * Seed the search with a known feasible objective (e.g. from a
     * greedy heuristic) so pruning bites immediately.
     */
    void setIncumbentBound(double objective);

    /** Run the search. */
    MilpResult solve();

  private:
    struct Node
    {
        /** (var, lo, hi) bound overrides along this branch. */
        std::vector<std::tuple<int, double, double>> bounds;
        double bound = -inf;
    };

    LinearProgram base;
    std::vector<int> integerVars;
    MilpOptions opt;
    double incumbentObjective = inf;
    bool haveSeedBound = false;
};

} // namespace aqua::opt

#endif // AQUA_OPT_MILP_HH
