#include "opt/lp.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace aqua::opt {

using aqua::sim::panic;

int
LinearProgram::addVar(double lo, double hi, double cost)
{
    if (!std::isfinite(lo))
        panic("LinearProgram: lower bounds must be finite");
    if (hi < lo)
        panic("LinearProgram: upper bound below lower bound");
    lower.push_back(lo);
    upper.push_back(hi);
    costs.push_back(cost);
    return static_cast<int>(lower.size()) - 1;
}

void
LinearProgram::addRow(std::vector<std::pair<int, double>> coeffs,
                      Relation rel, double rhs)
{
    for (const auto &[var, coeff] : coeffs) {
        if (var < 0 || var >= numVars())
            panic("LinearProgram::addRow: bad variable index %d", var);
        (void)coeff;
    }
    rows.push_back(Row{std::move(coeffs), rel, rhs});
}

void
LinearProgram::setCost(int var, double cost)
{
    costs.at(var) = cost;
}

void
LinearProgram::setBounds(int var, double lo, double hi)
{
    if (!std::isfinite(lo) || hi < lo)
        panic("LinearProgram::setBounds: bad bounds");
    lower.at(var) = lo;
    upper.at(var) = hi;
}

namespace {

/**
 * Dense two-phase simplex working on the standard-form expansion of
 * the LP: variables shifted to x' = x - lo >= 0, finite upper bounds
 * materialized as extra <= rows, slack/surplus columns for
 * inequalities and artificial columns for the phase-1 basis.
 */
class Simplex
{
  public:
    Simplex(const LinearProgram &lp, const SimplexOptions &opt)
        : lp(lp), opt(opt)
    {}

    LpResult
    run()
    {
        build();
        LpResult result;
        // Phase 1: drive artificials to zero.
        if (numArtificial > 0) {
            setPhase1Costs();
            LpStatus s = iterate(result.iterations);
            if (s == LpStatus::IterLimit) {
                result.status = s;
                return result;
            }
            if (objectiveValue() > 1e-6) {
                result.status = LpStatus::Infeasible;
                return result;
            }
            pivotOutArtificials();
        }
        // Phase 2: the real objective.
        setPhase2Costs();
        LpStatus s = iterate(result.iterations);
        result.status = s;
        if (s != LpStatus::Optimal)
            return result;
        extract(result);
        return result;
    }

  private:
    void
    build()
    {
        n = lp.numVars();
        // Count columns: structural + slack/surplus per inequality +
        // one slack per finite-ub row + artificials for >=/= rows.
        std::vector<LinearProgram::Row> allRows = lp.constraints();
        for (int j = 0; j < n; ++j) {
            double ub = lp.upperBound(j) - lp.lowerBound(j);
            if (std::isfinite(ub)) {
                LinearProgram::Row row;
                row.coeffs = {{j, 1.0}};
                row.rel = Relation::LessEq;
                // rhs is already expressed in shifted (x - lo)
                // coordinates; the pass below must not shift again.
                row.rhs = ub;
                allRows.push_back(std::move(row));
            }
        }

        m = static_cast<int>(allRows.size());
        // First pass: shift lower bounds into rhs; normalize rhs >= 0.
        std::vector<double> rhs(m);
        std::vector<Relation> rel(m);
        std::vector<std::vector<double>> dense(
            m, std::vector<double>(n, 0.0));
        for (int i = 0; i < m; ++i) {
            const LinearProgram::Row &row = allRows[i];
            double b = row.rhs;
            bool isUbRow =
                i >= static_cast<int>(lp.constraints().size());
            for (const auto &[var, coeff] : row.coeffs) {
                dense[i][var] += coeff;
                if (!isUbRow)
                    b -= coeff * lp.lowerBound(var);
            }
            rel[i] = row.rel;
            rhs[i] = b;
            if (rhs[i] < 0) {
                for (int j = 0; j < n; ++j)
                    dense[i][j] = -dense[i][j];
                rhs[i] = -rhs[i];
                if (rel[i] == Relation::LessEq)
                    rel[i] = Relation::GreaterEq;
                else if (rel[i] == Relation::GreaterEq)
                    rel[i] = Relation::LessEq;
            }
        }

        // Second pass: count extra columns.
        int slackCount = 0;
        numArtificial = 0;
        for (int i = 0; i < m; ++i) {
            if (rel[i] != Relation::Equal)
                ++slackCount;
            if (rel[i] != Relation::LessEq)
                ++numArtificial;
        }
        cols = n + slackCount + numArtificial;

        tab.assign(m, std::vector<double>(cols + 1, 0.0));
        basis.assign(m, -1);
        artificialStart = n + slackCount;

        int slack = n;
        int art = artificialStart;
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j)
                tab[i][j] = dense[i][j];
            tab[i][cols] = rhs[i];
            switch (rel[i]) {
              case Relation::LessEq:
                tab[i][slack] = 1.0;
                basis[i] = slack;
                ++slack;
                break;
              case Relation::GreaterEq:
                tab[i][slack] = -1.0;
                ++slack;
                tab[i][art] = 1.0;
                basis[i] = art;
                ++art;
                break;
              case Relation::Equal:
                tab[i][art] = 1.0;
                basis[i] = art;
                ++art;
                break;
            }
        }
        costRow.assign(cols + 1, 0.0);
    }

    void
    setPhase1Costs()
    {
        std::fill(costRow.begin(), costRow.end(), 0.0);
        for (int j = artificialStart; j < cols; ++j)
            costRow[j] = 1.0;
        priceOutBasis();
        phase1 = true;
    }

    void
    setPhase2Costs()
    {
        std::fill(costRow.begin(), costRow.end(), 0.0);
        for (int j = 0; j < n; ++j)
            costRow[j] = lp.cost(j);
        // Artificials must never re-enter: give them a blocked flag.
        priceOutBasis();
        phase1 = false;
    }

    /** Make the reduced costs of basic columns zero. */
    void
    priceOutBasis()
    {
        for (int i = 0; i < m; ++i) {
            double c = costRow[basis[i]];
            if (std::abs(c) < opt.eps)
                continue;
            for (int j = 0; j <= cols; ++j)
                costRow[j] -= c * tab[i][j];
        }
    }

    double
    objectiveValue() const
    {
        // costRow[cols] accumulates -(objective) during pivoting.
        return -costRow[cols];
    }

    /** One simplex phase; Bland's rule for anti-cycling. */
    LpStatus
    iterate(std::uint64_t &iterations)
    {
        for (;;) {
            if (iterations >= opt.maxIterations)
                return LpStatus::IterLimit;
            // Entering column: smallest index with negative reduced
            // cost (Bland). Phase 2 never re-admits artificials.
            int enter = -1;
            int limit = phase1 ? cols : artificialStart;
            for (int j = 0; j < limit; ++j) {
                if (costRow[j] < -opt.eps) {
                    enter = j;
                    break;
                }
            }
            if (enter < 0)
                return LpStatus::Optimal;

            // Leaving row: min ratio, ties by smallest basis index.
            int leave = -1;
            double bestRatio = 0.0;
            for (int i = 0; i < m; ++i) {
                if (tab[i][enter] <= opt.eps)
                    continue;
                double ratio = tab[i][cols] / tab[i][enter];
                if (leave < 0 || ratio < bestRatio - opt.eps ||
                    (ratio < bestRatio + opt.eps &&
                     basis[i] < basis[leave])) {
                    leave = i;
                    bestRatio = ratio;
                }
            }
            if (leave < 0)
                return LpStatus::Unbounded;

            pivot(leave, enter);
            ++iterations;
        }
    }

    void
    pivot(int row, int col)
    {
        double p = tab[row][col];
        for (int j = 0; j <= cols; ++j)
            tab[row][j] /= p;
        for (int i = 0; i < m; ++i) {
            if (i == row)
                continue;
            double f = tab[i][col];
            if (std::abs(f) < opt.eps)
                continue;
            for (int j = 0; j <= cols; ++j)
                tab[i][j] -= f * tab[row][j];
        }
        double f = costRow[col];
        if (std::abs(f) > 0.0) {
            for (int j = 0; j <= cols; ++j)
                costRow[j] -= f * tab[row][j];
        }
        basis[row] = col;
    }

    /** After phase 1, remove artificials still (degenerately) basic. */
    void
    pivotOutArtificials()
    {
        for (int i = 0; i < m; ++i) {
            if (basis[i] < artificialStart)
                continue;
            // Find any non-artificial column to pivot in.
            int col = -1;
            for (int j = 0; j < artificialStart; ++j) {
                if (std::abs(tab[i][j]) > 1e-7) {
                    col = j;
                    break;
                }
            }
            if (col >= 0)
                pivot(i, col);
            // Otherwise the row is redundant (all-zero); harmless.
        }
    }

    void
    extract(LpResult &result) const
    {
        result.x.assign(n, 0.0);
        for (int i = 0; i < m; ++i) {
            if (basis[i] < n)
                result.x[basis[i]] = tab[i][cols];
        }
        double obj = 0.0;
        for (int j = 0; j < n; ++j) {
            result.x[j] += lp.lowerBound(j);
            obj += lp.cost(j) * result.x[j];
        }
        result.objective = obj;
    }

    const LinearProgram &lp;
    const SimplexOptions &opt;
    int n = 0;
    int m = 0;
    int cols = 0;
    int artificialStart = 0;
    int numArtificial = 0;
    bool phase1 = false;
    std::vector<std::vector<double>> tab;
    std::vector<double> costRow;
    std::vector<int> basis;
};

} // anonymous namespace

LpResult
solveLp(const LinearProgram &lp, SimplexOptions options)
{
    Simplex solver(lp, options);
    return solver.run();
}

} // namespace aqua::opt
