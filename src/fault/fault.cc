#include "fault/fault.hh"

#include <algorithm>
#include <utility>

#include "aqua/aqua_lib.hh"
#include "hw/fabric.hh"
#include "sim/logging.hh"

namespace aqua::fault {

using namespace aqua::sim;
using json::Value;

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::GpuFail:
        return "gpu_fail";
      case FaultKind::LinkDegrade:
        return "link_degrade";
      case FaultKind::CoordinatorOutage:
        return "coordinator_outage";
      case FaultKind::MessageDrop:
        return "message_drop";
      case FaultKind::MessageDelay:
        return "message_delay";
      case FaultKind::SsdDegrade:
        return "ssd_degrade";
      case FaultKind::SsdFail:
        return "ssd_fail";
      case FaultKind::CoordinatorCrash:
        return "coordinator_crash";
      case FaultKind::PayloadCorrupt:
        return "payload_corrupt";
      case FaultKind::SsdBitrot:
        return "ssd_bitrot";
    }
    return "unknown";
}

std::optional<FaultKind>
faultKindFromName(const std::string &name)
{
    for (FaultKind kind :
         {FaultKind::GpuFail, FaultKind::LinkDegrade,
          FaultKind::CoordinatorOutage, FaultKind::MessageDrop,
          FaultKind::MessageDelay, FaultKind::SsdDegrade,
          FaultKind::SsdFail, FaultKind::CoordinatorCrash,
          FaultKind::PayloadCorrupt, FaultKind::SsdBitrot}) {
        if (name == faultKindName(kind))
            return kind;
    }
    return std::nullopt;
}

Value
FaultSpec::toJson() const
{
    Value v;
    v["kind"] = faultKindName(kind);
    v["at_ns"] = static_cast<std::int64_t>(at);
    v["duration_ns"] = static_cast<std::int64_t>(duration);
    switch (kind) {
      case FaultKind::GpuFail:
        v["gpu"] = gpu;
        v["grace_ns"] = static_cast<std::int64_t>(grace);
        break;
      case FaultKind::LinkDegrade:
        v["link"] = link == FaultLink::Nvlink   ? "nvlink"
                    : link == FaultLink::Pcie   ? "pcie"
                                                : "fabric";
        v["factor"] = factor;
        v["flaps"] = static_cast<std::int64_t>(flaps);
        break;
      case FaultKind::CoordinatorOutage:
        break;
      case FaultKind::MessageDrop:
        v["probability"] = probability;
        break;
      case FaultKind::MessageDelay:
        v["delay_ns"] = static_cast<std::int64_t>(delay);
        break;
      case FaultKind::SsdDegrade:
        v["factor"] = factor;
        break;
      case FaultKind::SsdFail:
        break;
      case FaultKind::CoordinatorCrash:
        v["lose_tail"] = static_cast<std::int64_t>(loseTail);
        break;
      case FaultKind::PayloadCorrupt:
      case FaultKind::SsdBitrot:
        v["probability"] = probability;
        break;
    }
    return v;
}

void
FaultPlan::add(FaultSpec spec)
{
    auto pos = std::upper_bound(
        list.begin(), list.end(), spec,
        [](const FaultSpec &a, const FaultSpec &b) {
            return a.at < b.at;
        });
    list.insert(pos, spec);
}

Value
FaultPlan::toJson() const
{
    Value v;
    v["seed"] = static_cast<std::int64_t>(rngSeed);
    json::Array faults;
    for (const FaultSpec &f : list)
        faults.push_back(f.toJson());
    v["faults"] = Value(std::move(faults));
    return v;
}

namespace {

FaultPlanParse
parseError(std::string why)
{
    FaultPlanParse out;
    out.ok = false;
    out.error = std::move(why);
    return out;
}

} // anonymous namespace

FaultPlanParse
FaultPlan::fromJson(const Value &v)
{
    if (!v.isObject())
        return parseError("plan must be a JSON object");
    FaultPlanParse out;
    out.seed = static_cast<std::uint64_t>(v.getInt("seed", 1));
    const Value *faults = v.find("faults");
    if (!faults || !faults->isArray())
        return parseError("plan needs a \"faults\" array");
    std::size_t idx = 0;
    for (const Value &entry : faults->asArray()) {
        std::string at = "faults[" + std::to_string(idx++) + "]";
        if (!entry.isObject())
            return parseError(at + ": fault must be an object");
        std::string kindName = entry.getString("kind", "");
        auto kind = faultKindFromName(kindName);
        if (!kind)
            return parseError(at + ": unknown kind \"" + kindName +
                              "\"");
        FaultSpec f;
        f.kind = *kind;
        f.at = static_cast<Tick>(entry.getInt("at_ns", -1));
        if (entry.getInt("at_ns", -1) < 0)
            return parseError(at + ": needs at_ns >= 0");
        f.duration =
            static_cast<Tick>(entry.getInt("duration_ns", 0));
        switch (*kind) {
          case FaultKind::GpuFail: {
            std::int64_t gpu = entry.getInt("gpu", -1);
            if (gpu < 0)
                return parseError(at + ": gpu_fail needs gpu");
            f.gpu = static_cast<hw::GpuId>(gpu);
            f.grace = static_cast<Tick>(entry.getInt("grace_ns", 0));
            break;
          }
          case FaultKind::LinkDegrade: {
            std::string link = entry.getString("link", "nvlink");
            if (link == "nvlink") {
                f.link = FaultLink::Nvlink;
            } else if (link == "pcie") {
                f.link = FaultLink::Pcie;
            } else if (link == "fabric") {
                f.link = FaultLink::Fabric;
            } else {
                return parseError(
                    at + ": link must be nvlink|pcie|fabric");
            }
            f.factor = entry.getDouble("factor", 1.0);
            if (f.factor <= 0.0 || f.factor > 1.0)
                return parseError(at + ": factor must be in (0, 1]");
            f.flaps = static_cast<std::uint32_t>(
                entry.getInt("flaps", 1));
            if (f.flaps == 0)
                return parseError(at + ": flaps must be >= 1");
            if (f.duration == 0)
                return parseError(at +
                                  ": link_degrade needs duration_ns");
            break;
          }
          case FaultKind::CoordinatorOutage:
            if (f.duration == 0)
                return parseError(
                    at + ": coordinator_outage needs duration_ns");
            break;
          case FaultKind::MessageDrop:
            f.probability = entry.getDouble("probability", 1.0);
            if (f.probability < 0.0 || f.probability > 1.0)
                return parseError(at +
                                  ": probability must be in [0, 1]");
            if (f.duration == 0)
                return parseError(at +
                                  ": message_drop needs duration_ns");
            break;
          case FaultKind::MessageDelay:
            f.delay = static_cast<Tick>(entry.getInt("delay_ns", 0));
            if (f.delay == 0)
                return parseError(at +
                                  ": message_delay needs delay_ns");
            if (f.duration == 0)
                return parseError(at +
                                  ": message_delay needs duration_ns");
            break;
          case FaultKind::SsdDegrade:
            f.factor = entry.getDouble("factor", 1.0);
            if (f.factor <= 0.0 || f.factor > 1.0)
                return parseError(at + ": factor must be in (0, 1]");
            if (f.duration == 0)
                return parseError(at +
                                  ": ssd_degrade needs duration_ns");
            break;
          case FaultKind::SsdFail:
            // Like gpu_fail, duration 0 = the drive never comes back.
            break;
          case FaultKind::CoordinatorCrash:
            // The restart is the interesting part: a crash that never
            // recovers is just a permanent outage.
            if (f.duration == 0)
                return parseError(
                    at + ": coordinator_crash needs duration_ns");
            f.loseTail = static_cast<std::uint32_t>(
                entry.getInt("lose_tail", 0));
            break;
          case FaultKind::PayloadCorrupt:
            f.probability = entry.getDouble("probability", 1.0);
            if (f.probability <= 0.0 || f.probability > 1.0)
                return parseError(at +
                                  ": probability must be in (0, 1]");
            if (f.duration == 0)
                return parseError(
                    at + ": payload_corrupt needs duration_ns");
            break;
          case FaultKind::SsdBitrot:
            f.probability = entry.getDouble("probability", 1.0);
            if (f.probability <= 0.0 || f.probability > 1.0)
                return parseError(at +
                                  ": probability must be in (0, 1]");
            if (f.duration == 0)
                return parseError(at +
                                  ": ssd_bitrot needs duration_ns");
            break;
        }
        out.faults.push_back(f);
    }
    out.ok = true;
    return out;
}

FaultPlanParse
FaultPlan::parse(const std::string &text)
{
    json::ParseResult parsed = json::parse(text);
    if (!parsed.ok)
        return parseError("bad json: " + parsed.error);
    return fromJson(parsed.value);
}

FaultPlan
FaultPlan::fromParse(const FaultPlanParse &parsed)
{
    if (!parsed.ok)
        panic("FaultPlan::fromParse: %s", parsed.error.c_str());
    FaultPlan plan;
    plan.setSeed(parsed.seed);
    for (const FaultSpec &f : parsed.faults)
        plan.add(f);
    return plan;
}

FaultPlan
FaultPlan::random(std::uint64_t seed, const ChaosConfig &cfg)
{
    FaultPlan plan;
    plan.setSeed(seed);
    Random rng(seed);

    auto when = [&] {
        return static_cast<Tick>(rng.uniform() *
                                 static_cast<double>(cfg.horizon));
    };
    auto length = [&](Tick mean) -> Tick {
        if (mean == 0)
            return 0;
        double rate = 1.0 / static_cast<double>(mean);
        Tick t = static_cast<Tick>(rng.exponential(rate));
        return t > 0 ? t : 1;
    };

    for (std::uint32_t i = 0; i < cfg.gpuFailures; ++i) {
        if (cfg.donorGpus.empty())
            break;
        FaultSpec f;
        f.kind = FaultKind::GpuFail;
        f.at = when();
        f.duration = length(cfg.meanGpuDowntime);
        f.gpu = cfg.donorGpus[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(cfg.donorGpus.size()) - 1))];
        f.grace = cfg.gpuGrace;
        plan.add(f);
    }
    for (std::uint32_t i = 0; i < cfg.linkDegrades; ++i) {
        FaultSpec f;
        f.kind = FaultKind::LinkDegrade;
        f.at = when();
        f.duration = length(cfg.meanDegradeTime);
        f.link = rng.bernoulli(0.5) ? FaultLink::Nvlink
                                    : FaultLink::Pcie;
        f.factor = rng.uniform(cfg.minDegradeFactor,
                               cfg.maxDegradeFactor);
        f.flaps = static_cast<std::uint32_t>(
            rng.uniformInt(1, cfg.maxFlaps > 0 ? cfg.maxFlaps : 1));
        plan.add(f);
    }
    for (std::uint32_t i = 0; i < cfg.outages; ++i) {
        FaultSpec f;
        f.kind = FaultKind::CoordinatorOutage;
        f.at = when();
        f.duration = length(cfg.meanOutageTime);
        plan.add(f);
    }
    for (std::uint32_t i = 0; i < cfg.dropWindows; ++i) {
        FaultSpec f;
        f.kind = FaultKind::MessageDrop;
        f.at = when();
        f.duration = length(cfg.meanDropTime);
        f.probability = cfg.dropProbability;
        plan.add(f);
    }
    for (std::uint32_t i = 0; i < cfg.delayWindows; ++i) {
        FaultSpec f;
        f.kind = FaultKind::MessageDelay;
        f.at = when();
        f.duration = length(cfg.meanDelayTime);
        f.delay = cfg.messageDelay;
        plan.add(f);
    }
    for (std::uint32_t i = 0; i < cfg.crashes; ++i) {
        FaultSpec f;
        f.kind = FaultKind::CoordinatorCrash;
        f.at = when();
        Tick d = length(cfg.meanCrashTime);
        f.duration = d > 0 ? d : 1; // a crash always restarts
        f.loseTail = static_cast<std::uint32_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(cfg.crashLoseTail)));
        plan.add(f);
    }
    for (std::uint32_t i = 0; i < cfg.corruptWindows; ++i) {
        FaultSpec f;
        f.kind = FaultKind::PayloadCorrupt;
        f.at = when();
        Tick d = length(cfg.meanCorruptTime);
        f.duration = d > 0 ? d : 1;
        f.probability = cfg.corruptProbability;
        plan.add(f);
    }
    for (std::uint32_t i = 0; i < cfg.bitrotWindows; ++i) {
        FaultSpec f;
        f.kind = FaultKind::SsdBitrot;
        f.at = when();
        Tick d = length(cfg.meanBitrotTime);
        f.duration = d > 0 ? d : 1;
        f.probability = cfg.bitrotProbability;
        plan.add(f);
    }
    return plan;
}

FaultInjector::FaultInjector(Simulation &sim, hw::Topology &topology,
                             core::RestRouter &router)
    : sim(sim), topo(topology), router(router), rng(1)
{
}

FaultInjector::~FaultInjector()
{
    if (armed)
        router.setFaultHook(nullptr);
}

void
FaultInjector::registerLib(core::AquaLib &lib)
{
    libs[lib.gpuId()] = &lib;
}

void
FaultInjector::traceFault(const char *category, std::uint64_t faultId,
                          const FaultSpec &f)
{
    if (!tracer)
        return;
    Value fields = f.toJson();
    fields["fault_id"] = static_cast<std::int64_t>(faultId);
    tracer->emit(sim.now(), category, std::move(fields));
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    if (armed)
        panic("FaultInjector::arm: already armed");
    armed = true;
    rng = Random(plan.seed());
    router.setFaultHook([this](const std::string &route,
                               const Value &body) {
        return onDispatch(route, body);
    });

    std::uint64_t faultId = 0;
    for (const FaultSpec &spec : plan.faults()) {
        if (spec.kind == FaultKind::LinkDegrade && spec.flaps > 1) {
            // A flap is N degrade/recover cycles with the degraded
            // and healthy phases of equal length; each cycle gets its
            // own fault id so inject/recover events pair up.
            for (std::uint32_t k = 0; k < spec.flaps; ++k) {
                FaultSpec cycle = spec;
                cycle.flaps = 1;
                cycle.at = spec.at + k * 2 * spec.duration;
                std::uint64_t id = faultId++;
                sim.queue().schedule(cycle.at, [this, id, cycle] {
                    inject(id, cycle);
                });
            }
            continue;
        }
        std::uint64_t id = faultId++;
        sim.queue().schedule(spec.at, [this, id, spec] {
            inject(id, spec);
        });
    }
}

void
FaultInjector::inject(std::uint64_t faultId, const FaultSpec &f)
{
    ++counters.injected;
    traceFault("fault_inject", faultId, f);
    switch (f.kind) {
      case FaultKind::GpuFail: {
        // The GPU's software stack dies now: heartbeats stop, its
        // informer goes silent. Its HBM stays readable through the
        // grace window so emergency evacuation can race the failure,
        // then the ports go dark.
        auto it = libs.find(f.gpu);
        if (it != libs.end())
            it->second->setFailed(true);
        // If the GPU comes back before its grace window closes (a
        // transient software crash), its memory never goes dark.
        if (f.duration == 0 || f.duration > f.grace) {
            sim.queue().schedule(sim.now() + f.grace,
                                 [this, gpu = f.gpu] {
                topo.markGpuFailed(gpu, true);
                if (gpuFailObserver)
                    gpuFailObserver(gpu);
            });
        }
        break;
      }
      case FaultKind::LinkDegrade:
        if (f.link == FaultLink::Nvlink) {
            topo.degradePeerLink(f.factor);
        } else if (f.link == FaultLink::Pcie) {
            topo.degradeHostLink(f.factor);
        } else {
            if (!fabric)
                panic("link_degrade on the fabric needs "
                      "FaultInjector::attachFabric");
            fabric->setDegradation(f.factor);
        }
        break;
      case FaultKind::CoordinatorOutage:
        outageStart = f.at;
        outageEnd = f.at + f.duration;
        break;
      case FaultKind::MessageDrop:
        dropStart = f.at;
        dropEnd = f.at + f.duration;
        dropProbability = f.probability;
        break;
      case FaultKind::MessageDelay:
        delayStart = f.at;
        delayEnd = f.at + f.duration;
        messageDelay = f.delay;
        break;
      case FaultKind::SsdDegrade:
        topo.degradeSsd(f.factor);
        break;
      case FaultKind::SsdFail:
        topo.markSsdFailed(true);
        break;
      case FaultKind::CoordinatorCrash:
        // The coordinator process is gone from this instant: its
        // in-memory maps no longer exist, and every REST call in the
        // window is rejected retryably. The recovery layer (the crash
        // hook) freezes dependent services until the restart resyncs.
        ++counters.coordinatorCrashes;
        crashStart = f.at;
        crashEnd = f.at + f.duration;
        if (crashHook)
            crashHook(sim.now());
        break;
      case FaultKind::PayloadCorrupt:
        topo.setPayloadCorruption(f.probability);
        break;
      case FaultKind::SsdBitrot:
        topo.setSsdBitrot(f.probability);
        break;
    }
    if (f.duration == 0)
        return; // permanent fault: no recovery event
    sim.queue().schedule(sim.now() + f.duration, [this, faultId, f] {
        recover(faultId, f);
    });
}

void
FaultInjector::recover(std::uint64_t faultId, const FaultSpec &f)
{
    ++counters.recovered;
    switch (f.kind) {
      case FaultKind::GpuFail: {
        topo.markGpuFailed(f.gpu, false);
        auto it = libs.find(f.gpu);
        if (it != libs.end())
            it->second->setFailed(false);
        break;
      }
      case FaultKind::LinkDegrade:
        if (f.link == FaultLink::Nvlink) {
            topo.degradePeerLink(1.0);
        } else if (f.link == FaultLink::Pcie) {
            topo.degradeHostLink(1.0);
        } else if (fabric) {
            fabric->setDegradation(1.0);
        }
        break;
      case FaultKind::CoordinatorOutage:
      case FaultKind::MessageDrop:
      case FaultKind::MessageDelay:
        // Window faults expire by timestamp; nothing to undo.
        break;
      case FaultKind::SsdDegrade:
        topo.degradeSsd(1.0);
        break;
      case FaultKind::SsdFail:
        topo.markSsdFailed(false);
        break;
      case FaultKind::CoordinatorCrash:
        // Cold restart: replay journal minus the lost tail, then
        // resync against the survivors (RecoveryManager's job).
        if (restartHook)
            restartHook(sim.now(), f.loseTail);
        break;
      case FaultKind::PayloadCorrupt:
        topo.setPayloadCorruption(0.0);
        break;
      case FaultKind::SsdBitrot:
        topo.setSsdBitrot(0.0);
        break;
    }
    traceFault("fault_recover", faultId, f);
}

core::DispatchFault
FaultInjector::onDispatch(const std::string &route, const Value &body)
{
    core::DispatchFault fate;
    // Retries back off in *virtual* time: the caller stamps each
    // attempt with "now" = sim time plus the backoff already served,
    // so a retry issued "after" a window closes gets through even
    // though the simulation clock has not advanced mid-call.
    Tick now = static_cast<Tick>(
        body.getInt("now", static_cast<std::int64_t>(sim.now())));
    (void)route;
    if (now >= crashStart && now < crashEnd) {
        ++counters.rejectedDuringCrash;
        fate.fate = core::DispatchFault::Fate::Reject;
        fate.status = core::RestStatus::ServiceUnavailable;
        fate.reason = "injected coordinator crash";
        return fate;
    }
    if (now >= outageStart && now < outageEnd) {
        ++counters.rejectedDuringOutage;
        fate.fate = core::DispatchFault::Fate::Reject;
        fate.status = core::RestStatus::ServiceUnavailable;
        fate.reason = "injected coordinator outage";
        return fate;
    }
    if (now >= dropStart && now < dropEnd &&
        rng.bernoulli(dropProbability)) {
        ++counters.droppedMessages;
        fate.fate = core::DispatchFault::Fate::Reject;
        fate.status = core::RestStatus::Timeout;
        fate.reason = "injected message drop";
        return fate;
    }
    if (now >= delayStart && now < delayEnd) {
        ++counters.delayedMessages;
        fate.fate = core::DispatchFault::Fate::Delay;
        fate.extraLatency = messageDelay;
        return fate;
    }
    return fate;
}

} // namespace aqua::fault
