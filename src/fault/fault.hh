/**
 * @file
 * Deterministic fault injection for the AQUA control plane.
 *
 * Parking a consumer's KV caches and LoRA adapters in a *peer GPU's*
 * HBM widens the failure domain of every request: a donor GPU crash, a
 * flapping NVLink or an unreachable coordinator now strands another
 * tenant's context. The paper specifies the control protocol only for
 * the happy path; this subsystem is the chaos layer that lets us prove
 * the implementation survives everything else.
 *
 * Two pieces live here:
 *
 *  - FaultPlan: a typed, timestamped schedule of faults. Plans are
 *    built programmatically, parsed from JSON, or generated from a
 *    seeded sim::Random stream so a chaos run replays identically.
 *  - FaultInjector: applies a plan to a simulated server. Faults are
 *    scheduled on the simulation's event queue; every injection and
 *    recovery emits a trace::TraceLog event carrying a fault id, so a
 *    run can be audited for matching inject/recover pairs.
 *
 * Fault taxonomy:
 *
 *  | kind               | models                               |
 *  |--------------------|--------------------------------------|
 *  | gpu_fail           | donor GPU crash: heartbeats stop at  |
 *  |                    | `at`; after a grace window the GPU's |
 *  |                    | ports go dark and transfers panic    |
 *  | link_degrade       | NVLink/PCIe degradation or flapping; |
 *  |                    | scales the size-aware bandwidth ramp |
 *  | coordinator_outage | coordinator unreachable; southbound  |
 *  |                    | calls see 503 and back off           |
 *  | message_drop       | control messages dropped with a      |
 *  |                    | seeded probability                   |
 *  | message_delay      | control messages delivered late      |
 *  | ssd_degrade        | storage-tier media slowdown (thermal |
 *  |                    | throttle, GC storm); scales the      |
 *  |                    | drive's bandwidth ramp               |
 *  | ssd_fail           | drive offline; tier accesses panic,  |
 *  |                    | resumes fall back to recompute       |
 *  | coordinator_crash  | coordinator process dies and loses   |
 *  |                    | in-memory state; restarts cold from  |
 *  |                    | its journal and resyncs survivors    |
 *  | payload_corrupt    | in-flight link payload corruption;   |
 *  |                    | signature checks fail at read time   |
 *  | ssd_bitrot         | at-rest media corruption; stored     |
 *  |                    | copies damaged, repair needs a       |
 *  |                    | replica or recompute                 |
 */

#ifndef AQUA_FAULT_FAULT_HH
#define AQUA_FAULT_FAULT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aqua/rest.hh"
#include "hw/topology.hh"
#include "json/json.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "trace/trace.hh"

namespace aqua::core {
class AquaLib;
}

namespace aqua::hw {
class Fabric;
}

namespace aqua::fault {

/** The typed faults the injector knows how to apply. */
enum class FaultKind
{
    GpuFail,
    LinkDegrade,
    CoordinatorOutage,
    MessageDrop,
    MessageDelay,
    SsdDegrade,
    SsdFail,
    CoordinatorCrash,
    PayloadCorrupt,
    SsdBitrot,
};

/** Wire name of a fault kind (e.g. "gpu_fail"). */
const char *faultKindName(FaultKind kind);

/** Parse a wire name; nullopt for unknown names. */
std::optional<FaultKind> faultKindFromName(const std::string &name);

/** Which link a LinkDegrade fault hits. Fabric targets the
 *  inter-server fabric (requires FaultInjector::attachFabric). */
enum class FaultLink { Nvlink, Pcie, Fabric };

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::CoordinatorOutage;
    /** Injection time (absolute ticks). */
    aqua::sim::Tick at = 0;
    /**
     * Fault length; recovery fires at at + duration. A GpuFail with
     * duration 0 is permanent (no recovery event).
     */
    aqua::sim::Tick duration = 0;

    /** GpuFail: the dying GPU. */
    hw::GpuId gpu = hw::hostDramId;
    /**
     * GpuFail: how long after `at` the GPU's memory stays readable.
     * Emergency evacuation must finish inside this window; transfers
     * touching the GPU after it panic.
     */
    aqua::sim::Tick grace = 0;

    /** LinkDegrade: which link. */
    FaultLink link = FaultLink::Nvlink;
    /** LinkDegrade / SsdDegrade: bandwidth multiplier while degraded,
     *  in (0, 1]. */
    double factor = 1.0;
    /** LinkDegrade: number of degrade/recover cycles (a flap). */
    std::uint32_t flaps = 1;

    /** MessageDrop / PayloadCorrupt / SsdBitrot: per-call drop or
     *  per-payload corruption probability. */
    double probability = 1.0;
    /** MessageDelay: extra latency added to each call. */
    aqua::sim::Tick delay = 0;

    /**
     * CoordinatorCrash: journal records lost with the crash — the
     * unflushed tail that never reached stable storage. Replay alone
     * cannot see these mutations; survivor resync must reconcile them.
     */
    std::uint32_t loseTail = 0;

    json::Value toJson() const;
};

class FaultPlan;

/** Outcome of parsing a plan. */
struct FaultPlanParse
{
    /** Meaningful only when ok. */
    std::vector<FaultSpec> faults;
    std::uint64_t seed = 0;
    bool ok = false;
    std::string error;
};

/** Knobs of FaultPlan::random(). */
struct ChaosConfig
{
    /** Plan horizon: every fault is injected before this tick. */
    aqua::sim::Tick horizon = 1 * aqua::sim::nsPerSec;
    /** Candidate donor GPUs for gpu_fail faults. */
    std::vector<hw::GpuId> donorGpus;
    /** Number of donor failures to schedule. */
    std::uint32_t gpuFailures = 0;
    /** Mean failure length (0 = permanent); exponential. */
    aqua::sim::Tick meanGpuDowntime = 0;
    /** Readable-memory grace window after a donor failure. */
    aqua::sim::Tick gpuGrace = 50 * aqua::sim::nsPerMs;
    /** Number of link degradation events. */
    std::uint32_t linkDegrades = 0;
    /** Degraded-bandwidth factor range [min, max). */
    double minDegradeFactor = 0.1;
    double maxDegradeFactor = 0.5;
    /** Mean degradation length; exponential. */
    aqua::sim::Tick meanDegradeTime = 10 * aqua::sim::nsPerMs;
    /** Max flap cycles per degradation (uniform in [1, max]). */
    std::uint32_t maxFlaps = 3;
    /** Number of coordinator outage windows. */
    std::uint32_t outages = 0;
    /** Mean outage length; exponential. */
    aqua::sim::Tick meanOutageTime = 2 * aqua::sim::nsPerMs;
    /** Number of message-drop windows. */
    std::uint32_t dropWindows = 0;
    /** Drop probability inside a drop window. */
    double dropProbability = 0.5;
    /** Mean drop-window length; exponential. */
    aqua::sim::Tick meanDropTime = 2 * aqua::sim::nsPerMs;
    /** Number of message-delay windows. */
    std::uint32_t delayWindows = 0;
    /** Injected per-call delay inside a delay window. */
    aqua::sim::Tick messageDelay = 1 * aqua::sim::nsPerMs;
    /** Mean delay-window length; exponential. */
    aqua::sim::Tick meanDelayTime = 5 * aqua::sim::nsPerMs;
    /** Number of coordinator crash/restart cycles. */
    std::uint32_t crashes = 0;
    /** Mean crash (dead-coordinator) length; exponential. */
    aqua::sim::Tick meanCrashTime = 2 * aqua::sim::nsPerMs;
    /** Max journal-tail records lost per crash (uniform in
     *  [0, max]). */
    std::uint32_t crashLoseTail = 0;
    /** Number of payload-corruption windows. */
    std::uint32_t corruptWindows = 0;
    /** Per-payload corruption probability inside a window. */
    double corruptProbability = 0.05;
    /** Mean corruption-window length; exponential. */
    aqua::sim::Tick meanCorruptTime = 5 * aqua::sim::nsPerMs;
    /** Number of SSD bitrot windows. */
    std::uint32_t bitrotWindows = 0;
    /** Per-read bitrot probability inside a window. */
    double bitrotProbability = 0.05;
    /** Mean bitrot-window length; exponential. */
    aqua::sim::Tick meanBitrotTime = 5 * aqua::sim::nsPerMs;
};

/**
 * A schedule of faults, sorted by injection time.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Append a fault (kept sorted by FaultSpec::at). */
    void add(FaultSpec spec);

    const std::vector<FaultSpec> &faults() const { return list; }
    std::size_t size() const { return list.size(); }
    bool empty() const { return list.empty(); }

    /**
     * Seed of the random stream used for probabilistic faults
     * (message drops). Also recorded by toJson().
     */
    std::uint64_t seed() const { return rngSeed; }
    void setSeed(std::uint64_t seed) { rngSeed = seed; }

    /** Serialize: {"seed": n, "faults": [...]}. */
    json::Value toJson() const;

    /** Parse a plan from its JSON form. */
    static FaultPlanParse fromJson(const json::Value &v);

    /** Parse a plan from JSON text. */
    static FaultPlanParse parse(const std::string &text);

    /** Build a plan from @p parsed (which must be ok). */
    static FaultPlan fromParse(const FaultPlanParse &parsed);

    /**
     * Generate a reproducible chaos plan: fault times are uniform over
     * the horizon, lengths exponential around their means, all drawn
     * from a PCG stream seeded with @p seed. The same (seed, config)
     * pair always yields the same plan.
     */
    static FaultPlan random(std::uint64_t seed, const ChaosConfig &cfg);

  private:
    std::vector<FaultSpec> list;
    std::uint64_t rngSeed = 1;
};

/** Counters the injector exposes for benches and tests. */
struct FaultInjectorStats
{
    std::uint64_t injected = 0;
    std::uint64_t recovered = 0;
    std::uint64_t droppedMessages = 0;
    std::uint64_t delayedMessages = 0;
    std::uint64_t rejectedDuringOutage = 0;
    std::uint64_t rejectedDuringCrash = 0;
    std::uint64_t coordinatorCrashes = 0;
};

/**
 * Applies a FaultPlan to one simulated server.
 *
 * The injector schedules every fault on the simulation's event queue
 * at arm() time. GPU failures additionally need the victim's AquaLib
 * registered (registerLib) so its heartbeats stop; coordinator-path
 * faults are implemented through the RestRouter's fault hook, which
 * the injector owns while armed.
 *
 * Trace events (categories "fault_inject" / "fault_recover") carry a
 * monotonically increasing "fault_id"; a clean run pairs them up
 * exactly (trace::TraceLog::unmatchedPairs).
 */
class FaultInjector
{
  public:
    /**
     * @param sim Simulation whose queue drives the plan.
     * @param topology The server interconnect faults apply to.
     * @param router The coordinator REST router faults intercept.
     */
    FaultInjector(aqua::sim::Simulation &sim, hw::Topology &topology,
                  core::RestRouter &router);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;
    ~FaultInjector();

    /** Attach an audit log for inject/recover events. Not owned. */
    void setTraceLog(trace::TraceLog *log) { tracer = log; }

    /** Register a per-GPU AquaLib so gpu_fail faults can reach it. */
    void registerLib(core::AquaLib &lib);

    /** Attach the inter-server fabric so link_degrade faults with
     *  link=fabric can reach it (nullptr detaches). Not owned. */
    void attachFabric(hw::Fabric *fab) { fabric = fab; }

    /**
     * Called when a gpu_fail fault's grace window closes and the
     * GPU's memory goes dark (after Topology::markGpuFailed). Lets
     * cluster-level services — e.g. the prefix registry — react to
     * the death: break leases, promote replicas, invalidate chains.
     */
    void setGpuFailObserver(std::function<void(hw::GpuId)> observer)
    {
        gpuFailObserver = std::move(observer);
    }

    /**
     * Hooks for coordinator_crash faults. @p onCrash fires when the
     * coordinator process dies (its in-memory state is gone from that
     * instant; every REST call in the crash window sees a retryable
     * 503). @p onRestart fires when it comes back cold: the recovery
     * layer replays the journal — minus @p loseTail unflushed tail
     * records — and resyncs against the survivors.
     */
    void setCoordinatorCrashHooks(
        std::function<void(aqua::sim::Tick)> onCrash,
        std::function<void(aqua::sim::Tick, std::uint32_t loseTail)>
            onRestart)
    {
        crashHook = std::move(onCrash);
        restartHook = std::move(onRestart);
    }

    /**
     * Schedule every fault of @p plan on the event queue and install
     * the REST fault hook. May be called once per injector.
     */
    void arm(const FaultPlan &plan);

    const FaultInjectorStats &stats() const { return counters; }

    /** Whether a coordinator outage window is open at @p now. */
    bool coordinatorUnavailable(aqua::sim::Tick now) const
    {
        return (now >= outageStart && now < outageEnd) ||
               (now >= crashStart && now < crashEnd);
    }

    /** Whether a coordinator crash window is open at @p now. */
    bool coordinatorCrashed(aqua::sim::Tick now) const
    {
        return now >= crashStart && now < crashEnd;
    }

  private:
    void inject(std::uint64_t faultId, const FaultSpec &f);
    void recover(std::uint64_t faultId, const FaultSpec &f);
    void traceFault(const char *category, std::uint64_t faultId,
                    const FaultSpec &f);
    /** The RestRouter fault hook: outage/drop/delay behaviour. */
    core::DispatchFault onDispatch(const std::string &route,
                                   const json::Value &body);

    aqua::sim::Simulation &sim;
    hw::Topology &topo;
    core::RestRouter &router;
    hw::Fabric *fabric = nullptr;
    trace::TraceLog *tracer = nullptr;
    std::function<void(hw::GpuId)> gpuFailObserver;
    std::function<void(aqua::sim::Tick)> crashHook;
    std::function<void(aqua::sim::Tick, std::uint32_t)> restartHook;
    std::map<hw::GpuId, core::AquaLib *> libs;
    aqua::sim::Random rng;
    bool armed = false;

    // Active coordinator-path fault windows (absolute ticks).
    aqua::sim::Tick outageStart = 0, outageEnd = 0;
    aqua::sim::Tick crashStart = 0, crashEnd = 0;
    aqua::sim::Tick dropStart = 0, dropEnd = 0;
    double dropProbability = 0.0;
    aqua::sim::Tick delayStart = 0, delayEnd = 0;
    aqua::sim::Tick messageDelay = 0;

    FaultInjectorStats counters;
};

} // namespace aqua::fault

#endif // AQUA_FAULT_FAULT_HH
