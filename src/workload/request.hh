/**
 * @file
 * Inference requests and per-request outcome metrics.
 */

#ifndef AQUA_WORKLOAD_REQUEST_HH
#define AQUA_WORKLOAD_REQUEST_HH

#include <cstdint>
#include <vector>

#include "model/lora.hh"
#include "sim/ticks.hh"

namespace aqua::workload {

/** Identifier of a request within a run. */
using RequestId = std::uint64_t;

/**
 * One inference query.
 *
 * Text requests carry a prompt length and a generation budget; image
 * and audio requests are single-item generations whose duration the
 * compute profile determines.
 */
struct Request
{
    RequestId id = 0;
    /** Simulated arrival time. */
    aqua::sim::Tick arrival = 0;
    /** Prompt length in tokens (text models). */
    std::uint32_t promptTokens = 0;
    /** Number of tokens to generate before the request completes. */
    std::uint32_t maxNewTokens = 0;
    /** LoRA adapter to apply, or model::noLora. */
    model::LoraId adapter = model::noLora;
    /** Chat user issuing the request (multi-turn workloads). */
    std::uint32_t userId = 0;
    /** Conversation turn index (multi-turn workloads). */
    std::uint32_t turn = 0;
    /** Absolute completion deadline (SLO); 0 = no deadline. */
    aqua::sim::Tick deadline = 0;
    /** Best-effort: no SLO and first in line to be shed under
     *  brownout (background summarisation, speculative work). */
    bool bestEffort = false;

    //
    // Session idle/resume modelling. Real chat and agent sessions do
    // not decode continuously: users walk away mid-conversation and
    // come back minutes later. The gap below is drawn deterministically
    // per seed by the trace builder; serving engines use it as the
    // park predictor (a session idling past the park threshold moves
    // its KV to the storage tier instead of holding DRAM forever).
    //

    /** Seconds the user stays idle after this request completes,
     *  before the session's next turn; 0 = stays warm. */
    double idleGapSec = 0.0;
    /** This request resumes a session that went cold (its arrival
     *  already includes the previous turn's idle gap). */
    bool coldResume = false;

    //
    // Simulated token content. Requests do not carry literal token
    // ids; instead each token position maps to a deterministic content
    // id drawn from a stream (see tokenContent()). Two requests whose
    // streams and positions agree hold identical tokens there, which
    // is what prefix caching deduplicates.
    //

    /** Stream of the leading @ref prefixTokens tokens (a shared system
     *  prompt or LoRA preamble); 0 = no shared preamble. */
    std::uint64_t prefixStream = 0;
    /** Tokens drawn from prefixStream before contentStream takes over. */
    std::uint32_t prefixTokens = 0;
    /** Stream of the remaining tokens (e.g. one chat user's
     *  conversation, shared across turns); 0 = unique per request. */
    std::uint64_t contentStream = 0;
};

/** Derive a non-zero content stream id from a tag. */
std::uint64_t contentStreamId(std::uint64_t tag);

/**
 * Content id of token @p pos of @p request (prompt and generated
 * tokens alike). Positions below prefixTokens read the shared prefix
 * stream; the rest read contentStream, or a request-private stream
 * when none is set.
 */
std::uint64_t tokenContent(const Request &request, std::uint64_t pos);

/**
 * Measured outcome of one request.
 *
 * The paper's two headline metrics (Fig. 1):
 *  - TTFT (time to first token): responsiveness;
 *  - RCT (request completion time): throughput.
 */
struct RequestMetrics
{
    RequestId id = 0;
    aqua::sim::Tick arrival = 0;
    /** When the first output token was produced; 0 if never. */
    aqua::sim::Tick firstToken = 0;
    /** When the request finished; 0 if unfinished. */
    aqua::sim::Tick finish = 0;
    std::uint32_t tokensGenerated = 0;
    /** Copied from the request: completion SLO, 0 = none. */
    aqua::sim::Tick deadline = 0;
    /** When the request was first admitted to the GPU; 0 if never
     *  (queue delay = admitted - arrival). */
    aqua::sim::Tick admitted = 0;
    /** Shed by admission control / brownout instead of served. */
    bool shed = false;

    bool started() const { return firstToken != 0; }
    bool finished() const { return finish != 0; }

    /** Finished within the SLO (no-deadline finishes count as met). */
    bool
    metDeadline() const
    {
        return finished() && (deadline == 0 || finish <= deadline);
    }

    /** Admission queue delay in seconds; requires admitted != 0. */
    double
    queueDelaySec() const
    {
        return aqua::sim::ticksToSec(admitted - arrival);
    }

    /** Time to first token in seconds; requires started(). */
    double ttftSec() const
    {
        return aqua::sim::ticksToSec(firstToken - arrival);
    }

    /** Request completion time in seconds; requires finished(). */
    double rctSec() const
    {
        return aqua::sim::ticksToSec(finish - arrival);
    }
};

} // namespace aqua::workload

#endif // AQUA_WORKLOAD_REQUEST_HH
