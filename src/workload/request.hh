/**
 * @file
 * Inference requests and per-request outcome metrics.
 */

#ifndef AQUA_WORKLOAD_REQUEST_HH
#define AQUA_WORKLOAD_REQUEST_HH

#include <cstdint>
#include <vector>

#include "model/lora.hh"
#include "sim/ticks.hh"

namespace aqua::workload {

/** Identifier of a request within a run. */
using RequestId = std::uint64_t;

/**
 * One inference query.
 *
 * Text requests carry a prompt length and a generation budget; image
 * and audio requests are single-item generations whose duration the
 * compute profile determines.
 */
struct Request
{
    RequestId id = 0;
    /** Simulated arrival time. */
    aqua::sim::Tick arrival = 0;
    /** Prompt length in tokens (text models). */
    std::uint32_t promptTokens = 0;
    /** Number of tokens to generate before the request completes. */
    std::uint32_t maxNewTokens = 0;
    /** LoRA adapter to apply, or model::noLora. */
    model::LoraId adapter = model::noLora;
    /** Chat user issuing the request (multi-turn workloads). */
    std::uint32_t userId = 0;
    /** Conversation turn index (multi-turn workloads). */
    std::uint32_t turn = 0;
};

/**
 * Measured outcome of one request.
 *
 * The paper's two headline metrics (Fig. 1):
 *  - TTFT (time to first token): responsiveness;
 *  - RCT (request completion time): throughput.
 */
struct RequestMetrics
{
    RequestId id = 0;
    aqua::sim::Tick arrival = 0;
    /** When the first output token was produced; 0 if never. */
    aqua::sim::Tick firstToken = 0;
    /** When the request finished; 0 if unfinished. */
    aqua::sim::Tick finish = 0;
    std::uint32_t tokensGenerated = 0;

    bool started() const { return firstToken != 0; }
    bool finished() const { return finish != 0; }

    /** Time to first token in seconds; requires started(). */
    double ttftSec() const
    {
        return aqua::sim::ticksToSec(firstToken - arrival);
    }

    /** Request completion time in seconds; requires finished(). */
    double rctSec() const
    {
        return aqua::sim::ticksToSec(finish - arrival);
    }
};

} // namespace aqua::workload

#endif // AQUA_WORKLOAD_REQUEST_HH
