/**
 * @file
 * Workload generators: arrival processes and prompt-length samplers
 * matching the paper's evaluation workloads (§6).
 *
 *  - Interactive: ShareGPT-like prompt/response lengths, Poisson
 *    arrivals at 1-10 requests/second.
 *  - Long prompts: 8,000-token single prompts for FlexGen/OPT-30B.
 *  - LoRA: requests tagged with adapters sampled from a pool.
 *  - Code summarization: long prompts (source files), short outputs.
 *  - Chatbot: N users, one outstanding prompt per user, re-issued
 *    after each response (Fig. 13).
 */

#ifndef AQUA_WORKLOAD_GENERATOR_HH
#define AQUA_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "sim/random.hh"
#include "sim/ticks.hh"
#include "workload/request.hh"

namespace aqua::workload {

/**
 * Samples prompt and output lengths resembling the ShareGPT dataset:
 * lognormal with a short-prompt mode and a heavy tail, clamped to a
 * maximum. Like the paper, the response length in the dataset becomes
 * the generation budget.
 */
class ShareGptSampler
{
  public:
    explicit ShareGptSampler(aqua::sim::Random rng);

    /** Sample a prompt length in tokens. */
    std::uint32_t samplePromptTokens();

    /** Sample a generation budget in tokens. */
    std::uint32_t sampleOutputTokens();

  private:
    aqua::sim::Random rng;
};

/**
 * Deadline-stamping policy for generated traces: each request's SLO
 * is a configurable multiple of its fault-free baseline latency
 * (baseline TTFT plus a per-output-token cost). A multiple of 0
 * disables stamping, which is the default — existing traces are
 * unchanged.
 */
struct SloSpec
{
    /** Deadline = arrival + multiple x baseline latency; 0 = off. */
    double multiple = 0.0;
    /** Fault-free baseline time-to-first-token, seconds. */
    double baseTtftSec = 0.5;
    /** Fault-free baseline latency per generated token, seconds. */
    double basePerTokenSec = 0.05;
    /** Fraction of requests marked best-effort (no deadline; shed
     *  first under brownout). */
    double bestEffortFraction = 0.0;
};

/**
 * Idle-gap stamping policy: a configurable fraction of chatbot/agent
 * requests is followed by the user going idle for an exponentially
 * distributed gap (plus a floor), modelling sessions that go cold.
 * Draws come from the builder's seeded RNG, so gaps are deterministic
 * per seed. The default fraction of 0 leaves existing traces
 * unchanged.
 */
struct IdleSpec
{
    /** Fraction of requests whose user goes idle afterwards; 0 = off. */
    double coldFraction = 0.0;
    /** Mean of the exponential part of the idle gap, seconds. */
    double meanIdleSec = 120.0;
    /** Floor added to every stamped gap, seconds. */
    double minIdleSec = 30.0;
};

/**
 * Builds request traces.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(aqua::sim::Random rng);

    /** Stamp deadlines on subsequently built traces (Poisson-arrival
     *  builders: interactive, bursty, codeSummary, sharedPrefix and
     *  the LoRA variants). */
    void setSlo(SloSpec spec) { slo = spec; }
    const SloSpec &sloSpec() const { return slo; }

    /** Stamp idle gaps on subsequently built chatbot requests
     *  (chatbotFirstTurn and chatbotFollowUp). */
    void setIdle(IdleSpec spec) { idle = spec; }
    const IdleSpec &idleSpec() const { return idle; }

    /**
     * Interactive ShareGPT-like trace: Poisson arrivals.
     *
     * @param ratePerSec Mean arrival rate.
     * @param count Number of requests.
     * @param start First possible arrival time.
     */
    std::vector<Request> interactive(double ratePerSec,
                                     std::size_t count,
                                     aqua::sim::Tick start = 0);

    /**
     * Code-summarization trace: long prompts (sampled source files,
     * 1-4k tokens), short summaries (~128-256 tokens).
     */
    std::vector<Request> codeSummary(double ratePerSec,
                                     std::size_t count,
                                     aqua::sim::Tick start = 0);

    /**
     * Bursty interactive trace: arrivals alternate between a quiet
     * rate and a burst rate with the given period (a two-state
     * modulated Poisson process). Serving engines that admit by
     * batch starve precisely during the bursts (§9: AQUA's fair
     * scheduler exists to "gracefully handle bursts").
     *
     * @param quietRate Requests/second in the quiet phase.
     * @param burstRate Requests/second in the burst phase.
     * @param phaseSec Duration of each phase.
     * @param count Number of requests.
     */
    std::vector<Request> bursty(double quietRate, double burstRate,
                                double phaseSec, std::size_t count,
                                aqua::sim::Tick start = 0);

    /**
     * LoRA trace: interactive requests, each randomly assigned one of
     * @p numAdapters adapters (the paper assigns one of 30).
     */
    std::vector<Request> lora(double ratePerSec, std::size_t count,
                              std::uint32_t numAdapters,
                              aqua::sim::Tick start = 0);

    /**
     * Shared-prefix interactive trace: every request opens with a
     * common preamble (a chatbot system prompt) drawn from one of
     * @p numGroups content streams, followed by a user-specific rest.
     * Prefix caching should deduplicate the preamble KV across all
     * requests of a group (Fig. 13's serving pattern).
     *
     * @param prefixTokens Length of the shared preamble.
     * @param numGroups Distinct system prompts in play.
     */
    std::vector<Request> sharedPrefix(double ratePerSec,
                                      std::size_t count,
                                      std::uint32_t prefixTokens,
                                      std::uint32_t numGroups = 1,
                                      aqua::sim::Tick start = 0);

    /**
     * LoRA trace whose requests open with a per-adapter preamble (the
     * adapter's instruction prefix): requests for the same adapter
     * share their first @p preambleTokens tokens.
     */
    std::vector<Request> loraPreamble(double ratePerSec,
                                      std::size_t count,
                                      std::uint32_t numAdapters,
                                      std::uint32_t preambleTokens,
                                      aqua::sim::Tick start = 0);

    /**
     * A single long prompt (default 8,000 tokens — GPT-4's context
     * limit per §6) with a large generation budget.
     */
    Request longPrompt(std::uint32_t promptTokens = 8000,
                       std::uint32_t maxNewTokens = 2000,
                       aqua::sim::Tick arrival = 0);

    /**
     * First turn of the chatbot workload: @p users prompts arriving in
     * a short burst. Subsequent turns are issued reactively by the
     * experiment driver when responses return. Each user's tokens come
     * from a per-user content stream, so a follow-up's re-sent history
     * is byte-identical to the earlier turns (prefix-cacheable).
     *
     * @param systemPromptTokens Shared system preamble prepended to
     *        every user's first prompt (0 = none).
     */
    std::vector<Request>
    chatbotFirstTurn(std::uint32_t users, aqua::sim::Tick start = 0,
                     std::uint32_t systemPromptTokens = 0);

    /**
     * Sample a chatbot follow-up for @p userId at @p turn.
     *
     * @param historyTokens Tokens of conversation so far (previous
     *        prompts and responses); chat engines re-send the history
     *        with each turn, so the prompt grows turn over turn.
     * @param systemPromptTokens Must match the first turn's value.
     */
    Request chatbotFollowUp(std::uint32_t userId, std::uint32_t turn,
                            aqua::sim::Tick arrival,
                            std::uint32_t historyTokens = 0,
                            std::uint32_t systemPromptTokens = 0);

    /** Access the underlying sampler (e.g. for tests). */
    ShareGptSampler &sampler() { return lengths; }

  private:
    /** Apply the SLO spec to a freshly built request. */
    void stampSlo(Request &r);

    /** Apply the idle spec to a freshly built chatbot request. */
    void stampIdle(Request &r);

    RequestId nextId = 0;
    aqua::sim::Random rng;
    ShareGptSampler lengths;
    SloSpec slo;
    IdleSpec idle;
};

} // namespace aqua::workload

#endif // AQUA_WORKLOAD_GENERATOR_HH
