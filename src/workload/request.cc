#include "workload/request.hh"

namespace aqua::workload {

namespace {

/** splitmix64 finalizer — keep independent from the serve-layer prefix
 *  hashes so index collisions cannot be manufactured by content. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr std::uint64_t kStreamSalt = 0x517cc1b727220a95ull;
constexpr std::uint64_t kPrivateSalt = 0x2545f4914f6cdd1dull;

} // anonymous namespace

std::uint64_t
contentStreamId(std::uint64_t tag)
{
    return mix64(tag ^ kStreamSalt) | 1; // never zero
}

std::uint64_t
tokenContent(const Request &request, std::uint64_t pos)
{
    std::uint64_t stream;
    if (request.prefixStream != 0 && pos < request.prefixTokens)
        stream = request.prefixStream;
    else if (request.contentStream != 0)
        stream = request.contentStream;
    else
        stream = mix64(request.id ^ kPrivateSalt) | 1;
    return mix64(stream ^ mix64(pos));
}

} // namespace aqua::workload
