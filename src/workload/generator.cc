#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

namespace aqua::workload {

using namespace aqua::sim;

namespace {

std::uint32_t
clampTokens(double v, std::uint32_t lo, std::uint32_t hi)
{
    if (v < lo)
        return lo;
    if (v > hi)
        return hi;
    return static_cast<std::uint32_t>(v);
}

} // anonymous namespace

ShareGptSampler::ShareGptSampler(Random rng) : rng(rng) {}

std::uint32_t
ShareGptSampler::samplePromptTokens()
{
    // ShareGPT prompts: median ~60 tokens with a heavy tail out to a
    // couple of thousand. lognormal(mu=4.2, sigma=1.0) gives median
    // e^4.2 = 67, p95 ~ 350.
    return clampTokens(rng.lognormal(4.2, 1.0), 4, 2048);
}

std::uint32_t
ShareGptSampler::sampleOutputTokens()
{
    // ShareGPT responses are longer: median ~200 tokens.
    return clampTokens(rng.lognormal(5.3, 0.8), 8, 2048);
}

TraceBuilder::TraceBuilder(Random rng)
    : rng(rng), lengths(this->rng)
{
    // Decouple the two streams: re-seed the length sampler from the
    // arrival stream once so draws don't interleave.
    lengths = ShareGptSampler(Random(this->rng.next64()));
}

void
TraceBuilder::stampSlo(Request &r)
{
    if (slo.multiple <= 0.0)
        return;
    if (slo.bestEffortFraction > 0.0 &&
        rng.uniform(0.0, 1.0) < slo.bestEffortFraction) {
        r.bestEffort = true;
        return;
    }
    // Fault-free baseline: queue-free TTFT plus the decode tail.
    double baseline = slo.baseTtftSec +
                      double(r.maxNewTokens) * slo.basePerTokenSec;
    r.deadline = r.arrival + secToTicks(slo.multiple * baseline);
}

void
TraceBuilder::stampIdle(Request &r)
{
    if (idle.coldFraction <= 0.0)
        return;
    // Always burn one uniform draw so the arrival/length streams stay
    // aligned whether or not this particular user goes idle.
    bool cold = rng.uniform(0.0, 1.0) < idle.coldFraction;
    double gap =
        idle.minIdleSec + rng.exponential(1.0 / idle.meanIdleSec);
    if (cold)
        r.idleGapSec = gap;
}

std::vector<Request>
TraceBuilder::interactive(double ratePerSec, std::size_t count,
                          Tick start)
{
    std::vector<Request> out;
    out.reserve(count);
    Tick when = start;
    for (std::size_t i = 0; i < count; ++i) {
        when += secToTicks(rng.exponential(ratePerSec));
        Request r;
        r.id = nextId++;
        r.arrival = when;
        r.promptTokens = lengths.samplePromptTokens();
        r.maxNewTokens = lengths.sampleOutputTokens();
        stampSlo(r);
        out.push_back(r);
    }
    return out;
}

std::vector<Request>
TraceBuilder::bursty(double quietRate, double burstRate,
                     double phaseSec, std::size_t count, Tick start)
{
    std::vector<Request> out;
    out.reserve(count);
    Tick when = start;
    Tick phase = secToTicks(phaseSec);
    for (std::size_t i = 0; i < count; ++i) {
        // Phase is determined by absolute time: even windows quiet,
        // odd windows bursting.
        bool bursting = ((when - start) / phase) % 2 == 1;
        double rate = bursting ? burstRate : quietRate;
        when += secToTicks(rng.exponential(rate));
        Request r;
        r.id = nextId++;
        r.arrival = when;
        r.promptTokens = lengths.samplePromptTokens();
        r.maxNewTokens = lengths.sampleOutputTokens();
        stampSlo(r);
        out.push_back(r);
    }
    return out;
}

std::vector<Request>
TraceBuilder::codeSummary(double ratePerSec, std::size_t count,
                          Tick start)
{
    std::vector<Request> out;
    out.reserve(count);
    Tick when = start;
    for (std::size_t i = 0; i < count; ++i) {
        when += secToTicks(rng.exponential(ratePerSec));
        Request r;
        r.id = nextId++;
        r.arrival = when;
        // Python files from the authors' codebase.
        r.promptTokens = static_cast<std::uint32_t>(
            rng.uniformInt(200, 600));
        // Detailed summaries.
        r.maxNewTokens = static_cast<std::uint32_t>(
            rng.uniformInt(256, 512));
        stampSlo(r);
        out.push_back(r);
    }
    return out;
}

std::vector<Request>
TraceBuilder::lora(double ratePerSec, std::size_t count,
                   std::uint32_t numAdapters, Tick start)
{
    std::vector<Request> out = interactive(ratePerSec, count, start);
    for (Request &r : out) {
        r.adapter = static_cast<model::LoraId>(
            rng.uniformInt(0, static_cast<std::int64_t>(numAdapters) - 1));
    }
    return out;
}

std::vector<Request>
TraceBuilder::sharedPrefix(double ratePerSec, std::size_t count,
                           std::uint32_t prefixTokens,
                           std::uint32_t numGroups, Tick start)
{
    std::vector<Request> out;
    out.reserve(count);
    Tick when = start;
    for (std::size_t i = 0; i < count; ++i) {
        when += secToTicks(rng.exponential(ratePerSec));
        Request r;
        r.id = nextId++;
        r.arrival = when;
        std::uint32_t group = numGroups <= 1
            ? 0
            : static_cast<std::uint32_t>(rng.uniformInt(
                  0, static_cast<std::int64_t>(numGroups) - 1));
        r.prefixStream = contentStreamId(0x5e5751ull + group);
        r.prefixTokens = prefixTokens;
        r.promptTokens = prefixTokens + lengths.samplePromptTokens();
        r.maxNewTokens = lengths.sampleOutputTokens();
        stampSlo(r);
        out.push_back(r);
    }
    return out;
}

std::vector<Request>
TraceBuilder::loraPreamble(double ratePerSec, std::size_t count,
                           std::uint32_t numAdapters,
                           std::uint32_t preambleTokens, Tick start)
{
    std::vector<Request> out = lora(ratePerSec, count, numAdapters,
                                    start);
    for (Request &r : out) {
        r.prefixStream = contentStreamId(
            0xada0000ull + static_cast<std::uint64_t>(r.adapter));
        r.prefixTokens = preambleTokens;
        r.promptTokens += preambleTokens;
    }
    return out;
}

Request
TraceBuilder::longPrompt(std::uint32_t promptTokens,
                         std::uint32_t maxNewTokens, Tick arrival)
{
    Request r;
    r.id = nextId++;
    r.arrival = arrival;
    r.promptTokens = promptTokens;
    r.maxNewTokens = maxNewTokens;
    return r;
}

namespace {

/** Content streams for chatbot conversations and system prompts. */
std::uint64_t
chatUserStream(std::uint32_t userId)
{
    return contentStreamId(0xc4a7b07ull + userId);
}

constexpr std::uint64_t kChatSystemTag = 0x5e57c4a7ull;

/** Tag a request's tokens as one user's conversation, optionally
 *  opened by the shared system prompt. */
void
tagChatStreams(Request &r, std::uint32_t userId,
               std::uint32_t systemPromptTokens)
{
    r.contentStream = chatUserStream(userId);
    if (systemPromptTokens > 0) {
        r.prefixStream = contentStreamId(kChatSystemTag);
        r.prefixTokens = systemPromptTokens;
    }
}

} // anonymous namespace

std::vector<Request>
TraceBuilder::chatbotFirstTurn(std::uint32_t users, Tick start,
                               std::uint32_t systemPromptTokens)
{
    std::vector<Request> out;
    out.reserve(users);
    for (std::uint32_t u = 0; u < users; ++u) {
        Request r;
        r.id = nextId++;
        // Users arrive within a short window at session start.
        r.arrival = start + secToTicks(rng.uniform(0.0, 2.0));
        // Code-assistant conversations: code-sized prompts and
        // detailed answers (the paper chats with Codellama-34B, §8).
        r.promptTokens = systemPromptTokens + static_cast<std::uint32_t>(
            rng.uniformInt(200, 600));
        r.maxNewTokens = static_cast<std::uint32_t>(
            rng.uniformInt(256, 512));
        r.userId = u;
        r.turn = 0;
        tagChatStreams(r, u, systemPromptTokens);
        stampIdle(r);
        out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const Request &a, const Request &b) {
                  return a.arrival < b.arrival;
              });
    return out;
}

Request
TraceBuilder::chatbotFollowUp(std::uint32_t userId, std::uint32_t turn,
                              Tick arrival,
                              std::uint32_t historyTokens,
                              std::uint32_t systemPromptTokens)
{
    Request r;
    r.id = nextId++;
    // Think time before the user replies (Poisson-distributed issue
    // times per the paper's chatbot experiment, §8).
    r.arrival = arrival + secToTicks(rng.exponential(1.0 / 3.0));
    // The conversation so far is re-sent as part of the prompt.
    r.promptTokens = historyTokens + static_cast<std::uint32_t>(
        rng.uniformInt(200, 600));
    r.maxNewTokens = static_cast<std::uint32_t>(
        rng.uniformInt(256, 512));
    r.userId = userId;
    r.turn = turn;
    tagChatStreams(r, userId, systemPromptTokens);
    stampIdle(r);
    return r;
}

} // namespace aqua::workload
