#include "mem/region_allocator.hh"

#include "sim/logging.hh"

namespace aqua::mem {

using aqua::sim::panic;

RegionAllocator::RegionAllocator(std::uint64_t capacity,
                                 std::uint64_t alignment)
    : cap(capacity), align(alignment)
{
    if (align == 0 || (align & (align - 1)) != 0)
        panic("RegionAllocator: alignment must be a power of two");
    if (cap > 0)
        freeRanges[0] = cap;
}

std::uint64_t
RegionAllocator::roundUp(std::uint64_t size) const
{
    if (size == 0)
        size = 1;
    return (size + align - 1) & ~(align - 1);
}

std::optional<Region>
RegionAllocator::allocate(std::uint64_t size)
{
    std::uint64_t need = roundUp(size);
    for (auto it = freeRanges.begin(); it != freeRanges.end(); ++it) {
        if (it->second < need)
            continue;
        std::uint64_t addr = it->first;
        std::uint64_t remaining = it->second - need;
        freeRanges.erase(it);
        if (remaining > 0)
            freeRanges[addr + need] = remaining;
        live[addr] = need;
        used += need;
        return Region{addr, need};
    }
    return std::nullopt;
}

void
RegionAllocator::free(const Region &region)
{
    free(region.addr);
}

void
RegionAllocator::free(std::uint64_t addr)
{
    auto it = live.find(addr);
    if (it == live.end())
        panic("RegionAllocator::free: unknown address %llu "
              "(double free?)", static_cast<unsigned long long>(addr));
    std::uint64_t size = it->second;
    live.erase(it);
    used -= size;

    // Insert and coalesce with neighbours.
    auto [pos, inserted] = freeRanges.emplace(addr, size);
    if (!inserted)
        panic("RegionAllocator::free: free range already present");
    // Merge with the next range.
    auto next = std::next(pos);
    if (next != freeRanges.end() && pos->first + pos->second == next->first) {
        pos->second += next->second;
        freeRanges.erase(next);
    }
    // Merge with the previous range.
    if (pos != freeRanges.begin()) {
        auto prev = std::prev(pos);
        if (prev->first + prev->second == pos->first) {
            prev->second += pos->second;
            freeRanges.erase(pos);
        }
    }
}

std::uint64_t
RegionAllocator::largestFreeRange() const
{
    std::uint64_t best = 0;
    for (const auto &[addr, size] : freeRanges)
        best = size > best ? size : best;
    return best;
}

double
RegionAllocator::fragmentation() const
{
    std::uint64_t free_total = freeBytes();
    if (free_total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(largestFreeRange()) /
                 static_cast<double>(free_total);
}

} // namespace aqua::mem
