/**
 * @file
 * Fixed-size block allocator, modelling vLLM's paged KV-cache pool.
 *
 * The KV cache of each sequence is a list of fixed-size blocks (pages);
 * paged allocation is what lets vLLM admit sequences without reserving
 * worst-case contiguous memory, and what AQUA's scatter/gather staging
 * must cope with (many small scattered blocks per sequence).
 *
 * Blocks are reference counted so prefix-cached KV blocks can be
 * shared copy-on-write between sequences: allocate() hands out a block
 * with refcount 1, ref() adds a borrower, and free() only returns the
 * block to the pool when the count drops to zero.
 */

#ifndef AQUA_MEM_BLOCK_ALLOCATOR_HH
#define AQUA_MEM_BLOCK_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace aqua::mem {

/** Index of a block within a BlockAllocator's pool. */
using BlockId = std::uint32_t;

/**
 * Pool of equal-size refcounted blocks with O(1) allocate/free.
 */
class BlockAllocator
{
  public:
    /**
     * @param totalBytes Bytes managed by the pool.
     * @param blockBytes Size of one block; must divide into >= 1 block.
     */
    BlockAllocator(std::uint64_t totalBytes, std::uint64_t blockBytes);

    std::uint64_t blockSize() const { return blockBytes; }

    /** Live pool size: configured blocks minus retired ones. */
    std::size_t
    totalBlocks() const
    {
        return numBlocks - retiredList.size();
    }

    std::size_t freeBlocks() const { return freeList.size(); }

    std::size_t
    usedBlocks() const
    {
        return totalBlocks() - freeList.size();
    }
    std::uint64_t freeBytes() const { return freeBlocks() * blockBytes; }
    std::uint64_t usedBytes() const { return usedBlocks() * blockBytes; }

    /** Blocks needed to hold @p bytes. */
    std::size_t blocksFor(std::uint64_t bytes) const;

    /** Whether @p count blocks can be allocated right now. */
    bool canAllocate(std::size_t count) const;

    /** Allocate one block (refcount 1). @return nullopt when exhausted. */
    std::optional<BlockId> allocate();

    /**
     * Allocate @p count blocks atomically: all or nothing.
     *
     * @return The block ids, or nullopt if fewer than @p count are free.
     */
    std::optional<std::vector<BlockId>> allocateMany(std::size_t count);

    /** Add a reference to a live block (a CoW borrower). */
    void ref(BlockId id);

    /**
     * Drop one reference; the block returns to the free list only when
     * the count reaches zero. Panics on over-free / bad id.
     */
    void free(BlockId id);

    /** Drop one reference on each block of a batch. */
    void freeMany(const std::vector<BlockId> &ids);

    /** References held on a block (0 = free or retired). */
    std::uint32_t
    refCount(BlockId id) const
    {
        return id < numBlocks ? refs[id] : 0;
    }

    /** Live blocks with more than one reference (shared). */
    std::size_t sharedBlocks() const { return numShared; }

    /**
     * Shrink or grow the pool (AQUA producers donate KV-pool memory by
     * shrinking; they reclaim by growing back). Shrinking requires the
     * removed blocks to be free.
     *
     * @param newTotalBlocks Desired pool size in blocks.
     * @retval true Resize succeeded.
     * @retval false Not enough free blocks to shrink that far.
     */
    bool resize(std::size_t newTotalBlocks);

    /**
     * Retire up to @p count free blocks from the pool, regardless of
     * their position — the serving engine is assumed to compact live
     * blocks first ("copying the scattered allocated blocks to a
     * temporary location to free up the reserved memory", §B.1).
     * Retired blocks can be brought back with restore(). Only blocks
     * with refcount zero (i.e. on the free list) are eligible; a
     * shared block can never be retired out from under its borrowers.
     *
     * @return Blocks actually retired (bounded by freeBlocks()).
     */
    std::size_t retire(std::size_t count);

    /**
     * Return up to @p count previously retired blocks to the pool.
     *
     * @return Blocks actually restored.
     */
    std::size_t restore(std::size_t count);

    /** Number of currently retired blocks. */
    std::size_t retiredBlocks() const { return retiredList.size(); }

  private:
    std::uint64_t blockBytes;
    std::size_t numBlocks;
    std::size_t numShared = 0;
    std::vector<BlockId> freeList;
    std::vector<BlockId> retiredList;
    /** Per-block reference count; 0 = free (or retired). */
    std::vector<std::uint32_t> refs;
};

} // namespace aqua::mem

#endif // AQUA_MEM_BLOCK_ALLOCATOR_HH
