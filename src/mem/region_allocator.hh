/**
 * @file
 * First-fit byte-range allocator with free-list coalescing.
 *
 * Models the general-purpose region of a GPU's HBM (weights, LoRA
 * adapters, staging buffers, leased offload regions). Addresses are
 * simulated offsets within the device; nothing is backed by real
 * storage, but sizes, fragmentation and failure behaviour are exact.
 */

#ifndef AQUA_MEM_REGION_ALLOCATOR_HH
#define AQUA_MEM_REGION_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <optional>

namespace aqua::mem {

/** A contiguous allocated range. */
struct Region
{
    std::uint64_t addr = 0;
    std::uint64_t size = 0;
};

/**
 * First-fit allocator over [0, capacity).
 *
 * Free ranges are kept in an address-ordered map so adjacent ranges
 * coalesce on free. Allocation granularity is configurable (default
 * 256 B, matching CUDA's allocation alignment).
 */
class RegionAllocator
{
  public:
    /**
     * @param capacity Total bytes managed.
     * @param alignment Allocation granularity; must be a power of two.
     */
    explicit RegionAllocator(std::uint64_t capacity,
                             std::uint64_t alignment = 256);

    /**
     * Allocate @p size bytes (rounded up to the alignment).
     *
     * @return The region, or std::nullopt when no free range fits.
     */
    std::optional<Region> allocate(std::uint64_t size);

    /**
     * Free a previously allocated region.
     * Freeing an unknown address panics (double-free detection).
     */
    void free(const Region &region);

    /** Shorthand: free by address. */
    void free(std::uint64_t addr);

    std::uint64_t capacity() const { return cap; }
    std::uint64_t usedBytes() const { return used; }
    std::uint64_t freeBytes() const { return cap - used; }

    /** Size of the largest contiguous free range. */
    std::uint64_t largestFreeRange() const;

    /** Number of discontiguous free ranges (fragmentation proxy). */
    std::size_t freeRangeCount() const { return freeRanges.size(); }

    /** Number of live allocations. */
    std::size_t allocationCount() const { return live.size(); }

    /**
     * External fragmentation metric in [0, 1]:
     * 1 - largestFreeRange / freeBytes (0 when fully coalesced).
     */
    double fragmentation() const;

  private:
    std::uint64_t roundUp(std::uint64_t size) const;

    std::uint64_t cap;
    std::uint64_t align;
    std::uint64_t used = 0;
    /** addr -> size of free ranges, address ordered. */
    std::map<std::uint64_t, std::uint64_t> freeRanges;
    /** addr -> size of live allocations. */
    std::map<std::uint64_t, std::uint64_t> live;
};

} // namespace aqua::mem

#endif // AQUA_MEM_REGION_ALLOCATOR_HH
