#include "mem/block_allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aqua::mem {

using aqua::sim::panic;

BlockAllocator::BlockAllocator(std::uint64_t totalBytes,
                               std::uint64_t blockBytes)
    : blockBytes(blockBytes)
{
    if (blockBytes == 0)
        panic("BlockAllocator: zero block size");
    numBlocks = static_cast<std::size_t>(totalBytes / blockBytes);
    refs.assign(numBlocks, 0);
    freeList.reserve(numBlocks);
    // Push in reverse so blocks are handed out in ascending order.
    for (std::size_t i = numBlocks; i-- > 0;)
        freeList.push_back(static_cast<BlockId>(i));
}

std::size_t
BlockAllocator::blocksFor(std::uint64_t bytes) const
{
    return static_cast<std::size_t>((bytes + blockBytes - 1) / blockBytes);
}

bool
BlockAllocator::canAllocate(std::size_t count) const
{
    return freeList.size() >= count;
}

std::optional<BlockId>
BlockAllocator::allocate()
{
    if (freeList.empty())
        return std::nullopt;
    BlockId id = freeList.back();
    freeList.pop_back();
    refs[id] = 1;
    return id;
}

std::optional<std::vector<BlockId>>
BlockAllocator::allocateMany(std::size_t count)
{
    if (!canAllocate(count))
        return std::nullopt;
    std::vector<BlockId> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        BlockId id = freeList.back();
        freeList.pop_back();
        refs[id] = 1;
        out.push_back(id);
    }
    return out;
}

void
BlockAllocator::ref(BlockId id)
{
    if (id >= numBlocks)
        panic("BlockAllocator::ref: bad block id %u", id);
    if (refs[id] == 0)
        panic("BlockAllocator::ref: block %u is not allocated", id);
    if (++refs[id] == 2)
        ++numShared;
}

void
BlockAllocator::free(BlockId id)
{
    if (id >= numBlocks)
        panic("BlockAllocator::free: bad block id %u", id);
    if (refs[id] == 0)
        panic("BlockAllocator::free: double free of block %u", id);
    if (refs[id] == 2)
        --numShared;
    if (--refs[id] == 0)
        freeList.push_back(id);
}

void
BlockAllocator::freeMany(const std::vector<BlockId> &ids)
{
    for (BlockId id : ids)
        free(id);
}

std::size_t
BlockAllocator::retire(std::size_t count)
{
    std::size_t retired = 0;
    while (retired < count && !freeList.empty()) {
        BlockId id = freeList.back();
        // Free-list membership implies no references; a shared block
        // (refcount > 1) must never be donated away from its borrowers.
        if (refs[id] != 0) {
            panic("BlockAllocator::retire: block %u on free list with "
                  "%u refs", id, refs[id]);
        }
        retiredList.push_back(id);
        freeList.pop_back();
        ++retired;
    }
    return retired;
}

std::size_t
BlockAllocator::restore(std::size_t count)
{
    std::size_t restored = 0;
    while (restored < count && !retiredList.empty()) {
        freeList.push_back(retiredList.back());
        retiredList.pop_back();
        ++restored;
    }
    return restored;
}

bool
BlockAllocator::resize(std::size_t newTotalBlocks)
{
    if (newTotalBlocks >= numBlocks) {
        // Grow: append fresh blocks to the pool and free list.
        refs.resize(newTotalBlocks, 0);
        for (std::size_t i = numBlocks; i < newTotalBlocks; ++i)
            freeList.push_back(static_cast<BlockId>(i));
        numBlocks = newTotalBlocks;
        return true;
    }
    // Shrink: the removed tail must consist entirely of free blocks.
    std::size_t removing = numBlocks - newTotalBlocks;
    if (freeList.size() < removing)
        return false;
    // The free list is unordered; verify the specific tail blocks are
    // free (the donated region must be a contiguous tail so the engine
    // can hand one region to AQUA, mirroring the paper's defrag copy).
    for (std::size_t i = newTotalBlocks; i < numBlocks; ++i) {
        if (refs[i] != 0)
            return false;
    }
    std::erase_if(freeList, [&](BlockId id) {
        return id >= newTotalBlocks;
    });
    refs.resize(newTotalBlocks);
    numBlocks = newTotalBlocks;
    return true;
}

} // namespace aqua::mem
