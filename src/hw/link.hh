/**
 * @file
 * Analytic link model with size-dependent effective bandwidth.
 *
 * Fig. 3a of the paper shows that NVLink bandwidth between two A100s is
 * "very low for smaller buffer sizes and increases only at higher
 * buffer sizes, e.g. it reaches 100 GB/s at 2 MB" with a 250 GB/s peak.
 * We model transfer time as
 *
 *     time(bytes) = latency + (bytes + ramp) / peak
 *
 * which yields an effective bandwidth of peak * bytes / (bytes + ramp):
 * half the peak at the ramp size, asymptotically approaching the peak.
 * This single curve reproduces both the small-transfer penalty that
 * motivates AQUA's scatter/gather staging and the large-transfer
 * advantage of NVLink over PCIe.
 */

#ifndef AQUA_HW_LINK_HH
#define AQUA_HW_LINK_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace aqua::hw {

/**
 * A unidirectional point-to-point transport (one NVLink direction, one
 * PCIe direction, or one NVSwitch port direction).
 */
class Link
{
  public:
    /**
     * @param name Diagnostic name.
     * @param peakBandwidth Asymptotic bandwidth in bytes/second.
     * @param rampBytes Transfer size achieving half the peak.
     * @param latency Fixed per-transfer latency.
     */
    Link(std::string name, double peakBandwidth,
         std::uint64_t rampBytes, aqua::sim::Tick latency);

    const std::string &name() const { return _name; }
    double peakBandwidth() const { return peak; }
    std::uint64_t rampBytes() const { return ramp; }
    aqua::sim::Tick latency() const { return lat; }

    /** Effective bandwidth (bytes/second) for a transfer of @p bytes. */
    double effectiveBandwidth(std::uint64_t bytes) const;

    /** Occupancy time of one transfer of @p bytes (includes latency). */
    aqua::sim::Tick transferTime(std::uint64_t bytes) const;

    /**
     * Occupancy time of @p count back-to-back transfers of @p bytes
     * each — the cost of naively copying many scattered chunks, which
     * AQUA's staging avoids.
     */
    aqua::sim::Tick transferTimeChunked(std::uint64_t bytes,
                                        std::uint64_t count) const;

  private:
    std::string _name;
    double peak;
    std::uint64_t ramp;
    aqua::sim::Tick lat;
};

} // namespace aqua::hw

#endif // AQUA_HW_LINK_HH
