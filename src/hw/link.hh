/**
 * @file
 * Analytic link model with size-dependent effective bandwidth.
 *
 * Fig. 3a of the paper shows that NVLink bandwidth between two A100s is
 * "very low for smaller buffer sizes and increases only at higher
 * buffer sizes, e.g. it reaches 100 GB/s at 2 MB" with a 250 GB/s peak.
 * We model the effective bandwidth as a piecewise ramp in
 * log2(transfer size) — geometrically interpolated between
 * calibration anchors expressed relative to the link's half-peak
 * ("ramp") size:
 *
 *     size          fraction of peak
 *     ramp/4096     0.002   (small-transfer floor below this)
 *     ramp/64       0.015
 *     ramp/8        0.11
 *     2*ramp/3      0.4     (Fig. 3a: 100 GB/s at 2 MB, ramp = 3 MiB)
 *     ramp          0.5     (definition of the ramp size)
 *     8*ramp        0.9
 *     64*ramp       1.0     (saturation: peak at and above this)
 *
 * The curve is monotonic non-decreasing in transfer size, pinned to the
 * paper's measured 100 GB/s @ 2 MB point, and reproduces both the
 * small-transfer penalty that motivates AQUA's scatter/gather staging
 * and the large-transfer advantage of NVLink over PCIe. A ramp of zero
 * degenerates to an ideal link that runs at peak for every size.
 *
 * Transfer time is latency + bytes / effectiveBandwidth(bytes), so the
 * curve is the single source of truth for every transfer the simulator
 * costs.
 */

#ifndef AQUA_HW_LINK_HH
#define AQUA_HW_LINK_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace aqua::hw {

/**
 * A unidirectional point-to-point transport (one NVLink direction, one
 * PCIe direction, or one NVSwitch port direction).
 */
class Link
{
  public:
    /**
     * Fraction of peak bandwidth that the smallest transfers achieve
     * (the floor of the ramp, at and below floorBytes()).
     */
    static constexpr double smallTransferFraction = 0.002;

    /** Saturation size as a multiple of the ramp size. */
    static constexpr std::uint64_t saturationRampMultiple = 64;

    /**
     * @param name Diagnostic name.
     * @param peakBandwidth Asymptotic bandwidth in bytes/second.
     * @param rampBytes Transfer size achieving half the peak; zero
     *                  models an ideal size-independent link.
     * @param latency Fixed per-transfer latency.
     */
    Link(std::string name, double peakBandwidth,
         std::uint64_t rampBytes, aqua::sim::Tick latency);

    const std::string &name() const { return _name; }
    double peakBandwidth() const { return peak; }
    std::uint64_t rampBytes() const { return ramp; }
    aqua::sim::Tick latency() const { return lat; }

    /** Size at and below which the small-transfer floor applies. */
    std::uint64_t floorBytes() const { return ramp / 4096; }

    /** Size at and above which transfers run at the full peak. */
    std::uint64_t saturationBytes() const
    {
        return saturationRampMultiple * ramp;
    }

    /**
     * Fault surface: scale every effective bandwidth by @p factor in
     * (0, 1]. 1.0 restores the healthy link. Composes with the size
     * ramp — a degraded link keeps its shape, so small transfers are
     * hurt proportionally, not just the peak.
     */
    void setDegradation(double factor);

    /** Current degradation factor (1.0 when healthy). */
    double degradation() const { return degrade; }

    /** Effective bandwidth (bytes/second) for a transfer of @p bytes. */
    double effectiveBandwidth(std::uint64_t bytes) const;

    /** Occupancy time of one transfer of @p bytes (includes latency). */
    aqua::sim::Tick transferTime(std::uint64_t bytes) const;

    /**
     * Occupancy time of @p count back-to-back transfers of @p bytes
     * each — the cost of naively copying many scattered chunks, which
     * AQUA's staging avoids.
     */
    aqua::sim::Tick transferTimeChunked(std::uint64_t bytes,
                                        std::uint64_t count) const;

  private:
    std::string _name;
    double peak;
    std::uint64_t ramp;
    aqua::sim::Tick lat;
    double degrade = 1.0;
};

} // namespace aqua::hw

#endif // AQUA_HW_LINK_HH
