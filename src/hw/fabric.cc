#include "hw/fabric.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aqua::hw {

using aqua::sim::Tick;
using aqua::sim::panic;

Fabric::Fabric(aqua::sim::Simulation &sim, std::size_t numServers,
               FabricConfig config)
    : sim(sim), cfg(config),
      wire("fabric", config.nicBandwidth, config.rampBytes,
           config.latency)
{
    if (numServers < 2)
        panic("Fabric: need at least 2 servers, got %zu", numServers);
    if (cfg.oversubscription < 1.0)
        panic("Fabric: oversubscription must be >= 1.0");
    for (std::size_t s = 0; s < numServers; ++s) {
        Nic nic;
        nic.tx = std::make_unique<Resource>(
            "fabric.nic" + std::to_string(s) + ".tx");
        nic.rx = std::make_unique<Resource>(
            "fabric.nic" + std::to_string(s) + ".rx");
        nics.push_back(std::move(nic));
    }
    std::size_t ways = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(numServers) /
                                    cfg.oversubscription));
    for (std::size_t w = 0; w < ways; ++w) {
        spine.push_back(std::make_unique<Resource>(
            "fabric.spine" + std::to_string(w)));
    }
    topologies.assign(numServers, nullptr);
}

void
Fabric::attachServer(std::size_t server, Topology &topology)
{
    if (server >= topologies.size())
        panic("Fabric: server %zu out of range", server);
    topologies[server] = &topology;
}

Topology &
Fabric::serverTopology(std::size_t server) const
{
    if (server >= topologies.size() || topologies[server] == nullptr)
        panic("Fabric: server %zu has no attached topology", server);
    return *topologies[server];
}

void
Fabric::setDegradation(double factor)
{
    wire.setDegradation(factor);
}

TransferTiming
Fabric::transfer(std::size_t srcServer, std::size_t dstServer,
                 std::uint64_t bytes, TransferCallback cb,
                 Tick earliest)
{
    if (srcServer == dstServer)
        panic("Fabric: transfer within server %zu", srcServer);
    if (srcServer >= nics.size() || dstServer >= nics.size())
        panic("Fabric: server out of range (%zu -> %zu)", srcServer,
              dstServer);
    Tick now = sim.now();
    if (earliest < now)
        earliest = now;

    // The flow needs its NIC ports and one spine way together: start
    // when all three are free, grabbing the emptiest spine way.
    Resource &tx = *nics[srcServer].tx;
    Resource &rx = *nics[dstServer].rx;
    Resource *way = spine[0].get();
    for (auto &w : spine) {
        if (w->freeAt() < way->freeAt())
            way = w.get();
    }
    Tick start = std::max(
        {earliest, tx.freeAt(), rx.freeAt(), way->freeAt()});
    Tick duration = wire.transferTime(bytes);
    tx.occupy(start, duration);
    rx.occupy(start, duration);
    way->occupy(start, duration);

    TransferTiming t{start, start + duration};
    ++counters.transfers;
    counters.bytesMoved += bytes;
    counters.queueTicks += start - earliest;
    if (cb)
        sim.queue().schedule(t.complete, std::move(cb));
    return t;
}

TransferTiming
Fabric::streamKv(std::size_t srcServer, GpuId srcGpu,
                 std::size_t dstServer, GpuId dstGpu,
                 std::uint64_t bytes, TransferCallback cb,
                 Tick earliest)
{
    Topology &src = serverTopology(srcServer);
    Topology &dst = serverTopology(dstServer);
    TransferTiming out =
        src.copy(srcGpu, hostDramId, bytes, {}, earliest);
    TransferTiming hop =
        transfer(srcServer, dstServer, bytes, {}, out.complete);
    TransferTiming in =
        dst.copy(hostDramId, dstGpu, bytes, std::move(cb),
                 hop.complete);
    return {out.start, in.complete};
}

Tick
Fabric::queueBacklog(std::size_t srcServer,
                     std::size_t dstServer) const
{
    if (srcServer >= nics.size() || dstServer >= nics.size())
        panic("Fabric: server out of range (%zu -> %zu)", srcServer,
              dstServer);
    Tick now = sim.now();
    Tick wayFree = spine[0]->freeAt();
    for (const auto &w : spine)
        wayFree = std::min(wayFree, w->freeAt());
    Tick free = std::max({nics[srcServer].tx->freeAt(),
                          nics[dstServer].rx->freeAt(), wayFree});
    return free > now ? free - now : 0;
}

Tick
Fabric::streamEstimate(std::size_t srcServer, std::size_t dstServer,
                       std::uint64_t bytes) const
{
    const Topology &src = serverTopology(srcServer);
    const Topology &dst = serverTopology(dstServer);
    return src.hostTransferDuration(bytes) + wire.transferTime(bytes) +
           dst.hostTransferDuration(bytes) +
           queueBacklog(srcServer, dstServer);
}

} // namespace aqua::hw
