/**
 * @file
 * NVMe SSD device model: the storage tier below host DRAM.
 *
 * The media reuses the Link bandwidth ramp to model the
 * sequential-vs-random divide: large sequential accesses saturate the
 * drive's streaming bandwidth while small random accesses pay the
 * ramp's small-transfer penalty per chunk — the same shape that makes
 * scattered KV blocks expensive on NVLink makes them expensive on
 * flash, only the knee sits at hundreds of kilobytes instead of
 * megabytes. Parallelism is bounded by a fixed queue depth: accesses
 * spread across that many serialized channels and queue behind each
 * other once the depth is saturated, which is what caps random-read
 * throughput on real drives.
 *
 * The device is purely analytic (busy-until horizons, no events), so
 * callers chain its completion ticks into Topology transfers via the
 * `earliest` parameter.
 */

#ifndef AQUA_HW_SSD_HH
#define AQUA_HW_SSD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/gpu.hh"
#include "hw/link.hh"
#include "mem/region_allocator.hh"
#include "sim/random.hh"
#include "sim/ticks.hh"

namespace aqua::hw {

/** Sentinel meaning "the server's SSD", used in transfer endpoints. */
constexpr GpuId ssdId = -2;

/** Drive parameters, defaulted to a datacenter NVMe device. */
struct SsdSpec
{
    std::string name = "nvme0";
    /** Media capacity. */
    std::uint64_t capacityBytes = std::uint64_t(4096) << 30;
    /** Peak sequential read bandwidth (bytes/second). */
    double readBandwidth = 7.0e9;
    /** Peak sequential write bandwidth (bytes/second). */
    double writeBandwidth = 5.0e9;
    /**
     * Access size achieving half the peak — the sequential-vs-random
     * knee. 256 KiB puts a 4 KiB random read at ~1.5% of peak per
     * channel, matching measured QD1 random throughput.
     */
    std::uint64_t rampBytes = 256 * aqua::sim::kib;
    /** Fixed per-access read latency. */
    aqua::sim::Tick readLatency = aqua::sim::usToTicks(80.0);
    /** Fixed per-access write latency (write cache absorbs some). */
    aqua::sim::Tick writeLatency = aqua::sim::usToTicks(25.0);
    /** Concurrent accesses the controller sustains (NVMe queue depth). */
    unsigned queueDepth = 8;
};

/**
 * One SSD: capacity behind a real allocator plus an analytic timing
 * model with bounded internal parallelism and a fault surface.
 */
class Ssd
{
  public:
    explicit Ssd(SsdSpec spec = {});

    Ssd(const Ssd &) = delete;
    Ssd &operator=(const Ssd &) = delete;

    const SsdSpec &spec() const { return _spec; }
    const std::string &name() const { return _spec.name; }

    aqua::mem::RegionAllocator &allocator() { return alloc; }
    std::uint64_t capacity() const { return alloc.capacity(); }
    std::uint64_t freeBytes() const { return alloc.freeBytes(); }

    /**
     * Reserve media time for @p count read accesses of @p chunkBytes
     * each, spread across the channel pool, starting no earlier than
     * @p earliest.
     *
     * @return Completion tick of the last access.
     */
    aqua::sim::Tick read(std::uint64_t chunkBytes, std::uint64_t count,
                         aqua::sim::Tick earliest);

    /** Write-side counterpart of read(). */
    aqua::sim::Tick write(std::uint64_t chunkBytes, std::uint64_t count,
                          aqua::sim::Tick earliest);

    /**
     * Pure timing query: media time of @p count read accesses of
     * @p chunkBytes on an idle drive, ignoring queued work.
     */
    aqua::sim::Tick readDuration(std::uint64_t chunkBytes,
                                 std::uint64_t count) const;

    /** Pure timing query for writes. */
    aqua::sim::Tick writeDuration(std::uint64_t chunkBytes,
                                  std::uint64_t count) const;

    /** The read-side media bandwidth model (for ramp introspection). */
    const Link &readModel() const { return readLink; }

    /** The write-side media bandwidth model. */
    const Link &writeModel() const { return writeLink; }

    //
    // Fault surface (driven by fault::FaultInjector via Topology).
    //

    /**
     * Degrade (factor in (0, 1)) or restore (1.0) media bandwidth —
     * e.g. garbage collection, thermal throttling, or a failing die.
     * Composes with the sequential-vs-random ramp.
     */
    void setDegradation(double factor);

    /** Current degradation factor (1.0 when healthy). */
    double degradation() const { return readLink.degradation(); }

    /** Mark the whole device failed: any access afterwards panics. */
    void setFailed(bool failed) { _failed = failed; }

    /** Whether the device is currently failed. */
    bool failed() const { return _failed; }

    /** Total bytes read from media. */
    std::uint64_t bytesRead() const { return _bytesRead; }

    /** Total bytes written to media. */
    std::uint64_t bytesWritten() const { return _bytesWritten; }

    /**
     * At-rest bitrot (ssd_bitrot fault): each read-side integrity
     * draw flips with this probability while the fault window is
     * open. 0 (the default) disables the model and never advances
     * the dedicated RNG, keeping fault-free runs bit-identical.
     */
    void setBitrot(double p) { bitrotP = p; }
    double bitrot() const { return bitrotP; }

    /**
     * One integrity draw for a payload read back from media. Unlike a
     * link corruption, a hit means the *stored* copy is damaged:
     * retransmission cannot repair it, the reader must fall back to a
     * replica or recompute.
     */
    bool
    drawBitrot()
    {
        if (bitrotP <= 0.0 || !bitrotRng.bernoulli(bitrotP))
            return false;
        ++_bitrotHits;
        return true;
    }

    /** Bitrot corruptions injected so far (chaos-harness ground
     *  truth). */
    std::uint64_t bitrotCorruptions() const { return _bitrotHits; }

  private:
    /** Spread @p count accesses of @p duration over the channels. */
    aqua::sim::Tick occupyChannels(aqua::sim::Tick perAccess,
                                   std::uint64_t count,
                                   aqua::sim::Tick earliest);

    SsdSpec _spec;
    aqua::mem::RegionAllocator alloc;
    Link readLink;
    Link writeLink;
    /** One serialized lane per unit of queue depth. */
    std::vector<Resource> channels;
    bool _failed = false;
    std::uint64_t _bytesRead = 0;
    std::uint64_t _bytesWritten = 0;
    double bitrotP = 0.0;
    /** Dedicated stream (see Topology::corruptRng). */
    aqua::sim::Random bitrotRng{0xb17a07d5a4e5eed5ull};
    std::uint64_t _bitrotHits = 0;
};

} // namespace aqua::hw

#endif // AQUA_HW_SSD_HH
