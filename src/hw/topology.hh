/**
 * @file
 * Intra-server interconnect: NVLink (direct pairs or NVSwitch) between
 * GPUs and PCIe between each GPU and host DRAM.
 *
 * The paper's two testbeds map onto the two topology kinds:
 *  - a 2-GPU server with direct point-to-point NVLinks, and
 *  - an 8-GPU server where GPUs reach each other through NVSwitches.
 */

#ifndef AQUA_HW_TOPOLOGY_HH
#define AQUA_HW_TOPOLOGY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/gpu.hh"
#include "hw/link.hh"
#include "hw/ssd.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace aqua::hw {

/** Interconnect flavour between GPUs on one server. */
enum class TopologyKind
{
    /** Every GPU pair connected by dedicated NVLinks. */
    DirectP2P,
    /** All GPUs attached to an NVSwitch fabric. */
    NvSwitch,
};

/** Completion callback for an asynchronous transfer. */
using TransferCallback = std::function<void()>;

/** Result of issuing a transfer: when it starts and completes. */
struct TransferTiming
{
    aqua::sim::Tick start;
    aqua::sim::Tick complete;
};

/**
 * Routes and times data movement within one server.
 *
 * Transfers are analytic: each occupies the source's egress port and
 * the destination's ingress port for the link-model duration; the
 * caller receives a completion callback at the finish time. Port
 * serialization is what makes a producer GPU shared by multiple
 * consumers a bottleneck — the behaviour AQUA-PLACER's
 * one-producer-per-consumer rule avoids (§4).
 */
class Topology
{
  public:
    /**
     * @param sim Shared simulation.
     * @param gpus The server's GPUs (non-owning; must outlive this).
     * @param kind Interconnect flavour.
     */
    Topology(aqua::sim::Simulation &sim, std::vector<Gpu *> gpus,
             TopologyKind kind);

    TopologyKind kind() const { return _kind; }
    std::size_t numGpus() const { return gpus.size(); }

    /** The NVLink link model between two distinct GPUs. */
    const Link &peerLink() const { return nvlink; }

    /** The PCIe link model between a GPU and host DRAM. */
    const Link &hostLink() const { return pcie; }

    /**
     * Pure timing query: duration of a single peer copy of @p bytes,
     * ignoring contention.
     */
    aqua::sim::Tick peerTransferDuration(std::uint64_t bytes) const;

    /** Pure timing query for a host (PCIe) copy. */
    aqua::sim::Tick hostTransferDuration(std::uint64_t bytes) const;

    /**
     * Register the server's SSD so ssdId becomes a routable endpoint.
     * GPU↔SSD copies chain a PCIe hop with media time; DRAM↔SSD
     * copies are media-only (tier demotion/promotion below the GPUs).
     */
    void attachSsd(Ssd &ssd) { _ssd = &ssd; }

    /** The attached SSD, or nullptr when the server has none. */
    Ssd *ssd() { return _ssd; }
    const Ssd *ssd() const { return _ssd; }

    /**
     * Issue an asynchronous copy between two GPUs (peer), between a
     * GPU and host DRAM (use hostDramId as one endpoint), or to/from
     * the SSD tier (use ssdId; requires attachSsd()).
     *
     * @param src Source endpoint (GpuId, hostDramId or ssdId).
     * @param dst Destination endpoint (GpuId, hostDramId or ssdId).
     * @param bytes Transfer size.
     * @param cb Invoked at completion (may be empty).
     * @param earliest Do not start before this tick (e.g. a staging
     *                 gather must finish first); 0 means "now".
     * @return Timing of the reserved transfer.
     */
    TransferTiming copy(GpuId src, GpuId dst, std::uint64_t bytes,
                        TransferCallback cb = {},
                        aqua::sim::Tick earliest = 0);

    /**
     * Issue @p count back-to-back copies of @p chunkBytes each over the
     * same route — the unstaged scattered-copy pattern whose cost
     * motivates AQUA's gather/scatter kernels (§5).
     */
    TransferTiming copyChunked(GpuId src, GpuId dst,
                               std::uint64_t chunkBytes,
                               std::uint64_t count,
                               TransferCallback cb = {},
                               aqua::sim::Tick earliest = 0);

    /** Total bytes moved over NVLink routes. */
    std::uint64_t peerBytesMoved() const { return _peerBytes; }

    /** Total bytes moved over PCIe routes. */
    std::uint64_t hostBytesMoved() const { return _hostBytes; }

    //
    // Fault surface (driven by fault::FaultInjector).
    //

    /**
     * Degrade (factor in (0, 1)) or restore (1.0) the NVLink model's
     * bandwidth. The size-aware ramp keeps its shape; every transfer
     * issued while degraded is slower by 1/factor.
     */
    void degradePeerLink(double factor);

    /** Degrade or restore the PCIe model's bandwidth. */
    void degradeHostLink(double factor);

    /** Degrade or restore the attached SSD's media bandwidth. */
    void degradeSsd(double factor);

    /** Mark the attached SSD failed: accesses afterwards panic. */
    void markSsdFailed(bool failed);

    /** Whether the attached SSD is failed (false when none). */
    bool ssdFailed() const { return _ssd && _ssd->failed(); }

    /**
     * Mark a GPU's memory dark after its grace window: any transfer
     * that touches it afterwards panics — a correct recovery path must
     * have finished evacuating by then.
     */
    void markGpuFailed(GpuId gpu, bool failed);

    /** Whether a GPU is currently marked failed (memory dark). */
    bool gpuFailed(GpuId gpu) const;

    /**
     * In-flight payload corruption (payload_corrupt fault): each
     * link-payload integrity draw flips with this probability while
     * the fault window is open. 0 (the default) disables the model —
     * and the dedicated RNG is never advanced, so fault-free runs stay
     * bit-identical.
     */
    void setPayloadCorruption(double p) { corruptP = p; }
    double payloadCorruption() const { return corruptP; }

    /**
     * One end-to-end integrity draw for a payload that crossed a
     * link. Consumers (engine read paths, AquaLib migrations) call
     * this once per verified payload; a true return means the FNV-1a
     * signature check fails and the reader must repair or recompute.
     */
    bool
    drawPayloadCorruption()
    {
        if (corruptP <= 0.0 || !corruptRng.bernoulli(corruptP))
            return false;
        ++_payloadCorruptions;
        return true;
    }

    /** Corrupted payloads injected so far (ground truth for the
     *  chaos harness's zero-silent-corruption conservation check). */
    std::uint64_t payloadCorruptions() const { return _payloadCorruptions; }

    /** At-rest bitrot probability on the attached SSD (ssd_bitrot). */
    void
    setSsdBitrot(double p)
    {
        if (_ssd)
            _ssd->setBitrot(p);
    }

  private:
    /** Validate an endpoint id; panics on garbage. */
    void checkEndpoint(GpuId id) const;

    TransferTiming route(GpuId src, GpuId dst, std::uint64_t bytes,
                         aqua::sim::Tick duration, TransferCallback cb,
                         aqua::sim::Tick earliest);

    /** Route a copy with ssdId as one endpoint. */
    TransferTiming routeSsd(GpuId src, GpuId dst,
                            std::uint64_t chunkBytes,
                            std::uint64_t count, TransferCallback cb,
                            aqua::sim::Tick earliest);

    aqua::sim::Simulation &sim;
    std::vector<Gpu *> gpus;
    TopologyKind _kind;
    Link nvlink;
    Link pcie;
    Ssd *_ssd = nullptr;
    std::uint64_t _peerBytes = 0;
    std::uint64_t _hostBytes = 0;
    std::vector<bool> failed;
    double corruptP = 0.0;
    /** Dedicated stream so corruption draws never perturb the
     *  simulation's other randomness (twin-run determinism). */
    aqua::sim::Random corruptRng{0xc0de5eed1badf00dull};
    std::uint64_t _payloadCorruptions = 0;
};

} // namespace aqua::hw

#endif // AQUA_HW_TOPOLOGY_HH
