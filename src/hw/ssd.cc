#include "hw/ssd.hh"

#include "sim/logging.hh"

namespace aqua::hw {

using namespace aqua::sim;

Ssd::Ssd(SsdSpec spec)
    : _spec(spec), alloc(spec.capacityBytes),
      readLink(spec.name + ".read", spec.readBandwidth, spec.rampBytes,
               spec.readLatency),
      writeLink(spec.name + ".write", spec.writeBandwidth,
                spec.rampBytes, spec.writeLatency)
{
    if (_spec.queueDepth == 0)
        panic("Ssd %s: queue depth must be positive",
              _spec.name.c_str());
    channels.reserve(_spec.queueDepth);
    for (unsigned i = 0; i < _spec.queueDepth; ++i)
        channels.emplace_back(_spec.name + ".ch" + std::to_string(i));
}

Tick
Ssd::occupyChannels(Tick perAccess, std::uint64_t count, Tick earliest)
{
    // Greedy least-loaded channel assignment (ties go to the lowest
    // index, so the schedule is deterministic): accesses run
    // queueDepth-wide until the pool saturates, then queue.
    Tick complete = earliest;
    for (std::uint64_t i = 0; i < count; ++i) {
        Resource *best = &channels[0];
        for (auto &ch : channels) {
            if (ch.freeAt() < best->freeAt())
                best = &ch;
        }
        Tick done = best->occupy(earliest, perAccess);
        if (done > complete)
            complete = done;
    }
    return complete;
}

Tick
Ssd::read(std::uint64_t chunkBytes, std::uint64_t count, Tick earliest)
{
    if (_failed)
        panic("Ssd %s: read from failed device", _spec.name.c_str());
    if (count == 0)
        return earliest;
    _bytesRead += chunkBytes * count;
    return occupyChannels(readLink.transferTime(chunkBytes), count,
                          earliest);
}

Tick
Ssd::write(std::uint64_t chunkBytes, std::uint64_t count, Tick earliest)
{
    if (_failed)
        panic("Ssd %s: write to failed device", _spec.name.c_str());
    if (count == 0)
        return earliest;
    _bytesWritten += chunkBytes * count;
    return occupyChannels(writeLink.transferTime(chunkBytes), count,
                          earliest);
}

Tick
Ssd::readDuration(std::uint64_t chunkBytes, std::uint64_t count) const
{
    if (count == 0)
        return 0;
    Tick per = readLink.transferTime(chunkBytes);
    std::uint64_t rounds =
        (count + _spec.queueDepth - 1) / _spec.queueDepth;
    return per * rounds;
}

Tick
Ssd::writeDuration(std::uint64_t chunkBytes, std::uint64_t count) const
{
    if (count == 0)
        return 0;
    Tick per = writeLink.transferTime(chunkBytes);
    std::uint64_t rounds =
        (count + _spec.queueDepth - 1) / _spec.queueDepth;
    return per * rounds;
}

void
Ssd::setDegradation(double factor)
{
    readLink.setDegradation(factor);
    writeLink.setDegradation(factor);
}

} // namespace aqua::hw
