/**
 * @file
 * Static hardware description of a GPU and its attachment points.
 *
 * Calibration targets the paper's testbed: Nvidia A100-80G with NVLink
 * pairs (250 GB/s peak per Fig. 3a, ramping with transfer size) and
 * PCIe gen4 x16 to the host (~25 GB/s effective).
 */

#ifndef AQUA_HW_GPU_SPEC_HH
#define AQUA_HW_GPU_SPEC_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace aqua::hw {

/**
 * Immutable GPU hardware parameters.
 *
 * Bandwidths are effective (already derated from datasheet peaks), so
 * the performance model can use them directly.
 */
struct GpuSpec
{
    std::string name;

    /** HBM capacity in bytes. */
    std::uint64_t hbmBytes = 0;

    /** Effective HBM bandwidth in bytes/second. */
    double hbmBandwidth = 0.0;

    /** Effective dense fp16 throughput in FLOP/s. */
    double fp16Flops = 0.0;

    /** Effective PCIe bandwidth to host DRAM, bytes/second/direction. */
    double pcieBandwidth = 0.0;

    /** PCIe one-way latency. */
    aqua::sim::Tick pcieLatency = 0;

    /** Transfer size at which PCIe reaches ~half its peak bandwidth. */
    std::uint64_t pcieRampBytes = 0;

    /** NVLink peak bandwidth between a GPU pair, bytes/second. */
    double nvlinkBandwidth = 0.0;

    /** NVLink one-way latency. */
    aqua::sim::Tick nvlinkLatency = 0;

    /**
     * Transfer size at which NVLink reaches half its peak bandwidth.
     * Fig. 3a: ~100 GB/s at 2 MiB with a 250 GB/s peak => 3 MiB.
     */
    std::uint64_t nvlinkRampBytes = 0;

    /** Per-GPU aggregate NVSwitch port bandwidth cap, bytes/second. */
    double nvswitchPortBandwidth = 0.0;

    /** Fixed overhead of launching one kernel. */
    aqua::sim::Tick kernelLaunchOverhead = 0;

    /**
     * Fractional compute slowdown on a GPU while it sources or sinks a
     * peer-to-peer copy (paper measures < 5%; Fig. 3b, Fig. 11).
     */
    double copyComputeTax = 0.0;
};

/** The paper's A100-80G calibration. */
GpuSpec a100_80g();

} // namespace aqua::hw

#endif // AQUA_HW_GPU_SPEC_HH
