/**
 * @file
 * GPU device model: HBM capacity with a real allocator, a serialized
 * compute engine, and DMA ports used by the interconnect model.
 */

#ifndef AQUA_HW_GPU_HH
#define AQUA_HW_GPU_HH

#include <cstdint>
#include <string>

#include "hw/gpu_spec.hh"
#include "mem/region_allocator.hh"
#include "sim/simulation.hh"
#include "sim/ticks.hh"

namespace aqua::hw {

/** Index of a GPU within its server. */
using GpuId = int;

/** Sentinel meaning "host DRAM", used in transfer endpoints. */
constexpr GpuId hostDramId = -1;

/**
 * A serialized hardware resource tracked analytically.
 *
 * Rather than queueing an event per pipeline stage, each resource
 * remembers when it next becomes free; an occupy() reserves the first
 * feasible interval and advances that horizon. This is exact for FIFO
 * resources and keeps long simulations cheap.
 */
class Resource
{
  public:
    explicit Resource(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /** Time at which the resource next becomes free. */
    aqua::sim::Tick freeAt() const { return busyUntil; }

    /** Whether the resource is occupied at @p now. */
    bool busyAt(aqua::sim::Tick now) const { return busyUntil > now; }

    /**
     * Reserve the resource for @p duration starting no earlier than
     * @p earliest.
     *
     * @return Completion time of the reservation.
     */
    aqua::sim::Tick
    occupy(aqua::sim::Tick earliest, aqua::sim::Tick duration)
    {
        aqua::sim::Tick start =
            busyUntil > earliest ? busyUntil : earliest;
        busyUntil = start + duration;
        totalBusy += duration;
        ++occupations;
        return busyUntil;
    }

    /** Accumulated busy time. */
    aqua::sim::Tick totalBusyTime() const { return totalBusy; }

    /** Number of reservations made. */
    std::uint64_t occupationCount() const { return occupations; }

  private:
    std::string _name;
    aqua::sim::Tick busyUntil = 0;
    aqua::sim::Tick totalBusy = 0;
    std::uint64_t occupations = 0;
};

/**
 * One GPU: identity, spec, HBM allocator, compute engine and DMA ports.
 *
 * The HBM is a byte-accurate RegionAllocator; serving engines carve
 * their weight, KV-pool and staging regions out of it, and AQUA leases
 * producer regions from it.
 */
class Gpu
{
  public:
    Gpu(aqua::sim::Simulation &sim, GpuId id, const GpuSpec &spec);

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    GpuId id() const { return _id; }
    const GpuSpec &spec() const { return _spec; }
    const std::string &name() const { return _name; }

    /** The HBM allocator. */
    aqua::mem::RegionAllocator &hbm() { return _hbm; }
    const aqua::mem::RegionAllocator &hbm() const { return _hbm; }

    /** Free HBM bytes right now. */
    std::uint64_t freeHbm() const { return _hbm.freeBytes(); }

    /**
     * Submit a compute task of the given ideal duration.
     *
     * The task is serialized behind previously submitted compute. While
     * a peer copy is in flight through this GPU's NVLink ports, compute
     * runs slower by the spec's copyComputeTax (Fig. 3b / Fig. 11 show
     * this effect is small but real).
     *
     * @param duration Ideal execution time of the task.
     * @return Completion time.
     */
    aqua::sim::Tick submitCompute(aqua::sim::Tick duration);

    /**
     * Like submitCompute(), but the task may not start before
     * @p earliest (e.g. it consumes data an in-flight copy delivers).
     */
    aqua::sim::Tick submitComputeAfter(aqua::sim::Tick earliest,
                                       aqua::sim::Tick duration);

    /** Completion horizon of the compute engine. */
    aqua::sim::Tick computeFreeAt() const { return compute.freeAt(); }

    /** Accumulated compute busy time (utilization numerator). */
    aqua::sim::Tick computeBusyTime() const
    {
        return compute.totalBusyTime();
    }

    /** DMA ports; used by Topology when routing transfers. */
    Resource &nvlinkTx() { return _nvlinkTx; }
    Resource &nvlinkRx() { return _nvlinkRx; }
    Resource &pcieTx() { return _pcieTx; }
    Resource &pcieRx() { return _pcieRx; }

    /** Bytes moved through the NVLink ports (both directions). */
    std::uint64_t nvlinkBytes() const { return _nvlinkBytes; }
    /** Bytes moved through the PCIe ports (both directions). */
    std::uint64_t pcieBytes() const { return _pcieBytes; }

    /** Account transferred bytes (called by Topology). */
    void addNvlinkBytes(std::uint64_t b) { _nvlinkBytes += b; }
    void addPcieBytes(std::uint64_t b) { _pcieBytes += b; }

  private:
    aqua::sim::Simulation &sim;
    GpuId _id;
    GpuSpec _spec;
    std::string _name;
    aqua::mem::RegionAllocator _hbm;
    Resource compute;
    Resource _nvlinkTx;
    Resource _nvlinkRx;
    Resource _pcieTx;
    Resource _pcieRx;
    std::uint64_t _nvlinkBytes = 0;
    std::uint64_t _pcieBytes = 0;
};

} // namespace aqua::hw

#endif // AQUA_HW_GPU_HH
