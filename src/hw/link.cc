#include "hw/link.hh"

#include <cmath>
#include <utility>

#include "sim/logging.hh"

namespace aqua::hw {

using namespace aqua::sim;

namespace {

/**
 * Calibration anchors of the bandwidth ramp: fraction of peak reached
 * at log2(bytes / rampBytes). Interpolation between anchors is linear
 * in the log2 size, which matches the S-shape of the paper's Fig. 3a
 * measurement when plotted on a log-size axis.
 */
struct Anchor
{
    double log2Ratio;
    double fraction;
};

constexpr Anchor rampAnchors[] = {
    {-12.0, Link::smallTransferFraction}, // ramp/4096: floor
    {-6.0, 0.015},                        // ramp/64
    {-3.0, 0.11},                         // ramp/8
    {-0.5849625007211562, 0.4},           // 2*ramp/3: Fig. 3a 100 GB/s
    {0.0, 0.5},                           // ramp: half peak
    {3.0, 0.9},                           // 8*ramp
    {6.0, 1.0},                           // 64*ramp: saturation
};

constexpr std::size_t numAnchors =
    sizeof(rampAnchors) / sizeof(rampAnchors[0]);

/** Fraction of peak achieved at log2(bytes/ramp) == @p x. */
double
rampFraction(double x)
{
    if (x <= rampAnchors[0].log2Ratio)
        return rampAnchors[0].fraction;
    for (std::size_t i = 1; i < numAnchors; ++i) {
        const Anchor &lo = rampAnchors[i - 1];
        const Anchor &hi = rampAnchors[i];
        if (x <= hi.log2Ratio) {
            double t = (x - lo.log2Ratio) /
                       (hi.log2Ratio - lo.log2Ratio);
            // Geometric interpolation: constant per-doubling growth
            // within a segment, below 2x everywhere, so transfer
            // *time* stays monotone in size as well.
            return lo.fraction *
                   std::pow(hi.fraction / lo.fraction, t);
        }
    }
    return 1.0;
}

} // anonymous namespace

Link::Link(std::string name, double peakBandwidth,
           std::uint64_t rampBytes, Tick latency)
    : _name(std::move(name)), peak(peakBandwidth), ramp(rampBytes),
      lat(latency)
{
    if (peak <= 0.0)
        panic("Link %s: non-positive bandwidth", _name.c_str());
}

void
Link::setDegradation(double factor)
{
    if (!(factor > 0.0) || factor > 1.0)
        panic("Link %s: degradation factor %f out of (0, 1]",
              _name.c_str(), factor);
    degrade = factor;
}

double
Link::effectiveBandwidth(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    if (ramp == 0)
        return degrade * peak; // ideal link: size-independent
    double x = std::log2(static_cast<double>(bytes) /
                         static_cast<double>(ramp));
    return degrade * peak * rampFraction(x);
}

Tick
Link::transferTime(std::uint64_t bytes) const
{
    if (bytes == 0)
        return lat;
    double seconds =
        static_cast<double>(bytes) / effectiveBandwidth(bytes);
    return lat + secToTicks(seconds);
}

Tick
Link::transferTimeChunked(std::uint64_t bytes, std::uint64_t count) const
{
    if (count == 0)
        return 0;
    return transferTime(bytes) * count;
}

} // namespace aqua::hw
