#include "hw/link.hh"

#include <utility>

#include "sim/logging.hh"

namespace aqua::hw {

using namespace aqua::sim;

Link::Link(std::string name, double peakBandwidth,
           std::uint64_t rampBytes, Tick latency)
    : _name(std::move(name)), peak(peakBandwidth), ramp(rampBytes),
      lat(latency)
{
    if (peak <= 0.0)
        panic("Link %s: non-positive bandwidth", _name.c_str());
}

double
Link::effectiveBandwidth(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    double b = static_cast<double>(bytes);
    return peak * b / (b + static_cast<double>(ramp));
}

Tick
Link::transferTime(std::uint64_t bytes) const
{
    if (bytes == 0)
        return lat;
    double seconds =
        (static_cast<double>(bytes) + static_cast<double>(ramp)) / peak;
    return lat + secToTicks(seconds);
}

Tick
Link::transferTimeChunked(std::uint64_t bytes, std::uint64_t count) const
{
    if (count == 0)
        return 0;
    return transferTime(bytes) * count;
}

} // namespace aqua::hw
