#include "hw/gpu_spec.hh"

namespace aqua::hw {

using namespace aqua::sim;

GpuSpec
a100_80g()
{
    GpuSpec spec;
    spec.name = "A100-80G";
    spec.hbmBytes = 80 * gib;
    // 2.0 TB/s datasheet, ~80% achievable on large reads.
    spec.hbmBandwidth = 1.6e12;
    // 312 TFLOPS fp16 dense, ~60% achieved on transformer kernels.
    spec.fp16Flops = 187e12;
    // PCIe gen4 x16: 32 GB/s raw, ~25 GB/s effective.
    spec.pcieBandwidth = 25e9;
    spec.pcieLatency = usToTicks(2.0);
    spec.pcieRampBytes = 256 * kib;
    // Fig. 3a: 250 GB/s peak for this A100 generation.
    spec.nvlinkBandwidth = 250e9;
    spec.nvlinkLatency = usToTicks(1.0);
    // Fig. 3a: 100 GB/s at 2 MiB => half-speed point at 3 MiB.
    spec.nvlinkRampBytes = 3 * mib;
    // NVSwitch gives each A100 600 GB/s of aggregate port bandwidth.
    spec.nvswitchPortBandwidth = 600e9;
    spec.kernelLaunchOverhead = usToTicks(8.0);
    spec.copyComputeTax = 0.03;
    return spec;
}

} // namespace aqua::hw
