#include "hw/gpu.hh"

namespace aqua::hw {

using namespace aqua::sim;

Gpu::Gpu(Simulation &sim, GpuId id, const GpuSpec &spec)
    : sim(sim), _id(id), _spec(spec),
      _name(spec.name + "#" + std::to_string(id)),
      _hbm(spec.hbmBytes),
      compute(_name + ".compute"),
      _nvlinkTx(_name + ".nvlink.tx"),
      _nvlinkRx(_name + ".nvlink.rx"),
      _pcieTx(_name + ".pcie.tx"),
      _pcieRx(_name + ".pcie.rx")
{
}

Tick
Gpu::submitCompute(Tick duration)
{
    return submitComputeAfter(0, duration);
}

Tick
Gpu::submitComputeAfter(Tick earliest, Tick duration)
{
    Tick now = sim.now();
    if (earliest > now)
        now = earliest;
    Tick effective = duration;
    // Peer copies steal a small fraction of SM cycles on the GPUs they
    // traverse; the paper measures the impact at < 5% (Fig. 3b).
    if (_nvlinkTx.busyAt(now) || _nvlinkRx.busyAt(now)) {
        effective = static_cast<Tick>(
            static_cast<double>(duration) *
            (1.0 + _spec.copyComputeTax));
    }
    return compute.occupy(now, effective);
}

} // namespace aqua::hw
