#include "hw/server.hh"

#include "sim/logging.hh"

namespace aqua::hw {

using namespace aqua::sim;

namespace {

SsdSpec
makeSsdSpec(std::uint64_t ssdBytes)
{
    SsdSpec spec;
    spec.capacityBytes = ssdBytes;
    return spec;
}

} // anonymous namespace

Server::Server(Simulation &sim, std::size_t numGpus, const GpuSpec &spec,
               TopologyKind kind, std::uint64_t dramBytes,
               std::uint64_t ssdBytes)
    : sim(sim), _dram(dramBytes), _ssd(makeSsdSpec(ssdBytes))
{
    if (numGpus == 0)
        panic("Server: need at least one GPU");
    std::vector<Gpu *> raw;
    raw.reserve(numGpus);
    for (std::size_t i = 0; i < numGpus; ++i) {
        _gpus.push_back(
            std::make_unique<Gpu>(sim, static_cast<GpuId>(i), spec));
        raw.push_back(_gpus.back().get());
    }
    topo = std::make_unique<Topology>(sim, std::move(raw), kind);
    topo->attachSsd(_ssd);
}

Cluster::Cluster(Simulation &sim, std::size_t numServers,
                 std::size_t gpusPerServer, const GpuSpec &spec,
                 TopologyKind kind)
    : perServer(gpusPerServer)
{
    for (std::size_t s = 0; s < numServers; ++s) {
        servers.push_back(
            std::make_unique<Server>(sim, gpusPerServer, spec, kind));
    }
}

} // namespace aqua::hw
