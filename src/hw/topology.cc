#include "hw/topology.hh"

#include <utility>

#include "sim/logging.hh"

namespace aqua::hw {

using namespace aqua::sim;

namespace {

Link
makeNvlinkModel(const GpuSpec &spec, TopologyKind kind)
{
    // An NVSwitch hop adds a little latency over direct NVLinks but
    // preserves the pairwise bandwidth (the paper confirms AQUA's
    // benefits extend to the switched 8-GPU server, Fig. 18).
    Tick latency = spec.nvlinkLatency;
    if (kind == TopologyKind::NvSwitch)
        latency += usToTicks(0.3);
    return Link("nvlink", spec.nvlinkBandwidth, spec.nvlinkRampBytes,
                latency);
}

Link
makePcieModel(const GpuSpec &spec)
{
    return Link("pcie", spec.pcieBandwidth, spec.pcieRampBytes,
                spec.pcieLatency);
}

} // anonymous namespace

Topology::Topology(Simulation &sim, std::vector<Gpu *> gpus,
                   TopologyKind kind)
    : sim(sim), gpus(std::move(gpus)), _kind(kind),
      nvlink(makeNvlinkModel(this->gpus.at(0)->spec(), kind)),
      pcie(makePcieModel(this->gpus.at(0)->spec())),
      failed(this->gpus.size(), false)
{
    if (this->gpus.size() < 1)
        panic("Topology: need at least one GPU");
    if (kind == TopologyKind::DirectP2P && this->gpus.size() > 2) {
        // Direct all-to-all NVLink wiring beyond 2 GPUs exists (DGX-1
        // style) but the paper's P2P testbed is the 2-GPU server.
        warn("DirectP2P topology with %zu GPUs: modelling dedicated "
             "links per pair", this->gpus.size());
    }
}

void
Topology::checkEndpoint(GpuId id) const
{
    if (id == hostDramId)
        return;
    if (id == ssdId) {
        if (!_ssd)
            panic("Topology: ssd endpoint used without attachSsd()");
        return;
    }
    if (id < 0 || static_cast<std::size_t>(id) >= gpus.size())
        panic("Topology: bad endpoint id %d", id);
}

Tick
Topology::peerTransferDuration(std::uint64_t bytes) const
{
    return nvlink.transferTime(bytes);
}

Tick
Topology::hostTransferDuration(std::uint64_t bytes) const
{
    return pcie.transferTime(bytes);
}

void
Topology::degradePeerLink(double factor)
{
    nvlink.setDegradation(factor);
}

void
Topology::degradeHostLink(double factor)
{
    pcie.setDegradation(factor);
}

void
Topology::degradeSsd(double factor)
{
    if (!_ssd)
        panic("Topology::degradeSsd: no SSD attached");
    _ssd->setDegradation(factor);
}

void
Topology::markSsdFailed(bool isFailed)
{
    if (!_ssd)
        panic("Topology::markSsdFailed: no SSD attached");
    _ssd->setFailed(isFailed);
}

void
Topology::markGpuFailed(GpuId gpu, bool isFailed)
{
    checkEndpoint(gpu);
    if (gpu == hostDramId)
        panic("Topology::markGpuFailed: host DRAM cannot fail");
    failed[gpu] = isFailed;
}

bool
Topology::gpuFailed(GpuId gpu) const
{
    if (gpu == hostDramId)
        return false;
    checkEndpoint(gpu);
    return failed[gpu];
}

TransferTiming
Topology::route(GpuId src, GpuId dst, std::uint64_t bytes,
                Tick duration, TransferCallback cb, Tick earliest_req)
{
    checkEndpoint(src);
    checkEndpoint(dst);
    if (src == dst)
        panic("Topology: src == dst (%d)", src);
    if (src != hostDramId && failed[src])
        panic("Topology: transfer from failed GPU %d (memory is dark; "
              "evacuation must beat the grace window)", src);
    if (dst != hostDramId && failed[dst])
        panic("Topology: transfer to failed GPU %d", dst);

    bool via_pcie = (src == hostDramId || dst == hostDramId);
    Tick now = sim.now();
    if (earliest_req > now)
        now = earliest_req;

    // Find the earliest instant both ports are free, then reserve the
    // same interval on each so a later transfer through either GPU
    // queues behind this one.
    Resource *src_port = nullptr;
    Resource *dst_port = nullptr;
    if (via_pcie) {
        if (src == hostDramId)
            dst_port = &gpus[dst]->pcieRx();
        else
            src_port = &gpus[src]->pcieTx();
    } else {
        src_port = &gpus[src]->nvlinkTx();
        dst_port = &gpus[dst]->nvlinkRx();
    }

    Tick earliest = now;
    if (src_port && src_port->freeAt() > earliest)
        earliest = src_port->freeAt();
    if (dst_port && dst_port->freeAt() > earliest)
        earliest = dst_port->freeAt();

    Tick complete = earliest + duration;
    if (src_port)
        src_port->occupy(earliest, duration);
    if (dst_port)
        dst_port->occupy(earliest, duration);

    if (via_pcie) {
        _hostBytes += bytes;
        if (src != hostDramId)
            gpus[src]->addPcieBytes(bytes);
        if (dst != hostDramId)
            gpus[dst]->addPcieBytes(bytes);
    } else {
        _peerBytes += bytes;
        gpus[src]->addNvlinkBytes(bytes);
        gpus[dst]->addNvlinkBytes(bytes);
    }

    if (cb)
        sim.queue().schedule(complete, std::move(cb));
    return TransferTiming{earliest, complete};
}

TransferTiming
Topology::routeSsd(GpuId src, GpuId dst, std::uint64_t chunkBytes,
                   std::uint64_t count, TransferCallback cb,
                   Tick earliest_req)
{
    checkEndpoint(src);
    checkEndpoint(dst);
    if (src == dst)
        panic("Topology: src == dst (%d)", src);

    bool reading = (src == ssdId);
    GpuId other = reading ? dst : src;
    std::uint64_t bytes = chunkBytes * count;

    Tick now = sim.now();
    if (earliest_req > now)
        now = earliest_req;

    if (other == hostDramId) {
        // Tier demotion/promotion: DRAM↔SSD moves touch only the
        // media, not the PCIe ports the GPUs compete for.
        Tick complete = reading ? _ssd->read(chunkBytes, count, now)
                                : _ssd->write(chunkBytes, count, now);
        if (cb)
            sim.queue().schedule(complete, std::move(cb));
        return TransferTiming{now, complete};
    }

    Tick pcieDuration = count <= 1
        ? pcie.transferTime(bytes)
        : pcie.transferTimeChunked(chunkBytes, count);
    if (reading) {
        // Media read first, then the PCIe hop up to the GPU.
        Tick mediaDone = _ssd->read(chunkBytes, count, now);
        TransferTiming up = route(hostDramId, other, bytes,
                                  pcieDuration, std::move(cb),
                                  mediaDone);
        return TransferTiming{now, up.complete};
    }
    // PCIe hop down to DRAM, then the media write drains behind it.
    TransferTiming down =
        route(other, hostDramId, bytes, pcieDuration, {}, now);
    Tick complete = _ssd->write(chunkBytes, count, down.complete);
    if (cb)
        sim.queue().schedule(complete, std::move(cb));
    return TransferTiming{down.start, complete};
}

TransferTiming
Topology::copy(GpuId src, GpuId dst, std::uint64_t bytes,
               TransferCallback cb, Tick earliest)
{
    if (src == ssdId || dst == ssdId)
        return routeSsd(src, dst, bytes, 1, std::move(cb), earliest);
    bool via_pcie = (src == hostDramId || dst == hostDramId);
    Tick duration = via_pcie ? pcie.transferTime(bytes)
                             : nvlink.transferTime(bytes);
    return route(src, dst, bytes, duration, std::move(cb), earliest);
}

TransferTiming
Topology::copyChunked(GpuId src, GpuId dst, std::uint64_t chunkBytes,
                      std::uint64_t count, TransferCallback cb,
                      Tick earliest)
{
    if (src == ssdId || dst == ssdId)
        return routeSsd(src, dst, chunkBytes, count, std::move(cb),
                        earliest);
    bool via_pcie = (src == hostDramId || dst == hostDramId);
    Tick duration = via_pcie
        ? pcie.transferTimeChunked(chunkBytes, count)
        : nvlink.transferTimeChunked(chunkBytes, count);
    return route(src, dst, chunkBytes * count, duration, std::move(cb),
                 earliest);
}

} // namespace aqua::hw
