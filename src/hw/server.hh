/**
 * @file
 * Multi-GPU server and cluster containers.
 */

#ifndef AQUA_HW_SERVER_HH
#define AQUA_HW_SERVER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/gpu.hh"
#include "hw/ssd.hh"
#include "hw/topology.hh"
#include "mem/region_allocator.hh"
#include "sim/simulation.hh"

namespace aqua::hw {

/** Host DRAM: capacity behind the PCIe links. */
class HostDram
{
  public:
    explicit HostDram(std::uint64_t capacity) : alloc(capacity) {}

    aqua::mem::RegionAllocator &allocator() { return alloc; }
    std::uint64_t capacity() const { return alloc.capacity(); }
    std::uint64_t freeBytes() const { return alloc.freeBytes(); }

  private:
    aqua::mem::RegionAllocator alloc;
};

/**
 * One multi-GPU server: GPUs, host DRAM, and the interconnect.
 *
 * Mirrors the paper's testbeds: makeServer(sim, 2, DirectP2P) is the
 * 2×A100 server; makeServer(sim, 8, NvSwitch) is the 8×A100 NVSwitch
 * server; both have 1 TB of DRAM.
 */
class Server
{
  public:
    /**
     * @param sim Shared simulation.
     * @param numGpus GPU count.
     * @param spec Per-GPU hardware spec (homogeneous, as in §4).
     * @param kind Interconnect flavour.
     * @param dramBytes Host DRAM capacity.
     * @param ssdBytes SSD tier capacity (default 4 TiB NVMe).
     */
    Server(aqua::sim::Simulation &sim, std::size_t numGpus,
           const GpuSpec &spec, TopologyKind kind,
           std::uint64_t dramBytes = std::uint64_t(1024) << 30,
           std::uint64_t ssdBytes = std::uint64_t(4096) << 30);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    std::size_t numGpus() const { return _gpus.size(); }
    Gpu &gpu(GpuId id) { return *_gpus.at(static_cast<std::size_t>(id)); }
    const Gpu &gpu(GpuId id) const
    {
        return *_gpus.at(static_cast<std::size_t>(id));
    }

    Topology &topology() { return *topo; }
    const Topology &topology() const { return *topo; }

    HostDram &dram() { return _dram; }

    /** The SSD storage tier below DRAM. */
    Ssd &ssd() { return _ssd; }
    const Ssd &ssd() const { return _ssd; }

    aqua::sim::Simulation &simulation() { return sim; }

  private:
    aqua::sim::Simulation &sim;
    std::vector<std::unique_ptr<Gpu>> _gpus;
    HostDram _dram;
    Ssd _ssd;
    std::unique_ptr<Topology> topo;
};

/**
 * A cluster of identical servers, the unit AQUA-PLACER plans over.
 */
class Cluster
{
  public:
    /**
     * @param sim Shared simulation.
     * @param numServers Server count.
     * @param gpusPerServer GPUs per server.
     * @param spec Per-GPU spec.
     * @param kind Per-server interconnect flavour.
     */
    Cluster(aqua::sim::Simulation &sim, std::size_t numServers,
            std::size_t gpusPerServer, const GpuSpec &spec,
            TopologyKind kind);

    std::size_t numServers() const { return servers.size(); }
    std::size_t gpusPerServer() const { return perServer; }
    std::size_t totalGpus() const { return servers.size() * perServer; }

    Server &server(std::size_t idx) { return *servers.at(idx); }

  private:
    std::size_t perServer;
    std::vector<std::unique_ptr<Server>> servers;
};

} // namespace aqua::hw

#endif // AQUA_HW_SERVER_HH
