/**
 * @file
 * Inter-server fabric model for scale-out transfers.
 *
 * Topology routes data *within* one scale-up domain (NVLink/NVSwitch +
 * PCIe); the Fabric is the slower wire *between* servers — an
 * Ethernet/InfiniBand leaf-spine abstraction carrying federation KV
 * streams. It reuses the size-aware Link bandwidth ramp (small
 * transfers land far below peak, exactly as on NVLink, only with a
 * much larger ramp size) and adds the two effects that distinguish a
 * shared datacenter network from a point-to-point link:
 *
 *  - Per-server NIC ports: each server has one egress and one ingress
 *    port modelled as busy-until resources; concurrent flows touching
 *    the same server serialize, so a popular home server is a
 *    bottleneck even when the spine is idle.
 *  - Spine oversubscription: the core carries only
 *    numServers / oversubscription concurrent flows at full rate
 *    (min 1); extra flows queue on the earliest-free spine way. An
 *    oversubscription of 1 is a non-blocking fabric.
 *
 * A federated KV stream is a three-hop chain wired through each
 * server's Topology routing: home GPU → host DRAM over the source
 * server's PCIe, NIC → NIC over the wire, host DRAM → consumer GPU
 * over the destination server's PCIe. Each hop starts when the
 * previous one lands, so intra-server port contention and fabric
 * queueing compose.
 */

#ifndef AQUA_HW_FABRIC_HH
#define AQUA_HW_FABRIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/gpu.hh"
#include "hw/link.hh"
#include "hw/topology.hh"
#include "sim/simulation.hh"

namespace aqua::hw {

/** Fabric tunables. */
struct FabricConfig
{
    /** Per-NIC peak bandwidth, bytes/second (default ~400 Gb/s). */
    double nicBandwidth = 50.0e9;
    /**
     * Transfer size reaching half the NIC peak. Much larger than the
     * NVLink ramp: RDMA setup and congestion control make small
     * messages proportionally slower on the wire.
     */
    std::uint64_t rampBytes = 32ull << 20;
    /** Fixed per-transfer wire latency (propagation + switching). */
    aqua::sim::Tick latency = 20 * aqua::sim::nsPerUs;
    /**
     * Leaf-spine oversubscription: the core admits only
     * numServers / oversubscription concurrent full-rate flows
     * (min 1). 1.0 = non-blocking.
     */
    double oversubscription = 4.0;
};

/** Counters exposed for benches and tests. */
struct FabricStats
{
    std::uint64_t transfers = 0;
    std::uint64_t bytesMoved = 0;
    /** Ticks transfers spent queued behind NIC ports or spine ways. */
    std::uint64_t queueTicks = 0;
};

/**
 * The inter-server wire. One instance per cluster.
 */
class Fabric
{
  public:
    /**
     * @param sim Shared simulation (one clock across all servers).
     * @param numServers Servers on the fabric.
     * @param config Tunables.
     */
    Fabric(aqua::sim::Simulation &sim, std::size_t numServers,
           FabricConfig config = {});

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    std::size_t numServers() const { return nics.size(); }
    const Link &wireLink() const { return wire; }
    const FabricConfig &config() const { return cfg; }
    const FabricStats &stats() const { return counters; }

    /**
     * Register a server's intra-server topology so streamKv() can
     * chain its PCIe hops. Must be called for every server before
     * streaming to or from it.
     */
    void attachServer(std::size_t server, Topology &topology);

    /** The registered topology of @p server (panics when missing). */
    Topology &serverTopology(std::size_t server) const;

    /**
     * Fault surface: scale the wire's effective bandwidth by
     * @p factor in (0, 1]. 1.0 restores the healthy fabric.
     */
    void setDegradation(double factor);

    /** Current wire degradation factor (1.0 when healthy). */
    double degradation() const { return wire.degradation(); }

    /**
     * Issue a wire-only transfer between two servers' NICs. Reserves
     * the source egress port, a spine way and the destination ingress
     * port for the wire duration.
     *
     * @param cb Invoked at completion (may be empty).
     * @param earliest Do not start before this tick; 0 = now.
     */
    TransferTiming transfer(std::size_t srcServer,
                            std::size_t dstServer, std::uint64_t bytes,
                            TransferCallback cb = {},
                            aqua::sim::Tick earliest = 0);

    /**
     * Issue a full federated KV stream: home GPU → host DRAM on the
     * source server, the wire hop, host DRAM → consumer GPU on the
     * destination server. Each hop chains on the previous one.
     * Both endpoints' topologies must be attached; a failed source
     * GPU panics (check before issuing, as Topology::copy does).
     */
    TransferTiming streamKv(std::size_t srcServer, GpuId srcGpu,
                            std::size_t dstServer, GpuId dstGpu,
                            std::uint64_t bytes,
                            TransferCallback cb = {},
                            aqua::sim::Tick earliest = 0);

    /**
     * Pure timing estimate of streamKv() for the cost model: PCIe-out
     * + wire + PCIe-in durations at current degradation, plus the
     * current queueing backlog on the path's NIC ports and the
     * emptiest spine way. No state is mutated.
     */
    aqua::sim::Tick streamEstimate(std::size_t srcServer,
                                   std::size_t dstServer,
                                   std::uint64_t bytes) const;

    /** Current backlog (ticks until free) on the path's NIC ports and
     *  the emptiest spine way; the congestion term of the estimate. */
    aqua::sim::Tick queueBacklog(std::size_t srcServer,
                                 std::size_t dstServer) const;

  private:
    struct Nic
    {
        std::unique_ptr<Resource> tx;
        std::unique_ptr<Resource> rx;
    };

    aqua::sim::Simulation &sim;
    FabricConfig cfg;
    Link wire;
    std::vector<Nic> nics;
    /** Spine ways; a transfer grabs the earliest-free one. */
    std::vector<std::unique_ptr<Resource>> spine;
    std::vector<Topology *> topologies;
    FabricStats counters;
};

} // namespace aqua::hw

#endif // AQUA_HW_FABRIC_HH
