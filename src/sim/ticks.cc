#include "sim/ticks.hh"

#include <array>
#include <cstdio>

namespace aqua::sim {

std::string
formatDuration(Tick t)
{
    char buf[64];
    if (t >= nsPerSec) {
        std::snprintf(buf, sizeof(buf), "%.3fs",
                      static_cast<double>(t) / nsPerSec);
    } else if (t >= nsPerMs) {
        std::snprintf(buf, sizeof(buf), "%.3fms",
                      static_cast<double>(t) / nsPerMs);
    } else if (t >= nsPerUs) {
        std::snprintf(buf, sizeof(buf), "%.3fus",
                      static_cast<double>(t) / nsPerUs);
    } else {
        std::snprintf(buf, sizeof(buf), "%lluns",
                      static_cast<unsigned long long>(t));
    }
    return buf;
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const std::array<const char *, 5> units = {
        "B", "KiB", "MiB", "GiB", "TiB"
    };
    double value = static_cast<double>(bytes);
    std::size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < units.size()) {
        value /= 1024.0;
        ++unit;
    }
    char buf[64];
    if (unit == 0)
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.1f%s", value, units[unit]);
    return buf;
}

} // namespace aqua::sim
