#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace aqua::sim {

Random::Random(std::uint64_t seed)
    : state(0), inc(0xda3e39cb94b95bdbULL)
{
    // Standard PCG32 seeding: advance once with the seed mixed in.
    state = 0;
    next32();
    state += seed;
    next32();
}

std::uint32_t
Random::next32()
{
    std::uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint64_t
Random::next64()
{
    return (static_cast<std::uint64_t>(next32()) << 32) | next32();
}

double
Random::uniform()
{
    // 53-bit mantissa from a 64-bit draw.
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Random::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Random::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo > hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next64());
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % span);
    std::uint64_t draw;
    do {
        draw = next64();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Random::exponential(double rate)
{
    if (rate <= 0.0)
        panic("exponential: rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u == 0.0);
    return -std::log(u) / rate;
}

double
Random::normal()
{
    if (haveSpareNormal) {
        haveSpareNormal = false;
        return spareNormal;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 == 0.0);
    u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spareNormal = radius * std::sin(theta);
    haveSpareNormal = true;
    return radius * std::cos(theta);
}

double
Random::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Random::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

std::uint64_t
Random::poisson(double mean)
{
    if (mean < 0.0)
        panic("poisson: mean must be non-negative");
    if (mean < 30.0) {
        // Knuth's multiplication method.
        double limit = std::exp(-mean);
        double product = uniform();
        std::uint64_t count = 0;
        while (product > limit) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Normal approximation for large means.
    double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool
Random::bernoulli(double p)
{
    return uniform() < p;
}

namespace {

/** splitmix64 finalizer: decorrelates structured (seed, key) mixes. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // anonymous namespace

Random
domainStream(std::uint64_t seed, std::uint32_t domain,
             std::uint32_t stream)
{
    std::uint64_t key = (static_cast<std::uint64_t>(domain) << 32) |
                        static_cast<std::uint64_t>(stream);
    return Random(mix64(mix64(seed) ^ key));
}

} // namespace aqua::sim
