/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are callbacks scheduled at absolute ticks. Events scheduled for
 * the same tick fire in schedule order (FIFO), which makes simulations
 * reproducible regardless of heap internals. Scheduled events can be
 * cancelled through the EventId token returned at schedule time.
 *
 * Same-tick ordering can additionally be controlled through a small
 * signed *band*: at one tick, lower bands fire before higher bands,
 * and within a band schedule order still applies. Bands exist for the
 * sharded simulation's cross-domain deliveries, which must fire ahead
 * of same-tick local events in an order that does not depend on when
 * the delivery was enqueued (see sharded_sim.hh).
 */

#ifndef AQUA_SIM_EVENT_QUEUE_HH
#define AQUA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/ticks.hh"

namespace aqua::sim {

/** Opaque handle identifying a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel EventId meaning "no event". */
constexpr EventId invalidEventId = 0;

/**
 * Priority queue of timed callbacks with a simulated clock.
 *
 * The queue owns the notion of "now": the timestamp of the event that is
 * currently firing (or the last one that fired). Scheduling in the past
 * is a programming error and panics.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Pre-size the heap (and cancellation table) for @p events. */
    void reserve(std::size_t events);

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute simulated time; must be >= now().
     * @param cb Callback to fire.
     * @return Token that can be passed to cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /**
     * Schedule into an explicit same-tick band.
     *
     * At equal ticks, all band-b events fire before any band-(b+1)
     * events regardless of schedule order; FIFO applies within a
     * band. Plain schedule() uses band 0.
     */
    EventId schedule(Tick when, int band, Callback cb);

    /** Schedule a callback @p delay ticks after now(). */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Cancel a previously scheduled event.
     *
     * @retval true The event was pending and has been cancelled.
     * @retval false The event already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Whether any events remain pending. */
    bool empty() const { return numPending == 0; }

    /** Number of pending (not cancelled) events. */
    std::size_t pending() const { return numPending; }

    /**
     * Timestamp of the earliest pending event, or maxTick when the
     * queue is empty. Used by the sharded executor to size its
     * synchronization windows without firing anything.
     */
    Tick nextEventTick();

    /**
     * Run events until the queue drains.
     *
     * @return Number of events fired.
     */
    std::size_t run();

    /**
     * Run events with timestamps <= @p limit; afterwards now() == limit
     * (unless the queue drained at an earlier time, in which case now()
     * is still advanced to @p limit so follow-on scheduling is sane).
     *
     * @return Number of events fired.
     */
    std::size_t runUntil(Tick limit);

    /** Fire exactly one event if one is pending. @return true if fired. */
    bool step();

    /** Total events fired over the queue's lifetime. */
    std::uint64_t fired() const { return numFired; }

  private:
    struct Entry
    {
        Tick when;
        int band;
        std::uint64_t seq;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.band != b.band)
                return a.band > b.band;
            return a.seq > b.seq;
        }
    };

    /** Pop cancelled entries off the heap top. */
    void skipCancelled();

    /** Move the earliest entry out of the heap (must be non-empty). */
    Entry popTop();

    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    EventId nextId = 1;
    std::size_t numPending = 0;
    std::uint64_t numFired = 0;
    /**
     * Binary min-heap on (when, seq) kept by std::push_heap /
     * std::pop_heap over a plain vector. Compared to
     * std::priority_queue this lets pops MOVE the callback out
     * (top() only exposes a const reference, forcing a copy of the
     * std::function and its captures on every fire) and lets the
     * backing storage be reserved up front.
     */
    std::vector<Entry> heap;
    /** Ids cancelled while still on the heap. */
    std::vector<bool> cancelled;
};

} // namespace aqua::sim

#endif // AQUA_SIM_EVENT_QUEUE_HH
