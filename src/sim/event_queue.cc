#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace aqua::sim {

namespace {

/** Amortizes early growth; simulations schedule far more than this. */
constexpr std::size_t kInitialReserve = 1024;

} // anonymous namespace

EventQueue::EventQueue()
{
    heap.reserve(kInitialReserve);
    cancelled.reserve(kInitialReserve);
}

void
EventQueue::reserve(std::size_t events)
{
    heap.reserve(events);
    cancelled.reserve(events);
}

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    return schedule(when, 0, std::move(cb));
}

EventId
EventQueue::schedule(Tick when, int band, Callback cb)
{
    if (when < _now) {
        panic("scheduling event in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    EventId id = nextId++;
    if (cancelled.size() <= id) {
        // Grow geometrically: ids are dense, so a one-past resize per
        // schedule would reallocate the table on every call.
        cancelled.resize(std::max<std::size_t>(id + 1,
                                               cancelled.size() * 2),
                         false);
    }
    heap.push_back(Entry{when, band, nextSeq++, id, std::move(cb)});
    std::push_heap(heap.begin(), heap.end(), Later{});
    ++numPending;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return schedule(_now + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == invalidEventId || id >= cancelled.size() || cancelled[id])
        return false;
    // We cannot remove from the middle of a binary heap; mark the id and
    // drop the entry lazily when it reaches the top.
    cancelled[id] = true;
    if (numPending == 0)
        return false;
    --numPending;
    return true;
}

EventQueue::Entry
EventQueue::popTop()
{
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Entry entry = std::move(heap.back());
    heap.pop_back();
    return entry;
}

void
EventQueue::skipCancelled()
{
    while (!heap.empty() && cancelled[heap.front().id])
        popTop();
}

Tick
EventQueue::nextEventTick()
{
    skipCancelled();
    return heap.empty() ? maxTick : heap.front().when;
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap.empty())
        return false;
    Entry entry = popTop();
    _now = entry.when;
    --numPending;
    ++numFired;
    // Mark fired so a late cancel() of this id is a no-op.
    cancelled[entry.id] = true;
    entry.cb();
    return true;
}

std::size_t
EventQueue::run()
{
    std::size_t count = 0;
    while (step())
        ++count;
    return count;
}

std::size_t
EventQueue::runUntil(Tick limit)
{
    std::size_t count = 0;
    for (;;) {
        skipCancelled();
        if (heap.empty() || heap.front().when > limit)
            break;
        step();
        ++count;
    }
    if (_now < limit)
        _now = limit;
    return count;
}

} // namespace aqua::sim
