#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace aqua::sim {

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < _now) {
        panic("scheduling event in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    EventId id = nextId++;
    if (cancelled.size() <= id)
        cancelled.resize(id + 1, false);
    heap.push(Entry{when, nextSeq++, id, std::move(cb)});
    ++numPending;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return schedule(_now + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == invalidEventId || id >= cancelled.size() || cancelled[id])
        return false;
    // We cannot remove from the middle of a binary heap; mark the id and
    // drop the entry lazily when it reaches the top.
    cancelled[id] = true;
    if (numPending == 0)
        return false;
    --numPending;
    return true;
}

void
EventQueue::skipCancelled()
{
    while (!heap.empty() && cancelled[heap.top().id])
        heap.pop();
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap.empty())
        return false;
    Entry entry = heap.top();
    heap.pop();
    _now = entry.when;
    --numPending;
    ++numFired;
    // Mark fired so a late cancel() of this id is a no-op.
    cancelled[entry.id] = true;
    entry.cb();
    return true;
}

std::size_t
EventQueue::run()
{
    std::size_t count = 0;
    while (step())
        ++count;
    return count;
}

std::size_t
EventQueue::runUntil(Tick limit)
{
    std::size_t count = 0;
    for (;;) {
        skipCancelled();
        if (heap.empty() || heap.top().when > limit)
            break;
        step();
        ++count;
    }
    if (_now < limit)
        _now = limit;
    return count;
}

} // namespace aqua::sim
