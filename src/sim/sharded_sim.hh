/**
 * @file
 * Sharded discrete-event simulation with conservative-lookahead
 * synchronization, plus its sequential twin.
 *
 * Aqua's cluster experiments shard naturally by NVLink domain: almost
 * all events are domain-local (that is the paper's point), and the
 * rare inter-server interactions ride links whose latency floor L is
 * orders of magnitude above a tick. The executor exploits exactly
 * that: each domain owns a private EventQueue advanced by a worker
 * thread, and domains synchronize through a windowed conservative
 * protocol — if every domain has processed all events before tick T,
 * then no message can arrive before T + L, so every shard may safely
 * fire its events in [T, T + L) in parallel.
 *
 * Cross-domain interaction is a *timestamped send*: the sender names
 * a delivery tick at least lookahead() in its future, and the message
 * lands in the destination domain's queue. Delivery is canonical so
 * the parallel run is bit-equal to the sequential one:
 *
 *  - all deliveries for one tick fire in a reserved band *before*
 *    any same-tick local events of the destination (EventQueue band
 *    deliveryBand), so delivery order cannot depend on when the
 *    message was enqueued relative to local scheduling; and
 *  - same-tick deliveries fire ordered by (source domain, per-source
 *    send sequence) — a key both executors can compute, unlike
 *    arrival order, which depends on thread interleaving.
 *
 * SequentialDomainNet implements the same contract on one shared
 * EventQueue. Model code written against DomainNet runs unmodified on
 * either executor; the differential equivalence harness
 * (tests/test_sharded_sim.cc, bench/abl_sharded_sim.cc) runs both and
 * asserts identical per-domain event sequences and end-state stats.
 */

#ifndef AQUA_SIM_SHARDED_SIM_HH
#define AQUA_SIM_SHARDED_SIM_HH

#include <barrier>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/ticks.hh"

namespace aqua::sim {

/** Band cross-domain deliveries fire in: before same-tick locals. */
constexpr int deliveryBand = -1;

/**
 * The surface a multi-domain model runs against: per-domain queues,
 * structurally-keyed randomness, and timestamped cross-domain sends.
 */
class DomainNet
{
  public:
    virtual ~DomainNet() = default;

    /** Number of NVLink domains (shards). */
    virtual std::size_t numDomains() const = 0;

    /**
     * The event queue domain @p domain schedules its local events on.
     * In the sharded executor every domain has its own queue; in the
     * sequential twin all domains share one.
     */
    virtual EventQueue &queueOf(std::size_t domain) = 0;

    /**
     * Deliver @p fn into domain @p dst at tick @p deliverAt.
     *
     * Must be called from @p src's execution context (a callback
     * running on src's queue), and @p deliverAt must be at least
     * lookahead() after src's current time — the conservative
     * contract that lets shards run a full window unsynchronized.
     * Violations panic.
     */
    virtual void send(std::size_t src, std::size_t dst, Tick deliverAt,
                      EventQueue::Callback fn) = 0;

    /** Minimum cross-domain latency (the inter-server link floor). */
    virtual Tick lookahead() const = 0;

    /** Root seed of this simulated world. */
    virtual std::uint64_t seed() const = 0;

    /**
     * Deterministic per-domain random stream: identical for both
     * executors, independent of construction order elsewhere.
     */
    Random
    domainRandom(std::size_t domain, std::uint32_t stream) const
    {
        return domainStream(seed(),
                            static_cast<std::uint32_t>(domain),
                            stream);
    }
};

/**
 * Canonically-ordered cross-domain mailboxes, shared by both
 * executors so delivery semantics cannot drift apart.
 *
 * Messages accumulate per (destination, delivery tick); the first
 * message for a tick schedules one deliveryBand drain event, which
 * sorts the batch by (source domain, source sequence) and runs it.
 */
class DomainMailboxes
{
  public:
    explicit DomainMailboxes(std::size_t numDomains);

    /**
     * Enqueue a message and make sure a drain is scheduled on
     * @p dstQueue at @p when. Caller guarantees when > dstQueue.now().
     */
    void post(EventQueue &dstQueue, std::size_t dst, std::size_t src,
              std::uint64_t srcSeq, Tick when,
              EventQueue::Callback fn);

  private:
    struct Pending
    {
        std::size_t src;
        std::uint64_t srcSeq;
        EventQueue::Callback fn;
    };

    void drain(std::size_t dst, Tick when);

    std::vector<std::map<Tick, std::vector<Pending>>> inbox;
};

/**
 * The sequential twin: every domain shares one EventQueue, and sends
 * go through the same canonical mailbox discipline the sharded
 * executor uses. This is the reference side of the differential
 * harness — and what legacy single-queue experiments already are.
 */
class SequentialDomainNet : public DomainNet
{
  public:
    /**
     * @param queue The one shared queue (externally owned).
     * @param domains Domain count.
     * @param rootSeed World seed (for domainRandom()).
     * @param minLatency Cross-domain latency floor in ticks (>= 1).
     */
    SequentialDomainNet(EventQueue &queue, std::size_t domains,
                        std::uint64_t rootSeed, Tick minLatency);

    std::size_t numDomains() const override { return _domains; }
    EventQueue &queueOf(std::size_t) override { return q; }
    void send(std::size_t src, std::size_t dst, Tick deliverAt,
              EventQueue::Callback fn) override;
    Tick lookahead() const override { return minLatency; }
    std::uint64_t seed() const override { return rootSeed; }

    /** Total cross-domain messages sent. */
    std::uint64_t crossMessages() const { return sent; }

  private:
    EventQueue &q;
    std::size_t _domains;
    std::uint64_t rootSeed;
    Tick minLatency;
    DomainMailboxes mail;
    /** Per-source send sequence: the canonical same-tick tiebreak. */
    std::vector<std::uint64_t> sendSeq;
    std::uint64_t sent = 0;
};

/**
 * The sharded executor: one EventQueue per domain, advanced by a pool
 * of worker threads in conservative windows of lookahead() ticks.
 *
 * Results are bit-identical to SequentialDomainNet for any model that
 * (a) keeps domain state private to its domain's events, (b) draws
 * randomness only through domainRandom(), and (c) interacts across
 * domains only through send(). Identical for any worker count too —
 * shards are data-independent within a window, so the thread
 * partition cannot affect outcomes, only wall time.
 */
class ShardedSimulation : public DomainNet
{
  public:
    struct Config
    {
        std::size_t numDomains = 1;
        std::uint64_t seed = 1;
        /** Conservative window; the inter-server latency floor. */
        Tick lookahead = usToTicks(1.0);
        /** Worker threads; 0 = min(domains, hardware). */
        unsigned threads = 0;
    };

    explicit ShardedSimulation(const Config &config);
    ~ShardedSimulation() override;

    ShardedSimulation(const ShardedSimulation &) = delete;
    ShardedSimulation &operator=(const ShardedSimulation &) = delete;

    std::size_t numDomains() const override { return shards.size(); }
    EventQueue &queueOf(std::size_t domain) override;
    void send(std::size_t src, std::size_t dst, Tick deliverAt,
              EventQueue::Callback fn) override;
    Tick lookahead() const override { return cfg.lookahead; }
    std::uint64_t seed() const override { return cfg.seed; }

    /**
     * Run all shards until every queue drains (or past @p limit).
     * Must be called from the owning (coordinator) thread.
     *
     * @return Events fired across all shards by this call.
     */
    std::size_t run() { return runUntil(maxTick); }
    std::size_t runUntil(Tick limit);

    /** Synchronization windows executed so far. */
    std::uint64_t windows() const { return numWindows; }

    /** Cross-domain messages merged so far. */
    std::uint64_t crossMessages() const { return sent; }

    /** Worker threads actually used. */
    unsigned threadsUsed() const { return numWorkers; }

  private:
    struct OutMsg
    {
        std::size_t dst;
        std::uint64_t srcSeq;
        Tick when;
        EventQueue::Callback fn;
    };

    /**
     * One domain's private world. Only its worker thread touches the
     * queue and outbox during a window; the coordinator touches them
     * only between windows.
     */
    struct Shard
    {
        EventQueue queue;
        std::vector<OutMsg> outbox;
        std::uint64_t sendSeq = 0;
    };

    void workerLoop(unsigned worker);
    /** Merge every shard's outbox into the mailboxes, in canonical
     *  (src, srcSeq) order. Coordinator only, between windows. */
    void mergeOutboxes();

    Config cfg;
    std::vector<std::unique_ptr<Shard>> shards;
    DomainMailboxes mail;

    unsigned numWorkers = 0;
    std::vector<std::thread> workers;
    /** Two phases per window: start (coordinator -> workers, window
     *  bounds published) and end (workers -> coordinator, all shards
     *  quiesced). */
    std::barrier<> startBarrier;
    std::barrier<> endBarrier;
    /** Exclusive upper bound of the current window; set by the
     *  coordinator before the start barrier. */
    Tick windowEnd = 0;
    bool stopping = false;

    std::uint64_t numWindows = 0;
    std::uint64_t sent = 0;
};

} // namespace aqua::sim

#endif // AQUA_SIM_SHARDED_SIM_HH
