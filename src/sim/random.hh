/**
 * @file
 * Deterministic pseudo-random number generation and the sampling
 * distributions used by the workload generators.
 *
 * The generator is PCG32 (O'Neill): small state, good statistical
 * quality, and fully reproducible across platforms, which matters for
 * regression-testing simulation results.
 */

#ifndef AQUA_SIM_RANDOM_HH
#define AQUA_SIM_RANDOM_HH

#include <cstdint>

namespace aqua::sim {

/**
 * PCG32 pseudo-random generator with convenience samplers.
 */
class Random
{
  public:
    /** Construct with a seed; the same seed replays the same stream. */
    explicit Random(std::uint64_t seed = 0x853c49e6748fea9bULL);

    /** Next raw 32-bit value. */
    std::uint32_t next32();

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponentially distributed value with the given rate (1/mean). */
    double exponential(double rate);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with explicit mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal sample.
     *
     * @param mu Mean of the underlying normal.
     * @param sigma Stddev of the underlying normal.
     */
    double lognormal(double mu, double sigma);

    /** Poisson-distributed count with the given mean. */
    std::uint64_t poisson(double mean);

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

  private:
    std::uint64_t state;
    std::uint64_t inc;
    bool haveSpareNormal = false;
    double spareNormal = 0.0;
};

/**
 * Derive an independent stream keyed by (seed, domain, stream).
 *
 * Unlike Simulation::makeRandom(), whose streams are numbered in
 * global creation order, the key here is structural: domain d's
 * stream s is the same generator no matter what other domains exist
 * or in which order they were built. The sharded executor and its
 * sequential twin both draw per-domain randomness through this
 * helper, which is what makes their runs comparable event-for-event
 * (see docs/simulation.md).
 */
Random domainStream(std::uint64_t seed, std::uint32_t domain,
                    std::uint32_t stream);

} // namespace aqua::sim

#endif // AQUA_SIM_RANDOM_HH
