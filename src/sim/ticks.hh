/**
 * @file
 * Simulated time types and unit helpers.
 *
 * The simulator counts time in integer nanosecond ticks. All latency and
 * bandwidth arithmetic is done in double-precision seconds and converted
 * at the event-queue boundary, which keeps the hardware models readable
 * while the event queue stays exactly ordered.
 */

#ifndef AQUA_SIM_TICKS_HH
#define AQUA_SIM_TICKS_HH

#include <cstdint>
#include <string>

namespace aqua::sim {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Largest representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

constexpr Tick nsPerUs = 1000;
constexpr Tick nsPerMs = 1000 * 1000;
constexpr Tick nsPerSec = 1000 * 1000 * 1000;

/** Convert whole microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * nsPerUs + 0.5);
}

/** Convert whole milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * nsPerMs + 0.5);
}

/** Convert seconds to ticks, rounding to the nearest nanosecond. */
constexpr Tick
secToTicks(double sec)
{
    return static_cast<Tick>(sec * nsPerSec + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / nsPerSec;
}

/** Convert ticks to milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / nsPerMs;
}

/**
 * Render a tick count as a human-readable duration, e.g. "12.5ms".
 *
 * @param t Duration in ticks.
 * @return Formatted string with an auto-selected unit.
 */
std::string formatDuration(Tick t);

/** Render a byte count as a human-readable size, e.g. "2.0MiB". */
std::string formatBytes(std::uint64_t bytes);

constexpr std::uint64_t kib = 1024;
constexpr std::uint64_t mib = 1024 * kib;
constexpr std::uint64_t gib = 1024 * mib;

} // namespace aqua::sim

#endif // AQUA_SIM_TICKS_HH
