/**
 * @file
 * Error and status reporting helpers.
 *
 * Semantics follow the gem5 convention:
 *  - panic():  an internal simulator invariant was violated (a bug);
 *              aborts so the failure can be debugged.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits cleanly.
 *  - warn():   something is off but the run can continue.
 *  - inform(): plain status output.
 */

#ifndef AQUA_SIM_LOGGING_HH
#define AQUA_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace aqua::sim {

/** Verbosity levels for inform()/warn() output. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Set the global verbosity threshold. */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/** Abort with a formatted message: internal invariant violated. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a formatted message: unrecoverable user error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning if the log level admits it. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message if the log level admits it. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message if the log level admits it. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace aqua::sim

#endif // AQUA_SIM_LOGGING_HH
