#include "sim/sharded_sim.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace aqua::sim {

//
// DomainMailboxes
//

DomainMailboxes::DomainMailboxes(std::size_t numDomains)
    : inbox(numDomains)
{
}

void
DomainMailboxes::post(EventQueue &dstQueue, std::size_t dst,
                      std::size_t src, std::uint64_t srcSeq, Tick when,
                      EventQueue::Callback fn)
{
    auto &byTick = inbox[dst];
    auto it = byTick.find(when);
    if (it == byTick.end()) {
        it = byTick.emplace(when, std::vector<Pending>{}).first;
        dstQueue.schedule(when, deliveryBand,
                          [this, dst, when] { drain(dst, when); });
    }
    it->second.push_back(Pending{src, srcSeq, std::move(fn)});
}

void
DomainMailboxes::drain(std::size_t dst, Tick when)
{
    auto &byTick = inbox[dst];
    auto it = byTick.find(when);
    if (it == byTick.end())
        panic("mailbox drain with no pending messages");
    // Move the batch out before running: a delivered callback may
    // post again (to a strictly later tick) without invalidating the
    // iteration.
    std::vector<Pending> batch = std::move(it->second);
    byTick.erase(it);
    // Canonical same-tick order. Arrival order depends on executor
    // interleaving; (src, srcSeq) is derivable from per-domain state
    // alone, hence identical across executors.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Pending &a, const Pending &b) {
                         if (a.src != b.src)
                             return a.src < b.src;
                         return a.srcSeq < b.srcSeq;
                     });
    for (Pending &p : batch)
        p.fn();
}

//
// SequentialDomainNet
//

SequentialDomainNet::SequentialDomainNet(EventQueue &queue,
                                         std::size_t domains,
                                         std::uint64_t rootSeed,
                                         Tick minLatency)
    : q(queue), _domains(domains), rootSeed(rootSeed),
      minLatency(minLatency), mail(domains), sendSeq(domains, 0)
{
    if (domains == 0)
        panic("SequentialDomainNet: need at least one domain");
    if (minLatency == 0)
        panic("SequentialDomainNet: lookahead must be >= 1 tick");
}

void
SequentialDomainNet::send(std::size_t src, std::size_t dst,
                          Tick deliverAt, EventQueue::Callback fn)
{
    if (src >= _domains || dst >= _domains)
        panic("send: bad domain %zu -> %zu", src, dst);
    if (deliverAt < q.now() + minLatency) {
        panic("send violates lookahead: deliver=%llu now=%llu "
              "lookahead=%llu",
              static_cast<unsigned long long>(deliverAt),
              static_cast<unsigned long long>(q.now()),
              static_cast<unsigned long long>(minLatency));
    }
    mail.post(q, dst, src, sendSeq[src]++, deliverAt, std::move(fn));
    ++sent;
}

//
// ShardedSimulation
//

namespace {

/** Final worker count: explicit or hardware, capped by shard count. */
unsigned
resolveWorkers(const ShardedSimulation::Config &cfg)
{
    unsigned want = cfg.threads != 0
                        ? cfg.threads
                        : std::max(1u,
                                   std::thread::hardware_concurrency());
    return static_cast<unsigned>(std::min<std::size_t>(
        want, std::max<std::size_t>(cfg.numDomains, 1)));
}

} // anonymous namespace

ShardedSimulation::ShardedSimulation(const Config &config)
    : cfg(config), mail(config.numDomains),
      numWorkers(resolveWorkers(config)),
      startBarrier(static_cast<std::ptrdiff_t>(numWorkers) + 1),
      endBarrier(static_cast<std::ptrdiff_t>(numWorkers) + 1)
{
    if (cfg.numDomains == 0)
        panic("ShardedSimulation: need at least one domain");
    if (cfg.lookahead == 0)
        panic("ShardedSimulation: lookahead must be >= 1 tick");
    shards.reserve(cfg.numDomains);
    for (std::size_t d = 0; d < cfg.numDomains; ++d)
        shards.push_back(std::make_unique<Shard>());
    workers.reserve(numWorkers);
    for (unsigned w = 0; w < numWorkers; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });
}

ShardedSimulation::~ShardedSimulation()
{
    stopping = true;
    startBarrier.arrive_and_wait();
    for (std::thread &t : workers)
        t.join();
}

EventQueue &
ShardedSimulation::queueOf(std::size_t domain)
{
    if (domain >= shards.size())
        panic("queueOf: bad domain %zu", domain);
    return shards[domain]->queue;
}

void
ShardedSimulation::send(std::size_t src, std::size_t dst, Tick deliverAt,
                        EventQueue::Callback fn)
{
    if (src >= shards.size() || dst >= shards.size())
        panic("send: bad domain %zu -> %zu", src, dst);
    Shard &s = *shards[src];
    if (deliverAt < s.queue.now() + cfg.lookahead) {
        panic("send violates lookahead: deliver=%llu now=%llu "
              "lookahead=%llu",
              static_cast<unsigned long long>(deliverAt),
              static_cast<unsigned long long>(s.queue.now()),
              static_cast<unsigned long long>(cfg.lookahead));
    }
    // Only src's worker thread (or the coordinator between windows)
    // executes src's callbacks, so the outbox needs no lock.
    s.outbox.push_back(
        OutMsg{dst, s.sendSeq++, deliverAt, std::move(fn)});
}

void
ShardedSimulation::workerLoop(unsigned worker)
{
    for (;;) {
        startBarrier.arrive_and_wait();
        if (stopping)
            return;
        // Static round-robin shard partition. Any partition yields
        // the same results — shards are independent within a window —
        // so this only has to balance load, not order.
        for (std::size_t d = worker; d < shards.size();
             d += numWorkers) {
            shards[d]->queue.runUntil(windowEnd - 1);
        }
        endBarrier.arrive_and_wait();
    }
}

void
ShardedSimulation::mergeOutboxes()
{
    // Iterating sources in index order and each outbox in send order
    // happens to append each batch already sorted by (src, srcSeq);
    // the drain's stable sort keeps that canonical order either way.
    for (std::size_t src = 0; src < shards.size(); ++src) {
        Shard &s = *shards[src];
        for (OutMsg &m : s.outbox) {
            mail.post(shards[m.dst]->queue, m.dst, src, m.srcSeq,
                      m.when, std::move(m.fn));
            ++sent;
        }
        s.outbox.clear();
    }
}

std::size_t
ShardedSimulation::runUntil(Tick limit)
{
    std::uint64_t firedBefore = 0;
    for (const auto &s : shards)
        firedBefore += s->queue.fired();

    for (;;) {
        // Conservative horizon: with every queue quiesced below m and
        // no undelivered messages, nothing can ever fire before m, so
        // [m, m + lookahead) is safe to run in parallel. Jumping to m
        // (not creeping by lookahead) is what keeps idle gaps free.
        Tick m = maxTick;
        for (const auto &s : shards)
            m = std::min(m, s->queue.nextEventTick());
        if (m == maxTick || m > limit)
            break;
        Tick cap = limit == maxTick ? maxTick : limit + 1;
        windowEnd = m >= maxTick - cfg.lookahead ? maxTick
                                                 : m + cfg.lookahead;
        windowEnd = std::min(windowEnd, cap);
        ++numWindows;

        startBarrier.arrive_and_wait();
        // Workers advance their shards to windowEnd - 1.
        endBarrier.arrive_and_wait();

        mergeOutboxes();
    }

    // Mirror EventQueue::runUntil: leave every clock at the limit so
    // follow-on scheduling against any shard is sane.
    if (limit != maxTick) {
        for (auto &s : shards)
            s->queue.runUntil(limit);
    }

    std::uint64_t firedAfter = 0;
    for (const auto &s : shards)
        firedAfter += s->queue.fired();
    return static_cast<std::size_t>(firedAfter - firedBefore);
}

} // namespace aqua::sim
