/**
 * @file
 * Simulation context: bundles the event queue and the root random
 * stream so components can share one simulated world.
 */

#ifndef AQUA_SIM_SIMULATION_HH
#define AQUA_SIM_SIMULATION_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/ticks.hh"

namespace aqua::sim {

/**
 * One simulated world.
 *
 * Every hardware and software component holds a reference to a
 * Simulation and uses its queue for timing and its RNG factory for
 * reproducible randomness. Child streams derived through makeRandom()
 * decouple components so that adding a component does not perturb the
 * random draws of another.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1)
        : rootSeed(seed), streams(0)
    {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** The shared event queue. */
    EventQueue &queue() { return eq; }

    /** Current simulated time. */
    Tick now() const { return eq.now(); }

    /**
     * Derive an independent random stream.
     *
     * Streams are numbered in creation order, so a given construction
     * order of components replays identically across runs.
     */
    Random
    makeRandom()
    {
        return Random(rootSeed * 0x9e3779b97f4a7c15ULL + (++streams));
    }

    /** Run the event queue to completion. */
    std::size_t run() { return eq.run(); }

    /** Run the event queue up to an absolute simulated time. */
    std::size_t runUntil(Tick limit) { return eq.runUntil(limit); }

    /** Run the event queue for a further @p duration ticks. */
    std::size_t
    runFor(Tick duration)
    {
        return eq.runUntil(eq.now() + duration);
    }

  private:
    EventQueue eq;
    std::uint64_t rootSeed;
    std::uint64_t streams;
};

} // namespace aqua::sim

#endif // AQUA_SIM_SIMULATION_HH
