#include "recovery/recovery_manager.hh"

#include <utility>

namespace aqua::recovery {

using aqua::sim::Tick;
using json::Value;

RecoveryManager::RecoveryManager(aqua::sim::Simulation &sim,
                                 core::Coordinator &coord,
                                 StateJournal &coordJournal)
    : sim(sim), coord(coord), coordJournal(coordJournal)
{
    coord.attachJournal(&coordJournal);
}

void
RecoveryManager::attachRegistry(cluster::PrefixRegistry &reg,
                                StateJournal &journal)
{
    registry = &reg;
    registryJournal = &journal;
    reg.attachJournal(&journal);
}

void
RecoveryManager::attachFederation(federation::FederationDirectory &dir,
                                  StateJournal &journal)
{
    federationDir = &dir;
    federationJournal = &journal;
    dir.attachJournal(&journal);
}

void
RecoveryManager::registerSurvivor(core::AquaLib &lib)
{
    survivors.push_back(&lib);
}

void
RecoveryManager::wire(fault::FaultInjector &injector)
{
    injector.setCoordinatorCrashHooks(
        [this](Tick now) { onCoordinatorCrash(now); },
        [this](Tick now, std::uint32_t loseTail) {
            onCoordinatorRestart(now, loseTail);
        });
}

void
RecoveryManager::trace(const char *category, Value fields)
{
    if (tracer)
        tracer->emit(sim.now(), category, std::move(fields));
}

std::size_t
RecoveryManager::replayCoordinator()
{
    coord.reset();
    if (coordJournal.snapshot())
        coord.restoreState(*coordJournal.snapshot());
    const auto &tail = coordJournal.pending();
    for (const JournalRecord &r : tail)
        coord.applyJournalRecord(r.op, r.fields);
    return tail.size();
}

std::size_t
RecoveryManager::replayRegistry()
{
    if (!registry || !registryJournal)
        return 0;
    registry->reset();
    if (registryJournal->snapshot())
        registry->restoreState(*registryJournal->snapshot());
    const auto &tail = registryJournal->pending();
    for (const JournalRecord &r : tail)
        registry->applyJournalRecord(r.op, r.fields);
    return tail.size();
}

std::size_t
RecoveryManager::replayFederation()
{
    if (!federationDir || !federationJournal)
        return 0;
    federationDir->reset();
    if (federationJournal->snapshot())
        federationDir->restoreState(*federationJournal->snapshot());
    const auto &tail = federationJournal->pending();
    for (const JournalRecord &r : tail)
        federationDir->applyJournalRecord(r.op, r.fields);
    return tail.size();
}

void
RecoveryManager::onCoordinatorCrash(Tick now)
{
    ++counters.crashes;
    // Mutating registry traffic racing the dead coordinator must back
    // off retryably, not assert on half-torn-down state.
    if (registry)
        registry->setFrozen(true);
    if (federationDir)
        federationDir->setFrozen(true);
    Value ev;
    ev["crash"] = static_cast<std::int64_t>(counters.crashes);
    ev["pending_records"] =
        static_cast<std::int64_t>(coordJournal.pending().size());
    trace("recovery_freeze", std::move(ev));
    (void)now;
}

void
RecoveryManager::onCoordinatorRestart(Tick now,
                                      std::uint32_t loseTail)
{
    ++counters.restarts;

    // The crash loses the unflushed journal tail: the newest records
    // never reached durable media. Survivor resync below is what
    // makes that loss safe.
    if (loseTail > 0) {
        std::uint64_t before = coordJournal.stats().droppedRecords;
        coordJournal.dropTail(loseTail);
        counters.droppedRecords +=
            coordJournal.stats().droppedRecords - before;
        if (registryJournal) {
            before = registryJournal->stats().droppedRecords;
            registryJournal->dropTail(loseTail);
            counters.droppedRecords +=
                registryJournal->stats().droppedRecords - before;
        }
        if (federationJournal) {
            before = federationJournal->stats().droppedRecords;
            federationJournal->dropTail(loseTail);
            counters.droppedRecords +=
                federationJournal->stats().droppedRecords - before;
        }
    }

    // Cold restart: snapshot + tail replay rebuilds the services.
    std::size_t replayed =
        replayCoordinator() + replayRegistry() + replayFederation();
    counters.replayedRecords += replayed;
    {
        Value ev;
        ev["replayed"] = static_cast<std::int64_t>(replayed);
        ev["lost_tail"] = static_cast<std::int64_t>(loseTail);
        trace("recovery_replay", std::move(ev));
    }

    // Survivor resync: every live AquaLib re-asserts its lease and
    // tensor ground truth; what replay missed (the lost tail) is
    // adopted from these reports.
    std::vector<hw::GpuId> reporters;
    for (core::AquaLib *lib : survivors) {
        if (lib->isFailed()) {
            ++counters.survivorsUnreachable;
            continue;
        }
        if (lib->resyncWithCoordinator()) {
            ++counters.survivorsResynced;
            reporters.push_back(lib->gpuId());
        } else {
            ++counters.survivorsUnreachable;
        }
    }

    // Whatever no survivor re-reported is gone with its owner: sweep
    // the tensors so accounting matches reality, and mark silent
    // producers for urgent reclaim.
    core::Coordinator::OrphanSweep sweep =
        coord.sweepOrphans(reporters, now);
    counters.orphanedTensors += sweep.droppedTensors;
    counters.orphanedBytes += sweep.droppedBytes;

    // Prefix chains re-verify against their home engines; orphaned
    // homes promote a replica (Harvest-style) or invalidate so
    // consumers recompute instead of reading ghost blocks.
    if (registry) {
        cluster::PrefixRegistry::ResyncSummary rs =
            registry->resyncSurvivors(now);
        counters.chainsVerified += rs.verified;
        counters.chainsRehomed += rs.rehomed;
        counters.chainsInvalidated += rs.invalidated;
        registry->setFrozen(false);
    }

    // The federation directory thaws last: its local adverts replayed
    // from the journal; remote views are soft state the peers'
    // anti-entropy rounds re-converge once we answer routes again.
    if (federationDir)
        federationDir->setFrozen(false);

    // Fold the post-recovery state into a fresh snapshot: the next
    // crash replays from here instead of re-walking the resync.
    coordJournal.compact();
    if (registryJournal)
        registryJournal->compact();
    if (federationJournal)
        federationJournal->compact();

    Value ev;
    ev["restart"] = static_cast<std::int64_t>(counters.restarts);
    ev["survivors"] =
        static_cast<std::int64_t>(counters.survivorsResynced);
    ev["orphaned_tensors"] =
        static_cast<std::int64_t>(sweep.droppedTensors);
    ev["orphaned_bytes"] =
        static_cast<std::int64_t>(sweep.droppedBytes);
    trace("recovery_complete", std::move(ev));
}

} // namespace aqua::recovery
