/**
 * @file
 * Append-only, snapshot-compacted journal of durable control-plane
 * mutations.
 *
 * The coordinator and the cluster prefix registry write every durable
 * state change through a StateJournal. A crashed coordinator restarts
 * cold and rebuilds its maps by restoring the latest snapshot and
 * replaying the pending tail; the journal is the only thing that
 * survives a coordinator_crash fault.
 *
 * Compaction: once the pending tail grows past compactEvery records,
 * the journal asks its owner (via the snapshot provider) for a full
 * state export, stores it as the new snapshot, and drops the tail.
 * This bounds replay time the same way a real write-ahead log's
 * checkpointing does.
 *
 * dropTail() models the crash losing the last few *unflushed* records
 * — the window between the owner's in-memory append and the durable
 * media. Resync against survivor reports is what makes that loss safe.
 */

#ifndef AQUA_RECOVERY_STATE_JOURNAL_HH
#define AQUA_RECOVERY_STATE_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hh"

namespace aqua::recovery {

/** One durable mutation: an op tag plus its outcome fields. */
struct JournalRecord
{
    std::string op;
    json::Value fields;
};

struct StateJournalConfig
{
    /** Pending records that trigger auto-compaction (0 = never). */
    std::size_t compactEvery = 256;
};

struct StateJournalStats
{
    std::uint64_t appends = 0;
    std::uint64_t compactions = 0;
    /** Records folded into snapshots by compaction. */
    std::uint64_t compactedRecords = 0;
    /** Records lost to dropTail() (simulated unflushed tail). */
    std::uint64_t droppedRecords = 0;
};

class StateJournal
{
  public:
    explicit StateJournal(StateJournalConfig cfg = {}) : cfg(cfg) {}

    StateJournal(const StateJournal &) = delete;
    StateJournal &operator=(const StateJournal &) = delete;

    /**
     * Install the owner's full-state exporter. Compaction calls it to
     * fold the pending tail into a fresh snapshot; without a provider
     * the journal never compacts (the tail just grows).
     */
    void
    setSnapshotProvider(std::function<json::Value()> provider)
    {
        snapshotFn = std::move(provider);
    }

    /** Append one durable mutation; may trigger auto-compaction. */
    void
    append(const std::string &op, json::Value fields)
    {
        tail.push_back(JournalRecord{op, std::move(fields)});
        ++counters.appends;
        if (cfg.compactEvery > 0 && snapshotFn &&
            tail.size() >= cfg.compactEvery)
            compact();
    }

    /** Fold the pending tail into a fresh snapshot now. */
    void
    compact()
    {
        if (!snapshotFn)
            return;
        snap = snapshotFn();
        counters.compactedRecords += tail.size();
        tail.clear();
        ++counters.compactions;
    }

    /**
     * Chaos knob: lose the newest @p n pending records, as a crash
     * would lose the unflushed tail of a real log.
     */
    void
    dropTail(std::size_t n)
    {
        std::size_t drop = std::min(n, tail.size());
        tail.resize(tail.size() - drop);
        counters.droppedRecords += drop;
    }

    /** Latest compacted snapshot, if any. */
    const std::optional<json::Value> &snapshot() const { return snap; }

    /** Records appended since the last compaction, oldest first. */
    const std::vector<JournalRecord> &pending() const { return tail; }

    const StateJournalStats &stats() const { return counters; }

  private:
    StateJournalConfig cfg;
    std::function<json::Value()> snapshotFn;
    std::optional<json::Value> snap;
    std::vector<JournalRecord> tail;
    StateJournalStats counters;
};

} // namespace aqua::recovery

#endif // AQUA_RECOVERY_STATE_JOURNAL_HH
