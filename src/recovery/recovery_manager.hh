/**
 * @file
 * Coordinator crash/restart orchestration.
 *
 * A coordinator_crash fault kills the coordinator process: its
 * in-memory maps (producers, tensor placements, prefix chains, pins)
 * are gone, and every southbound call in the crash window sees a
 * retryable 503. The RecoveryManager is the restart path:
 *
 *  1. *Freeze* — at crash time the prefix registry stops accepting
 *     mutating traffic (registry_rest maps frozen to 503) so engine
 *     calls racing the restart back off instead of mutating
 *     half-restored state.
 *  2. *Replay* — at restart the coordinator and registry rebuild from
 *     their StateJournals: restore the latest snapshot, re-apply the
 *     pending tail (minus the crash's lost unflushed records).
 *  3. *Resync* — each surviving AquaLib re-asserts its ground truth
 *     (held lease, owned tensors at their survivor-believed
 *     locations) via POST /resync; the coordinator adopts what the
 *     lost tail never recorded. Tensors of consumers that never
 *     report are swept as orphans; prefix chains re-verify against
 *     their home engines, promoting replicas Harvest-style or
 *     invalidating to recompute.
 *  4. *Thaw* — the registry unfreezes and normal traffic resumes.
 *
 * Wire an instance to a FaultInjector with wire(): the injector's
 * coordinator_crash inject/recover events drive steps 1 and 2-4.
 */

#ifndef AQUA_RECOVERY_RECOVERY_MANAGER_HH
#define AQUA_RECOVERY_RECOVERY_MANAGER_HH

#include <cstdint>
#include <vector>

#include "aqua/aqua_lib.hh"
#include "aqua/coordinator.hh"
#include "cluster/prefix_registry.hh"
#include "fault/fault.hh"
#include "federation/directory.hh"
#include "recovery/state_journal.hh"
#include "sim/simulation.hh"
#include "trace/trace.hh"

namespace aqua::recovery {

/** Counters across all crash/restart cycles. */
struct RecoveryStats
{
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    /** Journal records re-applied over restored snapshots. */
    std::uint64_t replayedRecords = 0;
    /** Unflushed tail records lost to crashes (lose_tail). */
    std::uint64_t droppedRecords = 0;
    /** Survivor libs whose /resync round trip succeeded. */
    std::uint64_t survivorsResynced = 0;
    /** Survivor libs that stayed unreachable (failed instances). */
    std::uint64_t survivorsUnreachable = 0;
    /** Tensors adopted from survivor reports (lost-tail repair). */
    std::uint64_t tensorsAdopted = 0;
    /** Tensors whose location was corrected from a survivor report. */
    std::uint64_t tensorsRelocated = 0;
    /** Orphaned tensors swept (consumer never re-reported). */
    std::uint64_t orphanedTensors = 0;
    std::uint64_t orphanedBytes = 0;
    /** Prefix chains re-verified by their home engine. */
    std::uint64_t chainsVerified = 0;
    /** Orphaned homes promoted from a replica. */
    std::uint64_t chainsRehomed = 0;
    /** Chains with no surviving copy (consumers recompute). */
    std::uint64_t chainsInvalidated = 0;
};

/**
 * Orchestrates coordinator crash recovery for one scale-up domain.
 */
class RecoveryManager
{
  public:
    /**
     * @param sim Shared simulation (event time for traces).
     * @param coord The domain's coordinator; its journal is attached
     *              here (attachJournal) so every durable mutation
     *              from now on is recorded.
     * @param coordJournal Journal backing the coordinator.
     */
    RecoveryManager(aqua::sim::Simulation &sim,
                    core::Coordinator &coord,
                    StateJournal &coordJournal);

    RecoveryManager(const RecoveryManager &) = delete;
    RecoveryManager &operator=(const RecoveryManager &) = delete;

    /**
     * Attach the domain's prefix registry and its journal; both
     * recover alongside the coordinator (the registry is
     * coordinator-hosted, so one crash takes out both).
     */
    void attachRegistry(cluster::PrefixRegistry &registry,
                        StateJournal &registryJournal);

    /**
     * Attach the domain's federation directory and its journal; the
     * directory is coordinator-hosted like the registry, so one crash
     * takes out all three. Local adverts replay from the journal;
     * remote views are soft state repaired by the peers' anti-entropy
     * rounds after the thaw.
     */
    void attachFederation(federation::FederationDirectory &directory,
                          StateJournal &directoryJournal);

    /**
     * Register a per-GPU AquaLib as a resync participant. Instances
     * flagged failed at restart time are skipped (their tensors get
     * swept as orphans if nothing else reports them).
     */
    void registerSurvivor(core::AquaLib &lib);

    /** Audit log for recovery events. Not owned. */
    void setTraceLog(trace::TraceLog *log) { tracer = log; }

    /** Install this manager as @p injector's coordinator_crash
     *  hooks. */
    void wire(fault::FaultInjector &injector);

    /** Crash entry point (fault inject time). */
    void onCoordinatorCrash(aqua::sim::Tick now);

    /** Restart entry point (fault recover time). */
    void onCoordinatorRestart(aqua::sim::Tick now,
                              std::uint32_t loseTail);

    const RecoveryStats &stats() const { return counters; }

  private:
    void trace(const char *category, json::Value fields);
    /** Restore one journal into its owner; returns replayed count. */
    std::size_t replayCoordinator();
    std::size_t replayRegistry();
    std::size_t replayFederation();

    aqua::sim::Simulation &sim;
    core::Coordinator &coord;
    StateJournal &coordJournal;
    cluster::PrefixRegistry *registry = nullptr;
    StateJournal *registryJournal = nullptr;
    federation::FederationDirectory *federationDir = nullptr;
    StateJournal *federationJournal = nullptr;
    std::vector<core::AquaLib *> survivors;
    trace::TraceLog *tracer = nullptr;
    RecoveryStats counters;
};

} // namespace aqua::recovery

#endif // AQUA_RECOVERY_RECOVERY_MANAGER_HH
