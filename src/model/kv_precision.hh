/**
 * @file
 * KV-cache numeric precision: the bytes-per-element attribute that
 * reprices every offload decision.
 *
 * QServe/Omniserve-class engines store KV at 8- or 4-bit precision,
 * shrinking the cache 2-4x; since AQUA's whole economy is KV bytes
 * moved over ranked paths (HBM > NVLink > PCIe > SSD), precision
 * scales everything downstream of ModelSpec::kvBytesPerToken() —
 * block sizes, staging descriptors, swap/park payloads, registry
 * publishes — and smaller effective transfer sizes land *lower* on
 * the hw::Link bw(s) ramp, which is the real, modeled cost of
 * quantizing. The compute-side cost (per-byte dequantization work in
 * the attention kernels) is modeled in PerfModel.
 */

#ifndef AQUA_MODEL_KV_PRECISION_HH
#define AQUA_MODEL_KV_PRECISION_HH

#include <cstdint>
#include <string>

namespace aqua::model {

/** KV-cache element precision, widest first. Order is meaningful:
 *  comparisons use > to mean "stored smaller than". */
enum class KvPrecision : std::uint8_t
{
    /** 16-bit elements (the fp16 baseline every preset assumes). */
    Fp16 = 0,
    /** 8-bit elements (2x smaller). */
    Fp8 = 1,
    /** 4-bit elements (4x smaller; QServe's KV4). */
    Int4 = 2,
};

/** Number of precisions (for per-precision accounting arrays). */
inline constexpr std::size_t numKvPrecisions = 3;

/** Stable lowercase name, e.g. "fp8". */
const char *kvPrecisionName(KvPrecision p);

/** Look up a precision by name; panics on unknown names. */
KvPrecision kvPrecisionByName(const std::string &name);

/** How many times smaller than fp16 elements of @p p are. */
std::uint32_t kvPrecisionDivisor(KvPrecision p);

/**
 * Scale an fp16 KV byte count to @p p. Exact: fp16 KV footprints are
 * multiples of 4 bytes (2 tensors x 2 bytes per element), so the
 * division never truncates for whole-token counts.
 */
std::uint64_t scaleKvBytes(std::uint64_t fp16Bytes, KvPrecision p);

/** Rescale a KV byte count from one precision to another (exact). */
std::uint64_t rescaleKvBytes(std::uint64_t bytes, KvPrecision from,
                             KvPrecision to);

/**
 * Dequantization compute overhead: extra elementwise work per KV byte
 * *touched* by a decode step (or restored by a swap-in), expressed as
 * a fraction of the time those bytes take to stream through HBM.
 * Zero at fp16; quantization is not a free lunch.
 */
double kvDequantOverhead(KvPrecision p);

} // namespace aqua::model

#endif // AQUA_MODEL_KV_PRECISION_HH
