/**
 * @file
 * Roofline performance model for inference iterations.
 *
 * The paper's empirical §2.1 findings are the contract here:
 *  - LLM decode is memory-bound: every decode step streams the full
 *    weight matrix plus the KV cache of every batched sequence through
 *    HBM, so iteration time ~ bytes / HBM bandwidth (Fig. 2c).
 *  - LLM prefill is compute-bound: ~2 * params FLOPs per token.
 *  - Image/audio generation is compute-bound with a fixed overhead per
 *    iteration, so throughput plateaus while HBM stays mostly free
 *    (Fig. 2a, 2b).
 */

#ifndef AQUA_MODEL_PERF_MODEL_HH
#define AQUA_MODEL_PERF_MODEL_HH

#include <cstdint>

#include "hw/gpu_spec.hh"
#include "model/model_spec.hh"
#include "sim/ticks.hh"

namespace aqua::model {

/**
 * Computes iteration durations for a (model, GPU) pair.
 */
class PerfModel
{
  public:
    PerfModel(const ModelSpec &model, const hw::GpuSpec &gpu);

    const ModelSpec &model() const { return spec; }

    /**
     * Fraction of the resident KV cache a decode step actually reads
     * (1.0 = dense attention). Sparse-attention kernels touch only
     * the top-scoring pages, so decode's memory traffic — and the
     * per-step cost of *borrowed* remote KV — scales with this.
     */
    double sparseReadFraction() const { return sparseRead; }

    /** Set the sparse-read fraction; clamped to (0, 1]. */
    void setSparseReadFraction(double fraction);

    /**
     * Prefill (prompt-processing) time for @p promptTokens tokens,
     * compute-bound at 2 FLOPs per parameter per token.
     */
    aqua::sim::Tick prefillTime(std::uint64_t promptTokens) const;

    /**
     * One decode iteration generating one token for each of
     * @p batchSize sequences whose KV caches total @p kvBytesResident
     * bytes. Memory-bound: weights plus resident KV stream through HBM
     * once per iteration; compute is the floor.
     */
    aqua::sim::Tick decodeStepTime(std::uint64_t batchSize,
                                   std::uint64_t kvBytesResident) const;

    /**
     * Extra compute time to dequantize @p kvBytes of stored KV into
     * math precision (e.g. restoring a quantized swap/park payload).
     * Zero at fp16.
     */
    aqua::sim::Tick dequantTime(std::uint64_t kvBytes) const;

    /** Same cost model for quantizing KV on its way out of HBM. */
    aqua::sim::Tick quantizeTime(std::uint64_t kvBytes) const;

    /** dequantTime() for bytes stored at an explicit precision. */
    aqua::sim::Tick dequantTimeAt(std::uint64_t kvBytes,
                                  KvPrecision p) const;

    /**
     * One full generation iteration of a compute-bound image/audio
     * model over @p batchSize items (e.g. one diffusion run).
     */
    aqua::sim::Tick batchIterTime(std::uint64_t batchSize) const;

    /**
     * Throughput in items/second of the compute-bound model when run
     * at a steady batch size (convenience for Fig. 2 sweeps).
     */
    double batchThroughput(std::uint64_t batchSize) const;

    /**
     * HBM bytes needed to run the model at the given load:
     * weights + runtime overhead + per-item activations (compute-bound)
     * or + KV bytes (text).
     */
    std::uint64_t memoryFootprint(std::uint64_t batchSize,
                                  std::uint64_t kvBytes) const;

  private:
    ModelSpec spec;
    hw::GpuSpec gpu;
    /** Scale from the reference A100 to this GPU's compute. */
    double computeScale;
    /** Fraction of resident KV read per decode step (1.0 = dense). */
    double sparseRead = 1.0;
};

} // namespace aqua::model

#endif // AQUA_MODEL_PERF_MODEL_HH
