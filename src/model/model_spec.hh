/**
 * @file
 * Generative-model descriptions: geometry, memory footprint, and the
 * parameters feeding the roofline performance model.
 *
 * Presets cover the eight models the paper serves (§6, Tables 1-3):
 * OPT-30B, Mistral-7B, Llama-2-13B, CodeLlama-34B (text);
 * StableDiffusion, SD-XL, Kandinsky (image); AudioGen, MusicGen
 * (audio). Text models carry real layer/head geometry so KV-cache
 * bytes per token are exact; image/audio models carry calibrated
 * compute profiles since only their compute-bound behaviour and spare
 * memory matter to AQUA.
 */

#ifndef AQUA_MODEL_MODEL_SPEC_HH
#define AQUA_MODEL_MODEL_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/kv_precision.hh"

namespace aqua::model {

/** Output modality of a generative model. */
enum class Modality { Text, Image, Audio };

/** Human-readable modality name. */
const char *modalityName(Modality m);

/**
 * Static description of one generative model.
 */
struct ModelSpec
{
    std::string name;
    Modality modality = Modality::Text;

    /** Total parameters. */
    double nParams = 0.0;

    /**
     * Parameters active per token for mixture-of-experts models
     * (e.g. Mixtral routes each token through 2 of 8 experts);
     * 0 means dense (all parameters active).
     */
    double activeParams = 0.0;

    /** Bytes per parameter (2 = fp16). */
    std::uint32_t bytesPerParam = 2;

    //
    // Transformer geometry (meaningful for Modality::Text).
    //
    std::uint32_t nLayers = 0;
    std::uint32_t dModel = 0;
    std::uint32_t nHeads = 0;
    /** Key/value heads; < nHeads under grouped-query attention. */
    std::uint32_t nKvHeads = 0;
    std::uint32_t headDim = 0;
    std::uint32_t maxSeqLen = 0;

    //
    // Compute profile (meaningful for Image/Audio).
    //
    /** Asymptotic per-item generation time on the reference GPU (s). */
    double itemTimeSec = 0.0;
    /** Fixed per-iteration overhead independent of batch size (s). */
    double fixedIterTimeSec = 0.0;
    /** Activation bytes consumed per in-flight batch item. */
    std::uint64_t activationBytesPerItem = 0;
    /** Batch size beyond which throughput gains vanish. */
    std::uint32_t maxUsefulBatch = 0;

    /** Fixed runtime overhead (CUDA context, framework buffers). */
    std::uint64_t runtimeOverheadBytes = 0;

    /**
     * Precision the KV cache is *served* at. Scales every byte count
     * derived from kvBytesPerToken(): block sizes, staging transfers,
     * swap/park payloads, registry publishes. Weights stay at
     * bytesPerParam; only KV narrows.
     */
    KvPrecision kvPrecision = KvPrecision::Fp16;

    /** Bytes of model weights. */
    std::uint64_t weightBytes() const;

    /** Parameters doing FLOPs per token (MoE-aware). */
    double effectiveParams() const;

    /** Bytes of the weights one token's forward pass touches. */
    std::uint64_t activeWeightBytes() const;

    /**
     * KV-cache bytes per token at the serving precision: 2 (K and V)
     * x layers x kvHeads x headDim x bytesPerParam, divided by the
     * kvPrecision element width. Zero for non-text models.
     */
    std::uint64_t kvBytesPerToken() const;

    /** KV-cache bytes per token if stored at precision @p p. */
    std::uint64_t kvBytesPerTokenAt(KvPrecision p) const;

    /** KV-cache bytes of a sequence of @p tokens tokens. */
    std::uint64_t kvBytes(std::uint64_t tokens) const;

    /**
     * Transient attention workspace during prefill of a @p seqLen
     * sequence: one layer's materialized score matrix
     * (heads x L x L x bytes). FlexGen's HF backend does not use
     * flash attention, so this peak is real and is part of why an
     * 8k-token prompt cannot be inferred in-HBM on OPT-30B (§6).
     */
    std::uint64_t attentionWorkspaceBytes(std::uint64_t seqLen) const;

    /** Whether the model is a transformer LLM. */
    bool isText() const { return modality == Modality::Text; }
};

//
// Preset factory functions: the paper's model zoo.
//

ModelSpec opt30b();
ModelSpec mistral7b();
ModelSpec mixtral8x7b();
ModelSpec llama2_13b();
ModelSpec codellama34b();
ModelSpec stableDiffusion();
ModelSpec stableDiffusionXl();
ModelSpec kandinsky();
ModelSpec audiogen();
ModelSpec musicgen();

/** Look up a preset by name; panics on unknown names. */
ModelSpec presetByName(const std::string &name);

/** Names of all presets, in Tables 1-3 order. */
const std::vector<std::string> &presetNames();

} // namespace aqua::model

#endif // AQUA_MODEL_MODEL_SPEC_HH
