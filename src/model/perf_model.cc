#include "model/perf_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aqua::model {

using namespace aqua::sim;

namespace {

/** Reference fp16 throughput the batch-model profiles are tied to. */
constexpr double referenceFlops = 187e12;

} // anonymous namespace

PerfModel::PerfModel(const ModelSpec &model, const hw::GpuSpec &gpu)
    : spec(model), gpu(gpu)
{
    if (gpu.fp16Flops <= 0.0 || gpu.hbmBandwidth <= 0.0)
        panic("PerfModel: GPU spec missing compute/bandwidth");
    computeScale = referenceFlops / gpu.fp16Flops;
}

void
PerfModel::setSparseReadFraction(double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        panic("sparseReadFraction %f outside (0, 1]", fraction);
    sparseRead = fraction;
}

Tick
PerfModel::dequantTime(std::uint64_t kvBytes) const
{
    return dequantTimeAt(kvBytes, spec.kvPrecision);
}

Tick
PerfModel::quantizeTime(std::uint64_t kvBytes) const
{
    // Quantize and dequantize are the same elementwise pass in
    // opposite directions; model them with one cost.
    return dequantTimeAt(kvBytes, spec.kvPrecision);
}

Tick
PerfModel::dequantTimeAt(std::uint64_t kvBytes, KvPrecision p) const
{
    double overhead = kvDequantOverhead(p);
    if (overhead <= 0.0 || kvBytes == 0)
        return 0;
    // Overhead is a fraction of the time those bytes take to stream
    // through HBM at math precision.
    double stream_sec =
        static_cast<double>(kvBytes) / gpu.hbmBandwidth;
    return secToTicks(overhead * stream_sec);
}

Tick
PerfModel::prefillTime(std::uint64_t promptTokens) const
{
    if (!spec.isText())
        panic("prefillTime on non-text model %s", spec.name.c_str());
    // MoE models only spend FLOPs on their active experts.
    double flops = 2.0 * spec.effectiveParams() *
                   static_cast<double>(promptTokens);
    double compute_sec = flops / gpu.fp16Flops;
    // Weights still stream through HBM once (a long prompt's tokens
    // collectively touch every expert).
    double memory_sec =
        static_cast<double>(spec.weightBytes()) / gpu.hbmBandwidth;
    return gpu.kernelLaunchOverhead +
           secToTicks(std::max(compute_sec, memory_sec));
}

Tick
PerfModel::decodeStepTime(std::uint64_t batchSize,
                          std::uint64_t kvBytesResident) const
{
    if (!spec.isText())
        panic("decodeStepTime on non-text model %s", spec.name.c_str());
    if (batchSize == 0)
        return 0;
    double flops =
        2.0 * spec.effectiveParams() * static_cast<double>(batchSize);
    double compute_sec = flops / gpu.fp16Flops;
    // Dense models stream all weights per iteration. MoE models
    // stream only the experts the batch routes through — every
    // expert once the batch is large enough.
    double weight_traffic = std::min(
        static_cast<double>(spec.weightBytes()),
        static_cast<double>(spec.activeWeightBytes()) *
            static_cast<double>(batchSize));
    // Sparse attention reads only a fraction of the resident KV.
    double kv_traffic =
        static_cast<double>(kvBytesResident) * sparseRead;
    double bytes = weight_traffic + kv_traffic;
    double memory_sec = bytes / gpu.hbmBandwidth;
    Tick t = gpu.kernelLaunchOverhead +
             secToTicks(std::max(compute_sec, memory_sec));
    // Quantized KV pays an elementwise dequant pass over the bytes
    // actually read; it does not hide under the roofline max because
    // it serializes with the attention kernels.
    double overhead = kvDequantOverhead(spec.kvPrecision);
    if (overhead > 0.0 && kv_traffic > 0.0)
        t += secToTicks(overhead * kv_traffic / gpu.hbmBandwidth);
    return t;
}

Tick
PerfModel::batchIterTime(std::uint64_t batchSize) const
{
    if (spec.isText())
        panic("batchIterTime on text model %s", spec.name.c_str());
    if (batchSize == 0)
        return 0;
    double sec = (spec.fixedIterTimeSec +
                  spec.itemTimeSec * static_cast<double>(batchSize)) *
                 computeScale;
    return gpu.kernelLaunchOverhead + secToTicks(sec);
}

double
PerfModel::batchThroughput(std::uint64_t batchSize) const
{
    if (batchSize == 0)
        return 0.0;
    Tick iter = batchIterTime(batchSize);
    return static_cast<double>(batchSize) / ticksToSec(iter);
}

std::uint64_t
PerfModel::memoryFootprint(std::uint64_t batchSize,
                           std::uint64_t kvBytes) const
{
    std::uint64_t bytes = spec.weightBytes() + spec.runtimeOverheadBytes;
    if (spec.isText())
        bytes += kvBytes;
    else
        bytes += spec.activationBytesPerItem * batchSize;
    return bytes;
}

} // namespace aqua::model
