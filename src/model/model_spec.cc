#include "model/model_spec.hh"

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace aqua::model {

using aqua::sim::gib;
using aqua::sim::mib;
using aqua::sim::panic;

const char *
modalityName(Modality m)
{
    switch (m) {
      case Modality::Text: return "text";
      case Modality::Image: return "image";
      case Modality::Audio: return "audio";
    }
    return "?";
}

std::uint64_t
ModelSpec::weightBytes() const
{
    return static_cast<std::uint64_t>(nParams) * bytesPerParam;
}

double
ModelSpec::effectiveParams() const
{
    return activeParams > 0.0 ? activeParams : nParams;
}

std::uint64_t
ModelSpec::activeWeightBytes() const
{
    return static_cast<std::uint64_t>(effectiveParams()) *
           bytesPerParam;
}

std::uint64_t
ModelSpec::kvBytesPerToken() const
{
    return kvBytesPerTokenAt(kvPrecision);
}

std::uint64_t
ModelSpec::kvBytesPerTokenAt(KvPrecision p) const
{
    if (!isText())
        return 0;
    // The fp16 footprint is 2 tensors x 2 bytes per element, so the
    // precision divisor (<= 4) divides it exactly.
    std::uint64_t fp16 =
        std::uint64_t(2) * nLayers * nKvHeads * headDim * bytesPerParam;
    return scaleKvBytes(fp16, p);
}

std::uint64_t
ModelSpec::kvBytes(std::uint64_t tokens) const
{
    return kvBytesPerToken() * tokens;
}

std::uint64_t
ModelSpec::attentionWorkspaceBytes(std::uint64_t seqLen) const
{
    if (!isText())
        return 0;
    return std::uint64_t(nHeads) * seqLen * seqLen * bytesPerParam;
}

namespace {

ModelSpec
textModel(std::string name, double params, std::uint32_t layers,
          std::uint32_t d_model, std::uint32_t heads,
          std::uint32_t kv_heads, std::uint32_t max_seq)
{
    ModelSpec spec;
    spec.name = std::move(name);
    spec.modality = Modality::Text;
    spec.nParams = params;
    spec.nLayers = layers;
    spec.dModel = d_model;
    spec.nHeads = heads;
    spec.nKvHeads = kv_heads;
    spec.headDim = d_model / heads;
    spec.maxSeqLen = max_seq;
    // CUDA context + framework activations/workspace.
    spec.runtimeOverheadBytes = 6 * gib;
    return spec;
}

ModelSpec
batchModel(std::string name, Modality modality, double params,
           double item_time, double fixed_time,
           std::uint64_t act_bytes, std::uint32_t max_batch)
{
    ModelSpec spec;
    spec.name = std::move(name);
    spec.modality = modality;
    spec.nParams = params;
    spec.itemTimeSec = item_time;
    spec.fixedIterTimeSec = fixed_time;
    spec.activationBytesPerItem = act_bytes;
    spec.maxUsefulBatch = max_batch;
    spec.runtimeOverheadBytes = 4 * gib;
    return spec;
}

} // anonymous namespace

ModelSpec
opt30b()
{
    // OPT-30B: 48 layers, d_model 7168, 56 heads, full multi-head
    // attention => 1.3 MiB of KV per token; weights 60 GB fp16. The
    // only model FlexGen serves in the paper's long-prompt workload.
    return textModel("OPT-30B", 30e9, 48, 7168, 56, 56, 2048);
}

ModelSpec
mistral7b()
{
    // Mistral-7B: GQA with 8 KV heads => 128 KiB of KV per token.
    return textModel("Mistral-7B", 7.24e9, 32, 4096, 32, 8, 32768);
}

ModelSpec
mixtral8x7b()
{
    // Mixtral 8x7B: 46.7B total parameters, but each token routes
    // through 2 of 8 experts (~12.9B active). GQA with 8 KV heads.
    // The fp16 weights (~93 GB) exceed one A100-80G's HBM: the model
    // is only servable with weight offloading (rw_deepspeed).
    ModelSpec spec =
        textModel("Mixtral-8x7B", 46.7e9, 32, 4096, 32, 8, 32768);
    spec.activeParams = 12.9e9;
    return spec;
}

ModelSpec
llama2_13b()
{
    // Llama-2-13B: 40 layers, MHA => 800 KiB of KV per token.
    return textModel("Llama-2-13B", 13e9, 40, 5120, 40, 40, 4096);
}

ModelSpec
codellama34b()
{
    // CodeLlama-34B: 48 layers, d_model 8192, GQA with 8 KV heads.
    return textModel("Codellama-34B", 34e9, 48, 8192, 64, 8, 16384);
}

ModelSpec
stableDiffusion()
{
    // ~1 image/s asymptotically on an A100; throughput plateaus around
    // batch 12-16 with tens of GB of HBM to spare (Fig. 2b).
    return batchModel("StableDiffusion", Modality::Image, 1.07e9,
                      0.90, 2.5, 700 * mib, 16);
}

ModelSpec
stableDiffusionXl()
{
    return batchModel("StableDiffusion-XL", Modality::Image, 3.5e9,
                      2.2, 4.0, 1200 * mib, 12);
}

ModelSpec
kandinsky()
{
    return batchModel("Kandinsky", Modality::Image, 3.3e9,
                      1.8, 3.5, 1100 * mib, 12);
}

ModelSpec
audiogen()
{
    // Fig. 2a: AudioGen plateaus with ~20 GB consumed at peak batch.
    return batchModel("AudioGen", Modality::Audio, 1.5e9,
                      1.4, 3.0, 900 * mib, 14);
}

ModelSpec
musicgen()
{
    return batchModel("MusicGen", Modality::Audio, 3.3e9,
                      2.0, 3.2, 1000 * mib, 12);
}

const std::vector<std::string> &
presetNames()
{
    static const std::vector<std::string> names = {
        "OPT-30B", "Mistral-7B", "Mixtral-8x7B", "Llama-2-13B",
        "Codellama-34B", "StableDiffusion", "StableDiffusion-XL",
        "Kandinsky", "AudioGen", "MusicGen",
    };
    return names;
}

ModelSpec
presetByName(const std::string &name)
{
    if (name == "OPT-30B")
        return opt30b();
    if (name == "Mistral-7B")
        return mistral7b();
    if (name == "Mixtral-8x7B")
        return mixtral8x7b();
    if (name == "Llama-2-13B")
        return llama2_13b();
    if (name == "Codellama-34B")
        return codellama34b();
    if (name == "StableDiffusion")
        return stableDiffusion();
    if (name == "StableDiffusion-XL")
        return stableDiffusionXl();
    if (name == "Kandinsky")
        return kandinsky();
    if (name == "AudioGen")
        return audiogen();
    if (name == "MusicGen")
        return musicgen();
    panic("unknown model preset: %s", name.c_str());
}

} // namespace aqua::model
