#include "model/kv_precision.hh"

#include "sim/logging.hh"

namespace aqua::model {

using aqua::sim::panic;

const char *kvPrecisionName(KvPrecision p)
{
    switch (p) {
    case KvPrecision::Fp16: return "fp16";
    case KvPrecision::Fp8: return "fp8";
    case KvPrecision::Int4: return "int4";
    }
    panic("invalid KvPrecision value");
}

KvPrecision kvPrecisionByName(const std::string &name)
{
    if (name == "fp16")
        return KvPrecision::Fp16;
    if (name == "fp8")
        return KvPrecision::Fp8;
    if (name == "int4")
        return KvPrecision::Int4;
    panic("unknown KV precision: %s", name.c_str());
}

std::uint32_t kvPrecisionDivisor(KvPrecision p)
{
    switch (p) {
    case KvPrecision::Fp16: return 1;
    case KvPrecision::Fp8: return 2;
    case KvPrecision::Int4: return 4;
    }
    panic("invalid KvPrecision value");
}

std::uint64_t scaleKvBytes(std::uint64_t fp16Bytes, KvPrecision p)
{
    return fp16Bytes / kvPrecisionDivisor(p);
}

std::uint64_t rescaleKvBytes(std::uint64_t bytes, KvPrecision from,
                             KvPrecision to)
{
    // Widen to fp16 first so the result is exact for any from/to pair.
    return bytes * kvPrecisionDivisor(from) / kvPrecisionDivisor(to);
}

double kvDequantOverhead(KvPrecision p)
{
    // Calibrated loosely to QServe's reported dequant cost: per-byte
    // unpack work grows as elements get narrower, but stays well under
    // the 2-4x byte savings.
    switch (p) {
    case KvPrecision::Fp16: return 0.0;
    case KvPrecision::Fp8: return 0.15;
    case KvPrecision::Int4: return 0.30;
    }
    panic("invalid KvPrecision value");
}

} // namespace aqua::model
