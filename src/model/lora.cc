#include "model/lora.hh"

#include "sim/ticks.hh"

namespace aqua::model {

using aqua::sim::mib;

std::uint64_t
loraBytesForRank(const ModelSpec &base, std::uint32_t rank)
{
    // Four adapted projections (q, k, v, o) per layer; each carries an
    // A (d_model x r) and a B (r x d_model) matrix.
    std::uint64_t per_proj =
        std::uint64_t(2) * base.dModel * rank * base.bytesPerParam;
    return std::uint64_t(4) * base.nLayers * per_proj;
}

std::vector<LoraAdapter>
synthesizeAdapters(const std::string &baseName, std::uint64_t bytes,
                   std::uint32_t count)
{
    std::vector<LoraAdapter> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        LoraAdapter a;
        a.id = i;
        a.name = baseName + "-" + std::to_string(i);
        a.bytes = bytes;
        a.rank = 0; // synthesized by size, not rank
        out.push_back(a);
    }
    return out;
}

LoraAdapter
zephyrAdapter()
{
    LoraAdapter a;
    a.id = 0;
    a.name = "zephyr-7b-beta-lora";
    a.rank = 256;
    a.bytes = 320 * mib;
    return a;
}

LoraAdapter
mtebAdapter()
{
    LoraAdapter a;
    a.id = 1;
    a.name = "e5-mistral-7b-mteb-lora";
    a.rank = 128;
    a.bytes = 160 * mib;
    return a;
}

} // namespace aqua::model
