/**
 * @file
 * Low-rank adaptation (LoRA) adapters: per-request fine-tuning weights
 * that must reside in GPU memory during inference (§2.2).
 *
 * The paper's LoRA workloads use the Zephyr (~320 MB) and Mteb
 * (~160 MB) Mistral adapters and synthesize more by copying them.
 */

#ifndef AQUA_MODEL_LORA_HH
#define AQUA_MODEL_LORA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/model_spec.hh"
#include "sim/ticks.hh"

namespace aqua::model {

/** Identifier of a LoRA adapter within a serving engine. */
using LoraId = std::uint32_t;

/** Sentinel meaning "no adapter". */
constexpr LoraId noLora = ~LoraId(0);

/**
 * One LoRA adapter.
 */
struct LoraAdapter
{
    LoraId id = noLora;
    std::string name;
    /** Adapter rank; higher rank => more weights (§2.2). */
    std::uint32_t rank = 0;
    /** Bytes of adapter weights resident on the GPU when active. */
    std::uint64_t bytes = 0;
};

/**
 * Bytes of a LoRA adapter of a given rank for a base model: two
 * low-rank matrices (d_model x r and r x d_model) per adapted
 * projection, for the usual four attention projections per layer.
 */
std::uint64_t loraBytesForRank(const ModelSpec &base, std::uint32_t rank);

/**
 * Synthesize @p count adapters of identical size, mirroring the
 * paper's "we also synthesize more adapters by copying these" (§6).
 *
 * @param baseName Name prefix for the adapters.
 * @param bytes Adapter size (e.g. 160 MB or 320 MB).
 */
std::vector<LoraAdapter> synthesizeAdapters(const std::string &baseName,
                                            std::uint64_t bytes,
                                            std::uint32_t count);

/** The ~320 MB Zephyr adapter for Mistral. */
LoraAdapter zephyrAdapter();

/** The ~160 MB Mteb adapter for Mistral. */
LoraAdapter mtebAdapter();

} // namespace aqua::model

#endif // AQUA_MODEL_LORA_HH
