/**
 * @file
 * Shared stream-vs-recompute crossover.
 *
 * Two deciders in the stack weigh streaming a stored KV copy against
 * re-prefilling it at the roofline rate: the storage tier's
 * park-resume path (tier::TierManager) and the cross-server prefix
 * federation (federation::FederationCostModel). Both compare the same
 * quantities — an estimated stream makespan plus any fixed overhead
 * (dequant passes, control-plane hops) against the prefill time —
 * scaled by a safety factor that biases toward recompute when the
 * estimates are close (a mispredicted stream stalls a request; a
 * mispredicted recompute merely wastes FLOPs the GPU had anyway).
 *
 * The comparison lives here, once, so the two deciders cannot drift.
 */

#ifndef AQUA_MODEL_STREAM_CHOICE_HH
#define AQUA_MODEL_STREAM_CHOICE_HH

#include "sim/ticks.hh"

namespace aqua::model {

/**
 * Whether streaming a stored copy beats recomputing it.
 *
 * @param streamEstimate Predicted stream makespan (queueing + wire).
 * @param streamOverhead Fixed extra cost of the streamed path
 *        (dequant on arrival, control-plane round trips).
 * @param prefillTime Roofline re-prefill time of the covered tokens.
 * @param safetyFactor Multiplier applied to the streamed side; > 1
 *        biases toward recompute when the two are close.
 * @return true when (streamEstimate + streamOverhead) * safetyFactor
 *         < prefillTime.
 */
bool streamBeatsRecompute(aqua::sim::Tick streamEstimate,
                          aqua::sim::Tick streamOverhead,
                          aqua::sim::Tick prefillTime,
                          double safetyFactor);

} // namespace aqua::model

#endif // AQUA_MODEL_STREAM_CHOICE_HH
