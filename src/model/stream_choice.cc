#include "model/stream_choice.hh"

namespace aqua::model {

bool
streamBeatsRecompute(aqua::sim::Tick streamEstimate,
                     aqua::sim::Tick streamOverhead,
                     aqua::sim::Tick prefillTime, double safetyFactor)
{
    return static_cast<double>(streamEstimate + streamOverhead) *
               safetyFactor <
           static_cast<double>(prefillTime);
}

} // namespace aqua::model
